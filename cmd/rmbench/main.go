// Command rmbench regenerates the tables and figures of the paper's
// evaluation (Sections 6 and Appendix B). Each subcommand prints the
// rows or series the paper reports; see EXPERIMENTS.md for the mapping
// and the paper-vs-measured comparison.
//
// Usage:
//
//	rmbench <experiment> [-seed N] [-quick]
//
// Experiments:
//
//	tables     Table 4 workload summary (scaled) and Table 5 designs
//	fig3 fig4  I/O micro-benchmark throughput and latency
//	fig5       one DB server, 1..8 memory servers
//	fig6       1..8 DB servers, one memory server
//	fig7 fig8  RangeScan with 20% updates (throughput / latency)
//	fig9 fig10 RangeScan read-only
//	fig11      RangeScan drill-down (I/O, CPU, latency)
//	fig12      BPExt size sweep (single and multiple memory servers)
//	fig13      impact of remote access on the memory server
//	fig14      Hash+Sort latency per design
//	fig15a     semantic cache: MV placement
//	fig15b     semantic cache: seek vs scan crossover
//	fig16      buffer-pool priming
//	fig18      TPC-H throughput + fig19 latency histogram
//	fig20      TPC-DS throughput + fig21 latency histogram
//	fig22      TPC-C throughput + fig23 latency
//	fig24      local memory sweep
//	fig25      multiple DB servers RangeScan
//	fig26      semantic cache recovery
//	fig27      parallel data loading
//	ablation   Table 1 design-choice ablations
//	faults     throughput through a revocation storm + recovery
//	scrub      silent-corruption storm + K=2 revocation storm
//	plancache  repeated parameterized query: plan cache on vs off
//	parscan    parallel scan over remote memory: DOP sweep
//	iobatch    vectored I/O: batched vs per-page transfers, burst
//	           priming, eviction storm with batched I/O off vs on
//	evict      eviction policy A/B: clock sweep vs cost-aware GDSF
//	pushdown   donor-side operator pushdown vs fetch-all across
//	           selectivities, the optimizer's placement choice, and a
//	           pushed scan through a corruption + revocation storm
//	cluster    cluster-scale broker: 200+ DB servers and donors on a
//	           sharded broker with batched heartbeats, through a
//	           diurnal reclamation wave
//	chaos      tail-tolerance chaos harness on the cluster bed:
//	           slow-donor injection (hedging A/B), a reclamation
//	           storm under deadline budgets + health scoring, and a
//	           flapping donor through the breaker's recovery arc
//	all        everything above
//
// With -json each experiment also writes BENCH_<experiment>.json:
// experiment name, seed, wall-clock, and a flat metric map (throughput,
// latency percentiles, fault counters).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/loader"
	"remotedb/internal/exp"
	"remotedb/internal/sim"
)

var (
	seed  = flag.Int64("seed", 1, "simulation seed")
	quick = flag.Bool("quick", false, "reduced sizes for a fast pass")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rmbench <experiment> [flags]\nrun 'go doc ./cmd/rmbench' for the experiment list\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	start := time.Now()
	if err := run(name); err != nil {
		fmt.Fprintf(os.Stderr, "rmbench %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("\n[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
}

// run executes one experiment (or "all"), recording metrics and writing
// BENCH_<name>.json when -json is set.
func run(name string) error {
	if name == "all" {
		for _, n := range []string{
			"tables", "fig3", "fig5", "fig6", "fig7", "fig9", "fig11",
			"fig12", "fig13", "fig14", "fig15a", "fig15b", "fig16",
			"fig18", "fig20", "fig22", "fig24", "fig25", "fig26",
			"fig27", "ablation", "faults", "scrub", "plancache", "parscan",
			"iobatch", "evict", "pushdown", "cluster", "chaos",
		} {
			fmt.Printf("\n===== %s =====\n", n)
			if err := run(n); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
		return nil
	}
	benchReset()
	start := time.Now()
	if err := dispatch(name); err != nil {
		return err
	}
	if *jsonOut {
		return benchWrite(name, start)
	}
	return nil
}

func dispatch(name string) error {
	switch name {
	case "tables":
		return tables()
	case "fig3", "fig4":
		return fig34()
	case "fig5":
		return fig5()
	case "fig6":
		return fig6()
	case "fig7", "fig8":
		return rangeScan(0.20)
	case "fig9", "fig10":
		return rangeScan(0)
	case "fig11":
		return fig11()
	case "fig12":
		return fig12()
	case "fig13":
		return fig13()
	case "fig14":
		return fig14()
	case "fig15a":
		return fig15a()
	case "fig15b":
		return fig15b()
	case "fig16":
		return fig16()
	case "fig18", "fig19":
		return tpch()
	case "fig20", "fig21":
		return tpcds()
	case "fig22", "fig23":
		return tpcc()
	case "fig24":
		return fig24()
	case "fig25":
		return fig25()
	case "fig26":
		return fig26()
	case "fig27":
		return fig27()
	case "ablation":
		return ablation()
	case "faults":
		return faults()
	case "scrub":
		return scrub()
	case "plancache":
		return plancache()
	case "parscan":
		return parscan()
	case "iobatch":
		return iobatch()
	case "evict":
		return evict()
	case "pushdown":
		return pushdown()
	case "cluster":
		return clusterBench()
	case "chaos":
		return chaosBench()
	}
	return fmt.Errorf("unknown experiment %q", name)
}

func iobatch() error {
	fmt.Println("Vectored I/O: per-page vs doorbell-batched transfers, burst")
	fmt.Println("priming, and an eviction storm with batched I/O off vs on")
	prm := exp.DefaultIOBatchParams()
	if *quick {
		prm.Pages = 128
		prm.PrimePages = 256
		prm.StormPages = 192
		prm.Frames = 32
	}
	res, err := exp.RunIOBatch(*seed, prm)
	if err != nil {
		return err
	}
	fmt.Printf("  %s\n", res)
	metric("scalar_round_trips", float64(res.ScalarRT))
	metric("batched_round_trips", float64(res.BatchedRT))
	metric("rt_reduction", res.RTReduction)
	metric("read_speedup", res.ReadSpeedup)
	metric("write_speedup", res.WriteSpeedup)
	metricDur("prime_scalar_ms", res.PrimeScalar)
	metricDur("prime_burst_ms", res.PrimeBurst)
	metric("prime_speedup", res.PrimeSpeedup)
	metricDur("storm_scalar_ms", res.StormScalar)
	metricDur("storm_batched_ms", res.StormBatched)
	metric("storm_scalar_round_trips", float64(res.StormScalarRT))
	metric("storm_batched_round_trips", float64(res.StormBatchedRT))
	metric("storm_speedup", res.StormSpeedup)
	metric("staging_waits", float64(res.StagingWaits))
	metric("staging_wait_ms", res.StagingWaitMS)
	metric("staging_highwater", float64(res.StagingHighWater))
	return nil
}

func evict() error {
	fmt.Println("Eviction policy A/B: clock sweep vs cost-aware GDSF under a")
	fmt.Println("Zipf working set with 10% writes")
	prm := exp.DefaultEvictParams()
	if *quick {
		prm.Frames = 128
		prm.Pages = 1024
		prm.Accesses = 5000
	}
	res, err := exp.RunEvict(*seed, prm)
	if err != nil {
		return err
	}
	fmt.Printf("  %s\n  %s\n", res.Clock, res.GDSF)
	fmt.Printf("  GDSF: %+.1f hit points, %.2fx stall speedup\n", res.HitDelta, res.Speedup)
	fmt.Printf("  readahead under short bursts:\n    %s\n    %s\n", res.FixedRA, res.AdaptiveRA)
	fmt.Printf("  adaptive window: %+.1f waste points\n", -res.WasteDrop)
	metric("clock_hit_rate", res.Clock.HitRate)
	metric("gdsf_hit_rate", res.GDSF.HitRate)
	metric("clock_disk_reads", float64(res.Clock.DiskReads))
	metric("gdsf_disk_reads", float64(res.GDSF.DiskReads))
	metricDur("clock_elapsed_ms", res.Clock.Elapsed)
	metricDur("gdsf_elapsed_ms", res.GDSF.Elapsed)
	metric("clock_writeback_bytes", float64(res.Clock.WriteBackBytes))
	metric("gdsf_writeback_bytes", float64(res.GDSF.WriteBackBytes))
	metric("hit_delta_points", res.HitDelta)
	metric("speedup", res.Speedup)
	metric("fixed_ra_waste_ratio", res.FixedRA.WasteRatio)
	metric("adaptive_ra_waste_ratio", res.AdaptiveRA.WasteRatio)
	metric("ra_waste_drop_points", res.WasteDrop)
	if res.AdaptiveRA.WasteRatio >= res.FixedRA.WasteRatio {
		return fmt.Errorf("adaptive readahead wasted %.1f%% of prefetches vs %.1f%% fixed; the window did not shrink",
			res.AdaptiveRA.WasteRatio*100, res.FixedRA.WasteRatio*100)
	}
	if res.AdaptiveRA.Hits == 0 {
		return fmt.Errorf("adaptive readahead never produced a prefetch hit; the window collapsed")
	}
	return nil
}

func clusterBench() error {
	fmt.Println("Cluster-scale broker: sharded lease space, batched heartbeats,")
	fmt.Println("and a diurnal reclamation wave over 200+ participants")
	prm := exp.DefaultClusterParams()
	if *quick {
		prm.Measure = 80 * time.Millisecond
	}
	res, err := exp.RunCluster(*seed, prm)
	if err != nil {
		return err
	}
	fmt.Printf("  %d broker shards, %d donors\n", res.Shards, res.Donors)
	fmt.Printf("  %8s %14s %14s %12s\n", "holders", "participants", "agg MB/s", "mean lat")
	for _, pt := range res.Scale {
		fmt.Printf("  %8d %14d %14.0f %12v\n", pt.Holders, pt.Participants,
			pt.BytesPerSec/1e6, pt.MeanLat.Round(time.Microsecond))
		key := fmt.Sprintf("holders%d", pt.Holders)
		metric(key+"/agg_mb_per_sec", pt.BytesPerSec/1e6)
		metricDur(key+"/mean_lat_ms", pt.MeanLat)
	}
	fmt.Printf("  storm: %d/%d live leases shed (%.0f%%) over %d pulses\n",
		res.Shed, res.LiveBefore, res.ShedFrac*100, exp.DefaultClusterParams().StormPulses)
	fmt.Printf("  latency: healthy=%v storm=%v recovered=%v (%.2fx inflation)\n",
		res.HealthyLat.Round(time.Microsecond), res.StormLat.Round(time.Microsecond),
		res.RecoveredLat.Round(time.Microsecond), res.Inflation)
	fmt.Printf("  reads: fallbacks=%d engine-visible errors=%d\n", res.Fallbacks, res.Errors)
	fmt.Printf("  heartbeats: %d rounds, %d batches, mean batch %.1f leases\n",
		res.Heartbeats, res.HBBatches, res.HBBatchMean)
	fmt.Printf("  broker: grants=%d renewals=%d expirations=%d revocations=%d active-peak=%d free=%d\n",
		res.Grants, res.Renewals, res.Expirations, res.Revocations, res.ActivePeak, res.FreeMRs)
	for _, t := range []string{"oltp", "olap", "batch"} {
		st := res.Tenants[t]
		fmt.Printf("  tenant %-6s grants=%d denies=%d sheds=%d held=%d MRs (%d MB)\n",
			t, st.Grants, st.Denies, st.Sheds, st.HeldMRs, st.HeldBytes>>20)
		metric("tenant/"+t+"/grants", float64(st.Grants))
		metric("tenant/"+t+"/denies", float64(st.Denies))
		metric("tenant/"+t+"/sheds", float64(st.Sheds))
	}
	metric("participants", float64(res.Participants))
	metric("live_before_storm", float64(res.LiveBefore))
	metric("shed", float64(res.Shed))
	metric("shed_frac", res.ShedFrac)
	metricDur("healthy_lat_ms", res.HealthyLat)
	metricDur("storm_lat_ms", res.StormLat)
	metricDur("recovered_lat_ms", res.RecoveredLat)
	metric("inflation", res.Inflation)
	metric("healthy_mb_per_sec", res.HealthyBPS/1e6)
	metric("storm_mb_per_sec", res.StormBPS/1e6)
	metric("fallbacks", float64(res.Fallbacks))
	metric("errors", float64(res.Errors))
	metric("heartbeat_rounds", float64(res.Heartbeats))
	metric("heartbeat_batches", float64(res.HBBatches))
	metric("heartbeat_batch_mean", res.HBBatchMean)
	metric("grants", float64(res.Grants))
	metric("renewals", float64(res.Renewals))
	metric("expirations", float64(res.Expirations))
	metric("revocations", float64(res.Revocations))
	metric("active_peak", float64(res.ActivePeak))
	return nil
}

func tables() error {
	fmt.Println("Table 4 (workloads, scaled ~1000x from the paper):")
	fmt.Println("  workload    data      local-mem  bpext    tempdb   concurrency")
	fmt.Println("  RangeScan   ~122 MB   32 MB      128 MB   8 MB     80")
	fmt.Println("  Hash+Sort   ~227 MB   256 MB     -        320 MB   1")
	fmt.Println("  TPC-H       SF 0.1    10 MB      128 MB   64 MB    5 streams")
	fmt.Println("  TPC-DS      SF 0.2    8 MB       96 MB    64 MB    5 streams")
	fmt.Println("  TPC-C       8 WH      16 MB      32 MB    8 MB     200 clients")
	fmt.Println()
	fmt.Println("Table 5 (designs): HDD | HDD+SSD | SMB+RamDrive | SMBDirect+RamDrive | Custom | Local Memory")
	return nil
}

func fig34() error {
	res, err := exp.RunIOMicro(*seed)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3/4: I/O micro-benchmark (SQLIO)")
	fmt.Printf("  %-22s %-16s %12s %12s\n", "config", "pattern", "GB/s", "latency")
	for _, r := range res.Rows {
		fmt.Printf("  %-22s %-16s %12.3f %12v\n", r.Config, r.Pattern, r.BytesPerSec/1e9, r.Latency.Round(time.Microsecond))
	}
	return nil
}

func fig5() error {
	pts, err := exp.RunFig05MultiMemoryServers(*seed)
	if err != nil {
		return err
	}
	fmt.Println("Figure 5: one DB server, memory spread over N servers")
	fmt.Printf("  %8s %14s %12s %14s %12s\n", "servers", "rnd GB/s", "rnd lat", "seq GB/s", "seq lat")
	for _, pt := range pts {
		fmt.Printf("  %8d %14.3f %12v %14.3f %12v\n", pt.Servers,
			pt.RandomBPS/1e9, pt.RandomLat.Round(time.Microsecond),
			pt.SeqBPS/1e9, pt.SeqLat.Round(time.Microsecond))
	}
	return nil
}

func fig6() error {
	pts, err := exp.RunFig06MultiDBServers(*seed)
	if err != nil {
		return err
	}
	fmt.Println("Figure 6: N DB servers on one memory server")
	fmt.Printf("  %8s %14s %12s\n", "servers", "agg GB/s", "latency")
	for _, pt := range pts {
		fmt.Printf("  %8d %14.3f %12v\n", pt.Servers, pt.RandomBPS/1e9, pt.RandomLat.Round(time.Microsecond))
	}
	return nil
}

func rangeScan(updates float64) error {
	spindles := []int{4, 8, 20}
	designs := exp.AllDesigns
	if *quick {
		spindles = []int{20}
		designs = []exp.Design{exp.DesignHDDSSD, exp.DesignCustom}
	}
	var res []exp.RangeScanResult
	var err error
	if updates > 0 {
		fmt.Println("Figures 7/8: RangeScan, 20% updates")
		res, err = exp.RunFig0708RangeScanUpdates(*seed, spindles, designs)
	} else {
		fmt.Println("Figures 9/10: RangeScan, read-only")
		res, err = exp.RunFig0910RangeScanReadOnly(*seed, spindles, designs)
	}
	if err != nil {
		return err
	}
	fmt.Printf("  %-22s %10s %14s %12s %12s\n", "design", "spindles", "queries/s", "mean lat", "p95 lat")
	for _, r := range res {
		fmt.Printf("  %-22s %10d %14.0f %12v %12v\n", r.Design, r.Spindles,
			r.Throughput, r.MeanLat.Round(time.Microsecond), r.P95Lat.Round(time.Microsecond))
		key := fmt.Sprintf("%s/%d", r.Design, r.Spindles)
		metric(key+"/queries_per_sec", r.Throughput)
		metricDur(key+"/mean_lat_ms", r.MeanLat)
		metricDur(key+"/p95_lat_ms", r.P95Lat)
	}
	return nil
}

func fig11() error {
	dur := 2 * time.Second
	if *quick {
		dur = 500 * time.Millisecond
	}
	dds, err := exp.RunFig11Drilldown(*seed, dur)
	if err != nil {
		return err
	}
	fmt.Println("Figure 11: RangeScan drill-down (means over the run)")
	fmt.Printf("  %-22s %14s %10s\n", "design", "I/O MB/s", "CPU %")
	for _, dd := range dds {
		fmt.Printf("  %-22s %14.0f %10.1f\n", dd.Design, dd.IOBps.Mean()/1e6, dd.CPU.Mean())
	}
	lats, err := exp.RunFig11Latency(*seed, time.Second)
	if err != nil {
		return err
	}
	fmt.Println("  page-fetch latency under load (Figure 11c):")
	for _, l := range lats {
		fmt.Printf("  %-22s %12v\n", l.Design, l.Mean.Round(time.Microsecond))
	}
	return nil
}

func fig12() error {
	prm := exp.DefaultFig12Params()
	if *quick {
		prm.SizesMB = []int64{32, 96, 144}
		prm.Rows = 300000
		prm.Measure = 400 * time.Millisecond
	}
	for _, multi := range []bool{false, true} {
		pts, err := exp.RunFig12BPExtSize(*seed, multi, prm)
		if err != nil {
			return err
		}
		label := "one memory server"
		if multi {
			label = "multiple memory servers"
		}
		fmt.Printf("Figure 12 (%s):\n", label)
		fmt.Printf("  %10s %8s %14s %12s\n", "bpext MB", "servers", "queries/s", "mean lat")
		for _, pt := range pts {
			fmt.Printf("  %10d %8d %14.0f %12v\n", pt.BPExtBytes>>20, pt.Servers, pt.Throughput, pt.MeanLat.Round(time.Microsecond))
		}
	}
	return nil
}

func fig13() error {
	prm := exp.DefaultFig13Params()
	if *quick {
		prm.SBClients = 40
		prm.Warmup = 200 * time.Millisecond
		prm.Measure = 800 * time.Millisecond
	}
	res, err := exp.RunFig13RemoteImpact(*seed, prm)
	if err != nil {
		return err
	}
	fmt.Println("Figure 13: impact on the remote server's own workload")
	fmt.Printf("  %-10s %14s %12s %12s\n", "mode", "queries/s", "mean lat", "p99 lat")
	for _, r := range res {
		fmt.Printf("  %-10s %14.0f %12v %12v\n", r.Mode, r.Throughput,
			r.MeanLat.Round(time.Millisecond), r.P99Lat.Round(time.Millisecond))
	}
	return nil
}

func fig14() error {
	spindles := []int{4, 8, 20}
	designs := []exp.Design{exp.DesignHDD, exp.DesignHDDSSD, exp.DesignSMB, exp.DesignSMBDirect, exp.DesignCustom}
	if *quick {
		spindles = []int{20}
		designs = []exp.Design{exp.DesignHDDSSD, exp.DesignCustom}
	}
	res, err := exp.RunFig14HashSort(*seed, spindles, designs)
	if err != nil {
		return err
	}
	fmt.Println("Figure 14: Hash+Sort latency")
	fmt.Printf("  %-22s %10s %14s %10s %10s\n", "design", "spindles", "latency", "tempdb W", "tempdb R")
	for _, r := range res {
		fmt.Printf("  %-22s %10d %14v %9dM %9dM\n", r.Design, r.Spindles,
			r.Latency.Round(time.Millisecond), r.TempDBWrote>>20, r.TempDBRead>>20)
		metricDur(fmt.Sprintf("%s/%d/latency_ms", r.Design, r.Spindles), r.Latency)
	}
	return nil
}

func fig15a() error {
	sf := 0.05
	if *quick {
		sf = 0.02
	}
	res, factor, err := exp.RunFig15aSemanticCacheMV(*seed, sf)
	if err != nil {
		return err
	}
	fmt.Println("Figure 15a: semantic cache (materialized views)")
	fmt.Printf("  %6s %12s %12s %12s %10s %10s\n", "query", "base", "MV on SSD", "MV remote", "ssd x", "remote x")
	for _, r := range res {
		fmt.Printf("  Q%-5d %12v %12v %12v %9.0fx %9.0fx\n", r.QueryID,
			r.BaseLatency.Round(time.Microsecond), r.SSDLatency.Round(time.Microsecond),
			r.RemoteLat.Round(time.Microsecond), r.ImprovementSSD(), r.ImprovementRemote())
	}
	fmt.Printf("  aggregate remote-over-SSD factor: %.1fx\n", factor)
	return nil
}

func fig15b() error {
	sf := 0.05
	if *quick {
		sf = 0.02
	}
	remote, ssd, err := exp.RunFig15bSeekVsScan(*seed, sf)
	if err != nil {
		return err
	}
	fmt.Println("Figure 15b: INLJ vs HJ by selectivity")
	fmt.Printf("  %12s | %12s %12s | %12s %12s\n", "selectivity", "INLJ(remote)", "HJ(remote)", "INLJ(ssd)", "HJ(ssd)")
	for i := range remote {
		fmt.Printf("  %12.4f | %12v %12v | %12v %12v\n", remote[i].Selectivity,
			remote[i].INLJ.Round(time.Microsecond), remote[i].HJ.Round(time.Microsecond),
			ssd[i].INLJ.Round(time.Microsecond), ssd[i].HJ.Round(time.Microsecond))
	}
	return nil
}

func fig16() error {
	prm := exp.DefaultFig16Params()
	if *quick {
		prm.BPSizesMB = []int64{10, 20}
		prm.Rows = 125000
	}
	res, err := exp.RunFig16Priming(*seed, prm)
	if err != nil {
		return err
	}
	fmt.Println("Figure 16: buffer-pool priming")
	fmt.Printf("  %8s %12s %12s %12s %12s %12s\n", "BP MB", "warm-up", "prime", "transfer", "cold p95", "primed p95")
	for _, r := range res {
		fmt.Printf("  %8d %12v %12v %12v %12v %12v\n", r.BPBytes>>20,
			r.WarmupTime.Round(time.Millisecond), r.PrimeTime.Round(time.Millisecond),
			r.TransferTime.Round(time.Millisecond),
			r.ColdP95.Round(time.Millisecond), r.PrimedP95.Round(time.Millisecond))
	}
	return nil
}

func histogramLine(h *exp.ImprovementHistogram) string {
	order := []string{"<2x", "2-5x", "5-10x", "10-50x", "50-100x", ">=100x"}
	s := ""
	for _, b := range order {
		s += fmt.Sprintf(" %s:%d", b, h.Buckets[b])
	}
	return s
}

func tpch() error {
	prm := exp.DefaultTPCHParams()
	designs := exp.AllDesigns
	if *quick {
		prm.SF = 0.02
		prm.BPExtBytes = 32 << 20
		prm.QueryIDs = []int{1, 3, 6, 10, 18}
		designs = []exp.Design{exp.DesignHDDSSD, exp.DesignCustom}
	}
	fmt.Println("Figure 18: TPC-H throughput (queries/hour)")
	results := make(map[exp.Design]*exp.TPCHResult)
	for _, d := range designs {
		r, err := exp.RunTPCH(*seed, d, prm)
		if err != nil {
			return err
		}
		results[d] = r
		fmt.Printf("  %-22s %12.0f q/h  (spilling queries: %d)\n", d, r.QueriesPerHour, r.SpilledQueries)
		metric(fmt.Sprintf("%s/queries_per_hour", d), r.QueriesPerHour)
	}
	if base, ok := results[exp.DesignHDDSSD]; ok {
		if cust, ok := results[exp.DesignCustom]; ok {
			h := exp.Improvements(base.QueryLatencies, cust.QueryLatencies)
			fmt.Println("Figure 19: latency improvement histogram (Custom vs HDD+SSD):")
			fmt.Println(" " + histogramLine(h))
			var ids []int
			for id := range h.Factors {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			for _, id := range ids {
				fmt.Printf("    Q%-3d %8.1fx\n", id, h.Factors[id])
			}
		}
	}
	return nil
}

func tpcds() error {
	prm := exp.DefaultTPCDSParams()
	designs := exp.AllDesigns
	if *quick {
		prm.SF = 0.05
		prm.BPExtBytes = 32 << 20
		prm.QueryIDs = []int{1, 5, 10, 20, 30, 40, 50}
		designs = []exp.Design{exp.DesignHDDSSD, exp.DesignCustom}
	}
	fmt.Println("Figure 20: TPC-DS throughput (queries/hour)")
	results := make(map[exp.Design]*exp.TPCHResult)
	for _, d := range designs {
		r, err := exp.RunTPCDS(*seed, d, prm)
		if err != nil {
			return err
		}
		results[d] = r
		fmt.Printf("  %-22s %12.0f q/h\n", d, r.QueriesPerHour)
		metric(fmt.Sprintf("%s/queries_per_hour", d), r.QueriesPerHour)
	}
	if base, ok := results[exp.DesignHDDSSD]; ok {
		if cust, ok := results[exp.DesignCustom]; ok {
			h := exp.Improvements(base.QueryLatencies, cust.QueryLatencies)
			fmt.Println("Figure 21: latency improvement histogram (Custom vs HDD+SSD):")
			fmt.Println(" " + histogramLine(h))
		}
	}
	return nil
}

func tpcc() error {
	prm := exp.DefaultTPCCParams()
	designs := exp.AllDesigns
	if *quick {
		prm.Cfg.Warehouses = 4
		prm.Cfg.Clients = 50
		designs = []exp.Design{exp.DesignHDDSSD, exp.DesignCustom}
	}
	for _, rm := range []bool{false, true} {
		label := "Default TPCC"
		if rm {
			label = "Read-Mostly TPCC"
		}
		fmt.Printf("Figures 22/23: %s\n", label)
		fmt.Printf("  %-22s %14s %12s\n", "design", "tx/s", "mean lat")
		for _, d := range designs {
			r, err := exp.RunTPCC(*seed, d, rm, prm)
			if err != nil {
				return err
			}
			fmt.Printf("  %-22s %14.0f %12v\n", d, r.Throughput, r.MeanLat.Round(time.Microsecond))
			key := fmt.Sprintf("%s/%s", label, d)
			metric(key+"/tx_per_sec", r.Throughput)
			metricDur(key+"/mean_lat_ms", r.MeanLat)
		}
	}
	return nil
}

func fig24() error {
	prm := exp.DefaultFig24Params()
	if *quick {
		prm.MemsMB = []int64{16, 128}
		prm.Measure = 400 * time.Millisecond
	}
	pts, err := exp.RunFig24LocalMemorySweep(*seed, prm)
	if err != nil {
		return err
	}
	fmt.Println("Figure 24: local memory sweep (RangeScan)")
	fmt.Printf("  %10s %-22s %14s %12s\n", "local MB", "design", "queries/s", "mean lat")
	for _, pt := range pts {
		fmt.Printf("  %10d %-22s %14.0f %12v\n", pt.LocalMemBytes>>20, pt.Design, pt.Throughput, pt.MeanLat.Round(time.Microsecond))
	}
	return nil
}

func fig25() error {
	prm := exp.DefaultFig25Params()
	if *quick {
		prm.Rows = 80000
		prm.Clients = 20
		prm.Warmup = 150 * time.Millisecond
		prm.Measure = 500 * time.Millisecond
	}
	pts, err := exp.RunFig25MultiDBRangeScan(*seed, prm)
	if err != nil {
		return err
	}
	fmt.Println("Figure 25: N database servers sharing one memory server")
	fmt.Printf("  %8s %14s %12s\n", "servers", "agg q/s", "mean lat")
	for _, pt := range pts {
		fmt.Printf("  %8d %14.0f %12v\n", pt.DBServers, pt.Throughput, pt.MeanLat.Round(time.Microsecond))
	}
	return nil
}

func fig26() error {
	pts, err := exp.RunFig26CacheRecovery(*seed)
	if err != nil {
		return err
	}
	fmt.Println("Figure 26: semantic-cache recovery from the WAL")
	fmt.Printf("  %10s %14s %10s\n", "dirty MB", "recovery", "records")
	for _, pt := range pts {
		fmt.Printf("  %10d %14v %10d\n", pt.DirtyBytes>>20, pt.RecoveryTime.Round(time.Millisecond), pt.Replayed)
	}
	return nil
}

func fig27() error {
	fmt.Println("Figure 27: parallel data loading (80 splits x 2 MB)")
	fmt.Printf("  %8s %12s %12s %12s\n", "servers", "load", "copy", "total")
	for _, n := range []int{1, 2, 4, 8} {
		var st loader.Stats
		err := exp.RunInSim(*seed, time.Hour, func(p *sim.Proc) error {
			cfg := cluster.DefaultConfig()
			cfg.MemoryBytes = 1 << 30
			var servers []*cluster.Server
			for i := 0; i < n; i++ {
				servers = append(servers, cluster.NewServer(p.Kernel(), fmt.Sprintf("s%d", i+1), cfg))
			}
			var splits []loader.Split
			for i := 0; i < 80; i++ {
				splits = append(splits, loader.Split{Name: fmt.Sprintf("split-%d", i), Bytes: 2 << 20})
			}
			st = loader.LoadParallel(p, servers, splits, loader.DefaultCostModel())
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %8d %12v %12v %12v\n", n, st.LoadTime.Round(time.Millisecond),
			st.CopyTime.Round(time.Millisecond), st.WallClock.Round(time.Millisecond))
	}
	return nil
}

func ablation() error {
	fmt.Println("Table 1 ablations (8K random reads over RDMA):")
	a, err := exp.RunAblationSyncVsAsync(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("  %-28s chosen(%s)=%v  alt(%s)=%v  (%.2fx)\n",
		a.Choice, a.Chosen, a.ChosenLat.Round(time.Microsecond),
		a.Alternative, a.AltLat.Round(time.Microsecond), a.Factor())
	b, err := exp.RunAblationRegistration(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("  %-28s chosen(%s)=%v  alt(%s)=%v  (%.2fx)\n",
		b.Choice, b.Chosen, b.ChosenLat.Round(time.Microsecond),
		b.Alternative, b.AltLat.Round(time.Microsecond), b.Factor())
	c, err := exp.RunAblationEncryption(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("  %-28s chosen(%s)=%v  alt(%s)=%v  (%.2fx)\n",
		c.Choice, c.Chosen, c.ChosenLat.Round(time.Microsecond),
		c.Alternative, c.AltLat.Round(time.Microsecond), c.Factor())
	d, err := exp.RunAblationAdaptive(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("  %-28s chosen(%s)=%v  alt(%s)=%v  (%.2fx)\n",
		d.Choice, d.Chosen, d.ChosenLat.Round(time.Microsecond),
		d.Alternative, d.AltLat.Round(time.Microsecond), d.Factor())
	return nil
}

func plancache() error {
	fmt.Println("Plan cache: one query shape, shifting PK bounds, cache on vs off")
	prm := exp.DefaultPlanCacheParams()
	if *quick {
		prm.Reps = 50
	}
	res, err := exp.RunPlanCache(*seed, prm)
	if err != nil {
		return err
	}
	fmt.Printf("  %d reps: cached=%v uncached=%v (%.1fx)\n",
		prm.Reps, res.CachedTime.Round(time.Microsecond),
		res.UncachedTime.Round(time.Microsecond), res.Speedup)
	fmt.Printf("  cold query=%v warm query=%v  hits=%d misses=%d\n",
		res.ColdLat.Round(time.Microsecond), res.WarmLat.Round(time.Microsecond),
		res.Hits, res.Misses)
	metric("cached_ms", float64(res.CachedTime)/float64(time.Millisecond))
	metric("uncached_ms", float64(res.UncachedTime)/float64(time.Millisecond))
	metricDur("cold_lat_ms", res.ColdLat)
	metricDur("warm_lat_ms", res.WarmLat)
	metric("speedup", res.Speedup)
	metric("hits", float64(res.Hits))
	metric("misses", float64(res.Misses))
	return nil
}

func parscan() error {
	fmt.Println("Parallel scan: lineitem count over remote memory, DOP sweep")
	prm := exp.DefaultParScanParams()
	if *quick {
		prm.SF = 0.02
		prm.DOPs = []int{1, 4, 8}
	}
	pts, err := exp.RunParScan(*seed, prm)
	if err != nil {
		return err
	}
	fmt.Printf("  %6s %14s %16s %10s\n", "DOP", "elapsed", "rows/s", "speedup")
	for _, pt := range pts {
		fmt.Printf("  %6d %14v %16.0f %9.2fx\n", pt.DOP,
			pt.Elapsed.Round(time.Microsecond), pt.RowsPerSec, pt.Speedup)
		metric(fmt.Sprintf("dop%d/rows_per_sec", pt.DOP), pt.RowsPerSec)
		metric(fmt.Sprintf("dop%d/speedup", pt.DOP), pt.Speedup)
	}
	return nil
}

func faults() error {
	fmt.Println("Fault recovery (Custom design): RangeScan through a BPExt")
	fmt.Println("revocation storm inside a metastore partition; the FS re-leases")
	fmt.Println("and restripes while the engine keeps running off the data file.")
	prm := exp.DefaultFaultRecoveryParams()
	if *quick {
		prm.Rows = 30000
		prm.Window = 150 * time.Millisecond
	}
	res, err := exp.RunFaultRecovery(*seed, prm)
	if err != nil {
		return err
	}
	fmt.Printf("  throughput q/s:  healthy=%.0f  during=%.0f  after=%.0f\n",
		res.Healthy, res.During, res.After)
	fmt.Printf("  stripes: lost=%d re-leased=%d salvaged=%d\n",
		res.Lost, res.Restripes, res.Salvages)
	fmt.Printf("  metastore timeouts while partitioned: %d\n", res.Timeouts)
	fmt.Printf("  engine-visible query errors: %d\n", res.Errors)
	fmt.Printf("  recovered=%v bpext-healthy=%v\n", res.Recovered, res.ExtHealthy)
	metric("healthy_queries_per_sec", res.Healthy)
	metric("during_queries_per_sec", res.During)
	metric("after_queries_per_sec", res.After)
	metric("lost_stripes", float64(res.Lost))
	metric("restripes", float64(res.Restripes))
	metric("salvages", float64(res.Salvages))
	metric("metastore_timeouts", float64(res.Timeouts))
	metric("errors", float64(res.Errors))
	return nil
}

func scrub() error {
	fmt.Println("Scrub (Custom design, 2-way replicated + checksummed striping):")
	fmt.Println("a storm of bit flips, torn writes, and stale-replica resurrections")
	fmt.Println("poked into donor memory mid-RangeScan, then a full-file primary")
	fmt.Println("revocation storm. Every corruption must be detected and repaired")
	fmt.Println("from a replica; the revocations must need no salvage.")
	prm := exp.DefaultScrubParams()
	if *quick {
		prm.Rows = 40000
		prm.Clients = 8
		prm.Window = 120 * time.Millisecond
	}
	res, err := exp.RunScrub(*seed, prm)
	if err != nil {
		return err
	}
	fmt.Printf("  corruption storm: injected=%d detected=%d repaired=%d failovers=%d\n",
		res.Injected, res.Detected, res.Repaired, res.Failovers)
	fmt.Printf("  scrubber: sweeps=%d frames-verified=%d poisoned=%d\n",
		res.ScrubSweeps, res.ScrubChecked, res.Poisoned)
	fmt.Printf("  engine-visible errors: %d   throughput=%.0f q/s  mean=%v p95=%v\n",
		res.Errors, res.Throughput, res.MeanLat.Round(time.Microsecond), res.P95Lat.Round(time.Microsecond))
	fmt.Printf("  revocation storm: stripes=%d replica-rebuilds=%d salvages=%d lost=%d errors=%d healthy=%v\n",
		res.StormStripes, res.ReplicaRepairs, res.Salvages, res.LostStripes,
		res.StormErrors, res.StormHealthy)
	metric("injected", float64(res.Injected))
	metric("detected", float64(res.Detected))
	metric("repaired", float64(res.Repaired))
	metric("failovers", float64(res.Failovers))
	metric("scrub_sweeps", float64(res.ScrubSweeps))
	metric("scrub_checked", float64(res.ScrubChecked))
	metric("poisoned", float64(res.Poisoned))
	metric("errors", float64(res.Errors))
	metric("queries_per_sec", res.Throughput)
	metricDur("mean_lat_ms", res.MeanLat)
	metricDur("p95_lat_ms", res.P95Lat)
	metric("storm_stripes", float64(res.StormStripes))
	metric("replica_rebuilds", float64(res.ReplicaRepairs))
	metric("storm_salvages", float64(res.Salvages))
	metric("storm_lost_stripes", float64(res.LostStripes))
	metric("storm_errors", float64(res.StormErrors))
	return nil
}

func chaosBench() error {
	fmt.Println("Tail-tolerance chaos harness: slow donors (hedging A/B),")
	fmt.Println("a reclamation storm under the full stack, and a flapping donor")
	prm := exp.DefaultChaosParams()
	if *quick {
		prm = exp.QuickChaosParams()
	}
	res, err := exp.RunChaos(*seed, prm)
	if err != nil {
		return err
	}
	fmt.Printf("  %d participants, %d-way replicated stripes, hedge cap %.0f%%\n",
		res.Participants, prm.Replication, prm.HedgeRateCap*100)
	fmt.Printf("  slow donors (%d donors +%v):\n", prm.SlowDonors, prm.SlowBy)
	fmt.Printf("    hedging off: p50=%v p99=%v %.0f MB/s\n",
		res.SlowOff.P50.Round(time.Microsecond), res.SlowOff.P99.Round(time.Microsecond), res.SlowOff.BytesPerSec/1e6)
	fmt.Printf("    hedging on:  p50=%v p99=%v %.0f MB/s\n",
		res.SlowOn.P50.Round(time.Microsecond), res.SlowOn.P99.Round(time.Microsecond), res.SlowOn.BytesPerSec/1e6)
	fmt.Printf("    p99 cut %.1fx, hedge rate %.3f (%d hedges, %d wins, %d tolerant reads)\n",
		res.HedgeCut, res.HedgeRate, res.Hedged, res.HedgeWins, res.Tolerant)
	fmt.Printf("  reclamation storm: %d/%d leases shed\n", res.Shed, res.LiveBefore)
	fmt.Printf("    healthy:   p99=%v %.0f MB/s\n", res.Healthy.P99.Round(time.Microsecond), res.Healthy.BytesPerSec/1e6)
	fmt.Printf("    storm:     p99=%v %.0f MB/s\n", res.Storm.P99.Round(time.Microsecond), res.Storm.BytesPerSec/1e6)
	fmt.Printf("    recovered: p99=%v %.0f MB/s\n", res.Recovered.P99.Round(time.Microsecond), res.Recovered.BytesPerSec/1e6)
	fmt.Printf("    slow-reads=%d deadline-misses=%d hedged=%d proactive-migrations=%d\n",
		res.StormSlow, res.StormMisses, res.StormHedged, res.StormMigrations)
	fmt.Printf("  flapping donor: brownouts=%d quarantines=%d probes=%d recoveries=%d health-reports=%d\n",
		res.FlapBrownouts, res.FlapQuarantines, res.FlapProbes, res.FlapRecoveries, res.HealthReports)
	fmt.Printf("  fallback reads=%d engine-visible errors=%d\n", res.Fallbacks, res.Errors)

	metric("participants", float64(res.Participants))
	metricDur("slow_off_p50_ms", res.SlowOff.P50)
	metricDur("slow_off_p99_ms", res.SlowOff.P99)
	metric("slow_off_mb_per_sec", res.SlowOff.BytesPerSec/1e6)
	metricDur("slow_on_p50_ms", res.SlowOn.P50)
	metricDur("slow_on_p99_ms", res.SlowOn.P99)
	metric("slow_on_mb_per_sec", res.SlowOn.BytesPerSec/1e6)
	metric("hedge_cut", res.HedgeCut)
	metric("hedge_rate", res.HedgeRate)
	metric("hedged_reads", float64(res.Hedged))
	metric("hedge_wins", float64(res.HedgeWins))
	metric("tolerant_reads", float64(res.Tolerant))
	metric("live_before_storm", float64(res.LiveBefore))
	metric("shed", float64(res.Shed))
	metricDur("healthy_p99_ms", res.Healthy.P99)
	metric("healthy_mb_per_sec", res.Healthy.BytesPerSec/1e6)
	metricDur("storm_p99_ms", res.Storm.P99)
	metric("storm_mb_per_sec", res.Storm.BytesPerSec/1e6)
	metricDur("recovered_p99_ms", res.Recovered.P99)
	metric("recovered_mb_per_sec", res.Recovered.BytesPerSec/1e6)
	metric("storm_slow_reads", float64(res.StormSlow))
	metric("storm_deadline_misses", float64(res.StormMisses))
	metric("storm_hedged", float64(res.StormHedged))
	metric("storm_migrations", float64(res.StormMigrations))
	metric("flap_brownouts", float64(res.FlapBrownouts))
	metric("flap_quarantines", float64(res.FlapQuarantines))
	metric("flap_probes", float64(res.FlapProbes))
	metric("flap_recoveries", float64(res.FlapRecoveries))
	metric("health_reports", float64(res.HealthReports))
	metric("fallbacks", float64(res.Fallbacks))
	metric("errors", float64(res.Errors))
	return nil
}
