package main

import (
	"fmt"
	"time"

	"remotedb/internal/exp"
)

// pushdown sweeps donor-side pushdown vs fetch-all across predicate
// selectivities, checks the optimizer's placement against the measured
// best at each point, and drives a pushed scan through a corruption +
// revocation storm. The acceptance bars from the issue are enforced
// here so CI fails when the placement model drifts:
//
//   - >=3x speedup over fetch-all at 1% selectivity,
//   - fetch-all chosen and within 5% of the best arm at 100%,
//   - zero engine-visible errors (and no missing rows) when pushed
//     scans hit corrupted and revoked stripes.
func pushdown() error {
	fmt.Println("Operator pushdown: donor-side eval vs fetch-all by selectivity,")
	fmt.Println("optimizer placement, and a pushed scan through a corruption +")
	fmt.Println("revocation storm")
	prm := exp.DefaultPushdownParams()
	if *quick {
		prm.Rows = 30000
	}
	res, err := exp.RunPushdown(*seed, prm)
	if err != nil {
		return err
	}
	fmt.Printf("  segment: %d rows, %d MB; model crossover at %.1f%% selectivity\n",
		res.Rows, res.SegmentBytes>>20, res.Crossover*100)
	fmt.Printf("  %8s %10s %12s %12s %10s %12s %8s %8s\n",
		"sel", "matched", "push", "fetch-all", "chosen", "chosen t", "speedup", "of-best")
	var at1pct, at100pct *exp.PushdownPoint
	for i := range res.Points {
		pt := &res.Points[i]
		fmt.Printf("  %7.1f%% %10d %12v %12v %10s %12v %7.2fx %7.2fx\n",
			pt.Selectivity*100, pt.Matched,
			pt.Push.Round(time.Microsecond), pt.Fetch.Round(time.Microsecond),
			pt.Chosen, pt.ChosenTime.Round(time.Microsecond),
			pt.Speedup, pt.WithinBest)
		key := fmt.Sprintf("sel%g", pt.Selectivity)
		metricDur(key+"/push_ms", pt.Push)
		metricDur(key+"/fetch_ms", pt.Fetch)
		metricDur(key+"/chosen_ms", pt.ChosenTime)
		metric(key+"/speedup", pt.Speedup)
		metric(key+"/within_best", pt.WithinBest)
		switch pt.Selectivity {
		case 0.01:
			at1pct = pt
		case 1.0:
			at100pct = pt
		}
	}
	fmt.Printf("  storm: rows=%d errors=%d exec-fallbacks=%d block-fallbacks=%d corruptions=%d push-reads=%d\n",
		res.FaultRows, res.FaultErrors, res.ExecFallbacks, res.BlockFallbacks,
		res.Corruptions, res.PushReads)
	metric("crossover_pct", res.Crossover*100)
	metric("fault_rows", float64(res.FaultRows))
	metric("fault_errors", float64(res.FaultErrors))
	metric("exec_fallbacks", float64(res.ExecFallbacks))
	metric("block_fallbacks", float64(res.BlockFallbacks))
	metric("corruptions", float64(res.Corruptions))
	metric("push_reads", float64(res.PushReads))

	// Acceptance bars.
	if at1pct == nil || at100pct == nil {
		return fmt.Errorf("sweep missing the 1%% or 100%% selectivity point")
	}
	if at1pct.Speedup < 3 {
		return fmt.Errorf("pushdown speedup at 1%% selectivity is %.2fx, want >= 3x", at1pct.Speedup)
	}
	if at100pct.Chosen != "FetchAll" {
		return fmt.Errorf("optimizer chose %s at 100%% selectivity, want FetchAll", at100pct.Chosen)
	}
	if at100pct.WithinBest > 1.05 {
		return fmt.Errorf("chosen placement at 100%% selectivity is %.2fx the best arm, want <= 1.05x", at100pct.WithinBest)
	}
	if res.FaultErrors != 0 {
		return fmt.Errorf("%d engine-visible errors through the corruption/revocation storm, want 0", res.FaultErrors)
	}
	if res.FaultRows != at1pct.Matched {
		return fmt.Errorf("storm scan returned %d rows, want the clean count %d", res.FaultRows, at1pct.Matched)
	}
	if res.Corruptions == 0 || res.BlockFallbacks == 0 {
		return fmt.Errorf("storm detected %d corruptions with %d block fallbacks; the fault lane did not exercise the ladder",
			res.Corruptions, res.BlockFallbacks)
	}
	return nil
}
