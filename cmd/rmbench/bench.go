// Machine-readable results: with -json, every experiment additionally
// writes BENCH_<experiment>.json next to its human-readable table —
// experiment name, seed, wall-clock, and a flat metric map (throughput,
// latency percentiles, fault counters) for dashboards and regression
// diffing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

var jsonOut = flag.Bool("json", false, "also write BENCH_<experiment>.json with machine-readable results")

// benchFile is the emitted JSON document.
type benchFile struct {
	Experiment string             `json:"experiment"`
	Seed       int64              `json:"seed"`
	Quick      bool               `json:"quick"`
	WallMS     int64              `json:"wall_ms"`
	Metrics    map[string]float64 `json:"metrics"`
}

// bench accumulates the metrics of the experiment currently running.
var bench = struct{ metrics map[string]float64 }{}

func benchReset() { bench.metrics = make(map[string]float64) }

// metric records one named value (no-op without -json).
func metric(name string, v float64) {
	if bench.metrics != nil {
		bench.metrics[name] = v
	}
}

// metricDur records a duration in milliseconds.
func metricDur(name string, d time.Duration) {
	metric(name, float64(d)/float64(time.Millisecond))
}

// benchWrite emits BENCH_<name>.json for the experiment just finished.
func benchWrite(name string, start time.Time) error {
	doc := benchFile{
		Experiment: name,
		Seed:       *seed,
		Quick:      *quick,
		WallMS:     time.Since(start).Milliseconds(),
		Metrics:    bench.metrics,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	path := fmt.Sprintf("BENCH_%s.json", name)
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s]\n", path)
	return nil
}
