// Command benchdiff compares two BENCH_<experiment>.json files produced
// by rmbench -json and exits non-zero if any metric regressed (or
// improved) by more than the tolerance. Wall-clock time is ignored: the
// experiments run on a deterministic simulator, so metric values are
// exactly reproducible and any drift beyond float noise is a real
// behavior change.
//
// Usage:
//
//	benchdiff [-tol 0.10] baseline.json current.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

var tol = flag.Float64("tol", 0.10, "maximum allowed relative change per metric")

type benchFile struct {
	Experiment string             `json:"experiment"`
	Seed       int64              `json:"seed"`
	Quick      bool               `json:"quick"`
	Metrics    map[string]float64 `json:"metrics"`
}

func load(path string) (*benchFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol F] baseline.json current.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	if base.Experiment != cur.Experiment {
		fmt.Fprintf(os.Stderr, "benchdiff: comparing %q against %q\n", cur.Experiment, base.Experiment)
		os.Exit(1)
	}
	var names []string
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	for _, name := range names {
		b := base.Metrics[name]
		c, ok := cur.Metrics[name]
		if !ok {
			fmt.Printf("MISSING %-40s baseline=%g\n", name, b)
			failed++
			continue
		}
		var rel float64
		switch {
		case b == c:
			rel = 0
		case b == 0:
			rel = math.Inf(1)
		default:
			rel = math.Abs(c-b) / math.Abs(b)
		}
		status := "ok"
		if rel > *tol {
			status = "FAIL"
			failed++
		}
		if rel != 0 || status == "FAIL" {
			fmt.Printf("%-4s %-40s baseline=%-12g current=%-12g (%+.1f%%)\n",
				status, name, b, c, 100*(c-b)/math.Abs(b))
		}
	}
	for name, c := range cur.Metrics {
		if _, ok := base.Metrics[name]; !ok {
			fmt.Printf("NEW  %-40s current=%g (not in baseline)\n", name, c)
		}
	}
	if failed > 0 {
		fmt.Printf("benchdiff: %d metric(s) moved more than %.0f%% in %s\n",
			failed, *tol*100, cur.Experiment)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %s within %.0f%% of baseline (%d metrics)\n",
		cur.Experiment, *tol*100, len(names))
}
