// Command benchdiff compares BENCH_<experiment>.json files produced by
// rmbench -json and exits non-zero if any metric regressed (or
// improved) by more than the tolerance. Wall-clock time is ignored: the
// experiments run on a deterministic simulator, so metric values are
// exactly reproducible and any drift beyond float noise is a real
// behavior change.
//
// Usage:
//
//	benchdiff [-tol 0.10] baseline.json current.json
//	benchdiff [-tol 0.10] [-require a,b,c] baselineDir currentDir
//
// In directory mode every baseline BENCH_*.json is visited in sorted
// order and compared against the same-named file in currentDir; a
// missing current file fails that experiment. -require names the
// experiments the gate must cover (comma-separated, without the BENCH_
// prefix): a required baseline that does not exist fails the run
// loudly, so deleting a committed baseline cannot silently shrink the
// regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

var (
	tol     = flag.Float64("tol", 0.10, "maximum allowed relative change per metric")
	require = flag.String("require", "", "comma-separated experiment names that must have a baseline (directory mode)")
)

type benchFile struct {
	Experiment string             `json:"experiment"`
	Seed       int64              `json:"seed"`
	Quick      bool               `json:"quick"`
	Metrics    map[string]float64 `json:"metrics"`
}

func load(path string) (*benchFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// compare diffs one baseline file against one current file and returns
// the number of metrics that moved beyond the tolerance.
func compare(basePath, curPath string) int {
	base, err := load(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 1
	}
	cur, err := load(curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 1
	}
	if base.Experiment != cur.Experiment {
		fmt.Fprintf(os.Stderr, "benchdiff: comparing %q against %q\n", cur.Experiment, base.Experiment)
		return 1
	}
	var names []string
	for name := range base.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	for _, name := range names {
		b := base.Metrics[name]
		c, ok := cur.Metrics[name]
		if !ok {
			fmt.Printf("MISSING %-40s baseline=%g\n", name, b)
			failed++
			continue
		}
		var rel float64
		switch {
		case b == c:
			rel = 0
		case b == 0:
			rel = math.Inf(1)
		default:
			rel = math.Abs(c-b) / math.Abs(b)
		}
		status := "ok"
		if rel > *tol {
			status = "FAIL"
			failed++
		}
		if rel != 0 || status == "FAIL" {
			fmt.Printf("%-4s %-40s baseline=%-12g current=%-12g (%+.1f%%)\n",
				status, name, b, c, 100*(c-b)/math.Abs(b))
		}
	}
	for name, c := range cur.Metrics {
		if _, ok := base.Metrics[name]; !ok {
			fmt.Printf("NEW  %-40s current=%g (not in baseline)\n", name, c)
		}
	}
	if failed > 0 {
		fmt.Printf("benchdiff: %d metric(s) moved more than %.0f%% in %s\n",
			failed, *tol*100, cur.Experiment)
	} else {
		fmt.Printf("benchdiff: %s within %.0f%% of baseline (%d metrics)\n",
			cur.Experiment, *tol*100, len(names))
	}
	return failed
}

// compareDirs walks every baseline BENCH_*.json in sorted order and
// diffs it against the same-named file in curDir. Required experiments
// without a baseline fail loudly instead of being skipped.
func compareDirs(baseDir, curDir string) int {
	paths, err := filepath.Glob(filepath.Join(baseDir, "BENCH_*.json"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		return 1
	}
	sort.Strings(paths)
	have := make(map[string]bool, len(paths))
	failed := 0
	for _, basePath := range paths {
		name := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(basePath), "BENCH_"), ".json")
		have[name] = true
		curPath := filepath.Join(curDir, filepath.Base(basePath))
		if _, err := os.Stat(curPath); err != nil {
			fmt.Printf("FAIL %s: no current run (%v)\n", name, err)
			failed++
			continue
		}
		failed += compare(basePath, curPath)
	}
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" || have[name] {
				continue
			}
			fmt.Printf("FAIL %s: required baseline %s is missing from %s\n",
				name, "BENCH_"+name+".json", baseDir)
			failed++
		}
	}
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no BENCH_*.json baselines under %s\n", baseDir)
		failed++
	}
	return failed
}

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol F] baseline.json current.json")
		fmt.Fprintln(os.Stderr, "       benchdiff [-tol F] [-require a,b,c] baselineDir currentDir")
		os.Exit(2)
	}
	baseInfo, err := os.Stat(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	var failed int
	if baseInfo.IsDir() {
		failed = compareDirs(flag.Arg(0), flag.Arg(1))
	} else {
		failed = compare(flag.Arg(0), flag.Arg(1))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
