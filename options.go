// Unified error taxonomy and functional options for the remotedb
// facade.
//
// Errors: every layer of the stack (metastore, broker, rmem transport,
// remote FS, vfs) wraps its sentinels over the five classes re-exported
// here, so callers classify failures with errors.Is against this package
// alone — errors.Is(err, remotedb.ErrUnavailable) holds whether the
// error was produced three layers down by a revoked memory region or by
// the file layer's degraded mode.
//
// Options: the With... functional options below parameterize the
// Start*/Mount*/NewTestBed constructors. Every constructor takes the
// same Option type and reads the fields it understands; an option that a
// constructor does not consume is simply ignored, so a common option set
// can be reused across calls.
package remotedb

import (
	"time"

	"remotedb/internal/broker"
	"remotedb/internal/core"
	"remotedb/internal/engine"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/exp"
	"remotedb/internal/fault"
	"remotedb/internal/vfs"
)

// The repository-wide error classes. Concrete layer errors wrap exactly
// one of these (via %w), so errors.Is classifies any error from any
// layer:
//
//	ErrRetryable   — transient; retrying with backoff may succeed
//	ErrRevoked     — a lease or memory region was revoked / expired
//	ErrUnavailable — backing storage is gone; fall back to base data
//	ErrNotFound    — the named object does not exist
//	ErrClosed      — the object was closed and cannot be used
//	ErrCorrupt     — stored bytes failed end-to-end integrity verification
var (
	ErrRetryable   = fault.ErrRetryable
	ErrRevoked     = fault.ErrRevoked
	ErrUnavailable = fault.ErrUnavailable
	ErrNotFound    = fault.ErrNotFound
	ErrClosed      = fault.ErrClosed
	ErrCorrupt     = fault.ErrCorrupt

	// ErrSlow marks an operation abandoned because its deadline budget
	// ran out while a donor was slow (see WithDeadlineBudget). It wraps
	// ErrRetryable: the data is intact, only this attempt was slow.
	ErrSlow = fault.ErrSlow
)

// Slow reports whether err is a blown deadline budget (wraps ErrSlow).
func Slow(err error) bool { return fault.Slow(err) }

// Retryable reports whether err is classified transient (wraps
// ErrRetryable), i.e. worth retrying with backoff.
func Retryable(err error) bool { return fault.Retryable(err) }

// RetryPolicy is the exponential-backoff-with-jitter policy used for
// transient broker/metastore failures (lease renewal, re-leasing).
type RetryPolicy = fault.RetryPolicy

// DefaultRetryPolicy retries 5 times from 1 ms, doubling, capped at
// 100 ms, with 20% jitter.
func DefaultRetryPolicy() RetryPolicy { return fault.DefaultRetryPolicy() }

// Salvage repopulates a byte range of a remote file after its stripe
// was lost and re-leased (see RemoteFile and the fault-tolerance section
// of DESIGN.md).
type Salvage = core.Salvage

// Placement chooses how leased MRs spread over memory servers.
type Placement = broker.Placement

// The two placement policies.
const (
	PlacePack   = broker.PlacePack
	PlaceSpread = broker.PlaceSpread
)

// settings collects everything the option-based constructors can be
// told. One shared struct (rather than per-constructor option types)
// keeps a single Option namespace: WithLeaseTTL works on StartBroker and
// NewTestBed alike.
type settings struct {
	stripeSize   int
	leaseTTL     time.Duration
	expireEvery  time.Duration
	retry        *RetryPolicy
	salvage      Salvage
	bufferFrames int
	bpextSlots   int
	bpextBytes   int64
	grant        int64
	protocol     *Protocol
	placement    *Placement
	autoRenew    *bool
	recover      *bool
	remoteSrvs   int
	replication  int
	integrity    *bool
	scrubEvery   time.Duration
	semCache     EngineConfig // only the SemCache field is read
	planCache    *int
	dop          int
	eviction     *EvictionPolicy
	batchedIO    *bool
	readahead    int
	pushdown     *bool
	donorPrice   float64
	brokerShards int
	hbEvery      time.Duration
	tenant       string
	quotas       map[string]int64
	budget       time.Duration
	hedging      *bool
	hedgeAfter   time.Duration
	hedgeCap     float64
	healthChecks *bool
}

// Option parameterizes the Start*/Mount*/NewTestBed constructors.
type Option func(*settings)

func apply(opts []Option) *settings {
	s := &settings{}
	for _, o := range opts {
		o(s)
	}
	return s
}

// WithStripeSize sets the memory-region (stripe) size in bytes.
// Consumed by NewTestBed (the size its donors pin and register).
func WithStripeSize(bytes int) Option { return func(s *settings) { s.stripeSize = bytes } }

// WithLeaseTTL sets the broker's lease time-to-live. Consumed by
// StartBroker and NewTestBed.
func WithLeaseTTL(ttl time.Duration) Option { return func(s *settings) { s.leaseTTL = ttl } }

// WithExpirySweep starts the broker's expiry sweep at the given cadence.
// Consumed by NewTestBed.
func WithExpirySweep(every time.Duration) Option {
	return func(s *settings) { s.expireEvery = every }
}

// WithRetryPolicy sets the backoff policy for transient broker and
// metastore failures. Consumed by MountRemoteFS and NewTestBed.
func WithRetryPolicy(rp RetryPolicy) Option { return func(s *settings) { s.retry = &rp } }

// WithSalvage installs the FS-wide default stripe-repopulation callback
// run after a lost stripe is re-leased. Consumed by MountRemoteFS.
func WithSalvage(fn Salvage) Option { return func(s *settings) { s.salvage = fn } }

// WithBufferFrames sets the engine's buffer-pool size in 8 KiB frames.
// Consumed by StartEngine.
func WithBufferFrames(frames int) Option { return func(s *settings) { s.bufferFrames = frames } }

// WithBPExtSlots sets the buffer-pool extension capacity in pages.
// Consumed by StartEngine (requires a BPExt file in EngineFiles).
func WithBPExtSlots(slots int) Option { return func(s *settings) { s.bpextSlots = slots } }

// WithGrant sets the per-query memory grant in bytes. Consumed by
// StartEngine.
func WithGrant(bytes int64) Option { return func(s *settings) { s.grant = bytes } }

// WithProtocol selects the transport (ProtoRDMA, ProtoSMBDirect,
// ProtoSMB). Consumed by MountRemoteFS.
func WithProtocol(proto Protocol) Option { return func(s *settings) { s.protocol = &proto } }

// WithPlacement selects how leased MRs spread over servers. Consumed by
// MountRemoteFS.
func WithPlacement(pl Placement) Option { return func(s *settings) { s.placement = &pl } }

// WithAutoRenew enables or disables the per-file background lease
// renewal process. Consumed by MountRemoteFS.
func WithAutoRenew(on bool) Option { return func(s *settings) { s.autoRenew = &on } }

// WithRecovery enables or disables re-lease/restripe recovery of lost
// stripes (on by default; off restores the original fail-to-disk
// behavior). Consumed by MountRemoteFS and NewTestBed.
func WithRecovery(on bool) Option { return func(s *settings) { s.recover = &on } }

// WithRemoteServers sets how many memory servers donate MRs. Consumed
// by NewTestBed.
func WithRemoteServers(n int) Option { return func(s *settings) { s.remoteSrvs = n } }

// WithReplication stripes every remote file over k replicas per stripe,
// placed on distinct donors (anti-affinity). k > 1 implies integrity
// framing: reads verify each block and fail over to a healthy replica on
// corruption or revocation, with no degraded window and no salvage.
// Consumed by MountRemoteFS and NewTestBed.
func WithReplication(k int) Option { return func(s *settings) { s.replication = k } }

// WithIntegrity enables (or disables) checksummed block framing: every
// remote write seals each block with a CRC-32C and a generation stamp,
// and every read verifies both, so a bit flip, torn write, or stale
// replica surfaces as ErrCorrupt rather than silently wrong bytes.
// Implied by WithReplication(k>1). Consumed by MountRemoteFS and
// NewTestBed.
func WithIntegrity(on bool) Option { return func(s *settings) { s.integrity = &on } }

// WithScrubEvery starts a per-file background scrubber that sweeps one
// stripe per tick, verifying every written block on every replica and
// repairing latent corruption from a healthy copy (0 leaves scrubbing
// off). Requires integrity framing. Consumed by MountRemoteFS and
// NewTestBed.
func WithScrubEvery(d time.Duration) Option { return func(s *settings) { s.scrubEvery = d } }

// WithBPExtBytes sets the buffer-pool extension file size in bytes.
// Consumed by NewTestBed.
func WithBPExtBytes(bytes int64) Option { return func(s *settings) { s.bpextBytes = bytes } }

// WithSemCache points the engine's semantic cache at a file factory
// (nil leaves the cache disabled). Consumed by StartEngine.
func WithSemCache(factory SemCacheFactory) Option {
	return func(s *settings) { s.semCache.SemCache = factory }
}

// SemCacheFactory creates the backing file for one semantic-cache
// entry; it is how the cache is pointed at remote memory, SSD, or HDD.
type SemCacheFactory = engine.SemCacheFactory

// WithPlanCache bounds the planner's plan cache to entries cached plan
// shapes (0 keeps the default of 128; negative disables plan caching,
// forcing re-optimization on every query). Consumed by StartEngine.
func WithPlanCache(entries int) Option {
	return func(s *settings) { s.planCache = &entries }
}

// WithDOP sets the degree of intra-query parallelism offered to the
// planner (0 keeps the default of 4; 1 forces serial plans). Consumed
// by StartEngine.
func WithDOP(n int) Option { return func(s *settings) { s.dop = n } }

// EvictionPolicy selects the buffer pool's page replacement policy.
type EvictionPolicy = buffer.Policy

// The two eviction policies: the cost-aware GDSF heap, whose miss cost
// is the calibrated latency of the tier a page would actually fall to
// (the default), and the legacy clock sweep kept for A/B comparisons.
const (
	EvictGDSF  = buffer.PolicyGDSF
	EvictClock = buffer.PolicyClock
)

// WithEviction selects the buffer pool's eviction policy. Consumed by
// StartEngine and NewTestBed.
func WithEviction(pol EvictionPolicy) Option {
	return func(s *settings) { s.eviction = &pol }
}

// WithBatchedIO enables or disables the buffer pool's vectored I/O
// paths: batched lazy-writer flushes, grouped extension puts, and scan
// readahead (on by default). Consumed by StartEngine and NewTestBed.
func WithBatchedIO(on bool) Option { return func(s *settings) { s.batchedIO = &on } }

// WithReadahead sets the scan readahead window in pages (0 keeps the
// default of 8; requires batched I/O). Consumed by StartEngine and
// NewTestBed.
func WithReadahead(pages int) Option { return func(s *settings) { s.readahead = pages } }

// WithPushdown lets the planner place pushable scans at the donors:
// once a table has a pushable segment (Engine.BuildPushSegment), the
// optimizer costs donor-side evaluation against fetch-all and a local
// scan, and the executor degrades per partition to fetch-all whenever a
// donor cannot evaluate (off by default). Consumed by StartEngine and
// NewTestBed.
func WithPushdown(on bool) Option { return func(s *settings) { s.pushdown = &on } }

// WithDonorCPU scales donor CPU in the placement cost model: a price
// above 1 makes donor cycles pricier than the client's, lowering the
// selectivity at which the optimizer stops pushing work to the donors
// (0 keeps the default of 1). Consumed by StartEngine and NewTestBed.
func WithDonorCPU(price float64) Option { return func(s *settings) { s.donorPrice = price } }

// WithBrokerShards shards the broker's lease space across n replicas:
// lease IDs are strided so any lease routes back to its shard, donors
// and holders spread over shards by rendezvous hashing, and a failed
// shard hands its state to a recovered replacement without disturbing
// the others. 0 or 1 keeps a single shard. Consumed by StartBroker and
// NewTestBed.
func WithBrokerShards(n int) Option { return func(s *settings) { s.brokerShards = n } }

// WithHeartbeatEvery sets the batched lease-heartbeat cadence: one
// renewal round trip per holder per tick covers every lease the holder
// owns (0 = half the lease TTL). Consumed by MountRemoteFS and
// NewTestBed.
func WithHeartbeatEvery(d time.Duration) Option { return func(s *settings) { s.hbEvery = d } }

// WithTenant tags the mounted file system's lease requests with a
// tenant name for broker admission accounting (defaults to the holder's
// server name). Consumed by MountRemoteFS.
func WithTenant(name string) Option { return func(s *settings) { s.tenant = name } }

// WithTenantQuota caps the named tenant's leased bytes at the broker; a
// request past the cap fails with ErrQuota (non-retryable) rather than
// eating the pool. Repeat for each tenant. Consumed by StartBroker and
// NewTestBed.
func WithTenantQuota(name string, bytes int64) Option {
	return func(s *settings) {
		if s.quotas == nil {
			s.quotas = make(map[string]int64)
		}
		s.quotas[name] = bytes
	}
}

// WithDeadlineBudget bounds every remote-memory transfer with a
// deadline budget: an op still in flight past the budget is abandoned
// with an error wrapping ErrRetryable (classified by Slow), and the
// access falls back to the local tier instead of riding a slow donor.
// On StartEngine the same duration is stamped on each query as its
// per-query budget, shared by every remote read the query issues.
// Consumed by MountRemoteFS, StartEngine and NewTestBed.
func WithDeadlineBudget(d time.Duration) Option { return func(s *settings) { s.budget = d } }

// WithHedging races a slow primary replica read against the next
// replica: once the primary exceeds the donor's learned p95 latency
// (see WithHedgeAfter for a fixed trigger), the same read fires at a
// second replica and the first verified frame wins. Requires
// WithReplication(k>1) to have a replica to hedge to. Consumed by
// MountRemoteFS and NewTestBed.
func WithHedging(on bool) Option { return func(s *settings) { s.hedging = &on } }

// WithHedgeAfter fixes the hedge trigger latency instead of the
// adaptive per-donor p95. Consumed by MountRemoteFS and NewTestBed.
func WithHedgeAfter(d time.Duration) Option { return func(s *settings) { s.hedgeAfter = d } }

// WithHedgeRateCap bounds hedged reads as a fraction of tolerant reads
// (default 0.1), so hedging cannot double wire load when the whole
// fleet slows at once. Consumed by MountRemoteFS and NewTestBed.
func WithHedgeRateCap(frac float64) Option { return func(s *settings) { s.hedgeCap = frac } }

// WithHealthChecks scores every donor (latency and error-rate EWMAs)
// and runs a three-state breaker over the scores: browned-out donors
// are read last and deprioritized for new leases (the holder's avoid
// set piggybacks on its batched heartbeat so the broker deprioritizes
// them fleet-wide), quarantined donors get their replicas proactively
// migrated to healthy donors, and probe reads let a recovered donor
// earn its way back. Consumed by MountRemoteFS and NewTestBed.
func WithHealthChecks(on bool) Option { return func(s *settings) { s.healthChecks = &on } }

// StartBroker creates a cluster-scale memory broker backed by store,
// configured by options (WithLeaseTTL, WithBrokerShards,
// WithTenantQuota). With one shard (the default) it behaves exactly
// like the classic single broker; more shards spread the lease space
// over independent replicas.
func StartBroker(p *Proc, store *MetaStore, opts ...Option) *BrokerCluster {
	s := apply(opts)
	cfg := broker.DefaultConfig()
	if s.leaseTTL > 0 {
		cfg.LeaseTTL = s.leaseTTL
	}
	cfg.Quotas = s.quotas
	n := s.brokerShards
	if n <= 0 {
		n = 1
	}
	return broker.NewCluster(p, store, n, cfg)
}

// MountRemoteFS creates the remote file system client on the database
// server owning client, configured by options (WithProtocol,
// WithPlacement, WithAutoRenew, WithRecovery, WithRetryPolicy,
// WithSalvage, WithReplication, WithIntegrity, WithScrubEvery,
// WithTenant, WithHeartbeatEvery, WithDeadlineBudget, WithHedging,
// WithHedgeAfter, WithHedgeRateCap, WithHealthChecks). b is any
// LeaseService — a
// single-shard *Broker or the sharded *BrokerCluster from StartBroker.
func MountRemoteFS(p *Proc, b LeaseService, client *RemoteClient, opts ...Option) *RemoteFS {
	s := apply(opts)
	cfg := core.DefaultConfig()
	if s.replication > 0 {
		cfg.Replication = s.replication
	}
	if s.integrity != nil {
		cfg.Integrity = *s.integrity
	}
	if s.scrubEvery > 0 {
		cfg.ScrubEvery = s.scrubEvery
	}
	if s.protocol != nil {
		cfg.Protocol = *s.protocol
	}
	if s.placement != nil {
		cfg.Placement = *s.placement
	}
	if s.autoRenew != nil {
		cfg.AutoRenew = *s.autoRenew
	}
	if s.recover != nil {
		cfg.Recover = *s.recover
	}
	if s.retry != nil {
		cfg.Retry = *s.retry
	}
	if s.salvage != nil {
		cfg.Salvage = s.salvage
	}
	if s.tenant != "" {
		cfg.Tenant = s.tenant
	}
	if s.hbEvery > 0 {
		cfg.HeartbeatEvery = s.hbEvery
	}
	if s.budget > 0 {
		cfg.DeadlineBudget = s.budget
	}
	if s.hedging != nil {
		cfg.Hedging = *s.hedging
	}
	if s.hedgeAfter > 0 {
		cfg.HedgeAfter = s.hedgeAfter
	}
	if s.hedgeCap > 0 {
		cfg.HedgeRateCap = s.hedgeCap
	}
	if s.healthChecks != nil {
		cfg.HealthChecks = *s.healthChecks
	}
	return core.NewFS(p, b, client, cfg)
}

// StartEngine assembles the mini-RDBMS on server over the given storage
// placement, configured by options (WithBufferFrames, WithBPExtSlots,
// WithGrant, WithSemCache, WithPlanCache, WithDOP, WithEviction,
// WithBatchedIO, WithReadahead, WithPushdown, WithDonorCPU,
// WithDeadlineBudget).
func StartEngine(p *Proc, server *Server, files EngineFiles, opts ...Option) (*Engine, error) {
	s := apply(opts)
	frames := s.bufferFrames
	if frames <= 0 {
		frames = 4096 // 32 MiB of 8 KiB frames, the paper's default
	}
	cfg := engine.DefaultConfig(frames)
	if s.bpextSlots > 0 {
		cfg.BPExtSlots = s.bpextSlots
	}
	if s.grant > 0 {
		cfg.Grant = s.grant
	}
	cfg.SemCache = s.semCache.SemCache
	if s.planCache != nil {
		cfg.PlanCacheEntries = *s.planCache
		if *s.planCache < 0 {
			cfg.PlanCacheEntries = -1
		}
	}
	if s.dop > 0 {
		cfg.DOP = s.dop
	}
	if s.eviction != nil {
		cfg.Eviction = *s.eviction
	}
	if s.batchedIO != nil {
		cfg.NoBatchedIO = !*s.batchedIO
	}
	if s.readahead > 0 {
		cfg.Readahead = s.readahead
	}
	if s.pushdown != nil {
		cfg.Pushdown = *s.pushdown
	}
	if s.donorPrice > 0 {
		cfg.DonorPrice = s.donorPrice
	}
	if s.budget > 0 {
		cfg.Budget = s.budget
	}
	return engine.New(p, server, files, cfg)
}

// NewTestBed assembles a full test bed for one of the Table 5 designs,
// configured by options (WithStripeSize, WithLeaseTTL, WithExpirySweep,
// WithRetryPolicy, WithRecovery, WithRemoteServers, WithBufferFrames,
// WithBPExtBytes, WithReplication, WithIntegrity, WithScrubEvery,
// WithEviction, WithBatchedIO, WithReadahead, WithPushdown,
// WithDonorCPU, WithBrokerShards, WithHeartbeatEvery, WithTenantQuota,
// WithDeadlineBudget, WithHedging, WithHedgeAfter, WithHedgeRateCap,
// WithHealthChecks).
func NewTestBed(p *Proc, d Design, opts ...Option) (*Bed, error) {
	s := apply(opts)
	cfg := exp.DefaultBedConfig(d)
	if s.replication > 0 {
		cfg.Replication = s.replication
	}
	if s.integrity != nil {
		cfg.Integrity = *s.integrity
	}
	if s.scrubEvery > 0 {
		cfg.ScrubEvery = s.scrubEvery
	}
	if s.bpextBytes > 0 {
		cfg.BPExtBytes = s.bpextBytes
	}
	if s.stripeSize > 0 {
		cfg.MRBytes = s.stripeSize
	}
	if s.leaseTTL > 0 {
		cfg.LeaseTTL = s.leaseTTL
	}
	if s.expireEvery > 0 {
		cfg.ExpireEvery = s.expireEvery
	}
	if s.retry != nil {
		cfg.Retry = *s.retry
	}
	if s.recover != nil {
		cfg.NoRecover = !*s.recover
	}
	if s.remoteSrvs > 0 {
		cfg.RemoteServers = s.remoteSrvs
	}
	if s.bufferFrames > 0 {
		cfg.LocalMemBytes = int64(s.bufferFrames) * 8192
	}
	if s.eviction != nil {
		cfg.Eviction = *s.eviction
	}
	if s.batchedIO != nil {
		cfg.NoBatchedIO = !*s.batchedIO
	}
	if s.readahead > 0 {
		cfg.Readahead = s.readahead
	}
	if s.pushdown != nil {
		cfg.Pushdown = *s.pushdown
	}
	if s.donorPrice > 0 {
		cfg.DonorPrice = s.donorPrice
	}
	if s.brokerShards > 0 {
		cfg.BrokerShards = s.brokerShards
	}
	if s.hbEvery > 0 {
		cfg.HeartbeatEvery = s.hbEvery
	}
	if s.quotas != nil {
		cfg.TenantQuotas = s.quotas
	}
	if s.budget > 0 {
		cfg.DeadlineBudget = s.budget
	}
	if s.hedging != nil {
		cfg.Hedging = *s.hedging
	}
	if s.hedgeAfter > 0 {
		cfg.HedgeAfter = s.hedgeAfter
	}
	if s.hedgeCap > 0 {
		cfg.HedgeRateCap = s.hedgeCap
	}
	if s.healthChecks != nil {
		cfg.HealthChecks = *s.healthChecks
	}
	return exp.NewBed(p, cfg)
}

// Every concrete file the facade hands out satisfies the one interface
// the engine consumes.
var (
	_ File = (*core.File)(nil)
	_ File = (*vfs.MemFile)(nil)
	_ File = (*vfs.DeviceFile)(nil)
)
