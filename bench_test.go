// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each BenchmarkFigNN runs the corresponding experiment in
// internal/exp and reports the paper's headline quantities as custom
// benchmark metrics (simulated throughput, latency, improvement
// factors). Absolute wall-clock ns/op is the cost of running the
// simulation, not a result.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// or a single figure with e.g. -bench=BenchmarkFig14.
package remotedb_test

import (
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/loader"
	"remotedb/internal/exp"
	"remotedb/internal/sim"
)

const benchSeed = 42

func BenchmarkFig03_04_IOMicro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunIOMicro(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Config == "Custom" && r.Pattern == "8K Random" {
				b.ReportMetric(r.BytesPerSec/1e9, "custom-rnd-GB/s")
				b.ReportMetric(float64(r.Latency.Microseconds()), "custom-rnd-µs")
			}
			if r.Config == "HDD(20)" && r.Pattern == "512K Sequential" {
				b.ReportMetric(r.BytesPerSec/1e9, "hdd20-seq-GB/s")
			}
		}
	}
}

func BenchmarkFig05_MultiMemoryServers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.RunFig05MultiMemoryServers(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].RandomBPS/1e9, "8srv-rnd-GB/s")
	}
}

func BenchmarkFig06_MultiDBServers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.RunFig06MultiDBServers(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].RandomBPS/1e9, "8db-agg-GB/s")
		b.ReportMetric(float64(pts[len(pts)-1].RandomLat.Microseconds()), "8db-lat-µs")
	}
}

// rangeScanBench runs the Figure 7-10 matrix at 20 spindles for the two
// headline designs.
func rangeScanBench(b *testing.B, updates float64) {
	for i := 0; i < b.N; i++ {
		prm := exp.DefaultRangeScanParams()
		prm.UpdateFraction = updates
		custom, err := exp.RunRangeScan(benchSeed, exp.DesignCustom, prm)
		if err != nil {
			b.Fatal(err)
		}
		base, err := exp.RunRangeScan(benchSeed, exp.DesignHDDSSD, prm)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(custom.Throughput, "custom-q/s")
		b.ReportMetric(base.Throughput, "hddssd-q/s")
		b.ReportMetric(custom.Throughput/base.Throughput, "speedup-x")
	}
}

func BenchmarkFig07_08_RangeScanUpdates(b *testing.B)  { rangeScanBench(b, 0.20) }
func BenchmarkFig09_10_RangeScanReadOnly(b *testing.B) { rangeScanBench(b, 0) }

func BenchmarkFig11_RangeScanDrilldown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dds, err := exp.RunFig11Drilldown(benchSeed, time.Second)
		if err != nil {
			b.Fatal(err)
		}
		for _, dd := range dds {
			if dd.Design == exp.DesignCustom {
				b.ReportMetric(dd.CPU.Mean(), "custom-cpu-%")
				b.ReportMetric(dd.IOBps.Mean()/1e6, "custom-io-MB/s")
			}
		}
	}
}

func BenchmarkFig12_BPExtSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.RunFig12BPExtSize(benchSeed, false, exp.DefaultFig12Params())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].Throughput, "maxext-q/s")
		b.ReportMetric(pts[0].Throughput, "minext-q/s")
	}
}

func BenchmarkFig13_RemoteImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig13RemoteImpact(benchSeed, exp.DefaultFig13Params())
		if err != nil {
			b.Fatal(err)
		}
		var def, tcp float64
		for _, r := range res {
			switch r.Mode {
			case "Default":
				def = r.Throughput
			case "TCP":
				tcp = r.Throughput
			}
		}
		b.ReportMetric(100*(1-tcp/def), "tcp-overhead-%")
	}
}

func BenchmarkFig14_HashSort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prm := exp.DefaultHashSortParams()
		custom, err := exp.RunHashSort(benchSeed, exp.DesignCustom, prm)
		if err != nil {
			b.Fatal(err)
		}
		base, err := exp.RunHashSort(benchSeed, exp.DesignHDDSSD, prm)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(custom.Latency.Seconds(), "custom-s")
		b.ReportMetric(base.Latency.Seconds(), "hddssd-s")
		b.ReportMetric(base.Latency.Seconds()/custom.Latency.Seconds(), "speedup-x")
	}
}

func BenchmarkFig15a_SemanticCacheMV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, remoteOverSSD, err := exp.RunFig15aSemanticCacheMV(benchSeed, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64 = 1e18
		for _, r := range res {
			if f := r.ImprovementRemote(); f < worst {
				worst = f
			}
		}
		b.ReportMetric(worst, "min-mv-speedup-x")
		b.ReportMetric(remoteOverSSD, "remote-over-ssd-x")
	}
}

func BenchmarkFig15b_SeekVsScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		remote, ssd, err := exp.RunFig15bSeekVsScan(benchSeed, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		cross := func(pts []exp.Fig15bPoint) float64 {
			last := 0.0
			for _, pt := range pts {
				if pt.INLJ < pt.HJ {
					last = pt.Selectivity
				}
			}
			return last
		}
		b.ReportMetric(cross(remote), "crossover-remote")
		b.ReportMetric(cross(ssd), "crossover-ssd")
	}
}

func BenchmarkFig16_Priming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig16Priming(benchSeed, exp.DefaultFig16Params())
		if err != nil {
			b.Fatal(err)
		}
		last := res[len(res)-1]
		b.ReportMetric(float64(last.WarmupTime)/float64(last.PrimeTime), "warmup-over-prime-x")
		b.ReportMetric(float64(last.ColdP95)/float64(last.PrimedP95), "tail-improvement-x")
	}
}

func BenchmarkFig18_19_TPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prm := exp.DefaultTPCHParams()
		base, err := exp.RunTPCH(benchSeed, exp.DesignHDDSSD, prm)
		if err != nil {
			b.Fatal(err)
		}
		custom, err := exp.RunTPCH(benchSeed, exp.DesignCustom, prm)
		if err != nil {
			b.Fatal(err)
		}
		h := exp.Improvements(base.QueryLatencies, custom.QueryLatencies)
		atLeast2x := 0
		for _, f := range h.Factors {
			if f >= 2 {
				atLeast2x++
			}
		}
		b.ReportMetric(custom.QueriesPerHour, "custom-q/h")
		b.ReportMetric(base.QueriesPerHour, "hddssd-q/h")
		b.ReportMetric(float64(atLeast2x), "queries>=2x")
	}
}

func BenchmarkFig20_21_TPCDS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prm := exp.DefaultTPCDSParams()
		base, err := exp.RunTPCDS(benchSeed, exp.DesignHDDSSD, prm)
		if err != nil {
			b.Fatal(err)
		}
		custom, err := exp.RunTPCDS(benchSeed, exp.DesignCustom, prm)
		if err != nil {
			b.Fatal(err)
		}
		h := exp.Improvements(base.QueryLatencies, custom.QueryLatencies)
		atLeast10x := 0
		for _, f := range h.Factors {
			if f >= 10 {
				atLeast10x++
			}
		}
		b.ReportMetric(custom.QueriesPerHour, "custom-q/h")
		b.ReportMetric(base.QueriesPerHour, "hddssd-q/h")
		b.ReportMetric(float64(atLeast10x), "queries>=10x")
	}
}

func BenchmarkFig22_23_TPCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prm := exp.DefaultTPCCParams()
		for _, rm := range []bool{false, true} {
			base, err := exp.RunTPCC(benchSeed, exp.DesignHDDSSD, rm, prm)
			if err != nil {
				b.Fatal(err)
			}
			custom, err := exp.RunTPCC(benchSeed, exp.DesignCustom, rm, prm)
			if err != nil {
				b.Fatal(err)
			}
			if rm {
				b.ReportMetric(custom.Throughput/base.Throughput, "readmostly-speedup-x")
			} else {
				b.ReportMetric(custom.Throughput/base.Throughput, "default-speedup-x")
			}
		}
	}
}

func BenchmarkFig24_LocalMemorySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.RunFig24LocalMemorySweep(benchSeed, exp.DefaultFig24Params())
		if err != nil {
			b.Fatal(err)
		}
		thr := make(map[int64]map[exp.Design]float64)
		for _, pt := range pts {
			if thr[pt.LocalMemBytes] == nil {
				thr[pt.LocalMemBytes] = make(map[exp.Design]float64)
			}
			thr[pt.LocalMemBytes][pt.Design] = pt.Throughput
		}
		small := thr[16<<20]
		large := thr[128<<20]
		b.ReportMetric(small[exp.DesignCustom]/small[exp.DesignHDDSSD], "16MB-speedup-x")
		b.ReportMetric(large[exp.DesignCustom]/large[exp.DesignHDDSSD], "128MB-speedup-x")
	}
}

func BenchmarkFig25_MultiDBRangeScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.RunFig25MultiDBRangeScan(benchSeed, exp.DefaultFig25Params())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].Throughput/pts[0].Throughput, "8db-scaling-x")
	}
}

func BenchmarkFig26_CacheRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := exp.RunFig26CacheRecovery(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].RecoveryTime.Seconds(), "16MB-recovery-s")
	}
}

func BenchmarkFig27_ParallelLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run := func(n int) time.Duration {
			var wall time.Duration
			err := exp.RunInSim(benchSeed, time.Hour, func(p *sim.Proc) error {
				cfg := cluster.DefaultConfig()
				cfg.MemoryBytes = 1 << 30
				var servers []*cluster.Server
				for j := 0; j < n; j++ {
					servers = append(servers, cluster.NewServer(p.Kernel(), "s"+string(rune('1'+j)), cfg))
				}
				var splits []loader.Split
				for j := 0; j < 80; j++ {
					splits = append(splits, loader.Split{Name: "split", Bytes: 2 << 20})
				}
				st := loader.LoadParallel(p, servers, splits, loader.DefaultCostModel())
				wall = st.WallClock
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			return wall
		}
		one := run(1)
		eight := run(8)
		b.ReportMetric(one.Seconds()/eight.Seconds(), "8srv-speedup-x")
	}
}

func BenchmarkAblationSyncVsAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunAblationSyncVsAsync(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Factor(), "async-penalty-x")
	}
}

func BenchmarkAblationRegistration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunAblationRegistration(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Factor(), "ondemand-penalty-x")
	}
}
