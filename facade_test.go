// Facade-level tests: the unified error taxonomy must be classifiable
// with errors.Is against this package alone, wherever in the stack the
// error was produced, and the functional-options constructors must
// assemble working objects.
package remotedb_test

import (
	"errors"
	"testing"
	"time"

	"remotedb"
)

func TestErrorTaxonomyThroughFacade(t *testing.T) {
	k := remotedb.NewKernel(1)
	k.Go("t", func(p *remotedb.Proc) {
		cl := remotedb.NewCluster(k)
		db := cl.AddServer("db1", remotedb.DefaultServerConfig())
		mem := cl.AddServer("mem1", remotedb.DefaultServerConfig())
		store := remotedb.NewMetaStore(k, 10*time.Microsecond)
		b := remotedb.StartBroker(p, store, remotedb.WithLeaseTTL(time.Second))
		px, err := b.AddProxy(p, mem, 1<<20, 8)
		if err != nil {
			t.Fatal(err)
		}
		client := remotedb.NewRemoteClient(p, db, remotedb.DefaultRemoteClientConfig())
		// Recovery off: a lost stripe turns the whole file unavailable,
		// which is the stable terminal state this test classifies.
		fs := remotedb.MountRemoteFS(p, b, client, remotedb.WithRecovery(false))

		// ErrNotFound from the file layer.
		if _, err := fs.Open(p, "ghost"); !errors.Is(err, remotedb.ErrNotFound) {
			t.Errorf("open missing: %v not classified ErrNotFound", err)
		}

		// ErrRetryable from the metastore, surfaced through the broker.
		store.SetPartitioned(true)
		if _, err := b.Request(p, remotedb.RequestSpec{Holder: "db1", N: 1, Place: remotedb.PlaceSpread}); !errors.Is(err, remotedb.ErrRetryable) {
			t.Errorf("request during partition: %v not classified ErrRetryable", err)
		} else if !remotedb.Retryable(err) {
			t.Error("Retryable() disagrees with errors.Is")
		}
		store.SetPartitioned(false)

		// ErrRevoked from the broker after a targeted revocation.
		leases, err := b.Request(p, remotedb.RequestSpec{Holder: "db1", N: 1, Place: remotedb.PlaceSpread})
		if err != nil {
			t.Fatal(err)
		}
		b.Revoke(leases[0].ID)
		if err := b.Renew(p, leases[0]); !errors.Is(err, remotedb.ErrRevoked) {
			t.Errorf("renew of revoked lease: %v not classified ErrRevoked", err)
		}

		// ErrUnavailable from the file layer after the donor dies.
		f, err := fs.Create(p, "f", 2<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.OpenConn(p); err != nil {
			t.Fatal(err)
		}
		b.FailProxy(px)
		if err := f.ReadAt(p, make([]byte, 4096), 0); !errors.Is(err, remotedb.ErrUnavailable) {
			t.Errorf("read after donor failure: %v not classified ErrUnavailable", err)
		}

		// ErrClosed from the vfs layer.
		f.Close(p)
		if err := f.ReadAt(p, make([]byte, 4096), 0); !errors.Is(err, remotedb.ErrClosed) {
			t.Errorf("read after close: %v not classified ErrClosed", err)
		}
	})
	k.Run(time.Minute)
}

func TestOptionsConstructors(t *testing.T) {
	err := remotedb.RunInSim(1, time.Hour, func(p *remotedb.Proc) error {
		bed, err := remotedb.NewTestBed(p, remotedb.DesignCustom,
			remotedb.WithStripeSize(4<<20),
			remotedb.WithLeaseTTL(500*time.Millisecond),
			remotedb.WithExpirySweep(100*time.Millisecond),
			remotedb.WithRetryPolicy(remotedb.DefaultRetryPolicy()),
			remotedb.WithRemoteServers(2),
			remotedb.WithRecovery(true))
		if err != nil {
			return err
		}
		defer bed.Close(p)
		if bed.Cfg.MRBytes != 4<<20 {
			t.Errorf("stripe size: got %d", bed.Cfg.MRBytes)
		}
		if bed.Cfg.LeaseTTL != 500*time.Millisecond {
			t.Errorf("lease TTL: got %v", bed.Cfg.LeaseTTL)
		}
		if len(bed.Mems) != 2 {
			t.Errorf("remote servers: got %d", len(bed.Mems))
		}
		// The bed works: remote BPExt file exists and is striped at the
		// configured MR size.
		f, ok := bed.FS.Lookup("bpext")
		if !ok {
			t.Fatal("bpext file missing")
		}
		if want := int(bed.Cfg.BPExtBytes / (4 << 20)); f.Stripes() != want {
			t.Errorf("stripes: got %d want %d", f.Stripes(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
