// Package semcache implements the paper's scenario (iii): a semantic
// cache integrated into the RDBMS. Redundant structures — materialized
// views and non-clustered index images — are built opportunistically,
// serialized as row files pinned in remote memory, and matched against
// query signatures at plan time. The cache is a separate memory broker
// from the buffer pool, so it never contends for the engine's local
// memory (Section 3.3).
//
// Because remote memory is best-effort, every cached structure also
// appends REDO records to the engine's WAL; after a remote-node failure
// the structure is rebuilt by replaying the log from its last checkpoint
// (Figure 26), or simply invalidated, per policy.
package semcache

import (
	"encoding/binary"
	"errors"
	"fmt"

	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/row"
	"remotedb/internal/engine/txn"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// Errors returned by the cache.
var (
	ErrNoEntry = errors.New("semcache: no entry for signature")
	ErrStale   = errors.New("semcache: entry invalidated")
)

// UpdatePolicy controls what happens to an entry when base data changes.
type UpdatePolicy int

// Policies from Section 3.3 of the paper.
const (
	// PolicySync applies updates to the cached structure transactionally.
	PolicySync UpdatePolicy = iota
	// PolicyInvalidate drops the entry on any base update.
	PolicyInvalidate
)

// FileFactory creates the backing file for a cache entry; it is how the
// cache is pointed at remote memory, SSD, or HDD (Figure 15a compares
// those placements).
type FileFactory func(p *sim.Proc, name string, size int64) (vfs.File, error)

// Cache is the semantic-cache broker.
type Cache struct {
	newFile FileFactory
	log     *txn.LogManager
	entries map[string]*Entry

	// Headroom is extra capacity reserved in each entry's backing file
	// for PolicySync appends past the initial build.
	Headroom int64

	Hits, Misses, Invalidations int64
}

// New creates a cache whose entries are stored in files from factory and
// whose REDO records go to lm (nil disables recovery logging).
func New(factory FileFactory, lm *txn.LogManager) *Cache {
	return &Cache{newFile: factory, log: lm, entries: make(map[string]*Entry), Headroom: 1 << 20}
}

// Entry is one cached structure.
type Entry struct {
	Name      string
	Signature string // the query shape this entry answers
	Schema    *row.Schema
	Policy    UpdatePolicy

	file  vfs.File
	size  int64 // serialized bytes
	rows  int64
	stale bool

	// snapshot is the base image captured at build time — the durable
	// checkpoint the paper's recovery path (§6.3) replays the WAL onto.
	// (In a real system this lives on disk; the simulation keeps the rows
	// without charging storage for them.)
	snapshot []row.Tuple

	checkpointLSN uint64 // REDO records after this LSN are not yet in file
}

// Rows returns the entry's row count.
func (e *Entry) Rows() int64 { return e.rows }

// Bytes returns the serialized size.
func (e *Entry) Bytes() int64 { return e.size }

// Stale reports whether the entry was invalidated.
func (e *Entry) Stale() bool { return e.stale }

// Build materializes the result of op into a new cache entry registered
// under sig. Build is opportunistic: failures (no remote memory) just
// mean no entry.
func (c *Cache) Build(ctx *exec.Ctx, name, sig string, op exec.Op, policy UpdatePolicy) (*Entry, error) {
	// Stream the source query: each row is encoded as it arrives, so the
	// only materialization is the cache entry itself (which is the
	// product, not a buffer).
	r, err := exec.Open(ctx, op)
	if err != nil {
		return nil, err
	}
	schema := r.Schema()
	var rows []row.Tuple
	var buf []byte
	var scratch [4]byte
	for {
		t, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		img, err := row.Encode(nil, schema, t)
		if err != nil {
			r.Close()
			return nil, err
		}
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(img)))
		buf = append(buf, scratch[:]...)
		buf = append(buf, img...)
		rows = append(rows, t)
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	capacity := int64(len(buf)) + c.Headroom
	if capacity <= 0 {
		capacity = 1
	}
	file, err := c.newFile(ctx.P, name, capacity)
	if err != nil {
		return nil, fmt.Errorf("semcache: backing store: %w", err)
	}
	// Write in large sequential chunks.
	const chunk = 512 << 10
	for off := 0; off < len(buf); off += chunk {
		end := off + chunk
		if end > len(buf) {
			end = len(buf)
		}
		if err := file.WriteAt(ctx.P, buf[off:end], int64(off)); err != nil {
			return nil, err
		}
	}
	e := &Entry{
		Name:      name,
		Signature: sig,
		Schema:    schema,
		Policy:    policy,
		file:      file,
		size:      int64(len(buf)),
		rows:      int64(len(rows)),
		snapshot:  rows,
	}
	if c.log != nil {
		e.checkpointLSN = c.log.NextLSN() - 1
	}
	c.entries[sig] = e
	return e, nil
}

// Lookup matches a query signature; a hit returns the entry.
func (c *Cache) Lookup(sig string) (*Entry, bool) {
	e, ok := c.entries[sig]
	if !ok || e.stale {
		c.Misses++
		return nil, false
	}
	c.Hits++
	return e, true
}

// Invalidate drops an entry (PolicyInvalidate path or manual).
func (c *Cache) Invalidate(sig string) {
	if e, ok := c.entries[sig]; ok {
		e.stale = true
		c.Invalidations++
	}
}

// Entries returns all registered entries.
func (c *Cache) Entries() []*Entry {
	var out []*Entry
	for _, e := range c.entries {
		out = append(out, e)
	}
	return out
}

// ApplyUpdate maintains an entry for one changed base row: PolicySync
// appends the new image to the structure and logs a REDO record;
// PolicyInvalidate marks the entry stale.
func (c *Cache) ApplyUpdate(p *sim.Proc, e *Entry, t row.Tuple) error {
	if e.stale {
		return ErrStale
	}
	switch e.Policy {
	case PolicyInvalidate:
		e.stale = true
		c.Invalidations++
		return nil
	case PolicySync:
		img, err := row.Encode(nil, e.Schema, t)
		if err != nil {
			return err
		}
		if c.log != nil {
			payload := make([]byte, 2+len(e.Name)+len(img))
			binary.LittleEndian.PutUint16(payload, uint16(len(e.Name)))
			copy(payload[2:], e.Name)
			copy(payload[2+len(e.Name):], img)
			c.log.Append(txn.RecSemCache, payload)
		}
		var scratch [4]byte
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(img)))
		rec := append(scratch[:], img...)
		if err := e.file.WriteAt(p, rec, e.size); err != nil {
			// Remote memory gone: best-effort, invalidate.
			e.stale = true
			c.Invalidations++
			return nil
		}
		e.size += int64(len(rec))
		e.rows++
		return nil
	}
	return nil
}

// Checkpoint records that the entry's file reflects the log up to now,
// bounding future recovery work (the x-axis of Figure 26 is the data
// dirtied since the last checkpoint).
func (c *Cache) Checkpoint(e *Entry) {
	if c.log != nil {
		e.checkpointLSN = c.log.NextLSN() - 1
	}
}

// Scan returns an operator replaying the entry's rows, charging the
// backing file's sequential read cost — this is how a query consumes
// the cache.
func (e *Entry) Scan(ctx *exec.Ctx) (exec.Op, error) {
	if e.stale {
		return nil, ErrStale
	}
	rows, err := e.readAll(ctx.P)
	if err != nil {
		return nil, err
	}
	return &exec.Values{Rows: rows, Sch: e.Schema}, nil
}

func (e *Entry) readAll(p *sim.Proc) ([]row.Tuple, error) {
	buf := make([]byte, e.size)
	const chunk = 512 << 10
	for off := int64(0); off < e.size; off += chunk {
		n := int64(chunk)
		if off+n > e.size {
			n = e.size - off
		}
		if err := e.file.ReadAt(p, buf[off:off+n], off); err != nil {
			e.stale = true
			return nil, err
		}
	}
	var rows []row.Tuple
	for off := 0; off < len(buf); {
		if off+4 > len(buf) {
			return nil, errors.New("semcache: corrupt entry file")
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if off+n > len(buf) {
			return nil, errors.New("semcache: corrupt entry file")
		}
		t, err := row.Decode(e.Schema, buf[off:off+n])
		if err != nil {
			return nil, err
		}
		rows = append(rows, t)
		off += n
	}
	return rows, nil
}

// EntryForFile finds the entry whose backing file has the given name,
// or nil. This is how a remote file's salvage callback — which knows
// only the file it is repairing — locates the cache entry to rebuild.
func (c *Cache) EntryForFile(name string) *Entry {
	for _, e := range c.entries {
		if e.file != nil && e.file.Name() == name {
			return e
		}
	}
	return nil
}

// MarkLost flags the entry backed by the named file as stale, so plan-
// time lookups miss (queries run against base data) while the structure
// is rebuilt. It returns the entry, or nil if no entry uses that file.
func (c *Cache) MarkLost(fileName string) *Entry {
	e := c.EntryForFile(fileName)
	if e != nil && !e.stale {
		e.stale = true
		c.Invalidations++
	}
	return e
}

// SalvageFile is the salvage callback body for a cache entry's backing
// file: after the file was restriped it rebuilds the entry in place from
// the checkpoint snapshot plus WAL REDO replay (§6.3). An entry with no
// snapshot or no log stays stale — queries keep running against base
// data, which is always correct. It returns the number of replayed
// records.
func (c *Cache) SalvageFile(p *sim.Proc, fileName string) (int, error) {
	e := c.EntryForFile(fileName)
	if e == nil {
		return 0, nil
	}
	if c.log == nil || e.snapshot == nil {
		e.stale = true
		return 0, nil
	}
	return c.RecoverInPlace(p, e, e.snapshot)
}

// RecoverInPlace rebuilds an entry into its existing backing file after
// a stripe of that file was lost and re-leased (§6.3): the snapshot
// rows are rewritten from offset zero and REDO records past the
// checkpoint are replayed on top, exactly like Recover but without
// allocating a replacement file — the restriped file is reused. If the
// rebuilt image no longer fits the file, it falls back to Recover.
func (c *Cache) RecoverInPlace(p *sim.Proc, e *Entry, snapshot []row.Tuple) (int, error) {
	if c.log == nil {
		return 0, errors.New("semcache: no log manager for recovery")
	}
	if e.file == nil {
		return c.Recover(p, e, snapshot)
	}
	var buf []byte
	var scratch [4]byte
	for _, t := range snapshot {
		img, err := row.Encode(nil, e.Schema, t)
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(img)))
		buf = append(buf, scratch[:]...)
		buf = append(buf, img...)
	}
	if int64(len(buf)) > e.file.Size() {
		return c.Recover(p, e, snapshot)
	}
	const chunk = 512 << 10
	for off := 0; off < len(buf); off += chunk {
		end := off + chunk
		if end > len(buf) {
			end = len(buf)
		}
		if err := e.file.WriteAt(p, buf[off:end], int64(off)); err != nil {
			// The reused file is itself unhealthy: take the fresh-file path.
			return c.Recover(p, e, snapshot)
		}
	}
	e.size = int64(len(buf))
	e.rows = int64(len(snapshot))

	replayed := 0
	err := c.log.Replay(p, e.checkpointLSN, func(r txn.Record) error {
		if r.Type != txn.RecSemCache {
			return nil
		}
		if len(r.Payload) < 2 {
			return txn.ErrCorruptLog
		}
		nameLen := int(binary.LittleEndian.Uint16(r.Payload))
		if len(r.Payload) < 2+nameLen {
			return txn.ErrCorruptLog
		}
		if string(r.Payload[2:2+nameLen]) != e.Name {
			return nil
		}
		img := r.Payload[2+nameLen:]
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(img)))
		rec := append(scratch[:], img...)
		if err := e.file.WriteAt(p, rec, e.size); err != nil {
			return err
		}
		e.size += int64(len(rec))
		e.rows++
		replayed++
		return nil
	})
	if err != nil {
		return replayed, err
	}
	e.stale = false
	e.checkpointLSN = c.log.NextLSN() - 1
	return replayed, nil
}

// Recover rebuilds an entry after its remote memory failed: the base
// snapshot is rebuilt by rebuild (typically re-running the defining
// query against a checkpointed image — here the caller supplies the
// snapshot rows), then REDO records after the checkpoint are replayed
// from the WAL into a fresh file. It returns the number of replayed
// records.
func (c *Cache) Recover(p *sim.Proc, e *Entry, snapshot []row.Tuple) (int, error) {
	if c.log == nil {
		return 0, errors.New("semcache: no log manager for recovery")
	}
	var buf []byte
	var scratch [4]byte
	for _, t := range snapshot {
		img, err := row.Encode(nil, e.Schema, t)
		if err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(img)))
		buf = append(buf, scratch[:]...)
		buf = append(buf, img...)
	}
	capacity := int64(len(buf)) + c.Headroom
	if capacity <= 0 {
		capacity = 1
	}
	file, err := c.newFile(p, e.Name+"-recovered", capacity)
	if err != nil {
		return 0, err
	}
	const chunk = 512 << 10
	for off := 0; off < len(buf); off += chunk {
		end := off + chunk
		if end > len(buf) {
			end = len(buf)
		}
		if err := file.WriteAt(p, buf[off:end], int64(off)); err != nil {
			return 0, err
		}
	}
	e.file = file
	e.size = int64(len(buf))
	e.rows = int64(len(snapshot))

	replayed := 0
	err = c.log.Replay(p, e.checkpointLSN, func(r txn.Record) error {
		if r.Type != txn.RecSemCache {
			return nil
		}
		if len(r.Payload) < 2 {
			return txn.ErrCorruptLog
		}
		nameLen := int(binary.LittleEndian.Uint16(r.Payload))
		if len(r.Payload) < 2+nameLen {
			return txn.ErrCorruptLog
		}
		if string(r.Payload[2:2+nameLen]) != e.Name {
			return nil
		}
		img := r.Payload[2+nameLen:]
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(img)))
		rec := append(scratch[:], img...)
		if err := e.file.WriteAt(p, rec, e.size); err != nil {
			return err
		}
		e.size += int64(len(rec))
		e.rows++
		replayed++
		return nil
	})
	if err != nil {
		return replayed, err
	}
	e.stale = false
	e.checkpointLSN = c.log.NextLSN() - 1
	return replayed, nil
}
