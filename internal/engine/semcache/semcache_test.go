package semcache

import (
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/row"
	"remotedb/internal/engine/tempdb"
	"remotedb/internal/engine/txn"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

func schema() *row.Schema {
	return row.NewSchema(
		row.Column{Name: "k", Type: row.Int64},
		row.Column{Name: "v", Type: row.Float64},
	)
}

func values(n int) *exec.Values {
	var rows []row.Tuple
	for i := 0; i < n; i++ {
		rows = append(rows, row.Tuple{int64(i), float64(i) * 2})
	}
	return &exec.Values{Rows: rows, Sch: schema()}
}

// rig returns a cache over local mem files plus a ctx and log manager.
func rig(k *sim.Kernel, p *sim.Proc) (*Cache, *exec.Ctx, *txn.LogManager) {
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	s := cluster.NewServer(k, "db", cfg)
	lm := txn.New(k, vfs.NewMemFile("log"))
	factory := func(p *sim.Proc, name string, size int64) (vfs.File, error) {
		return vfs.NewMemFile(name), nil
	}
	c := New(factory, lm)
	ctx := &exec.Ctx{P: p, Server: s, Temp: tempdb.New(vfs.NewMemFile("td")), Grant: 1 << 30, CPU: exec.DefaultCPUProfile()}
	return c, ctx, lm
}

func TestBuildLookupScan(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		c, ctx, _ := rig(k, p)
		e, err := c.Build(ctx, "mv1", "SELECT-SIG-1", values(100), PolicySync)
		if err != nil {
			t.Error(err)
			return
		}
		if e.Rows() != 100 {
			t.Errorf("rows = %d", e.Rows())
		}
		got, ok := c.Lookup("SELECT-SIG-1")
		if !ok || got != e {
			t.Error("lookup failed")
		}
		if _, ok := c.Lookup("other"); ok {
			t.Error("wrong signature matched")
		}
		op, err := e.Scan(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		rows, err := exec.Collect(ctx, op)
		if err != nil || len(rows) != 100 {
			t.Errorf("scan rows=%d err=%v", len(rows), err)
			return
		}
		if rows[42][1].(float64) != 84 {
			t.Errorf("row 42 = %v", rows[42])
		}
	})
	k.Run(time.Minute)
}

func TestInvalidatePolicy(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		c, ctx, _ := rig(k, p)
		e, _ := c.Build(ctx, "mv1", "sig", values(10), PolicyInvalidate)
		if err := c.ApplyUpdate(p, e, row.Tuple{int64(1), 3.0}); err != nil {
			t.Error(err)
		}
		if !e.Stale() {
			t.Error("entry should be stale after update under PolicyInvalidate")
		}
		if _, ok := c.Lookup("sig"); ok {
			t.Error("stale entry matched")
		}
		if _, err := e.Scan(ctx); err != ErrStale {
			t.Errorf("scan of stale entry: %v", err)
		}
	})
	k.Run(time.Minute)
}

func TestSyncPolicyAppends(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		c, ctx, lm := rig(k, p)
		e, _ := c.Build(ctx, "mv1", "sig", values(10), PolicySync)
		appends := lm.Appends
		for i := 0; i < 5; i++ {
			if err := c.ApplyUpdate(p, e, row.Tuple{int64(100 + i), 1.0}); err != nil {
				t.Error(err)
				return
			}
		}
		if e.Rows() != 15 {
			t.Errorf("rows = %d", e.Rows())
		}
		if lm.Appends != appends+5 {
			t.Errorf("log appends = %d, want %d", lm.Appends, appends+5)
		}
		op, _ := e.Scan(ctx)
		rows, _ := exec.Collect(ctx, op)
		if len(rows) != 15 {
			t.Errorf("scan rows = %d", len(rows))
		}
	})
	k.Run(time.Minute)
}

func TestRecoveryReplaysTrailingUpdates(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		c, ctx, lm := rig(k, p)
		e, _ := c.Build(ctx, "mv1", "sig", values(10), PolicySync)
		// Snapshot point.
		c.Checkpoint(e)
		var snapshot []row.Tuple
		op, _ := e.Scan(ctx)
		snapshot, _ = exec.Collect(ctx, op)

		// Trailing updates past the checkpoint.
		for i := 0; i < 7; i++ {
			c.ApplyUpdate(p, e, row.Tuple{int64(200 + i), 9.0})
		}
		lm.Commit(p, lm.NextLSN()-1)

		// Remote node dies.
		e.stale = true
		replayed, err := c.Recover(p, e, snapshot)
		if err != nil {
			t.Error(err)
			return
		}
		if replayed != 7 {
			t.Errorf("replayed = %d, want 7", replayed)
		}
		if e.Stale() {
			t.Error("recovered entry still stale")
		}
		op2, _ := e.Scan(ctx)
		rows, _ := exec.Collect(ctx, op2)
		if len(rows) != 17 {
			t.Errorf("rows after recovery = %d, want 17", len(rows))
		}
	})
	k.Run(time.Minute)
}

func TestRecoveryIgnoresOtherEntries(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		c, ctx, lm := rig(k, p)
		e1, _ := c.Build(ctx, "mv1", "sig1", values(5), PolicySync)
		e2, _ := c.Build(ctx, "mv2", "sig2", values(5), PolicySync)
		c.Checkpoint(e1)
		c.ApplyUpdate(p, e1, row.Tuple{int64(50), 1.0})
		c.ApplyUpdate(p, e2, row.Tuple{int64(60), 1.0})
		lm.Commit(p, lm.NextLSN()-1)
		op, _ := e1.Scan(ctx)
		snap, _ := exec.Collect(ctx, op)
		// Roll e1 back to its checkpoint image for the test.
		snap = snap[:5]
		replayed, err := c.Recover(p, e1, snap)
		if err != nil || replayed != 1 {
			t.Errorf("replayed = %d err=%v, want 1 (only mv1 records)", replayed, err)
		}
	})
	k.Run(time.Minute)
}

func TestFailedBackingStoreInvalidates(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		cfg := cluster.DefaultConfig()
		cfg.MemoryBytes = 1 << 30
		s := cluster.NewServer(k, "db", cfg)
		lm := txn.New(k, vfs.NewMemFile("log"))
		fail := false
		factory := func(p *sim.Proc, name string, size int64) (vfs.File, error) {
			if fail {
				return &failingFile{}, nil
			}
			return vfs.NewMemFile(name), nil
		}
		c := New(factory, lm)
		ctx := &exec.Ctx{P: p, Server: s, Temp: tempdb.New(vfs.NewMemFile("td")), Grant: 1 << 30, CPU: exec.DefaultCPUProfile()}
		e, _ := c.Build(ctx, "mv", "sig", values(5), PolicySync)
		// Swap the file for a failing one (simulates revoked lease).
		e.file = &failingFile{}
		if err := c.ApplyUpdate(p, e, row.Tuple{int64(9), 1.0}); err != nil {
			t.Errorf("update on dead store should invalidate, not error: %v", err)
		}
		if !e.Stale() {
			t.Error("entry should be stale")
		}
		_ = fail
	})
	k.Run(time.Minute)
}

type failingFile struct{}

func (f *failingFile) Name() string                                   { return "failing" }
func (f *failingFile) ReadAt(p *sim.Proc, b []byte, off int64) error  { return vfs.ErrUnavailable }
func (f *failingFile) WriteAt(p *sim.Proc, b []byte, off int64) error { return vfs.ErrUnavailable }
func (f *failingFile) Size() int64                                    { return 0 }
func (f *failingFile) Close(p *sim.Proc) error                        { return nil }
