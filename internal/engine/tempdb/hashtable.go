// Remote hash tables: a spilled hash-join build side laid out as
// fixed-size buckets in the TempDB file, so the probe phase issues
// one-sided bucket reads instead of re-reading whole partitions. On a
// remote-memory TempDB each probe is a single RDMA-sized read of one
// bucket block (plus its overflow chain), which is the Farview-style
// alternative to the grace join's partition-at-a-time rebuild.
package tempdb

import (
	"encoding/binary"
	"fmt"

	"remotedb/internal/sim"
)

// Default hash-table geometry: enough buckets that modest build sides
// chain rarely, blocks sized to one page-class read.
const (
	DefaultHashBuckets     = 512
	DefaultHashBucketBytes = 4096
)

// HashTable is a bucketed record store in the TempDB file. Records are
// length-prefixed inside fixed-size bucket blocks (records never cross
// a block; zero length terminates a block), and a bucket that outgrows
// its block chains additional blocks. Writers buffer one open block
// per bucket, so build memory is buckets x bucketBytes regardless of
// table size — the property that lets a spilled join keep probing
// remotely instead of rebuilding partitions in memory.
type HashTable struct {
	t           *TempDB
	name        string
	buckets     int
	bucketBytes int
	chains      [][]int64 // flushed block offsets per bucket
	wbuf        [][]byte  // open block per bucket
	extents     []int64
	nextFree    int64
	flushed     bool

	Records int64
	Blocks  int64
	Probes  int64
}

// NewHashTable opens an empty hash table. buckets/bucketBytes <= 0 use
// the defaults.
func (t *TempDB) NewHashTable(name string, buckets, bucketBytes int) *HashTable {
	if buckets <= 0 {
		buckets = DefaultHashBuckets
	}
	if bucketBytes <= 0 {
		bucketBytes = DefaultHashBucketBytes
	}
	return &HashTable{
		t:           t,
		name:        name,
		buckets:     buckets,
		bucketBytes: bucketBytes,
		chains:      make([][]int64, buckets),
		wbuf:        make([][]byte, buckets),
	}
}

// Buckets returns the bucket count (for callers hashing keys).
func (h *HashTable) Buckets() int { return h.buckets }

// allocBlock reserves one bucketBytes-sized block in the backing file.
func (h *HashTable) allocBlock() int64 {
	if len(h.extents) == 0 || h.nextFree+int64(h.bucketBytes) > extentSize {
		h.extents = append(h.extents, h.t.allocExtent())
		h.nextFree = 0
	}
	off := h.extents[len(h.extents)-1] + h.nextFree
	h.nextFree += int64(h.bucketBytes)
	return off
}

// Put appends one record to the bucket. rec must fit a block
// (bucketBytes-4 bytes).
func (h *HashTable) Put(p *sim.Proc, bucket int, rec []byte) error {
	if h.flushed {
		panic(fmt.Sprintf("tempdb: %s Put after Flush", h.name))
	}
	need := 4 + len(rec)
	if need > h.bucketBytes {
		return fmt.Errorf("tempdb: record of %d bytes exceeds %d-byte hash bucket", len(rec), h.bucketBytes)
	}
	b := bucket % h.buckets
	if len(h.wbuf[b])+need > h.bucketBytes {
		if err := h.flushBucket(p, b); err != nil {
			return err
		}
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec)))
	h.wbuf[b] = append(h.wbuf[b], hdr[:]...)
	h.wbuf[b] = append(h.wbuf[b], rec...)
	h.Records++
	return nil
}

// flushBucket writes the bucket's open block (zero-padded to a full
// block, so recycled-extent residue never reaches the parser) and
// chains it.
func (h *HashTable) flushBucket(p *sim.Proc, b int) error {
	if len(h.wbuf[b]) == 0 {
		return nil
	}
	block := make([]byte, h.bucketBytes)
	copy(block, h.wbuf[b])
	off := h.allocBlock()
	if err := h.t.file.WriteAt(p, block, off); err != nil {
		return err
	}
	h.t.BytesSpilled += int64(h.bucketBytes)
	h.chains[b] = append(h.chains[b], off)
	h.Blocks++
	h.wbuf[b] = h.wbuf[b][:0]
	return nil
}

// Flush writes every open block; call once after the last Put.
func (h *HashTable) Flush(p *sim.Proc) error {
	for b := range h.wbuf {
		if err := h.flushBucket(p, b); err != nil {
			return err
		}
	}
	h.flushed = true
	return nil
}

// Probe reads the bucket's chain — one one-sided read per block — and
// calls fn for every record in it. Callers filter by exact key; the
// bucket only bounds the candidates.
func (h *HashTable) Probe(p *sim.Proc, bucket int, fn func(rec []byte) error) error {
	if !h.flushed {
		panic(fmt.Sprintf("tempdb: %s probed before Flush", h.name))
	}
	h.Probes++
	b := bucket % h.buckets
	block := make([]byte, h.bucketBytes)
	for _, off := range h.chains[b] {
		if err := h.t.file.ReadAt(p, block, off); err != nil {
			return err
		}
		h.t.BytesRead += int64(h.bucketBytes)
		rest := block
		for len(rest) >= 4 {
			n := int(binary.LittleEndian.Uint32(rest))
			if n == 0 {
				break // zero length terminates the block
			}
			rest = rest[4:]
			if n > len(rest) {
				return fmt.Errorf("tempdb: %s bucket %d holds a truncated record", h.name, b)
			}
			if err := fn(rest[:n]); err != nil {
				return err
			}
			rest = rest[n:]
		}
	}
	return nil
}

// Release returns the table's extents to the TempDB free list. The
// table must not be probed afterwards.
func (h *HashTable) Release() {
	h.t.free = append(h.t.free, h.extents...)
	h.extents = nil
	h.chains = nil
	h.wbuf = nil
}
