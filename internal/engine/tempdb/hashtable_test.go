package tempdb

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

func TestHashTableExactRecall(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		td := New(vfs.NewMemFile("tempdb"))
		ht := td.NewHashTable("ht", 8, 256)
		want := make(map[int][][]byte)
		for i := 0; i < 500; i++ {
			rec := []byte(fmt.Sprintf("rec-%d-%s", i, bytes.Repeat([]byte{'y'}, i%40)))
			b := i % 8
			want[b] = append(want[b], rec)
			if err := ht.Put(p, b, rec); err != nil {
				t.Error(err)
				return
			}
		}
		if err := ht.Flush(p); err != nil {
			t.Error(err)
			return
		}
		for b := 0; b < 8; b++ {
			var got [][]byte
			err := ht.Probe(p, b, func(rec []byte) error {
				got = append(got, append([]byte(nil), rec...))
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if len(got) != len(want[b]) {
				t.Errorf("bucket %d: %d records, want %d (chain overflow lost records?)", b, len(got), len(want[b]))
				return
			}
			for i := range got {
				if !bytes.Equal(got[i], want[b][i]) {
					t.Errorf("bucket %d record %d mismatch", b, i)
					return
				}
			}
		}
		if ht.Records != 500 {
			t.Errorf("Records = %d, want 500", ht.Records)
		}
		// 500 records over 8 buckets with ~256-byte blocks must chain.
		if ht.Blocks <= 8 {
			t.Errorf("Blocks = %d; the test did not exercise overflow chains", ht.Blocks)
		}
	})
	k.Run(time.Minute)
}

func TestHashTableRecycledExtentsStayClean(t *testing.T) {
	// A released table returns its extents to the free list; a new table
	// reusing them must not see the old records (blocks are written
	// zero-padded in full).
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		td := New(vfs.NewMemFile("tempdb"))
		old := td.NewHashTable("old", 4, 512)
		junk := bytes.Repeat([]byte{0xEE}, 400)
		for i := 0; i < 200; i++ {
			old.Put(p, i%4, junk)
		}
		old.Flush(p)
		old.Release()

		ht := td.NewHashTable("new", 4, 512)
		ht.Put(p, 0, []byte("only-record"))
		ht.Flush(p)
		for b := 0; b < 4; b++ {
			n := 0
			err := ht.Probe(p, b, func(rec []byte) error {
				n++
				if !bytes.Equal(rec, []byte("only-record")) {
					t.Errorf("bucket %d surfaced stale record %q", b, rec)
				}
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if b == 0 && n != 1 {
				t.Errorf("bucket 0 has %d records, want 1", n)
			}
			if b != 0 && n != 0 {
				t.Errorf("bucket %d has %d records, want 0", b, n)
			}
		}
	})
	k.Run(time.Minute)
}

func TestHashTableOversizeRecordRejected(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		td := New(vfs.NewMemFile("tempdb"))
		ht := td.NewHashTable("ht", 2, 64)
		if err := ht.Put(p, 0, make([]byte, 61)); err == nil {
			t.Error("61-byte record in a 64-byte bucket should not fit with its prefix")
		}
		if err := ht.Put(p, 0, make([]byte, 60)); err != nil {
			t.Errorf("60-byte record should fit: %v", err)
		}
	})
	k.Run(time.Minute)
}

func TestHashTableLifecyclePanics(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		td := New(vfs.NewMemFile("tempdb"))
		ht := td.NewHashTable("ht", 2, 64)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Probe before Flush should panic")
				}
			}()
			ht.Probe(p, 0, func([]byte) error { return nil })
		}()
		ht.Flush(p)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Put after Flush should panic")
				}
			}()
			ht.Put(p, 0, []byte("late"))
		}()
	})
	k.Run(time.Minute)
}
