// Package tempdb manages the engine's spill space — the paper's
// scenario (ii). Hash joins and external sorts write runs and partitions
// through SpillFiles, which buffer into large sequential blocks (512 KiB,
// the I/O size of the paper's analytics traces) over whatever vfs.File
// TempDB is placed on: the HDD array, the SSD, or a remote-memory file.
package tempdb

import (
	"encoding/binary"
	"errors"
	"fmt"

	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// BlockSize is the spill I/O unit.
const BlockSize = 512 << 10

// extentSize is the allocation granularity within the TempDB file.
const extentSize = 4 << 20

// TempDB allocates spill files within one backing file. Extents of
// finished spill files are recycled, so long query streams stay within
// the TempDB file's fixed capacity.
type TempDB struct {
	file    vfs.File
	nextExt int64
	free    []int64

	BytesSpilled int64
	BytesRead    int64
}

// New creates a TempDB over file.
func New(file vfs.File) *TempDB { return &TempDB{file: file} }

// File returns the backing file.
func (t *TempDB) File() vfs.File { return t.file }

// allocExtent reserves a contiguous extent and returns its base offset,
// preferring recycled extents.
func (t *TempDB) allocExtent() int64 {
	if n := len(t.free); n > 0 {
		off := t.free[n-1]
		t.free = t.free[:n-1]
		return off
	}
	off := t.nextExt
	t.nextExt += extentSize
	return off
}

// HighWater returns the highest byte offset ever allocated.
func (t *TempDB) HighWater() int64 { return t.nextExt }

// SpillFile is one append-only spill stream holding length-prefixed
// records, written in BlockSize chunks across chained extents.
type SpillFile struct {
	t       *TempDB
	name    string
	extents []int64
	size    int64 // logical bytes written
	wbuf    []byte

	Records int64
}

// NewFile opens a fresh spill stream.
func (t *TempDB) NewFile(name string) *SpillFile {
	return &SpillFile{t: t, name: name}
}

// Append adds one record (length-prefixed internally).
func (s *SpillFile) Append(p *sim.Proc, rec []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec)))
	s.wbuf = append(s.wbuf, hdr[:]...)
	s.wbuf = append(s.wbuf, rec...)
	s.Records++
	for len(s.wbuf) >= BlockSize {
		if err := s.flushBlock(p, s.wbuf[:BlockSize]); err != nil {
			return err
		}
		s.wbuf = s.wbuf[BlockSize:]
	}
	return nil
}

// Flush writes any buffered tail; call once after the last Append.
func (s *SpillFile) Flush(p *sim.Proc) error {
	if len(s.wbuf) == 0 {
		return nil
	}
	err := s.flushBlock(p, s.wbuf)
	s.wbuf = nil
	return err
}

// flushBlock maps the next logical range onto extents and writes it.
func (s *SpillFile) flushBlock(p *sim.Proc, b []byte) error {
	off := s.size
	for len(b) > 0 {
		extIdx := int(off / extentSize)
		within := off % extentSize
		for extIdx >= len(s.extents) {
			s.extents = append(s.extents, s.t.allocExtent())
		}
		n := extentSize - within
		if n > int64(len(b)) {
			n = int64(len(b))
		}
		if err := s.t.file.WriteAt(p, b[:n], s.extents[extIdx]+within); err != nil {
			return err
		}
		s.t.BytesSpilled += n
		off += n
		b = b[n:]
	}
	s.size = off
	return nil
}

// Size returns logical bytes flushed so far.
func (s *SpillFile) Size() int64 { return s.size }

// Release returns the stream's extents to the TempDB free list. The
// stream must not be read afterwards.
func (s *SpillFile) Release() {
	s.t.free = append(s.t.free, s.extents...)
	s.extents = nil
	s.size = 0
	s.wbuf = nil
}

// Reader iterates the spill stream's records sequentially, reading
// BlockSize chunks.
type Reader struct {
	s    *SpillFile
	off  int64
	buf  []byte
	bpos int
}

// ErrTruncated indicates a record crosses the end of the stream.
var ErrTruncated = errors.New("tempdb: truncated spill stream")

// NewReader opens the stream for sequential reads. The stream must be
// Flushed first.
func (s *SpillFile) NewReader() *Reader {
	if len(s.wbuf) != 0 {
		panic(fmt.Sprintf("tempdb: %s read before Flush", s.name))
	}
	return &Reader{s: s}
}

// fill ensures at least n bytes are buffered (or the stream is exhausted).
func (r *Reader) fill(p *sim.Proc, n int) error {
	for len(r.buf)-r.bpos < n {
		if r.off >= r.s.size {
			return ErrTruncated
		}
		take := int64(BlockSize)
		if r.off+take > r.s.size {
			take = r.s.size - r.off
		}
		chunk := make([]byte, take)
		// Map logical offset onto extents (reads may straddle them).
		read := int64(0)
		for read < take {
			extIdx := int((r.off + read) / extentSize)
			within := (r.off + read) % extentSize
			m := extentSize - within
			if m > take-read {
				m = take - read
			}
			if err := r.s.t.file.ReadAt(p, chunk[read:read+m], r.s.extents[extIdx]+within); err != nil {
				return err
			}
			read += m
		}
		r.s.t.BytesRead += take
		r.off += take
		r.buf = append(r.buf[r.bpos:], chunk...)
		r.bpos = 0
	}
	return nil
}

// Next returns the next record, or ok=false at end of stream.
func (r *Reader) Next(p *sim.Proc) ([]byte, bool, error) {
	if int64(len(r.buf)-r.bpos) == 0 && r.off >= r.s.size {
		return nil, false, nil
	}
	if err := r.fill(p, 4); err != nil {
		if err == ErrTruncated && len(r.buf)-r.bpos == 0 {
			return nil, false, nil
		}
		return nil, false, err
	}
	n := int(binary.LittleEndian.Uint32(r.buf[r.bpos:]))
	r.bpos += 4
	if err := r.fill(p, n); err != nil {
		return nil, false, err
	}
	rec := r.buf[r.bpos : r.bpos+n]
	r.bpos += n
	return rec, true, nil
}

var _ = vfs.ErrClosed // keep the vfs dependency explicit for godoc linking
