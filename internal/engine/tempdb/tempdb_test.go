package tempdb

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

func TestSpillRoundTrip(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		td := New(vfs.NewMemFile("tempdb"))
		f := td.NewFile("run1")
		var want [][]byte
		for i := 0; i < 10000; i++ {
			rec := []byte(fmt.Sprintf("record-%d-%s", i, bytes.Repeat([]byte{'x'}, i%100)))
			want = append(want, rec)
			if err := f.Append(p, rec); err != nil {
				t.Error(err)
				return
			}
		}
		if err := f.Flush(p); err != nil {
			t.Error(err)
			return
		}
		r := f.NewReader()
		for i := 0; ; i++ {
			rec, ok, err := r.Next(p)
			if err != nil {
				t.Error(err)
				return
			}
			if !ok {
				if i != len(want) {
					t.Errorf("stream ended at %d, want %d", i, len(want))
				}
				return
			}
			if !bytes.Equal(rec, want[i]) {
				t.Errorf("record %d mismatch", i)
				return
			}
		}
	})
	k.Run(time.Minute)
}

func TestMultipleStreamsInterleaved(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		td := New(vfs.NewMemFile("tempdb"))
		a := td.NewFile("a")
		b := td.NewFile("b")
		big := bytes.Repeat([]byte{0xAA}, 100000)
		for i := 0; i < 100; i++ {
			a.Append(p, big)
			b.Append(p, []byte{byte(i)})
		}
		a.Flush(p)
		b.Flush(p)
		rb := b.NewReader()
		for i := 0; i < 100; i++ {
			rec, ok, err := rb.Next(p)
			if err != nil || !ok || len(rec) != 1 || rec[0] != byte(i) {
				t.Errorf("stream b record %d: %v %v %v", i, rec, ok, err)
				return
			}
		}
		ra := a.NewReader()
		n := 0
		for {
			rec, ok, _ := ra.Next(p)
			if !ok {
				break
			}
			if !bytes.Equal(rec, big) {
				t.Error("stream a corrupted")
				return
			}
			n++
		}
		if n != 100 {
			t.Errorf("stream a has %d records", n)
		}
	})
	k.Run(time.Minute)
}

func TestLargeSequentialIO(t *testing.T) {
	// Spills on the HDD array must be written in big blocks: with 512K
	// blocks the sequential path dominates and throughput approaches the
	// raid rate.
	k := sim.New(1)
	cfg := cluster.DefaultConfig()
	cfg.Spindles = 20
	s := cluster.NewServer(k, "db", cfg)
	dev := vfs.NewDeviceFile("tempdb", s.HDD)
	var elapsed time.Duration
	const totalBytes = 64 << 20
	k.Go("t", func(p *sim.Proc) {
		td := New(dev)
		f := td.NewFile("big")
		rec := make([]byte, 64<<10)
		start := p.Now()
		for i := 0; i < totalBytes/len(rec); i++ {
			f.Append(p, rec)
		}
		f.Flush(p)
		elapsed = p.Now() - start
	})
	k.Run(time.Minute)
	bps := float64(totalBytes) / elapsed.Seconds()
	// One synchronous stream keeps only 8 of the 20 spindles busy per
	// 512 K block (~730 MB/s ceiling); anything far below that means the
	// writes degenerated to small or random I/O.
	if bps < 0.4e9 {
		t.Fatalf("spill throughput = %.3g B/s; writes are not sequential-sized", bps)
	}
}

func TestReaderBeforeFlushPanics(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		td := New(vfs.NewMemFile("tempdb"))
		f := td.NewFile("x")
		f.Append(p, []byte("unflushed"))
		defer func() {
			if recover() == nil {
				t.Error("NewReader before Flush should panic")
			}
		}()
		f.NewReader()
	})
	k.Run(time.Minute)
}

func TestEmptyStream(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		td := New(vfs.NewMemFile("tempdb"))
		f := td.NewFile("empty")
		f.Flush(p)
		r := f.NewReader()
		if _, ok, err := r.Next(p); ok || err != nil {
			t.Errorf("empty stream: ok=%v err=%v", ok, err)
		}
	})
	k.Run(time.Minute)
}

func TestBytesAccounting(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		td := New(vfs.NewMemFile("tempdb"))
		f := td.NewFile("acct")
		f.Append(p, make([]byte, 1000))
		f.Flush(p)
		if td.BytesSpilled != 1004 {
			t.Errorf("spilled = %d, want 1004", td.BytesSpilled)
		}
		r := f.NewReader()
		r.Next(p)
		if td.BytesRead != 1004 {
			t.Errorf("read = %d, want 1004", td.BytesRead)
		}
	})
	k.Run(time.Minute)
}
