// Package engine assembles the mini-RDBMS: buffer pool (+ optional
// BPExt), catalog, TempDB, write-ahead log, semantic cache, and the
// device-aware cost model. The storage placement of each piece is a
// vfs.File chosen by the caller, which is how the evaluated designs of
// Table 5 (HDD, HDD+SSD, the two RamDrive variants, Custom, Local
// Memory) are assembled without engine changes.
package engine

import (
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/opt"
	"remotedb/internal/engine/plan"
	"remotedb/internal/engine/semcache"
	"remotedb/internal/engine/tempdb"
	"remotedb/internal/engine/txn"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// SemCacheFactory creates the backing file for one semantic-cache
// entry — the knob that points the cache at remote memory, SSD, or HDD.
type SemCacheFactory = semcache.FileFactory

// Files names the storage placement of each engine component.
type Files struct {
	Data  vfs.File // base tables and indexes
	Log   vfs.File // write-ahead log
	Temp  vfs.File // TempDB spill space
	BPExt vfs.File // buffer-pool extension (nil disables)
}

// Config parameterizes the engine.
type Config struct {
	BufferFrames int   // local buffer pool size in 8 KiB pages
	BPExtSlots   int   // extension capacity in pages (ignored if no BPExt file)
	Grant        int64 // per-query memory grant (admission control)
	Buffer       buffer.Config
	CPU          exec.CPUProfile
	SemCache     semcache.FileFactory // nil: semantic cache disabled
	// PlanCacheEntries bounds the planner's plan cache
	// (0 = default 128, negative = caching disabled).
	PlanCacheEntries int
	// DOP is the per-query degree of parallelism offered to the
	// planner (0 = default 4, following SQL Server's parallel-by-default
	// analytic plans).
	DOP int
	// Eviction selects the buffer pool's eviction policy (GDSF by
	// default; PolicyClock for A/B runs).
	Eviction buffer.Policy
	// NoBatchedIO disables the vectored buffer-pool paths (batched
	// writeback, grouped extension puts, scan readahead).
	NoBatchedIO bool
	// Readahead overrides the scan readahead window in pages (0 keeps
	// the buffer default).
	Readahead int
	// Pushdown lets the planner place pushable scans at the donors
	// holding a table's remote segment (see BuildPushSegment) and lets
	// spilled hash joins probe remote hash tables.
	Pushdown bool
	// DonorPrice scales donor CPU in the placement cost model
	// (0 = donor cores priced like local ones).
	DonorPrice float64
	// Budget is the per-query remote-I/O deadline budget stamped on
	// each query's proc by exec.Open (0 = none; see exec.Ctx.Budget).
	Budget time.Duration
}

// DefaultConfig sizes the pool to frames pages with standard costs.
func DefaultConfig(frames int) Config {
	return Config{
		BufferFrames: frames,
		Grant:        int64(frames) * 8192 / 4, // quarter of the pool per query
		Buffer:       buffer.DefaultConfig(frames),
		CPU:          exec.DefaultCPUProfile(),
	}
}

// Engine is one database instance on one server.
type Engine struct {
	Server  *cluster.Server
	BP      *buffer.Pool
	Catalog *catalog.Catalog
	Temp    *tempdb.TempDB
	Log     *txn.LogManager
	Cache   *semcache.Cache
	Cost    *opt.Model
	Planner *plan.Planner
	CPU     exec.CPUProfile
	Grant   int64
	DOP     int
	Budget  time.Duration // per-query remote-I/O deadline budget (0 = none)
}

// New builds an engine on server with the given storage placement.
func New(p *sim.Proc, server *cluster.Server, files Files, cfg Config) (*Engine, error) {
	bcfg := cfg.Buffer
	if bcfg.Frames == 0 {
		bcfg = buffer.DefaultConfig(cfg.BufferFrames)
	}
	bcfg.Frames = cfg.BufferFrames
	bcfg.Policy = cfg.Eviction
	if cfg.NoBatchedIO {
		bcfg.BatchedIO = false
		bcfg.Readahead = 0
	}
	if cfg.Readahead > 0 {
		bcfg.Readahead = cfg.Readahead
	}
	bp, err := buffer.New(p, server, files.Data, bcfg)
	if err != nil {
		return nil, err
	}
	if files.BPExt != nil && cfg.BPExtSlots > 0 {
		bp.AttachExtension(files.BPExt, cfg.BPExtSlots)
	}
	e := &Engine{
		Server:  server,
		BP:      bp,
		Catalog: catalog.New(bp),
		Temp:    tempdb.New(files.Temp),
		Log:     txn.New(server.K, files.Log),
		Cost:    opt.NewModel(),
		CPU:     cfg.CPU,
		Grant:   cfg.Grant,
		DOP:     cfg.DOP,
		Budget:  cfg.Budget,
	}
	if e.DOP == 0 {
		e.DOP = 4 // SQL Server runs analytic plans parallel by default
	}
	e.Planner = plan.NewPlanner(e.Cost, cfg.PlanCacheEntries)
	e.Planner.Pushdown = cfg.Pushdown
	e.Planner.DonorPrice = cfg.DonorPrice
	e.Cache = semcache.New(cfg.SemCache, e.Log)
	return e, nil
}

// PushStore is the storage a pushable segment is built on: a pushable
// file that also accepts writes. core.File satisfies it.
type PushStore interface {
	catalog.PushFile
	WriteAt(p *sim.Proc, b []byte, off int64) error
}

// BuildPushSegment mirrors t's rows into f as a chunk-aligned,
// length-prefixed record log in PK order and installs it as the
// table's pushable segment, enabling donor-side scan placement for the
// table. Call it after loading (the mirror is a static analytic copy;
// writes to the table do not maintain it).
func (e *Engine) BuildPushSegment(p *sim.Proc, t *catalog.Table, f PushStore) error {
	chunk := f.PushChunk()
	it, err := t.Clustered.Scan(p, nil)
	if err != nil {
		return err
	}
	var seg []byte
	var rows int64
	for {
		pair, ok, err := it.Next(p)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		seg = rmem.AppendPushRecord(seg, pair.Val, chunk)
		rows++
	}
	seg = rmem.PadPushChunk(seg, chunk)
	if len(seg) > 0 {
		if err := f.WriteAt(p, seg, 0); err != nil {
			return err
		}
	}
	t.SetPushSegment(&catalog.PushSegment{File: f, Rows: rows, Bytes: int64(len(seg)), Chunk: chunk})
	return nil
}

// NewCtx returns a fresh execution context for one query.
func (e *Engine) NewCtx(p *sim.Proc) *exec.Ctx {
	return &exec.Ctx{
		P:      p,
		Server: e.Server,
		Temp:   e.Temp,
		Grant:  e.Grant,
		CPU:    e.CPU,
		DOP:    e.DOP,
		Budget: e.Budget,
	}
}

// Shutdown stops background machinery (the lazy writer).
func (e *Engine) Shutdown() { e.BP.StopWriter() }
