// Package loader implements Appendix C of the paper: parallel loading of
// flat-file splits into a database. Parsing, compressing, and converting
// a split to native page format is CPU-intensive; offloading splits to
// idle remote servers that load into local in-memory files, then pulling
// the converted partitions over RDMA, turns a single-server bottleneck
// into near-linear scale-out (Figure 27).
package loader

import (
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/hw/nic"
	"remotedb/internal/sim"
)

// Split is one input file to load.
type Split struct {
	Name  string
	Bytes int64 // raw flat-file size
}

// CostModel captures the CPU cost of converting raw bytes to database
// pages (parse + validate + compress + page build).
type CostModel struct {
	CPUPerByte time.Duration // core time per raw input byte
	Expansion  float64       // native bytes per raw byte after conversion
}

// DefaultCostModel is calibrated so one server loads ~23 MB/s of raw
// input on 40 cores (the paper's single server loads 160 GB in 6919 s).
func DefaultCostModel() CostModel {
	return CostModel{CPUPerByte: 1700 * time.Nanosecond, Expansion: 1.0}
}

// Stats reports one load run.
type Stats struct {
	Splits      int
	RawBytes    int64
	LoadTime    time.Duration // parallel conversion phase
	CopyTime    time.Duration // RDMA pull of converted partitions
	WallClock   time.Duration
	ServersUsed int
}

// convert charges the CPU of converting one split on srv. The work is
// expressed as independent 256 KiB parse tasks, mirroring how parallel
// loading tools fan a split out over all cores.
func convert(p *sim.Proc, srv *cluster.Server, split Split, cm CostModel, wg *sim.WaitGroup) {
	const chunk = 256 << 10
	k := p.Kernel()
	n := int((split.Bytes + chunk - 1) / chunk)
	wg.Add(n)
	for i := 0; i < n; i++ {
		size := int64(chunk)
		if int64(i+1)*chunk > split.Bytes {
			size = split.Bytes - int64(i)*chunk
		}
		k.Go("convert-chunk", func(cp *sim.Proc) {
			// Parse tasks are pure CPU batch work: hold the core for the
			// whole task instead of paying quantum-slicing overhead.
			srv.Exec(cp, func() { cp.Sleep(time.Duration(size) * cm.CPUPerByte) })
			wg.Done()
		})
	}
}

// LoadParallel distributes the splits round-robin across the loading
// servers (the first of which is the destination), converts them in
// parallel, and then pulls every remotely converted partition to the
// destination over RDMA. With one server the copy phase is empty,
// reproducing Figure 27's single-server bar.
func LoadParallel(p *sim.Proc, servers []*cluster.Server, splits []Split, cm CostModel) Stats {
	dest := servers[0]
	var st Stats
	st.Splits = len(splits)
	st.ServersUsed = len(servers)
	for _, s := range splits {
		st.RawBytes += s.Bytes
	}
	start := p.Now()

	// Phase 1: parallel conversion. Splits round-robin over the servers;
	// every split's parse tasks run concurrently, bounded only by each
	// server's cores.
	wg := sim.NewWaitGroup(p.Kernel())
	for j, s := range splits {
		convert(p, servers[j%len(servers)], s, cm, wg)
	}
	wg.Wait(p)
	st.LoadTime = p.Now() - start

	// Phase 2: pull converted partitions from remote servers.
	t1 := p.Now()
	for i, srv := range servers {
		if i == 0 {
			continue // already at the destination
		}
		var remoteBytes int64
		for j := i; j < len(splits); j += len(servers) {
			remoteBytes += int64(float64(splits[j].Bytes) * cm.Expansion)
		}
		const msg = 1 << 20
		for off := int64(0); off < remoteBytes; off += msg {
			n := int64(msg)
			if off+n > remoteBytes {
				n = remoteBytes - off
			}
			nic.Wire(p, srv.NIC, dest.NIC, int(n))
		}
	}
	st.CopyTime = p.Now() - t1
	st.WallClock = p.Now() - start
	return st
}
