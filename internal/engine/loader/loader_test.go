package loader

import (
	"fmt"
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/sim"
)

func mkServers(k *sim.Kernel, n int) []*cluster.Server {
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	var out []*cluster.Server
	for i := 0; i < n; i++ {
		out = append(out, cluster.NewServer(k, fmt.Sprintf("s%d", i+1), cfg))
	}
	return out
}

func mkSplits(n int, each int64) []Split {
	var out []Split
	for i := 0; i < n; i++ {
		out = append(out, Split{Name: fmt.Sprintf("split-%d", i), Bytes: each})
	}
	return out
}

// run loads 80 splits of 2 MB (the paper's shape scaled 1000x down) on n
// servers and returns the wall clock.
func run(t *testing.T, n int) Stats {
	t.Helper()
	k := sim.New(1)
	servers := mkServers(k, n)
	var st Stats
	k.Go("t", func(p *sim.Proc) {
		st = LoadParallel(p, servers, mkSplits(80, 2<<20), DefaultCostModel())
	})
	k.Run(time.Hour)
	return st
}

func TestNearLinearSpeedup(t *testing.T) {
	one := run(t, 1)
	eight := run(t, 8)
	if one.CopyTime != 0 {
		t.Errorf("single-server load has copy time %v", one.CopyTime)
	}
	speedup := one.WallClock.Seconds() / eight.WallClock.Seconds()
	// The paper reports ~7.7x on 8 servers.
	if speedup < 6.5 || speedup > 8.2 {
		t.Fatalf("8-server speedup = %.2fx, want ~7.7x", speedup)
	}
	if eight.CopyTime <= 0 {
		t.Error("8-server load should have a copy phase")
	}
	if eight.CopyTime > eight.LoadTime/5 {
		t.Errorf("copy time %v should be small vs load %v", eight.CopyTime, eight.LoadTime)
	}
}

func TestMonotoneScaling(t *testing.T) {
	prev := time.Duration(1<<62 - 1)
	for _, n := range []int{1, 2, 4, 8} {
		st := run(t, n)
		if st.WallClock >= prev {
			t.Fatalf("wall clock did not improve at %d servers: %v >= %v", n, st.WallClock, prev)
		}
		prev = st.WallClock
	}
}

func TestLoadRateCalibration(t *testing.T) {
	// One server: 160 MB of raw input should take roughly 6.9 "seconds"
	// (the paper's 160 GB in 6919 s, scaled 1000x).
	st := run(t, 1)
	secs := st.WallClock.Seconds()
	if secs < 4.8 || secs > 9.7 {
		t.Fatalf("single-server load = %.1fs, want ~6.9s", secs)
	}
}
