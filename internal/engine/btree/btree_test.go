package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/row"
	"remotedb/internal/hw/disk"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// rig builds a tree on a null device (no I/O time) so tests run at full
// speed; frames is the pool size in pages.
func rig(k *sim.Kernel, frames int) func(p *sim.Proc) *Tree {
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	s := cluster.NewServer(k, "db", cfg)
	return func(p *sim.Proc) *Tree {
		data := vfs.NewDeviceFile("data", disk.NullDevice{DeviceName: "null"})
		bcfg := buffer.DefaultConfig(frames)
		bcfg.WriterPeriod = 0
		bcfg.PageAccessCPU = 0
		bp, err := buffer.New(p, s, data, bcfg)
		if err != nil {
			panic(err)
		}
		tr, err := New(p, bp, "t")
		if err != nil {
			panic(err)
		}
		return tr
	}
}

func key(i int) []byte { return row.EncodeKey(nil, int64(i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestInsertSearch(t *testing.T) {
	k := sim.New(1)
	mk := rig(k, 256)
	k.Go("t", func(p *sim.Proc) {
		tr := mk(p)
		for i := 0; i < 1000; i++ {
			if err := tr.Insert(p, key(i), val(i)); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
		for i := 0; i < 1000; i++ {
			got, err := tr.Search(p, key(i))
			if err != nil || !bytes.Equal(got, val(i)) {
				t.Errorf("search %d: %q %v", i, got, err)
				return
			}
		}
		if _, err := tr.Search(p, key(5000)); err != ErrNotFound {
			t.Errorf("missing key: %v", err)
		}
		if tr.Entries != 1000 {
			t.Errorf("entries = %d", tr.Entries)
		}
		if tr.Height() < 2 {
			t.Errorf("height = %d, expected splits", tr.Height())
		}
	})
	k.Run(time.Minute)
}

func TestDuplicateRejected(t *testing.T) {
	k := sim.New(1)
	mk := rig(k, 64)
	k.Go("t", func(p *sim.Proc) {
		tr := mk(p)
		tr.Insert(p, key(1), val(1))
		if err := tr.Insert(p, key(1), val(2)); err != ErrDuplicate {
			t.Errorf("duplicate insert: %v", err)
		}
		// Put upserts.
		if err := tr.Put(p, key(1), val(9)); err != nil {
			t.Errorf("put: %v", err)
		}
		got, _ := tr.Search(p, key(1))
		if !bytes.Equal(got, val(9)) {
			t.Errorf("after put: %q", got)
		}
	})
	k.Run(time.Minute)
}

func TestUpdateInPlaceAndGrow(t *testing.T) {
	k := sim.New(1)
	mk := rig(k, 256)
	k.Go("t", func(p *sim.Proc) {
		tr := mk(p)
		for i := 0; i < 100; i++ {
			tr.Insert(p, key(i), val(i))
		}
		if err := tr.Update(p, key(50), []byte("xy")); err != nil {
			t.Error(err)
		}
		got, _ := tr.Search(p, key(50))
		if string(got) != "xy" {
			t.Errorf("small update: %q", got)
		}
		big := bytes.Repeat([]byte{7}, 3000)
		if err := tr.Update(p, key(50), big); err != nil {
			t.Error(err)
		}
		got, _ = tr.Search(p, key(50))
		if !bytes.Equal(got, big) {
			t.Error("big update lost")
		}
		if err := tr.Update(p, key(12345), []byte("x")); err != ErrNotFound {
			t.Errorf("update missing: %v", err)
		}
	})
	k.Run(time.Minute)
}

func TestDelete(t *testing.T) {
	k := sim.New(1)
	mk := rig(k, 256)
	k.Go("t", func(p *sim.Proc) {
		tr := mk(p)
		for i := 0; i < 500; i++ {
			tr.Insert(p, key(i), val(i))
		}
		for i := 0; i < 500; i += 2 {
			if err := tr.Delete(p, key(i)); err != nil {
				t.Errorf("delete %d: %v", i, err)
			}
		}
		for i := 0; i < 500; i++ {
			_, err := tr.Search(p, key(i))
			if i%2 == 0 && err != ErrNotFound {
				t.Errorf("deleted key %d still present", i)
			}
			if i%2 == 1 && err != nil {
				t.Errorf("kept key %d lost: %v", i, err)
			}
		}
		if err := tr.Delete(p, key(0)); err != ErrNotFound {
			t.Errorf("double delete: %v", err)
		}
		if tr.Entries != 250 {
			t.Errorf("entries = %d", tr.Entries)
		}
	})
	k.Run(time.Minute)
}

func TestDeleteThenReinsertReusesSpace(t *testing.T) {
	k := sim.New(1)
	mk := rig(k, 256)
	k.Go("t", func(p *sim.Proc) {
		tr := mk(p)
		// Fill, delete all, refill with different values: compaction must
		// make room without unbounded growth.
		for round := 0; round < 3; round++ {
			for i := 0; i < 300; i++ {
				if err := tr.Put(p, key(i), val(i+round*1000)); err != nil {
					t.Errorf("round %d insert %d: %v", round, i, err)
					return
				}
			}
			for i := 0; i < 300; i++ {
				tr.Delete(p, key(i))
			}
		}
		if tr.Entries != 0 {
			t.Errorf("entries = %d", tr.Entries)
		}
	})
	k.Run(time.Minute)
}

func TestScanOrdered(t *testing.T) {
	k := sim.New(1)
	mk := rig(k, 512)
	k.Go("t", func(p *sim.Proc) {
		tr := mk(p)
		perm := rand.New(rand.NewSource(3)).Perm(2000)
		for _, i := range perm {
			tr.Insert(p, key(i), val(i))
		}
		it, err := tr.Scan(p, nil)
		if err != nil {
			t.Error(err)
			return
		}
		prev := -1
		count := 0
		for {
			pair, ok, err := it.Next(p)
			if err != nil {
				t.Error(err)
				return
			}
			if !ok {
				break
			}
			var got int64
			got = int64(decodeI(t, pair.Key))
			if int(got) <= prev {
				t.Errorf("scan out of order: %d after %d", got, prev)
				return
			}
			prev = int(got)
			count++
		}
		if count != 2000 {
			t.Errorf("scanned %d entries, want 2000", count)
		}
	})
	k.Run(time.Minute)
}

// decodeI inverts row.EncodeKey for a single int64.
func decodeI(t *testing.T, k []byte) int64 {
	t.Helper()
	if len(k) != 8 {
		t.Fatalf("key length %d", len(k))
	}
	var v uint64
	for _, b := range k {
		v = v<<8 | uint64(b)
	}
	return int64(v ^ (1 << 63))
}

func TestScanRangeBounds(t *testing.T) {
	k := sim.New(1)
	mk := rig(k, 256)
	k.Go("t", func(p *sim.Proc) {
		tr := mk(p)
		for i := 0; i < 100; i++ {
			tr.Insert(p, key(i), val(i))
		}
		pairs, err := tr.ScanRange(p, key(10), key(20), 0)
		if err != nil {
			t.Error(err)
			return
		}
		if len(pairs) != 10 {
			t.Errorf("range [10,20) returned %d", len(pairs))
		}
		pairs, _ = tr.ScanRange(p, key(90), nil, 0)
		if len(pairs) != 10 {
			t.Errorf("open-ended range returned %d", len(pairs))
		}
		pairs, _ = tr.ScanRange(p, nil, nil, 7)
		if len(pairs) != 7 {
			t.Errorf("limited scan returned %d", len(pairs))
		}
	})
	k.Run(time.Minute)
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	k := sim.New(1)
	mk := rig(k, 2048)
	k.Go("t", func(p *sim.Proc) {
		tr := mk(p)
		var pairs []Pair
		for i := 0; i < 5000; i++ {
			pairs = append(pairs, Pair{Key: key(i), Val: val(i)})
		}
		if err := tr.BulkLoad(p, pairs, 0.9); err != nil {
			t.Error(err)
			return
		}
		if tr.Entries != 5000 {
			t.Errorf("entries = %d", tr.Entries)
		}
		for _, i := range []int{0, 1, 2499, 4998, 4999} {
			got, err := tr.Search(p, key(i))
			if err != nil || !bytes.Equal(got, val(i)) {
				t.Errorf("bulk search %d: %q %v", i, got, err)
			}
		}
		// Inserts after bulk load still work (splits included).
		for i := 5000; i < 5500; i++ {
			if err := tr.Insert(p, key(i), val(i)); err != nil {
				t.Errorf("post-bulk insert %d: %v", i, err)
				return
			}
		}
		all, _ := tr.ScanRange(p, nil, nil, 0)
		if len(all) != 5500 {
			t.Errorf("total entries = %d", len(all))
		}
	})
	k.Run(time.Minute)
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	k := sim.New(1)
	mk := rig(k, 64)
	k.Go("t", func(p *sim.Proc) {
		tr := mk(p)
		pairs := []Pair{{Key: key(2), Val: val(2)}, {Key: key(1), Val: val(1)}}
		if err := tr.BulkLoad(p, pairs, 0.9); err == nil {
			t.Error("unsorted bulk load accepted")
		}
	})
	k.Run(time.Minute)
}

func TestConcurrentInsertersDisjointKeys(t *testing.T) {
	k := sim.New(1)
	mk := rig(k, 1024)
	k.Go("t", func(p *sim.Proc) {
		tr := mk(p)
		const workers, each = 8, 250
		done := sim.NewWaitGroup(k)
		done.Add(workers)
		for w := 0; w < workers; w++ {
			base := w * 10000
			k.Go("w", func(wp *sim.Proc) {
				for i := 0; i < each; i++ {
					if err := tr.Insert(wp, key(base+i), val(base+i)); err != nil {
						t.Errorf("concurrent insert: %v", err)
					}
					if i%10 == 0 {
						wp.Sleep(time.Microsecond) // force interleaving
					}
				}
				done.Done()
			})
		}
		done.Wait(p)
		all, err := tr.ScanRange(p, nil, nil, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if len(all) != workers*each {
			t.Errorf("entries = %d, want %d", len(all), workers*each)
		}
		sorted := sort.SliceIsSorted(all, func(i, j int) bool {
			return bytes.Compare(all[i].Key, all[j].Key) < 0
		})
		if !sorted {
			t.Error("scan not sorted after concurrent inserts")
		}
	})
	k.Run(time.Minute)
}

func TestConcurrentReadersDuringSplits(t *testing.T) {
	k := sim.New(1)
	mk := rig(k, 1024)
	k.Go("t", func(p *sim.Proc) {
		tr := mk(p)
		for i := 0; i < 500; i++ {
			tr.Insert(p, key(i*2), val(i*2)) // even keys
		}
		done := sim.NewWaitGroup(k)
		done.Add(2)
		// Writer inserts odd keys, forcing splits.
		k.Go("writer", func(wp *sim.Proc) {
			for i := 0; i < 500; i++ {
				tr.Insert(wp, key(i*2+1), val(i*2+1))
				if i%5 == 0 {
					wp.Sleep(time.Microsecond)
				}
			}
			done.Done()
		})
		// Reader repeatedly searches existing even keys.
		k.Go("reader", func(rp *sim.Proc) {
			for round := 0; round < 50; round++ {
				for _, i := range []int{0, 200, 500, 800, 998} {
					got, err := tr.Search(rp, key(i))
					if err != nil || !bytes.Equal(got, val(i)) {
						t.Errorf("reader during splits: key %d -> %q %v", i, got, err)
						done.Done()
						return
					}
				}
				rp.Sleep(time.Microsecond)
			}
			done.Done()
		})
		done.Wait(p)
	})
	k.Run(time.Minute)
}

func TestLargeEntryRejected(t *testing.T) {
	k := sim.New(1)
	mk := rig(k, 64)
	k.Go("t", func(p *sim.Proc) {
		tr := mk(p)
		if err := tr.Insert(p, key(1), make([]byte, 8000)); err != ErrTooBig {
			t.Errorf("oversized entry: %v", err)
		}
	})
	k.Run(time.Minute)
}

func TestStringKeys(t *testing.T) {
	k := sim.New(1)
	mk := rig(k, 256)
	k.Go("t", func(p *sim.Proc) {
		tr := mk(p)
		words := []string{"delta", "alpha", "echo", "bravo", "charlie"}
		for _, w := range words {
			tr.Insert(p, row.EncodeKey(nil, w), []byte(w))
		}
		all, _ := tr.ScanRange(p, nil, nil, 0)
		want := []string{"alpha", "bravo", "charlie", "delta", "echo"}
		for i, pair := range all {
			if string(pair.Val) != want[i] {
				t.Errorf("position %d = %q, want %q", i, pair.Val, want[i])
			}
		}
	})
	k.Run(time.Minute)
}
