// Package btree implements the engine's B+tree over buffer-pool pages:
// clustered indexes (rows in the leaves) and secondary indexes (key →
// primary key) both use it. The design is a B-link tree: every node
// carries a high key and a right-sibling link, so readers never latch —
// if a concurrent split moved their key range, they follow the link
// right. Structure modifications serialize on a per-tree mutex; plain
// inserts and updates only pin the leaf they touch.
//
// In-page records are unsorted (appended) and searched linearly; pages
// hold a few dozen records, so the linear scan is cheaper than
// maintaining sorted slot directories, and range scans sort per page.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/page"
	"remotedb/internal/sim"
)

// Errors returned by tree operations.
var (
	ErrDuplicate = errors.New("btree: duplicate key")
	ErrNotFound  = errors.New("btree: key not found")
	ErrTooBig    = errors.New("btree: entry larger than half a page")
)

// maxEntry bounds one (key,value) record so two always fit in a page.
const maxEntry = (page.Size - page.HeaderSize - 64) / 2

// Tree is a B-link tree rooted in a buffer pool.
type Tree struct {
	Name string

	bp     *buffer.Pool
	root   uint64
	height int
	smo    *sim.Resource // serializes structure modifications

	Entries int64 // live entry count (maintained by Insert/Delete)
}

// New creates an empty tree (a single empty leaf).
func New(p *sim.Proc, bp *buffer.Pool, name string) (*Tree, error) {
	h, no, err := bp.Allocate(p, page.TypeBTreeLeaf)
	if err != nil {
		return nil, err
	}
	initNode(h.Page(), page.TypeBTreeLeaf, nil)
	h.MarkDirty(0)
	h.Release()
	return &Tree{
		Name:   name,
		bp:     bp,
		root:   no,
		height: 1,
		smo:    sim.NewResource(bp.Server().K, name+"/smo", 1),
	}, nil
}

// Pool returns the tree's buffer pool.
func (t *Tree) Pool() *buffer.Pool { return t.bp }

// Root returns the current root page number.
func (t *Tree) Root() uint64 { return t.root }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// --- node record encoding ------------------------------------------------
//
// Slot 0 of every node is the high key: empty = +inf. Slots >= 1 are
// entries. Leaf entry: [klen u16][key][value]. Inner entry:
// [klen u16][key][child u64]; the entry with the empty key is the
// leftmost child (-inf separator).

func initNode(pg *page.Page, t page.Type, highKey []byte) {
	pg.Init(pg.PageNo(), t)
	rec := make([]byte, 2+len(highKey))
	binary.LittleEndian.PutUint16(rec, uint16(len(highKey)))
	copy(rec[2:], highKey)
	if _, err := pg.Insert(rec); err != nil {
		panic("btree: cannot write high key: " + err.Error())
	}
}

func highKey(pg *page.Page) []byte {
	rec, err := pg.Get(0)
	if err != nil {
		panic("btree: node missing high key")
	}
	n := binary.LittleEndian.Uint16(rec)
	return rec[2 : 2+n]
}

func setHighKey(pg *page.Page, hk []byte) {
	rec := make([]byte, 2+len(hk))
	binary.LittleEndian.PutUint16(rec, uint16(len(hk)))
	copy(rec[2:], hk)
	if err := pg.Update(0, rec); err != nil {
		panic("btree: cannot update high key: " + err.Error())
	}
}

// covered reports whether key belongs to this node (key < highKey).
func covered(pg *page.Page, key []byte) bool {
	hk := highKey(pg)
	return len(hk) == 0 || bytes.Compare(key, hk) < 0
}

func encodeLeaf(key, val []byte) []byte {
	rec := make([]byte, 2+len(key)+len(val))
	binary.LittleEndian.PutUint16(rec, uint16(len(key)))
	copy(rec[2:], key)
	copy(rec[2+len(key):], val)
	return rec
}

func decodeLeaf(rec []byte) (key, val []byte) {
	n := binary.LittleEndian.Uint16(rec)
	return rec[2 : 2+n], rec[2+n:]
}

func encodeInner(key []byte, child uint64) []byte {
	rec := make([]byte, 2+len(key)+8)
	binary.LittleEndian.PutUint16(rec, uint16(len(key)))
	copy(rec[2:], key)
	binary.LittleEndian.PutUint64(rec[2+len(key):], child)
	return rec
}

func decodeInner(rec []byte) (key []byte, child uint64) {
	n := binary.LittleEndian.Uint16(rec)
	return rec[2 : 2+n], binary.LittleEndian.Uint64(rec[2+int(n):])
}

// findLeafSlot linearly scans a leaf for key; returns slot index or -1.
func findLeafSlot(pg *page.Page, key []byte) int {
	for i := 1; i < pg.NumSlots(); i++ {
		rec, err := pg.Get(i)
		if err != nil {
			continue // dead slot
		}
		k, _ := decodeLeaf(rec)
		if bytes.Equal(k, key) {
			return i
		}
	}
	return -1
}

// childFor picks the inner entry whose subtree covers key: the entry with
// the largest separator <= key.
func childFor(pg *page.Page, key []byte) uint64 {
	var best []byte
	var child uint64
	found := false
	for i := 1; i < pg.NumSlots(); i++ {
		rec, err := pg.Get(i)
		if err != nil {
			continue
		}
		k, c := decodeInner(rec)
		if bytes.Compare(k, key) <= 0 {
			if !found || bytes.Compare(k, best) >= 0 {
				best, child, found = k, c, true
			}
		}
	}
	if !found {
		panic("btree: inner node has no covering child")
	}
	return child
}

// descendToLeaf walks from the root to the leaf covering key, following
// right-links when a concurrent split moved the range. It returns a
// pinned leaf handle.
func (t *Tree) descendToLeaf(p *sim.Proc, key []byte) (*buffer.Handle, error) {
	pageNo := t.root
	for {
		h, err := t.bp.Get(p, pageNo)
		if err != nil {
			return nil, err
		}
		pg := h.Page()
		if !covered(pg, key) {
			next := pg.Next()
			h.Release()
			if next == 0 {
				return nil, fmt.Errorf("btree %s: fell off right edge", t.Name)
			}
			pageNo = next
			continue
		}
		if pg.PageType() == page.TypeBTreeLeaf {
			return h, nil
		}
		pageNo = childFor(pg, key)
		h.Release()
	}
}

// Search returns the value stored under key.
func (t *Tree) Search(p *sim.Proc, key []byte) ([]byte, error) {
	h, err := t.descendToLeaf(p, key)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	slot := findLeafSlot(h.Page(), key)
	if slot < 0 {
		return nil, ErrNotFound
	}
	rec, _ := h.Page().Get(slot)
	_, val := decodeLeaf(rec)
	return append([]byte(nil), val...), nil
}

// Insert adds a new key; it fails on duplicates.
func (t *Tree) Insert(p *sim.Proc, key, val []byte) error {
	return t.put(p, key, val, false)
}

// Put inserts or replaces.
func (t *Tree) Put(p *sim.Proc, key, val []byte) error {
	return t.put(p, key, val, true)
}

// Update replaces the value of an existing key.
func (t *Tree) Update(p *sim.Proc, key, val []byte) error {
	h, err := t.descendToLeaf(p, key)
	if err != nil {
		return err
	}
	pg := h.Page()
	slot := findLeafSlot(pg, key)
	if slot < 0 {
		h.Release()
		return ErrNotFound
	}
	rec := encodeLeaf(key, val)
	if err := pg.Update(slot, rec); err == nil {
		h.MarkDirty(0)
		h.Release()
		return nil
	}
	// No room to grow in place: delete + reinsert (may split).
	pg.Delete(slot)
	t.Entries--
	h.MarkDirty(0)
	h.Release()
	return t.put(p, key, val, false)
}

func (t *Tree) put(p *sim.Proc, key, val []byte, upsert bool) error {
	rec := encodeLeaf(key, val)
	if len(rec) > maxEntry {
		return ErrTooBig
	}
	for {
		h, err := t.descendToLeaf(p, key)
		if err != nil {
			return err
		}
		pg := h.Page()
		if slot := findLeafSlot(pg, key); slot >= 0 {
			if !upsert {
				h.Release()
				return ErrDuplicate
			}
			if err := pg.Update(slot, rec); err == nil {
				h.MarkDirty(0)
				h.Release()
				return nil
			}
			pg.Delete(slot)
			t.Entries--
		}
		if pg.FreeSpace() >= len(rec)+8 {
			if _, err := pg.Insert(rec); err == nil {
				t.Entries++
				h.MarkDirty(0)
				h.Release()
				return nil
			}
		}
		// Try compaction (dead slots from deletes/updates).
		if pg.Live() < pg.NumSlots() {
			pg.Compact()
			h.MarkDirty(0)
			if pg.FreeSpace() >= len(rec)+8 {
				if _, err := pg.Insert(rec); err == nil {
					t.Entries++
					h.Release()
					return nil
				}
			}
		}
		leafNo := h.PageNo()
		h.Release()
		// Leaf is genuinely full: split under the SMO mutex and retry.
		if err := t.splitLeaf(p, leafNo, key); err != nil {
			return err
		}
	}
}

// splitLeaf splits the (possibly stale) leaf covering key. The SMO mutex
// serializes all splits.
func (t *Tree) splitLeaf(p *sim.Proc, hintPage uint64, key []byte) error {
	t.smo.Acquire(p, 1)
	defer t.smo.Release(1)

	// Re-locate the leaf: it may have been split already.
	h, err := t.descendToLeaf(p, key)
	if err != nil {
		return err
	}
	pg := h.Page()
	type entry struct{ k, v []byte }
	var entries []entry
	for i := 1; i < pg.NumSlots(); i++ {
		r, err := pg.Get(i)
		if err != nil {
			continue
		}
		k, v := decodeLeaf(r)
		entries = append(entries, entry{append([]byte(nil), k...), append([]byte(nil), v...)})
	}
	if len(entries) < 2 {
		h.Release()
		return nil // nothing to split; caller retries insert
	}
	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i].k, entries[j].k) < 0 })
	mid := len(entries) / 2
	sep := entries[mid].k
	oldHigh := append([]byte(nil), highKey(pg)...)
	oldNext := pg.Next()
	leafNo := h.PageNo()

	// Allocate the right sibling and move the upper half there.
	rh, rightNo, err := t.bp.Allocate(p, page.TypeBTreeLeaf)
	if err != nil {
		h.Release()
		return err
	}
	initNode(rh.Page(), page.TypeBTreeLeaf, oldHigh)
	rh.Page().SetNext(oldNext)
	for _, e := range entries[mid:] {
		if _, err := rh.Page().Insert(encodeLeaf(e.k, e.v)); err != nil {
			panic("btree: right split page overflow: " + err.Error())
		}
	}
	rh.MarkDirty(0)
	rh.Release()

	// Rewrite the left node with the lower half.
	initNode(pg, page.TypeBTreeLeaf, sep)
	pg.SetNext(rightNo)
	for _, e := range entries[:mid] {
		if _, err := pg.Insert(encodeLeaf(e.k, e.v)); err != nil {
			panic("btree: left split page overflow: " + err.Error())
		}
	}
	h.MarkDirty(0)
	h.Release()

	// Post the separator to the parent level.
	return t.postSeparator(p, leafNo, rightNo, sep, 1)
}

// postSeparator inserts (sep -> rightNo) into the parent of leftNo at the
// given level (leaf = level 1). A missing parent (leftNo was the root)
// grows the tree.
func (t *Tree) postSeparator(p *sim.Proc, leftNo, rightNo uint64, sep []byte, level int) error {
	if leftNo == t.root {
		// Root split: new root with two children.
		rh, rootNo, err := t.bp.Allocate(p, page.TypeBTreeInner)
		if err != nil {
			return err
		}
		initNode(rh.Page(), page.TypeBTreeInner, nil)
		rh.Page().Insert(encodeInner(nil, leftNo))
		rh.Page().Insert(encodeInner(sep, rightNo))
		rh.MarkDirty(0)
		rh.Release()
		t.root = rootNo
		t.height++
		return nil
	}
	// Find the parent of leftNo by descending to the node at level+1
	// covering sep, moving right as needed.
	pageNo := t.root
	depth := t.height
	for depth > level+1 {
		h, err := t.bp.Get(p, pageNo)
		if err != nil {
			return err
		}
		pg := h.Page()
		if !covered(pg, sep) {
			next := pg.Next()
			h.Release()
			pageNo = next
			continue
		}
		pageNo = childFor(pg, sep)
		h.Release()
		depth--
	}
	for {
		h, err := t.bp.Get(p, pageNo)
		if err != nil {
			return err
		}
		pg := h.Page()
		if !covered(pg, sep) {
			next := pg.Next()
			h.Release()
			if next == 0 {
				return fmt.Errorf("btree %s: separator fell off inner level", t.Name)
			}
			pageNo = next
			continue
		}
		rec := encodeInner(sep, rightNo)
		if pg.FreeSpace() >= len(rec)+8 {
			pg.Insert(rec)
			h.MarkDirty(0)
			h.Release()
			return nil
		}
		// Inner node full: split it (we already hold the SMO mutex).
		if err := t.splitInner(p, h, level+1); err != nil {
			h.Release()
			return err
		}
		h.Release()
		// Retry posting from the same node (links updated).
	}
}

// splitInner splits a full inner node whose handle is pinned.
func (t *Tree) splitInner(p *sim.Proc, h *buffer.Handle, level int) error {
	pg := h.Page()
	type entry struct {
		k []byte
		c uint64
	}
	var entries []entry
	for i := 1; i < pg.NumSlots(); i++ {
		r, err := pg.Get(i)
		if err != nil {
			continue
		}
		k, c := decodeInner(r)
		entries = append(entries, entry{append([]byte(nil), k...), c})
	}
	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i].k, entries[j].k) < 0 })
	mid := len(entries) / 2
	sep := entries[mid].k
	oldHigh := append([]byte(nil), highKey(pg)...)
	oldNext := pg.Next()
	leftNo := h.PageNo()

	rh, rightNo, err := t.bp.Allocate(p, page.TypeBTreeInner)
	if err != nil {
		return err
	}
	initNode(rh.Page(), page.TypeBTreeInner, oldHigh)
	rh.Page().SetNext(oldNext)
	// Right node's leftmost child: the separator entry's child becomes the
	// -inf entry of the right node.
	rh.Page().Insert(encodeInner(nil, entries[mid].c))
	for _, e := range entries[mid+1:] {
		rh.Page().Insert(encodeInner(e.k, e.c))
	}
	rh.MarkDirty(0)
	rh.Release()

	initNode(pg, page.TypeBTreeInner, sep)
	pg.SetNext(rightNo)
	for _, e := range entries[:mid] {
		pg.Insert(encodeInner(e.k, e.c))
	}
	h.MarkDirty(0)

	return t.postSeparator(p, leftNo, rightNo, sep, level)
}

// Delete removes a key (slot is marked dead; space reclaimed by later
// compaction; nodes are never merged).
func (t *Tree) Delete(p *sim.Proc, key []byte) error {
	h, err := t.descendToLeaf(p, key)
	if err != nil {
		return err
	}
	defer h.Release()
	slot := findLeafSlot(h.Page(), key)
	if slot < 0 {
		return ErrNotFound
	}
	h.Page().Delete(slot)
	h.MarkDirty(0)
	t.Entries--
	return nil
}
