package btree

import (
	"bytes"
	"sort"

	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/page"
	"remotedb/internal/sim"
)

// Pair is one (key, value) entry surfaced by a scan.
type Pair struct {
	Key, Val []byte
}

// Iterator walks leaf pages in key order. It buffers one page of sorted
// entries at a time; concurrent splits are tolerated (entries may be
// revisited across page boundaries only if they were moved right, which
// the monotone key filter suppresses).
type Iterator struct {
	t       *Tree
	buf     []Pair
	idx     int
	nextPg  uint64
	lastKey []byte
	done    bool
	leaves  int    // leaf pages visited so far
	raNext  uint64 // next page at which to issue a readahead window
}

// Scan returns an iterator positioned at the first key >= from (nil = min).
func (t *Tree) Scan(p *sim.Proc, from []byte) (*Iterator, error) {
	h, err := t.descendToLeaf(p, from)
	if err != nil {
		return nil, err
	}
	it := &Iterator{t: t}
	it.loadPage(h, from)
	return it, nil
}

// loadPage sorts the leaf's live entries >= lower into the buffer.
func (it *Iterator) loadPage(h *buffer.Handle, lower []byte) {
	pg := h.Page()
	it.buf = it.buf[:0]
	it.idx = 0
	for i := 1; i < pg.NumSlots(); i++ {
		rec, err := pg.Get(i)
		if err != nil {
			continue
		}
		k, v := decodeLeaf(rec)
		if lower != nil && bytes.Compare(k, lower) < 0 {
			continue
		}
		it.buf = append(it.buf, Pair{
			Key: append([]byte(nil), k...),
			Val: append([]byte(nil), v...),
		})
	}
	sort.Slice(it.buf, func(i, j int) bool { return bytes.Compare(it.buf[i].Key, it.buf[j].Key) < 0 })
	it.nextPg = pg.Next()
	h.Release()
}

// Next returns the next entry in key order; ok=false at the end.
func (it *Iterator) Next(p *sim.Proc) (Pair, bool, error) {
	for {
		if it.idx < len(it.buf) {
			pair := it.buf[it.idx]
			it.idx++
			// Suppress duplicates from a page revisit after a split.
			if it.lastKey != nil && bytes.Compare(pair.Key, it.lastKey) <= 0 {
				continue
			}
			it.lastKey = pair.Key
			return pair, true, nil
		}
		if it.done || it.nextPg == 0 {
			it.done = true
			return Pair{}, false, nil
		}
		// Bulk-loaded leaves are consecutively numbered, so prefetching
		// the window after the cursor turns the page-at-a-time walk into
		// batched faults; pages outside the chain cost one wasted frame
		// at worst and the window re-arms only past the previous one.
		// Readahead engages only once the iterator has crossed a couple
		// of leaves — a short PK-range probe reading one or two pages
		// must not pay for a speculative window it will never use — and
		// then slow-starts: the window is capped at the number of leaves
		// already visited, so a scan earns its prefetch depth by proving
		// it keeps going (a 4-leaf range query prefetches 2, a long scan
		// ramps to the full window within a couple of re-arms). The
		// offered window itself is adaptive: the pool ramps and shrinks
		// ReadaheadPages from the observed prefetch hit/waste ratio, so
		// workloads whose scans keep stopping short get a shallower
		// ceiling than this iterator's own slow-start would pick.
		if ra := it.t.bp.ReadaheadPages(); ra > 0 && it.leaves >= 2 && it.nextPg >= it.raNext {
			win := it.leaves
			if win > ra {
				win = ra
			}
			it.t.bp.ReadAheadWindow(p, it.nextPg, win)
			it.raNext = it.nextPg + uint64(win)
		}
		it.leaves++
		h, err := it.t.bp.Get(p, it.nextPg)
		if err != nil {
			return Pair{}, false, err
		}
		it.loadPage(h, nil)
	}
}

// ScanRange collects up to limit entries with from <= key < to
// (nil bounds are open; limit <= 0 means unlimited).
func (t *Tree) ScanRange(p *sim.Proc, from, to []byte, limit int) ([]Pair, error) {
	it, err := t.Scan(p, from)
	if err != nil {
		return nil, err
	}
	var out []Pair
	for {
		pair, ok, err := it.Next(p)
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		if to != nil && bytes.Compare(pair.Key, to) >= 0 {
			return out, nil
		}
		out = append(out, pair)
		if limit > 0 && len(out) >= limit {
			return out, nil
		}
	}
}

// SplitPoints returns up to n-1 separator keys that partition the key
// space into roughly equal consecutive ranges, sampled from the root
// node's separators (one page read). A small tree may yield fewer
// separators than asked for; a single-level tree yields none.
func (t *Tree) SplitPoints(p *sim.Proc, n int) ([][]byte, error) {
	if n < 2 || t.height < 2 {
		return nil, nil
	}
	h, err := t.bp.Get(p, t.root)
	if err != nil {
		return nil, err
	}
	pg := h.Page()
	var seps [][]byte
	for i := 1; i < pg.NumSlots(); i++ {
		rec, err := pg.Get(i)
		if err != nil {
			continue
		}
		k, _ := decodeInner(rec)
		if len(k) == 0 {
			continue // -inf entry for the leftmost child
		}
		seps = append(seps, append([]byte(nil), k...))
	}
	h.Release()
	sort.Slice(seps, func(i, j int) bool { return bytes.Compare(seps[i], seps[j]) < 0 })
	if len(seps) <= n-1 {
		return seps, nil
	}
	out := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		out = append(out, seps[i*len(seps)/n])
	}
	return out, nil
}

// BulkLoad builds a tree bottom-up from key-sorted pairs, filling leaves
// to fillFactor (0 < ff <= 1). It must be called on a fresh (empty) tree
// and is the fast path for the workload generators' initial loads.
func (t *Tree) BulkLoad(p *sim.Proc, pairs []Pair, fillFactor float64) error {
	if fillFactor <= 0 || fillFactor > 1 {
		fillFactor = 0.9
	}
	if len(pairs) == 0 {
		return nil
	}
	for i := 1; i < len(pairs); i++ {
		if bytes.Compare(pairs[i-1].Key, pairs[i].Key) >= 0 {
			return ErrDuplicate
		}
	}
	budget := int(float64(page.Size-page.HeaderSize-64) * fillFactor)

	// Build the leaf level.
	var level []nodeRef
	i := 0
	for i < len(pairs) {
		h, no, err := t.bp.Allocate(p, page.TypeBTreeLeaf)
		if err != nil {
			return err
		}
		initNode(h.Page(), page.TypeBTreeLeaf, nil)
		first := pairs[i].Key
		used := 0
		for i < len(pairs) {
			rec := encodeLeaf(pairs[i].Key, pairs[i].Val)
			if len(rec) > maxEntry {
				h.Release()
				return ErrTooBig
			}
			if used+len(rec)+8 > budget {
				break
			}
			if _, err := h.Page().Insert(rec); err != nil {
				break
			}
			used += len(rec) + 8
			i++
		}
		h.MarkDirty(0)
		h.Release()
		level = append(level, nodeRef{firstKey: first, pageNo: no})
	}
	// Chain leaves and set high keys.
	if err := t.linkLevel(p, level); err != nil {
		return err
	}

	// Build inner levels until one node remains.
	height := 1
	for len(level) > 1 {
		var upper []nodeRef
		j := 0
		for j < len(level) {
			h, no, err := t.bp.Allocate(p, page.TypeBTreeInner)
			if err != nil {
				return err
			}
			initNode(h.Page(), page.TypeBTreeInner, nil)
			first := level[j].firstKey
			used := 0
			count := 0
			for j < len(level) {
				var key []byte
				if count > 0 {
					key = level[j].firstKey
				}
				rec := encodeInner(key, level[j].pageNo)
				if used+len(rec)+8 > budget && count > 1 {
					break
				}
				if _, err := h.Page().Insert(rec); err != nil {
					break
				}
				used += len(rec) + 8
				count++
				j++
			}
			h.MarkDirty(0)
			h.Release()
			upper = append(upper, nodeRef{firstKey: first, pageNo: no})
		}
		if err := t.linkLevel(p, upper); err != nil {
			return err
		}
		level = upper
		height++
	}
	t.root = level[0].pageNo
	t.height = height
	t.Entries = int64(len(pairs))
	return nil
}

// nodeRef names one node of a level being bulk-built.
type nodeRef struct {
	firstKey []byte
	pageNo   uint64
}

// linkLevel chains siblings and assigns each node's high key from its
// right neighbour's first key.
func (t *Tree) linkLevel(p *sim.Proc, level []nodeRef) error {
	for i, ref := range level {
		h, err := t.bp.Get(p, ref.pageNo)
		if err != nil {
			return err
		}
		if i+1 < len(level) {
			setHighKey(h.Page(), level[i+1].firstKey)
			h.Page().SetNext(level[i+1].pageNo)
		}
		h.MarkDirty(0)
		h.Release()
	}
	return nil
}
