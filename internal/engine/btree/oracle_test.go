package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"remotedb/internal/engine/row"
	"remotedb/internal/sim"
)

// TestRandomOpsAgainstMapOracle drives a long random sequence of
// Put/Delete/Search/ScanRange against both the tree and a plain map and
// requires them to agree at every step — the strongest structural check
// in the suite.
func TestRandomOpsAgainstMapOracle(t *testing.T) {
	k := sim.New(1)
	mk := rig(k, 1024)
	k.Go("t", func(p *sim.Proc) {
		tr := mk(p)
		oracle := make(map[int64][]byte)
		rng := rand.New(rand.NewSource(99))
		const keySpace = 2000

		for step := 0; step < 20000; step++ {
			key := int64(rng.Intn(keySpace))
			kb := row.EncodeKey(nil, key)
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // put
				val := []byte(fmt.Sprintf("v-%d-%d", key, step))
				if err := tr.Put(p, kb, val); err != nil {
					t.Fatalf("step %d put: %v", step, err)
				}
				oracle[key] = val
			case 4, 5: // delete
				err := tr.Delete(p, kb)
				_, existed := oracle[key]
				if existed && err != nil {
					t.Fatalf("step %d delete existing: %v", step, err)
				}
				if !existed && err != ErrNotFound {
					t.Fatalf("step %d delete missing: %v", step, err)
				}
				delete(oracle, key)
			case 6, 7, 8: // search
				got, err := tr.Search(p, kb)
				want, existed := oracle[key]
				if existed {
					if err != nil || !bytes.Equal(got, want) {
						t.Fatalf("step %d search: got %q err %v, want %q", step, got, err, want)
					}
				} else if err != ErrNotFound {
					t.Fatalf("step %d search missing: %v", step, err)
				}
			case 9: // range scan
				lo := int64(rng.Intn(keySpace))
				hi := lo + int64(rng.Intn(100))
				pairs, err := tr.ScanRange(p, row.EncodeKey(nil, lo), row.EncodeKey(nil, hi), 0)
				if err != nil {
					t.Fatalf("step %d scan: %v", step, err)
				}
				var want []int64
				for ok := range oracle {
					if ok >= lo && ok < hi {
						want = append(want, ok)
					}
				}
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if len(pairs) != len(want) {
					t.Fatalf("step %d scan [%d,%d): %d pairs, want %d", step, lo, hi, len(pairs), len(want))
				}
				for i, pr := range pairs {
					if !bytes.Equal(pr.Key, row.EncodeKey(nil, want[i])) {
						t.Fatalf("step %d scan order mismatch at %d", step, i)
					}
					if !bytes.Equal(pr.Val, oracle[want[i]]) {
						t.Fatalf("step %d scan value mismatch for key %d", step, want[i])
					}
				}
			}
		}
		if tr.Entries != int64(len(oracle)) {
			t.Fatalf("entry count %d, oracle %d", tr.Entries, len(oracle))
		}
	})
	k.Run(time.Hour)
}

// TestOracleWithVariableSizedValues stresses in-place updates, growth
// re-insertion, and compaction with values from 1 byte to 3 KiB.
func TestOracleWithVariableSizedValues(t *testing.T) {
	k := sim.New(1)
	mk := rig(k, 2048)
	k.Go("t", func(p *sim.Proc) {
		tr := mk(p)
		oracle := make(map[int64][]byte)
		rng := rand.New(rand.NewSource(5))
		for step := 0; step < 5000; step++ {
			key := int64(rng.Intn(300))
			kb := row.EncodeKey(nil, key)
			size := 1 + rng.Intn(3000)
			val := bytes.Repeat([]byte{byte(step)}, size)
			if err := tr.Put(p, kb, val); err != nil {
				t.Fatalf("step %d put %dB: %v", step, size, err)
			}
			oracle[key] = val
		}
		for key, want := range oracle {
			got, err := tr.Search(p, row.EncodeKey(nil, key))
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("key %d: err %v, len %d want %d", key, err, len(got), len(want))
			}
		}
	})
	k.Run(time.Hour)
}
