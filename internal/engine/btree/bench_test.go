package btree

import (
	"fmt"
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/row"
	"remotedb/internal/hw/disk"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// benchTree builds a tree with n entries on a null device and hands it
// to fn inside a simulation process.
func benchTree(b *testing.B, n int, fn func(p *sim.Proc, tr *Tree)) {
	b.Helper()
	k := sim.New(1)
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	s := cluster.NewServer(k, "db", cfg)
	k.Go("bench", func(p *sim.Proc) {
		bcfg := buffer.DefaultConfig(1 << 16)
		bcfg.WriterPeriod = 0
		bcfg.PageAccessCPU = 0
		bp, err := buffer.New(p, s, vfs.NewDeviceFile("d", disk.NullDevice{DeviceName: "null"}), bcfg)
		if err != nil {
			b.Error(err)
			return
		}
		tr, err := New(p, bp, "bench")
		if err != nil {
			b.Error(err)
			return
		}
		pairs := make([]Pair, n)
		for i := range pairs {
			pairs[i] = Pair{
				Key: row.EncodeKey(nil, int64(i)),
				Val: []byte(fmt.Sprintf("value-%d", i)),
			}
		}
		if err := tr.BulkLoad(p, pairs, 0.9); err != nil {
			b.Error(err)
			return
		}
		fn(p, tr)
	})
	k.Run(time.Hour)
}

func BenchmarkBTreeSearch(b *testing.B) {
	benchTree(b, 100000, func(p *sim.Proc, tr *Tree) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key := row.EncodeKey(nil, int64(i%100000))
			if _, err := tr.Search(p, key); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkBTreeInsert(b *testing.B) {
	benchTree(b, 10000, func(p *sim.Proc, tr *Tree) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key := row.EncodeKey(nil, int64(1000000+i))
			if err := tr.Insert(p, key, []byte("benchval")); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkBTreeScan1000(b *testing.B) {
	benchTree(b, 100000, func(p *sim.Proc, tr *Tree) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			from := row.EncodeKey(nil, int64((i*1000)%90000))
			to := row.EncodeKey(nil, int64((i*1000)%90000+1000))
			if _, err := tr.ScanRange(p, from, to, 0); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkBulkLoad100K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchTree(b, 100000, func(p *sim.Proc, tr *Tree) {})
	}
}
