package exec

import (
	"time"

	"remotedb/internal/engine/row"
)

// Rows is the streaming result iterator: the caller-facing face of the
// Volcano pipeline. Non-blocking operators beneath it (scan, filter,
// project, limit, join probe, exchange) hand tuples through one at a
// time, so a consumer that stops early (or keeps only a running
// aggregate) never pays for materializing the full result set.
type Rows struct {
	c      *Ctx
	op     Op
	n      int64
	closed bool
	err    error
	prevDL time.Duration // proc deadline to restore on Close
}

// Open opens an operator tree and returns its streaming iterator. The
// caller must Close the Rows (Close is idempotent and safe after an
// error) to release operator state and flush accrued CPU.
//
// If the context carries a deadline budget, Open stamps the absolute
// deadline (Now+Budget) on the proc for the life of the query; Close
// restores whatever deadline the proc had before, so back-to-back
// queries on one proc each get a fresh budget.
func Open(c *Ctx, op Op) (*Rows, error) {
	prev := c.P.Deadline()
	if c.Budget > 0 {
		c.P.SetDeadline(c.P.Now() + c.Budget)
	}
	if err := op.Open(c); err != nil {
		c.P.SetDeadline(prev)
		return nil, err
	}
	return &Rows{c: c, op: op, prevDL: prev}, nil
}

// Schema returns the result schema.
func (r *Rows) Schema() *row.Schema { return r.op.Schema() }

// Next returns the next result row; ok=false at the end of the stream.
func (r *Rows) Next() (row.Tuple, bool, error) {
	if r.closed {
		return nil, false, r.err
	}
	t, ok, err := r.op.Next(r.c)
	if err != nil {
		r.err = err
		r.Close()
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	r.n++
	return t, true, nil
}

// Close releases the operator tree, flushes batched CPU debt and records
// the row count in the context. It is idempotent.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	err := r.op.Close(r.c)
	if r.c.Budget > 0 {
		r.c.P.SetDeadline(r.prevDL)
	}
	r.c.FlushCPU()
	r.c.RowsOut = r.n
	if r.err == nil {
		r.err = err
	}
	return err
}

// Count drains the remaining stream, returning the total row count
// (rows already consumed via Next included), and closes the iterator.
func (r *Rows) Count() (int64, error) {
	for {
		_, ok, err := r.Next()
		if err != nil {
			return r.n, err
		}
		if !ok {
			break
		}
	}
	err := r.Close()
	return r.n, err
}
