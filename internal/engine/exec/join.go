package exec

import (
	"fmt"

	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/row"
	"remotedb/internal/engine/tempdb"
)

// HashJoin joins Build ⋈ Probe on equality of the named columns. If the
// build side exceeds the memory grant, both sides are partitioned to
// TempDB (grace hash join) and joined partition by partition — the spill
// the paper's Hash+Sort micro-benchmark (Figure 14) is built around.
type HashJoin struct {
	Build, Probe         Op
	BuildCols, ProbeCols []string
	Partitions           int // grace fan-out (default 8)
	// RemoteProbe changes the spill strategy: instead of partitioning
	// both sides to TempDB and rejoining partition by partition, the
	// build side spills into a bucketed remote hash table
	// (tempdb.HashTable) and the probe side streams through untouched,
	// probing buckets with one-sided reads — the probe side never
	// spills, and build memory stays at one block per bucket.
	RemoteProbe bool

	schema  *row.Schema
	outBuf  []row.Tuple
	outPos  int
	ht      map[string][]row.Tuple
	rtab    *tempdb.HashTable
	probing bool

	// spill state
	spilled     bool
	buildFiles  []*tempdb.SpillFile
	probeFiles  []*tempdb.SpillFile
	curPart     int
	partReader  *tempdb.Reader
	probeSchema *row.Schema
	buildSchema *row.Schema
	probeOrds   []int
	buildOrds   []int
}

// Schema returns build columns followed by probe columns.
func (j *HashJoin) Schema() *row.Schema {
	if j.schema == nil {
		var cols []row.Column
		cols = append(cols, j.Build.Schema().Columns...)
		cols = append(cols, j.Probe.Schema().Columns...)
		// Disambiguate duplicate names across sides (chained joins can
		// carry already-suffixed names, so probe until free).
		seen := make(map[string]bool)
		out := make([]row.Column, len(cols))
		for i, c := range cols {
			name := c.Name
			for n := 1; seen[name]; n++ {
				name = fmt.Sprintf("%s_%d", c.Name, n)
			}
			seen[name] = true
			c.Name = name
			out[i] = c
		}
		j.schema = row.NewSchema(out...)
	}
	return j.schema
}

func keyOf(t row.Tuple, ords []int) string {
	vals := make([]interface{}, len(ords))
	for i, o := range ords {
		vals[i] = t[o]
	}
	return string(row.EncodeKey(nil, vals...))
}

// Open materializes the build side (and spills both sides if needed).
func (j *HashJoin) Open(c *Ctx) error {
	if j.Partitions <= 0 {
		j.Partitions = 8
	}
	// Reset run state so a join instantiated once can be re-opened.
	j.outBuf, j.outPos = nil, 0
	j.probing, j.spilled = false, false
	j.curPart, j.partReader = 0, nil
	j.buildFiles, j.probeFiles = nil, nil
	j.rtab = nil
	j.buildSchema = j.Build.Schema()
	j.probeSchema = j.Probe.Schema()
	j.buildOrds = nil
	for _, col := range j.BuildCols {
		j.buildOrds = append(j.buildOrds, j.buildSchema.MustOrdinal(col))
	}
	j.probeOrds = nil
	for _, col := range j.ProbeCols {
		j.probeOrds = append(j.probeOrds, j.probeSchema.MustOrdinal(col))
	}

	if err := j.Build.Open(c); err != nil {
		return err
	}
	writeBuild := func(t row.Tuple) error {
		img, err := row.Encode(nil, j.buildSchema, t)
		if err != nil {
			return err
		}
		if j.rtab != nil {
			return j.rtab.Put(c.P, partOf(keyOf(t, j.buildOrds), j.rtab.Buckets()), img)
		}
		return j.buildFiles[partOf(keyOf(t, j.buildOrds), j.Partitions)].Append(c.P, img)
	}
	// Phase 1: read the build side, hashing into memory until the grant
	// is exhausted; on cut-over, dump the hash table to partitions and
	// route the rest of the input straight to them (grace hash join).
	j.ht = make(map[string][]row.Tuple)
	var used int64
	for {
		t, ok, err := j.Build.Next(c)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		c.chargeCPU(c.CPU.PerHash)
		if !j.spilled {
			used += int64(row.EncodedSize(j.buildSchema, t)) + 48
			if c.Grant <= 0 || used <= c.Grant {
				k := keyOf(t, j.buildOrds)
				j.ht[k] = append(j.ht[k], t)
				continue
			}
			// Cut over to the grace path (or, with RemoteProbe, to the
			// remote hash table).
			j.spilled = true
			c.SpilledParts++
			if j.RemoteProbe {
				j.rtab = c.Temp.NewHashTable("hj-remote", 0, 0)
			} else {
				j.buildFiles = make([]*tempdb.SpillFile, j.Partitions)
				j.probeFiles = make([]*tempdb.SpillFile, j.Partitions)
				for i := range j.buildFiles {
					j.buildFiles[i] = c.Temp.NewFile(fmt.Sprintf("hj-build-%d", i))
					j.probeFiles[i] = c.Temp.NewFile(fmt.Sprintf("hj-probe-%d", i))
				}
			}
			for _, rows := range j.ht {
				for _, bt := range rows {
					if err := writeBuild(bt); err != nil {
						return err
					}
				}
			}
			j.ht = nil
		}
		if err := writeBuild(t); err != nil {
			return err
		}
	}
	if err := j.Build.Close(c); err != nil {
		return err
	}

	if !j.spilled {
		j.probing = true
		return j.Probe.Open(c)
	}
	if j.rtab != nil {
		// Remote probing: the probe side streams straight through and
		// never touches TempDB.
		if err := j.rtab.Flush(c.P); err != nil {
			return err
		}
		j.probing = true
		return j.Probe.Open(c)
	}
	for _, f := range j.buildFiles {
		if err := f.Flush(c.P); err != nil {
			return err
		}
	}

	// Partition the probe side.
	if err := j.Probe.Open(c); err != nil {
		return err
	}
	for {
		t, ok, err := j.Probe.Next(c)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		img, err := row.Encode(nil, j.probeSchema, t)
		if err != nil {
			return err
		}
		c.chargeCPU(c.CPU.PerHash)
		if err := j.probeFiles[partOf(keyOf(t, j.probeOrds), j.Partitions)].Append(c.P, img); err != nil {
			return err
		}
	}
	if err := j.Probe.Close(c); err != nil {
		return err
	}
	for _, f := range j.probeFiles {
		if err := f.Flush(c.P); err != nil {
			return err
		}
	}
	j.curPart = -1
	return nil
}

func partOf(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return int(h % uint32(n))
}

// Next produces the next joined row.
func (j *HashJoin) Next(c *Ctx) (row.Tuple, bool, error) {
	for {
		if j.outPos < len(j.outBuf) {
			t := j.outBuf[j.outPos]
			j.outPos++
			return t, true, nil
		}
		j.outBuf = j.outBuf[:0]
		j.outPos = 0

		if !j.spilled {
			// In-memory: stream the probe side.
			t, ok, err := j.Probe.Next(c)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				return nil, false, nil
			}
			c.chargeCPU(c.CPU.PerHash)
			for _, b := range j.ht[keyOf(t, j.probeOrds)] {
				j.outBuf = append(j.outBuf, concat(b, t))
			}
			continue
		}

		if j.rtab != nil {
			// Remote: one bucket-chain read per probe row; the bucket
			// bounds the candidates, the exact key filters them.
			t, ok, err := j.Probe.Next(c)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				return nil, false, nil
			}
			key := keyOf(t, j.probeOrds)
			c.chargeCPU(c.CPU.PerHash)
			err = j.rtab.Probe(c.P, partOf(key, j.rtab.Buckets()), func(img []byte) error {
				bt, err := row.Decode(j.buildSchema, img)
				if err != nil {
					return err
				}
				c.chargeCPU(c.CPU.PerRow)
				if keyOf(bt, j.buildOrds) == key {
					j.outBuf = append(j.outBuf, concat(bt, t))
				}
				return nil
			})
			if err != nil {
				return nil, false, err
			}
			continue
		}

		// Grace: stream the current partition's probe file.
		if j.partReader != nil {
			img, ok, err := j.partReader.Next(c.P)
			if err != nil {
				return nil, false, err
			}
			if ok {
				t, err := row.Decode(j.probeSchema, img)
				if err != nil {
					return nil, false, err
				}
				c.chargeCPU(c.CPU.PerHash + c.CPU.PerRow)
				for _, b := range j.ht[keyOf(t, j.probeOrds)] {
					j.outBuf = append(j.outBuf, concat(b, t))
				}
				continue
			}
			j.partReader = nil
		}
		// Advance to the next partition: load its build side.
		j.curPart++
		if j.curPart >= j.Partitions {
			return nil, false, nil
		}
		j.ht = make(map[string][]row.Tuple)
		br := j.buildFiles[j.curPart].NewReader()
		for {
			img, ok, err := br.Next(c.P)
			if err != nil {
				return nil, false, err
			}
			if !ok {
				break
			}
			t, err := row.Decode(j.buildSchema, img)
			if err != nil {
				return nil, false, err
			}
			c.chargeCPU(c.CPU.PerHash + c.CPU.PerRow)
			k := keyOf(t, j.buildOrds)
			j.ht[k] = append(j.ht[k], t)
		}
		j.partReader = j.probeFiles[j.curPart].NewReader()
	}
}

func concat(a, b row.Tuple) row.Tuple {
	out := make(row.Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// Close releases join state (recycling any spill extents).
func (j *HashJoin) Close(c *Ctx) error {
	j.ht = nil
	j.outBuf = nil
	for _, f := range j.buildFiles {
		f.Release()
	}
	for _, f := range j.probeFiles {
		f.Release()
	}
	j.buildFiles, j.probeFiles = nil, nil
	if j.rtab != nil {
		j.rtab.Release()
		j.rtab = nil
		return j.Probe.Close(c)
	}
	if !j.spilled {
		return j.Probe.Close(c)
	}
	return nil
}

// Spilled reports whether the join went through TempDB.
func (j *HashJoin) Spilled() bool { return j.spilled }

// IndexNestedLoopJoin probes an index of the inner table for every outer
// row — the plan whose crossover against HashJoin Figure 15b sweeps.
type IndexNestedLoopJoin struct {
	Outer     Op
	OuterCols []string       // equality columns on the outer side
	Inner     *catalog.Index // index on the inner table over the same columns
	Fetch     bool           // look up full inner rows (vs index-only PK)

	schema    *row.Schema
	outerOrds []int
	buf       []row.Tuple
	pos       int
}

// Schema returns outer columns followed by the inner table's columns.
func (j *IndexNestedLoopJoin) Schema() *row.Schema {
	if j.schema == nil {
		var cols []row.Column
		cols = append(cols, j.Outer.Schema().Columns...)
		seen := make(map[string]bool)
		for _, c := range cols {
			seen[c.Name] = true
		}
		for _, c := range j.Inner.Table.Schema.Columns {
			if seen[c.Name] {
				c.Name = c.Name + "_inner"
			}
			cols = append(cols, c)
		}
		j.schema = row.NewSchema(cols...)
	}
	return j.schema
}

// Open opens the outer side.
func (j *IndexNestedLoopJoin) Open(c *Ctx) error {
	j.outerOrds = nil
	for _, col := range j.OuterCols {
		j.outerOrds = append(j.outerOrds, j.Outer.Schema().MustOrdinal(col))
	}
	return j.Outer.Open(c)
}

// Next produces the next joined row.
func (j *IndexNestedLoopJoin) Next(c *Ctx) (row.Tuple, bool, error) {
	for {
		if j.pos < len(j.buf) {
			t := j.buf[j.pos]
			j.pos++
			return t, true, nil
		}
		j.buf = j.buf[:0]
		j.pos = 0
		outer, ok, err := j.Outer.Next(c)
		if err != nil || !ok {
			return nil, false, err
		}
		vals := make([]interface{}, len(j.outerOrds))
		for i, o := range j.outerOrds {
			vals[i] = outer[o]
		}
		from := row.EncodeKey(nil, vals...)
		to := append(append([]byte(nil), from...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
		pks, err := j.Inner.SeekRange(c.P, from, to, 0)
		if err != nil {
			return nil, false, err
		}
		for _, pk := range pks {
			c.chargeCPU(c.CPU.PerRow)
			inner, err := j.Inner.Table.LookupRow(c.P, pk)
			if err != nil {
				return nil, false, err
			}
			j.buf = append(j.buf, concat(outer, inner))
		}
	}
}

// Close closes the outer side.
func (j *IndexNestedLoopJoin) Close(c *Ctx) error { return j.Outer.Close(c) }
