package exec

import (
	"errors"
	"fmt"

	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/row"
	"remotedb/internal/sim"
)

// PartitionRanges splits the PK range [from, to) of a table into up to
// dop consecutive sub-ranges using the clustered B-tree's root-level
// separators, so parallel workers scan disjoint key ranges. Fewer than
// dop ranges come back when the tree is too small to split that finely.
func PartitionRanges(p *sim.Proc, t *catalog.Table, from, to []byte, dop int) ([][2][]byte, error) {
	seps, err := t.Clustered.SplitPoints(p, dop)
	if err != nil {
		return nil, err
	}
	ranges := [][2][]byte{}
	lo := from
	for _, s := range seps {
		if from != nil && string(s) <= string(from) {
			continue
		}
		if to != nil && string(s) >= string(to) {
			break
		}
		ranges = append(ranges, [2][]byte{lo, s})
		lo = s
	}
	ranges = append(ranges, [2][]byte{lo, to})
	return ranges, nil
}

// xchgBatch is one unit handed from a producer to the consumer.
type xchgBatch []row.Tuple

// xchgPart is the per-producer stream state shared (in simulated time,
// one runnable process at a time) between a worker and the consumer.
type xchgPart struct {
	op    Op
	child *Ctx
	queue []xchgBatch
	done  bool
	err   error
	space *sim.Cond // producer waits here when the queue is full
}

// Exchange runs one producer process per input and merges their streams,
// emitting partitions in input order — so an exchange over consecutive
// PK ranges preserves PK order while the producers' I/O and per-row CPU
// overlap. Back-pressure is a bounded per-partition batch queue: a
// producer that runs ahead of the consumer parks until space frees.
//
// Each row moved through the merge charges CPUProfile.PerXchg on the
// consumer's context; producers charge their own scan/filter CPU on
// their own worker processes (cores).
type Exchange struct {
	Parts []Op
	// QueueBatches bounds each partition's queue (default 4 batches).
	QueueBatches int
	// BatchRows sets the producer batch size (default 128 rows).
	BatchRows int

	parts  []*xchgPart
	cur    int
	batch  xchgBatch
	pos    int
	ready  *sim.Cond // consumer waits here for data
	wg     *sim.WaitGroup
	closed bool
	open   bool
}

// Schema returns the (shared) schema of the partition streams.
func (x *Exchange) Schema() *row.Schema { return x.Parts[0].Schema() }

// Open spawns the producer processes.
func (x *Exchange) Open(c *Ctx) error {
	if len(x.Parts) == 0 {
		return errors.New("exec: exchange with no inputs")
	}
	if x.QueueBatches <= 0 {
		x.QueueBatches = 4
	}
	if x.BatchRows <= 0 {
		x.BatchRows = 128
	}
	k := c.Server.K
	x.ready = sim.NewCond(k)
	x.wg = sim.NewWaitGroup(k)
	x.cur, x.batch, x.pos = 0, nil, 0
	x.closed = false
	x.open = true
	x.parts = make([]*xchgPart, len(x.Parts))
	for i, op := range x.Parts {
		st := &xchgPart{op: op, space: sim.NewCond(k)}
		x.parts[i] = st
		x.wg.Add(1)
		k.Go(fmt.Sprintf("xchg-%d", i), func(wp *sim.Proc) {
			defer x.wg.Done()
			st.child = c.Child(wp)
			x.produce(st)
			x.ready.Broadcast()
		})
	}
	return nil
}

// produce runs one partition to completion (or until the exchange is
// closed under it).
func (x *Exchange) produce(st *xchgPart) {
	c := st.child
	if err := st.op.Open(c); err != nil {
		st.err = err
		st.done = true
		return
	}
	batch := make(xchgBatch, 0, x.BatchRows)
	flush := func() bool {
		for len(st.queue) >= x.QueueBatches && !x.closed {
			st.space.Wait(c.P)
		}
		if x.closed {
			return false
		}
		st.queue = append(st.queue, batch)
		x.ready.Broadcast()
		batch = make(xchgBatch, 0, x.BatchRows)
		return true
	}
	for !x.closed {
		t, ok, err := st.op.Next(c)
		if err != nil {
			st.err = err
			break
		}
		if !ok {
			break
		}
		batch = append(batch, t)
		if len(batch) >= x.BatchRows && !flush() {
			break
		}
	}
	if len(batch) > 0 && st.err == nil {
		flush()
	}
	if err := st.op.Close(c); err != nil && st.err == nil {
		st.err = err
	}
	c.FlushCPU()
	st.done = true
}

// Next returns the next merged row, partitions in order.
func (x *Exchange) Next(c *Ctx) (row.Tuple, bool, error) {
	if !x.open {
		return nil, false, errors.New("exec: exchange not open")
	}
	for {
		if x.pos < len(x.batch) {
			t := x.batch[x.pos]
			x.pos++
			c.chargeCPU(c.CPU.PerXchg)
			return t, true, nil
		}
		if x.cur >= len(x.parts) {
			return nil, false, nil
		}
		st := x.parts[x.cur]
		if len(st.queue) > 0 {
			x.batch = st.queue[0]
			st.queue = st.queue[1:]
			x.pos = 0
			st.space.Signal()
			continue
		}
		if st.err != nil {
			return nil, false, st.err
		}
		if st.done {
			x.cur++
			continue
		}
		x.ready.Wait(c.P)
	}
}

// Close shuts the producers down (waking any parked on a full queue),
// waits for them to exit, and folds their spill counters into the
// consumer's context.
func (x *Exchange) Close(c *Ctx) error {
	if !x.open {
		return nil
	}
	x.open = false
	x.closed = true
	for _, st := range x.parts {
		st.space.Broadcast()
	}
	x.wg.Wait(c.P)
	var err error
	for _, st := range x.parts {
		if st.child != nil {
			c.SpilledRuns += st.child.SpilledRuns
			c.SpilledParts += st.child.SpilledParts
		}
		if err == nil && st.err != nil {
			err = st.err
		}
		st.queue = nil
	}
	x.batch = nil
	return err
}

// ParallelScan reads a table in PK order with DOP range-partitioned
// workers merged through an Exchange. With DOP <= 1, or when the tree is
// too small to split, it degrades to a plain TableScan.
type ParallelScan struct {
	Table *catalog.Table
	From  []byte
	To    []byte
	DOP   int

	inner Op
}

// Schema returns the table's schema.
func (s *ParallelScan) Schema() *row.Schema { return s.Table.Schema }

// Open partitions the key range and spawns the scan workers.
func (s *ParallelScan) Open(c *Ctx) error {
	dop := s.DOP
	if dop <= 0 {
		dop = c.DOP
	}
	if dop > 1 {
		ranges, err := PartitionRanges(c.P, s.Table, s.From, s.To, dop)
		if err != nil {
			return err
		}
		if len(ranges) > 1 {
			parts := make([]Op, len(ranges))
			for i, r := range ranges {
				parts[i] = &TableScan{Table: s.Table, From: r[0], To: r[1]}
			}
			s.inner = &Exchange{Parts: parts}
			return s.inner.Open(c)
		}
	}
	s.inner = &TableScan{Table: s.Table, From: s.From, To: s.To}
	return s.inner.Open(c)
}

// Next returns the next row in PK order.
func (s *ParallelScan) Next(c *Ctx) (row.Tuple, bool, error) { return s.inner.Next(c) }

// Close releases the scan.
func (s *ParallelScan) Close(c *Ctx) error {
	if s.inner == nil {
		return nil
	}
	return s.inner.Close(c)
}

// ParallelAgg computes HashAgg's grouping over pre-partitioned inputs:
// each partition aggregates on its own worker process (partial
// aggregation), and the partial group tables are merged in partition
// order when all workers finish. AVG merges as (sum, count), so the
// result is exactly the serial aggregate; only the group output order
// (first appearance per partition, partitions in order) can differ from
// the serial operator.
type ParallelAgg struct {
	Parts   []Op
	GroupBy []string
	Aggs    []Agg

	schema *row.Schema
	out    []row.Tuple
	pos    int

	// GroupBytes is the summed peak group-table memory across workers.
	GroupBytes int64
}

// Schema returns group columns followed by aggregate columns.
func (a *ParallelAgg) Schema() *row.Schema {
	if a.schema == nil {
		a.schema = aggSchema(a.Parts[0].Schema(), a.GroupBy, a.Aggs)
	}
	return a.schema
}

// Open runs all partitions to completion and merges their partial
// aggregation states.
func (a *ParallelAgg) Open(c *Ctx) error {
	if len(a.Parts) == 0 {
		return errors.New("exec: parallel agg with no inputs")
	}
	k := c.Server.K
	wg := sim.NewWaitGroup(k)
	cores := make([]*aggCore, len(a.Parts))
	errs := make([]error, len(a.Parts))
	for i, op := range a.Parts {
		wg.Add(1)
		k.Go(fmt.Sprintf("pagg-%d", i), func(wp *sim.Proc) {
			defer wg.Done()
			child := c.Child(wp)
			core, err := newAggCore(op.Schema(), a.GroupBy, a.Aggs)
			if err == nil {
				err = core.consume(child, op)
			}
			cores[i], errs[i] = core, err
			child.FlushCPU()
			c.SpilledRuns += child.SpilledRuns
			c.SpilledParts += child.SpilledParts
		})
	}
	wg.Wait(c.P)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	merged := cores[0]
	for _, core := range cores[1:] {
		merged.mergeFrom(core)
		// Merging k groups costs one hash probe each on the consumer.
		c.chargeCPU(c.CPU.PerHash * 1)
	}
	a.out = merged.emit(a.Aggs)
	a.GroupBytes = merged.bytes
	a.pos = 0
	return nil
}

// Next returns the next merged group row.
func (a *ParallelAgg) Next(c *Ctx) (row.Tuple, bool, error) {
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	t := a.out[a.pos]
	a.pos++
	return t, true, nil
}

// Close releases agg state.
func (a *ParallelAgg) Close(c *Ctx) error {
	a.out = nil
	return nil
}
