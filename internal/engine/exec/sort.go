package exec

import (
	"bytes"
	"container/heap"
	"fmt"
	"sort"
	"time"

	"remotedb/internal/engine/row"
	"remotedb/internal/engine/tempdb"
)

// SortSpec orders by the named column, optionally descending.
type SortSpec struct {
	Col  string
	Desc bool
}

// sortKey builds a memcmp-comparable key for the specs (descending
// columns are bit-flipped).
func sortKey(s *row.Schema, specs []SortSpec, t row.Tuple) []byte {
	var key []byte
	for _, sp := range specs {
		seg := row.EncodeKey(nil, t[s.MustOrdinal(sp.Col)])
		if sp.Desc {
			for i := range seg {
				seg[i] = ^seg[i]
			}
		}
		key = append(key, seg...)
	}
	return key
}

// Sort is an external merge sort: rows accumulate until the memory grant
// is exceeded, sorted runs spill to TempDB, and Next merges the runs —
// the second TempDB consumer of the paper's scenario (ii).
type Sort struct {
	In    Op
	Specs []SortSpec

	rows    []row.Tuple
	keys    [][]byte
	pos     int
	runs    []*tempdb.SpillFile
	merge   *mergeState
	schema  *row.Schema
	spilled bool
}

// Schema passes through.
func (s *Sort) Schema() *row.Schema { return s.In.Schema() }

// Spilled reports whether any run went to TempDB.
func (s *Sort) Spilled() bool { return s.spilled }

// Open consumes the whole input, spilling sorted runs as the grant fills.
func (s *Sort) Open(c *Ctx) error {
	s.schema = s.In.Schema()
	// Reset run state so a sort instantiated once can be re-opened.
	s.rows, s.keys, s.pos = nil, nil, 0
	s.runs, s.merge, s.spilled = nil, nil, false
	if err := s.In.Open(c); err != nil {
		return err
	}
	var used int64
	for {
		t, ok, err := s.In.Next(c)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		c.chargeCPU(c.CPU.PerSort)
		s.rows = append(s.rows, t)
		s.keys = append(s.keys, sortKey(s.schema, s.Specs, t))
		used += int64(row.EncodedSize(s.schema, t)) + 64
		if c.Grant > 0 && used > c.Grant {
			if err := s.spillRun(c); err != nil {
				return err
			}
			used = 0
		}
	}
	if err := s.In.Close(c); err != nil {
		return err
	}
	if len(s.runs) == 0 {
		s.sortInMemory(c)
		return nil
	}
	// Spill the final run and set up the merge.
	if len(s.rows) > 0 {
		if err := s.spillRun(c); err != nil {
			return err
		}
	}
	return s.openMerge(c)
}

func (s *Sort) sortInMemory(c *Ctx) {
	idx := make([]int, len(s.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return bytes.Compare(s.keys[idx[a]], s.keys[idx[b]]) < 0
	})
	sorted := make([]row.Tuple, len(s.rows))
	for i, j := range idx {
		sorted[i] = s.rows[j]
	}
	s.rows = sorted
	s.keys = nil
	c.chargeCPU(time.Duration(len(sorted)) * c.CPU.PerSort)
}

// spillRun sorts the in-memory rows and writes them as one run.
func (s *Sort) spillRun(c *Ctx) error {
	s.spilled = true
	c.SpilledRuns++
	idx := make([]int, len(s.rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return bytes.Compare(s.keys[idx[a]], s.keys[idx[b]]) < 0
	})
	c.chargeCPU(time.Duration(len(idx)) * c.CPU.PerSort)
	run := c.Temp.NewFile(fmt.Sprintf("sort-run-%d", len(s.runs)))
	for _, j := range idx {
		img, err := row.Encode(nil, s.schema, s.rows[j])
		if err != nil {
			return err
		}
		// Prefix the sort key so the merge need not recompute it.
		rec := make([]byte, 4+len(s.keys[j])+len(img))
		putU32(rec, uint32(len(s.keys[j])))
		copy(rec[4:], s.keys[j])
		copy(rec[4+len(s.keys[j]):], img)
		if err := run.Append(c.P, rec); err != nil {
			return err
		}
	}
	if err := run.Flush(c.P); err != nil {
		return err
	}
	s.runs = append(s.runs, run)
	s.rows = s.rows[:0]
	s.keys = s.keys[:0]
	return nil
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// mergeState is a k-way merge over spilled runs.
type mergeState struct {
	heads mergeHeap
}

type mergeHead struct {
	key []byte
	img []byte
	r   *tempdb.Reader
	idx int
}

type mergeHeap []*mergeHead

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	cmp := bytes.Compare(h[i].key, h[j].key)
	if cmp != 0 {
		return cmp < 0
	}
	return h[i].idx < h[j].idx
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*mergeHead)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return v
}

func (s *Sort) openMerge(c *Ctx) error {
	s.merge = &mergeState{}
	for i, run := range s.runs {
		r := run.NewReader()
		head, err := nextHead(c, r, i)
		if err != nil {
			return err
		}
		if head != nil {
			s.merge.heads = append(s.merge.heads, head)
		}
	}
	heap.Init(&s.merge.heads)
	return nil
}

func nextHead(c *Ctx, r *tempdb.Reader, idx int) (*mergeHead, error) {
	rec, ok, err := r.Next(c.P)
	if err != nil || !ok {
		return nil, err
	}
	klen := getU32(rec)
	return &mergeHead{
		key: append([]byte(nil), rec[4:4+klen]...),
		img: append([]byte(nil), rec[4+klen:]...),
		r:   r,
		idx: idx,
	}, nil
}

// Next returns rows in sort order.
func (s *Sort) Next(c *Ctx) (row.Tuple, bool, error) {
	if s.merge == nil {
		if s.pos >= len(s.rows) {
			return nil, false, nil
		}
		t := s.rows[s.pos]
		s.pos++
		return t, true, nil
	}
	if s.merge.heads.Len() == 0 {
		return nil, false, nil
	}
	head := heap.Pop(&s.merge.heads).(*mergeHead)
	t, err := row.Decode(s.schema, head.img)
	if err != nil {
		return nil, false, err
	}
	c.chargeCPU(c.CPU.PerSort)
	replacement, err := nextHead(c, head.r, head.idx)
	if err != nil {
		return nil, false, err
	}
	if replacement != nil {
		heap.Push(&s.merge.heads, replacement)
	}
	return t, true, nil
}

// Close releases sort state (recycling any spill extents).
func (s *Sort) Close(c *Ctx) error {
	s.rows = nil
	s.keys = nil
	s.merge = nil
	for _, run := range s.runs {
		run.Release()
	}
	s.runs = nil
	return nil
}

// TopN keeps the N smallest rows under the sort specs using a bounded
// heap when N fits the grant, matching SQL Server's Top N Sort operator;
// when N itself is too large for the grant it degrades to a full
// external Sort + Limit (the paper's Hash+Sort query does exactly this
// with its top 100,000).
type TopN struct {
	In    Op
	Specs []SortSpec
	N     int

	inner Op
}

// Schema passes through.
func (t *TopN) Schema() *row.Schema { return t.In.Schema() }

// Open picks the strategy and materializes.
func (t *TopN) Open(c *Ctx) error {
	// Estimate whether N rows fit the grant using a 256-byte row guess;
	// the executor does not track per-table averages.
	if c.Grant > 0 && int64(t.N)*256 > c.Grant {
		// Degraded path: a full external sort. Like SQL Server's Top N
		// Sort for large N, the whole input is sorted (all runs written
		// and merged) and the limit applies to the output.
		s := &Sort{In: t.In, Specs: t.Specs}
		if err := s.Open(c); err != nil {
			return err
		}
		kept := make([]row.Tuple, 0, t.N)
		for {
			tuple, ok, err := s.Next(c)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if len(kept) < t.N {
				kept = append(kept, tuple)
			}
		}
		if err := s.Close(c); err != nil {
			return err
		}
		t.inner = &Values{Rows: kept, Sch: t.In.Schema()}
		return t.inner.Open(c)
	}
	t.inner = nil
	// Bounded-heap path.
	s := t.In.Schema()
	if err := t.In.Open(c); err != nil {
		return err
	}
	var top topHeap
	for {
		tuple, ok, err := t.In.Next(c)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		c.chargeCPU(c.CPU.PerSort)
		key := sortKey(s, t.Specs, tuple)
		if top.Len() < t.N {
			heap.Push(&top, topEntry{key: key, t: tuple})
		} else if bytes.Compare(key, top[0].key) < 0 {
			top[0] = topEntry{key: key, t: tuple}
			heap.Fix(&top, 0)
		}
	}
	if err := t.In.Close(c); err != nil {
		return err
	}
	entries := make([]topEntry, top.Len())
	for i := len(entries) - 1; i >= 0; i-- {
		entries[i] = heap.Pop(&top).(topEntry)
	}
	rows := make([]row.Tuple, len(entries))
	for i, e := range entries {
		rows[i] = e.t
	}
	t.inner = &Values{Rows: rows, Sch: s}
	return t.inner.Open(c)
}

type topEntry struct {
	key []byte
	t   row.Tuple
}

// topHeap is a max-heap on key (so the root is the worst of the top N).
type topHeap []topEntry

func (h topHeap) Len() int            { return len(h) }
func (h topHeap) Less(i, j int) bool  { return bytes.Compare(h[i].key, h[j].key) > 0 }
func (h topHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *topHeap) Push(x interface{}) { *h = append(*h, x.(topEntry)) }
func (h *topHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Next delegates to the chosen strategy.
func (t *TopN) Next(c *Ctx) (row.Tuple, bool, error) { return t.inner.Next(c) }

// Close delegates.
func (t *TopN) Close(c *Ctx) error {
	if t.inner != nil {
		return t.inner.Close(c)
	}
	return nil
}
