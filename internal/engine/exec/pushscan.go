// PushScan: the executor surface of donor-side operator pushdown. The
// operator scans a table's pushable remote segment instead of its
// clustered B-tree, either evaluating the predicate at the donors
// (only qualifying bytes cross the wire) or fetching the segment whole
// and running the *same* evaluator client-side — the two placements
// the optimizer chooses between. Partitions of the segment run on
// worker processes, so pushed evaluation at different donors and the
// returning transfers overlap like a ParallelScan's partitions do.
package exec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"

	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/row"
	"remotedb/internal/fault"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// pushRecLen is the length-prefix width of pushable-log records
// (rmem's documented framing; results parse with rmem.PushRecords).
const pushRecLen = 4

// PushScan scans a table's pushable segment with a pushed predicate
// and optional projection. With FetchAll it ships each partition whole
// and evaluates client-side; otherwise evaluation happens at the
// donors, degrading per partition to fetch-all when pushdown is
// unavailable (encrypted payloads, SMB transport, unframed files) and
// to an ordinary table scan when the table has no segment at all —
// never an engine-visible error beyond what a plain read would see.
type PushScan struct {
	Table    *catalog.Table
	Query    *rmem.PushQuery
	FetchAll bool
	DOP      int // partitions evaluated concurrently (0 = ctx DOP)

	// Fallbacks counts partitions that degraded from donor evaluation
	// to fetch-all.
	Fallbacks int64

	schema *row.Schema
	logs   [][]byte
	cur    int
	rest   []byte
	inner  Op // degraded whole-table path (no segment)
	open   bool
}

// Schema returns the projected schema (the table's schema when the
// query projects nothing away).
func (s *PushScan) Schema() *row.Schema {
	if s.schema == nil {
		if s.Query.Proj == nil {
			s.schema = s.Table.Schema
		} else {
			cols := make([]row.Column, len(s.Query.Proj))
			for i, ord := range s.Query.Proj {
				cols[i] = s.Table.Schema.Columns[ord]
			}
			s.schema = row.NewSchema(cols...)
		}
	}
	return s.schema
}

// Open evaluates every segment partition (concurrently when DOP > 1)
// and stages the matched-record logs for iteration.
func (s *PushScan) Open(c *Ctx) error {
	s.cur, s.rest, s.logs, s.inner = 0, nil, nil, nil
	seg := s.Table.Push
	if seg == nil {
		// The segment was dropped after planning: degrade to the
		// ordinary scan with the same predicate applied client-side.
		var op Op = &TableScan{Table: s.Table}
		if len(s.Query.Preds) > 0 {
			op = &Filter{In: op, Pred: pushPred(s.Query.Preds)}
		}
		if s.Query.Proj != nil {
			cols := make([]string, len(s.Query.Proj))
			for i, ord := range s.Query.Proj {
				cols[i] = s.Table.Schema.Columns[ord].Name
			}
			op = &Project{In: op, Cols: cols}
		}
		s.inner = op
		s.open = true
		return s.inner.Open(c)
	}
	dop := s.DOP
	if dop <= 0 {
		dop = c.DOP
	}
	if dop < 1 {
		dop = 1
	}
	parts := seg.Partition(dop)
	s.logs = make([][]byte, len(parts))
	s.open = true
	if len(parts) <= 1 {
		if len(parts) == 0 {
			return nil
		}
		out, err := s.runPart(c, seg, parts[0])
		s.logs[0] = out
		return err
	}
	k := c.Server.K
	wg := sim.NewWaitGroup(k)
	errs := make([]error, len(parts))
	for i, rg := range parts {
		wg.Add(1)
		k.Go(fmt.Sprintf("push-%d", i), func(wp *sim.Proc) {
			defer wg.Done()
			child := c.Child(wp)
			s.logs[i], errs[i] = s.runPart(child, seg, rg)
			child.FlushCPU()
		})
	}
	wg.Wait(c.P)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runPart evaluates one chunk-aligned byte range of the segment,
// returning its matched-record log.
func (s *PushScan) runPart(c *Ctx, seg *catalog.PushSegment, rg [2]int64) ([]byte, error) {
	off, n := rg[0], rg[1]-rg[0]
	if n <= 0 {
		return nil, nil
	}
	if !s.FetchAll {
		out, _, err := seg.File.PushRead(c.P, off, n, s.Query)
		if err == nil {
			return out, nil
		}
		if !errors.Is(err, fault.ErrUnavailable) {
			return nil, err
		}
		s.Fallbacks++
	}
	buf := make([]byte, n)
	// Prefer the vectored read: one doorbell-batched transfer per
	// destination server instead of a round trip per block, so the
	// fetch-all arm is wire-bound the way the cost model prices it.
	if vf, ok := seg.File.(vfs.VectorFile); ok {
		if err := vf.ReadAtV(c.P, []vfs.Vec{{Off: off, Buf: buf}}); err != nil {
			return nil, err
		}
	} else if err := seg.File.ReadAt(c.P, buf, off); err != nil {
		return nil, err
	}
	// Chunks are self-contained (padding ends each one), so client-side
	// evaluation walks them one at a time with the donors' evaluator.
	chunk := int64(seg.Chunk)
	if chunk <= 0 {
		chunk = n
	}
	var out []byte
	rows, matched := 0, 0
	for o := int64(0); o < n; o += chunk {
		end := o + chunk
		if end > n {
			end = n
		}
		res, r, m, err := rmem.EvalPush(buf[o:end], s.Query, out)
		if err != nil {
			return nil, err
		}
		out = res
		rows += r
		matched += m
	}
	// Every scanned row is decoded exactly once: non-matching rows here,
	// matching rows when Next surfaces them — so a fetch-all scan totals
	// rows x PerRow, matching the optimizer's CostFetchAll.
	c.chargeCPU(time.Duration(rows-matched) * c.CPU.PerRow)
	return out, nil
}

// Next decodes the next matched row, partitions in segment order (PK
// order, since the segment mirrors the clustered tree).
func (s *PushScan) Next(c *Ctx) (row.Tuple, bool, error) {
	if !s.open {
		return nil, false, errors.New("exec: push scan not open")
	}
	if s.inner != nil {
		return s.inner.Next(c)
	}
	for {
		if len(s.rest) >= pushRecLen {
			n := int(binary.LittleEndian.Uint32(s.rest))
			rec := s.rest[pushRecLen : pushRecLen+n]
			s.rest = s.rest[pushRecLen+n:]
			t, err := row.Decode(s.Schema(), rec)
			if err != nil {
				return nil, false, err
			}
			c.chargeCPU(c.CPU.PerRow)
			return t, true, nil
		}
		if s.cur >= len(s.logs) {
			return nil, false, nil
		}
		s.rest = s.logs[s.cur]
		s.cur++
	}
}

// Close releases the staged logs.
func (s *PushScan) Close(c *Ctx) error {
	s.open = false
	s.logs, s.rest = nil, nil
	if s.inner != nil {
		return s.inner.Close(c)
	}
	return nil
}

// pushPred compiles pushed predicate leaves into a client-side tuple
// predicate for the degraded whole-table path.
func pushPred(leaves []rmem.PushLeaf) func(row.Tuple) bool {
	return func(t row.Tuple) bool {
		for _, l := range leaves {
			if !leafHolds(t[l.Col], l) {
				return false
			}
		}
		return true
	}
}

func leafHolds(v interface{}, l rmem.PushLeaf) bool {
	var cmp int
	switch x := v.(type) {
	case int64:
		switch {
		case x < l.Int:
			cmp = -1
		case x > l.Int:
			cmp = 1
		}
	case float64:
		switch {
		case x < l.Float:
			cmp = -1
		case x > l.Float:
			cmp = 1
		}
	case string:
		cmp = strings.Compare(x, string(l.Bytes))
	case []byte:
		cmp = bytes.Compare(x, l.Bytes)
	}
	switch l.Op {
	case rmem.PushEQ:
		return cmp == 0
	case rmem.PushNE:
		return cmp != 0
	case rmem.PushLT:
		return cmp < 0
	case rmem.PushLE:
		return cmp <= 0
	case rmem.PushGT:
		return cmp > 0
	default:
		return cmp >= 0
	}
}
