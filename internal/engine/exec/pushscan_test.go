package exec

import (
	"fmt"
	"testing"

	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/row"
	"remotedb/internal/engine/tempdb"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// fakePushFile is an in-memory pushable segment store: PushRead runs
// the real evaluator chunk by chunk (as a donor would), ReadAt serves
// the raw log. pushErr simulates pushdown being unavailable.
type fakePushFile struct {
	data    []byte
	chunk   int
	pushErr error
	pushes  int
	fetches int
}

func (f *fakePushFile) PushChunk() int { return f.chunk }

func (f *fakePushFile) ReadAt(p *sim.Proc, b []byte, off int64) error {
	f.fetches++
	copy(b, f.data[off:off+int64(len(b))])
	return nil
}

func (f *fakePushFile) PushRead(p *sim.Proc, off, n int64, q *rmem.PushQuery) ([]byte, rmem.PushStats, error) {
	var stats rmem.PushStats
	if f.pushErr != nil {
		return nil, stats, f.pushErr
	}
	f.pushes++
	var out []byte
	for o := off; o < off+n; o += int64(f.chunk) {
		end := o + int64(f.chunk)
		if end > off+n {
			end = off + n
		}
		res, rows, matched, err := rmem.EvalPush(f.data[o:end], q, out)
		if err != nil {
			return nil, stats, err
		}
		out = res
		stats.RowsScanned += int64(rows)
		stats.RowsMatched += int64(matched)
	}
	stats.BytesScanned = n
	stats.BytesReturned = int64(len(out))
	return out, stats, nil
}

// attachSegment mirrors the table's rows (given in PK order) into a
// fake pushable segment.
func attachSegment(t *testing.T, tbl *catalog.Table, rows []row.Tuple, chunk int) *fakePushFile {
	t.Helper()
	var seg []byte
	for _, r := range rows {
		img, err := row.Encode(nil, tbl.Schema, r)
		if err != nil {
			t.Fatal(err)
		}
		seg = rmem.AppendPushRecord(seg, img, chunk)
	}
	seg = rmem.PadPushChunk(seg, chunk)
	f := &fakePushFile{data: seg, chunk: chunk}
	tbl.SetPushSegment(&catalog.PushSegment{File: f, Rows: int64(len(rows)), Bytes: int64(len(seg)), Chunk: chunk})
	return f
}

func ordersRows(n int) []row.Tuple {
	var rows []row.Tuple
	for i := 0; i < n; i++ {
		rows = append(rows, row.Tuple{int64(i), int64(i % 100), float64(i)})
	}
	return rows
}

func custLT(n int64) *rmem.PushQuery {
	return &rmem.PushQuery{
		Cols:  []rmem.FieldKind{rmem.FieldInt64, rmem.FieldInt64, rmem.FieldFloat64},
		Preds: []rmem.PushLeaf{{Col: 1, Op: rmem.PushLT, Int: n}},
	}
}

func TestPushScanMatchesFilteredTableScan(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 1000)
		attachSegment(t, orders, ordersRows(1000), 4096)
		want, err := Collect(r.ctx, &Filter{
			In:   &TableScan{Table: orders},
			Pred: func(tp row.Tuple) bool { return tp[1].(int64) < 10 },
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(r.ctx, &PushScan{Table: orders, Query: custLT(10)})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("push scan rows=%d, table scan rows=%d", len(got), len(want))
		}
		for i := range want {
			if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
				t.Fatalf("row %d: got %v want %v", i, got[i], want[i])
			}
		}
	})
}

func TestPushScanProjection(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 200)
		attachSegment(t, orders, ordersRows(200), 4096)
		q := custLT(5)
		q.Proj = []int{0, 2}
		s := &PushScan{Table: orders, Query: q}
		if got := s.Schema().Columns[1].Name; got != "total" {
			t.Fatalf("projected schema col = %q, want total", got)
		}
		rows, err := Collect(r.ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range rows {
			if len(tp) != 2 {
				t.Fatalf("projected arity %d, want 2", len(tp))
			}
		}
		if len(rows) != 10 {
			t.Fatalf("rows=%d, want 10", len(rows))
		}
	})
}

func TestPushScanParallelPartitionsPreserveOrder(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 2000)
		f := attachSegment(t, orders, ordersRows(2000), 512)
		s := &PushScan{Table: orders, Query: custLT(100), DOP: 4}
		rows, err := Collect(r.ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2000 {
			t.Fatalf("rows=%d, want all 2000", len(rows))
		}
		for i, tp := range rows {
			if tp[0].(int64) != int64(i) {
				t.Fatalf("row %d has orderkey %d: partition merge broke PK order", i, tp[0])
			}
		}
		if f.pushes != 4 {
			t.Errorf("pushes=%d, want one per partition (4)", f.pushes)
		}
	})
}

func TestPushScanFallsBackToFetchAll(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 500)
		f := attachSegment(t, orders, ordersRows(500), 4096)
		f.pushErr = rmem.ErrPushUnavailable
		s := &PushScan{Table: orders, Query: custLT(10)}
		rows, err := Collect(r.ctx, s)
		if err != nil {
			t.Fatalf("fallback surfaced an error: %v", err)
		}
		if len(rows) != 50 {
			t.Fatalf("rows=%d, want 50", len(rows))
		}
		if s.Fallbacks == 0 || f.fetches == 0 {
			t.Errorf("fallbacks=%d fetches=%d, want the fetch-all path", s.Fallbacks, f.fetches)
		}
	})
}

func TestPushScanWithoutSegmentDegradesToTableScan(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 300)
		q := custLT(7)
		q.Proj = []int{1}
		rows, err := Collect(r.ctx, &PushScan{Table: orders, Query: q})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 21 {
			t.Fatalf("rows=%d, want 21", len(rows))
		}
		for _, tp := range rows {
			if len(tp) != 1 || tp[0].(int64) >= 7 {
				t.Fatalf("degraded path returned %v", tp)
			}
		}
	})
}

func TestHashJoinRemoteProbeMatchesGrace(t *testing.T) {
	run := func(remote bool) ([]row.Tuple, error) {
		var rows []row.Tuple
		var err error
		withRig(t, func(p *sim.Proc, r *rigT) {
			orders, items := loadJoinTables(t, p, r, 800)
			r.ctx.Grant = 16 << 10 // force the spill
			r.ctx.Temp = tempdb.New(vfs.NewMemFile("td"))
			j := &HashJoin{
				Build: &TableScan{Table: orders}, Probe: &TableScan{Table: items},
				BuildCols: []string{"orderkey"}, ProbeCols: []string{"orderkey"},
				RemoteProbe: remote,
			}
			rows, err = Collect(r.ctx, j)
			if err != nil {
				return
			}
			if !j.Spilled() {
				t.Error("join did not spill; the comparison is vacuous")
			}
			// Under remote probing the probe side must never be
			// partitioned to TempDB.
			if remote && j.probeFiles != nil {
				t.Error("remote probe partitioned the probe side")
			}
		})
		return rows, err
	}
	got, err := run(true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 2400 {
		t.Fatalf("remote=%d grace=%d rows, want 2400", len(got), len(want))
	}
	key := func(tp row.Tuple) string { return fmt.Sprint(tp) }
	seen := make(map[string]int)
	for _, tp := range want {
		seen[key(tp)]++
	}
	for _, tp := range got {
		if seen[key(tp)] == 0 {
			t.Fatalf("remote probe invented row %v", tp)
		}
		seen[key(tp)]--
	}
}
