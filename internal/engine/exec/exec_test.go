package exec

import (
	"sort"
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/row"
	"remotedb/internal/engine/tempdb"
	"remotedb/internal/hw/disk"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// rig builds a catalog + ctx on a null device (no I/O time) with a large
// grant by default.
type rigT struct {
	c   *catalog.Catalog
	ctx *Ctx
}

func withRig(t *testing.T, fn func(p *sim.Proc, r *rigT)) {
	t.Helper()
	k := sim.New(1)
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	s := cluster.NewServer(k, "db", cfg)
	k.Go("t", func(p *sim.Proc) {
		data := vfs.NewDeviceFile("data", disk.NullDevice{DeviceName: "null"})
		bcfg := buffer.DefaultConfig(8192)
		bcfg.WriterPeriod = 0
		bcfg.PageAccessCPU = 0
		bp, err := buffer.New(p, s, data, bcfg)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := &Ctx{
			P:      p,
			Server: s,
			Temp:   tempdb.New(vfs.NewMemFile("tempdb")),
			Grant:  1 << 30,
			CPU:    DefaultCPUProfile(),
		}
		fn(p, &rigT{c: catalog.New(bp), ctx: ctx})
	})
	k.Run(10 * time.Minute)
}

func ordersSchema() *row.Schema {
	return row.NewSchema(
		row.Column{Name: "orderkey", Type: row.Int64},
		row.Column{Name: "custkey", Type: row.Int64},
		row.Column{Name: "total", Type: row.Float64},
	)
}

func itemsSchema() *row.Schema {
	return row.NewSchema(
		row.Column{Name: "orderkey", Type: row.Int64},
		row.Column{Name: "linenum", Type: row.Int64},
		row.Column{Name: "price", Type: row.Float64},
	)
}

// loadJoinTables creates orders (n rows) and lineitem (3 per order).
func loadJoinTables(t *testing.T, p *sim.Proc, r *rigT, n int) (*catalog.Table, *catalog.Table) {
	t.Helper()
	orders, err := r.c.CreateTable(p, "orders", ordersSchema(), "orderkey")
	if err != nil {
		t.Fatal(err)
	}
	items, err := r.c.CreateTable(p, "lineitem", itemsSchema(), "orderkey", "linenum")
	if err != nil {
		t.Fatal(err)
	}
	var orows, irows []row.Tuple
	for i := 0; i < n; i++ {
		orows = append(orows, row.Tuple{int64(i), int64(i % 100), float64(i)})
		for l := 0; l < 3; l++ {
			irows = append(irows, row.Tuple{int64(i), int64(l), float64(i*10 + l)})
		}
	}
	if err := orders.BulkLoad(p, orows); err != nil {
		t.Fatal(err)
	}
	if err := items.BulkLoad(p, irows); err != nil {
		t.Fatal(err)
	}
	return orders, items
}

func TestTableScanAndFilter(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 100)
		scan := &TableScan{Table: orders}
		n, err := Run(r.ctx, scan)
		if err != nil || n != 100 {
			t.Errorf("scan n=%d err=%v", n, err)
		}
		f := &Filter{In: &TableScan{Table: orders}, Pred: func(tp row.Tuple) bool {
			return tp[1].(int64) == 7
		}}
		rows, err := Collect(r.ctx, f)
		if err != nil || len(rows) != 1 {
			t.Errorf("filter rows=%d err=%v", len(rows), err)
		}
	})
}

func TestScanBounds(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 100)
		scan := &TableScan{
			Table: orders,
			From:  row.EncodeKey(nil, int64(10)),
			To:    row.EncodeKey(nil, int64(20)),
		}
		rows, err := Collect(r.ctx, scan)
		if err != nil || len(rows) != 10 {
			t.Errorf("bounded scan rows=%d err=%v", len(rows), err)
		}
	})
}

func TestProjectAndLimit(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 50)
		op := &Limit{
			In: &Project{In: &TableScan{Table: orders}, Cols: []string{"total", "orderkey"}},
			N:  5,
		}
		rows, err := Collect(r.ctx, op)
		if err != nil || len(rows) != 5 {
			t.Errorf("rows=%d err=%v", len(rows), err)
			return
		}
		if len(rows[0]) != 2 {
			t.Errorf("projected arity = %d", len(rows[0]))
		}
		if _, ok := rows[0][0].(float64); !ok {
			t.Errorf("column order wrong: %T", rows[0][0])
		}
	})
}

func TestHashJoinInMemory(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, items := loadJoinTables(t, p, r, 200)
		j := &HashJoin{
			Build:     &TableScan{Table: orders},
			Probe:     &TableScan{Table: items},
			BuildCols: []string{"orderkey"},
			ProbeCols: []string{"orderkey"},
		}
		n, err := Run(r.ctx, j)
		if err != nil || n != 600 {
			t.Errorf("join n=%d err=%v", n, err)
		}
		if j.Spilled() {
			t.Error("join should not spill with a large grant")
		}
	})
}

func TestHashJoinGraceSpill(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, items := loadJoinTables(t, p, r, 500)
		r.ctx.Grant = 4 << 10 // tiny grant forces the grace path
		j := &HashJoin{
			Build:     &TableScan{Table: orders},
			Probe:     &TableScan{Table: items},
			BuildCols: []string{"orderkey"},
			ProbeCols: []string{"orderkey"},
		}
		n, err := Run(r.ctx, j)
		if err != nil || n != 1500 {
			t.Errorf("grace join n=%d err=%v", n, err)
		}
		if !j.Spilled() {
			t.Error("join should have spilled")
		}
		if r.ctx.Temp.BytesSpilled == 0 {
			t.Error("no bytes reached TempDB")
		}
	})
}

func TestHashJoinResultParity(t *testing.T) {
	// The spilled and in-memory paths must produce the same multiset.
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, items := loadJoinTables(t, p, r, 300)
		run := func(grant int64) []string {
			r.ctx.Grant = grant
			j := &HashJoin{
				Build:     &TableScan{Table: orders},
				Probe:     &TableScan{Table: items},
				BuildCols: []string{"orderkey"},
				ProbeCols: []string{"orderkey"},
			}
			rows, err := Collect(r.ctx, j)
			if err != nil {
				t.Fatal(err)
			}
			keys := make([]string, len(rows))
			for i, tp := range rows {
				keys[i] = string(row.EncodeKey(nil, tp[0], tp[3], tp[4]))
			}
			sort.Strings(keys)
			return keys
		}
		mem := run(1 << 30)
		spill := run(2 << 10)
		if len(mem) != len(spill) {
			t.Fatalf("parity: %d vs %d rows", len(mem), len(spill))
		}
		for i := range mem {
			if mem[i] != spill[i] {
				t.Fatalf("parity mismatch at %d", i)
			}
		}
	})
}

func TestIndexNestedLoopJoin(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 200)
		_ = orders
		idx, err := r.c.CreateIndex(p, "ix_item_order", "lineitem", "orderkey")
		if err != nil {
			t.Fatal(err)
		}
		j := &IndexNestedLoopJoin{
			Outer:     &TableScan{Table: orders, From: row.EncodeKey(nil, int64(0)), To: row.EncodeKey(nil, int64(10))},
			OuterCols: []string{"orderkey"},
			Inner:     idx,
		}
		n, err := Run(r.ctx, j)
		if err != nil || n != 30 {
			t.Errorf("inlj n=%d err=%v", n, err)
		}
	})
}

func TestSortInMemoryAndSpilled(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 500)
		check := func(grant int64, wantSpill bool) {
			r.ctx.Grant = grant
			s := &Sort{In: &TableScan{Table: orders}, Specs: []SortSpec{{Col: "total", Desc: true}}}
			rows, err := Collect(r.ctx, s)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 500 {
				t.Fatalf("sorted %d rows", len(rows))
			}
			for i := 1; i < len(rows); i++ {
				if rows[i-1][2].(float64) < rows[i][2].(float64) {
					t.Fatalf("not descending at %d", i)
				}
			}
			if s.Spilled() != wantSpill {
				t.Fatalf("spilled = %v, want %v (grant %d)", s.Spilled(), wantSpill, grant)
			}
		}
		check(1<<30, false)
		check(8<<10, true)
	})
}

func TestSortStableAcrossSpill(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 400)
		get := func(grant int64) []int64 {
			r.ctx.Grant = grant
			s := &Sort{In: &TableScan{Table: orders}, Specs: []SortSpec{{Col: "custkey"}, {Col: "orderkey"}}}
			rows, err := Collect(r.ctx, s)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]int64, len(rows))
			for i, tp := range rows {
				out[i] = tp[0].(int64)
			}
			return out
		}
		mem := get(1 << 30)
		spill := get(4 << 10)
		for i := range mem {
			if mem[i] != spill[i] {
				t.Fatalf("order differs at %d: %d vs %d", i, mem[i], spill[i])
			}
		}
	})
}

func TestTopNHeapAndSpillPaths(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 1000)
		// Heap path: small N.
		top := &TopN{In: &TableScan{Table: orders}, Specs: []SortSpec{{Col: "total", Desc: true}}, N: 10}
		rows, err := Collect(r.ctx, top)
		if err != nil || len(rows) != 10 {
			t.Fatalf("topn rows=%d err=%v", len(rows), err)
		}
		if rows[0][2].(float64) != 999 {
			t.Errorf("top row = %v", rows[0])
		}
		// Degraded path: N too big for the grant -> external sort.
		r.ctx.Grant = 16 << 10
		top2 := &TopN{In: &TableScan{Table: orders}, Specs: []SortSpec{{Col: "total"}}, N: 900}
		rows2, err := Collect(r.ctx, top2)
		if err != nil || len(rows2) != 900 {
			t.Fatalf("big topn rows=%d err=%v", len(rows2), err)
		}
		if rows2[0][2].(float64) != 0 {
			t.Errorf("ascending top row = %v", rows2[0])
		}
		if r.ctx.SpilledRuns == 0 {
			t.Error("big topn should have spilled sort runs")
		}
	})
}

func TestHashAgg(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 1000)
		agg := &HashAgg{
			In:      &TableScan{Table: orders},
			GroupBy: []string{"custkey"},
			Aggs: []Agg{
				{Fn: AggCount, As: "cnt"},
				{Fn: AggSum, Col: "total", As: "sum_total"},
				{Fn: AggMin, Col: "total", As: "min_total"},
				{Fn: AggMax, Col: "total", As: "max_total"},
				{Fn: AggAvg, Col: "total", As: "avg_total"},
			},
		}
		rows, err := Collect(r.ctx, agg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 100 {
			t.Fatalf("groups = %d", len(rows))
		}
		// custkey 0: orders 0,100,...,900 -> count 10, min 0, max 900.
		for _, tp := range rows {
			if tp[0].(int64) == 0 {
				if tp[1].(int64) != 10 || tp[3].(float64) != 0 || tp[4].(float64) != 900 {
					t.Errorf("group 0 aggregates wrong: %v", tp)
				}
				if tp[5].(float64) != 450 {
					t.Errorf("avg = %v", tp[5])
				}
			}
		}
	})
}

func TestAggregateSchemaNames(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 10)
		agg := &HashAgg{
			In:      &TableScan{Table: orders},
			GroupBy: []string{"custkey"},
			Aggs:    []Agg{{Fn: AggSum, Col: "total", As: "s"}},
		}
		s := agg.Schema()
		if s.Ordinal("custkey") != 0 || s.Ordinal("s") != 1 {
			t.Errorf("schema = %v", s.Columns)
		}
	})
}

func TestCPUChargedToServer(t *testing.T) {
	k := sim.New(1)
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	s := cluster.NewServer(k, "db", cfg)
	var elapsed time.Duration
	k.Go("t", func(p *sim.Proc) {
		data := vfs.NewDeviceFile("data", disk.NullDevice{DeviceName: "null"})
		bcfg := buffer.DefaultConfig(4096)
		bcfg.WriterPeriod = 0
		bcfg.PageAccessCPU = 0
		bp, _ := buffer.New(p, s, data, bcfg)
		cat := catalog.New(bp)
		tbl, _ := cat.CreateTable(p, "t", ordersSchema(), "orderkey")
		var rows []row.Tuple
		for i := 0; i < 10000; i++ {
			rows = append(rows, row.Tuple{int64(i), int64(i), float64(i)})
		}
		tbl.BulkLoad(p, rows)
		ctx := &Ctx{P: p, Server: s, Temp: tempdb.New(vfs.NewMemFile("td")), Grant: 1 << 30, CPU: DefaultCPUProfile()}
		start := p.Now()
		Run(ctx, &TableScan{Table: tbl})
		elapsed = p.Now() - start
	})
	k.Run(10 * time.Minute)
	// 10000 rows at 50ns each = 0.5ms of CPU minimum.
	if elapsed < 500*time.Microsecond {
		t.Fatalf("scan charged only %v of virtual time", elapsed)
	}
}
