// Package exec implements the engine's Volcano-style query executor:
// scans, filters, projections, hash and index-nested-loop joins, external
// sort, top-N and hash aggregation. Operators run under a per-query
// memory grant (the admission-control behaviour behind the paper's
// Q10/Q18 anecdote) and spill to TempDB when they exceed it — which is
// exactly the I/O the paper's scenario (ii) moves to remote memory.
package exec

import (
	"errors"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/row"
	"remotedb/internal/engine/tempdb"
	"remotedb/internal/sim"
)

// CPUProfile holds the executor's per-row CPU costs. They are the knobs
// that put the CPU/I-O crossover where the paper reports it (Figure 11b:
// RangeScan on remote memory is CPU-bound; Figure 14c: Hash+Sort phase 1
// is CPU-bound at ~400 MB/s).
type CPUProfile struct {
	PerRow  time.Duration // decode + evaluate one row
	PerHash time.Duration // hash/probe one row
	PerSort time.Duration // comparison-sort share per row
	PerXchg time.Duration // move one row through an exchange merge
}

// DefaultCPUProfile matches the calibration in internal/exp.
func DefaultCPUProfile() CPUProfile {
	return CPUProfile{
		PerRow:  50 * time.Nanosecond,
		PerHash: 30 * time.Nanosecond,
		PerSort: 60 * time.Nanosecond,
		PerXchg: 20 * time.Nanosecond,
	}
}

// Ctx carries the per-query execution environment.
type Ctx struct {
	P      *sim.Proc
	Server *cluster.Server
	Temp   *tempdb.TempDB
	Grant  int64 // memory-grant bytes for spilling operators
	CPU    CPUProfile
	DOP    int // degree of intra-query parallelism (0/1 = serial)

	// Budget is the per-query deadline budget for remote-memory I/O:
	// Open stamps Now+Budget as the proc's deadline for the life of the
	// query, and every rmem transfer issued beneath it (buffer-pool
	// extension faults, pushdown reads) is abandoned with fault.ErrSlow
	// once that deadline passes — the access falls back to the local
	// tier instead of riding a slow donor. 0 = no budget.
	Budget time.Duration

	cpuDebt time.Duration

	RowsOut      int64
	SpilledRuns  int64
	SpilledParts int64
}

// chargeCPU accrues per-row CPU and pays it to the server's cores in
// batches, so the simulator is not invoked for every row.
func (c *Ctx) chargeCPU(d time.Duration) {
	c.cpuDebt += d
	if c.cpuDebt >= 200*time.Microsecond {
		c.payCPU()
	}
}

func (c *Ctx) payCPU() {
	d := c.cpuDebt
	c.cpuDebt = 0
	if c.DOP > 1 {
		c.Server.WorkParallel(c.P, d, c.DOP)
	} else {
		c.Server.Work(c.P, d)
	}
}

// FlushCPU pays any remaining accrued CPU; called by Run and Close paths.
func (c *Ctx) FlushCPU() {
	if c.cpuDebt > 0 {
		c.payCPU()
	}
}

// ChargeCPU accrues CPU from engine layers outside the operators (the
// planner's optimization time, catalog work) into the same batched debt.
func (c *Ctx) ChargeCPU(d time.Duration) { c.chargeCPU(d) }

// Child derives a context for a worker process spawned inside this
// query (an exchange producer): same server, TempDB, grant and CPU
// profile, but the worker's own proc and its own CPU-debt batch, so
// each worker's CPU lands on its own simulated core.
func (c *Ctx) Child(p *sim.Proc) *Ctx {
	// Workers inherit the query's absolute deadline (not a fresh
	// budget): a parallel scan's remote reads race the same clock as
	// the query that spawned them.
	if dl := c.P.Deadline(); dl > 0 {
		p.SetDeadline(dl)
	}
	return &Ctx{
		P:      p,
		Server: c.Server,
		Temp:   c.Temp,
		Grant:  c.Grant,
		CPU:    c.CPU,
		DOP:    1,
		Budget: c.Budget,
	}
}

// Op is a Volcano operator.
type Op interface {
	Open(c *Ctx) error
	Next(c *Ctx) (row.Tuple, bool, error)
	Close(c *Ctx) error
	Schema() *row.Schema
}

// Run drains an operator tree, returning the row count (convenience for
// benchmarks and tests that don't need the rows).
func Run(c *Ctx, op Op) (int64, error) {
	r, err := Open(c, op)
	if err != nil {
		return 0, err
	}
	return r.Count()
}

// Collect drains an operator tree into a slice.
//
// Deprecated: use Open and consume the streaming Rows iterator (or build
// the query with internal/engine/plan and use Planner.Stream), so the
// result set is never buffered between operators. Collect remains for
// tests and for consumers that genuinely need the full materialized set.
func Collect(c *Ctx, op Op) ([]row.Tuple, error) {
	r, err := Open(c, op)
	if err != nil {
		return nil, err
	}
	var out []row.Tuple
	for {
		t, ok, err := r.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, t)
	}
	return out, r.Close()
}

// --- TableScan -----------------------------------------------------------

// TableScan reads every row of a table in primary-key order.
type TableScan struct {
	Table *catalog.Table
	From  []byte // optional PK lower bound
	To    []byte // optional PK upper bound (exclusive)

	it   *iterState
	open bool
}

type iterState struct {
	next func() (row.Tuple, bool, error)
}

// Schema returns the table's schema.
func (s *TableScan) Schema() *row.Schema { return s.Table.Schema }

// Open positions the scan.
func (s *TableScan) Open(c *Ctx) error {
	it, err := s.Table.Clustered.Scan(c.P, s.From)
	if err != nil {
		return err
	}
	to := s.To
	tbl := s.Table
	s.it = &iterState{next: func() (row.Tuple, bool, error) {
		pair, ok, err := it.Next(c.P)
		if err != nil || !ok {
			return nil, false, err
		}
		if to != nil && string(pair.Key) >= string(to) {
			return nil, false, nil
		}
		t, err := row.Decode(tbl.Schema, pair.Val)
		if err != nil {
			return nil, false, err
		}
		return t, true, nil
	}}
	s.open = true
	return nil
}

// Next returns the next row.
func (s *TableScan) Next(c *Ctx) (row.Tuple, bool, error) {
	if !s.open {
		return nil, false, errors.New("exec: scan not open")
	}
	t, ok, err := s.it.next()
	if ok {
		c.chargeCPU(c.CPU.PerRow)
	}
	return t, ok, err
}

// Close releases the scan.
func (s *TableScan) Close(c *Ctx) error {
	s.open = false
	return nil
}

// --- IndexScan -----------------------------------------------------------

// IndexScan seeks a secondary index range and looks up the base rows
// (a "bookmark lookup" plan shape, the random-I/O pattern of Figure 15b's
// index nested-loop side).
type IndexScan struct {
	Index *catalog.Index
	From  []byte
	To    []byte
	Limit int

	pks []([]byte)
	pos int
}

// Schema returns the base table's schema.
func (s *IndexScan) Schema() *row.Schema { return s.Index.Table.Schema }

// Open runs the index seek.
func (s *IndexScan) Open(c *Ctx) error {
	pks, err := s.Index.SeekRange(c.P, s.From, s.To, s.Limit)
	if err != nil {
		return err
	}
	s.pks = pks
	s.pos = 0
	return nil
}

// Next looks up the next matching row.
func (s *IndexScan) Next(c *Ctx) (row.Tuple, bool, error) {
	if s.pos >= len(s.pks) {
		return nil, false, nil
	}
	pk := s.pks[s.pos]
	s.pos++
	t, err := s.Index.Table.LookupRow(c.P, pk)
	if err != nil {
		return nil, false, err
	}
	c.chargeCPU(c.CPU.PerRow)
	return t, true, nil
}

// Close releases the scan.
func (s *IndexScan) Close(c *Ctx) error {
	s.pks = nil
	return nil
}

// --- Filter ---------------------------------------------------------------

// Filter passes rows satisfying Pred.
type Filter struct {
	In   Op
	Pred func(row.Tuple) bool
}

// Schema passes the input schema through.
func (f *Filter) Schema() *row.Schema { return f.In.Schema() }

// Open opens the input.
func (f *Filter) Open(c *Ctx) error { return f.In.Open(c) }

// Next returns the next passing row.
func (f *Filter) Next(c *Ctx) (row.Tuple, bool, error) {
	for {
		t, ok, err := f.In.Next(c)
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred(t) {
			return t, true, nil
		}
	}
}

// Close closes the input.
func (f *Filter) Close(c *Ctx) error { return f.In.Close(c) }

// --- Project ----------------------------------------------------------------

// Project keeps the named columns.
type Project struct {
	In   Op
	Cols []string

	schema *row.Schema
	ords   []int
}

// Schema returns the projected schema.
func (pr *Project) Schema() *row.Schema {
	if pr.schema == nil {
		pr.schema = pr.In.Schema().Project(pr.Cols...)
	}
	return pr.schema
}

// Open opens the input and resolves ordinals.
func (pr *Project) Open(c *Ctx) error {
	if err := pr.In.Open(c); err != nil {
		return err
	}
	in := pr.In.Schema()
	pr.ords = pr.ords[:0]
	for _, col := range pr.Cols {
		pr.ords = append(pr.ords, in.MustOrdinal(col))
	}
	return nil
}

// Next returns the projected row.
func (pr *Project) Next(c *Ctx) (row.Tuple, bool, error) {
	t, ok, err := pr.In.Next(c)
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(row.Tuple, len(pr.ords))
	for i, o := range pr.ords {
		out[i] = t[o]
	}
	return out, true, nil
}

// Close closes the input.
func (pr *Project) Close(c *Ctx) error { return pr.In.Close(c) }

// --- Limit -------------------------------------------------------------------

// Limit passes at most N rows.
type Limit struct {
	In Op
	N  int64

	seen int64
}

// Schema passes through.
func (l *Limit) Schema() *row.Schema { return l.In.Schema() }

// Open opens the input.
func (l *Limit) Open(c *Ctx) error {
	l.seen = 0
	return l.In.Open(c)
}

// Next returns the next row while under the limit.
func (l *Limit) Next(c *Ctx) (row.Tuple, bool, error) {
	if l.seen >= l.N {
		return nil, false, nil
	}
	t, ok, err := l.In.Next(c)
	if ok {
		l.seen++
	}
	return t, ok, err
}

// Close closes the input.
func (l *Limit) Close(c *Ctx) error { return l.In.Close(c) }

// --- Values -------------------------------------------------------------------

// Values replays a materialized row set (used by the semantic cache and
// by tests).
type Values struct {
	Rows []row.Tuple
	Sch  *row.Schema

	pos int
}

// Schema returns the declared schema.
func (v *Values) Schema() *row.Schema { return v.Sch }

// Open rewinds.
func (v *Values) Open(c *Ctx) error {
	v.pos = 0
	return nil
}

// Next returns the next stored row.
func (v *Values) Next(c *Ctx) (row.Tuple, bool, error) {
	if v.pos >= len(v.Rows) {
		return nil, false, nil
	}
	t := v.Rows[v.pos]
	v.pos++
	c.chargeCPU(c.CPU.PerRow)
	return t, true, nil
}

// Close is a no-op.
func (v *Values) Close(c *Ctx) error { return nil }
