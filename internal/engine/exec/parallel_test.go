package exec

import (
	"fmt"
	"sort"
	"testing"

	"remotedb/internal/engine/row"
	"remotedb/internal/sim"
)

func TestPartitionRangesCoverKeySpace(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 2000)
		ranges, err := PartitionRanges(p, orders, nil, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(ranges) < 2 {
			t.Fatalf("expected multiple ranges, got %d", len(ranges))
		}
		// Consecutive, first open below, last open above.
		if ranges[0][0] != nil || ranges[len(ranges)-1][1] != nil {
			t.Errorf("outer bounds not open: %v", ranges)
		}
		total := int64(0)
		for i, rg := range ranges {
			if i > 0 && string(ranges[i-1][1]) != string(rg[0]) {
				t.Errorf("range %d not adjacent to predecessor", i)
			}
			n, err := Run(r.ctx, &TableScan{Table: orders, From: rg[0], To: rg[1]})
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Errorf("range %d is empty", i)
			}
			total += n
		}
		if total != 2000 {
			t.Errorf("ranges cover %d rows, want 2000", total)
		}
	})
}

func TestParallelScanMatchesSerial(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 2000)
		serial, err := Collect(r.ctx, &TableScan{Table: orders})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Collect(r.ctx, &ParallelScan{Table: orders, DOP: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("parallel rows=%d serial=%d", len(par), len(serial))
		}
		for i := range serial {
			if fmt.Sprint(par[i]) != fmt.Sprint(serial[i]) {
				t.Fatalf("row %d differs: %v vs %v (PK order not preserved?)", i, par[i], serial[i])
			}
		}
	})
}

func TestParallelScanBounds(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 2000)
		from := row.EncodeKey(nil, int64(100))
		to := row.EncodeKey(nil, int64(1500))
		n, err := Run(r.ctx, &ParallelScan{Table: orders, From: from, To: to, DOP: 4})
		if err != nil || n != 1400 {
			t.Errorf("bounded parallel scan n=%d err=%v, want 1400", n, err)
		}
	})
}

func TestExchangeEarlyCloseUnderLimit(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 2000)
		// A tiny limit abandons the exchange with producers still parked
		// on full queues; Close must wake and drain them.
		op := &Limit{In: &ParallelScan{Table: orders, DOP: 4}, N: 5}
		n, err := Run(r.ctx, op)
		if err != nil || n != 5 {
			t.Errorf("limit over exchange n=%d err=%v", n, err)
		}
	})
}

func TestParallelAggMatchesSerial(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 2000)
		groupBy := []string{"custkey"}
		aggs := []Agg{
			{Fn: AggSum, Col: "total", As: "sum_total"},
			{Fn: AggCount, As: "n"},
			{Fn: AggAvg, Col: "total", As: "avg_total"},
			{Fn: AggMin, Col: "total", As: "min_total"},
			{Fn: AggMax, Col: "total", As: "max_total"},
		}
		serial, err := Collect(r.ctx, &HashAgg{
			In: &TableScan{Table: orders}, GroupBy: groupBy, Aggs: aggs,
		})
		if err != nil {
			t.Fatal(err)
		}
		ranges, err := PartitionRanges(p, orders, nil, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		parts := make([]Op, len(ranges))
		for i, rg := range ranges {
			parts[i] = &TableScan{Table: orders, From: rg[0], To: rg[1]}
		}
		par, err := Collect(r.ctx, &ParallelAgg{Parts: parts, GroupBy: groupBy, Aggs: aggs})
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("parallel groups=%d serial=%d", len(par), len(serial))
		}
		// Group emission order may differ (first appearance per partition):
		// compare as sorted multisets.
		key := func(t row.Tuple) string { return fmt.Sprint(t) }
		a, b := make([]string, len(serial)), make([]string, len(par))
		for i := range serial {
			a[i], b[i] = key(serial[i]), key(par[i])
		}
		sort.Strings(a)
		sort.Strings(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("group %d differs:\n serial: %s\n parallel: %s", i, a[i], b[i])
			}
		}
	})
}

func TestParallelScanSmallTreeDegradesToSerial(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, _ := loadJoinTables(t, p, r, 10)
		n, err := Run(r.ctx, &ParallelScan{Table: orders, DOP: 8})
		if err != nil || n != 10 {
			t.Errorf("small-tree parallel scan n=%d err=%v", n, err)
		}
	})
}

func TestOperatorsReopenCleanly(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders, items := loadJoinTables(t, p, r, 200)
		join := &HashJoin{
			Build:     &TableScan{Table: orders},
			Probe:     &TableScan{Table: items},
			BuildCols: []string{"orderkey"},
			ProbeCols: []string{"orderkey"},
		}
		srt := &Sort{In: &TableScan{Table: orders}, Specs: []SortSpec{{Col: "total", Desc: true}}}
		for i := 0; i < 2; i++ {
			n, err := Run(r.ctx, join)
			if err != nil || n != 600 {
				t.Errorf("join run %d: n=%d err=%v", i, n, err)
			}
			n, err = Run(r.ctx, srt)
			if err != nil || n != 200 {
				t.Errorf("sort run %d: n=%d err=%v", i, n, err)
			}
		}
	})
}
