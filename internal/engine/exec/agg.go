package exec

import (
	"fmt"

	"remotedb/internal/engine/row"
)

// AggFunc is an aggregate function kind.
type AggFunc int

// Supported aggregates.
const (
	AggSum AggFunc = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

// Agg describes one aggregate output: Fn over column Col (Col ignored
// for COUNT), named As in the output schema.
type Agg struct {
	Fn  AggFunc
	Col string
	As  string
}

// aggSchema builds the output schema: group columns followed by
// aggregate columns. Shared by HashAgg and ParallelAgg.
func aggSchema(in *row.Schema, groupBy []string, aggs []Agg) *row.Schema {
	var cols []row.Column
	for _, g := range groupBy {
		cols = append(cols, in.Columns[in.MustOrdinal(g)])
	}
	for _, ag := range aggs {
		name := ag.As
		if name == "" {
			name = fmt.Sprintf("agg%d", len(cols))
		}
		typ := row.Float64
		if ag.Fn == AggCount {
			typ = row.Int64
		}
		cols = append(cols, row.Column{Name: name, Type: typ})
	}
	return row.NewSchema(cols...)
}

type aggState struct {
	groupVals []interface{}
	sums      []float64
	counts    []int64
	mins      []float64
	maxs      []float64
	seen      []bool
}

// aggCore is the group table shared by the serial HashAgg and the
// per-worker partial aggregates of ParallelAgg. Partial states merge
// exactly — AVG is carried as (sum, count) until emit — so a merged
// parallel aggregate equals the serial one.
type aggCore struct {
	aggs      []Agg
	groupOrds []int
	aggOrds   []int
	groups    map[string]*aggState
	order     []string // deterministic output order (first appearance)
	bytes     int64
}

func newAggCore(in *row.Schema, groupBy []string, aggs []Agg) (*aggCore, error) {
	core := &aggCore{
		aggs:   aggs,
		groups: make(map[string]*aggState),
	}
	for _, g := range groupBy {
		o := in.Ordinal(g)
		if o < 0 {
			return nil, fmt.Errorf("exec: unknown group column %q", g)
		}
		core.groupOrds = append(core.groupOrds, o)
	}
	core.aggOrds = make([]int, len(aggs))
	for i, ag := range aggs {
		if ag.Fn == AggCount {
			core.aggOrds[i] = -1
			continue
		}
		o := in.Ordinal(ag.Col)
		if o < 0 {
			return nil, fmt.Errorf("exec: unknown aggregate column %q", ag.Col)
		}
		core.aggOrds[i] = o
	}
	return core, nil
}

// add folds one input row into the group table, charging hash CPU.
func (a *aggCore) add(c *Ctx, t row.Tuple) {
	c.chargeCPU(c.CPU.PerHash)
	vals := make([]interface{}, len(a.groupOrds))
	for i, o := range a.groupOrds {
		vals[i] = t[o]
	}
	key := string(row.EncodeKey(nil, vals...))
	st, ok := a.groups[key]
	if !ok {
		st = &aggState{
			groupVals: vals,
			sums:      make([]float64, len(a.aggs)),
			counts:    make([]int64, len(a.aggs)),
			mins:      make([]float64, len(a.aggs)),
			maxs:      make([]float64, len(a.aggs)),
			seen:      make([]bool, len(a.aggs)),
		}
		a.groups[key] = st
		a.order = append(a.order, key)
		a.bytes += int64(len(key)) + int64(len(a.aggs))*40
	}
	for i, ag := range a.aggs {
		st.counts[i]++
		if ag.Fn == AggCount {
			continue
		}
		v := numeric(t[a.aggOrds[i]])
		st.sums[i] += v
		if !st.seen[i] || v < st.mins[i] {
			st.mins[i] = v
		}
		if !st.seen[i] || v > st.maxs[i] {
			st.maxs[i] = v
		}
		st.seen[i] = true
	}
}

// consume opens op, folds every row into the table, and closes op.
func (a *aggCore) consume(c *Ctx, op Op) error {
	if err := op.Open(c); err != nil {
		return err
	}
	for {
		t, ok, err := op.Next(c)
		if err != nil {
			op.Close(c)
			return err
		}
		if !ok {
			break
		}
		a.add(c, t)
	}
	return op.Close(c)
}

// mergeFrom folds another partial group table into this one.
func (a *aggCore) mergeFrom(other *aggCore) {
	for _, key := range other.order {
		os := other.groups[key]
		st, ok := a.groups[key]
		if !ok {
			a.groups[key] = os
			a.order = append(a.order, key)
			a.bytes += int64(len(key)) + int64(len(a.aggs))*40
			continue
		}
		for i := range a.aggs {
			st.counts[i] += os.counts[i]
			st.sums[i] += os.sums[i]
			if os.seen[i] {
				if !st.seen[i] || os.mins[i] < st.mins[i] {
					st.mins[i] = os.mins[i]
				}
				if !st.seen[i] || os.maxs[i] > st.maxs[i] {
					st.maxs[i] = os.maxs[i]
				}
				st.seen[i] = true
			}
		}
	}
}

// emit produces the output rows in first-appearance order.
func (a *aggCore) emit(aggs []Agg) []row.Tuple {
	out := make([]row.Tuple, 0, len(a.order))
	for _, key := range a.order {
		st := a.groups[key]
		t := make(row.Tuple, 0, len(st.groupVals)+len(aggs))
		t = append(t, st.groupVals...)
		for i, ag := range aggs {
			switch ag.Fn {
			case AggSum:
				t = append(t, st.sums[i])
			case AggCount:
				t = append(t, st.counts[i])
			case AggMin:
				t = append(t, st.mins[i])
			case AggMax:
				t = append(t, st.maxs[i])
			case AggAvg:
				if st.counts[i] == 0 {
					t = append(t, 0.0)
				} else {
					t = append(t, st.sums[i]/float64(st.counts[i]))
				}
			}
		}
		out = append(out, t)
	}
	return out
}

// HashAgg groups by GroupBy columns and computes the aggregates. Groups
// are kept in memory; the group count in the paper's workloads is small
// relative to the grant (aggregation state is not what spills in the
// evaluated queries — sorts and joins are), so HashAgg never spills and
// instead reports grant pressure through GroupBytes.
type HashAgg struct {
	In      Op
	GroupBy []string
	Aggs    []Agg

	schema *row.Schema
	out    []row.Tuple
	pos    int

	// GroupBytes is the peak memory the group table used.
	GroupBytes int64
}

// Schema returns group columns followed by aggregate columns.
func (a *HashAgg) Schema() *row.Schema {
	if a.schema == nil {
		a.schema = aggSchema(a.In.Schema(), a.GroupBy, a.Aggs)
	}
	return a.schema
}

// numeric coerces a column value for aggregation.
func numeric(v interface{}) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	panic(fmt.Sprintf("exec: non-numeric aggregate input %T", v))
}

// Open consumes the input and builds the group table.
func (a *HashAgg) Open(c *Ctx) error {
	core, err := newAggCore(a.In.Schema(), a.GroupBy, a.Aggs)
	if err != nil {
		return err
	}
	if err := core.consume(c, a.In); err != nil {
		return err
	}
	a.out = core.emit(a.Aggs)
	a.GroupBytes = core.bytes
	a.pos = 0
	return nil
}

// Next returns the next group row.
func (a *HashAgg) Next(c *Ctx) (row.Tuple, bool, error) {
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	t := a.out[a.pos]
	a.pos++
	return t, true, nil
}

// Close releases agg state.
func (a *HashAgg) Close(c *Ctx) error {
	a.out = nil
	return nil
}
