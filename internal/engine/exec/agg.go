package exec

import (
	"fmt"

	"remotedb/internal/engine/row"
)

// AggFunc is an aggregate function kind.
type AggFunc int

// Supported aggregates.
const (
	AggSum AggFunc = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

// Agg describes one aggregate output: Fn over column Col (Col ignored
// for COUNT), named As in the output schema.
type Agg struct {
	Fn  AggFunc
	Col string
	As  string
}

// HashAgg groups by GroupBy columns and computes the aggregates. Groups
// are kept in memory; the group count in the paper's workloads is small
// relative to the grant (aggregation state is not what spills in the
// evaluated queries — sorts and joins are), so HashAgg never spills and
// instead reports grant pressure through GroupBytes.
type HashAgg struct {
	In      Op
	GroupBy []string
	Aggs    []Agg

	schema *row.Schema
	out    []row.Tuple
	pos    int

	// GroupBytes is the peak memory the group table used.
	GroupBytes int64
}

type aggState struct {
	groupVals []interface{}
	sums      []float64
	counts    []int64
	mins      []float64
	maxs      []float64
	seen      []bool
}

// Schema returns group columns followed by aggregate columns.
func (a *HashAgg) Schema() *row.Schema {
	if a.schema == nil {
		in := a.In.Schema()
		var cols []row.Column
		for _, g := range a.GroupBy {
			cols = append(cols, in.Columns[in.MustOrdinal(g)])
		}
		for _, ag := range a.Aggs {
			name := ag.As
			if name == "" {
				name = fmt.Sprintf("agg%d", len(cols))
			}
			typ := row.Float64
			if ag.Fn == AggCount {
				typ = row.Int64
			}
			cols = append(cols, row.Column{Name: name, Type: typ})
		}
		a.schema = row.NewSchema(cols...)
	}
	return a.schema
}

// numeric coerces a column value for aggregation.
func numeric(v interface{}) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	}
	panic(fmt.Sprintf("exec: non-numeric aggregate input %T", v))
}

// Open consumes the input and builds the group table.
func (a *HashAgg) Open(c *Ctx) error {
	in := a.In.Schema()
	var groupOrds []int
	for _, g := range a.GroupBy {
		groupOrds = append(groupOrds, in.MustOrdinal(g))
	}
	aggOrds := make([]int, len(a.Aggs))
	for i, ag := range a.Aggs {
		if ag.Fn == AggCount {
			aggOrds[i] = -1
			continue
		}
		aggOrds[i] = in.MustOrdinal(ag.Col)
	}
	if err := a.In.Open(c); err != nil {
		return err
	}
	groups := make(map[string]*aggState)
	var order []string // deterministic output order (first appearance)
	for {
		t, ok, err := a.In.Next(c)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		c.chargeCPU(c.CPU.PerHash)
		vals := make([]interface{}, len(groupOrds))
		for i, o := range groupOrds {
			vals[i] = t[o]
		}
		key := string(row.EncodeKey(nil, vals...))
		st, ok := groups[key]
		if !ok {
			st = &aggState{
				groupVals: vals,
				sums:      make([]float64, len(a.Aggs)),
				counts:    make([]int64, len(a.Aggs)),
				mins:      make([]float64, len(a.Aggs)),
				maxs:      make([]float64, len(a.Aggs)),
				seen:      make([]bool, len(a.Aggs)),
			}
			groups[key] = st
			order = append(order, key)
			a.GroupBytes += int64(len(key)) + int64(len(a.Aggs))*40
		}
		for i, ag := range a.Aggs {
			st.counts[i]++
			if ag.Fn == AggCount {
				continue
			}
			v := numeric(t[aggOrds[i]])
			st.sums[i] += v
			if !st.seen[i] || v < st.mins[i] {
				st.mins[i] = v
			}
			if !st.seen[i] || v > st.maxs[i] {
				st.maxs[i] = v
			}
			st.seen[i] = true
		}
	}
	if err := a.In.Close(c); err != nil {
		return err
	}
	a.out = a.out[:0]
	for _, key := range order {
		st := groups[key]
		t := make(row.Tuple, 0, len(st.groupVals)+len(a.Aggs))
		t = append(t, st.groupVals...)
		for i, ag := range a.Aggs {
			switch ag.Fn {
			case AggSum:
				t = append(t, st.sums[i])
			case AggCount:
				t = append(t, st.counts[i])
			case AggMin:
				t = append(t, st.mins[i])
			case AggMax:
				t = append(t, st.maxs[i])
			case AggAvg:
				if st.counts[i] == 0 {
					t = append(t, 0.0)
				} else {
					t = append(t, st.sums[i]/float64(st.counts[i]))
				}
			}
		}
		a.out = append(a.out, t)
	}
	a.pos = 0
	return nil
}

// Next returns the next group row.
func (a *HashAgg) Next(c *Ctx) (row.Tuple, bool, error) {
	if a.pos >= len(a.out) {
		return nil, false, nil
	}
	t := a.out[a.pos]
	a.pos++
	return t, true, nil
}

// Close releases agg state.
func (a *HashAgg) Close(c *Ctx) error {
	a.out = nil
	return nil
}
