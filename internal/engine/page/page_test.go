package page

import (
	"bytes"
	"testing"
	"testing/quick"
)

func freshPage(t Type) *Page {
	pg := Wrap(make([]byte, Size))
	pg.Init(7, t)
	return pg
}

func TestInitAndHeader(t *testing.T) {
	pg := freshPage(TypeHeap)
	if pg.PageNo() != 7 || pg.PageType() != TypeHeap || pg.NumSlots() != 0 {
		t.Fatal("header fields wrong after Init")
	}
	pg.SetLSN(99)
	pg.SetNext(123456789)
	if pg.LSN() != 99 || pg.Next() != 123456789 {
		t.Fatal("LSN/Next round trip failed")
	}
}

func TestInsertGet(t *testing.T) {
	pg := freshPage(TypeHeap)
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	for i, r := range recs {
		slot, err := pg.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		if slot != i {
			t.Fatalf("slot = %d, want %d", slot, i)
		}
	}
	for i, r := range recs {
		got, err := pg.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, r) {
			t.Fatalf("slot %d = %q, want %q", i, got, r)
		}
	}
}

func TestInsertUntilFull(t *testing.T) {
	pg := freshPage(TypeHeap)
	rec := make([]byte, 100)
	n := 0
	for {
		if _, err := pg.Insert(rec); err != nil {
			if err != ErrPageFull {
				t.Fatal(err)
			}
			break
		}
		n++
	}
	// 8192 - 32 header = 8160 usable; each record costs 104 bytes.
	if n < 75 || n > 80 {
		t.Fatalf("fit %d 100-byte records, expected ~78", n)
	}
	if pg.FreeSpace() >= 104 {
		t.Fatalf("free space %d should not fit another record", pg.FreeSpace())
	}
}

func TestDeleteAndLive(t *testing.T) {
	pg := freshPage(TypeHeap)
	pg.Insert([]byte("a"))
	pg.Insert([]byte("b"))
	pg.Insert([]byte("c"))
	if err := pg.Delete(1); err != nil {
		t.Fatal(err)
	}
	if pg.Live() != 2 {
		t.Fatalf("live = %d", pg.Live())
	}
	if _, err := pg.Get(1); err != ErrBadSlot {
		t.Fatalf("get deleted slot: %v", err)
	}
	if err := pg.Delete(1); err != ErrBadSlot {
		t.Fatalf("double delete: %v", err)
	}
	if err := pg.Delete(99); err != ErrBadSlot {
		t.Fatalf("delete out of range: %v", err)
	}
}

func TestUpdateInPlaceAndGrow(t *testing.T) {
	pg := freshPage(TypeHeap)
	pg.Insert([]byte("abcdef"))
	if err := pg.Update(0, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	got, _ := pg.Get(0)
	if string(got) != "xyz" {
		t.Fatalf("in-place update got %q", got)
	}
	if err := pg.Update(0, bytes.Repeat([]byte("L"), 500)); err != nil {
		t.Fatal(err)
	}
	got, _ = pg.Get(0)
	if len(got) != 500 || got[0] != 'L' {
		t.Fatalf("grown update got %d bytes", len(got))
	}
}

func TestCompactReclaimsSpace(t *testing.T) {
	pg := freshPage(TypeHeap)
	rec := make([]byte, 1000)
	for i := 0; i < 8; i++ {
		if _, err := pg.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pg.Insert(rec); err != ErrPageFull {
		t.Fatal("page should be full")
	}
	pg.Delete(0)
	pg.Delete(3)
	pg.SetLSN(42)
	pg.SetNext(77)
	pg.Compact()
	if pg.Live() != 6 || pg.NumSlots() != 6 {
		t.Fatalf("after compact: live=%d slots=%d", pg.Live(), pg.NumSlots())
	}
	if pg.LSN() != 42 || pg.Next() != 77 || pg.PageNo() != 7 {
		t.Fatal("compact lost header fields")
	}
	if _, err := pg.Insert(rec); err != nil {
		t.Fatalf("insert after compact: %v", err)
	}
}

func TestSealVerify(t *testing.T) {
	pg := freshPage(TypeBTreeLeaf)
	pg.Insert([]byte("payload"))
	pg.Seal()
	if err := pg.Verify(); err != nil {
		t.Fatal(err)
	}
	pg.Bytes()[5000] ^= 0xFF
	if err := pg.Verify(); err != ErrChecksum {
		t.Fatalf("corruption not detected: %v", err)
	}
}

// Property: any sequence of inserts below capacity round-trips.
func TestInsertRoundTripProperty(t *testing.T) {
	f := func(recs [][]byte) bool {
		pg := freshPage(TypeHeap)
		var kept [][]byte
		for _, r := range recs {
			if len(r) > 2000 {
				r = r[:2000]
			}
			if _, err := pg.Insert(r); err != nil {
				break
			}
			kept = append(kept, r)
		}
		for i, want := range kept {
			got, err := pg.Get(i)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWrapRejectsWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Wrap accepted wrong-size buffer")
		}
	}()
	Wrap(make([]byte, 100))
}
