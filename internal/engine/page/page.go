// Package page implements the engine's 8 KiB slotted page, the unit of
// buffer-pool caching, disk I/O, and RDMA transfer throughout the system
// (the paper's transfers are sized around this same 8 K page).
//
// Layout:
//
//	[ header 32 B | record heap (grows up) ... free ... slot dir (grows down) ]
//
// The slot directory holds 4-byte entries (offset:2, length:2) addressed
// from the end of the page. Deleted slots have length 0xFFFF and may be
// reused. A 32-bit FNV checksum over the payload detects torn images.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// Size is the fixed page size.
const Size = 8192

// HeaderSize is the fixed header length.
const HeaderSize = 32

const slotSize = 4

const deadLen = 0xFFFF

// Type tags what a page stores.
type Type uint8

// Page types.
const (
	TypeFree Type = iota
	TypeHeap
	TypeBTreeLeaf
	TypeBTreeInner
	TypeMeta
)

// header field offsets
const (
	offPageNo   = 0  // uint64
	offLSN      = 8  // uint64
	offNSlots   = 16 // uint16
	offFreeOff  = 18 // uint16: start of free space (end of record heap)
	offType     = 20 // uint8
	offNextPage = 21 // 7-byte little-endian page link, bytes [21,28)
	offCk       = 28 // uint32 checksum, bytes [28,32)
)

// Page is an 8 KiB buffer with typed accessors. It aliases, not copies,
// the underlying frame memory.
type Page struct {
	b []byte
}

// ErrPageFull is returned when a record does not fit.
var ErrPageFull = errors.New("page: full")

// ErrBadSlot is returned for out-of-range or deleted slots.
var ErrBadSlot = errors.New("page: bad slot")

// ErrChecksum is returned when Verify finds a corrupt image.
var ErrChecksum = errors.New("page: checksum mismatch")

// Wrap views an existing 8 KiB buffer as a Page.
func Wrap(b []byte) *Page {
	if len(b) != Size {
		panic(fmt.Sprintf("page: buffer is %d bytes, want %d", len(b), Size))
	}
	return &Page{b: b}
}

// Init formats the buffer as an empty page.
func (pg *Page) Init(pageNo uint64, t Type) {
	for i := range pg.b[:HeaderSize] {
		pg.b[i] = 0
	}
	binary.LittleEndian.PutUint64(pg.b[offPageNo:], pageNo)
	pg.b[offType] = byte(t)
	pg.setNSlots(0)
	pg.setFreeOff(HeaderSize)
	pg.SetNext(0)
}

// Bytes returns the underlying buffer.
func (pg *Page) Bytes() []byte { return pg.b }

// PageNo returns the page number stamped at Init.
func (pg *Page) PageNo() uint64 { return binary.LittleEndian.Uint64(pg.b[offPageNo:]) }

// LSN returns the page LSN.
func (pg *Page) LSN() uint64 { return binary.LittleEndian.Uint64(pg.b[offLSN:]) }

// SetLSN stamps the page LSN.
func (pg *Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(pg.b[offLSN:], lsn) }

// PageType returns the type tag.
func (pg *Page) PageType() Type { return Type(pg.b[offType]) }

// SetPageType updates the type tag.
func (pg *Page) SetPageType(t Type) { pg.b[offType] = byte(t) }

// Next returns the next-page link (leaf chains), 0 when none.
func (pg *Page) Next() uint64 {
	var v uint64
	for i := 0; i < 7; i++ {
		v |= uint64(pg.b[offNextPage+i]) << (8 * i)
	}
	return v
}

// SetNext stores the next-page link (56 bits are plenty).
func (pg *Page) SetNext(n uint64) {
	for i := 0; i < 7; i++ {
		pg.b[offNextPage+i] = byte(n >> (8 * i))
	}
}

func (pg *Page) nSlots() int        { return int(binary.LittleEndian.Uint16(pg.b[offNSlots:])) }
func (pg *Page) setNSlots(n int)    { binary.LittleEndian.PutUint16(pg.b[offNSlots:], uint16(n)) }
func (pg *Page) freeOff() int       { return int(binary.LittleEndian.Uint16(pg.b[offFreeOff:])) }
func (pg *Page) setFreeOff(off int) { binary.LittleEndian.PutUint16(pg.b[offFreeOff:], uint16(off)) }

func (pg *Page) slotPos(i int) int { return Size - (i+1)*slotSize }

func (pg *Page) slot(i int) (off, length int) {
	p := pg.slotPos(i)
	return int(binary.LittleEndian.Uint16(pg.b[p:])), int(binary.LittleEndian.Uint16(pg.b[p+2:]))
}

func (pg *Page) setSlot(i, off, length int) {
	p := pg.slotPos(i)
	binary.LittleEndian.PutUint16(pg.b[p:], uint16(off))
	binary.LittleEndian.PutUint16(pg.b[p+2:], uint16(length))
}

// NumSlots returns the slot-directory length (including dead slots).
func (pg *Page) NumSlots() int { return pg.nSlots() }

// FreeSpace returns the bytes available for one more record (accounting
// for its slot entry).
func (pg *Page) FreeSpace() int {
	free := Size - pg.nSlots()*slotSize - pg.freeOff() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Insert appends a record and returns its slot index.
func (pg *Page) Insert(rec []byte) (int, error) {
	if len(rec) > pg.FreeSpace() {
		return 0, ErrPageFull
	}
	if len(rec) >= deadLen {
		return 0, fmt.Errorf("page: record of %d bytes exceeds slot limit", len(rec))
	}
	off := pg.freeOff()
	copy(pg.b[off:], rec)
	i := pg.nSlots()
	pg.setNSlots(i + 1)
	pg.setSlot(i, off, len(rec))
	pg.setFreeOff(off + len(rec))
	return i, nil
}

// Get returns the record in slot i, aliasing page memory.
func (pg *Page) Get(i int) ([]byte, error) {
	if i < 0 || i >= pg.nSlots() {
		return nil, ErrBadSlot
	}
	off, length := pg.slot(i)
	if length == deadLen {
		return nil, ErrBadSlot
	}
	return pg.b[off : off+length], nil
}

// Delete marks slot i dead. Space is not compacted; Compact reclaims it.
func (pg *Page) Delete(i int) error {
	if i < 0 || i >= pg.nSlots() {
		return ErrBadSlot
	}
	off, length := pg.slot(i)
	if length == deadLen {
		return ErrBadSlot
	}
	pg.setSlot(i, off, deadLen)
	return nil
}

// Update replaces the record in slot i. If the new image fits in place it
// is overwritten; otherwise it is re-appended (requires free space).
func (pg *Page) Update(i int, rec []byte) error {
	if i < 0 || i >= pg.nSlots() {
		return ErrBadSlot
	}
	off, length := pg.slot(i)
	if length == deadLen {
		return ErrBadSlot
	}
	if len(rec) <= length {
		copy(pg.b[off:], rec)
		pg.setSlot(i, off, len(rec))
		return nil
	}
	need := len(rec) + slotSize // conservative: no slot added, but reuse FreeSpace math
	if pg.FreeSpace()+slotSize < need {
		return ErrPageFull
	}
	noff := pg.freeOff()
	copy(pg.b[noff:], rec)
	pg.setSlot(i, noff, len(rec))
	pg.setFreeOff(noff + len(rec))
	return nil
}

// Live returns the number of live (non-deleted) slots.
func (pg *Page) Live() int {
	n := 0
	for i := 0; i < pg.nSlots(); i++ {
		if _, length := pg.slot(i); length != deadLen {
			n++
		}
	}
	return n
}

// Compact rewrites the record heap dropping dead slots. Slot indexes are
// reassigned; callers that store slot references must not rely on them
// across Compact (the engine's B-tree rebuilds references on compaction).
func (pg *Page) Compact() {
	type rec struct {
		data []byte
	}
	var live []rec
	for i := 0; i < pg.nSlots(); i++ {
		off, length := pg.slot(i)
		if length == deadLen {
			continue
		}
		live = append(live, rec{data: append([]byte(nil), pg.b[off:off+length]...)})
	}
	pageNo, lsn, t, next := pg.PageNo(), pg.LSN(), pg.PageType(), pg.Next()
	pg.Init(pageNo, t)
	pg.SetLSN(lsn)
	pg.SetNext(next)
	for _, r := range live {
		if _, err := pg.Insert(r.data); err != nil {
			panic("page: compact lost records: " + err.Error())
		}
	}
}

// computeChecksum covers everything except the checksum field itself.
func (pg *Page) computeChecksum() uint32 {
	h := fnv.New32a()
	h.Write(pg.b[:offCk])
	h.Write(pg.b[offCk+4:])
	return h.Sum32()
}

// Seal stamps the checksum; call before writing the page out.
func (pg *Page) Seal() {
	binary.LittleEndian.PutUint32(pg.b[offCk:], pg.computeChecksum())
}

// Verify checks the checksum stamped by Seal.
func (pg *Page) Verify() error {
	want := binary.LittleEndian.Uint32(pg.b[offCk:])
	if pg.computeChecksum() != want {
		return ErrChecksum
	}
	return nil
}
