package page

import "testing"

func BenchmarkInsert(b *testing.B) {
	pg := Wrap(make([]byte, Size))
	pg.Init(1, TypeHeap)
	rec := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pg.Insert(rec); err == ErrPageFull {
			pg.Init(1, TypeHeap)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	pg := Wrap(make([]byte, Size))
	pg.Init(1, TypeHeap)
	rec := make([]byte, 100)
	n := 0
	for {
		if _, err := pg.Insert(rec); err != nil {
			break
		}
		n++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pg.Get(i % n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSealVerify(b *testing.B) {
	pg := Wrap(make([]byte, Size))
	pg.Init(1, TypeHeap)
	pg.Insert(make([]byte, 4000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg.Seal()
		if err := pg.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
