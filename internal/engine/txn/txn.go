// Package txn implements the engine's write-ahead log: an append-only
// record stream with group commit. Updates append REDO records; commit
// forces the log. The log's sequential write performance on the HDD
// array is why the paper's RangeScan-with-updates throughput rises with
// spindle count (Figures 7 and 8), and the REDO replay path rebuilds the
// semantic cache after a remote-node failure (Figure 26).
package txn

import (
	"encoding/binary"
	"errors"

	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// RecordType tags log records.
type RecordType uint8

// Record types used by the engine.
const (
	RecUpdate RecordType = iota + 1
	RecCommit
	RecCheckpoint
	RecSemCache // REDO record for a semantic-cache structure
)

// Record is one log entry.
type Record struct {
	LSN     uint64
	Type    RecordType
	Payload []byte
}

// ErrCorruptLog indicates an undecodable log image.
var ErrCorruptLog = errors.New("txn: corrupt log")

// LogManager owns the log file and the group-commit machinery.
type LogManager struct {
	k    *sim.Kernel
	file vfs.File

	nextLSN    uint64
	flushedLSN uint64
	buf        []byte // records appended since last flush
	fileOff    int64

	flushing   bool
	flushDone  *sim.Cond
	Flushes    int64
	Appends    int64
	BytesWrote int64
}

// New creates a log manager on file (typically the HDD array).
func New(k *sim.Kernel, file vfs.File) *LogManager {
	return &LogManager{k: k, file: file, nextLSN: 1, flushDone: sim.NewCond(k)}
}

// Append adds a record to the log buffer and returns its LSN. The record
// is durable only after a Commit (force) covering the LSN.
func (lm *LogManager) Append(t RecordType, payload []byte) uint64 {
	lsn := lm.nextLSN
	lm.nextLSN++
	var hdr [13]byte
	binary.LittleEndian.PutUint64(hdr[0:], lsn)
	hdr[8] = byte(t)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(payload)))
	lm.buf = append(lm.buf, hdr[:]...)
	lm.buf = append(lm.buf, payload...)
	lm.Appends++
	return lsn
}

// Commit forces the log up to lsn (group commit: a concurrent flush that
// covers the LSN satisfies the caller; otherwise the caller leads a new
// flush of everything buffered).
func (lm *LogManager) Commit(p *sim.Proc, lsn uint64) error {
	for lm.flushedLSN < lsn {
		if lm.flushing {
			lm.flushDone.Wait(p)
			continue
		}
		lm.flushing = true
		batch := lm.buf
		lm.buf = nil
		upto := lm.nextLSN - 1
		var err error
		if len(batch) > 0 {
			err = lm.file.WriteAt(p, batch, lm.fileOff)
			lm.fileOff += int64(len(batch))
			lm.BytesWrote += int64(len(batch))
			lm.Flushes++
		}
		lm.flushing = false
		if err == nil {
			lm.flushedLSN = upto
		}
		lm.flushDone.Broadcast()
		if err != nil {
			return err
		}
	}
	return nil
}

// FlushedLSN returns the durable horizon.
func (lm *LogManager) FlushedLSN() uint64 { return lm.flushedLSN }

// NextLSN returns the LSN the next Append will get.
func (lm *LogManager) NextLSN() uint64 { return lm.nextLSN }

// Replay scans the durable log and calls fn for every record with
// LSN > afterLSN, in order. Used for semantic-cache recovery.
func (lm *LogManager) Replay(p *sim.Proc, afterLSN uint64, fn func(Record) error) error {
	var off int64
	buf := make([]byte, 13)
	for off < lm.fileOff {
		if err := lm.file.ReadAt(p, buf, off); err != nil {
			return err
		}
		lsn := binary.LittleEndian.Uint64(buf[0:])
		t := RecordType(buf[8])
		n := binary.LittleEndian.Uint32(buf[9:])
		off += 13
		if off+int64(n) > lm.fileOff {
			return ErrCorruptLog
		}
		payload := make([]byte, n)
		if n > 0 {
			if err := lm.file.ReadAt(p, payload, off); err != nil {
				return err
			}
		}
		off += int64(n)
		if lsn <= afterLSN {
			continue
		}
		if err := fn(Record{LSN: lsn, Type: t, Payload: payload}); err != nil {
			return err
		}
	}
	return nil
}
