package txn

import (
	"fmt"
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

func TestAppendCommitReplay(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		lm := New(k, vfs.NewMemFile("log"))
		var lsns []uint64
		for i := 0; i < 10; i++ {
			lsns = append(lsns, lm.Append(RecUpdate, []byte(fmt.Sprintf("rec-%d", i))))
		}
		if err := lm.Commit(p, lsns[9]); err != nil {
			t.Error(err)
			return
		}
		if lm.FlushedLSN() < lsns[9] {
			t.Errorf("flushed = %d, want >= %d", lm.FlushedLSN(), lsns[9])
		}
		var got []string
		err := lm.Replay(p, 0, func(r Record) error {
			got = append(got, string(r.Payload))
			return nil
		})
		if err != nil {
			t.Error(err)
			return
		}
		if len(got) != 10 || got[0] != "rec-0" || got[9] != "rec-9" {
			t.Errorf("replay = %v", got)
		}
	})
	k.Run(time.Minute)
}

func TestReplayAfterLSN(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		lm := New(k, vfs.NewMemFile("log"))
		for i := 0; i < 10; i++ {
			lm.Append(RecSemCache, []byte{byte(i)})
		}
		lm.Commit(p, 10)
		count := 0
		lm.Replay(p, 5, func(r Record) error {
			count++
			if r.LSN <= 5 {
				t.Errorf("replayed LSN %d <= 5", r.LSN)
			}
			return nil
		})
		if count != 5 {
			t.Errorf("replayed %d records, want 5", count)
		}
	})
	k.Run(time.Minute)
}

func TestGroupCommit(t *testing.T) {
	// Many committers on a slow log device: flush count must be far below
	// the committer count.
	k := sim.New(1)
	cfg := cluster.DefaultConfig()
	cfg.Spindles = 4
	s := cluster.NewServer(k, "db", cfg)
	lm := New(k, vfs.NewDeviceFile("log", s.HDD))
	const committers = 50
	done := sim.NewWaitGroup(k)
	done.Add(committers)
	for i := 0; i < committers; i++ {
		k.Go("c", func(p *sim.Proc) {
			lsn := lm.Append(RecCommit, []byte("payload"))
			if err := lm.Commit(p, lsn); err != nil {
				t.Error(err)
			}
			done.Done()
		})
	}
	k.Go("wait", func(p *sim.Proc) { done.Wait(p) })
	k.Run(time.Minute)
	if lm.Flushes >= committers/2 {
		t.Fatalf("flushes = %d for %d committers; group commit not batching", lm.Flushes, committers)
	}
	if lm.FlushedLSN() < uint64(committers) {
		t.Fatalf("not all commits flushed: %d", lm.FlushedLSN())
	}
}

func TestCommitNoopWhenAlreadyFlushed(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		lm := New(k, vfs.NewMemFile("log"))
		lsn := lm.Append(RecUpdate, nil)
		lm.Commit(p, lsn)
		flushes := lm.Flushes
		lm.Commit(p, lsn) // already durable
		if lm.Flushes != flushes {
			t.Error("redundant commit flushed again")
		}
	})
	k.Run(time.Minute)
}

func TestReplayEmptyLog(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		lm := New(k, vfs.NewMemFile("log"))
		called := false
		lm.Replay(p, 0, func(Record) error { called = true; return nil })
		if called {
			t.Error("empty log replayed records")
		}
	})
	k.Run(time.Minute)
}
