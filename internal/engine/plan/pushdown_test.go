package plan

import (
	"testing"

	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/row"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
)

// planPushFile backs a pushable segment with an in-memory log; PushRead
// runs the evaluator chunk by chunk, as a donor would.
type planPushFile struct {
	data  []byte
	chunk int
}

func (f *planPushFile) PushChunk() int { return f.chunk }

func (f *planPushFile) ReadAt(p *sim.Proc, b []byte, off int64) error {
	copy(b, f.data[off:off+int64(len(b))])
	return nil
}

func (f *planPushFile) PushRead(p *sim.Proc, off, n int64, q *rmem.PushQuery) ([]byte, rmem.PushStats, error) {
	var stats rmem.PushStats
	var out []byte
	for o := off; o < off+n; o += int64(f.chunk) {
		end := o + int64(f.chunk)
		if end > off+n {
			end = off + n
		}
		res, rows, matched, err := rmem.EvalPush(f.data[o:end], q, out)
		if err != nil {
			return nil, stats, err
		}
		out = res
		stats.RowsScanned += int64(rows)
		stats.RowsMatched += int64(matched)
	}
	stats.BytesScanned = n
	stats.BytesReturned = int64(len(out))
	return out, stats, nil
}

func attachOrdersSegment(t *testing.T, tbl *catalog.Table, n int) {
	t.Helper()
	const chunk = 4096
	var seg []byte
	for i := 0; i < n; i++ {
		img, err := row.Encode(nil, tbl.Schema, row.Tuple{int64(i), int64(i % 100), float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		seg = rmem.AppendPushRecord(seg, img, chunk)
	}
	seg = rmem.PadPushChunk(seg, chunk)
	f := &planPushFile{data: seg, chunk: chunk}
	tbl.SetPushSegment(&catalog.PushSegment{File: f, Rows: int64(n), Bytes: int64(len(seg)), Chunk: chunk})
}

func TestWhereCmpSelectivityInSignature(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders := loadOrders(t, p, r, 100)
		// The comparison value is a parameter: same shape, same entry.
		a := Scan(orders).WhereCmp("custkey", CmpLT, 10, 0.01)
		b := Scan(orders).WhereCmp("custkey", CmpLT, 90, 0.01)
		if Signature(normalize(a.Node()), 4) != Signature(normalize(b.Node()), 4) {
			t.Error("comparison value leaked into signature")
		}
		// The selectivity hint is identity: different hints get their own
		// cached placement.
		c := Scan(orders).WhereCmp("custkey", CmpLT, 10, 1.0)
		if Signature(normalize(a.Node()), 4) == Signature(normalize(c.Node()), 4) {
			t.Error("selectivity hint not part of signature")
		}
	})
}

func TestPushdownLowering(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders := loadOrders(t, p, r, 2000)
		attachOrdersSegment(t, orders, 2000)
		r.pl.Pushdown = true

		// Selective predicate: the optimizer must push the scan to the
		// donors (FetchAll off).
		sel := Scan(orders).WhereCmp("custkey", CmpLT, 10, 0.01)
		op, err := r.pl.Lower(r.ctx, sel)
		if err != nil {
			t.Fatal(err)
		}
		ps, ok := op.(*exec.PushScan)
		if !ok {
			t.Fatalf("selective filter lowered to %T, want PushScan", op)
		}
		if ps.FetchAll {
			t.Error("selective filter chose fetch-all over donor-side eval")
		}
		n, err := r.pl.Run(r.ctx, sel)
		if err != nil || n != 200 {
			t.Errorf("pushed scan n=%d err=%v, want 200", n, err)
		}

		// Non-selective predicate: everything comes back anyway, so the
		// optimizer keeps the eval client-side (fetch-all placement).
		full := Scan(orders).WhereCmp("custkey", CmpGE, 0, 1.0)
		op2, err := r.pl.Lower(r.ctx, full)
		if err != nil {
			t.Fatal(err)
		}
		ps2, ok := op2.(*exec.PushScan)
		if !ok {
			t.Fatalf("full-selectivity filter lowered to %T, want PushScan", op2)
		}
		if !ps2.FetchAll {
			t.Error("full-selectivity filter should place as fetch-all")
		}
		n2, err := r.pl.Run(r.ctx, full)
		if err != nil || n2 != 2000 {
			t.Errorf("fetch-all scan n=%d err=%v, want 2000", n2, err)
		}

		// With pushdown off the same query lowers to an ordinary
		// filtered scan.
		off := NewPlanner(nil, 0)
		op3, err := off.Lower(r.ctx, Scan(orders).WhereCmp("custkey", CmpLT, 10, 0.01))
		if err != nil {
			t.Fatal(err)
		}
		if _, isPush := op3.(*exec.PushScan); isPush {
			t.Error("pushdown-off planner still lowered a PushScan")
		}
	})
}

func TestPushdownResidualPredicate(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders := loadOrders(t, p, r, 2000)
		attachOrdersSegment(t, orders, 2000)
		r.pl.Pushdown = true

		// One pushable leaf, one opaque predicate: the leaf goes to the
		// donors, the opaque part stays as a residual Filter on top.
		b := Scan(orders).
			WhereCmp("custkey", CmpLT, 10, 0.01).
			Where("odd", func(tp row.Tuple) bool { return tp[0].(int64)%2 == 1 })
		op, err := r.pl.Lower(r.ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		f, ok := op.(*exec.Filter)
		if !ok {
			t.Fatalf("lowered to %T, want residual Filter over PushScan", op)
		}
		if _, ok := f.In.(*exec.PushScan); !ok {
			t.Fatalf("residual filter wraps %T, want PushScan", f.In)
		}
		n, err := r.pl.Run(r.ctx, b)
		if err != nil || n != 100 {
			t.Errorf("n=%d err=%v, want 100", n, err)
		}
	})
}

func TestPushdownAggLowering(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders := loadOrders(t, p, r, 2000)
		attachOrdersSegment(t, orders, 2000)
		r.pl.Pushdown = true

		b := Scan(orders).WhereCmp("custkey", CmpLT, 5, 0.01).
			GroupBy([]string{"custkey"}, exec.Agg{Fn: exec.AggCount, As: "n"})
		op, err := r.pl.Lower(r.ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		agg, ok := op.(*exec.HashAgg)
		if !ok {
			t.Fatalf("agg lowered to %T, want HashAgg over PushScan", op)
		}
		if _, ok := agg.In.(*exec.PushScan); !ok {
			t.Fatalf("agg input is %T, want PushScan", agg.In)
		}
		n, err := r.pl.Run(r.ctx, b)
		if err != nil || n != 5 {
			t.Errorf("groups=%d err=%v, want 5", n, err)
		}
	})
}

func TestPlacementCachedAndDOPInvalidates(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders := loadOrders(t, p, r, 2000)
		attachOrdersSegment(t, orders, 2000)
		r.pl.Pushdown = true

		q := Scan(orders).WhereCmp("custkey", CmpLT, 10, 0.01)
		if _, err := r.pl.Lower(r.ctx, q); err != nil {
			t.Fatal(err)
		}
		if r.pl.Hits != 0 || r.pl.Misses != 1 {
			t.Fatalf("first lower: hits=%d misses=%d", r.pl.Hits, r.pl.Misses)
		}
		// The placement decision is replayed from the plan cache.
		op, err := r.pl.Lower(r.ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if r.pl.Hits != 1 || r.pl.Misses != 1 {
			t.Fatalf("second lower: hits=%d misses=%d, want a cache hit", r.pl.Hits, r.pl.Misses)
		}
		if ps, ok := op.(*exec.PushScan); !ok || ps.FetchAll {
			t.Fatalf("cached lowering produced %T (FetchAll?), want pushed PushScan", op)
		}
		// A different DOP is a different signature: the placement is
		// re-costed, not replayed.
		serial := *r.ctx
		serial.DOP = 1
		if _, err := r.pl.Lower(&serial, q); err != nil {
			t.Fatal(err)
		}
		if r.pl.Misses != 2 {
			t.Fatalf("DOP change did not invalidate: hits=%d misses=%d", r.pl.Hits, r.pl.Misses)
		}
	})
}
