package plan

import (
	"fmt"
	"strings"
	"time"

	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/opt"
	"remotedb/internal/engine/row"
	"remotedb/internal/rmem"
)

// pageRows approximates clustered rows per 8K page for cost estimation
// (the executor does not track per-table row widths).
const pageRows = 50

// decisions holds everything optimization chose for one normalized
// plan shape, positionally: joins[i] is the strategy of the i-th join
// node in preorder, scanDOPs[i] the DOP of the i-th scan. The cache
// stores decisions — never operator instances (operators carry run
// state) and never plan-node closures (a cached closure would pin
// whatever out-of-band state the first query captured).
type decisions struct {
	joins      []opt.JoinPlan
	scanDOPs   []int
	placements []opt.Placement // one per scan, preorder (PlaceLocal = ordinary lowering)
}

// Planner normalizes logical plans, caches optimization decisions
// keyed on the normalized signature, and lowers plans to executor
// trees using the tier-aware cost model.
type Planner struct {
	Cost *opt.Model
	// DataTier is where base-table and index pages live; the default
	// assumes the buffer-pool extension serves them from remote memory.
	DataTier opt.Tier
	// PlanCPUPerNode is the optimization CPU charged per plan node on a
	// cache miss; a hit charges only HitCPU. The ratio is the plan
	// cache's entire payoff on small queries.
	PlanCPUPerNode time.Duration
	HitCPU         time.Duration

	// Pushdown lets the optimizer place pushable scans at the donors
	// (or fetch their segment whole) instead of always lowering the
	// buffered B-tree scan. Off by default: a placement is only as good
	// as the pushable segments backing it.
	Pushdown bool
	// DonorPrice scales donor CPU in the placement cost model
	// (0 = 1.0, i.e. donor cores priced like local ones).
	DonorPrice float64

	// Hits and Misses count cache outcomes (uncacheable plans are
	// misses).
	Hits, Misses int64

	maxEntries int
	cache      map[string]*decisions
	fifo       []string
}

// NewPlanner builds a planner with a plan cache of maxEntries
// (0 = default 128, negative = caching disabled).
func NewPlanner(cost *opt.Model, maxEntries int) *Planner {
	if maxEntries == 0 {
		maxEntries = 128
	}
	if cost == nil {
		cost = opt.NewModel()
	}
	return &Planner{
		Cost:           cost,
		DataTier:       opt.TierRemote,
		PlanCPUPerNode: 250 * time.Microsecond,
		HitCPU:         15 * time.Microsecond,
		maxEntries:     maxEntries,
		cache:          make(map[string]*decisions),
	}
}

// CacheLen reports the number of cached plans.
func (pl *Planner) CacheLen() int { return len(pl.cache) }

// Stream plans, optimizes (or reuses cached decisions) and opens the
// query, returning the streaming result iterator.
func (pl *Planner) Stream(c *exec.Ctx, b *Builder) (*exec.Rows, error) {
	op, err := pl.Lower(c, b)
	if err != nil {
		return nil, err
	}
	return exec.Open(c, op)
}

// Run is Stream followed by draining the iterator; it returns the row
// count.
func (pl *Planner) Run(c *exec.Ctx, b *Builder) (int64, error) {
	r, err := pl.Stream(c, b)
	if err != nil {
		return 0, err
	}
	return r.Count()
}

// Lower produces the executor tree for a builder without opening it.
// Most callers want Stream; Lower exists for consumers that manage the
// operator themselves (the semantic cache, tests).
func (pl *Planner) Lower(c *exec.Ctx, b *Builder) (exec.Op, error) {
	n := normalize(b.Node())
	var d *decisions
	if cacheable(n) && pl.maxEntries > 0 {
		sig := Signature(n, c.DOP)
		if hit, ok := pl.cache[sig]; ok {
			pl.Hits++
			d = hit
			c.ChargeCPU(pl.HitCPU)
		} else {
			pl.Misses++
			d = pl.optimize(c, n)
			pl.cache[sig] = d
			pl.fifo = append(pl.fifo, sig)
			if len(pl.fifo) > pl.maxEntries {
				delete(pl.cache, pl.fifo[0])
				pl.fifo = pl.fifo[1:]
			}
		}
	} else {
		pl.Misses++
		d = pl.optimize(c, n)
	}
	inst := &instantiator{pl: pl, d: d}
	op, err := inst.lower(c, n)
	if err != nil {
		return nil, err
	}
	return op, nil
}

// cacheable reports whether the plan may share cached decisions:
// Values nodes carry their row set inline, so their plans are
// one-shot.
func cacheable(n *Node) bool {
	if n.Kind == KindValues {
		return false
	}
	for _, ch := range n.Children {
		if !cacheable(ch) {
			return false
		}
	}
	return true
}

// Signature renders the normalized tree as a canonical s-expression.
// Range bounds (From/To) are deliberately absent — they are the plan's
// parameters — while predicate names, projection lists, join columns,
// aggregates and limits are all structure. DOP is part of the key
// because it changes the chosen plan.
func Signature(n *Node, dop int) string {
	var sb strings.Builder
	sig(n, &sb)
	fmt.Fprintf(&sb, "@dop%d", dop)
	return sb.String()
}

func sig(n *Node, sb *strings.Builder) {
	switch n.Kind {
	case KindScan:
		fmt.Fprintf(sb, "(scan %s)", n.Table.Name)
	case KindIndexRange:
		fmt.Fprintf(sb, "(ixrange %s.%s lim=%d)", n.Index.Table.Name, n.Index.Name, n.N)
	case KindFilter:
		sb.WriteString("(filter")
		for _, p := range n.Preds {
			sb.WriteByte(' ')
			sb.WriteString(p.Name)
		}
		sb.WriteByte(' ')
		sig(n.Children[0], sb)
		sb.WriteByte(')')
	case KindProject:
		fmt.Fprintf(sb, "(proj %s ", strings.Join(n.Cols, ","))
		sig(n.Children[0], sb)
		sb.WriteByte(')')
	case KindLimit:
		fmt.Fprintf(sb, "(limit %d ", n.N)
		sig(n.Children[0], sb)
		sb.WriteByte(')')
	case KindJoin:
		fmt.Fprintf(sb, "(join %s=%s ", strings.Join(n.LeftCols, ","), strings.Join(n.RightCols, ","))
		sig(n.Children[0], sb)
		sb.WriteByte(' ')
		sig(n.Children[1], sb)
		sb.WriteByte(')')
	case KindAgg:
		fmt.Fprintf(sb, "(agg %s", strings.Join(n.GroupBy, ","))
		for _, a := range n.Aggs {
			fmt.Fprintf(sb, " %d:%s:%s", a.Fn, a.Col, a.As)
		}
		sb.WriteByte(' ')
		sig(n.Children[0], sb)
		sb.WriteByte(')')
	case KindSort:
		fmt.Fprintf(sb, "(sort %s ", specsSig(n.Specs))
		sig(n.Children[0], sb)
		sb.WriteByte(')')
	case KindTop:
		fmt.Fprintf(sb, "(top %d %s ", n.N, specsSig(n.Specs))
		sig(n.Children[0], sb)
		sb.WriteByte(')')
	case KindValues:
		fmt.Fprintf(sb, "(values n=%d)", len(n.Rows))
	}
}

func specsSig(specs []exec.SortSpec) string {
	parts := make([]string, len(specs))
	for i, s := range specs {
		dir := "asc"
		if s.Desc {
			dir = "desc"
		}
		parts[i] = s.Col + ":" + dir
	}
	return strings.Join(parts, ",")
}

// --- optimization ---------------------------------------------------------

// optimize walks the tree in preorder choosing a strategy per join, a
// DOP and a placement per scan, and charges the planner's optimization
// CPU.
func (pl *Planner) optimize(c *exec.Ctx, n *Node) *decisions {
	d := &decisions{}
	nodes := pl.optNode(c, n, d, nil)
	c.ChargeCPU(time.Duration(nodes) * pl.PlanCPUPerNode)
	return d
}

// optNode records decisions in preorder. preds carries the predicates
// of the filter directly above a node (normalize collapses filter
// chains, so one hop sees them all) — the context a scan's placement
// decision is made in.
func (pl *Planner) optNode(c *exec.Ctx, n *Node, d *decisions, preds []Pred) int {
	nodes := 1
	switch n.Kind {
	case KindJoin:
		d.joins = append(d.joins, pl.chooseJoin(c, n))
	case KindScan:
		dop := pl.chooseDOP(c, n)
		d.scanDOPs = append(d.scanDOPs, dop)
		d.placements = append(d.placements, pl.choosePlacement(n, preds, dop))
	}
	var down []Pred
	if n.Kind == KindFilter {
		down = n.Preds
	}
	for _, ch := range n.Children {
		nodes += pl.optNode(c, ch, d, down)
	}
	return nodes
}

// choosePlacement costs donor-side pushdown for one scan under the
// given filter predicates. PlaceLocal means "lower the ordinary scan":
// it is the answer whenever pushdown is off, the table has no pushable
// segment, the scan is range-bounded (segment byte offsets of a PK
// bound are unknown), or no predicate leaf is pushable.
func (pl *Planner) choosePlacement(n *Node, preds []Pred, dop int) opt.Placement {
	seg := n.Table.Push
	if !pl.Pushdown || seg == nil || seg.Rows == 0 || n.From != nil || n.To != nil {
		return opt.PlaceLocal
	}
	leaves, sel := pushablePreds(n.Table.Schema, preds)
	if len(leaves) == 0 {
		return opt.PlaceLocal
	}
	choice, _, _, _ := pl.Cost.ChoosePlacement(opt.PushScanInputs{
		Rows:        seg.Rows,
		Bytes:       seg.Bytes,
		OutBytes:    seg.Bytes / seg.Rows,
		Selectivity: sel,
		Leaves:      len(leaves),
		DonorPrice:  pl.DonorPrice,
		LocalTier:   pl.DataTier,
		DOP:         dop,
	})
	return choice
}

// pushablePreds converts the structured leaves among preds into donor
// predicate leaves, multiplying their selectivity hints (an unhinted
// leaf contributes the estRows default of 1/3).
func pushablePreds(sch *row.Schema, preds []Pred) ([]rmem.PushLeaf, float64) {
	sel := 1.0
	var leaves []rmem.PushLeaf
	for _, pr := range preds {
		leaf, ok := pushLeaf(sch, pr.Cmp)
		if !ok {
			continue
		}
		leaves = append(leaves, leaf)
		if pr.Cmp.Sel > 0 {
			sel *= pr.Cmp.Sel
		} else {
			sel /= 3
		}
	}
	return leaves, sel
}

// pushLeaf lowers one structured comparison to the donor evaluator's
// leaf form, or reports it unpushable.
func pushLeaf(sch *row.Schema, cm *Cmp) (rmem.PushLeaf, bool) {
	if cm == nil {
		return rmem.PushLeaf{}, false
	}
	ord := sch.Ordinal(cm.Col)
	if ord < 0 {
		return rmem.PushLeaf{}, false
	}
	leaf := rmem.PushLeaf{Col: ord, Op: pushOp(cm.Op)}
	switch sch.Columns[ord].Type {
	case row.Int64:
		v, ok := cm.Val.(int64)
		if !ok {
			return rmem.PushLeaf{}, false
		}
		leaf.Int = v
	case row.Float64:
		v, ok := cm.Val.(float64)
		if !ok {
			return rmem.PushLeaf{}, false
		}
		leaf.Float = v
	case row.String:
		v, ok := cm.Val.(string)
		if !ok {
			return rmem.PushLeaf{}, false
		}
		leaf.Bytes = []byte(v)
	default:
		v, ok := cm.Val.([]byte)
		if !ok {
			return rmem.PushLeaf{}, false
		}
		leaf.Bytes = v
	}
	return leaf, true
}

func pushOp(op CmpOp) rmem.PushOp {
	switch op {
	case CmpEQ:
		return rmem.PushEQ
	case CmpNE:
		return rmem.PushNE
	case CmpLT:
		return rmem.PushLT
	case CmpLE:
		return rmem.PushLE
	case CmpGT:
		return rmem.PushGT
	default:
		return rmem.PushGE
	}
}

// pushCols renders a table schema as the donor evaluator's field kinds.
func pushCols(sch *row.Schema) []rmem.FieldKind {
	out := make([]rmem.FieldKind, sch.Len())
	for i, c := range sch.Columns {
		switch c.Type {
		case row.Int64:
			out[i] = rmem.FieldInt64
		case row.Float64:
			out[i] = rmem.FieldFloat64
		default:
			out[i] = rmem.FieldBytes
		}
	}
	return out
}

// chooseDOP costs the scan at every DOP up to the context's budget.
func (pl *Planner) chooseDOP(c *exec.Ctx, n *Node) int {
	if c.DOP <= 1 {
		return 1
	}
	rows := n.Table.Clustered.Entries
	if n.From != nil || n.To != nil {
		rows /= 4 // default range selectivity
	}
	in := opt.ScanInputs{Rows: rows, Pages: rows/pageRows + 1, Tier: pl.DataTier}
	return pl.Cost.ChooseScanDOP(in, c.DOP)
}

// chooseJoin lets the tier-aware model pick INLJ vs hash join. INLJ is
// a candidate only when the right input is a bare scan whose table has
// a secondary index exactly on the join columns, and the two sides
// share no column names (the operators disambiguate duplicates
// differently, so a swap would change the output schema).
func (pl *Planner) chooseJoin(c *exec.Ctx, n *Node) opt.JoinPlan {
	right := n.Children[1]
	ix := inljIndex(right, n.RightCols)
	if ix == nil || sharesNames(n.Children[0], right) {
		return opt.PlanHashJoin
	}
	inner := right.Table
	innerRows := inner.Clustered.Entries
	matches := int64(1)
	outer := estRows(n.Children[0])
	in := opt.JoinInputs{
		OuterRows:      outer,
		InnerRows:      innerRows,
		InnerPages:     innerRows/pageRows + 1,
		IndexHeight:    ix.Tree.Height(),
		MatchesPerSeek: matches,
		IndexTier:      pl.DataTier,
		TableTier:      pl.DataTier,
	}
	plan, _, _ := pl.Cost.ChooseJoin(in)
	return plan
}

// inljIndex returns the secondary index exactly matching cols on a bare
// scan node, or nil.
func inljIndex(n *Node, cols []string) *catalog.Index {
	if n.Kind != KindScan || n.From != nil || n.To != nil {
		return nil
	}
	for _, ix := range n.Table.Secondary {
		if len(ix.Cols) != len(cols) {
			continue
		}
		match := true
		for i := range cols {
			if ix.Cols[i] != cols[i] {
				match = false
				break
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// sharesNames reports whether the two subtrees' output schemas overlap
// in column names. Without buffer-pool access the walk is structural:
// it is conservative for projections below joins.
func sharesNames(l, r *Node) bool {
	ln := outNames(l)
	rn := outNames(r)
	for name := range rn {
		if _, dup := ln[name]; dup {
			return true
		}
	}
	return false
}

func outNames(n *Node) map[string]struct{} {
	switch n.Kind {
	case KindScan:
		return schemaNames(colNames(n.Table.Schema))
	case KindIndexRange:
		return schemaNames(colNames(n.Index.Table.Schema))
	case KindValues:
		return schemaNames(colNames(n.Sch))
	case KindProject:
		return schemaNames(n.Cols)
	case KindAgg:
		names := append([]string(nil), n.GroupBy...)
		for _, a := range n.Aggs {
			names = append(names, a.As)
		}
		return schemaNames(names)
	case KindJoin:
		out := outNames(n.Children[0])
		for name := range outNames(n.Children[1]) {
			out[name] = struct{}{}
		}
		return out
	default:
		return outNames(n.Children[0])
	}
}

func schemaNames(names []string) map[string]struct{} {
	out := make(map[string]struct{}, len(names))
	for _, name := range names {
		out[name] = struct{}{}
	}
	return out
}

func colNames(s *row.Schema) []string {
	names := make([]string, len(s.Columns))
	for i, col := range s.Columns {
		names[i] = col.Name
	}
	return names
}

// estRows is the planner's cardinality guess, deliberately simple:
// filters keep a third, aggregates a tenth, equi-joins track the larger
// input (foreign-key assumption).
func estRows(n *Node) int64 {
	est := int64(1)
	switch n.Kind {
	case KindScan:
		est = n.Table.Clustered.Entries
		if n.From != nil || n.To != nil {
			est /= 4
		}
	case KindIndexRange:
		est = n.Index.Table.Clustered.Entries / 100
		if n.N > 0 && n.N < est {
			est = n.N
		}
	case KindFilter:
		est = estRows(n.Children[0])
		for range n.Preds {
			est /= 3
		}
	case KindJoin:
		l, r := estRows(n.Children[0]), estRows(n.Children[1])
		est = l
		if r > est {
			est = r
		}
	case KindAgg:
		est = estRows(n.Children[0]) / 10
	case KindLimit, KindTop:
		est = estRows(n.Children[0])
		if n.N < est {
			est = n.N
		}
	case KindValues:
		est = int64(len(n.Rows))
	default:
		est = estRows(n.Children[0])
	}
	if est < 1 {
		est = 1
	}
	return est
}

// --- lowering -------------------------------------------------------------

// instantiator builds a fresh executor tree from a normalized plan,
// consuming the positional decisions in preorder.
type instantiator struct {
	pl      *Planner
	d       *decisions
	joinIdx int
	scanIdx int
}

func (in *instantiator) nextJoin() opt.JoinPlan {
	if in.joinIdx < len(in.d.joins) {
		j := in.d.joins[in.joinIdx]
		in.joinIdx++
		return j
	}
	return opt.PlanHashJoin
}

// nextScanDOP consumes the next scan's DOP and placement together —
// every scan gets exactly one of each, so the positional streams stay
// aligned even for consumers that ignore the placement.
func (in *instantiator) nextScanDOP() (int, opt.Placement) {
	dop, placement := 1, opt.PlaceLocal
	if in.scanIdx < len(in.d.scanDOPs) {
		dop = in.d.scanDOPs[in.scanIdx]
	}
	if in.scanIdx < len(in.d.placements) {
		placement = in.d.placements[in.scanIdx]
	}
	in.scanIdx++
	return dop, placement
}

func (in *instantiator) lower(c *exec.Ctx, n *Node) (exec.Op, error) {
	switch n.Kind {
	case KindScan:
		dop, _ := in.nextScanDOP()
		if dop > 1 {
			return &exec.ParallelScan{Table: n.Table, From: n.From, To: n.To, DOP: dop}, nil
		}
		return &exec.TableScan{Table: n.Table, From: n.From, To: n.To}, nil
	case KindIndexRange:
		return &exec.IndexScan{Index: n.Index, From: n.From, To: n.To, Limit: int(n.N)}, nil
	case KindFilter:
		if ch := n.Children[0]; ch.Kind == KindScan {
			return in.lowerFilteredScan(n, ch)
		}
		ch, err := in.lower(c, n.Children[0])
		if err != nil {
			return nil, err
		}
		return &exec.Filter{In: ch, Pred: combinePreds(n.Preds)}, nil
	case KindProject:
		ch, err := in.lower(c, n.Children[0])
		if err != nil {
			return nil, err
		}
		return &exec.Project{In: ch, Cols: n.Cols}, nil
	case KindLimit:
		ch, err := in.lower(c, n.Children[0])
		if err != nil {
			return nil, err
		}
		return &exec.Limit{In: ch, N: n.N}, nil
	case KindSort:
		ch, err := in.lower(c, n.Children[0])
		if err != nil {
			return nil, err
		}
		return &exec.Sort{In: ch, Specs: n.Specs}, nil
	case KindTop:
		ch, err := in.lower(c, n.Children[0])
		if err != nil {
			return nil, err
		}
		return &exec.TopN{In: ch, Specs: n.Specs, N: int(n.N)}, nil
	case KindValues:
		return &exec.Values{Rows: n.Rows, Sch: n.Sch}, nil
	case KindJoin:
		strat := in.nextJoin()
		left, err := in.lower(c, n.Children[0])
		if err != nil {
			return nil, err
		}
		if strat == opt.PlanINLJ {
			ix := inljIndex(n.Children[1], n.RightCols)
			if ix != nil {
				// The right scan's DOP and placement decisions still have
				// to be consumed to keep later scans aligned.
				in.nextScanDOP()
				return &exec.IndexNestedLoopJoin{Outer: left, OuterCols: n.LeftCols, Inner: ix, Fetch: true}, nil
			}
		}
		right, err := in.lower(c, n.Children[1])
		if err != nil {
			return nil, err
		}
		return &exec.HashJoin{Build: left, Probe: right, BuildCols: n.LeftCols, ProbeCols: n.RightCols, RemoteProbe: in.pl.Pushdown}, nil
	case KindAgg:
		return in.lowerAgg(c, n)
	}
	return nil, fmt.Errorf("plan: unknown node kind %d", n.Kind)
}

// lowerFilteredScan lowers filter-over-scan honoring the cached
// placement: PlaceLocal gives the ordinary (possibly parallel) B-tree
// scan under a Filter, while the remote placements absorb the pushable
// leaves into a PushScan — donor-evaluated or fetch-all per the
// decision — leaving opaque predicates behind as a residual Filter.
func (in *instantiator) lowerFilteredScan(f, scan *Node) (exec.Op, error) {
	dop, placement := in.nextScanDOP()
	if placement == opt.PlaceLocal || scan.Table.Push == nil {
		var op exec.Op
		if dop > 1 {
			op = &exec.ParallelScan{Table: scan.Table, From: scan.From, To: scan.To, DOP: dop}
		} else {
			op = &exec.TableScan{Table: scan.Table, From: scan.From, To: scan.To}
		}
		return &exec.Filter{In: op, Pred: combinePreds(f.Preds)}, nil
	}
	return pushScanOp(f, scan, dop, placement), nil
}

// pushScanOp builds the PushScan (plus residual Filter) for a
// filter-over-scan pair under a remote placement.
func pushScanOp(f, scan *Node, dop int, placement opt.Placement) exec.Op {
	leaves, _ := pushablePreds(scan.Table.Schema, f.Preds)
	var op exec.Op = &exec.PushScan{
		Table:    scan.Table,
		Query:    &rmem.PushQuery{Cols: pushCols(scan.Table.Schema), Preds: leaves},
		FetchAll: placement == opt.PlaceFetchAll,
		DOP:      dop,
	}
	var residual []Pred
	for _, pr := range f.Preds {
		if _, ok := pushLeaf(scan.Table.Schema, pr.Cmp); !ok {
			residual = append(residual, pr)
		}
	}
	if len(residual) > 0 {
		op = &exec.Filter{In: op, Pred: combinePreds(residual)}
	}
	return op
}

// lowerAgg emits a ParallelAgg when the aggregate sits on a
// scan-rooted pipeline (filters/projections only) whose scan was given
// DOP > 1: each partition runs the whole pipeline and aggregates
// locally, so only tiny partial group tables cross the merge. A scan
// the optimizer placed remotely instead aggregates over a PushScan
// (which parallelizes internally by segment partition).
func (in *instantiator) lowerAgg(c *exec.Ctx, n *Node) (exec.Op, error) {
	chain, scan := pipelineToScan(n.Children[0])
	if scan != nil {
		dop, placement := in.nextScanDOP()
		if placement != opt.PlaceLocal && scan.Table.Push != nil &&
			len(chain) > 0 && chain[len(chain)-1].Kind == KindFilter {
			op := pushScanOp(chain[len(chain)-1], scan, dop, placement)
			for j := len(chain) - 2; j >= 0; j-- {
				op = rebuildStage(chain[j], op)
			}
			return &exec.HashAgg{In: op, GroupBy: n.GroupBy, Aggs: n.Aggs}, nil
		}
		if dop > 1 {
			ranges, err := exec.PartitionRanges(c.P, scan.Table, scan.From, scan.To, dop)
			if err != nil {
				return nil, err
			}
			if len(ranges) > 1 {
				parts := make([]exec.Op, len(ranges))
				for i, rg := range ranges {
					var op exec.Op = &exec.TableScan{Table: scan.Table, From: rg[0], To: rg[1]}
					for j := len(chain) - 1; j >= 0; j-- {
						op = rebuildStage(chain[j], op)
					}
					parts[i] = op
				}
				return &exec.ParallelAgg{Parts: parts, GroupBy: n.GroupBy, Aggs: n.Aggs}, nil
			}
		}
		var op exec.Op = &exec.TableScan{Table: scan.Table, From: scan.From, To: scan.To}
		for j := len(chain) - 1; j >= 0; j-- {
			op = rebuildStage(chain[j], op)
		}
		return &exec.HashAgg{In: op, GroupBy: n.GroupBy, Aggs: n.Aggs}, nil
	}
	ch, err := in.lower(c, n.Children[0])
	if err != nil {
		return nil, err
	}
	return &exec.HashAgg{In: ch, GroupBy: n.GroupBy, Aggs: n.Aggs}, nil
}

// pipelineToScan returns the Filter/Project chain (top-down) above a
// bare scan, or a nil scan when the subtree is anything else.
func pipelineToScan(n *Node) ([]*Node, *Node) {
	var chain []*Node
	for {
		switch n.Kind {
		case KindScan:
			return chain, n
		case KindFilter, KindProject:
			chain = append(chain, n)
			n = n.Children[0]
		default:
			return nil, nil
		}
	}
}

func rebuildStage(n *Node, in exec.Op) exec.Op {
	if n.Kind == KindFilter {
		return &exec.Filter{In: in, Pred: combinePreds(n.Preds)}
	}
	return &exec.Project{In: in, Cols: n.Cols}
}

func combinePreds(preds []Pred) func(t row.Tuple) bool {
	if len(preds) == 1 {
		return preds[0].Fn
	}
	fns := make([]func(row.Tuple) bool, len(preds))
	for i, p := range preds {
		fns[i] = p.Fn
	}
	return func(t row.Tuple) bool {
		for _, fn := range fns {
			if !fn(t) {
				return false
			}
		}
		return true
	}
}
