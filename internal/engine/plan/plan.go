// Package plan is the engine's logical plan layer: a fluent builder API
// that produces normalized plan trees, a plan cache keyed on the
// normalized form, and a lowering step where the tier-aware cost model
// (internal/engine/opt) chooses the join strategy and scan DOP instead
// of callers hard-coding operators.
//
// Plans are first-class, comparable objects: two queries that differ
// only in their range constants normalize to the same signature
// (prepared-statement semantics), so the second one skips optimization
// entirely — the repeated-query regime the paper targets with millions
// of cloud users running the same application queries.
package plan

import (
	"bytes"
	"fmt"
	"strings"

	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/row"
)

// Kind discriminates logical plan nodes.
type Kind int

// Logical node kinds.
const (
	KindScan Kind = iota
	KindIndexRange
	KindFilter
	KindProject
	KindLimit
	KindJoin
	KindAgg
	KindSort
	KindTop
	KindValues
)

// Pred is a named filter predicate. The name is the predicate's
// identity in the plan signature — the closure itself is opaque — so
// builders must give semantically different predicates different names.
// Predicates built with WhereCmp additionally carry a structured Cmp
// leaf the optimizer can reason about (and push to donors).
type Pred struct {
	Name string
	Fn   func(row.Tuple) bool
	Cmp  *Cmp
}

// CmpOp is a comparison operator in a structured predicate leaf.
type CmpOp int

// Comparison operators understood by the optimizer.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (op CmpOp) String() string {
	switch op {
	case CmpEQ:
		return "="
	case CmpNE:
		return "!="
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	}
	return "?"
}

// Cmp is a structured comparison leaf: column <op> constant. The
// constant is a parameter (excluded from the plan signature, like range
// bounds); Sel is the caller's selectivity estimate for the leaf and
// *is* identity — the cardinality heuristics cannot tell a 0.1%
// predicate from a 100% one, and the two deserve different cached
// placements.
type Cmp struct {
	Col string
	Op  CmpOp
	Val interface{}
	Sel float64
}

// Node is one logical plan operator. Range bounds (From/To) are
// parameters, not plan structure: they are excluded from the signature
// and re-bound on every execution.
type Node struct {
	Kind     Kind
	Children []*Node

	Table *catalog.Table // Scan
	Index *catalog.Index // IndexRange
	From  []byte         // Scan/IndexRange lower bound (parameter)
	To    []byte         // Scan/IndexRange upper bound (parameter)

	Preds []Pred // Filter

	Cols []string // Project

	LeftCols  []string // Join equality columns, left input
	RightCols []string // Join equality columns, right input

	GroupBy []string   // Agg
	Aggs    []exec.Agg // Agg

	Specs []exec.SortSpec // Sort/Top

	N int64 // Limit/Top/IndexRange row bound

	Rows []row.Tuple // Values
	Sch  *row.Schema // Values
}

// Builder is the fluent query-builder. Each method returns a new
// builder wrapping the extended tree; builders are immutable and safe
// to share as query templates.
type Builder struct {
	n *Node
}

// Scan reads a whole table in PK order.
func Scan(t *catalog.Table) *Builder {
	return &Builder{n: &Node{Kind: KindScan, Table: t}}
}

// ScanRange reads a PK range [from, to) of a table. The bounds are
// parameters: plans differing only in bounds share a cache entry.
func ScanRange(t *catalog.Table, from, to []byte) *Builder {
	return &Builder{n: &Node{Kind: KindScan, Table: t, From: from, To: to}}
}

// IndexRange seeks a secondary-index range and fetches the base rows
// (bookmark lookup). limit <= 0 means unlimited.
func IndexRange(ix *catalog.Index, from, to []byte, limit int) *Builder {
	return &Builder{n: &Node{Kind: KindIndexRange, Index: ix, From: from, To: to, N: int64(limit)}}
}

// Values replays a materialized row set (not cacheable: the rows are
// the plan).
func Values(sch *row.Schema, rows []row.Tuple) *Builder {
	return &Builder{n: &Node{Kind: KindValues, Sch: sch, Rows: rows}}
}

// Where filters rows by a named predicate. The name identifies the
// predicate in the plan signature.
func (b *Builder) Where(name string, fn func(row.Tuple) bool) *Builder {
	return &Builder{n: &Node{Kind: KindFilter, Preds: []Pred{{Name: name, Fn: fn}}, Children: []*Node{b.n}}}
}

// WhereCmp filters by the structured comparison col <op> val, with sel
// as the caller's selectivity estimate (0 = unknown). Unlike Where, the
// optimizer can see through the predicate — cost it, and push it to the
// donors holding the table's remote segment. The constant re-binds like
// a range bound; sel is part of the predicate's identity. The input
// must be a scan-rooted pipeline (the column is resolved eagerly).
func (b *Builder) WhereCmp(col string, op CmpOp, val interface{}, sel float64) *Builder {
	sch := outSchema(b.n)
	ord := sch.MustOrdinal(col)
	if v, isInt := val.(int); isInt && sch.Columns[ord].Type == row.Int64 {
		val = int64(v)
	}
	p := Pred{
		Name: fmt.Sprintf("%s%s?sel=%g", col, op, sel),
		Fn:   cmpFn(ord, sch.Columns[ord].Type, op, val),
		Cmp:  &Cmp{Col: col, Op: op, Val: val, Sel: sel},
	}
	return &Builder{n: &Node{Kind: KindFilter, Preds: []Pred{p}, Children: []*Node{b.n}}}
}

// outSchema derives the output schema of a scan-rooted pipeline; it
// panics on subtrees (joins, aggregates) whose schemas only the
// executor computes — WhereCmp belongs below those operators anyway.
func outSchema(n *Node) *row.Schema {
	switch n.Kind {
	case KindScan:
		return n.Table.Schema
	case KindIndexRange:
		return n.Index.Table.Schema
	case KindValues:
		return n.Sch
	case KindProject:
		return outSchema(n.Children[0]).Project(n.Cols...)
	case KindFilter, KindLimit, KindSort, KindTop:
		return outSchema(n.Children[0])
	}
	panic("plan: WhereCmp needs a scan-rooted input")
}

// cmpFn compiles one structured comparison into a tuple predicate.
func cmpFn(ord int, typ row.Type, op CmpOp, val interface{}) func(row.Tuple) bool {
	cmp := func(t row.Tuple) int {
		switch typ {
		case row.Int64:
			want := val.(int64)
			v := t[ord].(int64)
			switch {
			case v < want:
				return -1
			case v > want:
				return 1
			}
			return 0
		case row.Float64:
			want := val.(float64)
			v := t[ord].(float64)
			switch {
			case v < want:
				return -1
			case v > want:
				return 1
			}
			return 0
		case row.String:
			return strings.Compare(t[ord].(string), val.(string))
		default:
			return bytes.Compare(t[ord].([]byte), val.([]byte))
		}
	}
	switch op {
	case CmpEQ:
		return func(t row.Tuple) bool { return cmp(t) == 0 }
	case CmpNE:
		return func(t row.Tuple) bool { return cmp(t) != 0 }
	case CmpLT:
		return func(t row.Tuple) bool { return cmp(t) < 0 }
	case CmpLE:
		return func(t row.Tuple) bool { return cmp(t) <= 0 }
	case CmpGT:
		return func(t row.Tuple) bool { return cmp(t) > 0 }
	default:
		return func(t row.Tuple) bool { return cmp(t) >= 0 }
	}
}

// Select projects the named columns.
func (b *Builder) Select(cols ...string) *Builder {
	return &Builder{n: &Node{Kind: KindProject, Cols: cols, Children: []*Node{b.n}}}
}

// Join equi-joins with right on same-named columns. The receiver is the
// left (build/outer) side; its column names win on output collisions.
func (b *Builder) Join(right *Builder, cols ...string) *Builder {
	return b.JoinOn(right, cols, cols)
}

// JoinOn equi-joins with right on leftCols = rightCols.
func (b *Builder) JoinOn(right *Builder, leftCols, rightCols []string) *Builder {
	return &Builder{n: &Node{
		Kind:      KindJoin,
		LeftCols:  leftCols,
		RightCols: rightCols,
		Children:  []*Node{b.n, right.n},
	}}
}

// GroupBy hash-aggregates: group columns then one output column per
// aggregate.
func (b *Builder) GroupBy(groupBy []string, aggs ...exec.Agg) *Builder {
	return &Builder{n: &Node{Kind: KindAgg, GroupBy: groupBy, Aggs: aggs, Children: []*Node{b.n}}}
}

// OrderBy sorts (externally, spilling past the grant).
func (b *Builder) OrderBy(specs ...exec.SortSpec) *Builder {
	return &Builder{n: &Node{Kind: KindSort, Specs: specs, Children: []*Node{b.n}}}
}

// Top keeps the first n rows of the given order.
func (b *Builder) Top(n int, specs ...exec.SortSpec) *Builder {
	return &Builder{n: &Node{Kind: KindTop, N: int64(n), Specs: specs, Children: []*Node{b.n}}}
}

// Limit passes at most n rows.
func (b *Builder) Limit(n int64) *Builder {
	return &Builder{n: &Node{Kind: KindLimit, N: n, Children: []*Node{b.n}}}
}

// Node exposes the underlying logical tree (for tests and tools).
func (b *Builder) Node() *Node { return b.n }

// normalize rewrites a tree into canonical form: chains of adjacent
// filters collapse into one filter with predicates sorted by name (the
// order predicates were written in does not change the result set, so
// it must not change the signature either). Returns fresh nodes; the
// builder's tree is never mutated.
func normalize(n *Node) *Node {
	out := *n
	out.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		out.Children[i] = normalize(ch)
	}
	if out.Kind == KindFilter {
		preds := append([]Pred(nil), out.Preds...)
		child := out.Children[0]
		for child.Kind == KindFilter {
			preds = append(preds, child.Preds...)
			child = child.Children[0]
		}
		sortPreds(preds)
		out.Preds = preds
		out.Children = []*Node{child}
	}
	return &out
}

func sortPreds(preds []Pred) {
	for i := 1; i < len(preds); i++ {
		for j := i; j > 0 && preds[j].Name < preds[j-1].Name; j-- {
			preds[j], preds[j-1] = preds[j-1], preds[j]
		}
	}
}
