package plan

import (
	"fmt"
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/row"
	"remotedb/internal/engine/tempdb"
	"remotedb/internal/hw/disk"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

type rigT struct {
	cat *catalog.Catalog
	ctx *exec.Ctx
	pl  *Planner
}

func withRig(t *testing.T, fn func(p *sim.Proc, r *rigT)) {
	t.Helper()
	k := sim.New(1)
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	s := cluster.NewServer(k, "db", cfg)
	k.Go("t", func(p *sim.Proc) {
		data := vfs.NewDeviceFile("data", disk.NullDevice{DeviceName: "null"})
		bcfg := buffer.DefaultConfig(8192)
		bcfg.WriterPeriod = 0
		bcfg.PageAccessCPU = 0
		bp, err := buffer.New(p, s, data, bcfg)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := &exec.Ctx{
			P:      p,
			Server: s,
			Temp:   tempdb.New(vfs.NewMemFile("tempdb")),
			Grant:  1 << 30,
			CPU:    exec.DefaultCPUProfile(),
			DOP:    4,
		}
		fn(p, &rigT{cat: catalog.New(bp), ctx: ctx, pl: NewPlanner(nil, 0)})
	})
	k.Run(10 * time.Minute)
}

func loadOrders(t *testing.T, p *sim.Proc, r *rigT, n int) *catalog.Table {
	t.Helper()
	sch := row.NewSchema(
		row.Column{Name: "orderkey", Type: row.Int64},
		row.Column{Name: "custkey", Type: row.Int64},
		row.Column{Name: "total", Type: row.Float64},
	)
	tbl, err := r.cat.CreateTable(p, "orders", sch, "orderkey")
	if err != nil {
		t.Fatal(err)
	}
	var rows []row.Tuple
	for i := 0; i < n; i++ {
		rows = append(rows, row.Tuple{int64(i), int64(i % 100), float64(i)})
	}
	if err := tbl.BulkLoad(p, rows); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestSignatureNormalization(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders := loadOrders(t, p, r, 100)
		big := func(tp row.Tuple) bool { return tp[2].(float64) > 50 }
		cust := func(tp row.Tuple) bool { return tp[1].(int64) == 3 }

		a := Scan(orders).Where("big", big).Where("cust3", cust).Select("orderkey")
		b := Scan(orders).Where("cust3", cust).Where("big", big).Select("orderkey")
		sa := Signature(normalize(a.Node()), 4)
		sb := Signature(normalize(b.Node()), 4)
		if sa != sb {
			t.Errorf("filter order changed signature:\n%s\n%s", sa, sb)
		}

		// Range bounds are parameters, not structure.
		c := ScanRange(orders, row.EncodeKey(nil, int64(10)), row.EncodeKey(nil, int64(20))).Where("big", big)
		d := ScanRange(orders, row.EncodeKey(nil, int64(40)), row.EncodeKey(nil, int64(90))).Where("big", big)
		if Signature(normalize(c.Node()), 4) != Signature(normalize(d.Node()), 4) {
			t.Error("range bounds leaked into signature")
		}

		// A different predicate name is a different plan.
		e := Scan(orders).Where("other", big)
		if Signature(normalize(a.Node()), 4) == Signature(normalize(e.Node()), 4) {
			t.Error("predicate names not part of signature")
		}

		// DOP is part of the key.
		if Signature(normalize(a.Node()), 1) == Signature(normalize(a.Node()), 4) {
			t.Error("DOP not part of signature")
		}
	})
}

func TestPlanCacheHitMiss(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders := loadOrders(t, p, r, 100)
		q := func(lo, hi int64) *Builder {
			return ScanRange(orders, row.EncodeKey(nil, lo), row.EncodeKey(nil, hi)).
				GroupBy([]string{"custkey"}, exec.Agg{Fn: exec.AggCount, As: "n"})
		}
		if _, err := r.pl.Run(r.ctx, q(0, 50)); err != nil {
			t.Fatal(err)
		}
		if r.pl.Hits != 0 || r.pl.Misses != 1 {
			t.Fatalf("first run: hits=%d misses=%d", r.pl.Hits, r.pl.Misses)
		}
		// Same shape, different parameters: a hit.
		if _, err := r.pl.Run(r.ctx, q(20, 80)); err != nil {
			t.Fatal(err)
		}
		if r.pl.Hits != 1 || r.pl.Misses != 1 {
			t.Fatalf("second run: hits=%d misses=%d", r.pl.Hits, r.pl.Misses)
		}
		// Different shape: a miss.
		if _, err := r.pl.Run(r.ctx, q(0, 50).Limit(3)); err != nil {
			t.Fatal(err)
		}
		if r.pl.Hits != 1 || r.pl.Misses != 2 {
			t.Fatalf("third run: hits=%d misses=%d", r.pl.Hits, r.pl.Misses)
		}
	})
}

func TestPlanCacheEviction(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders := loadOrders(t, p, r, 100)
		pl := NewPlanner(nil, 2)
		pl.Run(r.ctx, Scan(orders))
		pl.Run(r.ctx, Scan(orders).Limit(1))
		pl.Run(r.ctx, Scan(orders).Limit(2))
		if pl.CacheLen() != 2 {
			t.Errorf("cache len=%d, want 2 (FIFO bound)", pl.CacheLen())
		}
		// Negative maxEntries disables caching entirely.
		off := NewPlanner(nil, -1)
		off.Run(r.ctx, Scan(orders))
		off.Run(r.ctx, Scan(orders))
		if off.Hits != 0 || off.CacheLen() != 0 {
			t.Errorf("disabled cache recorded hits=%d len=%d", off.Hits, off.CacheLen())
		}
	})
}

func TestStreamMatchesHandBuiltTree(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders := loadOrders(t, p, r, 2000)
		pred := func(tp row.Tuple) bool { return tp[1].(int64) < 50 }
		b := Scan(orders).Where("cust<50", pred).
			GroupBy([]string{"custkey"},
				exec.Agg{Fn: exec.AggSum, Col: "total", As: "sum_total"},
				exec.Agg{Fn: exec.AggCount, As: "n"},
			).
			OrderBy(exec.SortSpec{Col: "custkey"})
		hand := &exec.Sort{
			In: &exec.HashAgg{
				In:      &exec.Filter{In: &exec.TableScan{Table: orders}, Pred: pred},
				GroupBy: []string{"custkey"},
				Aggs: []exec.Agg{
					{Fn: exec.AggSum, Col: "total", As: "sum_total"},
					{Fn: exec.AggCount, As: "n"},
				},
			},
			Specs: []exec.SortSpec{{Col: "custkey"}},
		}
		want, err := exec.Collect(r.ctx, hand)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := r.pl.Stream(r.ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		var got []row.Tuple
		for {
			tp, ok, err := rows.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, tp)
		}
		rows.Close()
		if len(got) != len(want) {
			t.Fatalf("got %d rows, want %d", len(got), len(want))
		}
		for i := range want {
			if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
				t.Fatalf("row %d: got %v want %v", i, got[i], want[i])
			}
		}
		// And a second, re-parameterized run (cache hit) must agree too.
		n, err := r.pl.Run(r.ctx, b)
		if err != nil || n != int64(len(want)) {
			t.Errorf("cached rerun n=%d err=%v", n, err)
		}
		if r.pl.Hits == 0 {
			t.Error("second run did not hit the plan cache")
		}
	})
}

func TestJoinStrategyChoice(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders := loadOrders(t, p, r, 2000)
		sch := row.NewSchema(
			row.Column{Name: "ckey", Type: row.Int64},
			row.Column{Name: "name", Type: row.Int64},
		)
		cust, err := r.cat.CreateTable(p, "cust", sch, "ckey")
		if err != nil {
			t.Fatal(err)
		}
		var rows []row.Tuple
		for i := 0; i < 5000; i++ {
			rows = append(rows, row.Tuple{int64(i), int64(i)})
		}
		if err := cust.BulkLoad(p, rows); err != nil {
			t.Fatal(err)
		}
		if _, err := r.cat.CreateIndex(p, "ix_cust_ckey", "cust", "ckey"); err != nil {
			t.Fatal(err)
		}

		// Tiny outer vs indexed inner with disjoint names: INLJ territory.
		one := func(tp row.Tuple) bool { return tp[0].(int64) == 7 }
		b := Scan(orders).Where("pk=7", one).Limit(1).Select("custkey").
			JoinOn(Scan(cust), []string{"custkey"}, []string{"ckey"})
		op, err := r.pl.Lower(r.ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := op.(*exec.IndexNestedLoopJoin); !ok {
			t.Errorf("small outer lowered to %T, want INLJ", op)
		}

		// Full outer: the hash join must win.
		b2 := Scan(orders).Select("custkey").
			JoinOn(Scan(cust), []string{"custkey"}, []string{"ckey"})
		op2, err := r.pl.Lower(r.ctx, b2)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := op2.(*exec.HashJoin); !ok {
			t.Errorf("full outer lowered to %T, want HashJoin", op2)
		}

		// Shared column names must force the hash join (schema naming).
		b3 := Scan(orders).Where("pk=7", one).
			Join(Scan(orders), "orderkey")
		op3, err := r.pl.Lower(r.ctx, b3)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := op3.(*exec.HashJoin); !ok {
			t.Errorf("self-join lowered to %T, want HashJoin", op3)
		}
	})
}

func TestAggLowersToParallelAgg(t *testing.T) {
	withRig(t, func(p *sim.Proc, r *rigT) {
		orders := loadOrders(t, p, r, 5000)
		b := Scan(orders).
			Where("big", func(tp row.Tuple) bool { return tp[2].(float64) > 100 }).
			GroupBy([]string{"custkey"}, exec.Agg{Fn: exec.AggSum, Col: "total", As: "s"})
		op, err := r.pl.Lower(r.ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := op.(*exec.ParallelAgg); !ok {
			t.Errorf("agg over large scan at DOP 4 lowered to %T, want ParallelAgg", op)
		}
		// Serial context: plain HashAgg.
		serialCtx := *r.ctx
		serialCtx.DOP = 1
		op2, err := r.pl.Lower(&serialCtx, b)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := op2.(*exec.HashAgg); !ok {
			t.Errorf("agg at DOP 1 lowered to %T, want HashAgg", op2)
		}
	})
}
