// Burst priming: the vectored variant of the scenario-(iv) pipeline.
// Scalar Serialize/Install charge one staging memcpy per page, and the
// fixed per-copy setup (MemcpyBase) dominates at 8 KiB. The burst
// variants stage pages in multi-page runs — one memcpy charge per run of
// up to burst pages — which is how a real implementation would walk the
// resident list: gather into a large staging buffer, copy once.
package prime

import (
	"encoding/binary"
	"errors"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/page"
	"remotedb/internal/hw/nic"
	"remotedb/internal/sim"
)

// DefaultBurst is the staging-run size in pages used by PrimeBurst.
const DefaultBurst = 32

// SerializeBurst is Serialize with staging amortized over runs of up to
// burst pages: each run charges one memcpy of run×8 KiB instead of
// burst separate 8 KiB copies. burst <= 1 degenerates to the scalar
// per-page charge.
func SerializeBurst(p *sim.Proc, srv *cluster.Server, src *buffer.Pool, burst int) ([]byte, int, error) {
	if burst <= 1 {
		return Serialize(p, srv, src)
	}
	resident := src.ResidentPages()
	img := make([]byte, 0, len(resident)*(8+page.Size))
	var scratch [8]byte
	count := 0
	run := 0
	for _, no := range resident {
		h, err := src.Get(p, no)
		if err != nil {
			continue // page evicted between listing and copy: skip
		}
		binary.LittleEndian.PutUint64(scratch[:], no)
		img = append(img, scratch[:]...)
		img = append(img, h.Page().Bytes()...)
		h.Release()
		count++
		run++
		if run == burst {
			srv.Work(p, nic.MemcpyCost(run*page.Size))
			run = 0
		}
	}
	if run > 0 {
		srv.Work(p, nic.MemcpyCost(run*page.Size))
	}
	return img, count, nil
}

// InstallBurst is Install with the staging memcpy amortized over runs of
// up to burst pages. burst <= 1 degenerates to the scalar variant.
func InstallBurst(p *sim.Proc, srv *cluster.Server, dst *buffer.Pool, img []byte, burst int) (int, error) {
	if burst <= 1 {
		return Install(p, srv, dst, img)
	}
	installed := 0
	rec := 8 + page.Size
	if len(img)%rec != 0 {
		return 0, errors.New("prime: corrupt priming image")
	}
	run := 0
	for off := 0; off < len(img); off += rec {
		no := binary.LittleEndian.Uint64(img[off:])
		if err := dst.PrimeInstall(p, no, img[off+8:off+rec]); err != nil {
			return installed, err
		}
		installed++
		run++
		if run == burst {
			srv.Work(p, nic.MemcpyCost(run*page.Size))
			run = 0
		}
	}
	if run > 0 {
		srv.Work(p, nic.MemcpyCost(run*page.Size))
	}
	return installed, nil
}

// PrimeBurst runs the full proactive pipeline S1 -> S2 with burst-sized
// staging runs on both ends.
func PrimeBurst(p *sim.Proc, s1, s2 *cluster.Server, src, dst *buffer.Pool, burst int) (Stats, error) {
	var st Stats
	t0 := p.Now()
	img, pages, err := SerializeBurst(p, s1, src, burst)
	if err != nil {
		return st, err
	}
	st.Pages = pages
	st.Bytes = int64(len(img))
	st.SerializeTime = p.Now() - t0

	t1 := p.Now()
	Transfer(p, s1, s2, img)
	st.TransferTime = p.Now() - t1

	t2 := p.Now()
	if _, err := InstallBurst(p, s2, dst, img, burst); err != nil {
		return st, err
	}
	st.InstallTime = p.Now() - t2
	return st, nil
}
