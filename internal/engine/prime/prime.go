// Package prime implements the paper's scenario (iv): proactively
// warming the buffer pool of a newly elected primary (S2) from the warm
// buffer pool of the old primary (S1). The old primary serializes its
// resident pages into an in-memory file (the same logic SQL Server uses
// to serialize the buffer pool for its SSD extension), the image is
// pushed over RDMA at wire speed, and the new primary installs the pages
// into its pool. Figure 16 compares this against warming up through
// workload misses.
package prime

import (
	"encoding/binary"
	"errors"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/page"
	"remotedb/internal/hw/nic"
	"remotedb/internal/sim"
)

// Stats reports one priming run.
type Stats struct {
	Pages         int
	Bytes         int64
	SerializeTime time.Duration
	TransferTime  time.Duration
	InstallTime   time.Duration
}

// Total returns end-to-end priming time.
func (s Stats) Total() time.Duration { return s.SerializeTime + s.TransferTime + s.InstallTime }

// Serialize walks src's resident pages and produces the priming image:
// a sequence of (pageNo, page image) records. It charges a staging
// memcpy per page on srv (the paper measures this scan+serialize step
// separately in Figure 16a).
func Serialize(p *sim.Proc, srv *cluster.Server, src *buffer.Pool) ([]byte, int, error) {
	resident := src.ResidentPages()
	img := make([]byte, 0, len(resident)*(8+page.Size))
	var scratch [8]byte
	count := 0
	for _, no := range resident {
		h, err := src.Get(p, no)
		if err != nil {
			continue // page evicted between listing and copy: skip
		}
		binary.LittleEndian.PutUint64(scratch[:], no)
		img = append(img, scratch[:]...)
		img = append(img, h.Page().Bytes()...)
		h.Release()
		srv.Work(p, nic.MemcpyCost(page.Size))
		count++
	}
	return img, count, nil
}

// Transfer pushes the serialized image from src to dst over the RDMA
// fabric in 1 MiB messages.
func Transfer(p *sim.Proc, src, dst *cluster.Server, img []byte) {
	const msg = 1 << 20
	for off := 0; off < len(img); off += msg {
		n := msg
		if off+n > len(img) {
			n = len(img) - off
		}
		nic.Wire(p, src.NIC, dst.NIC, n)
	}
}

// Install loads the image's pages into dst's buffer pool.
func Install(p *sim.Proc, srv *cluster.Server, dst *buffer.Pool, img []byte) (int, error) {
	installed := 0
	rec := 8 + page.Size
	if len(img)%rec != 0 {
		return 0, errors.New("prime: corrupt priming image")
	}
	for off := 0; off < len(img); off += rec {
		no := binary.LittleEndian.Uint64(img[off:])
		if err := dst.PrimeInstall(p, no, img[off+8:off+rec]); err != nil {
			return installed, err
		}
		srv.Work(p, nic.MemcpyCost(page.Size))
		installed++
	}
	return installed, nil
}

// Prime runs the full proactive pipeline S1 -> S2 and reports stage
// timings.
func Prime(p *sim.Proc, s1, s2 *cluster.Server, src, dst *buffer.Pool) (Stats, error) {
	var st Stats
	t0 := p.Now()
	img, pages, err := Serialize(p, s1, src)
	if err != nil {
		return st, err
	}
	st.Pages = pages
	st.Bytes = int64(len(img))
	st.SerializeTime = p.Now() - t0

	t1 := p.Now()
	Transfer(p, s1, s2, img)
	st.TransferTime = p.Now() - t1

	t2 := p.Now()
	if _, err := Install(p, s2, dst, img); err != nil {
		return st, err
	}
	st.InstallTime = p.Now() - t2
	return st, nil
}
