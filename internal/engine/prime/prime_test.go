package prime

import (
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/page"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

func servers(k *sim.Kernel) (*cluster.Server, *cluster.Server) {
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	return cluster.NewServer(k, "s1", cfg), cluster.NewServer(k, "s2", cfg)
}

func pool(p *sim.Proc, s *cluster.Server, frames int) *buffer.Pool {
	cfg := buffer.DefaultConfig(frames)
	cfg.WriterPeriod = 0
	cfg.PageAccessCPU = 0
	bp, err := buffer.New(p, s, vfs.NewDeviceFile("data", s.HDD), cfg)
	if err != nil {
		panic(err)
	}
	return bp
}

func TestPrimeTransfersResidentPages(t *testing.T) {
	k := sim.New(1)
	s1, s2 := servers(k)
	k.Go("t", func(p *sim.Proc) {
		src := pool(p, s1, 64)
		dst := pool(p, s2, 64)
		var pages []uint64
		for i := 0; i < 32; i++ {
			h, no, _ := src.Allocate(p, page.TypeHeap)
			h.Page().Insert([]byte{byte(i)})
			h.MarkDirty(1)
			h.Release()
			pages = append(pages, no)
		}
		src.FlushAll(p)
		st, err := Prime(p, s1, s2, src, dst)
		if err != nil {
			t.Error(err)
			return
		}
		if st.Pages != 32 {
			t.Errorf("primed %d pages", st.Pages)
		}
		if st.Bytes != int64(32*(8+page.Size)) {
			t.Errorf("image bytes = %d", st.Bytes)
		}
		// Pages are resident at the secondary with intact content; no
		// disk reads needed.
		dst.Stats.DiskReads = 0
		for i, no := range pages {
			h, err := dst.Get(p, no)
			if err != nil {
				t.Error(err)
				return
			}
			rec, _ := h.Page().Get(0)
			if len(rec) != 1 || rec[0] != byte(i) {
				t.Errorf("page %d content wrong", no)
			}
			h.Release()
		}
		if dst.Stats.DiskReads != 0 {
			t.Errorf("disk reads after priming = %d", dst.Stats.DiskReads)
		}
	})
	k.Run(time.Minute)
}

func TestPrimingFasterThanWireOnly(t *testing.T) {
	// Stage sanity: transfer time should reflect the RDMA wire rate.
	k := sim.New(1)
	s1, s2 := servers(k)
	k.Go("t", func(p *sim.Proc) {
		src := pool(p, s1, 1024)
		dst := pool(p, s2, 1024)
		for i := 0; i < 1024; i++ {
			h, _, _ := src.Allocate(p, page.TypeHeap)
			h.Release()
		}
		st, err := Prime(p, s1, s2, src, dst)
		if err != nil {
			t.Error(err)
			return
		}
		// 1024 pages = 8 MiB; at ~5 GB/s the wire takes ~1.7ms.
		if st.TransferTime > 20*time.Millisecond {
			t.Errorf("transfer of 8 MiB took %v", st.TransferTime)
		}
		if st.SerializeTime <= 0 || st.InstallTime <= 0 {
			t.Error("stage timings missing")
		}
	})
	k.Run(time.Minute)
}

func TestInstallRejectsCorruptImage(t *testing.T) {
	k := sim.New(1)
	s1, s2 := servers(k)
	_ = s1
	k.Go("t", func(p *sim.Proc) {
		dst := pool(p, s2, 16)
		if _, err := Install(p, s2, dst, make([]byte, 100)); err == nil {
			t.Error("corrupt image accepted")
		}
	})
	k.Run(time.Minute)
}

func TestInstallSkipsResidentPages(t *testing.T) {
	k := sim.New(1)
	s1, s2 := servers(k)
	k.Go("t", func(p *sim.Proc) {
		src := pool(p, s1, 16)
		dst := pool(p, s2, 16)
		h, no, _ := src.Allocate(p, page.TypeHeap)
		h.Release()
		// Make the same page already resident at dst with newer content.
		hd, noD, _ := dst.Allocate(p, page.TypeHeap)
		if noD != no {
			t.Skipf("allocation order changed: %d vs %d", noD, no)
		}
		hd.Page().Insert([]byte("newer"))
		hd.MarkDirty(2)
		hd.Release()
		img, _, _ := Serialize(p, s1, src)
		Install(p, s2, dst, img)
		h2, _ := dst.Get(p, no)
		rec, err := h2.Page().Get(0)
		if err != nil || string(rec) != "newer" {
			t.Errorf("priming overwrote a resident page: %q %v", rec, err)
		}
		h2.Release()
	})
	k.Run(time.Minute)
}
