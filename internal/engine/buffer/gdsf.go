// GDSF (Greedy-Dual-Size-Frequency) eviction. Each resident frame has a
// priority L + freq × missCost, where missCost is the calibrated latency
// of the tier the page would actually fall to on re-fetch — the healthy
// extension (remote memory or SSD) for clean pages, the data file
// otherwise, plus the write-back a dirty victim must pay first. L is the
// classic Greedy-Dual inflation value: it rises to the priority of each
// evicted frame, so long-resident pages age out unless hits keep lifting
// them. The upshot over the clock sweep: when the extension tier is
// healthy, pages it can re-serve cheaply are sacrificed first, and
// frequently-hit pages whose only refuge is the disk hang on longest.
//
// The implementation is a lazy min-heap. The hit path is one counter
// increment (no heap movement — the concern that motivates epoch-based
// designs like vmcache's); priorities are recomputed only when an entry
// is popped. Each install pushes one entry stamped with the frame's seq;
// a popped entry whose seq or priority is out of date is discarded or
// re-queued at the fresh value, so at most one entry per frame is ever
// live.
package buffer

import (
	"time"

	"remotedb/internal/sim"
)

// Policy selects the pool's eviction policy.
type Policy int

const (
	// PolicyGDSF is the cost-aware Greedy-Dual-Size-Frequency heap (the
	// default).
	PolicyGDSF Policy = iota
	// PolicyClock is the legacy clock sweep, kept for A/B comparisons.
	PolicyClock
)

// gdsfEntry is one heap element: a frame index, the frame's seq at push
// time (stale entries are discarded), and the priority it was pushed at.
type gdsfEntry struct {
	idx int
	seq uint64
	pri float64
}

func (bp *Pool) heapPush(e gdsfEntry) {
	bp.gheap = append(bp.gheap, e)
	i := len(bp.gheap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if bp.gheap[parent].pri <= bp.gheap[i].pri {
			break
		}
		bp.gheap[parent], bp.gheap[i] = bp.gheap[i], bp.gheap[parent]
		i = parent
	}
}

func (bp *Pool) heapPop() (gdsfEntry, bool) {
	if len(bp.gheap) == 0 {
		return gdsfEntry{}, false
	}
	top := bp.gheap[0]
	last := len(bp.gheap) - 1
	bp.gheap[0] = bp.gheap[last]
	bp.gheap = bp.gheap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(bp.gheap) && bp.gheap[l].pri < bp.gheap[small].pri {
			small = l
		}
		if r < len(bp.gheap) && bp.gheap[r].pri < bp.gheap[small].pri {
			small = r
		}
		if small == i {
			break
		}
		bp.gheap[i], bp.gheap[small] = bp.gheap[small], bp.gheap[i]
		i = small
	}
	return top, true
}

// missCost is the latency a miss on this frame's page would pay: the
// tier the page falls to (extension when healthy, else the data file),
// plus the synchronous write-back a dirty victim costs on its way out.
func (bp *Pool) missCost(f *frame) float64 {
	var c time.Duration
	if bp.ExtensionHealthy() {
		c = bp.cfg.CostExt
	} else {
		c = bp.cfg.CostDisk
	}
	if f.dirty {
		c += bp.cfg.CostDisk
	}
	return float64(c)
}

// pri is the frame's current GDSF priority.
func (bp *Pool) pri(f *frame) float64 {
	return f.baseL + float64(f.freq)*bp.missCost(f)
}

// noteInstall registers a freshly-installed frame with the policy: reset
// its frequency, base it at the current inflation value, and push a heap
// entry under a new seq (orphaning any stale entry from a prior life).
func (bp *Pool) noteInstall(idx int) {
	if bp.cfg.Policy != PolicyGDSF {
		return
	}
	f := &bp.frames[idx]
	f.freq = 1
	f.baseL = bp.gL
	f.lastEpoch = bp.evictEpoch
	f.seq++
	bp.heapPush(gdsfEntry{idx: idx, seq: f.seq, pri: bp.pri(f)})
}

// gdsfFreqCap saturates the frequency term. Unbounded counts let a page
// that was hot in a bygone phase (bulk load, a finished scan) hold a
// priority the inflation value takes arbitrarily long to catch, so the
// pool fills with stale "hot" pages while the live working set evicts
// itself. Capped, any unreferenced frame ages out within about
// gdsfFreqCap evictions' worth of inflation.
const gdsfFreqCap = 32

// noteHit applies the GDSF access rule H = L + freq×missCost at hit
// time: re-anchor the frame at the current inflation value and bump its
// saturating frequency. Correlated references — repeated hits with no
// eviction in between, the signature of a bulk load filling one tail
// page — count as a single reference, so write-once append traffic
// cannot masquerade as a hot working set (the LRU-K correlated
// reference rule). No heap movement happens here (the hit path stays
// O(1)); the pop path re-queues entries whose current priority outgrew
// the value they were pushed at.
func (bp *Pool) noteHit(idx int) {
	if bp.cfg.Policy != PolicyGDSF {
		return
	}
	f := &bp.frames[idx]
	if f.lastEpoch != bp.evictEpoch && f.freq < gdsfFreqCap {
		f.freq++
	}
	f.lastEpoch = bp.evictEpoch
	f.baseL = bp.gL
}

// releaseFrame returns a frame that was handed out by victim but never
// installed (a failed fault, a prefetch that lost a race) to the free
// list. Clock mode needs nothing: its sweep finds invalid frames.
func (bp *Pool) releaseFrame(idx int) {
	if bp.cfg.Policy != PolicyGDSF {
		return
	}
	bp.free = append(bp.free, idx)
}

// victimGDSF finds a free frame: the free list first, then one bounded
// sweep over the heap per attempt. Sweeps that come up empty wait for a
// pin release and retry, exactly like the clock sweep.
func (bp *Pool) victimGDSF(p *sim.Proc) (int, error) {
	for attempt := 0; ; attempt++ {
		for len(bp.free) > 0 {
			idx := bp.free[len(bp.free)-1]
			bp.free = bp.free[:len(bp.free)-1]
			if !bp.frames[idx].valid {
				return idx, nil
			}
		}
		idx, ok, err := bp.gdsfSweep(p)
		if err != nil {
			return 0, err
		}
		if ok {
			return idx, nil
		}
		if attempt >= 3 {
			return 0, ErrNoFrames
		}
		// Every candidate pinned or busy: wait for a release.
		bp.avail.Wait(p)
	}
}

// gdsfSweep pops candidates in priority order until one eviction
// succeeds. Pinned entries — and entries whose eviction came back
// re-pinned or re-dirtied — are set aside and re-queued only when the
// sweep ends: re-pushing an un-evictable minimum immediately would hand
// it straight back to the next pop, and a handful of such entries would
// spin the entire pop budget away while hundreds of evictable frames
// sit behind them (exactly what happens when the pool turns almost all
// dirty under an update-heavy storm).
func (bp *Pool) gdsfSweep(p *sim.Proc) (idx int, ok bool, err error) {
	var skipped []gdsfEntry
	defer func() {
		for _, e := range skipped {
			bp.heapPush(e)
		}
	}()
	budget := 2 * len(bp.frames)
	for pops := 0; pops < budget; pops++ {
		e, popped := bp.heapPop()
		if !popped {
			return 0, false, nil
		}
		f := &bp.frames[e.idx]
		if !f.valid || f.seq != e.seq {
			continue // stale entry from a prior install
		}
		cur := bp.pri(f)
		if cur > e.pri {
			// Hits (or a dirty transition) raised the priority since
			// the entry was pushed: re-queue at the fresh value.
			bp.heapPush(gdsfEntry{idx: e.idx, seq: e.seq, pri: cur})
			continue
		}
		if f.pins > 0 {
			skipped = append(skipped, gdsfEntry{idx: e.idx, seq: e.seq, pri: cur})
			continue
		}
		evicted, eerr := bp.evict(p, e.idx)
		if eerr != nil {
			skipped = append(skipped, gdsfEntry{idx: e.idx, seq: e.seq, pri: cur})
			return 0, false, eerr
		}
		if evicted {
			// Lazy re-ranking means another entry's true priority may
			// sit below this one's; never let the inflation value move
			// backwards.
			if cur > bp.gL {
				bp.gL = cur
			}
			return e.idx, true, nil
		}
		// Re-pinned or re-dirtied while the eviction slept in I/O.
		skipped = append(skipped, gdsfEntry{idx: e.idx, seq: e.seq, pri: bp.pri(f)})
	}
	return 0, false, nil
}

// DebugGDSF reports the GDSF inflation value and live heap size
// (diagnostics; not part of the stable API).
func (bp *Pool) DebugGDSF() (gL float64, heapLen int) {
	return bp.gL, len(bp.gheap)
}
