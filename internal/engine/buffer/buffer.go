// Package buffer implements the engine's buffer pool: a fixed set of
// 8 KiB frames over the database file with clock-sweep eviction, a
// background lazy writer for dirty pages, and — the paper's scenario
// (i) — an optional buffer-pool extension (BPExt) holding clean evicted
// pages in a second-tier file that may live on SSD or in remote memory.
//
// The read path is RAM, then extension, then data file; the extension is
// strictly a performance tier and never compromises correctness — the
// paper's best-effort contract. When an access fails with
// vfs.ErrUnavailable the pool distinguishes two cases: a remote file in
// degraded mode (a stripe lost, re-lease in progress) keeps the tier
// attached and the access is simply a miss served from the data file,
// while a terminally unavailable backing file disables the tier for
// good. After a restripe, the salvage callback drops the mappings of
// the lost range (clean pages are re-readable from the data file) via
// InvalidateRange.
package buffer

import (
	"errors"
	"fmt"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/opt"
	"remotedb/internal/engine/page"
	"remotedb/internal/fault"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// Config parameterizes a pool.
type Config struct {
	Frames        int           // local frames (local memory / 8 KiB)
	PageAccessCPU time.Duration // latch + lookup cost per logical access
	WriterPeriod  time.Duration // lazy-writer cadence (0 disables)
	WriterBatch   int           // max dirty pages written per round

	// Policy selects the eviction policy: the cost-aware GDSF heap (the
	// default) or the legacy clock sweep, kept for A/B runs.
	Policy Policy
	// CostDisk and CostExt are the GDSF miss costs: the calibrated
	// latency of re-fetching a page from the data file vs from the
	// extension tier. Zero means "derive from the opt tier table"
	// (HDD random for the data file, remote memory for the extension).
	CostDisk time.Duration
	CostExt  time.Duration

	// BatchedIO enables the vectored hot paths: the lazy writer flushes
	// dirty batches with one scatter-gather write, evictions stash
	// extension puts in groups, and ReadAhead batch-faults scan windows.
	BatchedIO bool
	// Readahead is the sequential readahead window in pages that range
	// scans prefetch ahead of the cursor (0 disables readahead).
	Readahead int
	// AdaptiveReadahead ramps and shrinks the window from the observed
	// prefetch hit/waste ratio instead of always offering the full
	// Readahead: the window starts small, doubles while prefetched pages
	// keep getting demanded, and halves when they keep getting evicted
	// unused. Readahead is then the ceiling, not the constant.
	AdaptiveReadahead bool
}

// DefaultConfig returns a small pool with a 10 ms lazy writer, GDSF
// eviction, and batched I/O with an 8-page readahead window.
func DefaultConfig(frames int) Config {
	return Config{
		Frames:            frames,
		PageAccessCPU:     time.Microsecond,
		WriterPeriod:      10 * time.Millisecond,
		WriterBatch:       128,
		BatchedIO:         true,
		Readahead:         8,
		AdaptiveReadahead: true,
	}
}

// ErrNoFrames is returned when every frame is pinned.
var ErrNoFrames = errors.New("buffer: all frames pinned")

type frame struct {
	buf    []byte
	pageNo uint64
	valid  bool
	dirty  bool
	pins   int
	ref    bool   // clock reference bit
	ver    uint64 // bumped on MarkDirty; detects writes racing with I/O

	// prefetched marks a frame installed by ReadAhead and not yet
	// demanded: cleared (and counted a hit) by the first Get, counted
	// wasted if the frame is evicted still carrying it. The hit/waste
	// tally drives the adaptive window.
	prefetched bool

	// GDSF bookkeeping. The hit path is two field writes (saturating
	// freq bump, re-anchor baseL at the current inflation value);
	// priority is recomputed lazily when the heap pops the frame.
	freq      int64   // saturating access count (see gdsfFreqCap)
	baseL     float64 // inflation value L at install or last hit
	lastEpoch uint64  // eviction epoch of the last hit (correlated-ref guard)
	seq       uint64  // bumped per install; stale heap entries are discarded
}

// Stats counts pool activity.
type Stats struct {
	Hits       int64 // satisfied from RAM
	ExtHits    int64 // satisfied from the extension
	DiskReads  int64 // read from the data file
	EvictClean int64
	EvictDirty int64 // dirty victim written back synchronously
	WriterIO   int64 // pages written by the lazy writer
	ExtWrites  int64

	EvictWriteBytes int64 // bytes written back by synchronous evictions
	WriterBytes     int64 // bytes written back by the lazy writer
	ExtWriteBytes   int64 // bytes stashed into the extension
	ReadAheadPages  int64 // pages prefetched by ReadAhead
	ReadAheadHits   int64 // prefetched pages later demanded while resident
	ReadAheadWasted int64 // prefetched pages evicted without ever being demanded
	ExtSlow         int64 // extension accesses abandoned on a blown deadline budget
}

// Pool is the buffer pool.
type Pool struct {
	k      *sim.Kernel
	server *cluster.Server
	data   vfs.File
	cfg    Config

	frames   []frame
	table    map[uint64]int // pageNo -> frame index
	hand     int
	avail    *sim.Cond                 // signalled when a pin is released
	faulting map[uint64]*sim.WaitGroup // in-flight page faults

	ext         *Extension
	extPutSlots *sim.Resource // bounds in-flight async extension writes

	// Batched extension puts (cfg.BatchedIO): evictions append to the
	// queue and one background flusher drains it with a vectored write.
	// extPending is the read-through index over the queue: the latest
	// not-yet-flushed image per page, served straight from RAM so a
	// re-fault never falls to disk just because the put is still queued.
	extQueue   []extPut
	extPending map[uint64]extPut
	extCond    *sim.Cond
	extFlusher bool // flusher process started

	// GDSF state: a lazy min-heap of (frame, seq, priority) entries, the
	// inflation value L, the free list of invalid frames, and the global
	// eviction epoch (the correlated-reference clock for noteHit).
	gheap      []gdsfEntry
	gL         float64
	free       []int
	evictEpoch uint64

	// Adaptive-readahead state: the current window and the hit/waste
	// counter baselines of the last adjustment.
	raWin       int
	raBaseHit   int64
	raBaseWaste int64

	nextPageNo uint64
	writerStop bool

	Stats Stats
}

// New creates a pool over the data file. The pool commits its frame
// memory on the server (so brokered memory accounting sees it).
func New(p *sim.Proc, server *cluster.Server, data vfs.File, cfg Config) (*Pool, error) {
	if cfg.Frames <= 0 {
		return nil, errors.New("buffer: need at least one frame")
	}
	if err := server.CommitLocal(int64(cfg.Frames) * page.Size); err != nil {
		return nil, err
	}
	bp := &Pool{
		k:          p.Kernel(),
		server:     server,
		data:       data,
		cfg:        cfg,
		frames:     make([]frame, cfg.Frames),
		table:      make(map[uint64]int, cfg.Frames),
		faulting:   make(map[uint64]*sim.WaitGroup),
		nextPageNo: 1, // page 0 reserved
	}
	bp.avail = sim.NewCond(bp.k)
	// In batched mode the queue is drained by one flusher whose vectored
	// write can sleep a while; bound the in-flight puts by the pool size
	// so a burst of evictions during one flush does not overflow the
	// queue and silently drop pages from the extension.
	extSlots := 64
	if bp.cfg.BatchedIO && cfg.Frames > extSlots {
		extSlots = cfg.Frames
	}
	bp.extPutSlots = sim.NewResource(bp.k, "extput", extSlots)
	bp.extCond = sim.NewCond(bp.k)
	bp.extPending = make(map[uint64]extPut)
	if bp.cfg.CostDisk <= 0 {
		bp.cfg.CostDisk = opt.DefaultCosts()[opt.TierHDD].RandomPage
	}
	if bp.cfg.CostExt <= 0 {
		bp.cfg.CostExt = opt.DefaultCosts()[opt.TierRemote].RandomPage
	}
	bp.raWin = bp.cfg.Readahead
	if bp.cfg.AdaptiveReadahead && bp.raWin > 2 {
		bp.raWin = 2 // earn the full window by proving prefetches get used
	}
	for i := range bp.frames {
		bp.frames[i].buf = make([]byte, page.Size)
	}
	if bp.cfg.Policy == PolicyGDSF {
		// All frames start free; installs push them onto the heap.
		bp.free = make([]int, 0, cfg.Frames)
		for i := cfg.Frames - 1; i >= 0; i-- {
			bp.free = append(bp.free, i)
		}
	}
	if cfg.WriterPeriod > 0 {
		bp.k.Go("lazywriter", bp.writerLoop)
	}
	return bp, nil
}

// AttachExtension enables the BPExt on file (SSD or remote memory).
func (bp *Pool) AttachExtension(file vfs.File, slots int) {
	bp.ext = newExtension(file, slots)
	if bp.cfg.BatchedIO && !bp.extFlusher {
		bp.extFlusher = true
		bp.k.Go("ext-flush", bp.extFlushLoop)
	}
}

// Extension returns the attached extension, or nil.
func (bp *Pool) Extension() *Extension { return bp.ext }

// ExtensionHealthy reports whether the extension is attached and usable.
func (bp *Pool) ExtensionHealthy() bool { return bp.ext != nil && !bp.ext.disabled }

// Server returns the hosting server.
func (bp *Pool) Server() *cluster.Server { return bp.server }

// Frames returns the frame count.
func (bp *Pool) Frames() int { return bp.cfg.Frames }

// Handle is a pinned page.
type Handle struct {
	bp    *Pool
	idx   int
	freed bool
}

// Page views the pinned frame.
func (h *Handle) Page() *page.Page { return page.Wrap(h.bp.frames[h.idx].buf) }

// PageNo returns the pinned page's number.
func (h *Handle) PageNo() uint64 { return h.bp.frames[h.idx].pageNo }

// MarkDirty flags the frame for write-back and stamps the LSN.
func (h *Handle) MarkDirty(lsn uint64) {
	f := &h.bp.frames[h.idx]
	f.dirty = true
	f.ver++
	if lsn > 0 {
		h.Page().SetLSN(lsn)
	}
}

// Release unpins the page.
func (h *Handle) Release() {
	if h.freed {
		panic("buffer: double release")
	}
	h.freed = true
	f := &h.bp.frames[h.idx]
	if f.pins <= 0 {
		panic("buffer: release of unpinned frame")
	}
	f.pins--
	if f.pins == 0 {
		h.bp.avail.Signal()
	}
}

// Allocate creates a brand-new page of type t, pinned and dirty.
func (bp *Pool) Allocate(p *sim.Proc, t page.Type) (*Handle, uint64, error) {
	no := bp.nextPageNo
	bp.nextPageNo++
	idx, err := bp.victim(p)
	if err != nil {
		return nil, 0, err
	}
	f := &bp.frames[idx]
	f.pageNo = no
	f.valid = true
	f.dirty = true
	f.pins = 1
	f.ref = true
	f.prefetched = false
	bp.table[no] = idx
	bp.noteInstall(idx)
	pg := page.Wrap(f.buf)
	pg.Init(no, t)
	return &Handle{bp: bp, idx: idx}, no, nil
}

// PageCount returns the number of allocated pages.
func (bp *Pool) PageCount() uint64 { return bp.nextPageNo - 1 }

// Get pins the page, faulting it in from the extension or data file.
func (bp *Pool) Get(p *sim.Proc, pageNo uint64) (*Handle, error) {
	bp.server.Work(p, bp.cfg.PageAccessCPU)
	for {
		if idx, ok := bp.table[pageNo]; ok {
			f := &bp.frames[idx]
			f.pins++
			f.ref = true
			if f.prefetched {
				f.prefetched = false
				bp.Stats.ReadAheadHits++
			}
			bp.noteHit(idx)
			bp.Stats.Hits++
			return &Handle{bp: bp, idx: idx}, nil
		}
		wg, inflight := bp.faulting[pageNo]
		if !inflight {
			break
		}
		// Another process is faulting this page in; piggyback on it.
		wg.Wait(p)
	}
	wg := sim.NewWaitGroup(bp.k)
	wg.Add(1)
	bp.faulting[pageNo] = wg
	defer func() {
		delete(bp.faulting, pageNo)
		wg.Done()
	}()

	idx, err := bp.victim(p)
	if err != nil {
		return nil, err
	}
	f := &bp.frames[idx]
	// Reserve the frame before sleeping in I/O so concurrent sweeps
	// cannot hand it out twice.
	f.pins = 1
	f.valid = true
	f.pageNo = pageNo
	f.dirty = false
	f.ver++
	f.prefetched = false
	// Fault the image in: extension first, then the data file.
	fromExt := false
	if bp.ExtensionHealthy() {
		if pu, queued := bp.extPending[pageNo]; queued {
			// The put is still in the flusher's queue: read through the
			// queued image (it is in RAM) instead of falling to disk.
			copy(f.buf, pu.img)
			fromExt = true
			bp.ext.Hits++
			bp.Stats.ExtHits++
		}
	}
	if !fromExt && bp.ExtensionHealthy() {
		ok, err := bp.ext.tryGet(p, pageNo, f.buf)
		if err != nil {
			// The cached copy is unreachable; drop the mapping so a later
			// (possibly restriped) read cannot see a stale image.
			bp.ext.invalidate(pageNo)
			bp.extFailed(err)
		} else if ok {
			fromExt = true
			bp.Stats.ExtHits++
		}
	}
	if !fromExt {
		if err := bp.data.ReadAt(p, f.buf, int64(pageNo)*page.Size); err != nil {
			f.valid = false
			f.pins = 0
			bp.releaseFrame(idx)
			return nil, fmt.Errorf("buffer: data read: %w", err)
		}
		bp.Stats.DiskReads++
	}
	f.ref = true
	bp.table[pageNo] = idx
	bp.noteInstall(idx)
	return &Handle{bp: bp, idx: idx}, nil
}

// victim finds a free frame under the configured eviction policy; it
// blocks if every frame is pinned and fails only if that persists.
func (bp *Pool) victim(p *sim.Proc) (int, error) {
	if bp.cfg.Policy == PolicyClock {
		return bp.victimClock(p)
	}
	return bp.victimGDSF(p)
}

// victimClock is the legacy clock sweep, kept behind PolicyClock for
// A/B runs against GDSF.
func (bp *Pool) victimClock(p *sim.Proc) (int, error) {
	for attempt := 0; ; attempt++ {
		for sweep := 0; sweep < 2*len(bp.frames); sweep++ {
			f := &bp.frames[bp.hand]
			idx := bp.hand
			bp.hand = (bp.hand + 1) % len(bp.frames)
			if !f.valid {
				return idx, nil
			}
			if f.pins > 0 {
				continue
			}
			if f.ref {
				f.ref = false
				continue
			}
			ok, err := bp.evict(p, idx)
			if err != nil {
				return 0, err
			}
			if ok {
				return idx, nil
			}
			// Someone re-pinned or re-dirtied the frame mid-eviction;
			// keep sweeping.
		}
		if attempt >= 3 {
			return 0, ErrNoFrames
		}
		// Every frame pinned: wait for a release.
		bp.avail.Wait(p)
	}
}

// evict writes back a dirty victim, stashes the (now clean) image in the
// extension, and frees the frame. It reports ok=false when a concurrent
// pin or modification raced with the I/O, in which case the frame is
// left cached and the caller must pick another victim.
func (bp *Pool) evict(p *sim.Proc, idx int) (bool, error) {
	f := &bp.frames[idx]
	f.pins++ // guard: concurrent sweeps and the writer skip pinned frames
	if f.dirty {
		v0 := f.ver
		pg := page.Wrap(f.buf)
		pg.Seal()
		if err := bp.data.WriteAt(p, f.buf, int64(f.pageNo)*page.Size); err != nil {
			f.pins--
			return false, fmt.Errorf("buffer: writeback: %w", err)
		}
		if f.ver != v0 {
			// Modified during the write: still dirty, cannot evict now.
			f.pins--
			return false, nil
		}
		f.dirty = false
		bp.Stats.EvictDirty++
		bp.Stats.EvictWriteBytes += page.Size
	} else {
		bp.Stats.EvictClean++
	}
	if bp.ExtensionHealthy() {
		// Any existing extension copy predates this eviction's image:
		// drop the mapping now so a dropped or late async put can never
		// leave a stale page serving reads.
		bp.ext.invalidate(f.pageNo)
		bp.ext.putVer[f.pageNo]++
		ver := bp.ext.putVer[f.pageNo]
		// Stash the clean image in the extension asynchronously (SQL
		// Server's BPExt writes happen off the eviction critical path).
		// Bounded in-flight puts; when saturated the page simply is not
		// cached — insertion is best-effort. With BatchedIO the image
		// joins the flusher's queue and ships in a vectored group write;
		// otherwise a per-page goroutine writes it.
		gotSlot := bp.extPutSlots.TryAcquire(1)
		if !gotSlot && bp.cfg.BatchedIO && !bp.extDegraded() {
			// Queue full: wait for the flusher to swap it out rather than
			// dropping the page — a dropped page costs a spindle seek on
			// its next fault, far worse than a short write-throttle stall.
			// Unless the extension file is degraded: then the flusher may
			// be stuck in retry/failover and blocking here would back
			// every eviction (and every faulting client's pinned frame)
			// up behind it, so insertion reverts to best-effort drops.
			bp.extPutSlots.Acquire(p, 1)
			gotSlot = true
		}
		if gotSlot {
			img := make([]byte, page.Size)
			copy(img, f.buf)
			pageNo := f.pageNo
			if bp.cfg.BatchedIO {
				pu := extPut{pageNo: pageNo, img: img, ver: ver}
				bp.extQueue = append(bp.extQueue, pu)
				bp.extPending[pageNo] = pu
				bp.extCond.Signal()
			} else {
				bp.k.Go("ext-put", func(ep *sim.Proc) {
					defer bp.extPutSlots.Release(1)
					if !bp.ExtensionHealthy() {
						return
					}
					if err := bp.ext.put(ep, pageNo, img, ver); err != nil {
						bp.extFailed(err)
					} else {
						bp.Stats.ExtWrites++
						bp.Stats.ExtWriteBytes += page.Size
					}
				})
			}
		}
	}
	f.pins--
	if f.pins > 0 || f.dirty {
		// Re-pinned (or re-dirtied) while we slept in I/O: keep it.
		return false, nil
	}
	if f.prefetched {
		f.prefetched = false
		bp.Stats.ReadAheadWasted++
	}
	delete(bp.table, f.pageNo)
	f.valid = false
	bp.evictEpoch++
	return true, nil
}

// extFailed decides the extension's fate after an access error. A
// degraded remote file (stripe lost but a re-lease is in progress) keeps
// the tier attached — the access already fell back to the data file, and
// the restripe will restore service. A detected-corrupt block likewise
// keeps the tier: the integrity layer already refused to serve the bad
// bytes (this access fell back to the data file), poisoned the block,
// and salvage/overwrite will heal it. A deadline-budget miss
// (fault.ErrSlow) is transient by definition — the donor was slow, not
// gone — so it never disables the tier: this access fell back to the
// data file and the next one retries remote. Anything terminal disables
// the tier for good (best-effort semantics: the engine keeps running
// off the data file).
func (bp *Pool) extFailed(err error) {
	if bp.ext == nil {
		return
	}
	if fault.Slow(err) {
		bp.Stats.ExtSlow++
		return
	}
	if errors.Is(err, vfs.ErrUnavailable) || errors.Is(err, vfs.ErrCorrupt) {
		if u, ok := bp.ext.file.(interface{ Unavailable() bool }); ok && !u.Unavailable() {
			return // degraded, not dead: repair is pending
		}
	}
	bp.ext.disabled = true
}

// writerLoop is the lazy writer: it flushes dirty unpinned pages in the
// background so foreground evictions rarely stall on a write.
func (bp *Pool) writerLoop(p *sim.Proc) {
	for !bp.writerStop {
		p.Sleep(bp.cfg.WriterPeriod)
		if bp.cfg.BatchedIO {
			bp.writerFlushBatch(p)
			continue
		}
		written := 0
		for i := range bp.frames {
			if written >= bp.cfg.WriterBatch {
				break
			}
			f := &bp.frames[i]
			if !f.valid || !f.dirty || f.pins > 0 {
				continue
			}
			f.pins++
			v0 := f.ver
			pg := page.Wrap(f.buf)
			pg.Seal()
			err := bp.data.WriteAt(p, f.buf, int64(f.pageNo)*page.Size)
			f.pins--
			if f.pins == 0 {
				bp.avail.Signal()
			}
			if err == nil && f.ver == v0 {
				f.dirty = false
				bp.Stats.WriterIO++
				bp.Stats.WriterBytes += page.Size
				written++
			}
		}
	}
}

// StopWriter terminates the lazy writer (used at shutdown in tests).
func (bp *Pool) StopWriter() { bp.writerStop = true }

// FlushAll synchronously writes every dirty page (checkpoint).
func (bp *Pool) FlushAll(p *sim.Proc) error {
	for i := range bp.frames {
		f := &bp.frames[i]
		if !f.valid || !f.dirty {
			continue
		}
		pg := page.Wrap(f.buf)
		pg.Seal()
		if err := bp.data.WriteAt(p, f.buf, int64(f.pageNo)*page.Size); err != nil {
			return err
		}
		f.dirty = false
	}
	return nil
}

// ResidentPages returns the page numbers currently cached in RAM, in
// frame order — the input to buffer-pool priming (scenario iv).
func (bp *Pool) ResidentPages() []uint64 {
	var out []uint64
	for i := range bp.frames {
		if bp.frames[i].valid {
			out = append(out, bp.frames[i].pageNo)
		}
	}
	return out
}

// InRAM reports whether a page is cached in a frame.
func (bp *Pool) InRAM(pageNo uint64) bool {
	_, ok := bp.table[pageNo]
	return ok
}

// PrimeInstall force-loads a page image into the pool (used by the
// priming scenario); it is a no-op if the page is already resident.
func (bp *Pool) PrimeInstall(p *sim.Proc, pageNo uint64, img []byte) error {
	if bp.InRAM(pageNo) {
		return nil
	}
	idx, err := bp.victim(p)
	if err != nil {
		return err
	}
	f := &bp.frames[idx]
	copy(f.buf, img)
	f.pageNo = pageNo
	f.valid = true
	f.dirty = false
	f.pins = 0
	f.ref = true
	f.prefetched = false
	bp.table[pageNo] = idx
	bp.noteInstall(idx)
	return nil
}

// --- Extension ----------------------------------------------------------

// Extension is the second cache tier: a slot array in a file.
type Extension struct {
	file     vfs.File
	slots    int
	table    map[uint64]int    // pageNo -> slot
	slotPage []uint64          // slot -> pageNo (0 = free)
	putVer   map[uint64]uint64 // latest scheduled put per page
	hand     int
	disabled bool

	Hits, Misses, Puts int64
}

func newExtension(file vfs.File, slots int) *Extension {
	return &Extension{
		file:     file,
		slots:    slots,
		table:    make(map[uint64]int, slots),
		slotPage: make([]uint64, slots),
		putVer:   make(map[uint64]uint64),
	}
}

// Slots returns the extension capacity in pages.
func (e *Extension) Slots() int { return e.slots }

// Cached returns the number of pages currently in the extension.
func (e *Extension) Cached() int { return len(e.table) }

func (e *Extension) tryGet(p *sim.Proc, pageNo uint64, dst []byte) (bool, error) {
	slot, ok := e.table[pageNo]
	if !ok {
		e.Misses++
		return false, nil
	}
	if err := e.file.ReadAt(p, dst, int64(slot)*page.Size); err != nil {
		return false, err
	}
	e.Hits++
	return true, nil
}

func (e *Extension) put(p *sim.Proc, pageNo uint64, src []byte, ver uint64) error {
	if e.putVer[pageNo] != ver {
		return nil // superseded by a newer eviction's image
	}
	slot, ok := e.table[pageNo]
	if !ok {
		slot = e.allocSlot()
		e.slotPage[slot] = pageNo
	}
	if err := e.file.WriteAt(p, src, int64(slot)*page.Size); err != nil {
		delete(e.table, pageNo)
		e.slotPage[slot] = 0
		return err
	}
	// Install (or refresh) the mapping only if still the latest image.
	if e.putVer[pageNo] == ver {
		e.table[pageNo] = slot
	} else {
		e.slotPage[slot] = 0
	}
	e.Puts++
	return nil
}

// invalidate drops the mapping for pageNo (the slot becomes free).
func (e *Extension) invalidate(pageNo uint64) {
	if slot, ok := e.table[pageNo]; ok {
		delete(e.table, pageNo)
		e.slotPage[slot] = 0
	}
}

// InvalidateRange drops every slot mapping whose backing bytes fall in
// [off, off+n) of the extension file and returns the number dropped.
// This is the buffer-pool extension's salvage after a stripe of its
// remote file was lost and re-leased: the cached pages there are gone
// (the replacement region is zeroed), but every one of them was clean,
// so forgetting the mappings is a complete recovery — future reads fall
// through to the data file and repopulate naturally.
func (e *Extension) InvalidateRange(off, n int64) int {
	lo := off / page.Size
	hi := (off + n + page.Size - 1) / page.Size
	if hi > int64(e.slots) {
		hi = int64(e.slots)
	}
	dropped := 0
	for slot := lo; slot >= 0 && slot < hi; slot++ {
		if pn := e.slotPage[slot]; pn != 0 {
			delete(e.table, pn)
			e.slotPage[slot] = 0
			dropped++
		}
	}
	return dropped
}

// Revive re-enables a disabled extension after its backing file was
// repaired. Callers must have invalidated any mappings that pointed at
// lost data first.
func (e *Extension) Revive() { e.disabled = false }

// allocSlot finds a free slot or reclaims the next occupied one (FIFO
// sweep), evicting its mapping.
func (e *Extension) allocSlot() int {
	for i := 0; i < e.slots; i++ {
		s := e.hand
		e.hand = (e.hand + 1) % e.slots
		if e.slotPage[s] == 0 {
			return s
		}
	}
	s := e.hand
	e.hand = (e.hand + 1) % e.slots
	delete(e.table, e.slotPage[s])
	e.slotPage[s] = 0
	return s
}
