package buffer

import (
	"fmt"
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/page"
	"remotedb/internal/hw/disk"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

func rig(k *sim.Kernel) (*cluster.Server, vfs.File) {
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 256 << 20
	s := cluster.NewServer(k, "db1", cfg)
	return s, vfs.NewDeviceFile("data", s.HDD)
}

// newPool builds a pool with no lazy writer unless asked.
func newPool(p *sim.Proc, s *cluster.Server, data vfs.File, frames int, writer bool) *Pool {
	cfg := DefaultConfig(frames)
	if !writer {
		cfg.WriterPeriod = 0
	}
	bp, err := New(p, s, data, cfg)
	if err != nil {
		panic(err)
	}
	return bp
}

func TestAllocateAndGet(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 16, false)
		h, no, err := bp.Allocate(p, page.TypeHeap)
		if err != nil {
			t.Error(err)
			return
		}
		h.Page().Insert([]byte("hello"))
		h.MarkDirty(1)
		h.Release()

		h2, err := bp.Get(p, no)
		if err != nil {
			t.Error(err)
			return
		}
		rec, _ := h2.Page().Get(0)
		if string(rec) != "hello" {
			t.Errorf("rec = %q", rec)
		}
		h2.Release()
		if bp.Stats.Hits != 1 {
			t.Errorf("hits = %d", bp.Stats.Hits)
		}
	})
	k.Run(time.Minute)
}

func TestEvictionWritesBackDirty(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 4, false)
		var pages []uint64
		// Create 8 dirty pages in a 4-frame pool: forces dirty evictions.
		for i := 0; i < 8; i++ {
			h, no, err := bp.Allocate(p, page.TypeHeap)
			if err != nil {
				t.Error(err)
				return
			}
			h.Page().Insert([]byte(fmt.Sprintf("page-%d", i)))
			h.MarkDirty(uint64(i + 1))
			h.Release()
			pages = append(pages, no)
		}
		if bp.Stats.EvictDirty == 0 {
			t.Error("expected dirty evictions")
		}
		// Every page must read back intact (from RAM or data file).
		for i, no := range pages {
			h, err := bp.Get(p, no)
			if err != nil {
				t.Error(err)
				return
			}
			rec, err := h.Page().Get(0)
			if err != nil || string(rec) != fmt.Sprintf("page-%d", i) {
				t.Errorf("page %d content %q err %v", no, rec, err)
			}
			h.Release()
		}
	})
	k.Run(time.Minute)
}

func TestExtensionServesEvictedPages(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 4, false)
		ext := vfs.NewDeviceFile("ext", s.SSD)
		bp.AttachExtension(ext, 64)
		var pages []uint64
		for i := 0; i < 12; i++ {
			h, no, _ := bp.Allocate(p, page.TypeHeap)
			h.Page().Insert([]byte{byte(i)})
			h.MarkDirty(1)
			h.Release()
			pages = append(pages, no)
		}
		bp.Stats.DiskReads = 0
		// Re-read the early (evicted) pages: they should come from the
		// extension, not the data file.
		for _, no := range pages[:6] {
			h, err := bp.Get(p, no)
			if err != nil {
				t.Error(err)
				return
			}
			h.Release()
		}
		if bp.Stats.ExtHits == 0 {
			t.Error("extension never hit")
		}
		if bp.Stats.DiskReads != 0 {
			t.Errorf("disk reads = %d, want 0 (all in ext)", bp.Stats.DiskReads)
		}
	})
	k.Run(time.Minute)
}

func TestExtensionFailureFallsBack(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 4, false)
		ext := &failingFile{}
		bp.AttachExtension(ext, 64)
		var pages []uint64
		for i := 0; i < 12; i++ {
			h, no, _ := bp.Allocate(p, page.TypeHeap)
			h.Page().Insert([]byte{byte(i)})
			h.MarkDirty(1)
			h.Release()
			pages = append(pages, no)
		}
		if bp.ExtensionHealthy() {
			t.Error("extension should be disabled after failure")
		}
		// Everything still readable from the data file.
		for i, no := range pages {
			h, err := bp.Get(p, no)
			if err != nil {
				t.Errorf("get %d: %v", no, err)
				return
			}
			rec, _ := h.Page().Get(0)
			if len(rec) != 1 || rec[0] != byte(i) {
				t.Errorf("page %d corrupted", no)
			}
			h.Release()
		}
	})
	k.Run(time.Minute)
}

// failingFile always reports the backing store gone.
type failingFile struct{}

func (f *failingFile) Name() string                                  { return "failing" }
func (f *failingFile) ReadAt(p *sim.Proc, b []byte, off int64) error { return vfs.ErrUnavailable }
func (f *failingFile) WriteAt(p *sim.Proc, b []byte, off int64) error {
	return vfs.ErrUnavailable
}
func (f *failingFile) Size() int64             { return 0 }
func (f *failingFile) Close(p *sim.Proc) error { return nil }

func TestAllFramesPinned(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 2, false)
		h1, _, _ := bp.Allocate(p, page.TypeHeap)
		h2, _, _ := bp.Allocate(p, page.TypeHeap)
		// A third allocation must block until a release; arrange one.
		k.Go("releaser", func(rp *sim.Proc) {
			rp.Sleep(time.Millisecond)
			h1.Release()
		})
		h3, _, err := bp.Allocate(p, page.TypeHeap)
		if err != nil {
			t.Error(err)
			return
		}
		if p.Now() < time.Millisecond {
			t.Error("allocate should have blocked until release")
		}
		h2.Release()
		h3.Release()
	})
	k.Run(time.Minute)
}

func TestConcurrentFaultsSinglePage(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 8, false)
		h, no, _ := bp.Allocate(p, page.TypeHeap)
		h.Page().Insert([]byte("shared"))
		h.MarkDirty(1)
		h.Release()
		// Evict it by cycling other pages through.
		for i := 0; i < 16; i++ {
			hh, _, _ := bp.Allocate(p, page.TypeHeap)
			hh.Release()
		}
		if bp.InRAM(no) {
			t.Error("setup: page should be evicted")
			return
		}
		// 10 concurrent readers fault the same page; it must be read from
		// disk exactly once.
		done := sim.NewWaitGroup(k)
		done.Add(10)
		bp.Stats.DiskReads = 0
		for i := 0; i < 10; i++ {
			k.Go("reader", func(rp *sim.Proc) {
				hh, err := bp.Get(rp, no)
				if err != nil {
					t.Error(err)
				} else {
					rec, _ := hh.Page().Get(0)
					if string(rec) != "shared" {
						t.Errorf("reader saw %q", rec)
					}
					hh.Release()
				}
				done.Done()
			})
		}
		done.Wait(p)
		if bp.Stats.DiskReads != 1 {
			t.Errorf("disk reads = %d, want 1 (fault coalescing)", bp.Stats.DiskReads)
		}
	})
	k.Run(time.Minute)
}

func TestLazyWriterCleansDirtyPages(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 16, true)
		for i := 0; i < 8; i++ {
			h, _, _ := bp.Allocate(p, page.TypeHeap)
			h.MarkDirty(1)
			h.Release()
		}
		p.Sleep(500 * time.Millisecond)
		if bp.Stats.WriterIO == 0 {
			t.Error("lazy writer never wrote")
		}
		bp.StopWriter()
	})
	k.Run(2 * time.Second)
}

func TestFlushAll(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 16, false)
		h, no, _ := bp.Allocate(p, page.TypeHeap)
		h.Page().Insert([]byte("persist me"))
		h.MarkDirty(1)
		h.Release()
		if err := bp.FlushAll(p); err != nil {
			t.Error(err)
			return
		}
		// Read the raw file image: the record must be there.
		buf := make([]byte, page.Size)
		data.ReadAt(p, buf, int64(no)*page.Size)
		pg := page.Wrap(buf)
		if err := pg.Verify(); err != nil {
			t.Errorf("flushed page fails checksum: %v", err)
		}
		rec, err := pg.Get(0)
		if err != nil || string(rec) != "persist me" {
			t.Errorf("flushed image wrong: %q %v", rec, err)
		}
	})
	k.Run(time.Minute)
}

func TestPrimeInstall(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 8, false)
		img := make([]byte, page.Size)
		pg := page.Wrap(img)
		pg.Init(42, page.TypeHeap)
		pg.Insert([]byte("primed"))
		if err := bp.PrimeInstall(p, 42, img); err != nil {
			t.Error(err)
			return
		}
		if !bp.InRAM(42) {
			t.Error("primed page not resident")
		}
		bp.Stats.DiskReads = 0
		h, _ := bp.Get(p, 42)
		rec, _ := h.Page().Get(0)
		if string(rec) != "primed" {
			t.Errorf("primed content = %q", rec)
		}
		h.Release()
		if bp.Stats.DiskReads != 0 {
			t.Error("primed page should not hit disk")
		}
	})
	k.Run(time.Minute)
}

func TestResidentPages(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 8, false)
		for i := 0; i < 5; i++ {
			h, _, _ := bp.Allocate(p, page.TypeHeap)
			h.Release()
		}
		if got := len(bp.ResidentPages()); got != 5 {
			t.Errorf("resident = %d, want 5", got)
		}
	})
	k.Run(time.Minute)
}

func TestPoolCommitsMemory(t *testing.T) {
	k := sim.New(1)
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 1 << 20 // 1 MiB: fits 128 pages max
	s := cluster.NewServer(k, "tiny", cfg)
	data := vfs.NewDeviceFile("data", disk.NullDevice{DeviceName: "null"})
	k.Go("t", func(p *sim.Proc) {
		if _, err := New(p, s, data, DefaultConfig(1000)); err == nil {
			t.Error("pool larger than server memory should fail")
		}
		if _, err := New(p, s, data, DefaultConfig(64)); err != nil {
			t.Errorf("pool within memory failed: %v", err)
		}
	})
	k.Run(time.Minute)
}

func TestDoubleReleasePanics(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 4, false)
		h, _, _ := bp.Allocate(p, page.TypeHeap)
		h.Release()
		defer func() {
			if recover() == nil {
				t.Error("double release should panic")
			}
		}()
		h.Release()
	})
	k.Run(time.Minute)
}
