package buffer

import (
	"fmt"
	"testing"
	"time"

	"remotedb/internal/engine/page"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// seedPages allocates n dirty pages and flushes them so the data file
// holds every image; returns the page numbers.
func seedPages(t *testing.T, p *sim.Proc, bp *Pool, n int) []uint64 {
	t.Helper()
	var pages []uint64
	for i := 0; i < n; i++ {
		h, no, err := bp.Allocate(p, page.TypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		h.Page().Insert([]byte(fmt.Sprintf("page-%d", i)))
		h.MarkDirty(uint64(i + 1))
		h.Release()
		pages = append(pages, no)
	}
	if err := bp.FlushAll(p); err != nil {
		t.Fatal(err)
	}
	return pages
}

// skewedRun drives a hot-set-plus-scan workload: each round touches the
// hot pages twice, then scans a fresh slice of cold pages once — the
// scan-pollution pattern a recency-only clock is blind to.
func skewedRun(t *testing.T, p *sim.Proc, bp *Pool, pages []uint64, rounds, hot, scan int) {
	t.Helper()
	cold := pages[hot:]
	for r := 0; r < rounds; r++ {
		for rep := 0; rep < 2; rep++ {
			for _, no := range pages[:hot] {
				h, err := bp.Get(p, no)
				if err != nil {
					t.Fatal(err)
				}
				h.Release()
			}
		}
		for i := 0; i < scan; i++ {
			no := cold[(r*scan+i)%len(cold)]
			h, err := bp.Get(p, no)
			if err != nil {
				t.Fatal(err)
			}
			h.Release()
		}
	}
}

func TestGDSFBeatsClockOnSkewedWorkload(t *testing.T) {
	run := func(pol Policy) (hits, misses int64) {
		k := sim.New(1)
		s, data := rig(k)
		k.Go("t", func(p *sim.Proc) {
			cfg := DefaultConfig(8)
			cfg.WriterPeriod = 0
			cfg.Policy = pol
			bp, err := New(p, s, data, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			pages := seedPages(t, p, bp, 64)
			bp.Stats = Stats{}
			skewedRun(t, p, bp, pages, 20, 4, 8)
			hits = bp.Stats.Hits
			misses = bp.Stats.DiskReads
		})
		k.Run(time.Minute)
		return hits, misses
	}
	gHits, gMiss := run(PolicyGDSF)
	cHits, cMiss := run(PolicyClock)
	if gHits <= cHits {
		t.Errorf("GDSF hits = %d, clock hits = %d: GDSF should keep the hot set", gHits, cHits)
	}
	if gMiss >= cMiss {
		t.Errorf("GDSF disk reads = %d, clock = %d: GDSF should fault less", gMiss, cMiss)
	}
}

func TestClockPolicyStillCorrect(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		cfg := DefaultConfig(4)
		cfg.WriterPeriod = 0
		cfg.Policy = PolicyClock
		bp, err := New(p, s, data, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		pages := seedPages(t, p, bp, 12)
		for i, no := range pages {
			h, err := bp.Get(p, no)
			if err != nil {
				t.Error(err)
				return
			}
			rec, _ := h.Page().Get(0)
			if string(rec) != fmt.Sprintf("page-%d", i) {
				t.Errorf("page %d = %q", no, rec)
			}
			h.Release()
		}
	})
	k.Run(time.Minute)
}

func TestEvictCountsWriteBackBytes(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 4, false)
		// 12 dirty pages through 4 frames: every eviction is dirty.
		for i := 0; i < 12; i++ {
			h, _, err := bp.Allocate(p, page.TypeHeap)
			if err != nil {
				t.Error(err)
				return
			}
			h.MarkDirty(uint64(i + 1))
			h.Release()
		}
		if bp.Stats.EvictDirty == 0 {
			t.Fatal("no dirty evictions")
		}
		if want := bp.Stats.EvictDirty * page.Size; bp.Stats.EvictWriteBytes != want {
			t.Errorf("EvictWriteBytes = %d, want %d (%d dirty evictions)",
				bp.Stats.EvictWriteBytes, want, bp.Stats.EvictDirty)
		}
	})
	k.Run(time.Minute)
}

func TestBatchedWriterCountsBytes(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 16, true) // writer on, BatchedIO default
		for i := 0; i < 8; i++ {
			h, _, err := bp.Allocate(p, page.TypeHeap)
			if err != nil {
				t.Error(err)
				return
			}
			h.MarkDirty(uint64(i + 1))
			h.Release()
		}
		p.Sleep(100 * time.Millisecond)
		bp.StopWriter()
		if bp.Stats.WriterIO == 0 {
			t.Fatal("batched lazy writer wrote nothing")
		}
		if want := bp.Stats.WriterIO * page.Size; bp.Stats.WriterBytes != want {
			t.Errorf("WriterBytes = %d, want %d", bp.Stats.WriterBytes, want)
		}
	})
	k.Run(time.Minute)
}

func TestBatchedExtPutsCountBytes(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 4, false)
		bp.AttachExtension(vfs.NewDeviceFile("ext", s.SSD), 64)
		seedPages(t, p, bp, 12)
		p.Sleep(time.Millisecond) // let the flusher drain the queue
		if bp.Stats.ExtWrites == 0 {
			t.Fatal("no batched extension puts")
		}
		if want := bp.Stats.ExtWrites * page.Size; bp.Stats.ExtWriteBytes != want {
			t.Errorf("ExtWriteBytes = %d, want %d", bp.Stats.ExtWriteBytes, want)
		}
	})
	k.Run(time.Minute)
}

func TestReadAheadInstallsWindow(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 16, false)
		pages := seedPages(t, p, bp, 32) // early pages evicted
		var absent []uint64
		for _, no := range pages {
			if !bp.InRAM(no) {
				absent = append(absent, no)
			}
			if len(absent) == 4 {
				break
			}
		}
		if len(absent) == 0 {
			t.Fatal("every page resident; cannot exercise readahead")
		}
		before := bp.Stats.DiskReads
		n := bp.ReadAhead(p, absent)
		if n != len(absent) {
			t.Errorf("ReadAhead installed %d, want %d", n, len(absent))
		}
		if bp.Stats.DiskReads != before {
			t.Errorf("ReadAhead counted DiskReads (%d -> %d)", before, bp.Stats.DiskReads)
		}
		if bp.Stats.ReadAheadPages != int64(len(absent)) {
			t.Errorf("ReadAheadPages = %d, want %d", bp.Stats.ReadAheadPages, len(absent))
		}
		hits0 := bp.Stats.Hits
		for _, no := range absent {
			h, err := bp.Get(p, no)
			if err != nil {
				t.Error(err)
				return
			}
			h.Release()
		}
		if got := bp.Stats.Hits - hits0; got != int64(len(absent)) {
			t.Errorf("post-readahead hits = %d, want %d", got, len(absent))
		}
		if bp.Stats.DiskReads != before {
			t.Errorf("Gets after readahead still faulted (%d -> %d)", before, bp.Stats.DiskReads)
		}
	})
	k.Run(time.Minute)
}

func TestReadAheadSkipsUnallocatedAndResident(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 16, false)
		pages := seedPages(t, p, bp, 8) // all resident in 16 frames
		resident := pages[0]
		if !bp.InRAM(resident) {
			t.Fatal("expected page resident")
		}
		n := bp.ReadAhead(p, []uint64{resident, 9999, 0})
		if n != 0 {
			t.Errorf("ReadAhead installed %d pages, want 0 (resident, unallocated, page 0)", n)
		}
	})
	k.Run(time.Minute)
}

func TestReadAheadDisabledWithoutBatchedIO(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		cfg := DefaultConfig(16)
		cfg.WriterPeriod = 0
		cfg.BatchedIO = false
		bp, err := New(p, s, data, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if bp.ReadaheadPages() != 0 {
			t.Errorf("ReadaheadPages = %d, want 0 with BatchedIO off", bp.ReadaheadPages())
		}
		seedPages(t, p, bp, 32)
		if n := bp.ReadAheadWindow(p, 1, 0); n != 0 {
			t.Errorf("ReadAheadWindow installed %d with readahead disabled", n)
		}
	})
	k.Run(time.Minute)
}
