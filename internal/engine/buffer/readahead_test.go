package buffer

import (
	"testing"
	"time"

	"remotedb/internal/sim"
)

func TestReadAheadHitWasteAccounting(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		bp := newPool(p, s, data, 16, false)
		pages := seedPages(t, p, bp, 48)
		var absent []uint64
		for _, no := range pages {
			if !bp.InRAM(no) {
				absent = append(absent, no)
			}
			if len(absent) == 4 {
				break
			}
		}
		if len(absent) < 4 {
			t.Fatal("not enough absent pages to exercise readahead")
		}
		bp.Stats = Stats{}
		if n := bp.ReadAhead(p, absent); n != 4 {
			t.Fatalf("ReadAhead installed %d, want 4", n)
		}
		// Demanding a prefetched page settles it as a hit, once.
		for r := 0; r < 2; r++ {
			for _, no := range absent[:2] {
				h, err := bp.Get(p, no)
				if err != nil {
					t.Error(err)
					return
				}
				h.Release()
			}
		}
		if bp.Stats.ReadAheadHits != 2 {
			t.Errorf("ReadAheadHits = %d, want 2 (one per prefetched page, not per Get)", bp.Stats.ReadAheadHits)
		}
		if bp.Stats.ReadAheadWasted != 0 {
			t.Errorf("ReadAheadWasted = %d before any eviction, want 0", bp.Stats.ReadAheadWasted)
		}
		// Churn every other page through the pool until the two
		// never-demanded prefetches are evicted: they settle as waste.
		for r := 0; r < 4; r++ {
			for _, no := range pages {
				if no == absent[2] || no == absent[3] {
					continue
				}
				h, err := bp.Get(p, no)
				if err != nil {
					t.Error(err)
					return
				}
				h.Release()
			}
		}
		if bp.Stats.ReadAheadWasted != 2 {
			t.Errorf("ReadAheadWasted = %d after churn, want 2", bp.Stats.ReadAheadWasted)
		}
		if bp.Stats.ReadAheadHits != 2 {
			t.Errorf("ReadAheadHits = %d after churn, want still 2", bp.Stats.ReadAheadHits)
		}
	})
	k.Run(time.Minute)
}

func TestAdaptiveReadaheadRampsAndShrinks(t *testing.T) {
	k := sim.New(1)
	s, data := rig(k)
	k.Go("t", func(p *sim.Proc) {
		cfg := DefaultConfig(64)
		cfg.WriterPeriod = 0
		bp, err := New(p, s, data, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		pages := seedPages(t, p, bp, 256)
		bp.Stats = Stats{}
		if got := bp.ReadaheadPages(); got >= cfg.Readahead {
			t.Fatalf("adaptive window starts at %d, want below the %d ceiling", got, cfg.Readahead)
		}
		// A long sequential scan: every prefetched page is demanded, so
		// the window must ramp to the ceiling.
		raNext := uint64(0)
		for i, no := range pages {
			if i >= 1 && no >= raNext {
				win := bp.ReadaheadPages()
				bp.ReadAheadWindow(p, no, 0)
				raNext = no + uint64(win)
			}
			h, err := bp.Get(p, no)
			if err != nil {
				t.Error(err)
				return
			}
			h.Release()
		}
		if got := bp.ReadaheadPages(); got != cfg.Readahead {
			t.Errorf("after a sequential scan the window = %d, want ramped to %d", got, cfg.Readahead)
		}
		// Two-page probes that keep requesting the full depth: most
		// prefetched pages die unused, so the window must shrink.
		for r := 0; r < 400; r++ {
			start := pages[(r*17)%(len(pages)-10)]
			bp.ReadAheadWindow(p, start+1, 0)
			for j := uint64(0); j < 2; j++ {
				h, err := bp.Get(p, start+j)
				if err != nil {
					t.Error(err)
					return
				}
				h.Release()
			}
		}
		if got := bp.ReadaheadPages(); got > cfg.Readahead/2 {
			t.Errorf("after overshooting probes the window = %d, want shrunk to at most %d", got, cfg.Readahead/2)
		}
		if bp.Stats.ReadAheadWasted == 0 {
			t.Error("overshooting probes settled no prefetches as waste")
		}
	})
	k.Run(time.Minute)
}
