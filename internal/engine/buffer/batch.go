// Batched (vectored) buffer-pool I/O: the lazy writer flushes its dirty
// batch with one scatter-gather write, evicted pages ride to the
// extension tier in grouped vectored puts drained by a single background
// flusher, and range scans prefetch readahead windows with one batched
// fault. On a remote-memory backing file each of these turns N charged
// round trips into one doorbell-batched transfer per destination server.
package buffer

import (
	"sort"

	"remotedb/internal/engine/page"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// writerFlushBatch is the lazy writer's vectored round: up to
// WriterBatch dirty unpinned frames are written per round, in
// scatter-gather sub-batches of at most a quarter of the pool — every
// frame in a sub-batch stays pinned until its write lands, and pinning
// more would starve foreground victims in small pools. Frames
// re-dirtied while the I/O slept stay dirty.
func (bp *Pool) writerFlushBatch(p *sim.Proc) {
	lim := bp.cfg.WriterBatch
	if q := len(bp.frames) / 4; q > 0 && lim > q {
		lim = q
	}
	type cand struct {
		idx int
		v0  uint64
		vec vfs.Vec
	}
	written := 0
	next := 0
	for written < bp.cfg.WriterBatch && next < len(bp.frames) {
		var cands []cand
		for ; next < len(bp.frames) && len(cands) < lim; next++ {
			f := &bp.frames[next]
			if !f.valid || !f.dirty || f.pins > 0 {
				continue
			}
			f.pins++
			page.Wrap(f.buf).Seal()
			cands = append(cands, cand{
				idx: next,
				v0:  f.ver,
				vec: vfs.Vec{Off: int64(f.pageNo) * page.Size, Buf: f.buf},
			})
		}
		if len(cands) == 0 {
			return
		}
		// Elevator order: a device file merges contiguous runs only when
		// they are adjacent in the vector.
		sort.Slice(cands, func(i, j int) bool { return cands[i].vec.Off < cands[j].vec.Off })
		vecs := make([]vfs.Vec, len(cands))
		for i, c := range cands {
			vecs[i] = c.vec
		}
		err := vfs.WriteVec(p, bp.data, vecs)
		for _, c := range cands {
			f := &bp.frames[c.idx]
			f.pins--
			if f.pins == 0 {
				bp.avail.Signal()
			}
			if err == nil && f.ver == c.v0 {
				f.dirty = false
				bp.Stats.WriterIO++
				bp.Stats.WriterBytes += page.Size
				written++
			}
		}
	}
}

// extPut is one queued extension write: the page image captured at
// eviction time and the putVer stamp that detects supersession.
type extPut struct {
	pageNo uint64
	img    []byte
	ver    uint64
}

// extFlushLoop is the single background flusher for batched extension
// puts: it drains whatever the queue has accumulated and ships it as one
// vectored write. The proc blocks on the cond when idle, which does not
// keep the simulation alive.
func (bp *Pool) extFlushLoop(p *sim.Proc) {
	for {
		for len(bp.extQueue) == 0 {
			bp.extCond.Wait(p)
		}
		batch := bp.extQueue
		bp.extQueue = nil
		// Free the queue slots as soon as the batch is swapped out:
		// evictions arriving while the vectored write below sleeps must
		// be able to enqueue, or every flush window would silently drop
		// pages from the extension.
		bp.extPutSlots.Release(len(batch))
		bp.flushExtBatch(p, batch)
	}
}

// flushExtBatch writes a batch of evicted images into extension slots
// with one scatter-gather call, preserving the scalar put's semantics:
// superseded entries (a newer eviction of the same page re-stamped
// putVer) are dropped, and a mapping is installed only if its slot still
// belongs to the page and its stamp is still the latest — allocSlot may
// reclaim an earlier batch entry's slot when the extension is full, in
// which case the later element's bytes win (vector order) and only the
// surviving owner installs.
func (bp *Pool) flushExtBatch(p *sim.Proc, batch []extPut) {
	// Whatever happens below, these queue entries are no longer pending:
	// retire each page's read-through image unless a newer eviction
	// re-stamped it (that image rides a later batch).
	defer func() {
		for _, pu := range batch {
			if bp.ext != nil && bp.ext.putVer[pu.pageNo] == pu.ver {
				delete(bp.extPending, pu.pageNo)
			}
		}
	}()
	if !bp.ExtensionHealthy() {
		return
	}
	if bp.extDegraded() {
		// A stripe is down or under repair: the vectored put would
		// stall in retry/failover behind the bad element, and every
		// eviction would back up behind the staging queue while it
		// slept. Extension insertion is best-effort — drop the batch;
		// these pages were invalidated at eviction time and simply fall
		// to the data file on their next miss.
		return
	}
	e := bp.ext
	type live struct {
		pu   extPut
		slot int
	}
	var lives []live
	var vecs []vfs.Vec
	for _, pu := range batch {
		if e.putVer[pu.pageNo] != pu.ver {
			continue // superseded by a newer eviction's image
		}
		slot, ok := e.table[pu.pageNo]
		if !ok {
			slot = e.allocSlot()
			e.slotPage[slot] = pu.pageNo
		}
		lives = append(lives, live{pu: pu, slot: slot})
		vecs = append(vecs, vfs.Vec{Off: int64(slot) * page.Size, Buf: pu.img})
	}
	if len(vecs) == 0 {
		return
	}
	if err := vfs.WriteVec(p, e.file, vecs); err != nil {
		for _, lv := range lives {
			delete(e.table, lv.pu.pageNo)
			if e.slotPage[lv.slot] == lv.pu.pageNo {
				e.slotPage[lv.slot] = 0
			}
		}
		bp.extFailed(err)
		return
	}
	for _, lv := range lives {
		if e.slotPage[lv.slot] != lv.pu.pageNo {
			continue // slot reclaimed by a later element of this batch
		}
		if e.putVer[lv.pu.pageNo] != lv.pu.ver {
			e.slotPage[lv.slot] = 0 // superseded while the write slept
			continue
		}
		e.table[lv.pu.pageNo] = lv.slot
		e.Puts++
		bp.Stats.ExtWrites++
		bp.Stats.ExtWriteBytes += page.Size
	}
}

// ReadaheadPages returns the scan readahead window in pages, or 0 when
// readahead is disabled (no batched I/O or a zero window). With
// AdaptiveReadahead this is the current feedback-adapted window, so
// scans that clamp to it automatically ramp and shrink with it.
func (bp *Pool) ReadaheadPages() int {
	if !bp.cfg.BatchedIO || bp.cfg.Readahead <= 0 {
		return 0
	}
	if bp.cfg.AdaptiveReadahead {
		return bp.raWin
	}
	return bp.cfg.Readahead
}

// adaptReadahead resizes the window from the prefetch hit/waste tally:
// once enough prefetched pages have settled (demanded, or evicted
// unused) since the last adjustment, a waste share of a sixth or more
// halves the window and a share of a twelfth or less doubles it,
// bounded by [1, cfg.Readahead]. Waste is observed at eviction, so the
// signal lags by roughly one pool churn — the reason adjustments demand
// two windows' worth of evidence rather than reacting per prefetch.
func (bp *Pool) adaptReadahead() {
	if !bp.cfg.AdaptiveReadahead {
		return
	}
	hit := bp.Stats.ReadAheadHits - bp.raBaseHit
	waste := bp.Stats.ReadAheadWasted - bp.raBaseWaste
	settled := hit + waste
	if settled < int64(2*bp.raWin) {
		return
	}
	bp.raBaseHit, bp.raBaseWaste = bp.Stats.ReadAheadHits, bp.Stats.ReadAheadWasted
	switch {
	case waste*6 >= settled:
		bp.raWin /= 2
		if bp.raWin < 1 {
			bp.raWin = 1
		}
	case waste*12 <= settled:
		bp.raWin *= 2
		if bp.raWin > bp.cfg.Readahead {
			bp.raWin = bp.cfg.Readahead
		}
	}
}

// ReadAheadWindow prefetches the readahead window starting at page
// start, clamped to maxPages (when positive), allocated pages, and a
// quarter of the pool, and returns the number of pages actually
// installed. Callers that ramp their window (slow-start scans) pass the
// ramped size as maxPages.
func (bp *Pool) ReadAheadWindow(p *sim.Proc, start uint64, maxPages int) int {
	bp.adaptReadahead()
	want := bp.ReadaheadPages()
	if maxPages > 0 && want > maxPages {
		want = maxPages
	}
	if want == 0 {
		return 0
	}
	if lim := len(bp.frames) / 4; want > lim {
		want = lim
	}
	var nos []uint64
	for no := start; no < start+uint64(want) && no < bp.nextPageNo; no++ {
		nos = append(nos, no)
	}
	return bp.ReadAhead(p, nos)
}

// ReadAhead batch-faults the given pages with one vectored read per
// source tier, installing each into a frame so subsequent Gets hit in
// RAM. Pages already resident, already faulting, or not yet allocated
// are skipped. With a healthy extension the prefetch reads the
// ext-cached pages in one grouped remote transfer (one charged round
// trip instead of one per page) and deliberately does NOT touch pages
// absent from the extension: in steady state the warm set lives in the
// extension, so an absent page is cold and a speculative fault would
// pay a random spindle seek for a page the scan may never visit.
// Without an extension the window is read from the data file in one
// elevator-merged vectored read. Prefetched pages are registered as
// in-flight faults so a concurrent Get piggybacks instead of issuing
// its own read; they count in Stats.ReadAheadPages, never DiskReads or
// ExtHits. Prefetching is best-effort: pool pressure stops it early.
func (bp *Pool) ReadAhead(p *sim.Proc, pageNos []uint64) int {
	type pending struct {
		no   uint64
		idx  int
		slot int // extension slot, -1 = data file
		wg   *sim.WaitGroup
	}
	var pend []pending
	installed := 0
	for _, no := range pageNos {
		if no == 0 || no >= bp.nextPageNo {
			continue
		}
		if _, ok := bp.table[no]; ok {
			continue
		}
		if _, inflight := bp.faulting[no]; inflight {
			continue
		}
		slot := -1
		queued := false
		if bp.extDegraded() {
			// A stripe of the extension file is down or under repair: a
			// vectored read could stall in retry/backoff behind the one
			// bad element while holding every pend frame pinned. Demand
			// faults handle degradation per page; prefetch sits it out.
			break
		}
		if bp.ExtensionHealthy() {
			if _, q := bp.extPending[no]; q {
				queued = true // flusher queue: serve the RAM image below
			} else {
				s, cached := bp.ext.table[no]
				if !cached {
					continue // cold page: leave it to the demand path
				}
				slot = s
			}
		}
		idx, err := bp.victimPrefetch(p)
		if err != nil {
			break // pool under pressure: prefetch what we could
		}
		// victim may have slept in eviction I/O; a concurrent Get could
		// have faulted this page in meanwhile.
		if _, ok := bp.table[no]; ok {
			bp.releaseFrame(idx)
			continue
		}
		if _, inflight := bp.faulting[no]; inflight {
			bp.releaseFrame(idx)
			continue
		}
		if queued {
			pu, ok := bp.extPending[no]
			if !ok {
				// Flushed while the victim search slept; the demand path
				// will serve it from the extension.
				bp.releaseFrame(idx)
				continue
			}
			f := &bp.frames[idx]
			f.pins = 0
			f.valid = true
			f.pageNo = no
			f.dirty = false
			f.ver++
			f.ref = true
			f.prefetched = true
			copy(f.buf, pu.img)
			bp.table[no] = idx
			bp.noteInstall(idx)
			bp.Stats.ReadAheadPages++
			installed++
			continue
		}
		f := &bp.frames[idx]
		f.pins = 1 // reserve across the batched read
		f.valid = true
		f.pageNo = no
		f.dirty = false
		f.ver++
		wg := sim.NewWaitGroup(bp.k)
		wg.Add(1)
		bp.faulting[no] = wg
		pend = append(pend, pending{no: no, idx: idx, slot: slot, wg: wg})
	}
	if len(pend) == 0 {
		return installed
	}
	var extVecs, diskVecs []vfs.Vec
	for _, pe := range pend {
		f := &bp.frames[pe.idx]
		if pe.slot >= 0 {
			extVecs = append(extVecs, vfs.Vec{Off: int64(pe.slot) * page.Size, Buf: f.buf})
		} else {
			diskVecs = append(diskVecs, vfs.Vec{Off: int64(pe.no) * page.Size, Buf: f.buf})
		}
	}
	var extErr, diskErr error
	if len(extVecs) > 0 {
		if extErr = vfs.ReadVec(p, bp.ext.file, extVecs); extErr != nil {
			bp.extFailed(extErr)
		}
	}
	if len(diskVecs) > 0 {
		diskErr = vfs.ReadVec(p, bp.data, diskVecs)
	}
	for _, pe := range pend {
		f := &bp.frames[pe.idx]
		err := diskErr
		stale := false
		if pe.slot >= 0 {
			err = extErr
			// The vectored read slept; a concurrent eviction put may have
			// reclaimed the slot for another page, clobbering the image.
			stale = bp.ext.disabled || bp.ext.slotPage[pe.slot] != pe.no
		}
		if _, raced := bp.table[pe.no]; err != nil || raced || stale {
			f.valid = false
			f.pins = 0
			bp.releaseFrame(pe.idx)
		} else {
			f.pins = 0
			f.ref = true
			f.prefetched = true
			bp.table[pe.no] = pe.idx
			bp.noteInstall(pe.idx)
			installed++
			bp.Stats.ReadAheadPages++
		}
		delete(bp.faulting, pe.no)
		pe.wg.Done()
		bp.avail.Signal()
	}
	return installed
}

// victimPrefetch finds a frame for speculative readahead without ever
// waiting for one. Prefetch is best-effort: it takes the free list or a
// clean, unpinned, low-priority victim, and gives up rather than sleep
// on a pin release, write back a dirty page, or stall on extension-put
// throttling — a speculative read must never steal capacity or block in
// the way of the demand faults it is supposed to be helping. (The
// blocking variants live in victimClock/victimGDSF.)
func (bp *Pool) victimPrefetch(p *sim.Proc) (int, error) {
	if bp.cfg.Policy == PolicyClock {
		return bp.victimPrefetchClock(p)
	}
	return bp.victimPrefetchGDSF(p)
}

// extPutThrottled reports whether a clean eviction would block on the
// extension-put queue right now (batched mode acquires a slot
// synchronously on the eviction path when TryAcquire fails).
func (bp *Pool) extPutThrottled() bool {
	return bp.cfg.BatchedIO && bp.ext != nil && !bp.ext.disabled &&
		bp.extPutSlots.Available() == 0
}

// extDegraded reports whether the live extension file is in a degraded
// window (a replica lost or under repair) — reads still work but may
// stall in retry or failover, which speculative prefetch must not risk.
func (bp *Pool) extDegraded() bool {
	if bp.ext == nil || bp.ext.disabled {
		return false
	}
	d, ok := bp.ext.file.(interface{ Degraded() bool })
	return ok && d.Degraded()
}

func (bp *Pool) victimPrefetchGDSF(p *sim.Proc) (int, error) {
	for len(bp.free) > 0 {
		idx := bp.free[len(bp.free)-1]
		bp.free = bp.free[:len(bp.free)-1]
		if !bp.frames[idx].valid {
			return idx, nil
		}
	}
	if bp.extPutThrottled() {
		return 0, ErrNoFrames
	}
	// Entries passed over (pinned or dirty) go back on the heap when the
	// search ends, not immediately — re-pushing the current minimum
	// would just pop it again next iteration.
	var skipped []gdsfEntry
	defer func() {
		for _, e := range skipped {
			bp.heapPush(e)
		}
	}()
	budget := 2 * len(bp.frames)
	for pops := 0; pops < budget; pops++ {
		e, ok := bp.heapPop()
		if !ok {
			break
		}
		f := &bp.frames[e.idx]
		if !f.valid || f.seq != e.seq {
			continue // stale entry from a prior install
		}
		cur := bp.pri(f)
		if cur > e.pri {
			bp.heapPush(gdsfEntry{idx: e.idx, seq: e.seq, pri: cur})
			continue
		}
		if f.pins > 0 || f.dirty {
			skipped = append(skipped, gdsfEntry{idx: e.idx, seq: e.seq, pri: cur})
			continue
		}
		// Clean + unpinned + put slots available: this eviction cannot
		// sleep, so the state checked above cannot change under us.
		evicted, err := bp.evict(p, e.idx)
		if err != nil {
			skipped = append(skipped, gdsfEntry{idx: e.idx, seq: e.seq, pri: cur})
			return 0, err
		}
		if evicted {
			if cur > bp.gL {
				bp.gL = cur
			}
			return e.idx, nil
		}
		skipped = append(skipped, gdsfEntry{idx: e.idx, seq: e.seq, pri: bp.pri(f)})
	}
	return 0, ErrNoFrames
}

func (bp *Pool) victimPrefetchClock(p *sim.Proc) (int, error) {
	if bp.extPutThrottled() {
		return 0, ErrNoFrames
	}
	for sweep := 0; sweep < 2*len(bp.frames); sweep++ {
		f := &bp.frames[bp.hand]
		idx := bp.hand
		bp.hand = (bp.hand + 1) % len(bp.frames)
		if !f.valid {
			return idx, nil
		}
		if f.pins > 0 || f.dirty {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		evicted, err := bp.evict(p, idx)
		if err != nil {
			return 0, err
		}
		if evicted {
			return idx, nil
		}
	}
	return 0, ErrNoFrames
}
