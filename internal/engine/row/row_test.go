package row

import (
	"bytes"
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func testSchema() *Schema {
	return NewSchema(
		Column{"id", Int64},
		Column{"balance", Float64},
		Column{"name", String},
		Column{"blob", Bytes},
	)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema()
	in := Tuple{int64(-42), 3.25, "hello", []byte{1, 2, 3}}
	b, err := Encode(nil, s, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(s, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %v != %v", in, out)
	}
	if len(b) != EncodedSize(s, in) {
		t.Fatalf("EncodedSize = %d, actual %d", EncodedSize(s, in), len(b))
	}
}

func TestEncodeTypeMismatch(t *testing.T) {
	s := testSchema()
	if _, err := Encode(nil, s, Tuple{"oops", 1.0, "x", []byte{}}); err == nil {
		t.Fatal("wrong type accepted")
	}
	if _, err := Encode(nil, s, Tuple{int64(1)}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	s := testSchema()
	good, _ := Encode(nil, s, Tuple{int64(1), 2.0, "abc", []byte{9}})
	for _, cut := range []int{1, 8, 17, len(good) - 1} {
		if _, err := Decode(s, good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decode(s, append(good, 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestSchemaOrdinalsAndProject(t *testing.T) {
	s := testSchema()
	if s.Ordinal("name") != 2 || s.Ordinal("nope") != -1 {
		t.Fatal("ordinal lookup broken")
	}
	p := s.Project("name", "id")
	if p.Len() != 2 || p.Columns[0].Name != "name" || p.Columns[1].Type != Int64 {
		t.Fatal("projection broken")
	}
}

// Property: Encode/Decode round-trips arbitrary tuples.
func TestRoundTripProperty(t *testing.T) {
	s := NewSchema(Column{"a", Int64}, Column{"b", Float64}, Column{"c", String})
	f := func(a int64, b float64, c string) bool {
		if math.IsNaN(b) {
			return true
		}
		if len(c) > 1000 {
			c = c[:1000]
		}
		in := Tuple{a, b, c}
		enc, err := Encode(nil, s, in)
		if err != nil {
			return false
		}
		out, err := Decode(s, enc)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: int64 key encoding preserves order.
func TestKeyOrderInt64Property(t *testing.T) {
	f := func(a, b int64) bool {
		ka := EncodeKey(nil, a)
		kb := EncodeKey(nil, b)
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: float64 key encoding preserves order (non-NaN).
func TestKeyOrderFloat64Property(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := EncodeKey(nil, a)
		kb := EncodeKey(nil, b)
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: string key encoding preserves order, including embedded NULs.
func TestKeyOrderStringProperty(t *testing.T) {
	f := func(a, b string) bool {
		ka := EncodeKey(nil, a)
		kb := EncodeKey(nil, b)
		cmp := bytes.Compare(ka, kb)
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		return sign(cmp) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func sign(x int) int {
	if x < 0 {
		return -1
	}
	if x > 0 {
		return 1
	}
	return 0
}

// Composite keys: (a, b) sorts like sorting on a then b, even when string
// segments are prefixes of one another.
func TestCompositeKeyOrder(t *testing.T) {
	type pair struct {
		s string
		n int64
	}
	pairs := []pair{{"a", 5}, {"a", -1}, {"ab", 0}, {"a\x00b", 2}, {"", 9}, {"a", 5}}
	keys := make([][]byte, len(pairs))
	for i, pr := range pairs {
		keys[i] = EncodeKey(nil, pr.s, pr.n)
	}
	idx := []int{0, 1, 2, 3, 4, 5}
	sort.Slice(idx, func(i, j int) bool { return bytes.Compare(keys[idx[i]], keys[idx[j]]) < 0 })
	sorted := make([]pair, len(idx))
	for i, j := range idx {
		sorted[i] = pairs[j]
	}
	want := []pair{{"", 9}, {"a", -1}, {"a", 5}, {"a", 5}, {"a\x00b", 2}, {"ab", 0}}
	if !reflect.DeepEqual(sorted, want) {
		t.Fatalf("composite order = %v, want %v", sorted, want)
	}
}

func TestKeyOfColumns(t *testing.T) {
	s := testSchema()
	tp := Tuple{int64(7), 1.5, "abc", []byte{1}}
	k1 := KeyOfColumns(s, tp, "name", "id")
	k2 := EncodeKey(nil, "abc", int64(7))
	if !bytes.Equal(k1, k2) {
		t.Fatal("KeyOfColumns disagrees with EncodeKey")
	}
}

func TestDecodeColumnMatchesDecode(t *testing.T) {
	s := testSchema()
	in := Tuple{int64(-42), 3.25, "hello", []byte{1, 2, 3}}
	b, _ := Encode(nil, s, in)
	for i := range in {
		got, err := DecodeColumn(s, b, i)
		if err != nil {
			t.Fatalf("col %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, in[i]) {
			t.Fatalf("col %d = %v, want %v", i, got, in[i])
		}
	}
	if _, err := DecodeColumn(s, b[:5], 3); err == nil {
		t.Fatal("truncated image accepted")
	}
}
