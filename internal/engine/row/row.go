// Package row defines tuple schemas, a compact binary tuple encoding,
// and an order-preserving key encoding (memcmp-comparable), used by the
// storage and execution layers of the engine.
package row

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Type is a column type.
type Type int

// Column types supported by the engine.
const (
	Int64 Type = iota
	Float64
	String
	Bytes
)

func (t Type) String() string {
	switch t {
	case Int64:
		return "INT64"
	case Float64:
		return "FLOAT64"
	case String:
		return "STRING"
	case Bytes:
		return "BYTES"
	}
	return "UNKNOWN"
}

// Column describes one column.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered set of columns.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema; column names must be unique.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := s.byName[c.Name]; dup {
			panic("row: duplicate column " + c.Name)
		}
		s.byName[c.Name] = i
	}
	return s
}

// Ordinal returns a column's index, or -1.
func (s *Schema) Ordinal(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// MustOrdinal is Ordinal but panics on unknown columns (schema bugs are
// programming errors).
func (s *Schema) MustOrdinal(name string) int {
	i := s.Ordinal(name)
	if i < 0 {
		panic("row: unknown column " + name)
	}
	return i
}

// Len returns the column count.
func (s *Schema) Len() int { return len(s.Columns) }

// Project returns a schema of the named columns.
func (s *Schema) Project(names ...string) *Schema {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = s.Columns[s.MustOrdinal(n)]
	}
	return NewSchema(cols...)
}

// Tuple is one row: values parallel to the schema's columns. Values are
// int64, float64, string or []byte.
type Tuple []interface{}

// ErrCorrupt indicates an undecodable tuple image.
var ErrCorrupt = errors.New("row: corrupt tuple encoding")

// Encode appends the tuple's binary image to dst and returns it.
func Encode(dst []byte, s *Schema, t Tuple) ([]byte, error) {
	if len(t) != s.Len() {
		return nil, fmt.Errorf("row: tuple arity %d does not match schema %d", len(t), s.Len())
	}
	var scratch [8]byte
	for i, c := range s.Columns {
		switch c.Type {
		case Int64:
			v, ok := t[i].(int64)
			if !ok {
				return nil, typeErr(c, t[i])
			}
			binary.BigEndian.PutUint64(scratch[:], uint64(v))
			dst = append(dst, scratch[:]...)
		case Float64:
			v, ok := t[i].(float64)
			if !ok {
				return nil, typeErr(c, t[i])
			}
			binary.BigEndian.PutUint64(scratch[:], math.Float64bits(v))
			dst = append(dst, scratch[:]...)
		case String:
			v, ok := t[i].(string)
			if !ok {
				return nil, typeErr(c, t[i])
			}
			if len(v) > math.MaxUint16 {
				return nil, fmt.Errorf("row: string too long (%d)", len(v))
			}
			binary.BigEndian.PutUint16(scratch[:2], uint16(len(v)))
			dst = append(dst, scratch[:2]...)
			dst = append(dst, v...)
		case Bytes:
			v, ok := t[i].([]byte)
			if !ok {
				return nil, typeErr(c, t[i])
			}
			if len(v) > math.MaxUint16 {
				return nil, fmt.Errorf("row: bytes too long (%d)", len(v))
			}
			binary.BigEndian.PutUint16(scratch[:2], uint16(len(v)))
			dst = append(dst, scratch[:2]...)
			dst = append(dst, v...)
		}
	}
	return dst, nil
}

func typeErr(c Column, v interface{}) error {
	return fmt.Errorf("row: column %s expects %v, got %T", c.Name, c.Type, v)
}

// Decode parses one tuple image.
func Decode(s *Schema, b []byte) (Tuple, error) {
	t := make(Tuple, s.Len())
	for i, c := range s.Columns {
		switch c.Type {
		case Int64:
			if len(b) < 8 {
				return nil, ErrCorrupt
			}
			t[i] = int64(binary.BigEndian.Uint64(b))
			b = b[8:]
		case Float64:
			if len(b) < 8 {
				return nil, ErrCorrupt
			}
			t[i] = math.Float64frombits(binary.BigEndian.Uint64(b))
			b = b[8:]
		case String:
			if len(b) < 2 {
				return nil, ErrCorrupt
			}
			n := int(binary.BigEndian.Uint16(b))
			b = b[2:]
			if len(b) < n {
				return nil, ErrCorrupt
			}
			t[i] = string(b[:n])
			b = b[n:]
		case Bytes:
			if len(b) < 2 {
				return nil, ErrCorrupt
			}
			n := int(binary.BigEndian.Uint16(b))
			b = b[2:]
			if len(b) < n {
				return nil, ErrCorrupt
			}
			t[i] = append([]byte(nil), b[:n]...)
			b = b[n:]
		}
	}
	if len(b) != 0 {
		return nil, ErrCorrupt
	}
	return t, nil
}

// DecodeColumn extracts a single column from a tuple image without
// materializing the rest — the hot path for scans that aggregate one
// column (the engine's RangeScan does exactly this).
func DecodeColumn(s *Schema, b []byte, ord int) (interface{}, error) {
	for i, c := range s.Columns {
		switch c.Type {
		case Int64:
			if len(b) < 8 {
				return nil, ErrCorrupt
			}
			if i == ord {
				return int64(binary.BigEndian.Uint64(b)), nil
			}
			b = b[8:]
		case Float64:
			if len(b) < 8 {
				return nil, ErrCorrupt
			}
			if i == ord {
				return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
			}
			b = b[8:]
		case String:
			if len(b) < 2 {
				return nil, ErrCorrupt
			}
			n := int(binary.BigEndian.Uint16(b))
			if len(b) < 2+n {
				return nil, ErrCorrupt
			}
			if i == ord {
				return string(b[2 : 2+n]), nil
			}
			b = b[2+n:]
		case Bytes:
			if len(b) < 2 {
				return nil, ErrCorrupt
			}
			n := int(binary.BigEndian.Uint16(b))
			if len(b) < 2+n {
				return nil, ErrCorrupt
			}
			if i == ord {
				return append([]byte(nil), b[2:2+n]...), nil
			}
			b = b[2+n:]
		}
	}
	return nil, ErrCorrupt
}

// EncodedSize returns the byte length of the tuple's image.
func EncodedSize(s *Schema, t Tuple) int {
	n := 0
	for i, c := range s.Columns {
		switch c.Type {
		case Int64, Float64:
			n += 8
		case String:
			n += 2 + len(t[i].(string))
		case Bytes:
			n += 2 + len(t[i].([]byte))
		}
	}
	return n
}

// --- Order-preserving key encoding --------------------------------------

// EncodeKey appends an order-preserving (bytes.Compare-compatible)
// encoding of the values to dst. Int64 uses sign-flipped big-endian;
// Float64 uses the IEEE total-order trick; String/Bytes use 0x00-escaped
// termination so prefixes order correctly.
func EncodeKey(dst []byte, vals ...interface{}) []byte {
	var scratch [8]byte
	for _, v := range vals {
		switch x := v.(type) {
		case int64:
			binary.BigEndian.PutUint64(scratch[:], uint64(x)^(1<<63))
			dst = append(dst, scratch[:]...)
		case int:
			binary.BigEndian.PutUint64(scratch[:], uint64(int64(x))^(1<<63))
			dst = append(dst, scratch[:]...)
		case float64:
			bits := math.Float64bits(x)
			if bits&(1<<63) != 0 {
				bits = ^bits
			} else {
				bits |= 1 << 63
			}
			binary.BigEndian.PutUint64(scratch[:], bits)
			dst = append(dst, scratch[:]...)
		case string:
			dst = appendEscaped(dst, []byte(x))
		case []byte:
			dst = appendEscaped(dst, x)
		default:
			panic(fmt.Sprintf("row: unsupported key type %T", v))
		}
	}
	return dst
}

// appendEscaped writes b with 0x00 -> 0x00 0xFF escaping and a 0x00 0x00
// terminator, preserving lexicographic order across segments.
func appendEscaped(dst, b []byte) []byte {
	for _, c := range b {
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x00)
}

// KeyOfColumns encodes the named columns of a tuple as a key.
func KeyOfColumns(s *Schema, t Tuple, cols ...string) []byte {
	vals := make([]interface{}, len(cols))
	for i, c := range cols {
		vals[i] = t[s.MustOrdinal(c)]
	}
	return EncodeKey(nil, vals...)
}
