package row

import "testing"

func benchSchema() *Schema {
	return NewSchema(
		Column{Name: "a", Type: Int64},
		Column{Name: "b", Type: Float64},
		Column{Name: "c", Type: String},
		Column{Name: "d", Type: Int64},
	)
}

func BenchmarkEncode(b *testing.B) {
	s := benchSchema()
	t := Tuple{int64(42), 3.25, "some string value", int64(7)}
	buf := make([]byte, 0, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if buf, err = Encode(buf[:0], s, t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	s := benchSchema()
	enc, _ := Encode(nil, s, Tuple{int64(42), 3.25, "some string value", int64(7)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(s, enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeKey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = EncodeKey(nil, int64(i), "segment", 3.5)
	}
}
