package catalog

import (
	"reflect"
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/row"
	"remotedb/internal/hw/disk"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

func custSchema() *row.Schema {
	return row.NewSchema(
		row.Column{Name: "custkey", Type: row.Int64},
		row.Column{Name: "name", Type: row.String},
		row.Column{Name: "acctbal", Type: row.Float64},
		row.Column{Name: "nation", Type: row.Int64},
	)
}

func rig(t *testing.T, fn func(p *sim.Proc, c *Catalog)) {
	t.Helper()
	k := sim.New(1)
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	s := cluster.NewServer(k, "db", cfg)
	k.Go("t", func(p *sim.Proc) {
		data := vfs.NewDeviceFile("data", disk.NullDevice{DeviceName: "null"})
		bcfg := buffer.DefaultConfig(4096)
		bcfg.WriterPeriod = 0
		bcfg.PageAccessCPU = 0
		bp, err := buffer.New(p, s, data, bcfg)
		if err != nil {
			t.Error(err)
			return
		}
		fn(p, New(bp))
	})
	k.Run(time.Minute)
}

func cust(i int) row.Tuple {
	return row.Tuple{int64(i), "customer", float64(i) * 1.5, int64(i % 25)}
}

func TestCRUD(t *testing.T) {
	rig(t, func(p *sim.Proc, c *Catalog) {
		tbl, err := c.CreateTable(p, "customer", custSchema(), "custkey")
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 100; i++ {
			if err := tbl.Insert(p, cust(i)); err != nil {
				t.Error(err)
				return
			}
		}
		got, err := tbl.Get(p, int64(42))
		if err != nil {
			t.Error(err)
			return
		}
		if !reflect.DeepEqual(got, cust(42)) {
			t.Errorf("get = %v", got)
		}
		upd := cust(42)
		upd[2] = 999.5
		if err := tbl.Update(p, upd); err != nil {
			t.Error(err)
		}
		got, _ = tbl.Get(p, int64(42))
		if got[2].(float64) != 999.5 {
			t.Errorf("update lost: %v", got)
		}
		if err := tbl.Delete(p, int64(42)); err != nil {
			t.Error(err)
		}
		if _, err := tbl.Get(p, int64(42)); err != ErrNotFound {
			t.Errorf("deleted row: %v", err)
		}
	})
}

func TestSecondaryIndexMaintenance(t *testing.T) {
	rig(t, func(p *sim.Proc, c *Catalog) {
		tbl, _ := c.CreateTable(p, "customer", custSchema(), "custkey")
		for i := 0; i < 50; i++ {
			tbl.Insert(p, cust(i))
		}
		idx, err := c.CreateIndex(p, "ix_nation", "customer", "nation")
		if err != nil {
			t.Error(err)
			return
		}
		// Nation 3: customers 3, 28.
		from := row.EncodeKey(nil, int64(3))
		to := row.EncodeKey(nil, int64(4))
		pks, err := idx.SeekRange(p, from, to, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if len(pks) != 2 {
			t.Errorf("nation 3 has %d rows, want 2", len(pks))
		}
		for _, pk := range pks {
			tuple, err := tbl.LookupRow(p, pk)
			if err != nil || tuple[3].(int64) != 3 {
				t.Errorf("lookup %v %v", tuple, err)
			}
		}
		// Update moves a row to another nation.
		upd := cust(3)
		upd[3] = int64(7)
		tbl.Update(p, upd)
		pks, _ = idx.SeekRange(p, from, to, 0)
		if len(pks) != 1 {
			t.Errorf("after move, nation 3 has %d rows, want 1", len(pks))
		}
		// Delete removes index entries.
		tbl.Delete(p, int64(28))
		pks, _ = idx.SeekRange(p, from, to, 0)
		if len(pks) != 0 {
			t.Errorf("after delete, nation 3 has %d rows", len(pks))
		}
	})
}

func TestIndexBackfill(t *testing.T) {
	rig(t, func(p *sim.Proc, c *Catalog) {
		tbl, _ := c.CreateTable(p, "customer", custSchema(), "custkey")
		var rows []row.Tuple
		for i := 0; i < 500; i++ {
			rows = append(rows, cust(i))
		}
		tbl.BulkLoad(p, rows)
		idx, err := c.CreateIndex(p, "ix_nation", "customer", "nation")
		if err != nil {
			t.Error(err)
			return
		}
		if idx.Tree.Entries != 500 {
			t.Errorf("backfilled entries = %d", idx.Tree.Entries)
		}
	})
}

func TestBulkLoadAndScan(t *testing.T) {
	rig(t, func(p *sim.Proc, c *Catalog) {
		tbl, _ := c.CreateTable(p, "customer", custSchema(), "custkey")
		var rows []row.Tuple
		for i := 999; i >= 0; i-- { // unsorted input
			rows = append(rows, cust(i))
		}
		if err := tbl.BulkLoad(p, rows); err != nil {
			t.Error(err)
			return
		}
		got, err := tbl.ScanRange(p, row.EncodeKey(nil, int64(100)), row.EncodeKey(nil, int64(110)), 0)
		if err != nil {
			t.Error(err)
			return
		}
		if len(got) != 10 || got[0][0].(int64) != 100 {
			t.Errorf("scan = %d rows starting %v", len(got), got[0][0])
		}
	})
}

func TestSchemaErrors(t *testing.T) {
	rig(t, func(p *sim.Proc, c *Catalog) {
		if _, err := c.CreateTable(p, "t", custSchema(), "nope"); err == nil {
			t.Error("bad pk column accepted")
		}
		c.CreateTable(p, "t", custSchema(), "custkey")
		if _, err := c.CreateTable(p, "t", custSchema(), "custkey"); err != ErrTableExists {
			t.Errorf("dup table: %v", err)
		}
		if _, err := c.Table("ghost"); err != ErrNoTable {
			t.Errorf("missing table: %v", err)
		}
		if _, err := c.CreateIndex(p, "ix", "t", "ghostcol"); err == nil {
			t.Error("bad index column accepted")
		}
		tbl, _ := c.Table("t")
		if _, err := tbl.Index("ghost"); err != ErrNoIndex {
			t.Errorf("missing index: %v", err)
		}
	})
}

func TestCompositePK(t *testing.T) {
	rig(t, func(p *sim.Proc, c *Catalog) {
		schema := row.NewSchema(
			row.Column{Name: "w", Type: row.Int64},
			row.Column{Name: "d", Type: row.Int64},
			row.Column{Name: "qty", Type: row.Int64},
		)
		tbl, _ := c.CreateTable(p, "stock", schema, "w", "d")
		tbl.Insert(p, row.Tuple{int64(1), int64(2), int64(10)})
		tbl.Insert(p, row.Tuple{int64(1), int64(3), int64(20)})
		tbl.Insert(p, row.Tuple{int64(2), int64(2), int64(30)})
		got, err := tbl.Get(p, int64(1), int64(3))
		if err != nil || got[2].(int64) != 20 {
			t.Errorf("composite get: %v %v", got, err)
		}
	})
}
