// Package catalog maintains table and index metadata and implements the
// table abstraction: a clustered B+tree keyed on the primary key holding
// full rows, plus any number of secondary B+trees mapping secondary keys
// to primary keys (the structures DTA recommends in the paper's tuned
// TPC setups).
package catalog

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"remotedb/internal/engine/btree"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/row"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
)

// Errors returned by catalog operations.
var (
	ErrTableExists = errors.New("catalog: table already exists")
	ErrNoTable     = errors.New("catalog: table does not exist")
	ErrNoIndex     = errors.New("catalog: index does not exist")
	ErrNotFound    = errors.New("catalog: row not found")
)

// Catalog is the schema registry for one database.
type Catalog struct {
	bp     *buffer.Pool
	tables map[string]*Table
}

// New creates an empty catalog over a buffer pool.
func New(bp *buffer.Pool) *Catalog {
	return &Catalog{bp: bp, tables: make(map[string]*Table)}
}

// Pool returns the catalog's buffer pool.
func (c *Catalog) Pool() *buffer.Pool { return c.bp }

// Table is a clustered table with optional secondary indexes and,
// when pushdown is enabled, a remote pushable segment mirroring the
// rows (see PushSegment).
type Table struct {
	Name      string
	Schema    *row.Schema
	PK        []string
	Clustered *btree.Tree
	Secondary map[string]*Index
	Push      *PushSegment // nil unless a pushable mirror was built
}

// PushFile is the surface a pushable segment's backing file must offer:
// donor-side evaluated range reads plus a plain fetch path for the
// fetch-all placement. core.File implements it.
type PushFile interface {
	PushRead(p *sim.Proc, off, n int64, q *rmem.PushQuery) ([]byte, rmem.PushStats, error)
	ReadAt(p *sim.Proc, b []byte, off int64) error
	PushChunk() int
}

// PushSegment is a table's remote pushable mirror: the rows as a
// chunk-aligned, length-prefixed record log in PK order. Records never
// cross a Chunk boundary, so any chunk-aligned byte range evaluates in
// isolation — per-partition pushdown falls out of splitting [0, Bytes)
// at chunk boundaries.
type PushSegment struct {
	File  PushFile
	Rows  int64
	Bytes int64 // log bytes (including chunk padding)
	Chunk int
}

// SetPushSegment installs (or clears) the table's pushable mirror.
func (t *Table) SetPushSegment(seg *PushSegment) { t.Push = seg }

// Partition splits the segment into dop chunk-aligned byte ranges of
// near-equal size; fewer ranges return when the segment is small.
func (seg *PushSegment) Partition(dop int) [][2]int64 {
	if dop < 1 {
		dop = 1
	}
	if seg.Chunk <= 0 {
		// Unchunked log: records may cross any byte boundary, so the
		// only safe range is the whole segment.
		if seg.Bytes == 0 {
			return nil
		}
		return [][2]int64{{0, seg.Bytes}}
	}
	chunks := seg.Bytes / int64(seg.Chunk)
	if chunks < int64(dop) {
		dop = int(chunks)
		if dop < 1 {
			dop = 1
		}
	}
	per := (chunks + int64(dop) - 1) / int64(dop)
	var out [][2]int64
	for off := int64(0); off < seg.Bytes; off += per * int64(seg.Chunk) {
		end := off + per*int64(seg.Chunk)
		if end > seg.Bytes {
			end = seg.Bytes
		}
		out = append(out, [2]int64{off, end})
	}
	return out
}

// Index is a secondary index: key = indexed columns + PK (for uniqueness),
// value = the encoded PK key of the clustered tree.
type Index struct {
	Name  string
	Table *Table
	Cols  []string
	Tree  *btree.Tree
}

// CreateTable registers a table clustered on pk.
func (c *Catalog) CreateTable(p *sim.Proc, name string, schema *row.Schema, pk ...string) (*Table, error) {
	if _, dup := c.tables[name]; dup {
		return nil, ErrTableExists
	}
	if len(pk) == 0 {
		return nil, errors.New("catalog: table needs a primary key")
	}
	for _, col := range pk {
		if schema.Ordinal(col) < 0 {
			return nil, fmt.Errorf("catalog: pk column %q not in schema", col)
		}
	}
	tree, err := btree.New(p, c.bp, name+"/clustered")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:      name,
		Schema:    schema,
		PK:        pk,
		Clustered: tree,
		Secondary: make(map[string]*Index),
	}
	c.tables[name] = t
	return t, nil
}

// Table returns a registered table.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, ErrNoTable
	}
	return t, nil
}

// Tables lists all registered tables.
func (c *Catalog) Tables() []*Table {
	var out []*Table
	for _, t := range c.tables {
		out = append(out, t)
	}
	return out
}

// CreateIndex builds a secondary index over cols; existing rows are
// indexed immediately.
func (c *Catalog) CreateIndex(p *sim.Proc, idxName, tableName string, cols ...string) (*Index, error) {
	t, err := c.Table(tableName)
	if err != nil {
		return nil, err
	}
	if _, dup := t.Secondary[idxName]; dup {
		return nil, fmt.Errorf("catalog: index %q exists", idxName)
	}
	for _, col := range cols {
		if t.Schema.Ordinal(col) < 0 {
			return nil, fmt.Errorf("catalog: index column %q not in schema", col)
		}
	}
	tree, err := btree.New(p, c.bp, idxName)
	if err != nil {
		return nil, err
	}
	idx := &Index{Name: idxName, Table: t, Cols: cols, Tree: tree}
	t.Secondary[idxName] = idx

	// Backfill from existing rows.
	it, err := t.Clustered.Scan(p, nil)
	if err != nil {
		return nil, err
	}
	var pairs []btree.Pair
	for {
		pair, ok, err := it.Next(p)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		tuple, err := row.Decode(t.Schema, pair.Val)
		if err != nil {
			return nil, err
		}
		pairs = append(pairs, btree.Pair{Key: idx.keyFor(tuple, pair.Key), Val: pair.Key})
	}
	if len(pairs) > 0 {
		// Entries arrive in PK order; sort by index key for bulk load.
		sortPairs(pairs)
		if err := tree.BulkLoad(p, pairs, 0.9); err != nil {
			return nil, err
		}
	}
	return idx, nil
}

// Index returns a secondary index by name.
func (t *Table) Index(name string) (*Index, error) {
	idx, ok := t.Secondary[name]
	if !ok {
		return nil, ErrNoIndex
	}
	return idx, nil
}

// PKKey encodes the primary key of a tuple.
func (t *Table) PKKey(tuple row.Tuple) []byte {
	return row.KeyOfColumns(t.Schema, tuple, t.PK...)
}

// keyFor builds the secondary-index key: indexed columns then the PK key
// (guaranteeing uniqueness for duplicate secondary values).
func (idx *Index) keyFor(tuple row.Tuple, pkKey []byte) []byte {
	k := row.KeyOfColumns(idx.Table.Schema, tuple, idx.Cols...)
	return append(k, pkKey...)
}

// Insert adds a row and maintains all secondary indexes.
func (t *Table) Insert(p *sim.Proc, tuple row.Tuple) error {
	img, err := row.Encode(nil, t.Schema, tuple)
	if err != nil {
		return err
	}
	pk := t.PKKey(tuple)
	if err := t.Clustered.Insert(p, pk, img); err != nil {
		return err
	}
	for _, idx := range t.Secondary {
		if err := idx.Tree.Insert(p, idx.keyFor(tuple, pk), pk); err != nil {
			return fmt.Errorf("catalog: index %s: %w", idx.Name, err)
		}
	}
	return nil
}

// Get fetches a row by primary key values.
func (t *Table) Get(p *sim.Proc, pkVals ...interface{}) (row.Tuple, error) {
	key := row.EncodeKey(nil, pkVals...)
	img, err := t.Clustered.Search(p, key)
	if err == btree.ErrNotFound {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	return row.Decode(t.Schema, img)
}

// Update replaces a row (matched by its primary key), maintaining
// secondary indexes whose columns changed.
func (t *Table) Update(p *sim.Proc, tuple row.Tuple) error {
	pk := t.PKKey(tuple)
	oldImg, err := t.Clustered.Search(p, pk)
	if err == btree.ErrNotFound {
		return ErrNotFound
	}
	if err != nil {
		return err
	}
	oldTuple, err := row.Decode(t.Schema, oldImg)
	if err != nil {
		return err
	}
	img, err := row.Encode(nil, t.Schema, tuple)
	if err != nil {
		return err
	}
	if err := t.Clustered.Update(p, pk, img); err != nil {
		return err
	}
	for _, idx := range t.Secondary {
		oldKey := idx.keyFor(oldTuple, pk)
		newKey := idx.keyFor(tuple, pk)
		if string(oldKey) == string(newKey) {
			continue
		}
		if err := idx.Tree.Delete(p, oldKey); err != nil && err != btree.ErrNotFound {
			return err
		}
		if err := idx.Tree.Put(p, newKey, pk); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes a row by primary key values.
func (t *Table) Delete(p *sim.Proc, pkVals ...interface{}) error {
	key := row.EncodeKey(nil, pkVals...)
	img, err := t.Clustered.Search(p, key)
	if err == btree.ErrNotFound {
		return ErrNotFound
	}
	if err != nil {
		return err
	}
	tuple, err := row.Decode(t.Schema, img)
	if err != nil {
		return err
	}
	if err := t.Clustered.Delete(p, key); err != nil {
		return err
	}
	for _, idx := range t.Secondary {
		if err := idx.Tree.Delete(p, idx.keyFor(tuple, key)); err != nil && err != btree.ErrNotFound {
			return err
		}
	}
	return nil
}

// BulkLoad loads rows (sorted or not) into an empty table and its
// existing secondary indexes.
func (t *Table) BulkLoad(p *sim.Proc, tuples []row.Tuple) error {
	pairs := make([]btree.Pair, len(tuples))
	for i, tuple := range tuples {
		img, err := row.Encode(nil, t.Schema, tuple)
		if err != nil {
			return err
		}
		pairs[i] = btree.Pair{Key: t.PKKey(tuple), Val: img}
	}
	sortPairs(pairs)
	if err := t.Clustered.BulkLoad(p, pairs, 0.9); err != nil {
		return err
	}
	for _, idx := range t.Secondary {
		ipairs := make([]btree.Pair, len(tuples))
		for i, tuple := range tuples {
			pk := t.PKKey(tuple)
			ipairs[i] = btree.Pair{Key: idx.keyFor(tuple, pk), Val: pk}
		}
		sortPairs(ipairs)
		if err := idx.Tree.BulkLoad(p, ipairs, 0.9); err != nil {
			return err
		}
	}
	return nil
}

// ScanRange decodes rows with from <= pk < to.
func (t *Table) ScanRange(p *sim.Proc, from, to []byte, limit int) ([]row.Tuple, error) {
	pairs, err := t.Clustered.ScanRange(p, from, to, limit)
	if err != nil {
		return nil, err
	}
	out := make([]row.Tuple, len(pairs))
	for i, pair := range pairs {
		out[i], err = row.Decode(t.Schema, pair.Val)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SeekRange returns the primary keys of rows whose indexed columns fall
// in [fromVals, toVals); lookup of the rows themselves is the caller's
// choice (index-only vs. lookup join).
func (idx *Index) SeekRange(p *sim.Proc, from, to []byte, limit int) ([][]byte, error) {
	pairs, err := idx.Tree.ScanRange(p, from, to, limit)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(pairs))
	for i, pair := range pairs {
		out[i] = pair.Val
	}
	return out, nil
}

// LookupRow fetches the full row for a clustered-tree key.
func (t *Table) LookupRow(p *sim.Proc, pkKey []byte) (row.Tuple, error) {
	img, err := t.Clustered.Search(p, pkKey)
	if err == btree.ErrNotFound {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	return row.Decode(t.Schema, img)
}

func sortPairs(pairs []btree.Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		return bytes.Compare(pairs[i].Key, pairs[j].Key) < 0
	})
}
