// Placement costing for pushed scans: once a table has a pushable
// segment in remote memory, a selective scan can run three ways —
// locally over the buffer pool, pushed to the donors (only qualifying
// bytes on the wire, donor CPU on the bill), or fetched whole and
// evaluated client-side. The wire term scales with selectivity, the
// donor term with segment size, so pushdown wins at low selectivity and
// fetch-all takes over as the predicate stops filtering — the REMOP
// observation that remote-tier operator placement must be costed, not
// assumed. ChoosePlacement's decision is cached in the plan cache
// alongside INLJ-vs-HJ.
package opt

import (
	"time"

	"remotedb/internal/rmem"
)

// PageBytes converts the per-8K-page tier costs into byte-rate terms
// for segment-sized transfers.
const PageBytes = 8192

// Placement is where a pushable scan's predicate runs.
type Placement int

// Scan placements, cheapest-at-low-selectivity first.
const (
	// PlacePush evaluates at the donors; only qualifying bytes return.
	PlacePush Placement = iota
	// PlaceFetchAll ships the whole segment and evaluates client-side.
	PlaceFetchAll
	// PlaceLocal scans the buffer-pool-resident base table instead of
	// the remote segment.
	PlaceLocal
)

func (pl Placement) String() string {
	switch pl {
	case PlacePush:
		return "PushScan"
	case PlaceFetchAll:
		return "FetchAll"
	case PlaceLocal:
		return "LocalScan"
	}
	return "unknown"
}

// PushScanInputs describes one selective scan over a pushable segment.
type PushScanInputs struct {
	Rows        int64   // records in the scanned range
	Bytes       int64   // segment log bytes in the range
	OutBytes    int64   // projected bytes per qualifying row
	Selectivity float64 // estimated fraction of rows qualifying
	Leaves      int     // pushable predicate leaf count
	DonorPrice  float64 // donor CPU price (0 = 1.0)
	LocalTier   Tier    // tier serving a local buffered scan of the base table
	DOP         int     // partitions evaluated concurrently (0/1 = serial)
}

// cpuDiv scales a CPU term by the plan's parallelism: compute spreads
// across partitions (donor cores for pushed eval, client cores for
// fetch-all eval), but the wire terms never divide — every returned
// byte funnels through the one client NIC regardless of DOP. That
// asymmetry is why parallel pushdown beats parallel fetch-all even
// when a single donor scans no faster than the wire ships.
func (in PushScanInputs) cpuDiv(d time.Duration) time.Duration {
	if in.DOP > 1 {
		return d / time.Duration(in.DOP)
	}
	return d
}

// wireCost prices moving n bytes from the given tier sequentially.
func (m *Model) wireCost(tier Tier, n int64) time.Duration {
	pages := (n + PageBytes - 1) / PageBytes
	return time.Duration(pages) * m.Tiers[tier].SeqPage
}

func (in PushScanInputs) matched() int64 {
	mr := int64(float64(in.Rows) * in.Selectivity)
	if mr < 0 {
		mr = 0
	}
	if mr > in.Rows {
		mr = in.Rows
	}
	return mr
}

// CostPushScan estimates a donor-evaluated scan: the donors verify and
// scan the whole segment (priced CPU), then only the qualifying
// projected bytes cross the wire and get decoded client-side.
func (m *Model) CostPushScan(in PushScanInputs) time.Duration {
	donor := rmem.PushEvalCost(in.Bytes, in.Rows, in.Leaves, in.DonorPrice)
	ret := in.matched() * in.OutBytes
	cost := in.cpuDiv(donor) + m.wireCost(TierRemote, ret)
	cost += in.cpuDiv(time.Duration(in.matched()) * m.RowCPU) // client-side decode
	cost += m.Tiers[TierRemote].RandomPage                    // request descriptor round trip
	return cost
}

// CostFetchAll estimates shipping the whole segment and evaluating
// client-side: the full wire bill, no donor CPU.
func (m *Model) CostFetchAll(in PushScanInputs) time.Duration {
	cost := m.wireCost(TierRemote, in.Bytes)
	cost += in.cpuDiv(time.Duration(in.Rows) * m.RowCPU) // client-side eval of every row
	return cost
}

// CostLocalScan estimates scanning the buffer-pool-resident base table:
// every page at the local tier's sequential rate, every row evaluated.
func (m *Model) CostLocalScan(in PushScanInputs) time.Duration {
	cost := m.wireCost(in.LocalTier, in.Bytes)
	cost += in.cpuDiv(time.Duration(in.Rows) * m.RowCPU)
	return cost
}

// ChoosePlacement picks the cheapest of push/fetch-all/local for the
// scan, returning the choice and all three estimates (push, fetch-all,
// local) for observability.
func (m *Model) ChoosePlacement(in PushScanInputs) (Placement, time.Duration, time.Duration, time.Duration) {
	push := m.CostPushScan(in)
	fetch := m.CostFetchAll(in)
	local := m.CostLocalScan(in)
	best, bestCost := PlacePush, push
	if fetch < bestCost {
		best, bestCost = PlaceFetchAll, fetch
	}
	if local < bestCost {
		best = PlaceLocal
	}
	return best, push, fetch, local
}

// PushCrossoverSelectivity finds the selectivity at which the model
// switches from pushed scan to fetch-all (bisection). Returns 1.0 when
// pushdown wins everywhere, 0 when fetch-all always wins.
func (m *Model) PushCrossoverSelectivity(in PushScanInputs) float64 {
	at := func(sel float64) bool {
		trial := in
		trial.Selectivity = sel
		return m.CostPushScan(trial) <= m.CostFetchAll(trial)
	}
	if at(1.0) {
		return 1.0
	}
	if !at(0.000001) {
		return 0
	}
	lo, hi := 0.000001, 1.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if at(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
