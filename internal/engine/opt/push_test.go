package opt

import (
	"math"
	"testing"
	"time"

	"remotedb/internal/rmem"
)

func pushIn(sel float64) PushScanInputs {
	return PushScanInputs{
		Rows:        100_000,
		Bytes:       16 << 20,
		OutBytes:    64,
		Selectivity: sel,
		Leaves:      2,
		LocalTier:   TierRemote,
	}
}

func TestCostPushScanArithmetic(t *testing.T) {
	m := NewModel()
	in := pushIn(0.01)
	matched := int64(float64(in.Rows) * in.Selectivity)
	donor := rmem.PushEvalCost(in.Bytes, in.Rows, in.Leaves, 1)
	retPages := (matched*in.OutBytes + PageBytes - 1) / PageBytes
	want := donor +
		time.Duration(retPages)*m.Tiers[TierRemote].SeqPage +
		time.Duration(matched)*m.RowCPU +
		m.Tiers[TierRemote].RandomPage
	if got := m.CostPushScan(in); got != want {
		t.Errorf("CostPushScan = %v, want hand-computed %v", got, want)
	}
	fetchPages := (in.Bytes + PageBytes - 1) / PageBytes
	wantFetch := time.Duration(fetchPages)*m.Tiers[TierRemote].SeqPage +
		time.Duration(in.Rows)*m.RowCPU
	if got := m.CostFetchAll(in); got != wantFetch {
		t.Errorf("CostFetchAll = %v, want hand-computed %v", got, wantFetch)
	}
}

func TestChoosePlacementSelectivityRegimes(t *testing.T) {
	m := NewModel()
	// 1% selectivity: the wire shrinks ~100x, donor CPU is cheap — push.
	if pl, push, fetch, _ := m.ChoosePlacement(pushIn(0.01)); pl != PlacePush {
		t.Errorf("1%% selectivity placed %v (push %v, fetch %v)", pl, push, fetch)
	}
	// 100% selectivity: every byte returns anyway, donor CPU is pure
	// overhead — fetch-all.
	if pl, push, fetch, _ := m.ChoosePlacement(pushIn(1.0)); pl != PlaceFetchAll {
		t.Errorf("100%% selectivity placed %v (push %v, fetch %v)", pl, push, fetch)
	}
	// An unselective scan of a local-memory-resident table beats both
	// remote options: same client eval bill, no wire and no donor CPU.
	in := pushIn(1.0)
	in.LocalTier = TierLocal
	if pl, _, _, _ := m.ChoosePlacement(in); pl != PlaceLocal {
		t.Errorf("local-resident table placed %v, want PlaceLocal", pl)
	}
}

func TestDonorPriceMovesCrossover(t *testing.T) {
	m := NewModel()
	cheap := m.PushCrossoverSelectivity(pushIn(0))
	pricey := pushIn(0)
	pricey.DonorPrice = 50
	expensive := m.PushCrossoverSelectivity(pricey)
	if !(expensive < cheap) {
		t.Errorf("pricier donor CPU should lower the crossover: %v vs %v", expensive, cheap)
	}
	if cheap <= 0 || cheap >= 1 {
		t.Errorf("crossover = %v, want interior point", cheap)
	}
}

func TestPushCrossoverMatchesHandMath(t *testing.T) {
	m := NewModel()
	in := pushIn(0)
	// Push and fetch-all costs are (up to page rounding) linear in
	// selectivity; solve CostPush(sel) = CostFetchAll for sel by hand:
	//   donor + sel·R·OB·(SeqR/P) + sel·R·RowCPU + RandR
	//     = B·(SeqR/P) + R·RowCPU
	seqPerByte := float64(m.Tiers[TierRemote].SeqPage) / PageBytes
	donor := float64(rmem.PushEvalCost(in.Bytes, in.Rows, in.Leaves, 1))
	fetch := float64(in.Bytes)*seqPerByte + float64(in.Rows)*float64(m.RowCPU)
	perSel := float64(in.Rows)*float64(in.OutBytes)*seqPerByte +
		float64(in.Rows)*float64(m.RowCPU)
	hand := (fetch - donor - float64(m.Tiers[TierRemote].RandomPage)) / perSel
	got := m.PushCrossoverSelectivity(in)
	if math.Abs(got-hand) > 0.01 {
		t.Errorf("crossover = %v, hand-computed %v", got, hand)
	}
	// And the model actually flips around it.
	lo, hi := pushIn(hand*0.9), pushIn(hand*1.1)
	if pl, _, _, _ := m.ChoosePlacement(lo); pl != PlacePush {
		t.Errorf("below crossover placed %v, want push", pl)
	}
	if pl, _, _, _ := m.ChoosePlacement(hi); pl != PlaceFetchAll {
		t.Errorf("above crossover placed %v, want fetch-all", pl)
	}
}
