package opt

import "testing"

func baseJoin() JoinInputs {
	return JoinInputs{
		OuterRows:      1000,
		InnerRows:      500000,
		InnerPages:     15000,
		IndexHeight:    3,
		MatchesPerSeek: 1,
		IndexTier:      TierSSD,
		TableTier:      TierSSD,
	}
}

func TestINLJWinsAtHighSelectivity(t *testing.T) {
	m := NewModel()
	in := baseJoin()
	in.OuterRows = 10
	plan, inlj, hj := m.ChooseJoin(in)
	if plan != PlanINLJ {
		t.Fatalf("10 outer rows: plan=%v inlj=%v hj=%v", plan, inlj, hj)
	}
}

func TestHJWinsAtLowSelectivity(t *testing.T) {
	m := NewModel()
	in := baseJoin()
	in.OuterRows = 400000
	plan, _, _ := m.ChooseJoin(in)
	if plan != PlanHashJoin {
		t.Fatalf("400K outer rows should hash join")
	}
}

// The paper's Figure 15b claim: moving the index to a faster tier moves
// the crossover toward lower selectivity thresholds for HJ (INLJ stays
// competitive longer).
func TestCrossoverShiftsWithTier(t *testing.T) {
	m := NewModel()
	in := baseJoin()
	const totalOuter = 1500000

	in.IndexTier, in.TableTier = TierSSD, TierSSD
	ssdCross := m.CrossoverSelectivity(in, totalOuter)

	in.IndexTier, in.TableTier = TierRemote, TierRemote
	remoteCross := m.CrossoverSelectivity(in, totalOuter)

	if !(remoteCross > ssdCross) {
		t.Fatalf("crossover: remote %.5f should exceed ssd %.5f", remoteCross, ssdCross)
	}
	if ssdCross <= 0 || remoteCross >= 1 {
		t.Fatalf("degenerate crossovers: ssd=%.5f remote=%.5f", ssdCross, remoteCross)
	}
}

func TestCrossoverExtremes(t *testing.T) {
	m := NewModel()
	in := baseJoin()
	// Free index seeks: INLJ wins everywhere.
	m.Tiers[TierLocal] = Costs{}
	in.IndexTier, in.TableTier = TierLocal, TierLocal
	if c := m.CrossoverSelectivity(in, 1000000); c != 1.0 {
		t.Fatalf("free-seek crossover = %v", c)
	}
	// Catastrophic seeks against a tiny inner table: HJ wins everywhere.
	in.IndexTier, in.TableTier = TierHDD, TierHDD
	in.InnerPages = 1
	in.InnerRows = 100
	if c := m.CrossoverSelectivity(in, 1000000); c != 0 {
		t.Fatalf("hopeless-seek crossover = %v", c)
	}
}

func TestCostMonotoneInOuterRows(t *testing.T) {
	m := NewModel()
	in := baseJoin()
	prev := m.CostINLJ(in)
	for rows := int64(2000); rows < 100000; rows *= 2 {
		in.OuterRows = rows
		cur := m.CostINLJ(in)
		if cur <= prev {
			t.Fatalf("INLJ cost not monotone at %d rows", rows)
		}
		prev = cur
	}
}

func TestTierOrdering(t *testing.T) {
	costs := DefaultCosts()
	if !(costs[TierLocal].RandomPage < costs[TierRemote].RandomPage &&
		costs[TierRemote].RandomPage < costs[TierSSD].RandomPage &&
		costs[TierSSD].RandomPage < costs[TierHDD].RandomPage) {
		t.Fatal("random-page costs must order Local < Remote < SSD < HDD")
	}
}
