// Package opt implements the device-aware cost model the paper argues
// the optimizer needs once semantic-cache structures live in remote
// memory (Section 6.4): the random-seek and sequential-scan costs of a
// structure depend on the tier holding it (HDD, SSD, remote memory,
// local memory), which moves the crossover point between an index
// nested-loop join and a hash join (Figure 15b).
package opt

import (
	"time"
)

// Tier is where a structure's pages live.
type Tier int

// Storage tiers, fastest last.
const (
	TierHDD Tier = iota
	TierSSD
	TierRemote
	TierLocal
)

func (t Tier) String() string {
	switch t {
	case TierHDD:
		return "HDD"
	case TierSSD:
		return "SSD"
	case TierRemote:
		return "RemoteMemory"
	case TierLocal:
		return "LocalMemory"
	}
	return "unknown"
}

// Costs is the per-8K-page access cost of a tier.
type Costs struct {
	RandomPage time.Duration // one random page fetch
	SeqPage    time.Duration // one page within a large sequential scan
}

// DefaultCosts mirrors the calibrated device models (Figures 3/4):
// HDD(20) random ≈ 3.7 ms vs 4.7 µs/page sequential; SSD ≈ 260 µs vs
// 20 µs; remote memory over RDMA ≈ 13 µs vs 1.9 µs; local memory < 1 µs.
func DefaultCosts() map[Tier]Costs {
	return map[Tier]Costs{
		TierHDD:    {RandomPage: 3700 * time.Microsecond, SeqPage: 4700 * time.Nanosecond},
		TierSSD:    {RandomPage: 260 * time.Microsecond, SeqPage: 20 * time.Microsecond},
		TierRemote: {RandomPage: 13 * time.Microsecond, SeqPage: 1900 * time.Nanosecond},
		TierLocal:  {RandomPage: 500 * time.Nanosecond, SeqPage: 300 * time.Nanosecond},
	}
}

// Model is the cost model.
type Model struct {
	Tiers   map[Tier]Costs
	RowCPU  time.Duration // per-row processing
	HashCPU time.Duration // per-row hash build/probe
}

// NewModel builds a model with the default tier table.
func NewModel() *Model {
	return &Model{
		Tiers:   DefaultCosts(),
		RowCPU:  300 * time.Nanosecond,
		HashCPU: 200 * time.Nanosecond,
	}
}

// JoinInputs describes a two-table equi-join for plan choice.
type JoinInputs struct {
	OuterRows  int64 // rows surviving the outer-side predicate
	InnerRows  int64 // total rows of the inner table
	InnerPages int64 // pages of the inner table (scan denominator)
	// InnerIndex describes the secondary index usable by INLJ.
	IndexHeight    int   // B-tree levels touched per seek
	MatchesPerSeek int64 // average inner rows per outer row
	IndexTier      Tier  // where the index pages live
	TableTier      Tier  // where the base table pages live
}

// CostINLJ estimates an index nested-loop join: one index seek plus
// bookmark lookups per outer row.
func (m *Model) CostINLJ(in JoinInputs) time.Duration {
	c := m.Tiers[in.IndexTier]
	tbl := m.Tiers[in.TableTier]
	perOuter := time.Duration(in.IndexHeight)*c.RandomPage + // seek
		time.Duration(in.MatchesPerSeek)*tbl.RandomPage + // bookmark lookups
		time.Duration(in.MatchesPerSeek)*m.RowCPU
	return time.Duration(in.OuterRows) * perOuter
}

// CostHJ estimates a hash join: scan the inner table sequentially, build
// a hash table, probe with the outer rows.
func (m *Model) CostHJ(in JoinInputs) time.Duration {
	c := m.Tiers[in.TableTier]
	scan := time.Duration(in.InnerPages) * c.SeqPage
	build := time.Duration(in.InnerRows) * (m.RowCPU + m.HashCPU)
	probe := time.Duration(in.OuterRows) * m.HashCPU
	return scan + build + probe
}

// JoinPlan names the chosen strategy.
type JoinPlan int

// Join strategies.
const (
	PlanINLJ JoinPlan = iota
	PlanHashJoin
)

func (p JoinPlan) String() string {
	if p == PlanINLJ {
		return "IndexNestedLoopJoin"
	}
	return "HashJoin"
}

// ChooseJoin picks the cheaper strategy.
func (m *Model) ChooseJoin(in JoinInputs) (JoinPlan, time.Duration, time.Duration) {
	inlj := m.CostINLJ(in)
	hj := m.CostHJ(in)
	if inlj <= hj {
		return PlanINLJ, inlj, hj
	}
	return PlanHashJoin, inlj, hj
}

// ScanInputs describes a (possibly range-restricted) table scan for
// DOP choice.
type ScanInputs struct {
	Rows  int64 // rows the scan will read
	Pages int64 // pages the scan will read
	Tier  Tier  // where the table pages live
}

// WorkerStartup is the fixed cost of spawning one parallel scan worker
// (process setup plus its first tree descent). It is what makes small
// scans stay serial: below ~a few thousand rows the startup dwarfs the
// per-page savings.
const WorkerStartup = 100 * time.Microsecond

// CostScan estimates a scan at the given DOP: I/O and per-row CPU divide
// across workers, startup is paid per worker, and the exchange merge
// adds a small per-row toll on the consumer.
func (m *Model) CostScan(in ScanInputs, dop int) time.Duration {
	if dop < 1 {
		dop = 1
	}
	c := m.Tiers[in.Tier]
	work := time.Duration(in.Pages)*c.SeqPage + time.Duration(in.Rows)*m.RowCPU
	cost := work / time.Duration(dop)
	if dop > 1 {
		cost += time.Duration(dop) * WorkerStartup
		cost += time.Duration(in.Rows) * (m.RowCPU / 4) // exchange merge toll
	}
	return cost
}

// ChooseScanDOP picks the cheapest DOP in [1, maxDOP]. The curve flattens
// once the merge toll and worker startup eat the division, which is the
// model-side analogue of the NIC/core saturation in Figure 11b.
func (m *Model) ChooseScanDOP(in ScanInputs, maxDOP int) int {
	best, bestCost := 1, m.CostScan(in, 1)
	for d := 2; d <= maxDOP; d++ {
		if c := m.CostScan(in, d); c < bestCost {
			best, bestCost = d, c
		}
	}
	return best
}

// CrossoverSelectivity finds the fraction of outer rows at which the
// model switches from INLJ to HJ (bisection over selectivity). Returns
// 1.0 when INLJ wins everywhere, 0 when HJ wins everywhere.
func (m *Model) CrossoverSelectivity(in JoinInputs, totalOuter int64) float64 {
	at := func(sel float64) JoinPlan {
		trial := in
		trial.OuterRows = int64(sel * float64(totalOuter))
		if trial.OuterRows < 1 {
			trial.OuterRows = 1
		}
		plan, _, _ := m.ChooseJoin(trial)
		return plan
	}
	if at(1.0) == PlanINLJ {
		return 1.0
	}
	if at(0.000001) == PlanHashJoin {
		return 0
	}
	lo, hi := 0.000001, 1.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if at(mid) == PlanINLJ {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
