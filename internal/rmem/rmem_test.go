package rmem

import (
	"bytes"
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/hw/nic"
	"remotedb/internal/metrics"
	"remotedb/internal/sim"
)

func testServer(k *sim.Kernel, name string) *cluster.Server {
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 256 << 20
	return cluster.NewServer(k, name, cfg)
}

func TestPoolLifecycle(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	k.Go("setup", func(p *sim.Proc) {
		pool, err := NewPool(p, m, 1<<20, 8)
		if err != nil {
			t.Error(err)
			return
		}
		if pool.FreeCount() != 8 || pool.TotalCount() != 8 {
			t.Errorf("counts = %d/%d", pool.FreeCount(), pool.TotalCount())
		}
		if m.MemoryBrokered() != 8<<20 {
			t.Errorf("brokered = %d", m.MemoryBrokered())
		}
		mr, err := pool.Acquire()
		if err != nil {
			t.Error(err)
			return
		}
		if !mr.Leased() || pool.FreeCount() != 7 {
			t.Error("acquire did not lease")
		}
		pool.ReleaseMR(mr)
		if mr.Leased() || pool.FreeCount() != 8 {
			t.Error("release did not unlease")
		}
	})
	k.Run(0)
}

func TestPoolExhaustion(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	k.Go("setup", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 1)
		if _, err := pool.Acquire(); err != nil {
			t.Error(err)
		}
		if _, err := pool.Acquire(); err == nil {
			t.Error("second acquire should fail")
		}
	})
	k.Run(0)
}

func TestPoolShrinkUnderPressure(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	k.Go("setup", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 4)
		released := pool.Shrink(2 << 20)
		if released != 2<<20 {
			t.Errorf("released = %d", released)
		}
		if pool.TotalCount() != 2 || m.MemoryBrokered() != 2<<20 {
			t.Errorf("after shrink: total=%d brokered=%d", pool.TotalCount(), m.MemoryBrokered())
		}
	})
	k.Run(0)
}

func TestRevokedMRRejectsAccess(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	k.Go("setup", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 1)
		mr, _ := pool.Acquire()
		c := NewClient(p, db, DefaultClientConfig())
		tr := NewTransport(nic.ProtoRDMA)
		pool.RevokeAll()
		buf := make([]byte, 8192)
		if err := tr.Read(p, c, mr, 0, buf); err != ErrRevoked {
			t.Errorf("read on revoked MR: err = %v, want ErrRevoked", err)
		}
	})
	k.Run(0)
}

func TestTransportMovesRealBytes(t *testing.T) {
	for _, proto := range []nic.Protocol{nic.ProtoRDMA, nic.ProtoSMBDirect, nic.ProtoSMB} {
		k := sim.New(1)
		m := testServer(k, "m1")
		db := testServer(k, "db1")
		k.Go("xfer", func(p *sim.Proc) {
			pool, _ := NewPool(p, m, 1<<20, 1)
			mr, _ := pool.Acquire()
			c := NewClient(p, db, DefaultClientConfig())
			tr := NewTransport(proto)
			src := bytes.Repeat([]byte{0xAB}, 8192)
			if err := tr.Write(p, c, mr, 4096, src); err != nil {
				t.Error(err)
				return
			}
			dst := make([]byte, 8192)
			if err := tr.Read(p, c, mr, 4096, dst); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(src, dst) {
				t.Errorf("%v: bytes corrupted in transfer", proto)
			}
		})
		k.Run(0)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	k.Go("x", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 4096, 1)
		mr, _ := pool.Acquire()
		c := NewClient(p, db, DefaultClientConfig())
		tr := NewTransport(nic.ProtoRDMA)
		if err := tr.Read(p, c, mr, 0, make([]byte, 8192)); err == nil {
			t.Error("read past MR end should fail")
		}
		if err := tr.Write(p, c, mr, -1, make([]byte, 10)); err == nil {
			t.Error("negative offset should fail")
		}
	})
	k.Run(0)
}

// drive runs the SQLIO pattern against remote memory over a protocol.
func drive(t *testing.T, proto nic.Protocol, threads, ioSize int, dur time.Duration) (bps float64, lat time.Duration) {
	t.Helper()
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	hist := metrics.NewHistogram()
	var bytesMoved int64
	k.Go("main", func(p *sim.Proc) {
		mrSize := 16 << 20
		pool, err := NewPool(p, m, mrSize, 8)
		if err != nil {
			t.Error(err)
			return
		}
		var mrs []*MR
		for i := 0; i < 8; i++ {
			mr, _ := pool.Acquire()
			mrs = append(mrs, mr)
		}
		cfg := DefaultClientConfig()
		if proto != nic.ProtoRDMA {
			cfg.Mode = AccessAsync
		}
		c := NewClient(p, db, cfg)
		tr := NewTransport(proto)
		start := p.Now()
		end := start + dur
		for i := 0; i < threads; i++ {
			k.Go("io", func(w *sim.Proc) {
				buf := make([]byte, ioSize)
				for w.Now() < end {
					mr := mrs[w.Rand().Intn(len(mrs))]
					off := w.Rand().Intn(mrSize-ioSize+1) / ioSize * ioSize
					t0 := w.Now()
					if err := tr.Read(w, c, mr, off, buf); err != nil {
						t.Error(err)
						return
					}
					hist.Observe(w.Now() - t0)
					bytesMoved += int64(ioSize)
				}
			})
		}
	})
	k.Run(dur + 100*time.Millisecond)
	return float64(bytesMoved) / dur.Seconds(), hist.Mean()
}

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if got < want*(1-tol) || got > want*(1+tol) {
		t.Errorf("%s = %.4g, want %.4g ±%.0f%%", name, got, want, tol*100)
	}
}

// Calibration against Figures 3 and 4 (remote-memory columns).
func TestCustomCalibration(t *testing.T) {
	bps, lat := drive(t, nic.ProtoRDMA, 20, 8192, 500*time.Millisecond)
	within(t, "custom random bps", bps, 4.27e9, 0.25)
	within(t, "custom random lat", lat.Seconds(), 36e-6, 0.35)

	bps, lat = drive(t, nic.ProtoRDMA, 5, 512<<10, 500*time.Millisecond)
	within(t, "custom seq bps", bps, 5.1e9, 0.20)
	within(t, "custom seq lat", lat.Seconds(), 487e-6, 0.25)
}

func TestSMBDirectCalibration(t *testing.T) {
	bps, lat := drive(t, nic.ProtoSMBDirect, 20, 8192, 500*time.Millisecond)
	within(t, "smbdirect random bps", bps, 1.36e9, 0.25)
	within(t, "smbdirect random lat", lat.Seconds(), 109e-6, 0.35)

	bps, lat = drive(t, nic.ProtoSMBDirect, 5, 512<<10, 500*time.Millisecond)
	within(t, "smbdirect seq bps", bps, 5.09e9, 0.20)
	within(t, "smbdirect seq lat", lat.Seconds(), 488e-6, 0.25)
}

func TestSMBCalibration(t *testing.T) {
	bps, lat := drive(t, nic.ProtoSMB, 20, 8192, 500*time.Millisecond)
	within(t, "smb random bps", bps, 0.64e9, 0.30)
	within(t, "smb random lat", lat.Seconds(), 236e-6, 0.35)

	bps, lat = drive(t, nic.ProtoSMB, 5, 512<<10, 500*time.Millisecond)
	within(t, "smb seq bps", bps, 3.36e9, 0.25)
	within(t, "smb seq lat", lat.Seconds(), 723e-6, 0.30)
}

// Protocol ordering must match the paper even if absolute numbers drift.
func TestProtocolOrdering(t *testing.T) {
	custom, _ := drive(t, nic.ProtoRDMA, 20, 8192, 200*time.Millisecond)
	smbd, _ := drive(t, nic.ProtoSMBDirect, 20, 8192, 200*time.Millisecond)
	smb, _ := drive(t, nic.ProtoSMB, 20, 8192, 200*time.Millisecond)
	if !(custom > smbd && smbd > smb) {
		t.Fatalf("random throughput ordering violated: custom=%.3g smbdirect=%.3g smb=%.3g", custom, smbd, smb)
	}
}

// The rejected design choices must cost what the paper says they cost.
func TestOnDemandRegistrationOverhead(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	var stagingLat, onDemandLat time.Duration
	k.Go("x", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 1)
		mr, _ := pool.Acquire()
		tr := NewTransport(nic.ProtoRDMA)
		buf := make([]byte, 8192)

		cfg := DefaultClientConfig()
		c1 := NewClient(p, db, cfg)
		t0 := p.Now()
		tr.Read(p, c1, mr, 0, buf)
		stagingLat = p.Now() - t0

		cfg.Reg = RegOnDemand
		c2 := NewClient(p, db, cfg)
		t0 = p.Now()
		tr.Read(p, c2, mr, 0, buf)
		onDemandLat = p.Now() - t0
	})
	k.Run(0)
	// Paper: registration ~50µs vs memcpy ~2µs; the delta dominates.
	delta := onDemandLat - stagingLat
	if delta < 40*time.Microsecond || delta > 60*time.Microsecond {
		t.Fatalf("on-demand penalty = %v, want ~48µs", delta)
	}
}

func TestSyncAvoidsContextSwitch(t *testing.T) {
	// Sync access on an idle machine should beat async by about the
	// context-switch cost.
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	var syncLat, asyncLat time.Duration
	k.Go("x", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 1)
		mr, _ := pool.Acquire()
		tr := NewTransport(nic.ProtoRDMA)
		buf := make([]byte, 8192)

		cfg := DefaultClientConfig()
		c1 := NewClient(p, db, cfg)
		t0 := p.Now()
		tr.Read(p, c1, mr, 0, buf)
		syncLat = p.Now() - t0

		cfg.Mode = AccessAsync
		c2 := NewClient(p, db, cfg)
		t0 = p.Now()
		tr.Read(p, c2, mr, 0, buf)
		asyncLat = p.Now() - t0
	})
	k.Run(0)
	if asyncLat <= syncLat {
		t.Fatalf("async (%v) should be slower than sync (%v)", asyncLat, syncLat)
	}
}

func TestAdaptiveModeSwitches(t *testing.T) {
	// Adaptive completion must behave like sync for an 8K transfer
	// (estimate under the spin threshold) and like async for a large one.
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	k.Go("t", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 4<<20, 2)
		mr, _ := pool.Acquire()
		tr := NewTransport(nic.ProtoRDMA)

		lat := func(mode AccessMode, size int) time.Duration {
			cfg := DefaultClientConfig()
			cfg.Mode = mode
			c := NewClient(p, db, cfg)
			buf := make([]byte, size)
			t0 := p.Now()
			if err := tr.Read(p, c, mr, 0, buf); err != nil {
				t.Error(err)
			}
			return p.Now() - t0
		}
		// Small transfer: adaptive == sync, both beat async.
		if a, s := lat(AccessAdaptive, 8192), lat(AccessSync, 8192); a != s {
			t.Errorf("adaptive small (%v) should equal sync (%v)", a, s)
		}
		// Large transfer: adaptive == async (pays the context switch).
		big := 2 << 20
		if a, as := lat(AccessAdaptive, big), lat(AccessAsync, big); a != as {
			t.Errorf("adaptive large (%v) should equal async (%v)", a, as)
		}
	})
	k.Run(time.Minute)
}
