package rmem

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"remotedb/internal/hw/nic"
	"remotedb/internal/sim"
)

var testKey = [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}

func TestEncryptedRoundTrip(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	k.Go("t", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 1)
		mr, _ := pool.Acquire()
		cfg := DefaultClientConfig()
		cfg.Encrypt = true
		cfg.Key = testKey
		c := NewClient(p, db, cfg)
		tr := NewTransport(nic.ProtoRDMA)

		plain := bytes.Repeat([]byte("secret-row-data!"), 512) // 8 KiB
		if err := tr.Write(p, c, mr, 4096, plain); err != nil {
			t.Error(err)
			return
		}
		// The donor's memory must hold ciphertext, not the plaintext.
		if bytes.Contains(mr.buf, []byte("secret-row-data!")) {
			t.Error("plaintext visible in donor memory")
		}
		got := make([]byte, len(plain))
		if err := tr.Read(p, c, mr, 4096, got); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(plain, got) {
			t.Error("encrypted round trip corrupted")
		}
	})
	k.Run(time.Minute)
}

func TestEncryptedUnalignedOffsets(t *testing.T) {
	// CTR keystream positioning must be correct for arbitrary offsets:
	// write a big region, then read back sub-ranges at odd offsets.
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	k.Go("t", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 1)
		mr, _ := pool.Acquire()
		cfg := DefaultClientConfig()
		cfg.Encrypt = true
		cfg.Key = testKey
		c := NewClient(p, db, cfg)
		tr := NewTransport(nic.ProtoRDMA)

		plain := make([]byte, 10000)
		for i := range plain {
			plain[i] = byte(i * 7)
		}
		if err := tr.Write(p, c, mr, 123, plain); err != nil {
			t.Error(err)
			return
		}
		for _, window := range []struct{ off, n int }{{123, 100}, {124, 16}, {1000, 1}, {123 + 9999, 1}, {5000, 3000}} {
			got := make([]byte, window.n)
			if err := tr.Read(p, c, mr, window.off, got); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, plain[window.off-123:window.off-123+window.n]) {
				t.Errorf("window at %d+%d decrypts wrong", window.off, window.n)
			}
		}
	})
	k.Run(time.Minute)
}

func TestEncryptionChargesCPU(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	var plainLat, encLat time.Duration
	k.Go("t", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 1)
		mr, _ := pool.Acquire()
		tr := NewTransport(nic.ProtoRDMA)
		buf := make([]byte, 8192)

		c1 := NewClient(p, db, DefaultClientConfig())
		t0 := p.Now()
		tr.Read(p, c1, mr, 0, buf)
		plainLat = p.Now() - t0

		cfg := DefaultClientConfig()
		cfg.Encrypt = true
		cfg.Key = testKey
		c2 := NewClient(p, db, cfg)
		t0 = p.Now()
		tr.Read(p, c2, mr, 0, buf)
		encLat = p.Now() - t0
	})
	k.Run(time.Minute)
	delta := encLat - plainLat
	want := encryptCost(8192)
	if delta < want/2 || delta > want*2 {
		t.Fatalf("encryption overhead = %v, want ~%v", delta, want)
	}
}

// Property: xcrypt is an involution at any (mr, offset) and different
// offsets produce different keystreams.
func TestXcryptProperties(t *testing.T) {
	c := newCryptor(testKey)
	mr := MRID{Server: "m1", Index: 3}
	f := func(data []byte, off uint16) bool {
		if len(data) == 0 {
			return true
		}
		orig := append([]byte(nil), data...)
		c.xcrypt(mr, int(off), data)
		cipher1 := append([]byte(nil), data...)
		c.xcrypt(mr, int(off), data)
		if !bytes.Equal(data, orig) {
			return false
		}
		// A different offset must give different ciphertext (for inputs
		// long enough that collision is impossible).
		if len(orig) >= 16 {
			tmp := append([]byte(nil), orig...)
			c.xcrypt(mr, int(off)+1, tmp)
			if bytes.Equal(tmp, cipher1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentMRsDifferentKeystreams(t *testing.T) {
	c := newCryptor(testKey)
	data1 := bytes.Repeat([]byte{0}, 64)
	data2 := bytes.Repeat([]byte{0}, 64)
	c.xcrypt(MRID{Server: "m1", Index: 1}, 0, data1)
	c.xcrypt(MRID{Server: "m1", Index: 2}, 0, data2)
	if bytes.Equal(data1, data2) {
		t.Fatal("different MRs share a keystream")
	}
}
