package rmem

import (
	"bytes"
	"testing"
	"time"

	"remotedb/internal/fault"
	"remotedb/internal/hw/nic"
	"remotedb/internal/sim"
)

// TestReadWithinZeroDeadlinePlainRead verifies deadline 0 degenerates to
// an ordinary transfer.
func TestReadWithinZeroDeadlinePlainRead(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	k.Go("setup", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 1)
		mr, _ := pool.Acquire()
		c := NewClient(p, db, DefaultClientConfig())
		tr := NewTransport(nic.ProtoRDMA)
		want := bytes.Repeat([]byte{0xAB}, 8192)
		if err := tr.Write(p, c, mr, 0, want); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8192)
		if err := ReadWithin(p, tr, c, mr, 0, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Error("unbounded ReadWithin returned wrong bytes")
		}
		if c.DeadlineMisses != 0 {
			t.Errorf("DeadlineMisses = %d on the unbounded path", c.DeadlineMisses)
		}
	})
	k.Run(0)
}

// TestReadWithinGenerousDeadline verifies a deadline far past the
// transfer time returns the correct data with no miss recorded.
func TestReadWithinGenerousDeadline(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	k.Go("setup", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 1)
		mr, _ := pool.Acquire()
		c := NewClient(p, db, DefaultClientConfig())
		tr := NewTransport(nic.ProtoRDMA)
		want := bytes.Repeat([]byte{0x5C}, 8192)
		if err := tr.Write(p, c, mr, 0, want); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8192)
		if err := ReadWithin(p, tr, c, mr, 0, got, p.Now()+time.Second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Error("bounded ReadWithin returned wrong bytes")
		}
		if c.DeadlineMisses != 0 {
			t.Errorf("DeadlineMisses = %d", c.DeadlineMisses)
		}
	})
	k.Run(0)
}

// TestReadWithinMissReturnsErrSlow injects donor-side slowness far past
// the deadline: the caller gets ErrSlow at the deadline (not after the
// full transfer), the miss counter ticks, and the late completion lands
// in a private buffer, leaving the caller's memory untouched.
func TestReadWithinMissReturnsErrSlow(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	k.Go("setup", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 1)
		mr, _ := pool.Acquire()
		c := NewClient(p, db, DefaultClientConfig())
		tr := NewTransport(nic.ProtoRDMA)
		if err := tr.Write(p, c, mr, 0, bytes.Repeat([]byte{0xEE}, 8192)); err != nil {
			t.Fatal(err)
		}
		m.SetServiceDelay(50 * time.Millisecond)
		dst := bytes.Repeat([]byte{0x11}, 8192)
		start := p.Now()
		err := ReadWithin(p, tr, c, mr, 0, dst, p.Now()+time.Millisecond)
		if !fault.Slow(err) || !fault.Retryable(err) {
			t.Fatalf("err = %v, want ErrSlow (retryable)", err)
		}
		if waited := p.Now() - start; waited > 2*time.Millisecond {
			t.Errorf("caller blocked %v past a 1ms deadline", waited)
		}
		if c.DeadlineMisses != 1 {
			t.Errorf("DeadlineMisses = %d, want 1", c.DeadlineMisses)
		}
		for _, b := range dst {
			if b != 0x11 {
				t.Fatal("abandoned read clobbered caller buffer")
			}
		}
		// Let the orphaned transfer drain, then confirm the donor works
		// again once the slowness clears.
		p.Sleep(100 * time.Millisecond)
		m.SetServiceDelay(0)
		got := make([]byte, 8192)
		if err := ReadWithin(p, tr, c, mr, 0, got, p.Now()+time.Second); err != nil {
			t.Fatal(err)
		}
		if got[0] != 0xEE {
			t.Error("post-recovery read returned wrong bytes")
		}
	})
	k.Run(0)
}

// TestTransportBudgetCheckAtIssue verifies both transports refuse to
// start a transfer whose proc deadline has already passed.
func TestTransportBudgetCheckAtIssue(t *testing.T) {
	for _, proto := range []nic.Protocol{nic.ProtoRDMA, nic.ProtoSMB} {
		k := sim.New(1)
		m := testServer(k, "m1")
		db := testServer(k, "db1")
		k.Go("setup", func(p *sim.Proc) {
			pool, _ := NewPool(p, m, 1<<20, 1)
			mr, _ := pool.Acquire()
			c := NewClient(p, db, DefaultClientConfig())
			tr := NewTransport(proto)
			p.Sleep(10 * time.Millisecond)
			p.SetDeadline(p.Now() - time.Millisecond)
			buf := make([]byte, 4096)
			if err := tr.Read(p, c, mr, 0, buf); !fault.Slow(err) {
				t.Errorf("%v: read past deadline: err = %v, want ErrSlow", proto, err)
			}
			if err := tr.Write(p, c, mr, 0, buf); !fault.Slow(err) {
				t.Errorf("%v: write past deadline: err = %v, want ErrSlow", proto, err)
			}
			if c.DeadlineMisses != 2 {
				t.Errorf("%v: DeadlineMisses = %d, want 2", proto, c.DeadlineMisses)
			}
			p.SetDeadline(0)
		})
		k.Run(0)
	}
}
