package rmem

import (
	"bytes"
	"testing"
	"time"

	"remotedb/internal/hw/nic"
	"remotedb/internal/sim"
)

func TestReadVFewerRoundTripsThanScalar(t *testing.T) {
	const pages = 16
	const pageSz = 8192
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	k.Go("x", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, pages*pageSz, 1)
		mr, _ := pool.Acquire()
		tr := NewTransport(nic.ProtoRDMA)
		c := NewClient(p, db, DefaultClientConfig())

		// Scalar: one round trip per page.
		buf := make([]byte, pageSz)
		t0 := p.Now()
		for i := 0; i < pages; i++ {
			if err := tr.Read(p, c, mr, i*pageSz, buf); err != nil {
				t.Error(err)
				return
			}
		}
		scalarTime := p.Now() - t0
		scalarRT := c.RoundTrips
		if scalarRT != pages {
			t.Errorf("scalar round trips = %d, want %d", scalarRT, pages)
		}

		// Vectored: one doorbell, one wire message to the single owner.
		vecs := make([]IOVec, pages)
		for i := range vecs {
			vecs[i] = IOVec{MR: mr, Off: i * pageSz, Buf: make([]byte, pageSz)}
		}
		t0 = p.Now()
		if errs := c.ReadV(p, tr, vecs); errs != nil {
			t.Errorf("ReadV errs = %v", errs)
			return
		}
		batchedTime := p.Now() - t0
		batchedRT := c.RoundTrips - scalarRT
		if batchedRT != 1 {
			t.Errorf("batched round trips = %d, want 1", batchedRT)
		}
		if batchedTime >= scalarTime {
			t.Errorf("batched read (%v) should beat %d scalar reads (%v)", batchedTime, pages, scalarTime)
		}
	})
	k.Run(time.Minute)
}

func TestWriteVMovesRealBytes(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	k.Go("x", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 1)
		mr, _ := pool.Acquire()
		tr := NewTransport(nic.ProtoRDMA)
		c := NewClient(p, db, DefaultClientConfig())
		var wv []IOVec
		for i := 0; i < 8; i++ {
			wv = append(wv, IOVec{MR: mr, Off: i * 4096, Buf: bytes.Repeat([]byte{byte(i + 1)}, 4096)})
		}
		if errs := c.WriteV(p, tr, wv); errs != nil {
			t.Fatalf("WriteV errs = %v", errs)
		}
		var rv []IOVec
		for i := 0; i < 8; i++ {
			rv = append(rv, IOVec{MR: mr, Off: i * 4096, Buf: make([]byte, 4096)})
		}
		if errs := c.ReadV(p, tr, rv); errs != nil {
			t.Fatalf("ReadV errs = %v", errs)
		}
		for i := range rv {
			if !bytes.Equal(rv[i].Buf, wv[i].Buf) {
				t.Errorf("element %d corrupted in vectored transfer", i)
			}
		}
	})
	k.Run(time.Minute)
}

func TestVectoredOneRoundTripPerDestination(t *testing.T) {
	k := sim.New(1)
	m1 := testServer(k, "m1")
	m2 := testServer(k, "m2")
	db := testServer(k, "db1")
	k.Go("x", func(p *sim.Proc) {
		pool1, _ := NewPool(p, m1, 1<<20, 1)
		pool2, _ := NewPool(p, m2, 1<<20, 1)
		mr1, _ := pool1.Acquire()
		mr2, _ := pool2.Acquire()
		tr := NewTransport(nic.ProtoRDMA)
		c := NewClient(p, db, DefaultClientConfig())
		vecs := []IOVec{
			{MR: mr1, Off: 0, Buf: make([]byte, 8192)},
			{MR: mr2, Off: 0, Buf: make([]byte, 8192)},
			{MR: mr1, Off: 8192, Buf: make([]byte, 8192)},
			{MR: mr2, Off: 8192, Buf: make([]byte, 8192)},
		}
		if errs := c.ReadV(p, tr, vecs); errs != nil {
			t.Fatalf("ReadV errs = %v", errs)
		}
		if c.RoundTrips != 2 {
			t.Errorf("round trips = %d, want 2 (one per destination server)", c.RoundTrips)
		}
	})
	k.Run(time.Minute)
}

func TestVectoredRevokedMidBatchFailsOnlyItsElements(t *testing.T) {
	k := sim.New(1)
	m1 := testServer(k, "m1")
	m2 := testServer(k, "m2")
	db := testServer(k, "db1")
	k.Go("x", func(p *sim.Proc) {
		pool1, _ := NewPool(p, m1, 1<<20, 1)
		pool2, _ := NewPool(p, m2, 1<<20, 1)
		mr1, _ := pool1.Acquire()
		mr2, _ := pool2.Acquire()
		tr := NewTransport(nic.ProtoRDMA)
		c := NewClient(p, db, DefaultClientConfig())
		pool2.RevokeAll()
		vecs := []IOVec{
			{MR: mr1, Off: 0, Buf: make([]byte, 4096)},
			{MR: mr2, Off: 0, Buf: make([]byte, 4096)},
			{MR: mr1, Off: 4096, Buf: make([]byte, 4096)},
		}
		errs := c.ReadV(p, tr, vecs)
		if errs == nil {
			t.Fatal("ReadV with a revoked MR should report errors")
		}
		if errs[0] != nil || errs[2] != nil {
			t.Errorf("healthy elements failed: %v, %v", errs[0], errs[2])
		}
		if errs[1] != ErrRevoked {
			t.Errorf("revoked element err = %v, want ErrRevoked", errs[1])
		}
	})
	k.Run(time.Minute)
}

func TestVectoredSubBatchRespectsStagingGeometry(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	k.Go("x", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 1)
		mr, _ := pool.Acquire()
		tr := NewTransport(nic.ProtoRDMA)
		cfg := DefaultClientConfig()
		cfg.SlotsPerSch = 4
		cfg.StagingBytes = 4 * 8192
		c := NewClient(p, db, cfg)
		vecs := make([]IOVec, 10)
		for i := range vecs {
			vecs[i] = IOVec{MR: mr, Off: i * 8192, Buf: make([]byte, 8192)}
		}
		if errs := c.ReadV(p, tr, vecs); errs != nil {
			t.Fatalf("ReadV errs = %v", errs)
		}
		// 10 elements with a 4-slot/32 KiB scheduler bound: sub-batches of
		// 4+4+2, each one wire message to the single destination.
		if c.RoundTrips != 3 {
			t.Errorf("round trips = %d, want 3 sub-batches", c.RoundTrips)
		}
	})
	k.Run(time.Minute)
}

func TestStagingContentionRecorded(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	var c *Client
	k.Go("x", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 8)
		var mrs []*MR
		for i := 0; i < 8; i++ {
			mr, _ := pool.Acquire()
			mrs = append(mrs, mr)
		}
		tr := NewTransport(nic.ProtoRDMA)
		cfg := DefaultClientConfig()
		cfg.Schedulers = 1
		cfg.SlotsPerSch = 2 // tiny slot pool so concurrent readers collide
		cfg.Mode = AccessAsync
		c = NewClient(p, db, cfg)
		for i := 0; i < 8; i++ {
			mr := mrs[i]
			k.Go("io", func(w *sim.Proc) {
				buf := make([]byte, 64<<10)
				for j := 0; j < 4; j++ {
					if err := tr.Read(w, c, mr, 0, buf); err != nil {
						t.Error(err)
						return
					}
				}
			})
		}
	})
	k.Run(time.Minute)
	if c.StagingContention.Waits == 0 || c.StagingContention.WaitTime == 0 {
		t.Errorf("contention not recorded: %+v", c.StagingContention)
	}
	if c.StagingContention.HighWater != 2 {
		t.Errorf("high water = %d, want 2 (slot capacity)", c.StagingContention.HighWater)
	}
}
