package rmem

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"remotedb/internal/hw/nic"
	"remotedb/internal/sim"
)

// pushRec encodes one (int64, bytes) record the way the engine's row
// encoding does: 8-byte big-endian int, 2-byte big-endian length prefix.
func pushRec(v int64, payload []byte) []byte {
	rec := make([]byte, 8, 10+len(payload))
	binary.BigEndian.PutUint64(rec, uint64(v))
	var lenb [2]byte
	binary.BigEndian.PutUint16(lenb[:], uint16(len(payload)))
	rec = append(rec, lenb[:]...)
	return append(rec, payload...)
}

func pushSchema() []FieldKind { return []FieldKind{FieldInt64, FieldBytes} }

func TestEvalPushFiltersAndProjects(t *testing.T) {
	var seg []byte
	const chunk = 256
	for i := 0; i < 20; i++ {
		seg = AppendPushRecord(seg, pushRec(int64(i), []byte{0xBB, byte(i)}), chunk)
	}
	seg = PadPushChunk(seg, chunk)
	q := &PushQuery{
		Cols:  pushSchema(),
		Preds: []PushLeaf{{Col: 0, Op: PushGE, Int: 5}, {Col: 0, Op: PushLT, Int: 8}},
		Proj:  []int{0},
	}
	out, rows, matched, err := EvalPush(seg, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 20 || matched != 3 {
		t.Fatalf("rows=%d matched=%d, want 20/3", rows, matched)
	}
	var got []int64
	if err := PushRecords(out, func(rec []byte) error {
		if len(rec) != 8 {
			t.Fatalf("projected record is %d bytes, want 8", len(rec))
		}
		got = append(got, int64(binary.BigEndian.Uint64(rec)))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAppendPushRecordNeverCrossesChunk(t *testing.T) {
	const chunk = 64
	var seg []byte
	for i := 0; i < 50; i++ {
		rec := pushRec(int64(i), []byte{1, 2, 3, 4, 5})
		before := len(seg)
		seg = AppendPushRecord(seg, rec, chunk)
		start := len(seg) - len(rec) - pushLenSize
		if start/chunk != (len(seg)-1)/chunk {
			t.Fatalf("record %d crosses a chunk boundary (seg %d->%d)", i, before, len(seg))
		}
	}
	// Every chunk must parse in isolation.
	seg = PadPushChunk(seg, chunk)
	total := 0
	for off := 0; off < len(seg); off += chunk {
		if err := PushRecords(seg[off:off+chunk], func([]byte) error { total++; return nil }); err != nil {
			t.Fatalf("chunk at %d: %v", off, err)
		}
	}
	if total != 50 {
		t.Fatalf("parsed %d records across chunks, want 50", total)
	}
}

func TestScanPushReturnsOnlyMatchingBytes(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	k.Go("x", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 1)
		mr, _ := pool.Acquire()
		tr := NewTransport(nic.ProtoRDMA)
		c := NewClient(p, db, DefaultClientConfig())

		const chunk = 4096
		var seg []byte
		for i := 0; i < 500; i++ {
			seg = AppendPushRecord(seg, pushRec(int64(i), make([]byte, 100)), chunk)
		}
		seg = PadPushChunk(seg, chunk)
		if err := tr.Write(p, c, mr, 0, seg); err != nil {
			t.Fatal(err)
		}
		rt0 := c.RoundTrips

		q := &PushQuery{Cols: pushSchema(), Preds: []PushLeaf{{Col: 0, Op: PushLT, Int: 5}}}
		var elems []PushElem
		for off := 0; off < len(seg); off += chunk {
			elems = append(elems, PushElem{MR: mr, Off: off, N: chunk})
		}
		outs, stats, errs := c.ScanPush(p, tr, elems, q)
		if errs != nil {
			t.Fatalf("ScanPush errs = %v", errs)
		}
		if stats.RowsScanned != 500 || stats.RowsMatched != 5 {
			t.Fatalf("rows=%d matched=%d, want 500/5", stats.RowsScanned, stats.RowsMatched)
		}
		if stats.BytesReturned >= stats.BytesScanned/10 {
			t.Fatalf("returned %d of %d scanned bytes; pushdown should shrink the wire", stats.BytesReturned, stats.BytesScanned)
		}
		if stats.DonorCPU <= 0 {
			t.Fatal("donor CPU not charged")
		}
		// Single donor: the whole batch is one round trip per sub-batch.
		if got := c.RoundTrips - rt0; got < 1 || got > int64(len(elems)/2) {
			t.Fatalf("round trips = %d for %d elements; expected doorbell batching", got, len(elems))
		}
		var got []int64
		for _, out := range outs {
			PushRecords(out, func(rec []byte) error {
				got = append(got, int64(binary.BigEndian.Uint64(rec)))
				return nil
			})
		}
		if len(got) != 5 {
			t.Fatalf("matched rows returned = %d, want 5", len(got))
		}
	})
	k.Run(time.Minute)
}

func TestScanPushDonorCPUPrice(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	k.Go("x", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 1)
		mr, _ := pool.Acquire()
		tr := NewTransport(nic.ProtoRDMA)
		cheap := NewClient(p, db, DefaultClientConfig())
		pricey := func() *Client {
			cfg := DefaultClientConfig()
			cfg.DonorCPU = 4
			return NewClient(p, db, cfg)
		}()

		var seg []byte
		for i := 0; i < 100; i++ {
			seg = AppendPushRecord(seg, pushRec(int64(i), nil), 4096)
		}
		seg = PadPushChunk(seg, 4096)
		if err := tr.Write(p, cheap, mr, 0, seg); err != nil {
			t.Fatal(err)
		}
		q := &PushQuery{Cols: pushSchema(), Preds: []PushLeaf{{Col: 0, Op: PushEQ, Int: 1}}}
		elems := []PushElem{{MR: mr, Off: 0, N: len(seg)}}
		_, s1, errs := cheap.ScanPush(p, tr, elems, q)
		if errs != nil {
			t.Fatal(errs)
		}
		_, s4, errs := pricey.ScanPush(p, tr, elems, q)
		if errs != nil {
			t.Fatal(errs)
		}
		if s4.DonorCPU != 4*s1.DonorCPU {
			t.Fatalf("DonorCPU price not applied: %v vs %v", s4.DonorCPU, s1.DonorCPU)
		}
	})
	k.Run(time.Minute)
}

func TestScanPushUnavailableWhenEncrypted(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	db := testServer(k, "db1")
	k.Go("x", func(p *sim.Proc) {
		pool, _ := NewPool(p, m, 1<<20, 1)
		mr, _ := pool.Acquire()
		tr := NewTransport(nic.ProtoRDMA)
		cfg := DefaultClientConfig()
		cfg.Encrypt = true
		c := NewClient(p, db, cfg)
		_, _, errs := c.ScanPush(p, tr, []PushElem{{MR: mr, Off: 0, N: 4096}}, &PushQuery{Cols: pushSchema()})
		if errs == nil || !errors.Is(errs[0], ErrPushUnavailable) {
			t.Fatalf("encrypted ScanPush errs = %v, want ErrPushUnavailable", errs)
		}
		// SMB paths have no donor compute surface either.
		smb := NewClient(p, db, DefaultClientConfig())
		_, _, errs = smb.ScanPush(p, NewTransport(nic.ProtoSMB), []PushElem{{MR: mr, Off: 0, N: 4096}}, &PushQuery{Cols: pushSchema()})
		if errs == nil || !errors.Is(errs[0], ErrPushUnavailable) {
			t.Fatalf("SMB ScanPush errs = %v, want ErrPushUnavailable", errs)
		}
	})
	k.Run(time.Minute)
}

func TestScanPushRevokedAndCorruptFailOnlyTheirElements(t *testing.T) {
	k := sim.New(1)
	m1 := testServer(k, "m1")
	m2 := testServer(k, "m2")
	db := testServer(k, "db1")
	k.Go("x", func(p *sim.Proc) {
		pool1, _ := NewPool(p, m1, 1<<20, 1)
		pool2, _ := NewPool(p, m2, 1<<20, 1)
		mr1, _ := pool1.Acquire()
		mr2, _ := pool2.Acquire()
		tr := NewTransport(nic.ProtoRDMA)
		c := NewClient(p, db, DefaultClientConfig())

		var seg []byte
		for i := 0; i < 10; i++ {
			seg = AppendPushRecord(seg, pushRec(int64(i), nil), 4096)
		}
		seg = PadPushChunk(seg, 4096)
		tr.Write(p, c, mr1, 0, seg)
		pool2.RevokeAll()

		badVerify := errors.New("checksum mismatch")
		q := &PushQuery{Cols: pushSchema()}
		elems := []PushElem{
			{MR: mr1, Off: 0, N: 4096},
			{MR: mr2, Off: 0, N: 4096},
			{MR: mr1, Off: 0, N: 4096, Verify: func([]byte) ([]byte, error) { return nil, badVerify }},
		}
		outs, _, errs := c.ScanPush(p, tr, elems, q)
		if errs == nil {
			t.Fatal("expected per-element errors")
		}
		if errs[0] != nil {
			t.Fatalf("healthy element failed: %v", errs[0])
		}
		if !errors.Is(errs[1], ErrRevoked) {
			t.Fatalf("revoked element err = %v, want ErrRevoked", errs[1])
		}
		if !errors.Is(errs[2], badVerify) {
			t.Fatalf("corrupt element err = %v, want verify error", errs[2])
		}
		if outs[0] == nil || outs[1] != nil || outs[2] != nil {
			t.Fatalf("outs = %v; only element 0 should return bytes", outs)
		}
	})
	k.Run(time.Minute)
}
