package rmem

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"time"
)

// The paper's concluding remarks call out that a remote NIC will DMA for
// anyone who knows the registration, so remote memory should be
// encrypted (Section 7). This file implements that future-work item:
// when a Client is created with Encrypt set, every payload is AES-CTR
// encrypted before it leaves the database server and decrypted on
// return, so the donor machine only ever holds ciphertext. The
// keystream position is derived from (MR, offset), making arbitrary-
// offset reads and writes independently decryptable.

// EncryptBytesPerSec is the modelled AES-CTR throughput (AES-NI class
// hardware of the paper's era).
const EncryptBytesPerSec = 2.5e9

// encryptCost returns the CPU time to encrypt or decrypt n bytes.
func encryptCost(n int) time.Duration {
	return time.Duration(float64(n) / EncryptBytesPerSec * 1e9)
}

// cryptor applies the AES-CTR keystream for a client key.
type cryptor struct {
	block cipher.Block
}

func newCryptor(key [16]byte) *cryptor {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic("rmem: aes key setup: " + err.Error())
	}
	return &cryptor{block: block}
}

// xcrypt XORs data (in place) with the keystream for the given MR and
// byte offset. CTR mode is an involution, so the same call encrypts and
// decrypts.
func (c *cryptor) xcrypt(mr MRID, off int, data []byte) {
	const bs = aes.BlockSize
	// IV: 8 bytes of MR identity, 8 bytes of starting block counter.
	var iv [bs]byte
	h := uint64(14695981039346656037)
	for _, ch := range mr.Server {
		h = (h ^ uint64(ch)) * 1099511628211
	}
	h ^= uint64(mr.Index) * 0x9E3779B97F4A7C15
	binary.BigEndian.PutUint64(iv[:8], h)
	binary.BigEndian.PutUint64(iv[8:], uint64(off/bs))
	stream := cipher.NewCTR(c.block, iv[:])
	// Skip into the first block for unaligned offsets.
	if skip := off % bs; skip > 0 {
		var waste [bs]byte
		stream.XORKeyStream(waste[:skip], waste[:skip])
	}
	stream.XORKeyStream(data, data)
}
