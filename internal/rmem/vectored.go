// Vectored (scatter-gather) transfers: ReadV/WriteV coalesce a list of
// per-element MR accesses into doorbell-batched RDMA posts. One
// sub-batch — bounded by one scheduler's staging capacity (slot count
// and staging-MR bytes) — pays a single doorbell (ClientPost), every
// element pays its own staging memcpy or on-demand registration, and
// all elements bound for the same destination server travel as one wire
// message: one charged round trip per destination instead of one per
// page. The SMB transports have no doorbell, so they degrade to one
// request per element.
package rmem

import (
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/hw/nic"
	"remotedb/internal/sim"
)

// IOVec is one element of a scatter-gather transfer: len(Buf) bytes at
// Off within MR.
type IOVec struct {
	MR  *MR
	Off int
	Buf []byte
}

// ReadV reads every element of vecs through t, coalescing them into
// doorbell-batched transfers when the transport supports it. It returns
// nil when every element succeeded, otherwise a len(vecs) slice with a
// per-element result (nil entries for the elements that did succeed) —
// a revoked MR mid-batch fails only its own elements, so callers can
// fail over per element instead of retrying the whole vector.
func (c *Client) ReadV(p *sim.Proc, t Transport, vecs []IOVec) []error {
	return c.vectored(p, t, vecs, false)
}

// WriteV writes every element of vecs through t; error semantics match
// ReadV.
func (c *Client) WriteV(p *sim.Proc, t Transport, vecs []IOVec) []error {
	return c.vectored(p, t, vecs, true)
}

func (c *Client) vectored(p *sim.Proc, t Transport, vecs []IOVec, write bool) []error {
	if len(vecs) == 0 {
		return nil
	}
	errs := make([]error, len(vecs))
	failed := false
	pending := make([]int, 0, len(vecs))
	for i := range vecs {
		if err := checkRange(vecs[i].MR, vecs[i].Off, len(vecs[i].Buf)); err != nil {
			errs[i] = err
			failed = true
			continue
		}
		pending = append(pending, i)
	}
	if rt, ok := t.(*rdmaTransport); ok {
		rt.xferV(p, c, vecs, pending, errs, write, &failed)
	} else {
		// No doorbell on the SMB paths: one request per element.
		for _, i := range pending {
			var err error
			if write {
				err = t.Write(p, c, vecs[i].MR, vecs[i].Off, vecs[i].Buf)
			} else {
				err = t.Read(p, c, vecs[i].MR, vecs[i].Off, vecs[i].Buf)
			}
			if err != nil {
				errs[i] = err
				failed = true
			}
		}
	}
	if !failed {
		return nil
	}
	return errs
}

// xferV splits pending into sub-batches that fit one scheduler's
// staging capacity and issues each as a single doorbell-batched post.
func (t *rdmaTransport) xferV(p *sim.Proc, c *Client, vecs []IOVec, pending []int, errs []error, write bool, failed *bool) {
	for len(pending) > 0 {
		batch := pending
		if len(batch) > c.slotsPerSch {
			batch = batch[:c.slotsPerSch]
		}
		if c.Reg == RegStaging {
			// One scheduler stages the whole sub-batch, so cap it at the
			// scheduler's staging-MR size — always admitting at least one
			// element, mirroring the scalar path's tolerance of oversized
			// transfers.
			n, bytes := 0, 0
			for _, i := range batch {
				if n > 0 && bytes+len(vecs[i].Buf) > c.stagingBytes {
					break
				}
				bytes += len(vecs[i].Buf)
				n++
			}
			batch = batch[:n]
		}
		pending = pending[len(batch):]
		t.xferBatch(p, c, vecs, batch, errs, write, failed)
	}
}

func (t *rdmaTransport) xferBatch(p *sim.Proc, c *Client, vecs []IOVec, batch []int, errs []error, write bool, failed *bool) {
	prof := nic.ProfileFor(nic.ProtoRDMA)
	c.acquireStaging(p, len(batch))
	// Group elements by destination server, preserving first-appearance
	// order so the charged sequence is deterministic.
	type group struct {
		owner *cluster.Server
		bytes int
	}
	var groups []group
	var prep time.Duration
	total := 0
	for _, i := range batch {
		n := len(vecs[i].Buf)
		total += n
		if c.Reg == RegOnDemand {
			prep += nic.RegisterCost(n)
		} else {
			prep += nic.MemcpyCost(n)
		}
		owner := vecs[i].MR.Owner
		found := false
		for g := range groups {
			if groups[g].owner == owner {
				groups[g].bytes += n
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, group{owner: owner, bytes: n})
		}
	}
	do := func() {
		// One doorbell rings the whole sub-batch.
		p.Sleep(prof.ClientPost)
		p.Sleep(prep)
		for _, g := range groups {
			if write {
				nic.Wire(p, c.Server.NIC, g.owner.NIC, g.bytes)
			} else {
				nic.Wire(p, g.owner.NIC, c.Server.NIC, g.bytes)
			}
			c.RoundTrips++
		}
	}
	switch c.Mode {
	case AccessSync:
		c.Server.Exec(p, do)
	case AccessAdaptive:
		est := time.Duration(float64(total)/c.Server.NIC.Config().PayloadBytesPerSec*1e9) +
			c.Server.NIC.Config().BaseLatency
		if est <= SyncSpinThreshold {
			c.Server.Exec(p, do)
		} else {
			do()
			c.Server.Reschedule(p)
		}
	default:
		do()
		c.Server.Reschedule(p)
	}
	// Regions may have been revoked while the batch was in flight; only
	// the affected elements fail.
	for _, i := range batch {
		if vecs[i].MR.revoked {
			errs[i] = ErrRevoked
			*failed = true
			continue
		}
		c.moveBytes(p, vecs[i].MR, vecs[i].Off, vecs[i].Buf, write)
	}
	c.staging.Release(len(batch))
}
