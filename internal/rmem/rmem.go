// Package rmem implements the remote-memory substrate of the paper
// (Section 4): pinned, NIC-registered memory regions (MRs) on servers
// with spare memory, per-scheduler preregistered staging buffers on the
// database server, and the three transfer protocols of Table 5 — NDSPI
// RDMA verbs ("Custom"), SMB Direct, and SMB over TCP.
//
// MRs hold real bytes (ordinary Go slices); transports copy those bytes
// while charging calibrated virtual time to the simulation, including the
// remote server's CPU for the TCP path — the quantity behind Figure 13.
package rmem

import (
	"errors"
	"fmt"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/fault"
	"remotedb/internal/hw/nic"
	"remotedb/internal/metrics"
	"remotedb/internal/sim"
)

// MRID names a memory region uniquely within the cluster.
type MRID struct {
	Server string
	Index  int
}

func (id MRID) String() string { return fmt.Sprintf("%s/mr%d", id.Server, id.Index) }

// MR is one pinned memory region on a memory server.
type MR struct {
	ID    MRID
	Owner *cluster.Server
	buf   []byte

	registered bool
	leased     bool
	revoked    bool // owner failed or reclaimed the region
}

// Size returns the region size in bytes.
func (mr *MR) Size() int { return len(mr.buf) }

// Leased reports whether the region is currently leased out.
func (mr *MR) Leased() bool { return mr.leased }

// Revoked reports whether the region's memory has been reclaimed (owner
// failure or pressure); accesses to a revoked MR fail.
func (mr *MR) Revoked() bool { return mr.revoked }

// ErrRevoked is returned when accessing an MR whose memory is gone. It
// wraps fault.ErrRevoked: the region never comes back, the holder must
// lease a replacement.
var ErrRevoked = fmt.Errorf("rmem: memory region revoked (%w)", fault.ErrRevoked)

// ErrSlow is returned when a transfer is abandoned because it blew its
// deadline budget. It wraps fault.ErrSlow (itself retryable): the donor
// may be fine in a moment, or a replica can serve the read now.
var ErrSlow = fmt.Errorf("rmem: transfer deadline exceeded (%w)", fault.ErrSlow)

// Fault-injection primitives. These mutate the stored bytes directly,
// bypassing the transport (no virtual time, no staging, no encryption),
// modelling silent medium faults — a DRAM bit flip on the donor, a torn
// RDMA write, a resurrected stale buffer. They exist only for the
// corruption-injection harness; production code never calls them.

// InjectXOR flips the bits selected by mask in the byte at off,
// reporting whether the region still holds memory there.
func (mr *MR) InjectXOR(off int, mask byte) bool {
	if mr.revoked || off < 0 || off >= len(mr.buf) {
		return false
	}
	mr.buf[off] ^= mask
	return true
}

// InjectClobber overwrites [off, off+n) with a fixed garbage pattern —
// the tail of a torn write that never completed.
func (mr *MR) InjectClobber(off, n int) bool {
	if mr.revoked || off < 0 || n < 0 || off+n > len(mr.buf) {
		return false
	}
	for i := off; i < off+n; i++ {
		mr.buf[i] = byte(0xA5 ^ i)
	}
	return true
}

// InjectCopyOut snapshots [off, off+n) of the stored (possibly
// encrypted) image, for a later InjectCopyIn — the capture half of
// stale-replica resurrection. It returns nil if the range is gone.
func (mr *MR) InjectCopyOut(off, n int) []byte {
	if mr.revoked || off < 0 || n < 0 || off+n > len(mr.buf) {
		return nil
	}
	return append([]byte(nil), mr.buf[off:off+n]...)
}

// InjectCopyIn writes a snapshot taken by InjectCopyOut back over the
// stored image — the resurrection half: the region silently reverts to
// an older, internally consistent state.
func (mr *MR) InjectCopyIn(off int, b []byte) bool {
	if mr.revoked || off < 0 || off+len(b) > len(mr.buf) {
		return false
	}
	copy(mr.buf[off:], b)
	return true
}

// Pool is the memory-server side of the brokering proxy: it pins free
// memory into fixed-size MRs, preregisters them with the NIC, and hands
// them out. Deregistration under memory pressure unpins regions back to
// the OS.
type Pool struct {
	server *cluster.Server
	mrSize int
	mrs    []*MR
	free   []*MR
	nextID int
}

// NewPool pins count MRs of mrSize bytes each on server, charging the
// NIC registration cost for each region to proc p (preregistration
// happens once, at startup — the design choice of Section 4.1.4).
func NewPool(p *sim.Proc, server *cluster.Server, mrSize, count int) (*Pool, error) {
	if mrSize <= 0 || count < 0 {
		return nil, errors.New("rmem: invalid pool geometry")
	}
	pool := &Pool{server: server, mrSize: mrSize}
	if err := pool.Grow(p, count); err != nil {
		return nil, err
	}
	return pool, nil
}

// Grow pins and registers count additional MRs.
func (pool *Pool) Grow(p *sim.Proc, count int) error {
	for i := 0; i < count; i++ {
		if err := pool.server.PinBrokered(int64(pool.mrSize)); err != nil {
			return err
		}
		mr := &MR{
			ID:         MRID{Server: pool.server.Name, Index: pool.nextID},
			Owner:      pool.server,
			buf:        make([]byte, pool.mrSize),
			registered: true,
		}
		pool.nextID++
		// Registration pins pages and programs the NIC page table; it
		// costs CPU on the owning server.
		pool.server.Work(p, nic.RegisterCost(pool.mrSize))
		pool.mrs = append(pool.mrs, mr)
		pool.free = append(pool.free, mr)
	}
	return nil
}

// MRSize returns the fixed region size.
func (pool *Pool) MRSize() int { return pool.mrSize }

// FreeCount returns the number of unleased regions.
func (pool *Pool) FreeCount() int { return len(pool.free) }

// TotalCount returns the number of pinned regions.
func (pool *Pool) TotalCount() int { return len(pool.mrs) }

// Acquire leases out one free MR.
func (pool *Pool) Acquire() (*MR, error) {
	if len(pool.free) == 0 {
		return nil, errors.New("rmem: pool exhausted on " + pool.server.Name)
	}
	mr := pool.free[0]
	pool.free = pool.free[1:]
	mr.leased = true
	return mr, nil
}

// ReleaseMR returns a leased MR to the free list (its contents are not
// cleared; leases are exclusive so the next tenant overwrites).
func (pool *Pool) ReleaseMR(mr *MR) {
	if mr.revoked {
		return
	}
	mr.leased = false
	pool.free = append(pool.free, mr)
}

// Shrink unpins up to n bytes of free MRs (memory-pressure response) and
// returns the number of bytes actually released.
func (pool *Pool) Shrink(n int64) int64 {
	var released int64
	for released < n && len(pool.free) > 0 {
		mr := pool.free[len(pool.free)-1]
		pool.free = pool.free[:len(pool.free)-1]
		pool.removeMR(mr)
		released += int64(pool.mrSize)
	}
	return released
}

// RevokeAll simulates failure of the memory server: every MR (leased or
// not) becomes unavailable and the memory is unpinned.
func (pool *Pool) RevokeAll() {
	for _, mr := range pool.mrs {
		if !mr.revoked {
			mr.revoked = true
			mr.buf = nil
			pool.server.UnpinBrokered(int64(pool.mrSize))
		}
	}
	pool.mrs = nil
	pool.free = nil
}

func (pool *Pool) removeMR(target *MR) {
	target.revoked = true
	target.buf = nil
	pool.server.UnpinBrokered(int64(pool.mrSize))
	for i, mr := range pool.mrs {
		if mr == target {
			pool.mrs = append(pool.mrs[:i], pool.mrs[i+1:]...)
			break
		}
	}
}

// AccessMode selects how the client treats remote-memory completions
// (Section 4.1.3).
type AccessMode int

const (
	// AccessSync spins on the completion queue holding the core — the
	// paper's choice for Custom.
	AccessSync AccessMode = iota
	// AccessAsync yields the thread and pays a context switch when the
	// completion is processed — how unmodified SQL Server treats I/O.
	AccessAsync
	// AccessAdaptive spins up to SyncSpinThreshold and falls back to the
	// asynchronous path for longer transfers — the adaptive strategy the
	// paper leaves as future work (Section 4.1.3), implemented here.
	AccessAdaptive
)

// RegistrationMode selects client-side MR registration strategy
// (Section 4.1.4).
type RegistrationMode int

const (
	// RegStaging copies pages through preregistered per-scheduler staging
	// buffers (memcpy ≈ 2 µs per 8 K page) — the paper's choice.
	RegStaging RegistrationMode = iota
	// RegOnDemand registers the source/destination buffer for every
	// transfer (≈ 50 µs per 8 K page) — the rejected alternative, kept
	// for the ablation benchmark.
	RegOnDemand
)

// Client is the database-server side of the remote-memory plumbing: it
// owns the per-scheduler staging buffers and issues transfers.
type Client struct {
	Server *cluster.Server
	Mode   AccessMode
	Reg    RegistrationMode

	staging *sim.Resource // pending-transfer slots across all schedulers
	crypt   *cryptor      // nil unless encryption is enabled

	slotsPerSch  int // sub-batch element bound for vectored transfers
	stagingBytes int // sub-batch byte bound (one scheduler's staging MR)

	Reads, Writes       int64
	BytesRead, BytesWrt int64

	// RoundTrips counts charged wire messages. A doorbell-batched vector
	// pays one per destination server per sub-batch instead of one per
	// element — this counter is what the iobatch experiment compares.
	RoundTrips int64

	// StagingContention records how often transfers blocked waiting for a
	// staging slot, the total time spent blocked, and the slot high-water
	// mark, attributing batching wins to round trips vs queueing.
	StagingContention metrics.Contention

	// DeadlineMisses counts transfers abandoned because they blew their
	// deadline budget (returned ErrSlow). The wire/staging cost of an
	// abandoned transfer is still paid — cancelling an in-flight RDMA
	// refunds nothing — only the caller stops waiting.
	DeadlineMisses int64

	// DonorCPU prices donor-side eval: a multiplier on the donor CPU time
	// ScanPush charges (1.0 = donor cycles cost the same as the model's
	// calibrated scan rate; >1 models donors that are busy or throttled).
	DonorCPU float64

	// Pushdown counters: ScanPush calls, bytes evaluated at donors, the
	// qualifying bytes that actually crossed the wire, and the donor CPU
	// charged — the "bytes on the wire" win the pushdown bench measures.
	Pushes            int64
	PushBytesScanned  int64
	PushBytesReturned int64
	PushDonorCPU      time.Duration
}

// ClientConfig parameterizes a client.
type ClientConfig struct {
	Mode         AccessMode
	Reg          RegistrationMode
	Schedulers   int // CPU schedulers issuing I/O (paper: one staging MR each)
	SlotsPerSch  int // pending RDMA transfers per scheduler (paper: 128)
	StagingBytes int // staging MR size per scheduler (paper: 1 MiB)

	// Encrypt enables AES-CTR encryption of every payload with Key, so
	// donor servers only ever hold ciphertext — the security measure the
	// paper's Section 7 calls for. Costs EncryptBytesPerSec of client CPU.
	// Encryption makes ScanPush unavailable: donors cannot evaluate
	// ciphertext, so pushed scans fall back to fetching whole blocks.
	Encrypt bool
	Key     [16]byte

	// DonorCPU prices donor-side eval (see Client.DonorCPU); 0 means 1.0.
	DonorCPU float64
}

// DefaultClientConfig mirrors Section 4.2.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		Mode:        AccessSync,
		Reg:         RegStaging,
		Schedulers:  8,
		SlotsPerSch: 128,
	}
}

// NewClient creates a client on the database server, charging the one-time
// registration of its staging buffers.
func NewClient(p *sim.Proc, server *cluster.Server, cfg ClientConfig) *Client {
	if cfg.Schedulers <= 0 {
		cfg.Schedulers = 8
	}
	if cfg.SlotsPerSch <= 0 {
		cfg.SlotsPerSch = 128
	}
	if cfg.StagingBytes <= 0 {
		cfg.StagingBytes = 1 << 20
	}
	c := &Client{
		Server:       server,
		Mode:         cfg.Mode,
		Reg:          cfg.Reg,
		staging:      sim.NewResource(server.K, server.Name+"/staging", cfg.Schedulers*cfg.SlotsPerSch),
		slotsPerSch:  cfg.SlotsPerSch,
		stagingBytes: cfg.StagingBytes,
		DonorCPU:     cfg.DonorCPU,
	}
	if cfg.Encrypt {
		c.crypt = newCryptor(cfg.Key)
	}
	for i := 0; i < cfg.Schedulers; i++ {
		server.Work(p, nic.RegisterCost(cfg.StagingBytes))
	}
	return c
}

// acquireStaging takes n pending-transfer slots, recording contention:
// a blocked acquisition counts one wait plus the time spent queued, and
// the in-use high-water mark is sampled after every acquisition.
func (c *Client) acquireStaging(p *sim.Proc, n int) {
	if !c.staging.TryAcquire(n) {
		start := p.Now()
		c.staging.Acquire(p, n)
		c.StagingContention.RecordWait(p.Now() - start)
	}
	c.StagingContention.Observe(c.staging.InUse())
}

// Transport moves bytes between a client server and an MR, charging
// protocol-specific costs.
type Transport interface {
	// Read copies len(dst) bytes from mr at off into dst.
	Read(p *sim.Proc, c *Client, mr *MR, off int, dst []byte) error
	// Write copies src into mr at off.
	Write(p *sim.Proc, c *Client, mr *MR, off int, src []byte) error
	// Protocol identifies the underlying protocol.
	Protocol() nic.Protocol
}

// NewTransport returns the transport for a protocol.
func NewTransport(proto nic.Protocol) Transport {
	switch proto {
	case nic.ProtoRDMA:
		return &rdmaTransport{}
	case nic.ProtoSMBDirect, nic.ProtoSMB:
		return &smbTransport{proto: proto, profile: nic.ProfileFor(proto)}
	}
	panic("rmem: unknown protocol")
}

func checkRange(mr *MR, off, n int) error {
	if mr.revoked {
		return ErrRevoked
	}
	if off < 0 || n < 0 || off+n > len(mr.buf) {
		return fmt.Errorf("rmem: access [%d,%d) outside MR of %d bytes", off, off+n, len(mr.buf))
	}
	return nil
}

// rdmaTransport is the paper's Custom design: one-sided RDMA verbs, no
// remote CPU, staging memcpy, synchronous spin by default.
type rdmaTransport struct{}

func (t *rdmaTransport) Protocol() nic.Protocol { return nic.ProtoRDMA }

func (t *rdmaTransport) xfer(p *sim.Proc, c *Client, mr *MR, off int, buf []byte, write bool) error {
	if err := checkRange(mr, off, len(buf)); err != nil {
		return err
	}
	if err := checkBudget(p, c); err != nil {
		return err
	}
	prof := nic.ProfileFor(nic.ProtoRDMA)
	c.acquireStaging(p, 1)
	do := func() {
		p.Sleep(prof.ClientPost)
		// A donor under memory pressure (reclaiming, NIC-saturated)
		// services one-sided reads late: the pages being reclaimed stall
		// the DMA even though no remote CPU is involved.
		if d := mr.Owner.ServiceDelay(); d > 0 {
			p.Sleep(d)
		}
		if c.Reg == RegOnDemand {
			// Register the caller's buffer for this one transfer.
			p.Sleep(nic.RegisterCost(len(buf)))
		} else {
			// Copy through the preregistered staging buffer.
			p.Sleep(nic.MemcpyCost(len(buf)))
		}
		if write {
			nic.Wire(p, c.Server.NIC, mr.Owner.NIC, len(buf))
		} else {
			nic.Wire(p, mr.Owner.NIC, c.Server.NIC, len(buf))
		}
		c.RoundTrips++
	}
	switch c.Mode {
	case AccessSync:
		// Spin: the issuing thread burns its core for the duration.
		c.Server.Exec(p, do)
	case AccessAdaptive:
		// Predict the transfer time from size and current queue depth;
		// spin for short transfers, yield for long ones. The prediction
		// uses the wire rate only — a real implementation would sample
		// completion times, but the decision boundary is the same.
		est := time.Duration(float64(len(buf))/c.Server.NIC.Config().PayloadBytesPerSec*1e9) +
			c.Server.NIC.Config().BaseLatency
		if est <= SyncSpinThreshold {
			c.Server.Exec(p, do)
		} else {
			do()
			c.Server.Reschedule(p)
		}
	default:
		do()
		c.Server.Reschedule(p)
	}
	// The MR may have been revoked while we were in flight.
	if mr.revoked {
		c.staging.Release(1)
		return ErrRevoked
	}
	c.moveBytes(p, mr, off, buf, write)
	c.staging.Release(1)
	return nil
}

// moveBytes performs the actual byte movement between the caller's
// buffer and the MR, transparently encrypting so the donor only holds
// ciphertext when the client has encryption enabled.
func (c *Client) moveBytes(p *sim.Proc, mr *MR, off int, buf []byte, write bool) {
	if write {
		if c.crypt != nil {
			c.Server.Work(p, encryptCost(len(buf)))
			enc := append([]byte(nil), buf...)
			c.crypt.xcrypt(mr.ID, off, enc)
			copy(mr.buf[off:off+len(enc)], enc)
		} else {
			copy(mr.buf[off:off+len(buf)], buf)
		}
		c.Writes++
		c.BytesWrt += int64(len(buf))
		return
	}
	copy(buf, mr.buf[off:off+len(buf)])
	if c.crypt != nil {
		c.Server.Work(p, encryptCost(len(buf)))
		c.crypt.xcrypt(mr.ID, off, buf)
	}
	c.Reads++
	c.BytesRead += int64(len(buf))
}

func (t *rdmaTransport) Read(p *sim.Proc, c *Client, mr *MR, off int, dst []byte) error {
	return t.xfer(p, c, mr, off, dst, false)
}

func (t *rdmaTransport) Write(p *sim.Proc, c *Client, mr *MR, off int, src []byte) error {
	return t.xfer(p, c, mr, off, src, true)
}

// smbTransport models the two RamDrive designs: the remote file server
// processes each request (occupying a worker slot and remote CPU), the
// payload crosses the fabric (RDMA for SMB Direct, TCP for SMB), and the
// client completes the I/O asynchronously.
type smbTransport struct {
	proto   nic.Protocol
	profile nic.Profile
}

func (t *smbTransport) Protocol() nic.Protocol { return t.proto }

func (t *smbTransport) xfer(p *sim.Proc, c *Client, mr *MR, off int, buf []byte, write bool) error {
	if err := checkRange(mr, off, len(buf)); err != nil {
		return err
	}
	if err := checkBudget(p, c); err != nil {
		return err
	}
	prof := t.profile
	// Client-side issue cost (system call, SMB client stack).
	c.Server.Work(p, prof.ClientPost)
	// Remote file-server stage: a worker slot plus remote CPU time; the
	// non-CPU remainder is RamDrive/DMA service.
	fs := mr.Owner.FileServer()
	fs.Acquire(p, 1)
	mr.Owner.Work(p, prof.ServerCPUCharge)
	if rest := prof.ServerService - prof.ServerCPUCharge; rest > 0 {
		p.Sleep(rest)
	}
	if d := mr.Owner.ServiceDelay(); d > 0 {
		p.Sleep(d) // slow donor: the file-server stage is starved for CPU
	}
	fs.Release(1)
	// Payload on the wire.
	src, dst := mr.Owner.NIC, c.Server.NIC
	if write {
		src, dst = c.Server.NIC, mr.Owner.NIC
	}
	if prof.TCPPath {
		nic.WireTCP(p, src, dst, len(buf))
	} else {
		nic.Wire(p, src, dst, len(buf))
	}
	c.RoundTrips++
	// Asynchronous completion on the client.
	if prof.AsyncCompletion {
		c.Server.Reschedule(p)
	}
	if mr.revoked {
		return ErrRevoked
	}
	c.moveBytes(p, mr, off, buf, write)
	return nil
}

func (t *smbTransport) Read(p *sim.Proc, c *Client, mr *MR, off int, dst []byte) error {
	return t.xfer(p, c, mr, off, dst, false)
}

func (t *smbTransport) Write(p *sim.Proc, c *Client, mr *MR, off int, src []byte) error {
	return t.xfer(p, c, mr, off, src, true)
}

// SyncSpinThreshold is the point past which a production implementation
// would fall back to async completion (future work in the paper); the
// sync transport exposes it for the adaptive-mode extension.
const SyncSpinThreshold = 50 * time.Microsecond

// checkBudget enforces the process's deadline budget at op issue: an
// exhausted budget abandons the op before it consumes a staging slot or
// wire time. Ops never started cost nothing, unlike ops abandoned
// mid-flight (ReadWithin), whose wire cost is sunk.
func checkBudget(p *sim.Proc, c *Client) error {
	if dl := p.Deadline(); dl > 0 && p.Now() >= dl {
		c.DeadlineMisses++
		return fmt.Errorf("rmem: budget exhausted before issue: %w", ErrSlow)
	}
	return nil
}

// ReadWithin performs t.Read bounded by an absolute virtual-time
// deadline (0 = unbounded, plain Read). The transfer runs in a detached
// process reading into a private buffer; the caller waits for whichever
// comes first, completion or the deadline timer. On timeout the caller
// gets ErrSlow immediately and the orphaned transfer keeps running —
// abandoning an in-flight RDMA refunds neither the staging slot nor the
// wire time — but its bytes land in the private buffer and are
// discarded, so a late completion can never clobber caller memory the
// caller has since reused.
func ReadWithin(p *sim.Proc, t Transport, c *Client, mr *MR, off int, dst []byte, deadline time.Duration) error {
	if deadline <= 0 {
		return t.Read(p, c, mr, off, dst)
	}
	if p.Now() >= deadline {
		c.DeadlineMisses++
		return fmt.Errorf("rmem: budget exhausted before read: %w", ErrSlow)
	}
	k := p.Kernel()
	var (
		done bool
		rerr error
	)
	buf := make([]byte, len(dst))
	cond := sim.NewCond(k)
	k.Go("rmem-deadline-read", func(cp *sim.Proc) {
		rerr = t.Read(cp, c, mr, off, buf)
		done = true
		cond.Broadcast()
	})
	timedOut := false
	k.After(deadline-p.Now(), func() {
		timedOut = true
		cond.Broadcast()
	})
	for !done && !timedOut {
		cond.Wait(p)
	}
	if done {
		if rerr == nil {
			copy(dst, buf)
		}
		return rerr
	}
	c.DeadlineMisses++
	return fmt.Errorf("rmem: read of %s missed deadline: %w", mr.ID, ErrSlow)
}
