// Donor-side operator pushdown: ScanPush evaluates simple predicates
// (constant compares, AND-of-leaves) and column projections against
// remote blocks *at the donor*, so only qualifying row bytes cross the
// wire. The donor's CPU is charged in the simulation (scaled by the
// configured DonorCPU price), the tiny predicate descriptor travels
// client->donor, and the qualifying bytes return in one staged,
// doorbell-batched transfer per destination server — the Farview-style
// complement to the paper's fetch-everything design.
//
// Pushdown requires plaintext at the donor and a one-sided-capable
// transport, so it is unavailable when payload encryption is on (donors
// only ever hold ciphertext) or on the SMB paths; callers fall back to
// fetching whole blocks.
package rmem

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/fault"
	"remotedb/internal/hw/nic"
	"remotedb/internal/sim"
)

// ErrPushUnavailable reports that donor-side evaluation cannot run for
// this client/transport (encryption on, or no donor compute path). It
// wraps fault.ErrUnavailable: the data is fine, fetch it whole instead.
var ErrPushUnavailable = fmt.Errorf("rmem: pushdown unavailable (%w)", fault.ErrUnavailable)

// FieldKind describes one field of the pushed record layout. The donor
// walks records with this schema; it mirrors the engine's row encoding
// (8-byte big-endian ints/floats, 2-byte big-endian length-prefixed
// byte strings) without importing the engine.
type FieldKind int

// Field kinds understood by the donor-side evaluator.
const (
	FieldInt64 FieldKind = iota
	FieldFloat64
	FieldBytes // also covers strings: both are length-prefixed
)

// PushOp is a comparison operator in a pushed predicate leaf.
type PushOp int

// Comparison operators supported donor-side.
const (
	PushEQ PushOp = iota
	PushNE
	PushLT
	PushLE
	PushGT
	PushGE
)

func (op PushOp) String() string {
	switch op {
	case PushEQ:
		return "="
	case PushNE:
		return "!="
	case PushLT:
		return "<"
	case PushLE:
		return "<="
	case PushGT:
		return ">"
	case PushGE:
		return ">="
	}
	return "?"
}

// PushLeaf is one constant comparison: record field Col <op> constant.
// Exactly one of Int/Float/Bytes is consulted, per the field's kind.
type PushLeaf struct {
	Col   int
	Op    PushOp
	Int   int64
	Float float64
	Bytes []byte
}

// PushQuery is the pushed predicate + projection: an AND of leaves over
// records laid out per Cols, returning the fields named by Proj (nil =
// whole record).
type PushQuery struct {
	Cols  []FieldKind
	Preds []PushLeaf
	Proj  []int
}

// descriptorBytes is the wire size of the pushed query descriptor plus
// one element header — what travels client->donor before any eval.
func (q *PushQuery) descriptorBytes() int {
	n := 32 // opcode, element offset/length, schema header
	n += len(q.Cols)
	for _, l := range q.Preds {
		n += 16 + len(l.Bytes)
	}
	n += 4 * len(q.Proj)
	return n
}

// PushElem is one remote block to evaluate: n bytes at Off within MR.
// Verify, when set, runs donor-side *before* eval — integrity precedes
// evaluation — returning the record payload inside the raw block (e.g.
// stripping a checksum frame) or an error that fails only this element.
type PushElem struct {
	MR     *MR
	Off    int
	N      int
	Verify func(raw []byte) (payload []byte, err error)
}

// PushStats aggregates one ScanPush call.
type PushStats struct {
	Elems         int
	BytesScanned  int64 // bytes read and evaluated at donors
	BytesReturned int64 // qualifying bytes that crossed the wire
	RowsScanned   int64
	RowsMatched   int64
	DonorCPU      time.Duration // donor CPU charged, post-price
}

// Donor-side evaluation cost model: a streaming scan over pinned memory
// runs at memory-bandwidth-class speed (checksum + field walk fused into
// one pass), plus a fixed per-record and per-leaf overhead.
const (
	pushScanBytesPerSec = 4e9 // fused verify+scan throughput
	pushPerRecord       = 30 * time.Nanosecond
	pushPerLeaf         = 10 * time.Nanosecond
)

// pushEvalCost returns the donor CPU time to verify and scan n bytes
// holding records rows with the given leaf count, before pricing.
func pushEvalCost(n int, rows, leaves int) time.Duration {
	d := time.Duration(float64(n) / pushScanBytesPerSec * 1e9)
	d += time.Duration(rows) * (pushPerRecord + time.Duration(leaves)*pushPerLeaf)
	return d
}

// PushEvalCost is the cost model the optimizer prices donor CPU with:
// the donor time to scan n bytes of rows records against leaves leaves,
// scaled by price (the DonorCPU knob).
func PushEvalCost(n int64, rows int64, leaves int, price float64) time.Duration {
	if price <= 0 {
		price = 1
	}
	d := time.Duration(float64(n) / pushScanBytesPerSec * 1e9)
	d += time.Duration(rows) * (pushPerRecord + time.Duration(leaves)*pushPerLeaf)
	return time.Duration(float64(d) * price)
}

// ScanPush evaluates q against every element at the element's donor and
// returns, per element, only the qualifying projected row bytes (as a
// length-prefixed record log parseable by PushRecords). Error semantics
// match ReadV: errs is nil when every element succeeded, otherwise a
// per-element slice; a failed element has outs[i] == nil and callers
// fail over element by element (fetch the whole block and evaluate
// client-side) without retrying the batch.
func (c *Client) ScanPush(p *sim.Proc, t Transport, elems []PushElem, q *PushQuery) (outs [][]byte, stats PushStats, errs []error) {
	outs = make([][]byte, len(elems))
	stats.Elems = len(elems)
	if len(elems) == 0 {
		return outs, stats, nil
	}
	fail := func(err error) []error {
		es := make([]error, len(elems))
		for i := range es {
			es[i] = err
		}
		return es
	}
	if c.crypt != nil {
		// Donors hold only ciphertext; they cannot evaluate anything.
		return outs, stats, fail(ErrPushUnavailable)
	}
	if _, ok := t.(*rdmaTransport); !ok {
		// The SMB file-server paths have no donor compute surface.
		return outs, stats, fail(ErrPushUnavailable)
	}
	errs = make([]error, len(elems))
	failed := false
	pending := make([]int, 0, len(elems))
	for i := range elems {
		if err := checkRange(elems[i].MR, elems[i].Off, elems[i].N); err != nil {
			errs[i] = err
			failed = true
			continue
		}
		pending = append(pending, i)
	}
	// Sub-batch like the vectored path: one scheduler's slot count, and
	// the staging MR bounds the *returned* bytes, which eval bounds by
	// the input bytes — so admit by input size, at least one element.
	for len(pending) > 0 {
		batch := pending
		if len(batch) > c.slotsPerSch {
			batch = batch[:c.slotsPerSch]
		}
		n, bytes := 0, 0
		for _, i := range batch {
			if n > 0 && bytes+elems[i].N > c.stagingBytes {
				break
			}
			bytes += elems[i].N
			n++
		}
		batch = batch[:n]
		pending = pending[len(batch):]
		c.pushBatch(p, elems, batch, q, outs, errs, &stats, &failed)
	}
	c.Pushes++
	c.PushBytesScanned += stats.BytesScanned
	c.PushBytesReturned += stats.BytesReturned
	c.PushDonorCPU += stats.DonorCPU
	if !failed {
		return outs, stats, nil
	}
	return outs, stats, errs
}

// pushBatch runs one staged sub-batch: evaluate every element at its
// donor, then move the qualifying bytes back as one doorbell-batched
// post with one wire message (and one charged round trip) per donor.
func (c *Client) pushBatch(p *sim.Proc, elems []PushElem, batch []int, q *PushQuery, outs [][]byte, errs []error, stats *PushStats, failed *bool) {
	c.acquireStaging(p, len(batch))
	// Evaluate first (pure byte work, no virtual time): per-element
	// verify -> eval, accumulating each donor's CPU bill and the return
	// payload sizes that price the wire stage below.
	type group struct {
		owner    *cluster.Server
		reqBytes int           // descriptor bytes client->donor
		outBytes int           // qualifying bytes donor->client
		cpu      time.Duration // donor eval time, post-price
	}
	var groups []group
	desc := q.descriptorBytes()
	price := c.DonorCPU
	if price <= 0 {
		price = 1
	}
	evalErr := make([]error, len(elems))
	for _, i := range batch {
		e := &elems[i]
		raw := e.MR.buf[e.Off : e.Off+e.N]
		gi := -1
		for g := range groups {
			if groups[g].owner == e.MR.Owner {
				gi = g
				break
			}
		}
		if gi < 0 {
			groups = append(groups, group{owner: e.MR.Owner})
			gi = len(groups) - 1
		}
		groups[gi].reqBytes += desc
		payload := raw
		var rows, matched int
		var out []byte
		var err error
		if e.Verify != nil {
			payload, err = e.Verify(raw)
		}
		if err == nil {
			out, rows, matched, err = EvalPush(payload, q, nil)
		}
		// Verify + eval both burn donor CPU whether or not they succeed:
		// a corrupt block is discovered *by* the checksum pass.
		cost := time.Duration(float64(pushEvalCost(e.N, rows, len(q.Preds))) * price)
		groups[gi].cpu += cost
		stats.DonorCPU += cost
		stats.BytesScanned += int64(e.N)
		if err != nil {
			evalErr[i] = err
			continue
		}
		outs[i] = out
		groups[gi].outBytes += len(out)
		stats.BytesReturned += int64(len(out))
		stats.RowsScanned += int64(rows)
		stats.RowsMatched += int64(matched)
	}
	total := 0
	do := func() {
		// One doorbell posts every descriptor; each donor then runs its
		// share of the eval on its own CPU and the qualifying bytes come
		// back as one message per donor.
		prof := nic.ProfileFor(nic.ProtoRDMA)
		p.Sleep(prof.ClientPost)
		for _, g := range groups {
			nic.Wire(p, c.Server.NIC, g.owner.NIC, g.reqBytes)
			g.owner.Work(p, g.cpu)
			p.Sleep(nic.MemcpyCost(g.outBytes))
			nic.Wire(p, g.owner.NIC, c.Server.NIC, g.outBytes)
			c.RoundTrips++
			total += g.outBytes
		}
	}
	switch c.Mode {
	case AccessSync:
		c.Server.Exec(p, do)
	case AccessAdaptive:
		est := time.Duration(float64(total)/c.Server.NIC.Config().PayloadBytesPerSec*1e9) +
			c.Server.NIC.Config().BaseLatency
		if est <= SyncSpinThreshold {
			c.Server.Exec(p, do)
		} else {
			do()
			c.Server.Reschedule(p)
		}
	default:
		do()
		c.Server.Reschedule(p)
	}
	// Post-flight: regions revoked while the batch was in flight fail
	// only their own elements, and verify/eval failures surface now.
	for _, i := range batch {
		switch {
		case elems[i].MR.revoked:
			errs[i] = ErrRevoked
			outs[i] = nil
			*failed = true
		case evalErr[i] != nil:
			errs[i] = evalErr[i]
			*failed = true
		default:
			c.Reads++
			c.BytesRead += int64(len(outs[i]))
		}
	}
	c.staging.Release(len(batch))
}

// --- Pushable record log --------------------------------------------------

// pushLenSize is the little-endian u32 length prefix on every record in
// a pushable log (matching the spill-file record framing).
const pushLenSize = 4

// AppendPushRecord appends one length-prefixed record to a pushable
// log, zero-padding to the next chunk boundary first when the record
// would cross one — chunks are self-contained so any chunk-aligned
// block range can be evaluated donor-side in isolation. rec must fit a
// chunk (chunk-pushLenSize bytes).
func AppendPushRecord(seg []byte, rec []byte, chunk int) []byte {
	need := pushLenSize + len(rec)
	if chunk > 0 {
		used := len(seg) % chunk
		if used+need > chunk {
			seg = append(seg, make([]byte, chunk-used)...)
		}
	}
	var lenb [pushLenSize]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(rec)))
	seg = append(seg, lenb[:]...)
	return append(seg, rec...)
}

// PadPushChunk zero-pads the log to the next chunk boundary.
func PadPushChunk(seg []byte, chunk int) []byte {
	if chunk <= 0 {
		return seg
	}
	if used := len(seg) % chunk; used != 0 {
		seg = append(seg, make([]byte, chunk-used)...)
	}
	return seg
}

// PushRecords iterates the records of one block of pushable log (any
// chunk-aligned range), stopping at zero-length padding.
func PushRecords(block []byte, fn func(rec []byte) error) error {
	for len(block) >= pushLenSize {
		n := int(binary.LittleEndian.Uint32(block))
		if n == 0 {
			// Padding: skip to the end of the remaining bytes only if all
			// zero would be the common case; records never have length 0,
			// so a zero length always means the rest of this chunk is pad.
			return nil
		}
		block = block[pushLenSize:]
		if n > len(block) {
			return fmt.Errorf("rmem: truncated push record (%w)", fault.ErrCorrupt)
		}
		if err := fn(block[:n]); err != nil {
			return err
		}
		block = block[n:]
	}
	return nil
}

// EvalPush scans one block of pushable log against q, appending each
// qualifying projected row to out as a length-prefixed record. It is
// the single evaluator — the donor runs it inside ScanPush and the
// client runs the *same* function when falling back to fetch-all, so
// both paths agree bit for bit.
func EvalPush(block []byte, q *PushQuery, out []byte) (res []byte, rows, matched int, err error) {
	bounds := make([][2]int, len(q.Cols))
	err = PushRecords(block, func(rec []byte) error {
		rows++
		if err := fieldBounds(rec, q.Cols, bounds); err != nil {
			return err
		}
		for _, leaf := range q.Preds {
			ok, err := evalLeaf(rec, q.Cols, bounds, leaf)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		matched++
		var proj []byte
		if q.Proj == nil {
			proj = rec
		} else {
			for _, col := range q.Proj {
				b := bounds[col]
				proj = append(proj, rec[b[0]:b[1]]...)
			}
		}
		var lenb [pushLenSize]byte
		binary.LittleEndian.PutUint32(lenb[:], uint32(len(proj)))
		out = append(out, lenb[:]...)
		out = append(out, proj...)
		return nil
	})
	if err != nil {
		return nil, rows, matched, err
	}
	return out, rows, matched, nil
}

// fieldBounds walks one record, filling bounds[i] with the [start,end)
// of field i's encoding (length prefix included for byte fields, so a
// projection slice is itself a valid field encoding).
func fieldBounds(rec []byte, cols []FieldKind, bounds [][2]int) error {
	off := 0
	for i, k := range cols {
		start := off
		switch k {
		case FieldInt64, FieldFloat64:
			off += 8
		case FieldBytes:
			if off+2 > len(rec) {
				return fmt.Errorf("rmem: push record field %d truncated (%w)", i, fault.ErrCorrupt)
			}
			off += 2 + int(binary.BigEndian.Uint16(rec[off:]))
		}
		if off > len(rec) {
			return fmt.Errorf("rmem: push record field %d truncated (%w)", i, fault.ErrCorrupt)
		}
		bounds[i] = [2]int{start, off}
	}
	if off != len(rec) {
		return fmt.Errorf("rmem: push record has %d trailing bytes (%w)", len(rec)-off, fault.ErrCorrupt)
	}
	return nil
}

// evalLeaf applies one constant comparison to the record.
func evalLeaf(rec []byte, cols []FieldKind, bounds [][2]int, leaf PushLeaf) (bool, error) {
	if leaf.Col < 0 || leaf.Col >= len(cols) {
		return false, fmt.Errorf("rmem: push predicate names column %d of %d", leaf.Col, len(cols))
	}
	b := bounds[leaf.Col]
	field := rec[b[0]:b[1]]
	var cmp int
	switch cols[leaf.Col] {
	case FieldInt64:
		v := int64(binary.BigEndian.Uint64(field))
		switch {
		case v < leaf.Int:
			cmp = -1
		case v > leaf.Int:
			cmp = 1
		}
	case FieldFloat64:
		v := float64frombitsBE(field)
		switch {
		case v < leaf.Float:
			cmp = -1
		case v > leaf.Float:
			cmp = 1
		}
	case FieldBytes:
		cmp = bytesCompare(field[2:], leaf.Bytes)
	}
	switch leaf.Op {
	case PushEQ:
		return cmp == 0, nil
	case PushNE:
		return cmp != 0, nil
	case PushLT:
		return cmp < 0, nil
	case PushLE:
		return cmp <= 0, nil
	case PushGT:
		return cmp > 0, nil
	case PushGE:
		return cmp >= 0, nil
	}
	return false, fmt.Errorf("rmem: unknown push op %d", leaf.Op)
}

func float64frombitsBE(b []byte) float64 {
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

func bytesCompare(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
