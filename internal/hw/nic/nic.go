// Package nic models the cluster's RDMA-capable network adapters
// (Mellanox ConnectX-3 FDR, 56 Gb/s) and the three access protocols the
// paper evaluates (Table 5): NDSPI RDMA verbs ("Custom"), SMB Direct, and
// SMB over TCP/IP. The models charge virtual time; payload bytes are
// moved by the rmem layer with ordinary Go copies.
//
// Calibration targets (Figures 3 and 4, idle remote server):
//
//	8 KiB random reads, 20 threads:
//	  Custom 4.27 GB/s @ 36 µs, SMBDirect 1.36 GB/s @ 109 µs, SMB 0.64 GB/s @ 236 µs
//	512 KiB sequential reads, 5 threads:
//	  Custom 5.1 GB/s @ 487 µs, SMBDirect 5.09 GB/s @ 488 µs, SMB 3.36 GB/s @ 723 µs
package nic

import (
	"time"

	"remotedb/internal/sim"
)

// Config parameterizes a NIC.
type Config struct {
	PayloadBytesPerSec float64       // effective RDMA payload bandwidth per direction
	TCPBytesPerSec     float64       // effective TCP-path bandwidth (kernel copies, protocol)
	BaseLatency        time.Duration // propagation + switch + DMA setup, one way
	PerOpOverheadBytes int           // headers/acks charged per message
}

// DefaultConfig matches the paper's FDR Infiniband fabric.
func DefaultConfig() Config {
	return Config{
		PayloadBytesPerSec: 5.1e9,
		TCPBytesPerSec:     3.4e9,
		BaseLatency:        2 * time.Microsecond,
		PerOpOverheadBytes: 1500,
	}
}

// NIC is one server's network adapter: full-duplex, with separate send
// and receive bandwidth regulators, plus a TCP-stack regulator modelling
// the kernel copy path that SMB-over-TCP traffic must additionally cross.
type NIC struct {
	k        *sim.Kernel
	name     string
	tx, rx   *sim.Regulator
	tcpStack *sim.Regulator
	cfg      Config

	Ops       int64
	BytesSent int64
	BytesRecv int64
}

// New creates a NIC.
func New(k *sim.Kernel, name string, cfg Config) *NIC {
	return &NIC{
		k:        k,
		name:     name,
		tx:       sim.NewRegulator(k, name+"/tx", cfg.PayloadBytesPerSec),
		rx:       sim.NewRegulator(k, name+"/rx", cfg.PayloadBytesPerSec),
		tcpStack: sim.NewRegulator(k, name+"/tcp", cfg.TCPBytesPerSec),
		cfg:      cfg,
	}
}

// Name returns the NIC name.
func (n *NIC) Name() string { return n.name }

// Config returns the NIC configuration.
func (n *NIC) Config() Config { return n.cfg }

// TxUtilization returns the send-side busy fraction.
func (n *NIC) TxUtilization() float64 { return n.tx.Utilization() }

// RxUtilization returns the receive-side busy fraction.
func (n *NIC) RxUtilization() float64 { return n.rx.Utilization() }

// Wire charges the time to move size payload bytes from src to dst over
// the RDMA path: the transfer occupies src's send side and dst's receive
// side (FIFO per NIC port) and adds the one-way base latency. The caller
// sleeps until the transfer completes.
func Wire(p *sim.Proc, src, dst *NIC, size int) {
	total := size + src.cfg.PerOpOverheadBytes
	txDone := src.tx.Reserve(total)
	rxDone := dst.rx.Reserve(total)
	// The slower of the two ports governs (cut-through switching);
	// propagation adds the base latency.
	done := txDone
	if rxDone > done {
		done = rxDone
	}
	done += src.cfg.BaseLatency
	src.Ops++
	src.BytesSent += int64(size)
	dst.BytesRecv += int64(size)
	p.SleepUntil(done)
}

// WireTCP is Wire for the TCP path: the payload additionally crosses both
// endpoints' kernel TCP stacks, which are slower than the fabric.
func WireTCP(p *sim.Proc, src, dst *NIC, size int) {
	total := size + src.cfg.PerOpOverheadBytes
	txDone := src.tx.Reserve(total)
	rxDone := dst.rx.Reserve(total)
	sDone := src.tcpStack.Reserve(total)
	dDone := dst.tcpStack.Reserve(total)
	done := txDone
	for _, d := range []time.Duration{rxDone, sDone, dDone} {
		if d > done {
			done = d
		}
	}
	done += src.cfg.BaseLatency
	src.Ops++
	src.BytesSent += int64(size)
	dst.BytesRecv += int64(size)
	p.SleepUntil(done)
}

// Protocol identifies the remote-memory access protocol (Table 5).
type Protocol int

const (
	// ProtoRDMA is the paper's Custom design: NDSPI RDMA verbs with
	// preregistered staging buffers and synchronous (spinning) completion.
	ProtoRDMA Protocol = iota
	// ProtoSMBDirect is SMB 3.0 over RDMA to a RamDrive: RDMA transfers,
	// but file-server processing on the remote CPU and asynchronous I/O
	// completion on the client.
	ProtoSMBDirect
	// ProtoSMB is SMB over TCP/IP to a RamDrive: remote CPU does protocol
	// processing and kernel copies on every transfer.
	ProtoSMB
)

// String returns the design name the paper uses for the protocol.
func (pr Protocol) String() string {
	switch pr {
	case ProtoRDMA:
		return "Custom"
	case ProtoSMBDirect:
		return "SMBDirect+RamDrive"
	case ProtoSMB:
		return "SMB+RamDrive"
	}
	return "unknown"
}

// Profile captures a protocol's per-operation costs beyond the wire.
type Profile struct {
	// ClientPost is CPU time spent issuing the request on the client.
	ClientPost time.Duration
	// ServerWorkers bounds concurrent server-side protocol processing.
	ServerWorkers int
	// ServerService is per-op server-side processing time (charged to the
	// remote server's CPU for TCP; to the file-server stage otherwise).
	ServerService time.Duration
	// ServerCPUCharge is the remote CPU time consumed per op, the quantity
	// that produces Figure 13's ~10% degradation for TCP and ~0 for RDMA.
	ServerCPUCharge time.Duration
	// AsyncCompletion is true when the client treats the I/O as
	// asynchronous (context switch + reschedule to observe completion).
	AsyncCompletion bool
	// TCPPath routes the payload through WireTCP.
	TCPPath bool
}

// ProfileFor returns the calibrated cost profile for a protocol.
func ProfileFor(pr Protocol) Profile {
	switch pr {
	case ProtoRDMA:
		return Profile{
			ClientPost:    300 * time.Nanosecond,
			ServerWorkers: 0, // no server involvement
		}
	case ProtoSMBDirect:
		return Profile{
			ClientPost:      2 * time.Microsecond,
			ServerWorkers:   4,
			ServerService:   22 * time.Microsecond,
			ServerCPUCharge: 10 * time.Microsecond,
			AsyncCompletion: true,
		}
	case ProtoSMB:
		return Profile{
			ClientPost:      10 * time.Microsecond,
			ServerWorkers:   4,
			ServerService:   50 * time.Microsecond,
			ServerCPUCharge: 50 * time.Microsecond,
			AsyncCompletion: true,
			TCPPath:         true,
		}
	}
	panic("nic: unknown protocol")
}

// Registration and copy costs from Section 4 of the paper: registering an
// 8 K page costs ~50 µs; a staging memcpy of the same page costs ~2 µs.
const (
	// RegisterBase is the fixed kernel/driver cost of one MR registration.
	RegisterBase = 45 * time.Microsecond
	// RegisterPerKiB is the added pinning cost per KiB registered.
	RegisterPerKiB = 600 * time.Nanosecond
	// MemcpyBase is the fixed cost of a staging copy.
	MemcpyBase = 500 * time.Nanosecond
	// MemcpyBytesPerSec is the staging copy bandwidth.
	MemcpyBytesPerSec = 4e9
)

// RegisterCost returns the time to register an MR of size bytes.
func RegisterCost(size int) time.Duration {
	return RegisterBase + time.Duration(size/1024)*RegisterPerKiB
}

// MemcpyCost returns the time for a staging copy of size bytes.
func MemcpyCost(size int) time.Duration {
	return MemcpyBase + time.Duration(float64(size)/MemcpyBytesPerSec*1e9)
}
