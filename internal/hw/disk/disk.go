// Package disk models the local I/O subsystems of the paper's testbed
// (Table 3): a RAID-0 array of 7.2K RPM SAS spindles (4, 8 or 20 of them)
// and a SAS SLC SSD. The models charge virtual time only; the bytes of a
// "disk" file live in ordinary Go memory in the vfs layer.
//
// Calibration targets are Figures 3 and 4 of the paper:
//
//	8 KiB random reads, 20 threads:  HDD(4) ≈ 7 MB/s @ 21 ms,
//	  HDD(8) ≈ 15 MB/s @ 13 ms, HDD(20) ≈ 40 MB/s @ 8 ms, SSD ≈ 240 MB/s @ 624 µs
//	512 KiB sequential reads, 5 threads: HDD(4) ≈ 0.36 GB/s, HDD(8) ≈ 0.76 GB/s,
//	  HDD(20) ≈ 1.76 GB/s, SSD ≈ 0.39 GB/s @ 6.3 ms
//
// See disk/calibrate_test.go for the assertions.
package disk

import (
	"time"

	"remotedb/internal/sim"
)

// Device is anything that can charge virtual time for an I/O. Offsets let
// the model distinguish sequential from random access.
type Device interface {
	// Read charges the time for reading size bytes at off.
	Read(p *sim.Proc, off, size int64)
	// Write charges the time for writing size bytes at off.
	Write(p *sim.Proc, off, size int64)
	// Name identifies the device in stats output.
	Name() string
}

// Spindle models one rotating disk: a single actuator (Resource of
// capacity 1), uniform-random positioning cost for non-sequential
// accesses, and a media transfer rate. A small "track cache" of recent
// request end offsets lets interleaved sequential streams (SQLIO's five
// reader threads, the engine's scan and write-back streams) still be
// recognized as sequential, standing in for NCQ and drive read-ahead.
type Spindle struct {
	k        *sim.Kernel
	actuator *sim.Resource

	seekMin, seekMax time.Duration
	bytesPerSec      float64
	trackCache       []int64 // recent end offsets, newest last
	cacheSize        int

	Reads, Writes      int64
	BytesRead, Written int64
	SeqHits, SeqMisses int64
}

// SpindleConfig parameterizes a spindle.
type SpindleConfig struct {
	SeekMin     time.Duration // fastest random positioning (seek + rotate)
	SeekMax     time.Duration // slowest random positioning
	BytesPerSec float64       // media transfer rate
	TrackCache  int           // number of stream tails remembered
}

// DefaultSpindleConfig matches a 7.2K RPM near-line SAS drive as measured
// by the paper: ~4.2 ms mean positioning, ~90 MB/s media rate.
func DefaultSpindleConfig() SpindleConfig {
	return SpindleConfig{
		SeekMin:     2200 * time.Microsecond,
		SeekMax:     5200 * time.Microsecond,
		BytesPerSec: 90e6,
		TrackCache:  16,
	}
}

// NewSpindle creates one disk spindle.
func NewSpindle(k *sim.Kernel, name string, cfg SpindleConfig) *Spindle {
	if cfg.TrackCache <= 0 {
		cfg.TrackCache = 16
	}
	return &Spindle{
		k:           k,
		actuator:    sim.NewResource(k, name, 1),
		seekMin:     cfg.SeekMin,
		seekMax:     cfg.SeekMax,
		bytesPerSec: cfg.BytesPerSec,
		cacheSize:   cfg.TrackCache,
	}
}

func (s *Spindle) sequential(off int64) bool {
	for i, end := range s.trackCache {
		if end == off {
			// Refresh this stream to most-recently-used.
			s.trackCache = append(s.trackCache[:i], s.trackCache[i+1:]...)
			return true
		}
	}
	return false
}

func (s *Spindle) remember(end int64) {
	s.trackCache = append(s.trackCache, end)
	if len(s.trackCache) > s.cacheSize {
		s.trackCache = s.trackCache[1:]
	}
}

func (s *Spindle) access(p *sim.Proc, off, size int64) {
	s.actuator.Acquire(p, 1)
	svc := time.Duration(float64(size) / s.bytesPerSec * 1e9)
	if s.sequential(off) {
		s.SeqHits++
	} else {
		s.SeqMisses++
		span := int64(s.seekMax - s.seekMin)
		svc += s.seekMin + time.Duration(p.Rand().Int63n(span))
	}
	s.remember(off + size)
	p.Sleep(svc)
	s.actuator.Release(1)
}

// Read charges one read.
func (s *Spindle) Read(p *sim.Proc, off, size int64) {
	s.Reads++
	s.BytesRead += size
	s.access(p, off, size)
}

// Write charges one write.
func (s *Spindle) Write(p *sim.Proc, off, size int64) {
	s.Writes++
	s.Written += size
	s.access(p, off, size)
}

// Utilization returns the actuator's busy fraction.
func (s *Spindle) Utilization() float64 { return s.actuator.Utilization() }

// HDDArray is a RAID-0 stripe set over N spindles, mirroring the paper's
// Dell PERC H710P setup. An I/O is split at stripe-unit boundaries and
// the chunks are serviced in parallel on their spindles; the caller's
// latency is the slowest chunk.
type HDDArray struct {
	k          *sim.Kernel
	name       string
	spindles   []*Spindle
	stripeUnit int64
}

// HDDArrayConfig parameterizes the array.
type HDDArrayConfig struct {
	Spindles   int
	StripeUnit int64 // bytes per stripe unit; 64 KiB default
	Spindle    SpindleConfig
}

// DefaultHDDArrayConfig returns the paper's default of 20 spindles.
func DefaultHDDArrayConfig(spindles int) HDDArrayConfig {
	return HDDArrayConfig{
		Spindles:   spindles,
		StripeUnit: 64 << 10,
		Spindle:    DefaultSpindleConfig(),
	}
}

// NewHDDArray creates a RAID-0 array.
func NewHDDArray(k *sim.Kernel, name string, cfg HDDArrayConfig) *HDDArray {
	if cfg.Spindles <= 0 {
		panic("disk: array needs at least one spindle")
	}
	if cfg.StripeUnit <= 0 {
		cfg.StripeUnit = 64 << 10
	}
	a := &HDDArray{k: k, name: name, stripeUnit: cfg.StripeUnit}
	for i := 0; i < cfg.Spindles; i++ {
		a.spindles = append(a.spindles, NewSpindle(k, name, cfg.Spindle))
	}
	return a
}

// Name returns the array's name.
func (a *HDDArray) Name() string { return a.name }

// Spindles returns the spindle count.
func (a *HDDArray) Spindles() int { return len(a.spindles) }

// chunk is one stripe-unit-aligned piece of an I/O.
type chunk struct {
	spindle int
	off     int64 // offset within the spindle
	size    int64
}

func (a *HDDArray) split(off, size int64) []chunk {
	var out []chunk
	n := int64(len(a.spindles))
	for size > 0 {
		stripe := off / a.stripeUnit
		within := off % a.stripeUnit
		take := a.stripeUnit - within
		if take > size {
			take = size
		}
		out = append(out, chunk{
			spindle: int(stripe % n),
			off:     (stripe/n)*a.stripeUnit + within,
			size:    take,
		})
		off += take
		size -= take
	}
	return out
}

func (a *HDDArray) access(p *sim.Proc, off, size int64, write bool) {
	chunks := a.split(off, size)
	if len(chunks) == 1 {
		c := chunks[0]
		if write {
			a.spindles[c.spindle].Write(p, c.off, c.size)
		} else {
			a.spindles[c.spindle].Read(p, c.off, c.size)
		}
		return
	}
	// Fan out chunks to their spindles in parallel and wait for all.
	wg := sim.NewWaitGroup(p.Kernel())
	wg.Add(len(chunks))
	for _, c := range chunks {
		c := c
		p.Kernel().Go("raid-chunk", func(cp *sim.Proc) {
			if write {
				a.spindles[c.spindle].Write(cp, c.off, c.size)
			} else {
				a.spindles[c.spindle].Read(cp, c.off, c.size)
			}
			wg.Done()
		})
	}
	wg.Wait(p)
}

// Read charges a (possibly striped) read.
func (a *HDDArray) Read(p *sim.Proc, off, size int64) { a.access(p, off, size, false) }

// Write charges a (possibly striped) write.
func (a *HDDArray) Write(p *sim.Proc, off, size int64) { a.access(p, off, size, true) }

// Stats sums per-spindle counters.
func (a *HDDArray) Stats() (reads, writes, bytesRead, bytesWritten int64) {
	for _, s := range a.spindles {
		reads += s.Reads
		writes += s.Writes
		bytesRead += s.BytesRead
		bytesWritten += s.Written
	}
	return
}

// SSD models the paper's SAS SLC SSD: a command stage with limited
// internal parallelism (flash channels) plus a shared media bandwidth
// regulator. Random small I/O is command-limited (~30K IOPS); large
// sequential I/O is bandwidth-limited (~400 MB/s).
type SSD struct {
	k        *sim.Kernel
	name     string
	commands *sim.Resource
	media    *sim.Regulator
	cmdTime  time.Duration

	Reads, Writes      int64
	BytesRead, Written int64
}

// SSDConfig parameterizes the SSD model.
type SSDConfig struct {
	Channels    int           // concurrent commands
	CommandTime time.Duration // per-command flash access time
	BytesPerSec float64       // media bandwidth
}

// DefaultSSDConfig matches the paper's 400 GB SAS SLC drive.
func DefaultSSDConfig() SSDConfig {
	return SSDConfig{Channels: 8, CommandTime: 240 * time.Microsecond, BytesPerSec: 400e6}
}

// NewSSD creates an SSD.
func NewSSD(k *sim.Kernel, name string, cfg SSDConfig) *SSD {
	return &SSD{
		k:        k,
		name:     name,
		commands: sim.NewResource(k, name+"/cmd", cfg.Channels),
		media:    sim.NewRegulator(k, name+"/media", cfg.BytesPerSec),
		cmdTime:  cfg.CommandTime,
	}
}

// Name returns the device name.
func (d *SSD) Name() string { return d.name }

func (d *SSD) access(p *sim.Proc, size int64) {
	d.commands.Acquire(p, 1)
	p.Sleep(d.cmdTime)
	done := d.media.Reserve(int(size))
	d.commands.Release(1)
	p.SleepUntil(done)
}

// Read charges one read.
func (d *SSD) Read(p *sim.Proc, off, size int64) {
	d.Reads++
	d.BytesRead += size
	d.access(p, size)
}

// Write charges one write.
func (d *SSD) Write(p *sim.Proc, off, size int64) {
	d.Writes++
	d.Written += size
	d.access(p, size)
}

// NullDevice charges no time at all; it models data already in local RAM
// (the Local Memory design) at the device layer.
type NullDevice struct{ DeviceName string }

// Name returns the device name.
func (n NullDevice) Name() string { return n.DeviceName }

// Read charges nothing.
func (NullDevice) Read(p *sim.Proc, off, size int64) {}

// Write charges nothing.
func (NullDevice) Write(p *sim.Proc, off, size int64) {}
