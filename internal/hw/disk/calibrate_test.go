package disk

import (
	"testing"
	"time"

	"remotedb/internal/metrics"
	"remotedb/internal/sim"
)

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if got < want*(1-tol) || got > want*(1+tol) {
		t.Errorf("%s = %.3g, want %.3g ±%.0f%%", name, got, want, tol*100)
	}
}

// The paper's Figure 3/4 numbers for the HDD arrays.
func TestHDDRandomCalibration(t *testing.T) {
	// Note: the paper's HDD(20) pair (40 MB/s at 8 ms with 20 outstanding
	// 8 K reads) is not Little's-law consistent (20×8 KiB/8 ms ≈ 20 MB/s),
	// so no queueing model can match both; we allow a wider band there.
	cases := []struct {
		spindles int
		wantBPS  float64 // Figure 3, 8K random
		wantLat  float64 // Figure 4, seconds
		tol      float64
	}{
		{4, 0.007e9, 21000e-6, 0.35},
		{8, 0.015e9, 13000e-6, 0.35},
		{20, 0.040e9, 8000e-6, 0.45},
	}
	for _, c := range cases {
		k := sim.New(1)
		a := NewHDDArray(k, "hdd", DefaultHDDArrayConfig(c.spindles))
		bps, lat := driveRandomOn(k, a, 20, 8192, 1<<37, 20*time.Second)
		within(t, "hdd random bps", bps, c.wantBPS, c.tol)
		within(t, "hdd random lat", lat.Seconds(), c.wantLat, c.tol+0.10)
	}
}

// driveRandomOn runs the SQLIO random-read pattern on the given kernel:
// threads concurrent readers issuing ioSize reads at uniformly random
// aligned offsets for dur of virtual time. It returns achieved bytes/sec
// and mean latency.
func driveRandomOn(k *sim.Kernel, dev Device, threads int, ioSize, span int64, dur time.Duration) (float64, time.Duration) {
	hist := metrics.NewHistogram()
	var bytes int64
	for i := 0; i < threads; i++ {
		k.Go("rnd", func(p *sim.Proc) {
			for p.Now() < dur {
				off := (p.Rand().Int63n(span / ioSize)) * ioSize
				start := p.Now()
				dev.Read(p, off, ioSize)
				hist.Observe(p.Now() - start)
				bytes += ioSize
			}
		})
	}
	k.Run(dur)
	return float64(bytes) / dur.Seconds(), hist.Mean()
}

func driveSequentialOn(k *sim.Kernel, dev Device, threads int, ioSize int64, dur time.Duration) (float64, time.Duration) {
	hist := metrics.NewHistogram()
	var bytes int64
	region := int64(1) << 36
	for i := 0; i < threads; i++ {
		base := int64(i) * region
		k.Go("seq", func(p *sim.Proc) {
			off := base
			for p.Now() < dur {
				start := p.Now()
				dev.Read(p, off, ioSize)
				hist.Observe(p.Now() - start)
				bytes += ioSize
				off += ioSize
			}
		})
	}
	k.Run(dur)
	return float64(bytes) / dur.Seconds(), hist.Mean()
}

func TestHDDSequentialCalibration(t *testing.T) {
	cases := []struct {
		spindles int
		wantBPS  float64 // Figure 3, 512K sequential
	}{
		{4, 0.36e9},
		{8, 0.76e9},
		{20, 1.76e9},
	}
	for _, c := range cases {
		k := sim.New(1)
		a := NewHDDArray(k, "hdd", DefaultHDDArrayConfig(c.spindles))
		bps, _ := driveSequentialOn(k, a, 5, 512<<10, 10*time.Second)
		within(t, "hdd seq bps", bps, c.wantBPS, 0.35)
	}
}

func TestSSDCalibration(t *testing.T) {
	// Random: 0.24 GB/s @ 624 µs (20 threads, 8K).
	k := sim.New(1)
	ssd := NewSSD(k, "ssd", DefaultSSDConfig())
	bps, lat := driveRandomOn(k, ssd, 20, 8192, 1<<36, 10*time.Second)
	within(t, "ssd random bps", bps, 0.24e9, 0.30)
	within(t, "ssd random lat", lat.Seconds(), 624e-6, 0.35)

	// Sequential: 0.39 GB/s @ 6288 µs (5 threads, 512K).
	k2 := sim.New(1)
	ssd2 := NewSSD(k2, "ssd", DefaultSSDConfig())
	bps2, lat2 := driveSequentialOn(k2, ssd2, 5, 512<<10, 10*time.Second)
	within(t, "ssd seq bps", bps2, 0.39e9, 0.25)
	within(t, "ssd seq lat", lat2.Seconds(), 6288e-6, 0.35)
}

func TestRAIDSplitCoversRange(t *testing.T) {
	k := sim.New(1)
	a := NewHDDArray(k, "hdd", DefaultHDDArrayConfig(4))
	chunks := a.split(100, 300000)
	var total int64
	for _, c := range chunks {
		total += c.size
		if c.size <= 0 || c.size > a.stripeUnit {
			t.Fatalf("bad chunk size %d", c.size)
		}
		if c.spindle < 0 || c.spindle >= 4 {
			t.Fatalf("bad spindle %d", c.spindle)
		}
	}
	if total != 300000 {
		t.Fatalf("split covers %d bytes, want 300000", total)
	}
}

func TestRAIDSingleChunkStaysInline(t *testing.T) {
	k := sim.New(1)
	a := NewHDDArray(k, "hdd", DefaultHDDArrayConfig(4))
	if got := len(a.split(0, 4096)); got != 1 {
		t.Fatalf("small IO split into %d chunks, want 1", got)
	}
}

func TestSpindleSequentialDetection(t *testing.T) {
	k := sim.New(1)
	s := NewSpindle(k, "sp", DefaultSpindleConfig())
	k.Go("p", func(p *sim.Proc) {
		s.Read(p, 0, 8192)     // miss
		s.Read(p, 8192, 8192)  // hit
		s.Read(p, 16384, 8192) // hit
		s.Read(p, 1<<30, 8192) // miss
	})
	k.Run(0)
	if s.SeqHits != 2 || s.SeqMisses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", s.SeqHits, s.SeqMisses)
	}
}

func TestNullDeviceChargesNothing(t *testing.T) {
	k := sim.New(1)
	var end time.Duration
	k.Go("p", func(p *sim.Proc) {
		NullDevice{DeviceName: "ram"}.Read(p, 0, 1<<30)
		end = p.Now()
	})
	k.Run(0)
	if end != 0 {
		t.Fatalf("null device advanced clock to %v", end)
	}
}

func TestArrayStats(t *testing.T) {
	k := sim.New(1)
	a := NewHDDArray(k, "hdd", DefaultHDDArrayConfig(4))
	k.Go("p", func(p *sim.Proc) {
		a.Read(p, 0, 8192)
		a.Write(p, 0, 8192)
	})
	k.Run(0)
	r, w, br, bw := a.Stats()
	if r != 1 || w != 1 || br != 8192 || bw != 8192 {
		t.Fatalf("stats = %d %d %d %d", r, w, br, bw)
	}
}
