package sim

import "time"

// Cond is a condition variable on virtual time. Wait parks the calling
// process; Signal wakes the oldest waiter, Broadcast wakes all.
type Cond struct {
	k       *Kernel
	waiters []*Proc
}

// NewCond creates a condition variable.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait parks the process until signalled.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.blockHere()
}

// Signal wakes the oldest waiter, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.k.wake(p)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	for _, p := range c.waiters {
		c.k.wake(p)
	}
	c.waiters = nil
}

// Waiting returns the number of parked processes.
func (c *Cond) Waiting() int { return len(c.waiters) }

// WaitGroup counts outstanding work in virtual time.
type WaitGroup struct {
	k       *Kernel
	n       int
	waiters []*Proc
}

// NewWaitGroup creates a wait group.
func NewWaitGroup(k *Kernel) *WaitGroup { return &WaitGroup{k: k} }

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.n == 0 {
		for _, p := range wg.waiters {
			wg.k.wake(p)
		}
		wg.waiters = nil
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait parks the process until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.n == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.blockHere()
}

// Chan is an unbounded FIFO channel between simulation processes.
type Chan[T any] struct {
	k      *Kernel
	items  []T
	recvrs []*Proc
	closed bool
}

// NewChan creates a channel.
func NewChan[T any](k *Kernel) *Chan[T] { return &Chan[T]{k: k} }

// Send enqueues v and wakes one receiver. It never blocks.
func (ch *Chan[T]) Send(v T) {
	if ch.closed {
		panic("sim: send on closed Chan")
	}
	ch.items = append(ch.items, v)
	ch.wakeOne()
}

// Close marks the channel closed; blocked and future receivers get ok=false
// once drained.
func (ch *Chan[T]) Close() {
	ch.closed = true
	for _, p := range ch.recvrs {
		ch.k.wake(p)
	}
	ch.recvrs = nil
}

func (ch *Chan[T]) wakeOne() {
	if len(ch.recvrs) == 0 {
		return
	}
	p := ch.recvrs[0]
	ch.recvrs = ch.recvrs[1:]
	ch.k.wake(p)
}

// Recv blocks until an item is available or the channel is closed and
// drained. ok is false only in the latter case.
func (ch *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	for {
		if len(ch.items) > 0 {
			v = ch.items[0]
			ch.items = ch.items[1:]
			// Another item may still be pending for another receiver.
			if len(ch.items) > 0 {
				ch.wakeOne()
			}
			return v, true
		}
		if ch.closed {
			var zero T
			return zero, false
		}
		ch.recvrs = append(ch.recvrs, p)
		p.blockHere()
	}
}

// TryRecv returns an item if one is queued.
func (ch *Chan[T]) TryRecv() (v T, ok bool) {
	if len(ch.items) == 0 {
		var zero T
		return zero, false
	}
	v = ch.items[0]
	ch.items = ch.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (ch *Chan[T]) Len() int { return len(ch.items) }

// Regulator models a serially shared bandwidth channel (a NIC port, a
// memory bus). A transfer of size s arriving at time t completes at
// max(t, freeAt) + s/rate; freeAt advances to the completion time. This
// FIFO store-and-forward discipline yields linear scaling until
// saturation and queueing delays after it, which is exactly the behaviour
// Figures 5, 6 and 25 of the paper rely on.
type Regulator struct {
	k           *Kernel
	name        string
	bytesPerSec float64
	freeAt      int64
	busyNanos   int64
	bytesMoved  int64
}

// NewRegulator creates a bandwidth regulator.
func NewRegulator(k *Kernel, name string, bytesPerSec float64) *Regulator {
	if bytesPerSec <= 0 {
		panic("sim: regulator rate must be positive")
	}
	return &Regulator{k: k, name: name, bytesPerSec: bytesPerSec}
}

// Rate returns the configured bandwidth in bytes/second.
func (rg *Regulator) Rate() float64 { return rg.bytesPerSec }

// Reserve books a transfer of size bytes and returns its completion time.
// It does not block; callers SleepUntil the returned time.
func (rg *Regulator) Reserve(size int) time.Duration {
	start := rg.k.now
	if rg.freeAt > start {
		start = rg.freeAt
	}
	d := int64(float64(size) / rg.bytesPerSec * 1e9)
	rg.freeAt = start + d
	rg.busyNanos += d
	rg.bytesMoved += int64(size)
	return time.Duration(rg.freeAt)
}

// ReserveAfter is Reserve but the transfer cannot start before earliest.
func (rg *Regulator) ReserveAfter(earliest time.Duration, size int) time.Duration {
	start := rg.k.now
	if e := int64(earliest); e > start {
		start = e
	}
	if rg.freeAt > start {
		start = rg.freeAt
	}
	d := int64(float64(size) / rg.bytesPerSec * 1e9)
	rg.freeAt = start + d
	rg.busyNanos += d
	rg.bytesMoved += int64(size)
	return time.Duration(rg.freeAt)
}

// Transfer blocks the process for a transfer of size bytes.
func (rg *Regulator) Transfer(p *Proc, size int) {
	p.SleepUntil(rg.Reserve(size))
}

// BytesMoved returns the total bytes pushed through the regulator.
func (rg *Regulator) BytesMoved() int64 { return rg.bytesMoved }

// Utilization returns the busy fraction since simulation start.
func (rg *Regulator) Utilization() float64 {
	if rg.k.now == 0 {
		return 0
	}
	busy := rg.busyNanos
	if rg.freeAt > rg.k.now {
		busy -= rg.freeAt - rg.k.now // booked but not yet elapsed
	}
	return float64(busy) / float64(rg.k.now)
}
