// Package sim implements a deterministic discrete-event simulation kernel.
//
// Processes are ordinary goroutines, but the kernel runs exactly one of
// them at a time: a process executes until it blocks on a kernel primitive
// (Sleep, Resource.Acquire, Cond.Wait, ...), at which point control is
// handed back to the kernel, which pops the next event off a virtual-time
// heap. Events at equal times are ordered by a monotonically increasing
// sequence number, so a simulation with a fixed RNG seed is bit-for-bit
// reproducible. No wall-clock time is consulted anywhere.
//
// The kernel is the substrate for every hardware and software model in
// this repository: disks, NICs, CPU schedulers, the memory broker, and
// the database engine all advance on the same virtual clock.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Kernel owns the virtual clock and the event queue.
type Kernel struct {
	now    int64 // virtual time in nanoseconds
	eq     eventHeap
	seq    int64
	park   chan parkMsg // processes signal the kernel here when they block or exit
	nprocs int          // live (not yet exited) processes
	rng    *rand.Rand
	halted bool
}

type parkMsg struct {
	exited bool
}

type event struct {
	at  int64
	seq int64
	p   *Proc // process to resume; nil events are not used
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// New returns a kernel whose RNG is seeded with seed.
func New(seed int64) *Kernel {
	return &Kernel{
		park: make(chan parkMsg),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time as a duration since simulation start.
func (k *Kernel) Now() time.Duration { return time.Duration(k.now) }

// NowNanos returns the current virtual time in nanoseconds.
func (k *Kernel) NowNanos() int64 { return k.now }

// Rand returns the kernel's deterministic random source. It must only be
// used from within simulation processes (which run one at a time).
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Proc is a simulation process. All blocking methods must be called from
// the goroutine running the process.
type Proc struct {
	k        *Kernel
	name     string
	resume   chan struct{}
	deadline time.Duration // absolute virtual time; 0 = no deadline
}

// Name returns the name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.k.Now() }

// SetDeadline attaches an absolute virtual-time deadline to the process
// (0 clears it). The kernel never enforces it; it is a goroutine-local
// budget that deadline-aware layers (rmem transports, the file layer's
// retry loops) consult so a per-query budget flows down a call chain
// without threading a context parameter through every interface.
func (p *Proc) SetDeadline(t time.Duration) { p.deadline = t }

// Deadline returns the process's absolute deadline (0 = none).
func (p *Proc) Deadline() time.Duration { return p.deadline }

// Rand returns the kernel RNG.
func (p *Proc) Rand() *rand.Rand { return p.k.rng }

// Go spawns a new process that starts at the current virtual time.
// It may be called before Run or from within a running process.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.nprocs++
	k.schedule(k.now, p)
	go func() {
		// The deferred park keeps the kernel alive even if fn bails out
		// via runtime.Goexit (e.g. t.Fatal inside a simulation process).
		defer func() { k.park <- parkMsg{exited: true} }()
		<-p.resume // wait for the kernel to start us
		fn(p)
	}()
	return p
}

// GoAt spawns a process that starts at virtual time at (>= now).
func (k *Kernel) GoAt(at time.Duration, name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.nprocs++
	t := int64(at)
	if t < k.now {
		t = k.now
	}
	k.schedule(t, p)
	go func() {
		defer func() { k.park <- parkMsg{exited: true} }()
		<-p.resume
		fn(p)
	}()
	return p
}

// schedule enqueues a wakeup for p at virtual time t.
func (k *Kernel) schedule(t int64, p *Proc) {
	k.seq++
	heap.Push(&k.eq, &event{at: t, seq: k.seq, p: p})
}

// After schedules fn to run at now+d on the kernel's own turn (no process
// context). fn must not block on simulation primitives.
func (k *Kernel) After(d time.Duration, fn func()) {
	k.seq++
	heap.Push(&k.eq, &event{at: k.now + int64(d), seq: k.seq, fn: fn})
}

// Run drives the simulation until no events remain, until all processes
// have exited, or until virtual time would exceed limit (0 = no limit).
func (k *Kernel) Run(limit time.Duration) {
	lim := int64(limit)
	for k.eq.Len() > 0 {
		ev := heap.Pop(&k.eq).(*event)
		if lim > 0 && ev.at > lim {
			k.now = lim
			k.halted = true
			return
		}
		if ev.at > k.now {
			k.now = ev.at
		}
		if ev.fn != nil {
			ev.fn()
			continue
		}
		ev.p.resume <- struct{}{}
		msg := <-k.park
		if msg.exited {
			k.nprocs--
		}
	}
}

// Halted reports whether the last Run stopped due to the time limit.
func (k *Kernel) Halted() bool { return k.halted }

// blockHere parks the calling process; it returns when the kernel resumes
// it. The caller must already have arranged for a wakeup (scheduled event
// or registration with a waking primitive), otherwise the process leaks.
func (p *Proc) blockHere() {
	p.k.park <- parkMsg{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time. Negative or zero
// durations still yield through the event queue, preserving determinism.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.k.schedule(p.k.now+int64(d), p)
	p.blockHere()
}

// SleepUntil suspends the process until virtual time t (no-op if in the past).
func (p *Proc) SleepUntil(t time.Duration) {
	tt := int64(t)
	if tt < p.k.now {
		tt = p.k.now
	}
	p.k.schedule(tt, p)
	p.blockHere()
}

// Yield reschedules the process at the current time, letting other
// runnable processes (with earlier sequence numbers) run first.
func (p *Proc) Yield() { p.Sleep(0) }

// wake schedules p to resume at the current virtual time.
func (k *Kernel) wake(p *Proc) { k.schedule(k.now, p) }

func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }
