package sim

import "time"

// Resource is a counted FIFO resource: Acquire blocks until n units are
// available, grants are strictly first-come first-served. It models disk
// spindles, CPU cores, NIC DMA engines, connection slots, and so on.
type Resource struct {
	k        *Kernel
	name     string
	capacity int
	avail    int
	waiters  []*resWaiter

	// Utilization accounting.
	busyNanos int64
	lastAt    int64
	lastBusy  int
}

type resWaiter struct {
	p       *Proc
	n       int
	granted bool
}

// NewResource creates a resource with the given capacity (units).
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{k: k, name: name, capacity: capacity, avail: capacity}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total units.
func (r *Resource) Capacity() int { return r.capacity }

// Available returns the currently free units.
func (r *Resource) Available() int { return r.avail }

// InUse returns the currently held units.
func (r *Resource) InUse() int { return r.capacity - r.avail }

func (r *Resource) account() {
	now := r.k.now
	r.busyNanos += int64(r.lastBusy) * (now - r.lastAt)
	r.lastAt = now
	r.lastBusy = r.capacity - r.avail
}

// BusyNanos returns cumulative unit-nanoseconds of held capacity, for
// windowed utilization sampling.
func (r *Resource) BusyNanos() int64 {
	r.account()
	return r.busyNanos
}

// Utilization returns the time-averaged fraction of capacity in use
// since simulation start.
func (r *Resource) Utilization() float64 {
	r.account()
	if r.k.now == 0 {
		return 0
	}
	return float64(r.busyNanos) / (float64(r.k.now) * float64(r.capacity))
}

// Acquire blocks the process until n units are available and takes them.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 {
		return
	}
	if n > r.capacity {
		panic("sim: acquire exceeds resource capacity: " + r.name)
	}
	if len(r.waiters) == 0 && r.avail >= n {
		r.account()
		r.avail -= n
		return
	}
	w := &resWaiter{p: p, n: n}
	r.waiters = append(r.waiters, w)
	p.blockHere()
	if !w.granted {
		panic("sim: resource waiter resumed without grant: " + r.name)
	}
}

// TryAcquire takes n units if immediately available, without blocking.
func (r *Resource) TryAcquire(n int) bool {
	if n <= 0 {
		return true
	}
	if len(r.waiters) == 0 && r.avail >= n {
		r.account()
		r.avail -= n
		return true
	}
	return false
}

// Release returns n units and wakes waiters in FIFO order.
func (r *Resource) Release(n int) {
	if n <= 0 {
		return
	}
	r.account()
	r.avail += n
	if r.avail > r.capacity {
		panic("sim: release exceeds resource capacity: " + r.name)
	}
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		if r.avail < w.n {
			break // strict FIFO: do not let later small requests jump the queue
		}
		r.waiters = r.waiters[1:]
		r.avail -= w.n
		w.granted = true
		r.k.wake(w.p)
	}
}

// Use acquires n units, runs the process for d of virtual time, and
// releases the units. It is the common "occupy a device for its service
// time" idiom.
func (r *Resource) Use(p *Proc, n int, d time.Duration) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// QueueLen returns the number of blocked acquirers.
func (r *Resource) QueueLen() int { return len(r.waiters) }
