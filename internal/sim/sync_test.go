package sim

import (
	"testing"
	"time"
)

func TestCondSignalWakesOldest(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	var order []string
	waiter := func(name string, delay time.Duration) {
		k.Go(name, func(p *Proc) {
			p.Sleep(delay)
			c.Wait(p)
			order = append(order, name)
		})
	}
	waiter("a", 0)
	waiter("b", time.Millisecond)
	k.Go("signaller", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		c.Signal()
		p.Sleep(time.Millisecond)
		c.Signal()
	})
	k.Run(0)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v, want [a b]", order)
	}
}

func TestCondBroadcast(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	woke := 0
	for i := 0; i < 5; i++ {
		k.Go("w", func(p *Proc) {
			c.Wait(p)
			woke++
		})
	}
	k.Go("b", func(p *Proc) {
		p.Sleep(time.Millisecond)
		c.Broadcast()
	})
	k.Run(0)
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
}

func TestWaitGroup(t *testing.T) {
	k := New(1)
	wg := NewWaitGroup(k)
	wg.Add(3)
	var doneAt time.Duration
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Millisecond
		k.Go("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	k.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	k.Run(0)
	if doneAt != 3*time.Millisecond {
		t.Fatalf("waiter resumed at %v, want 3ms", doneAt)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	k := New(1)
	wg := NewWaitGroup(k)
	ran := false
	k.Go("w", func(p *Proc) {
		wg.Wait(p) // should not block
		ran = true
	})
	k.Run(0)
	if !ran {
		t.Fatal("Wait on zero counter blocked")
	}
}

func TestChanFIFO(t *testing.T) {
	k := New(1)
	ch := NewChan[int](k)
	var got []int
	k.Go("recv", func(p *Proc) {
		for {
			v, ok := ch.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	k.Go("send", func(p *Proc) {
		for i := 1; i <= 4; i++ {
			p.Sleep(time.Millisecond)
			ch.Send(i)
		}
		ch.Close()
	})
	k.Run(0)
	if len(got) != 4 {
		t.Fatalf("got %v, want 4 items", got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got %v, want [1 2 3 4]", got)
		}
	}
}

func TestChanCloseUnblocksReceivers(t *testing.T) {
	k := New(1)
	ch := NewChan[string](k)
	unblocked := 0
	for i := 0; i < 3; i++ {
		k.Go("r", func(p *Proc) {
			_, ok := ch.Recv(p)
			if !ok {
				unblocked++
			}
		})
	}
	k.Go("closer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		ch.Close()
	})
	k.Run(0)
	if unblocked != 3 {
		t.Fatalf("unblocked = %d, want 3", unblocked)
	}
}

func TestRegulatorSerialization(t *testing.T) {
	k := New(1)
	rg := NewRegulator(k, "nic", 1e9) // 1 GB/s
	var ends []time.Duration
	for i := 0; i < 3; i++ {
		k.Go("xfer", func(p *Proc) {
			rg.Transfer(p, 1e6) // 1 MB => 1 ms each
			ends = append(ends, p.Now())
		})
	}
	k.Run(0)
	want := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestRegulatorIdleGap(t *testing.T) {
	k := New(1)
	rg := NewRegulator(k, "nic", 1e9)
	var end time.Duration
	k.Go("late", func(p *Proc) {
		p.Sleep(10 * time.Millisecond) // regulator idle until now
		rg.Transfer(p, 1e6)
		end = p.Now()
	})
	k.Run(0)
	if end != 11*time.Millisecond {
		t.Fatalf("end = %v, want 11ms", end)
	}
}

func TestRegulatorReserveAfter(t *testing.T) {
	k := New(1)
	rg := NewRegulator(k, "nic", 1e9)
	var end time.Duration
	k.Go("p", func(p *Proc) {
		done := rg.ReserveAfter(5*time.Millisecond, 1e6)
		p.SleepUntil(done)
		end = p.Now()
	})
	k.Run(0)
	if end != 6*time.Millisecond {
		t.Fatalf("end = %v, want 6ms", end)
	}
}

func TestRegulatorBytesMoved(t *testing.T) {
	k := New(1)
	rg := NewRegulator(k, "nic", 1e9)
	k.Go("p", func(p *Proc) {
		rg.Transfer(p, 1000)
		rg.Transfer(p, 2000)
	})
	k.Run(0)
	if rg.BytesMoved() != 3000 {
		t.Fatalf("bytes = %d, want 3000", rg.BytesMoved())
	}
}
