package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	k := New(1)
	var woke time.Duration
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		woke = p.Now()
	})
	k.Run(0)
	if woke != 5*time.Millisecond {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
	if k.Now() != 5*time.Millisecond {
		t.Fatalf("kernel now = %v, want 5ms", k.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	k := New(1)
	var order []string
	k.Go("a", func(p *Proc) {
		p.Sleep(2 * time.Microsecond)
		order = append(order, "a")
	})
	k.Go("b", func(p *Proc) {
		p.Sleep(1 * time.Microsecond)
		order = append(order, "b")
	})
	k.Go("c", func(p *Proc) {
		p.Sleep(2 * time.Microsecond) // same time as a; spawned later, runs later
		order = append(order, "c")
	})
	k.Run(0)
	want := []string{"b", "a", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		k := New(42)
		var trace []int64
		for i := 0; i < 10; i++ {
			k.Go("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(time.Duration(p.Rand().Intn(1000)) * time.Microsecond)
					trace = append(trace, p.k.now)
				}
			})
		}
		k.Run(0)
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRunLimit(t *testing.T) {
	k := New(1)
	ticks := 0
	k.Go("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Millisecond)
			ticks++
		}
	})
	k.Run(10 * time.Millisecond)
	if !k.Halted() {
		t.Fatal("kernel should report halted at limit")
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if k.Now() != 10*time.Millisecond {
		t.Fatalf("now = %v, want 10ms", k.Now())
	}
}

func TestGoAt(t *testing.T) {
	k := New(1)
	var started time.Duration
	k.GoAt(7*time.Millisecond, "late", func(p *Proc) { started = p.Now() })
	k.Run(0)
	if started != 7*time.Millisecond {
		t.Fatalf("started at %v, want 7ms", started)
	}
}

func TestAfterCallback(t *testing.T) {
	k := New(1)
	fired := time.Duration(-1)
	k.After(3*time.Millisecond, func() { fired = k.Now() })
	k.Go("idle", func(p *Proc) { p.Sleep(10 * time.Millisecond) })
	k.Run(0)
	if fired != 3*time.Millisecond {
		t.Fatalf("After fired at %v, want 3ms", fired)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := New(1)
	var childRan bool
	k.Go("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		k.Go("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			childRan = true
		})
		p.Sleep(5 * time.Millisecond)
	})
	k.Run(0)
	if !childRan {
		t.Fatal("child process never ran")
	}
}

func TestResourceFIFO(t *testing.T) {
	k := New(1)
	r := NewResource(k, "disk", 1)
	var order []string
	hold := func(name string, delay, svc time.Duration) {
		k.Go(name, func(p *Proc) {
			p.Sleep(delay)
			r.Acquire(p, 1)
			order = append(order, name)
			p.Sleep(svc)
			r.Release(1)
		})
	}
	hold("first", 0, 10*time.Millisecond)
	hold("second", 1*time.Millisecond, time.Millisecond)
	hold("third", 2*time.Millisecond, time.Millisecond)
	k.Run(0)
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestResourceCountedGrant(t *testing.T) {
	k := New(1)
	r := NewResource(k, "mem", 4)
	var got []time.Duration
	k.Go("big", func(p *Proc) {
		r.Acquire(p, 4)
		p.Sleep(10 * time.Millisecond)
		r.Release(4)
	})
	k.Go("small", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p, 2)
		got = append(got, p.Now())
		r.Release(2)
	})
	k.Run(0)
	if len(got) != 1 || got[0] != 10*time.Millisecond {
		t.Fatalf("small acquired at %v, want [10ms]", got)
	}
}

func TestResourceStrictFIFONoJump(t *testing.T) {
	// A later small request must not overtake an earlier large one.
	k := New(1)
	r := NewResource(k, "r", 2)
	var order []string
	k.Go("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(10 * time.Millisecond)
		r.Release(1)
	})
	k.Go("large", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p, 2) // needs holder to release
		order = append(order, "large")
		r.Release(2)
	})
	k.Go("small", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		r.Acquire(p, 1) // one unit IS free, but large is queued ahead
		order = append(order, "small")
		r.Release(1)
	})
	k.Run(0)
	if order[0] != "large" || order[1] != "small" {
		t.Fatalf("order = %v, want [large small]", order)
	}
}

func TestResourceUtilization(t *testing.T) {
	k := New(1)
	r := NewResource(k, "u", 2)
	k.Go("w", func(p *Proc) {
		r.Use(p, 1, 10*time.Millisecond) // 1 of 2 units for 10 of 20ms => 0.25
		p.Sleep(10 * time.Millisecond)
	})
	k.Run(0)
	if u := r.Utilization(); u < 0.24 || u > 0.26 {
		t.Fatalf("utilization = %v, want ~0.25", u)
	}
}

func TestTryAcquire(t *testing.T) {
	k := New(1)
	r := NewResource(k, "t", 1)
	k.Go("p", func(p *Proc) {
		if !r.TryAcquire(1) {
			t.Error("TryAcquire should succeed on free resource")
		}
		if r.TryAcquire(1) {
			t.Error("TryAcquire should fail on exhausted resource")
		}
		r.Release(1)
	})
	k.Run(0)
}
