package broker

import (
	"errors"
	"testing"
	"time"

	"remotedb/internal/broker/metastore"
	"remotedb/internal/fault"
	"remotedb/internal/sim"
)

// clusterHarness runs fn in a simulation with an n-shard cluster over
// `donors` memory servers, each contributing mrs MRs of 1 MiB.
func clusterHarness(t *testing.T, shards, donors, mrs int, cfg Config,
	fn func(p *sim.Proc, c *Cluster, store *metastore.Store)) {
	t.Helper()
	k := sim.New(1)
	k.Go("test", func(p *sim.Proc) {
		store := metastore.New(k, 10*time.Microsecond)
		c := NewCluster(p, store, shards, cfg)
		for i := 0; i < donors; i++ {
			s := testServer(k, "mem"+string(rune('a'+i)))
			if _, err := c.AddProxy(p, s, 1<<20, mrs); err != nil {
				t.Error(err)
				return
			}
		}
		fn(p, c, store)
	})
	k.Run(time.Minute)
}

func TestRendezvousOrderStable(t *testing.T) {
	a := rendezvousOrder("db1", 5)
	b := rendezvousOrder("db1", 5)
	if len(a) != 5 {
		t.Fatalf("order length %d", len(a))
	}
	seen := make(map[int]bool)
	for i, s := range a {
		if s != b[i] {
			t.Fatalf("unstable order: %v vs %v", a, b)
		}
		if seen[s] || s < 0 || s >= 5 {
			t.Fatalf("not a permutation: %v", a)
		}
		seen[s] = true
	}
	// Over many keys every shard must be somebody's first preference,
	// or donors and holders would pile onto a subset of shards.
	first := make(map[int]int)
	for i := 0; i < 100; i++ {
		key := "holder" + string(rune('0'+i%10)) + string(rune('a'+i/10))
		first[rendezvousOrder(key, 5)[0]]++
	}
	for s := 0; s < 5; s++ {
		if first[s] == 0 {
			t.Fatalf("shard %d is never first preference: %v", s, first)
		}
	}
}

func TestClusterGrantRouting(t *testing.T) {
	clusterHarness(t, 4, 8, 2, DefaultConfig(), func(p *sim.Proc, c *Cluster, _ *metastore.Store) {
		leases, err := c.Request(p, RequestSpec{Holder: "db1", N: 10, Place: PlaceSpread})
		if err != nil {
			t.Fatal(err)
		}
		if len(leases) != 10 || c.ActiveLeases() != 10 || c.FreeMRs() != 6 {
			t.Fatalf("leases=%d active=%d free=%d", len(leases), c.ActiveLeases(), c.FreeMRs())
		}
		// Lease IDs are strided: the owning shard is recoverable from
		// the ID alone, and a 10-MR grant must span several shards.
		shardsUsed := make(map[int]bool)
		for _, l := range leases {
			sid := int(l.ID) % c.ShardCount()
			if c.Shard(sid).ShardID() != sid {
				t.Fatalf("lease %d routes to shard %d which claims id %d", l.ID, sid, c.Shard(sid).ShardID())
			}
			shardsUsed[sid] = true
		}
		if len(shardsUsed) < 2 {
			t.Fatalf("grant of 10 used %d shard(s)", len(shardsUsed))
		}
		for _, l := range leases {
			c.Release(p, l)
		}
		if c.ActiveLeases() != 0 || c.FreeMRs() != 16 {
			t.Fatalf("after release: active=%d free=%d", c.ActiveLeases(), c.FreeMRs())
		}
	})
}

// TestClusterShardHandoffRenewRace drives renewals concurrently with a
// shard failing over through Recover: while the shard is down, renewals
// classify retryable; once the replacement has adopted the shard's
// state, the same lease pointer renews successfully.
func TestClusterShardHandoffRenewRace(t *testing.T) {
	clusterHarness(t, 4, 8, 2, DefaultConfig(), func(p *sim.Proc, c *Cluster, _ *metastore.Store) {
		leases, err := c.Request(p, RequestSpec{Holder: "db1", N: 6, Place: PlaceSpread})
		if err != nil {
			t.Fatal(err)
		}
		target := int(leases[0].ID) % c.ShardCount()
		active := c.ActiveLeases()

		k := p.Kernel()
		var sawDown, renewedAfter bool
		done := sim.NewWaitGroup(k)
		done.Add(1)
		k.Go("renewer", func(rp *sim.Proc) {
			defer done.Done()
			for i := 0; i < 50; i++ {
				err := c.Renew(rp, leases[0])
				if err == nil {
					if sawDown {
						renewedAfter = true
						return
					}
				} else if errors.Is(err, fault.ErrRetryable) {
					sawDown = true
				} else {
					t.Errorf("renew during handoff: %v", err)
					return
				}
				rp.Sleep(2 * time.Millisecond)
			}
		})

		p.Sleep(time.Millisecond)
		c.FailShard(target)
		p.Sleep(10 * time.Millisecond)
		if err := c.RecoverShard(p, target); err != nil {
			t.Fatal(err)
		}
		done.Wait(p)

		if !sawDown || !renewedAfter {
			t.Fatalf("sawDown=%v renewedAfter=%v", sawDown, renewedAfter)
		}
		if c.ActiveLeases() != active {
			t.Fatalf("handoff lost leases: %d -> %d", active, c.ActiveLeases())
		}
		// The recovered shard serves the rest of the cohort too.
		if failed, err := c.RenewAll(p, "db1", leases); err != nil || len(failed) != 0 {
			t.Fatalf("post-handoff heartbeat: failed=%d err=%v", len(failed), err)
		}
	})
}

// TestClusterHeartbeatCohortExpiry checks the cohort semantics of the
// batched heartbeat: while the holder heartbeats, every lease stays
// alive; once it stops, the whole cohort expires together on the sweep.
func TestClusterHeartbeatCohortExpiry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LeaseTTL = 50 * time.Millisecond
	clusterHarness(t, 2, 4, 2, cfg, func(p *sim.Proc, c *Cluster, _ *metastore.Store) {
		leases, err := c.Request(p, RequestSpec{Holder: "db1", N: 6, Place: PlaceSpread})
		if err != nil {
			t.Fatal(err)
		}
		k := p.Kernel()
		k.Go("expire", func(ep *sim.Proc) { c.ExpireLoop(ep, 10*time.Millisecond) })
		defer c.StopExpireLoop()

		// Four heartbeats at TTL/2 carry the cohort well past 2x TTL.
		for i := 0; i < 4; i++ {
			p.Sleep(25 * time.Millisecond)
			if failed, err := c.RenewAll(p, "db1", leases); err != nil || len(failed) != 0 {
				t.Fatalf("heartbeat %d: failed=%d err=%v", i, len(failed), err)
			}
		}
		if c.ActiveLeases() != 6 {
			t.Fatalf("cohort shrank while heartbeating: %d", c.ActiveLeases())
		}

		// One missed heartbeat: the whole cohort expires together.
		p.Sleep(80 * time.Millisecond)
		if c.ActiveLeases() != 0 {
			t.Fatalf("cohort outlived its missed heartbeat: %d live", c.ActiveLeases())
		}
		if c.Expirations() != 6 {
			t.Fatalf("expirations = %d, want 6", c.Expirations())
		}
	})
}

// TestClusterPartialBatchFailure checks that one dead lease in the
// cohort fails individually without poisoning the batch, while a
// transport failure renews nothing and classifies retryable.
func TestClusterPartialBatchFailure(t *testing.T) {
	clusterHarness(t, 2, 4, 2, DefaultConfig(), func(p *sim.Proc, c *Cluster, store *metastore.Store) {
		leases, err := c.Request(p, RequestSpec{Holder: "db1", N: 4, Place: PlaceSpread})
		if err != nil {
			t.Fatal(err)
		}

		// A revoked lease fails alone; the rest of the batch renews.
		c.Revoke(leases[0].ID)
		before := make([]time.Duration, len(leases))
		for i, l := range leases {
			before[i] = l.ExpiresAt
		}
		p.Sleep(time.Millisecond)
		failed, err := c.RenewAll(p, "db1", leases)
		if err != nil {
			t.Fatal(err)
		}
		if len(failed) != 1 || failed[0] != leases[0] {
			t.Fatalf("failed = %v, want exactly the revoked lease", failed)
		}
		for i, l := range leases[1:] {
			if l.ExpiresAt <= before[i+1] {
				t.Fatalf("lease %d not renewed alongside the dead one", l.ID)
			}
		}

		// A partition renews nothing — the survivors' expiries are
		// untouched and the error is retryable.
		for i, l := range leases {
			before[i] = l.ExpiresAt
		}
		store.SetPartitioned(true)
		p.Sleep(time.Millisecond)
		if _, err := c.RenewAll(p, "db1", leases[1:]); !fault.Retryable(err) {
			t.Fatalf("partitioned heartbeat: %v, want retryable", err)
		}
		for i, l := range leases[1:] {
			if l.ExpiresAt != before[i+1] {
				t.Fatalf("lease %d renewed through a partition", l.ID)
			}
		}
		store.SetPartitioned(false)
	})
}

func TestClusterTenantQuota(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Quotas = map[string]int64{"t1": 3 << 20}
	clusterHarness(t, 2, 4, 2, cfg, func(p *sim.Proc, c *Cluster, _ *metastore.Store) {
		_, err := c.Request(p, RequestSpec{Holder: "db1", N: 4, Tenant: "t1", Place: PlaceSpread})
		if !errors.Is(err, ErrQuota) {
			t.Fatalf("over-quota request: %v, want ErrQuota", err)
		}
		if fault.Retryable(err) {
			t.Fatal("quota denial must not be retryable")
		}
		leases, err := c.Request(p, RequestSpec{Holder: "db1", N: 3, Tenant: "t1", Place: PlaceSpread})
		if err != nil {
			t.Fatal(err)
		}
		if len(leases) != 3 {
			t.Fatalf("granted %d", len(leases))
		}
		// Held bytes count against the quota: one more MR is a denial.
		if _, err := c.Request(p, RequestSpec{Holder: "db1", N: 1, Tenant: "t1", Place: PlaceSpread}); !errors.Is(err, ErrQuota) {
			t.Fatalf("incremental over-quota: %v", err)
		}
		st := c.TenantStats()["t1"]
		if st.Grants != 3 || st.Denies != 2 || st.HeldMRs != 3 {
			t.Fatalf("stats = %+v", st)
		}
	})
}

// TestClusterMaxMinFairness starves the pool and checks that weighted
// water-filling divides the contended capacity ~2:1:1 at the margin:
// once scarcity binds, only the weight-2 tenant can keep growing, and
// every denial is a retryable ErrScarce.
func TestClusterMaxMinFairness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Weights = map[string]float64{"oltp": 2, "olap": 1, "batch": 1}
	clusterHarness(t, 2, 8, 2, cfg, func(p *sim.Proc, c *Cluster, _ *metastore.Store) {
		// 16 MRs total, scarcity headroom 25%: water-filled capacity 12.
		tenants := []string{"oltp", "olap", "batch"}
		denied := map[string]bool{}
		for len(denied) < len(tenants) {
			progress := false
			for _, tn := range tenants {
				if denied[tn] {
					continue
				}
				_, err := c.Request(p, RequestSpec{Holder: tn, N: 1, Tenant: tn, Place: PlaceSpread})
				switch {
				case err == nil:
					progress = true
				case errors.Is(err, fault.ErrRetryable):
					denied[tn] = true
				default:
					t.Fatalf("tenant %s: %v", tn, err)
				}
			}
			if !progress && len(denied) < len(tenants) {
				t.Fatal("no progress before all tenants denied")
			}
		}
		st := c.TenantStats()
		// FCFS until scarcity binds at 12 held (4/4/4), then only the
		// weight-2 tenant's demand clears the water-fill: 6/4/4.
		if st["oltp"].HeldMRs != 6 || st["olap"].HeldMRs != 4 || st["batch"].HeldMRs != 4 {
			t.Fatalf("held = %d/%d/%d, want 6/4/4",
				st["oltp"].HeldMRs, st["olap"].HeldMRs, st["batch"].HeldMRs)
		}
		if c.FreeMRs() != 2 {
			t.Fatalf("free = %d, want the 2-MR scarcity headroom intact", c.FreeMRs())
		}
	})
}

func TestMaxMinAlloc(t *testing.T) {
	alloc := maxMinAlloc(12,
		map[string]float64{"a": 5, "b": 4, "c": 4},
		map[string]float64{"a": 2, "b": 1, "c": 1})
	if alloc["a"] < 5-1e-9 {
		t.Fatalf("weight-2 tenant's demand 5 should clear: %v", alloc)
	}
	if alloc["b"] > 3.5+1e-9 || alloc["c"] > 3.5+1e-9 {
		t.Fatalf("weight-1 tenants should fill to 3.5: %v", alloc)
	}
	sum := alloc["a"] + alloc["b"] + alloc["c"]
	if sum > 12+1e-6 {
		t.Fatalf("allocated %v > capacity", sum)
	}
}

// TestClusterShedFairRoundRobin: the reclamation wave sheds oldest
// leases first, round-robin over tenants, so no tenant loses its whole
// working set while another loses nothing.
func TestClusterShedFairRoundRobin(t *testing.T) {
	clusterHarness(t, 2, 8, 2, DefaultConfig(), func(p *sim.Proc, c *Cluster, _ *metastore.Store) {
		for _, tn := range []string{"a", "b", "c"} {
			if _, err := c.Request(p, RequestSpec{Holder: tn, N: 4, Tenant: tn, Place: PlaceSpread}); err != nil {
				t.Fatal(err)
			}
		}
		shed := make(map[string]int)
		c.OnRevoke("", func(l *Lease) { shed[l.Tenant]++ })
		if n := c.ShedFair(6); n != 6 {
			t.Fatalf("shed %d, want 6", n)
		}
		if shed["a"] != 2 || shed["b"] != 2 || shed["c"] != 2 {
			t.Fatalf("shed spread = %v, want 2 each", shed)
		}
		if c.ActiveLeases() != 6 {
			t.Fatalf("active = %d", c.ActiveLeases())
		}
	})
}
