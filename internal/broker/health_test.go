package broker

import (
	"testing"

	"remotedb/internal/cluster"
	"remotedb/internal/sim"
)

// TestSoftAvoidDeprioritizes verifies SoftAvoid steers new leases away
// from the named donor while capacity exists elsewhere.
func TestSoftAvoidDeprioritizes(t *testing.T) {
	harness(t, 3, 2, func(p *sim.Proc, b *Broker, servers []*cluster.Server, proxies []*Proxy) {
		leases, err := b.Request(p, RequestSpec{
			Holder:    "db1",
			N:         4,
			Place:     PlaceSpread,
			SoftAvoid: map[string]bool{"m2": true},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range leases {
			if l.MR.Owner.Name == "m2" {
				t.Errorf("lease landed on soft-avoided donor with free capacity elsewhere")
			}
		}
	})
}

// TestSoftAvoidFallsBackUnderScarcity verifies soft avoidance is a
// preference, not an exclusion: when only the avoided donor has space,
// the request still succeeds there.
func TestSoftAvoidFallsBackUnderScarcity(t *testing.T) {
	harness(t, 2, 2, func(p *sim.Proc, b *Broker, servers []*cluster.Server, proxies []*Proxy) {
		// Fill m1 completely so only m2 has free MRs.
		if _, err := b.Request(p, RequestSpec{Holder: "filler", N: 2, Place: PlacePack}); err != nil {
			t.Fatal(err)
		}
		leases, err := b.Request(p, RequestSpec{
			Holder:    "db1",
			N:         1,
			Place:     PlacePack,
			SoftAvoid: map[string]bool{"m2": true},
		})
		if err != nil {
			t.Fatalf("soft avoidance must not starve the request: %v", err)
		}
		if len(leases) != 1 || leases[0].MR.Owner.Name != "m2" {
			t.Errorf("expected fallback onto the avoided donor, got %v", leases)
		}
	})
}

// TestHardAvoidStillFails contrasts Avoid with SoftAvoid: a hard avoid
// refuses the grant even when the avoided donor has space.
func TestHardAvoidStillFails(t *testing.T) {
	harness(t, 2, 2, func(t0 *sim.Proc, b *Broker, servers []*cluster.Server, proxies []*Proxy) {
		if _, err := b.Request(t0, RequestSpec{Holder: "filler", N: 2, Place: PlacePack}); err != nil {
			t.Fatal(err)
		}
		_, err := b.Request(t0, RequestSpec{
			Holder: "db1",
			N:      1,
			Place:  PlacePack,
			Avoid:  map[string]bool{"m2": true},
		})
		if err != ErrNoMemory {
			t.Errorf("hard avoid: err = %v, want ErrNoMemory", err)
		}
	})
}

// TestReportDonorHealthReplacesAndClears verifies a holder's report
// replaces its previous set and an empty report withdraws it, with
// multi-holder reports intersecting correctly.
func TestReportDonorHealthReplacesAndClears(t *testing.T) {
	harness(t, 3, 1, func(p *sim.Proc, b *Broker, servers []*cluster.Server, proxies []*Proxy) {
		b.ReportDonorHealth("db1", []string{"m1", "m2"})
		b.ReportDonorHealth("db2", []string{"m2"})
		if got := b.DeprioritizedDonors(); len(got) != 2 || got[0] != "m1" || got[1] != "m2" {
			t.Fatalf("deprioritized = %v, want [m1 m2]", got)
		}
		// db1's new report drops m1 and m2; m2 stays via db2.
		b.ReportDonorHealth("db1", []string{"m3"})
		if got := b.DeprioritizedDonors(); len(got) != 2 || got[0] != "m2" || got[1] != "m3" {
			t.Fatalf("after replace: %v, want [m2 m3]", got)
		}
		b.ReportDonorHealth("db1", nil)
		b.ReportDonorHealth("db2", nil)
		if got := b.DeprioritizedDonors(); len(got) != 0 {
			t.Fatalf("after withdrawal: %v, want empty", got)
		}
		if b.HealthReports != 5 {
			t.Errorf("HealthReports = %d, want 5", b.HealthReports)
		}
	})
}

// TestReportedDonorsDeprioritizedForEveryone verifies health reports
// influence placement for holders other than the reporter.
func TestReportedDonorsDeprioritizedForEveryone(t *testing.T) {
	harness(t, 3, 2, func(p *sim.Proc, b *Broker, servers []*cluster.Server, proxies []*Proxy) {
		b.ReportDonorHealth("db1", []string{"m1"})
		leases, err := b.Request(p, RequestSpec{Holder: "db2", N: 4, Place: PlaceSpread})
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range leases {
			if l.MR.Owner.Name == "m1" {
				t.Error("reported-slow donor used while others had capacity")
			}
		}
	})
}
