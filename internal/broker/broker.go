// Package broker implements the cluster memory broker of Section 4.2:
// servers with unused memory run a proxy that pins free memory into
// fixed-size memory regions (MRs) and registers them with the broker;
// database servers with unmet memory demand request timed, exclusive
// leases on remote MRs. Lease metadata lives in the metastore (the
// ZooKeeper stand-in), so a broker failure is survivable by electing a
// new broker that reloads the state. The broker is on the control path
// only — data moves directly between the servers over RDMA.
package broker

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"remotedb/internal/broker/metastore"
	"remotedb/internal/cluster"
	"remotedb/internal/fault"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
)

// Errors returned by broker operations, wrapped over the repository-wide
// fault taxonomy: exhausted memory is transient (donors come and go, so
// it is retryable), while an expired or unknown lease is gone for good
// (revoked — the holder must request a fresh MR).
var (
	ErrNoMemory     = fmt.Errorf("broker: no available remote memory (%w)", fault.ErrRetryable)
	ErrLeaseUnknown = fmt.Errorf("broker: unknown lease (%w)", fault.ErrRevoked)
	ErrLeaseExpired = fmt.Errorf("broker: lease expired (%w)", fault.ErrRevoked)
	ErrQuota        = errors.New("broker: holder exceeded its fair share")
)

// LeaseID identifies a lease.
type LeaseID int64

// Lease grants a database server exclusive access to one MR until expiry
// (unless renewed).
type Lease struct {
	ID        LeaseID
	MR        *rmem.MR
	Holder    string // database server name
	ExpiresAt time.Duration
	revoked   bool
}

// Valid reports whether the lease is still usable at virtual time now.
func (l *Lease) Valid(now time.Duration) bool {
	return !l.revoked && !l.MR.Revoked() && now < l.ExpiresAt
}

// leaseMeta is the durable record kept in the metastore.
type leaseMeta struct {
	Holder    string `json:"holder"`
	Server    string `json:"server"`
	MRIndex   int    `json:"mr"`
	ExpiresNS int64  `json:"expires_ns"`
}

// Placement chooses how MRs for one request are spread over servers.
type Placement int

const (
	// PlacePack fills one server before moving to the next.
	PlacePack Placement = iota
	// PlaceSpread round-robins across servers with free MRs (used by the
	// multi-memory-server experiments, Figures 5 and 12b).
	PlaceSpread
)

// Proxy is the memory-brokering process on a server with spare memory.
type Proxy struct {
	Server *cluster.Server
	Pool   *rmem.Pool
	broker *Broker
	failed bool
}

// Broker tracks cluster memory availability and grants leases.
type Broker struct {
	k        *sim.Kernel
	store    *metastore.Store
	leaseTTL time.Duration
	proxies  []*Proxy
	leases   map[LeaseID]*Lease
	nextID   LeaseID
	rrIdx    int     // persistent round-robin cursor for PlaceSpread
	maxFrac  float64 // fair-share cap per holder (0 = unlimited)

	stopExpire bool

	Grants, Renewals, Expirations, Revocations int64
}

// Config parameterizes the broker.
type Config struct {
	LeaseTTL time.Duration

	// MaxFractionPerHolder caps one database server's share of the
	// cluster's brokered MRs (0 disables). This is the "fairness across
	// multiple workloads" brokering policy the paper lists as future
	// work in Section 7.
	MaxFractionPerHolder float64
}

// DefaultConfig uses a 10 s lease TTL and no fairness cap.
func DefaultConfig() Config { return Config{LeaseTTL: 10 * time.Second} }

// New creates a broker backed by store. p is the bootstrapping process.
func New(p *sim.Proc, store *metastore.Store, cfg Config) *Broker {
	b := &Broker{
		k:        p.Kernel(),
		store:    store,
		leaseTTL: cfg.LeaseTTL,
		maxFrac:  cfg.MaxFractionPerHolder,
		leases:   make(map[LeaseID]*Lease),
	}
	if !store.Exists(p, "/broker") {
		store.Create(p, "/broker", nil, 0)
		store.Create(p, "/broker/leases", nil, 0)
	}
	return b
}

// LeaseTTL returns the configured time-to-live.
func (b *Broker) LeaseTTL() time.Duration { return b.leaseTTL }

// AddProxy starts a brokering proxy on server, pinning mrCount regions of
// mrSize bytes each from the server's free memory, and wires up the
// memory-pressure notification so local demand reclaims brokered memory.
func (b *Broker) AddProxy(p *sim.Proc, server *cluster.Server, mrSize, mrCount int) (*Proxy, error) {
	pool, err := rmem.NewPool(p, server, mrSize, mrCount)
	if err != nil {
		return nil, err
	}
	px := &Proxy{Server: server, Pool: pool, broker: b}
	server.OnMemoryPressure(func(need int64) {
		b.handlePressure(px, need)
	})
	b.proxies = append(b.proxies, px)
	return px, nil
}

// handlePressure releases brokered memory on px's server: free MRs first,
// then revoking live leases until the shortfall is covered.
func (b *Broker) handlePressure(px *Proxy, need int64) {
	released := px.Pool.Shrink(need)
	if released >= need {
		return
	}
	for id, l := range b.leases {
		if released >= need {
			break
		}
		if l.MR.Owner == px.Server && !l.revoked {
			size := int64(l.MR.Size())
			b.revoke(id)
			released += size
		}
	}
}

// revoke tears down a lease and reclaims its MR's memory.
func (b *Broker) revoke(id LeaseID) {
	l, ok := b.leases[id]
	if !ok {
		return
	}
	l.revoked = true
	b.Revocations++
	delete(b.leases, id)
	// Reclaim: drop the MR entirely (memory goes back to the OS).
	for _, px := range b.proxies {
		if px.Server == l.MR.Owner {
			px.Pool.ReleaseMR(l.MR)
			px.Pool.Shrink(int64(l.MR.Size()))
			break
		}
	}
}

// Request grants n leases of whole MRs, placed per policy. All MRs in one
// grant have the pool's fixed size.
func (b *Broker) Request(p *sim.Proc, holder string, n int, place Placement) ([]*Lease, error) {
	return b.RequestAvoiding(p, holder, n, place, nil)
}

// RequestAvoiding grants like Request but never places an MR on a donor
// server named in avoid. This is the replica anti-affinity primitive:
// the file layer passes the donors already backing a stripe's other
// replicas, so no two replicas of one stripe ever share a failure
// domain. Under donor scarcity (every eligible donor avoided or empty)
// it fails with ErrNoMemory rather than weakening the constraint.
func (b *Broker) RequestAvoiding(p *sim.Proc, holder string, n int, place Placement, avoid map[string]bool) ([]*Lease, error) {
	if n <= 0 {
		return nil, nil
	}
	avail := 0
	total := 0
	for _, px := range b.proxies {
		if !px.failed {
			total += px.Pool.TotalCount()
			if !avoid[px.Server.Name] {
				avail += px.Pool.FreeCount()
			}
		}
	}
	if avail < n {
		return nil, ErrNoMemory
	}
	if b.maxFrac > 0 {
		held := 0
		for _, l := range b.leases {
			if l.Holder == holder {
				held++
			}
		}
		if float64(held+n) > b.maxFrac*float64(total) {
			return nil, ErrQuota
		}
	}
	var out []*Lease
	for len(out) < n {
		var px *Proxy
		switch place {
		case PlaceSpread:
			// Round-robin over proxies with free MRs.
			for tries := 0; tries < len(b.proxies); tries++ {
				cand := b.proxies[b.rrIdx%len(b.proxies)]
				b.rrIdx++
				if !cand.failed && !avoid[cand.Server.Name] && cand.Pool.FreeCount() > 0 {
					px = cand
					break
				}
			}
		default:
			for _, cand := range b.proxies {
				if !cand.failed && !avoid[cand.Server.Name] && cand.Pool.FreeCount() > 0 {
					px = cand
					break
				}
			}
		}
		if px == nil {
			// Races cannot happen (single-threaded sim), but keep the
			// invariant honest.
			return nil, ErrNoMemory
		}
		mr, err := px.Pool.Acquire()
		if err != nil {
			return nil, err
		}
		b.nextID++
		l := &Lease{
			ID:        b.nextID,
			MR:        mr,
			Holder:    holder,
			ExpiresAt: p.Now() + b.leaseTTL,
		}
		if err := b.persist(p, l); err != nil {
			// The grant cannot be made durable (metastore partitioned):
			// roll the MR back and surface the transient failure.
			px.Pool.ReleaseMR(mr)
			for _, granted := range out {
				b.Release(p, granted)
			}
			return nil, fmt.Errorf("broker: persist grant: %w", err)
		}
		b.leases[l.ID] = l
		b.Grants++
		out = append(out, l)
	}
	return out, nil
}

func leasePath(id LeaseID) string { return fmt.Sprintf("/broker/leases/%d", id) }

func (b *Broker) persist(p *sim.Proc, l *Lease) error {
	meta, _ := json.Marshal(leaseMeta{
		Holder:    l.Holder,
		Server:    l.MR.Owner.Name,
		MRIndex:   l.MR.ID.Index,
		ExpiresNS: int64(l.ExpiresAt),
	})
	path := leasePath(l.ID)
	if b.store.Exists(p, path) {
		_, err := b.store.Set(p, path, meta, -1)
		return err
	}
	return b.store.Create(p, path, meta, 0)
}

// Renew extends a lease by the TTL. Expired or revoked leases cannot be
// renewed — the holder must request a fresh MR. A metastore failure
// leaves the expiry unchanged and surfaces as a retryable error.
func (b *Broker) Renew(p *sim.Proc, l *Lease) error {
	cur, ok := b.leases[l.ID]
	if !ok || cur != l {
		return ErrLeaseUnknown
	}
	if !l.Valid(p.Now()) {
		return ErrLeaseExpired
	}
	prev := l.ExpiresAt
	l.ExpiresAt = p.Now() + b.leaseTTL
	if err := b.persist(p, l); err != nil {
		l.ExpiresAt = prev
		return fmt.Errorf("broker: persist renewal: %w", err)
	}
	b.Renewals++
	return nil
}

// Release voluntarily gives a lease back; its MR returns to the free pool.
func (b *Broker) Release(p *sim.Proc, l *Lease) {
	cur, ok := b.leases[l.ID]
	if !ok || cur != l {
		return
	}
	delete(b.leases, l.ID)
	b.store.Delete(p, leasePath(l.ID), -1)
	l.revoked = true
	for _, px := range b.proxies {
		if px.Server == l.MR.Owner {
			px.Pool.ReleaseMR(l.MR)
			return
		}
	}
}

// ExpireLoop runs as a background process, revoking leases whose holders
// stopped renewing. Interval controls the sweep cadence. It exits when
// StopExpireLoop is called (so experiment event queues can drain).
func (b *Broker) ExpireLoop(p *sim.Proc, interval time.Duration) {
	for !b.stopExpire {
		p.Sleep(interval)
		if b.stopExpire {
			return
		}
		now := p.Now()
		// Sweep in sorted lease order so the simulation stays
		// deterministic (map iteration order is not).
		var ids []LeaseID
		for id, l := range b.leases {
			if now >= l.ExpiresAt {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			b.Expirations++
			b.revoke(id)
		}
	}
}

// StopExpireLoop asks a running ExpireLoop to exit at its next tick.
func (b *Broker) StopExpireLoop() { b.stopExpire = true }

// FailProxy simulates a crash of a memory server: all its MRs (leased or
// not) vanish. Holders observe rmem.ErrRevoked on next access.
func (b *Broker) FailProxy(px *Proxy) {
	px.failed = true
	px.Pool.RevokeAll()
	for id, l := range b.leases {
		if l.MR.Owner == px.Server {
			l.revoked = true
			delete(b.leases, id)
			b.Revocations++
		}
	}
}

// Revoke forcibly revokes one lease by ID (the targeted fault-injection
// primitive), destroying its MR. It reports whether the lease existed.
func (b *Broker) Revoke(id LeaseID) bool {
	if _, ok := b.leases[id]; !ok {
		return false
	}
	b.revoke(id)
	return true
}

// RevokeOldest revokes the n oldest live leases (lowest IDs first) and
// returns how many were actually revoked. This is the deterministic
// revocation-storm primitive used by the fault-injection harness: unlike
// memory-pressure reclamation it picks victims by ID, so a fixed seed
// reproduces the identical storm.
func (b *Broker) RevokeOldest(n int) int {
	ids := make([]LeaseID, 0, len(b.leases))
	for id := range b.leases {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	revoked := 0
	for _, id := range ids {
		if revoked >= n {
			break
		}
		b.revoke(id)
		revoked++
	}
	return revoked
}

// ActiveLeases returns the number of live leases.
func (b *Broker) ActiveLeases() int { return len(b.leases) }

// FreeMRs returns cluster-wide unleased MRs.
func (b *Broker) FreeMRs() int {
	total := 0
	for _, px := range b.proxies {
		if !px.failed {
			total += px.Pool.FreeCount()
		}
	}
	return total
}

// Recover builds a replacement broker from the metastore after the old
// broker failed, re-adopting the given proxies and their outstanding
// leases. Leases whose metadata refers to unknown proxies are dropped.
// It returns the recovered lease objects keyed by the old IDs so holders
// can be re-pointed.
func Recover(p *sim.Proc, store *metastore.Store, cfg Config, proxies []*Proxy, live map[LeaseID]*Lease) (*Broker, error) {
	b := New(p, store, cfg)
	for _, px := range proxies {
		px.broker = b
		b.proxies = append(b.proxies, px)
	}
	names, err := store.Children(p, "/broker/leases")
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		var id LeaseID
		fmt.Sscanf(name, "%d", &id)
		data, _, err := store.Get(p, "/broker/leases/"+name)
		if err != nil {
			continue
		}
		var meta leaseMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			continue
		}
		l, ok := live[id]
		if !ok || l.MR.Owner.Name != meta.Server {
			store.Delete(p, "/broker/leases/"+name, -1)
			continue
		}
		l.ExpiresAt = time.Duration(meta.ExpiresNS)
		b.leases[id] = l
		if id > b.nextID {
			b.nextID = id
		}
	}
	return b, nil
}
