// Package broker implements the cluster memory broker of Section 4.2:
// servers with unused memory run a proxy that pins free memory into
// fixed-size memory regions (MRs) and registers them with the broker;
// database servers with unmet memory demand request timed, exclusive
// leases on remote MRs. Lease metadata lives in the metastore (the
// ZooKeeper stand-in), so a broker failure is survivable by electing a
// new broker that reloads the state. The broker is on the control path
// only — data moves directly between the servers over RDMA.
//
// Consumers program against the LeaseService interface (service.go).
// A single Broker is one implementation; Cluster (cluster.go) shards
// the lease space across several broker replicas for cluster scale.
package broker

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"remotedb/internal/broker/metastore"
	"remotedb/internal/cluster"
	"remotedb/internal/fault"
	"remotedb/internal/metrics"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
)

// Errors returned by broker operations, wrapped over the repository-wide
// fault taxonomy: exhausted memory is transient (donors come and go, so
// it is retryable), while an expired or unknown lease is gone for good
// (revoked — the holder must request a fresh MR).
var (
	ErrNoMemory     = fmt.Errorf("broker: no available remote memory (%w)", fault.ErrRetryable)
	ErrLeaseUnknown = fmt.Errorf("broker: unknown lease (%w)", fault.ErrRevoked)
	ErrLeaseExpired = fmt.Errorf("broker: lease expired (%w)", fault.ErrRevoked)
	ErrQuota        = errors.New("broker: holder exceeded its fair share")
)

// LeaseID identifies a lease. In a Cluster, IDs are strided by the shard
// count (shard i mints ShardID, ShardID+stride, ...), so an ID is unique
// cluster-wide and its shard is recoverable as id mod stride.
type LeaseID int64

// Lease grants a database server exclusive access to one MR until expiry
// (unless renewed).
type Lease struct {
	ID        LeaseID
	MR        *rmem.MR
	Holder    string // database server name
	Tenant    string // workload the grant is charged to
	ExpiresAt time.Duration
	revoked   bool
}

// Valid reports whether the lease is still usable at virtual time now.
func (l *Lease) Valid(now time.Duration) bool {
	return !l.revoked && !l.MR.Revoked() && now < l.ExpiresAt
}

// leaseMeta is the durable record kept in the metastore.
type leaseMeta struct {
	Holder    string `json:"holder"`
	Tenant    string `json:"tenant,omitempty"`
	Server    string `json:"server"`
	MRIndex   int    `json:"mr"`
	ExpiresNS int64  `json:"expires_ns"`
}

// Placement chooses how MRs for one request are spread over servers.
type Placement int

const (
	// PlacePack fills one server before moving to the next.
	PlacePack Placement = iota
	// PlaceSpread round-robins across servers with free MRs (used by the
	// multi-memory-server experiments, Figures 5 and 12b).
	PlaceSpread
)

// Proxy is the memory-brokering process on a server with spare memory.
type Proxy struct {
	Server *cluster.Server
	Pool   *rmem.Pool
	broker *Broker
	failed bool
}

// Broker tracks cluster memory availability and grants leases. It is one
// shard's worth of LeaseService; on its own it serves the whole lease
// space (ShardID 0 of 1).
type Broker struct {
	k         *sim.Kernel
	store     *metastore.Store
	leaseTTL  time.Duration
	namespace string
	shardID   int
	stride    int // total shard count; IDs advance by this
	proxies   []*Proxy
	leases    map[LeaseID]*Lease
	nextID    LeaseID
	rrIdx     int     // persistent round-robin cursor for PlaceSpread
	maxFrac   float64 // fair-share cap per holder (0 = unlimited)
	admit     *admitter
	watches   map[string][]RevokeWatch // holder -> watches; "" watches all

	stopExpire bool

	// health records which holders currently report each donor as slow
	// (donor -> set of reporting holders). A donor with any reporter is
	// soft-avoided in placement exactly as if every requester had named
	// it in RequestSpec.SoftAvoid.
	health map[string]map[string]bool

	Grants, Renewals, Expirations, Revocations int64
	HealthReports                              int64

	// GaugeActive / GaugeFree track live leases and unleased MRs with
	// peaks; HeartbeatBatch records how many leases each batched renewal
	// covered. rmbench reads these for its -json output.
	GaugeActive    metrics.Gauge
	GaugeFree      metrics.Gauge
	HeartbeatBatch metrics.Distribution
}

// Config parameterizes the broker.
type Config struct {
	LeaseTTL time.Duration

	// MaxFractionPerHolder caps one database server's share of the
	// cluster's brokered MRs (0 disables). This is the "fairness across
	// multiple workloads" brokering policy the paper lists as future
	// work in Section 7.
	MaxFractionPerHolder float64

	// Namespace is the metastore subtree this broker owns (default
	// "/broker"). Cluster gives each shard its own subtree.
	Namespace string

	// ShardID/ShardCount stride lease IDs so shards mint disjoint IDs.
	// Zero values mean a standalone broker (shard 0 of 1).
	ShardID    int
	ShardCount int

	// Quotas caps each tenant's leased bytes (hard limit). Weights give
	// tenants max-min shares enforced while donors are scarce — when a
	// grant would eat into the last ScarceFrac of the pool (default
	// 0.25). Leave Weights nil to disable fairness.
	Quotas     map[string]int64
	Weights    map[string]float64
	ScarceFrac float64
}

// DefaultConfig uses a 10 s lease TTL and no fairness cap.
func DefaultConfig() Config { return Config{LeaseTTL: 10 * time.Second} }

// New creates a broker backed by store. p is the bootstrapping process.
func New(p *sim.Proc, store *metastore.Store, cfg Config) *Broker {
	ns := cfg.Namespace
	if ns == "" {
		ns = "/broker"
	}
	stride := cfg.ShardCount
	if stride < 1 {
		stride = 1
	}
	b := &Broker{
		k:         p.Kernel(),
		store:     store,
		leaseTTL:  cfg.LeaseTTL,
		namespace: ns,
		shardID:   cfg.ShardID,
		stride:    stride,
		nextID:    LeaseID(cfg.ShardID),
		maxFrac:   cfg.MaxFractionPerHolder,
		leases:    make(map[LeaseID]*Lease),
		watches:   make(map[string][]RevokeWatch),
		health:    make(map[string]map[string]bool),
	}
	if cfg.Quotas != nil || cfg.Weights != nil {
		b.admit = newAdmitter(cfg.Quotas, cfg.Weights, cfg.ScarceFrac)
	}
	ensurePath(p, store, ns+"/leases")
	return b
}

// ensurePath creates every missing ancestor of path (namespaces nest,
// e.g. /broker/shard3/leases).
func ensurePath(p *sim.Proc, store *metastore.Store, path string) {
	segs := strings.Split(strings.TrimPrefix(path, "/"), "/")
	cur := ""
	for _, seg := range segs {
		cur += "/" + seg
		if !store.Exists(p, cur) {
			store.Create(p, cur, nil, 0)
		}
	}
}

// LeaseTTL returns the configured time-to-live.
func (b *Broker) LeaseTTL() time.Duration { return b.leaseTTL }

// ShardID returns which shard of the lease space this broker serves.
func (b *Broker) ShardID() int { return b.shardID }

// AddProxy starts a brokering proxy on server, pinning mrCount regions of
// mrSize bytes each from the server's free memory, and wires up the
// memory-pressure notification so local demand reclaims brokered memory.
func (b *Broker) AddProxy(p *sim.Proc, server *cluster.Server, mrSize, mrCount int) (*Proxy, error) {
	pool, err := rmem.NewPool(p, server, mrSize, mrCount)
	if err != nil {
		return nil, err
	}
	px := &Proxy{Server: server, Pool: pool, broker: b}
	server.OnMemoryPressure(func(need int64) {
		b.handlePressure(px, need)
	})
	b.proxies = append(b.proxies, px)
	b.refreshGauges()
	return px, nil
}

// handlePressure releases brokered memory on px's server: free MRs first,
// then revoking live leases until the shortfall is covered. Victims are
// picked tenant-fairly, oldest lease first within each tenant, so one
// workload's pressure never lands on a single other workload.
func (b *Broker) handlePressure(px *Proxy, need int64) {
	released := px.Pool.Shrink(need)
	if released >= need {
		return
	}
	var cands []*Lease
	for _, l := range b.leases {
		if l.MR.Owner == px.Server && !l.revoked {
			cands = append(cands, l)
		}
	}
	for _, l := range victimOrder(cands) {
		if released >= need {
			break
		}
		size := int64(l.MR.Size())
		b.shed(l.ID)
		released += size
	}
}

// victimOrder sorts candidate leases for shedding: round-robin over
// tenants in sorted-name order, oldest lease (lowest ID) first within
// each tenant. Deterministic by construction.
func victimOrder(cands []*Lease) []*Lease {
	byTenant := make(map[string][]*Lease)
	for _, l := range cands {
		byTenant[l.Tenant] = append(byTenant[l.Tenant], l)
	}
	names := make([]string, 0, len(byTenant))
	for name, ls := range byTenant {
		sort.Slice(ls, func(i, j int) bool { return ls[i].ID < ls[j].ID })
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Lease, 0, len(cands))
	for len(out) < len(cands) {
		for _, name := range names {
			if ls := byTenant[name]; len(ls) > 0 {
				out = append(out, ls[0])
				byTenant[name] = ls[1:]
			}
		}
	}
	return out
}

// shed revokes one lease charging the teardown to its tenant's shed
// counter (reclamation, not expiry).
func (b *Broker) shed(id LeaseID) {
	if l, ok := b.leases[id]; ok && b.admit != nil {
		b.admit.tenant(l.Tenant).Sheds++
	}
	b.revoke(id)
}

// ShedFair revokes up to n live leases tenant-fairly (round-robin over
// tenants, oldest first within each) and returns how many it revoked.
// This is the reclamation-storm primitive: a diurnal wave of donors
// wanting their memory back trims every workload proportionally instead
// of collapsing whichever tenant happens to hold the oldest leases.
func (b *Broker) ShedFair(n int) int {
	cands := make([]*Lease, 0, len(b.leases))
	for _, l := range b.leases {
		cands = append(cands, l)
	}
	victims := victimOrder(cands)
	if n > len(victims) {
		n = len(victims)
	}
	for _, l := range victims[:n] {
		b.shed(l.ID)
	}
	return n
}

// revoke tears down a lease and reclaims its MR's memory.
func (b *Broker) revoke(id LeaseID) {
	l, ok := b.leases[id]
	if !ok {
		return
	}
	l.revoked = true
	b.Revocations++
	delete(b.leases, id)
	b.accountRelease(l)
	// Reclaim: drop the MR entirely (memory goes back to the OS).
	for _, px := range b.proxies {
		if px.Server == l.MR.Owner {
			px.Pool.ReleaseMR(l.MR)
			px.Pool.Shrink(int64(l.MR.Size()))
			break
		}
	}
	b.refreshGauges()
	b.notifyRevoke(l)
}

// OnRevoke registers fn for involuntary teardowns of holder's leases
// (expiry, pressure, proxy failure, targeted revocation). holder ""
// watches every holder. Part of LeaseService.
func (b *Broker) OnRevoke(holder string, fn RevokeWatch) {
	b.watches[holder] = append(b.watches[holder], fn)
}

func (b *Broker) notifyRevoke(l *Lease) {
	for _, fn := range b.watches[l.Holder] {
		fn(l)
	}
	if l.Holder != "" {
		for _, fn := range b.watches[""] {
			fn(l)
		}
	}
}

// Request grants spec.N leases of whole MRs per spec. All MRs in one
// grant have the pool's fixed size. This is the unified entry point that
// replaced the positional Request/RequestAvoiding pair; RequestLeases
// and RequestAvoiding remain as deprecated wrappers.
func (b *Broker) Request(p *sim.Proc, spec RequestSpec) ([]*Lease, error) {
	spec = spec.normalized()
	if spec.N <= 0 {
		return nil, nil
	}
	avail := 0
	total := 0
	for _, px := range b.proxies {
		if !px.failed {
			total += px.Pool.TotalCount()
			if !spec.Avoid[px.Server.Name] {
				avail += px.Pool.FreeCount()
			}
		}
	}
	if avail < spec.N {
		return nil, ErrNoMemory
	}
	if b.maxFrac > 0 {
		held := 0
		for _, l := range b.leases {
			if l.Holder == spec.Holder {
				held++
			}
		}
		if float64(held+spec.N) > b.maxFrac*float64(total) {
			return nil, ErrQuota
		}
	}
	if b.admit != nil {
		held := make(map[string]int64)
		for _, l := range b.leases {
			held[l.Tenant]++
		}
		if err := b.admit.admit(spec.Tenant, spec.N, spec.Priority, int64(b.MRSize()), total, held); err != nil {
			return nil, err
		}
	}
	deprio := func(name string) bool {
		return spec.SoftAvoid[name] || len(b.health[name]) > 0
	}
	var out []*Lease
	for len(out) < spec.N {
		var px *Proxy
		// Two passes: the first skips soft-avoided (browned-out) donors,
		// the second admits them — deprioritize, never fail, so under
		// scarcity a slow donor still serves.
		for pass := 0; pass < 2 && px == nil; pass++ {
			switch spec.Place {
			case PlaceSpread:
				// Round-robin over proxies with free MRs.
				for tries := 0; tries < len(b.proxies); tries++ {
					cand := b.proxies[b.rrIdx%len(b.proxies)]
					b.rrIdx++
					if cand.failed || spec.Avoid[cand.Server.Name] || cand.Pool.FreeCount() == 0 {
						continue
					}
					if pass == 0 && deprio(cand.Server.Name) {
						continue
					}
					px = cand
					break
				}
			default:
				for _, cand := range b.proxies {
					if cand.failed || spec.Avoid[cand.Server.Name] || cand.Pool.FreeCount() == 0 {
						continue
					}
					if pass == 0 && deprio(cand.Server.Name) {
						continue
					}
					px = cand
					break
				}
			}
		}
		if px == nil {
			// Races cannot happen (single-threaded sim), but keep the
			// invariant honest.
			return nil, ErrNoMemory
		}
		mr, err := px.Pool.Acquire()
		if err != nil {
			return nil, err
		}
		b.nextID += LeaseID(b.stride)
		l := &Lease{
			ID:        b.nextID,
			MR:        mr,
			Holder:    spec.Holder,
			Tenant:    spec.Tenant,
			ExpiresAt: p.Now() + b.leaseTTL,
		}
		if err := b.persist(p, l); err != nil {
			// The grant cannot be made durable (metastore partitioned):
			// roll the MR back and surface the transient failure.
			px.Pool.ReleaseMR(mr)
			for _, granted := range out {
				b.Release(p, granted)
			}
			return nil, fmt.Errorf("broker: persist grant: %w", err)
		}
		b.leases[l.ID] = l
		b.Grants++
		b.accountGrant(l)
		out = append(out, l)
	}
	b.refreshGauges()
	return out, nil
}

// RequestLeases grants n leases of whole MRs, placed per policy.
//
// Deprecated: this is the pre-RequestSpec positional signature (it was
// named Request before the unified Request(p, RequestSpec) took that
// name). Use Request.
func (b *Broker) RequestLeases(p *sim.Proc, holder string, n int, place Placement) ([]*Lease, error) {
	return b.Request(p, RequestSpec{Holder: holder, N: n, Place: place})
}

// RequestAvoiding grants like RequestLeases but never places an MR on a
// donor server named in avoid (replica anti-affinity).
//
// Deprecated: use Request with RequestSpec.Avoid.
func (b *Broker) RequestAvoiding(p *sim.Proc, holder string, n int, place Placement, avoid map[string]bool) ([]*Lease, error) {
	return b.Request(p, RequestSpec{Holder: holder, N: n, Place: place, Avoid: avoid})
}

func (b *Broker) leasePath(id LeaseID) string {
	return fmt.Sprintf("%s/leases/%d", b.namespace, id)
}

func (b *Broker) marshalMeta(l *Lease) []byte {
	meta, _ := json.Marshal(leaseMeta{
		Holder:    l.Holder,
		Tenant:    l.Tenant,
		Server:    l.MR.Owner.Name,
		MRIndex:   l.MR.ID.Index,
		ExpiresNS: int64(l.ExpiresAt),
	})
	return meta
}

func (b *Broker) persist(p *sim.Proc, l *Lease) error {
	path := b.leasePath(l.ID)
	if b.store.Exists(p, path) {
		_, err := b.store.Set(p, path, b.marshalMeta(l), -1)
		return err
	}
	return b.store.Create(p, path, b.marshalMeta(l), 0)
}

// Renew extends a lease by the TTL. Expired or revoked leases cannot be
// renewed — the holder must request a fresh MR. A metastore failure
// leaves the expiry unchanged and surfaces as a retryable error.
func (b *Broker) Renew(p *sim.Proc, l *Lease) error {
	cur, ok := b.leases[l.ID]
	if !ok || cur != l {
		return ErrLeaseUnknown
	}
	if !l.Valid(p.Now()) {
		return ErrLeaseExpired
	}
	prev := l.ExpiresAt
	l.ExpiresAt = p.Now() + b.leaseTTL
	if err := b.persist(p, l); err != nil {
		l.ExpiresAt = prev
		return fmt.Errorf("broker: persist renewal: %w", err)
	}
	b.Renewals++
	return nil
}

// RenewAll is the batched heartbeat (LeaseService): every still-live
// lease in ls is renewed with ONE metastore round trip. Individually
// dead leases (revoked, expired, unknown, or missing from the store)
// come back in failed and do not poison the rest of the batch. A
// transport failure (metastore partition) renews nothing and returns a
// retryable error — the holder's whole cohort missed this heartbeat
// together and will expire together if the outage outlives the TTL.
func (b *Broker) RenewAll(p *sim.Proc, holder string, ls []*Lease) (failed []*Lease, err error) {
	now := p.Now()
	var live []*Lease
	for _, l := range ls {
		cur, ok := b.leases[l.ID]
		if !ok || cur != l || !l.Valid(now) || l.Holder != holder {
			failed = append(failed, l)
			continue
		}
		live = append(live, l)
	}
	if len(live) == 0 {
		return failed, nil
	}
	newExp := now + b.leaseTTL
	items := make([]metastore.BatchSet, len(live))
	for i, l := range live {
		stamped := *l
		stamped.ExpiresAt = newExp
		items[i] = metastore.BatchSet{Path: b.leasePath(l.ID), Data: b.marshalMeta(&stamped)}
	}
	missing, err := b.store.SetBatch(p, items)
	if err != nil {
		// Nothing was renewed; expiries are unchanged.
		return failed, fmt.Errorf("broker: heartbeat batch: %w", err)
	}
	miss := make(map[int]bool, len(missing))
	for _, i := range missing {
		miss[i] = true
	}
	for i, l := range live {
		if miss[i] {
			failed = append(failed, l)
			continue
		}
		l.ExpiresAt = newExp
		b.Renewals++
	}
	b.HeartbeatBatch.Observe(int64(len(live)))
	return failed, nil
}

// Release voluntarily gives a lease back; its MR returns to the free pool.
func (b *Broker) Release(p *sim.Proc, l *Lease) {
	cur, ok := b.leases[l.ID]
	if !ok || cur != l {
		return
	}
	delete(b.leases, l.ID)
	b.store.Delete(p, b.leasePath(l.ID), -1)
	l.revoked = true
	b.accountRelease(l)
	for _, px := range b.proxies {
		if px.Server == l.MR.Owner {
			px.Pool.ReleaseMR(l.MR)
			break
		}
	}
	b.refreshGauges()
}

// SweepExpired revokes every lease whose expiry has passed at virtual
// time now and returns how many it revoked. Sweeps in sorted lease order
// so the simulation stays deterministic (map iteration order is not).
func (b *Broker) SweepExpired(now time.Duration) int {
	var ids []LeaseID
	for id, l := range b.leases {
		if now >= l.ExpiresAt {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		b.Expirations++
		b.revoke(id)
	}
	return len(ids)
}

// ExpireLoop runs as a background process, revoking leases whose holders
// stopped renewing. Interval controls the sweep cadence. It exits when
// StopExpireLoop is called (so experiment event queues can drain).
func (b *Broker) ExpireLoop(p *sim.Proc, interval time.Duration) {
	for !b.stopExpire {
		p.Sleep(interval)
		if b.stopExpire {
			return
		}
		b.SweepExpired(p.Now())
	}
}

// StopExpireLoop asks a running ExpireLoop to exit at its next tick.
func (b *Broker) StopExpireLoop() { b.stopExpire = true }

// FailProxy simulates a crash of a memory server: all its MRs (leased or
// not) vanish. Holders observe rmem.ErrRevoked on next access.
func (b *Broker) FailProxy(px *Proxy) {
	px.failed = true
	px.Pool.RevokeAll()
	var ids []LeaseID
	for id, l := range b.leases {
		if l.MR.Owner == px.Server {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		l := b.leases[id]
		l.revoked = true
		delete(b.leases, id)
		b.Revocations++
		b.accountRelease(l)
		b.notifyRevoke(l)
	}
	b.refreshGauges()
}

// Revoke forcibly revokes one lease by ID (the targeted fault-injection
// primitive), destroying its MR. It reports whether the lease existed.
func (b *Broker) Revoke(id LeaseID) bool {
	if _, ok := b.leases[id]; !ok {
		return false
	}
	b.revoke(id)
	return true
}

// RevokeOldest revokes the n oldest live leases (lowest IDs first) and
// returns how many were actually revoked. This is the deterministic
// revocation-storm primitive used by the fault-injection harness: unlike
// memory-pressure reclamation it picks victims by ID, so a fixed seed
// reproduces the identical storm. ShedFair is the tenant-fair variant.
func (b *Broker) RevokeOldest(n int) int {
	ids := make([]LeaseID, 0, len(b.leases))
	for id := range b.leases {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	revoked := 0
	for _, id := range ids {
		if revoked >= n {
			break
		}
		b.revoke(id)
		revoked++
	}
	return revoked
}

// ReportDonorHealth replaces holder's set of reportedly slow donors
// (piggybacked on its batched heartbeat). Donors named by at least one
// holder are deprioritized for everyone's new leases until their last
// reporter withdraws. Unknown donor names are stored harmlessly: the
// placement loop only consults the map for proxies it actually has.
func (b *Broker) ReportDonorHealth(holder string, slow []string) {
	b.HealthReports++
	for donor, reporters := range b.health {
		if reporters[holder] {
			delete(reporters, holder)
			if len(reporters) == 0 {
				delete(b.health, donor)
			}
		}
	}
	for _, donor := range slow {
		if b.health[donor] == nil {
			b.health[donor] = make(map[string]bool)
		}
		b.health[donor][holder] = true
	}
}

// DeprioritizedDonors returns the donors currently reported slow by at
// least one holder (placement soft-avoids them), sorted.
func (b *Broker) DeprioritizedDonors() []string {
	out := make([]string, 0, len(b.health))
	for donor := range b.health {
		out = append(out, donor)
	}
	sort.Strings(out)
	return out
}

// ActiveLeases returns the number of live leases.
func (b *Broker) ActiveLeases() int { return len(b.leases) }

// FreeMRs returns cluster-wide unleased MRs.
func (b *Broker) FreeMRs() int { return b.FreeFor(nil) }

// FreeFor returns unleased MRs on live donors outside avoid — the count
// the Cluster router uses to decide whether a shard can satisfy a spec.
func (b *Broker) FreeFor(avoid map[string]bool) int {
	total := 0
	for _, px := range b.proxies {
		if !px.failed && !avoid[px.Server.Name] {
			total += px.Pool.FreeCount()
		}
	}
	return total
}

// TotalMRs returns all MRs (leased or free) on live donors.
func (b *Broker) TotalMRs() int {
	total := 0
	for _, px := range b.proxies {
		if !px.failed {
			total += px.Pool.TotalCount()
		}
	}
	return total
}

// MRSize returns the MR granularity (bytes) of the first live pool, or 0
// with no proxies.
func (b *Broker) MRSize() int {
	for _, px := range b.proxies {
		if !px.failed {
			return px.Pool.MRSize()
		}
	}
	return 0
}

// TenantStats returns a copy of the per-tenant accounting (nil when no
// quotas/weights were configured and no tenants were tracked).
func (b *Broker) TenantStats() map[string]TenantStats {
	if b.admit == nil {
		return nil
	}
	out := make(map[string]TenantStats, len(b.admit.tenants))
	for name, st := range b.admit.tenants {
		out[name] = *st
	}
	return out
}

func (b *Broker) accountGrant(l *Lease) {
	if b.admit == nil {
		return
	}
	b.admit.tenant(l.Tenant).Grants++
	b.accountHeld(l)
}

func (b *Broker) accountHeld(l *Lease) {
	if b.admit == nil {
		return
	}
	st := b.admit.tenant(l.Tenant)
	st.HeldMRs++
	st.HeldBytes += int64(l.MR.Size())
}

func (b *Broker) accountRelease(l *Lease) {
	if b.admit == nil {
		return
	}
	st := b.admit.tenant(l.Tenant)
	st.HeldMRs--
	st.HeldBytes -= int64(l.MR.Size())
}

func (b *Broker) refreshGauges() {
	b.GaugeActive.Set(int64(len(b.leases)))
	b.GaugeFree.Set(int64(b.FreeMRs()))
}

// Recover builds a replacement broker from the metastore after the old
// broker failed, re-adopting the given proxies and their outstanding
// leases. Leases whose metadata refers to unknown proxies are dropped.
// It returns the recovered lease objects keyed by the old IDs so holders
// can be re-pointed. cfg.Namespace must match the failed broker's (a
// Cluster passes each shard's own subtree).
func Recover(p *sim.Proc, store *metastore.Store, cfg Config, proxies []*Proxy, live map[LeaseID]*Lease) (*Broker, error) {
	b := New(p, store, cfg)
	for _, px := range proxies {
		px.broker = b
		b.proxies = append(b.proxies, px)
	}
	names, err := store.Children(p, b.namespace+"/leases")
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		var id LeaseID
		fmt.Sscanf(name, "%d", &id)
		path := b.namespace + "/leases/" + name
		data, _, err := store.Get(p, path)
		if err != nil {
			continue
		}
		var meta leaseMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			continue
		}
		l, ok := live[id]
		if !ok || l.MR.Owner.Name != meta.Server {
			store.Delete(p, path, -1)
			continue
		}
		l.ExpiresAt = time.Duration(meta.ExpiresNS)
		if l.Tenant == "" {
			l.Tenant = meta.Tenant
		}
		b.leases[id] = l
		b.accountHeld(l)
		if id > b.nextID {
			b.nextID = id
		}
	}
	b.refreshGauges()
	return b, nil
}
