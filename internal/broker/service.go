// The LeaseService seam: the verbs lease consumers (core.FS and,
// through it, the buffer-pool extension and TempDB) actually use —
// request, renew (single and batched), release, and revoke-watch —
// extracted into an interface so a consumer neither knows nor cares
// whether it talks to one Broker or to a sharded Cluster of them.
package broker

import (
	"hash/fnv"
	"time"

	"remotedb/internal/sim"
)

// RequestSpec describes one lease request. It is the unit both the
// sharded router and the admission controller consume: everything the
// old positional Request/RequestAvoiding signatures carried, plus the
// tenant identity admission decisions are made on.
type RequestSpec struct {
	// Holder is the database server the leases are for; renewal routing
	// and batched heartbeats key on it.
	Holder string
	// N is how many whole MRs to lease.
	N int
	// Place chooses how the MRs spread over donor servers.
	Place Placement
	// Avoid names donor servers the grant must not touch (replica
	// anti-affinity). Under scarcity the constraint is never weakened:
	// an unsatisfiable avoid set fails with ErrNoMemory.
	Avoid map[string]bool
	// SoftAvoid names donor servers to deprioritize, not exclude: a
	// browned-out donor (slow, error-prone, about to reclaim) should not
	// receive new leases while healthy donors have free MRs, but under
	// scarcity a lease on a slow donor still beats no lease at all.
	// Holders fill it from their own health scoring; the broker unions
	// in reports piggybacked on other holders' heartbeats (HealthSink).
	SoftAvoid map[string]bool
	// Tenant is the workload the grant is charged to for quota and
	// fairness purposes; empty defaults to Holder.
	Tenant string
	// Priority breaks admission ties when donors are scarce (higher
	// wins); 0 is the common case.
	Priority int
}

// normalized fills the defaulted fields.
func (spec RequestSpec) normalized() RequestSpec {
	if spec.Tenant == "" {
		spec.Tenant = spec.Holder
	}
	return spec
}

// RevokeWatch observes one involuntary lease teardown (expiry, donor
// pressure, proxy crash, targeted revocation — everything except the
// holder's own Release). It runs synchronously inside the revoking
// process, so implementations must only flip flags or spawn processes,
// never sleep.
type RevokeWatch func(l *Lease)

// LeaseService is the brokering API consumers program against. Broker
// implements it directly; Cluster implements it by sharding the lease
// space across broker replicas.
type LeaseService interface {
	// Request grants spec.N leases of whole MRs per spec.
	Request(p *sim.Proc, spec RequestSpec) ([]*Lease, error)
	// Renew extends one lease by the TTL.
	Renew(p *sim.Proc, l *Lease) error
	// RenewAll is the batched heartbeat: it extends every still-live
	// lease of holder in one metastore round trip per shard touched and
	// returns the leases that could not be renewed because they are
	// individually dead (revoked, expired, unknown). A transport-level
	// failure (metastore partition, shard replica down) returns err with
	// NO lease renewed — the cohort lives or misses its heartbeat as one.
	RenewAll(p *sim.Proc, holder string, ls []*Lease) (failed []*Lease, err error)
	// Release voluntarily returns a lease; its MR goes back to the pool.
	Release(p *sim.Proc, l *Lease)
	// OnRevoke registers fn for involuntary teardowns of holder's leases
	// (holder "" watches every holder). Watches survive shard handoff.
	OnRevoke(holder string, fn RevokeWatch)
	// LeaseTTL returns the configured time-to-live.
	LeaseTTL() time.Duration
}

var (
	_ LeaseService = (*Broker)(nil)
	_ LeaseService = (*Cluster)(nil)
)

// HealthSink is the optional donor-health reporting extension of a
// LeaseService. Holders that score donor health (core.FS with
// HealthChecks on) piggyback their current set of slow donors on the
// batched heartbeat; the broker unions the reports across holders and
// deprioritizes those donors for *every* holder's new leases — one
// tenant's brownout observation protects the rest of the fleet. Each
// report replaces the holder's previous one, so a recovered donor drops
// out as soon as its last reporter stops naming it. Consumers discover
// the extension by type assertion, keeping LeaseService itself stable.
type HealthSink interface {
	ReportDonorHealth(holder string, slow []string)
}

var (
	_ HealthSink = (*Broker)(nil)
	_ HealthSink = (*Cluster)(nil)
)

// rendezvousScore ranks shard i for key: FNV-1a over the key and the
// shard index. Highest score wins (highest-random-weight hashing), so
// removing one shard only moves that shard's keys.
func rendezvousScore(key string, shard int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{byte(shard), byte(shard >> 8), byte(shard >> 16), byte(shard >> 24)})
	return h.Sum64()
}

// rendezvousOrder returns all n shards ranked by preference for key.
func rendezvousOrder(key string, n int) []int {
	order := make([]int, n)
	scores := make([]uint64, n)
	for i := 0; i < n; i++ {
		order[i] = i
		scores[i] = rendezvousScore(key, i)
	}
	// Insertion sort by descending score (n is small).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && scores[order[j]] > scores[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}
