package broker

import (
	"fmt"
	"sort"

	"remotedb/internal/fault"
)

// ErrTenantQuota rejects a request that would push a tenant past its hard
// byte quota. Unlike scarcity-mode fairness denials it is not retryable:
// the quota will not grow on its own.
var ErrTenantQuota = fmt.Errorf("broker: tenant over quota (%w)", ErrQuota)

// ErrScarce rejects a request that would exceed the tenant's weighted
// max-min share while donors are scarce. It wraps fault.ErrRetryable
// because the condition clears when other tenants release or the pool
// grows.
var ErrScarce = fmt.Errorf("broker: donors scarce, over fair share (%w)", fault.ErrRetryable)

// TenantStats is the per-tenant accounting the admission controller and
// the shedding policy maintain, exported so rmbench can emit it.
type TenantStats struct {
	Grants    int64 // MRs granted
	Denies    int64 // requests rejected (quota or fairness)
	Sheds     int64 // leases revoked by storm shedding / pressure
	HeldMRs   int64 // MRs currently leased
	HeldBytes int64 // bytes currently leased
}

func (t *TenantStats) merge(o TenantStats) {
	t.Grants += o.Grants
	t.Denies += o.Denies
	t.Sheds += o.Sheds
	t.HeldMRs += o.HeldMRs
	t.HeldBytes += o.HeldBytes
}

// admitter is the quota + fairness policy shared by the standalone Broker
// and the Cluster router (a Cluster enforces admission once at the router
// so per-shard checks don't multiply every tenant's allowance by the
// shard count).
type admitter struct {
	quotas     map[string]int64   // hard byte cap per tenant (absent = unlimited)
	weights    map[string]float64 // max-min weight per tenant (absent = 1)
	scarceFrac float64            // headroom fraction that triggers fairness
	tenants    map[string]*TenantStats
}

func newAdmitter(quotas map[string]int64, weights map[string]float64, scarceFrac float64) *admitter {
	if scarceFrac <= 0 {
		scarceFrac = 0.25
	}
	return &admitter{
		quotas:     quotas,
		weights:    weights,
		scarceFrac: scarceFrac,
		tenants:    make(map[string]*TenantStats),
	}
}

func (a *admitter) tenant(name string) *TenantStats {
	t := a.tenants[name]
	if t == nil {
		t = &TenantStats{}
		a.tenants[name] = t
	}
	return t
}

func (a *admitter) weight(name string) float64 {
	if w, ok := a.weights[name]; ok && w > 0 {
		return w
	}
	return 1
}

// admit decides whether tenant may grow by n MRs of mrSize bytes given
// total MRs in the pool. held maps every tenant to its current MR count
// (the admitter's own stats when it also does the granting; aggregated
// shard holdings for a Cluster router).
//
// Two gates, in order:
//  1. Hard byte quota — always enforced when configured.
//  2. Weighted max-min fairness — enforced only while donors are scarce,
//     i.e. the grant would eat into the last scarceFrac of the pool.
//     Capacity minus that headroom is water-filled across the tenants
//     that currently hold memory (demand = holdings; the requester's
//     demand includes the new MRs); the request is denied if the
//     requester's max-min share cannot cover it. Priority raises the
//     requester's effective weight so urgent work wins ties.
func (a *admitter) admit(tenant string, n, priority int, mrSize int64, total int, held map[string]int64) error {
	st := a.tenant(tenant)
	if q, ok := a.quotas[tenant]; ok && q > 0 {
		if st.HeldBytes+int64(n)*mrSize > q {
			st.Denies++
			return ErrTenantQuota
		}
	}
	if len(a.weights) > 0 && total > 0 {
		var heldTotal int64
		for _, h := range held {
			heldTotal += h
		}
		headroom := a.scarceFrac * float64(total)
		if float64(heldTotal+int64(n)) > float64(total)-headroom {
			capacity := float64(total) - headroom
			demands := make(map[string]float64, len(held)+1)
			weights := make(map[string]float64, len(held)+1)
			for name, h := range held {
				if h > 0 || name == tenant {
					demands[name] = float64(h)
					weights[name] = a.weight(name)
				}
			}
			demands[tenant] = float64(held[tenant] + int64(n))
			weights[tenant] = a.weight(tenant) * float64(1+priority)
			alloc := maxMinAlloc(capacity, demands, weights)
			if alloc[tenant]+1e-9 < demands[tenant] {
				st.Denies++
				return ErrScarce
			}
		}
	}
	return nil
}

// maxMinAlloc runs weighted water-filling: capacity is shared in
// proportion to weights, tenants whose demand is below their share keep
// only their demand, and the surplus is re-shared among the rest until
// everyone is capped by demand or the water level. Iteration is over
// sorted names so the result is deterministic.
func maxMinAlloc(capacity float64, demands, weights map[string]float64) map[string]float64 {
	alloc := make(map[string]float64, len(demands))
	names := make([]string, 0, len(demands))
	for name := range demands {
		names = append(names, name)
	}
	sort.Strings(names)
	active := append([]string(nil), names...)
	remaining := capacity
	for len(active) > 0 && remaining > 1e-9 {
		var wsum float64
		for _, name := range active {
			wsum += weights[name]
		}
		if wsum <= 0 {
			break
		}
		level := remaining / wsum
		var next []string
		progressed := false
		for _, name := range active {
			share := level * weights[name]
			want := demands[name] - alloc[name]
			if want <= share+1e-9 {
				// Demand satisfied below the water level; release surplus.
				alloc[name] = demands[name]
				remaining -= want
				progressed = true
			} else {
				next = append(next, name)
			}
		}
		if !progressed {
			// Everyone is demand-limited above the level: fill to level.
			for _, name := range active {
				alloc[name] += level * weights[name]
				remaining -= level * weights[name]
			}
			break
		}
		active = next
	}
	return alloc
}
