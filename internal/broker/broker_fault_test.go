package broker

import (
	"errors"
	"testing"
	"time"

	"remotedb/internal/broker/metastore"
	"remotedb/internal/fault"
	"remotedb/internal/sim"
)

// faultHarness is like harness but with a configurable lease TTL and the
// metastore handle exposed, for the clock-driven lease-race tests.
func faultHarness(t *testing.T, ttl time.Duration, mrs int,
	fn func(p *sim.Proc, b *Broker, store *metastore.Store)) {
	t.Helper()
	k := sim.New(1)
	m := testServer(k, "m1")
	k.Go("test", func(p *sim.Proc) {
		store := metastore.New(k, 10*time.Microsecond)
		b := New(p, store, Config{LeaseTTL: ttl})
		if _, err := b.AddProxy(p, m, 1<<20, mrs); err != nil {
			t.Error(err)
			return
		}
		fn(p, b, store)
	})
	k.Run(0)
}

// A holder that stops renewing and comes back after the TTL must get a
// classified revocation error, not a silent success.
func TestRenewAfterExpire(t *testing.T) {
	faultHarness(t, 100*time.Millisecond, 4, func(p *sim.Proc, b *Broker, store *metastore.Store) {
		leases, err := b.Request(p, RequestSpec{Holder: "db1", N: 1, Place: PlacePack})
		if err != nil {
			t.Fatal(err)
		}
		l := leases[0]
		p.Sleep(150 * time.Millisecond) // past ExpiresAt, before any sweep
		if l.Valid(p.Now()) {
			t.Fatal("lease should have expired")
		}
		err = b.Renew(p, l)
		if !errors.Is(err, ErrLeaseExpired) {
			t.Errorf("renew after expiry: %v, want ErrLeaseExpired", err)
		}
		if !errors.Is(err, fault.ErrRevoked) {
			t.Errorf("expiry error not classified ErrRevoked: %v", err)
		}
	})
}

// A revocation landing while a renewal RPC is in flight must win: the
// renewal returns, but the lease stays dead.
func TestRevokeDuringRenew(t *testing.T) {
	faultHarness(t, 100*time.Millisecond, 4, func(p *sim.Proc, b *Broker, store *metastore.Store) {
		leases, err := b.Request(p, RequestSpec{Holder: "db1", N: 1, Place: PlacePack})
		if err != nil {
			t.Fatal(err)
		}
		l := leases[0]
		// The renewal below charges a metastore RPC (10 µs); fire the
		// revocation into the middle of that window.
		p.Kernel().GoAt(p.Now()+5*time.Microsecond, "revoker", func(rp *sim.Proc) {
			b.Revoke(l.ID)
		})
		renewErr := b.Renew(p, l)
		if l.Valid(p.Now()) {
			t.Errorf("lease valid after mid-renew revocation (renew err: %v)", renewErr)
		}
		// Whatever the renew returned, the next renewal must classify.
		if err := b.Renew(p, l); !errors.Is(err, fault.ErrRevoked) {
			t.Errorf("renew of revoked lease: %v, not classified ErrRevoked", err)
		}
	})
}

// The expiry sweep must fire within one cadence of expiry — no earlier
// than ExpiresAt, no later than ExpiresAt + interval — and must stop
// when asked so the simulation can drain.
func TestSweepCadence(t *testing.T) {
	const ttl = 100 * time.Millisecond
	const sweep = 30 * time.Millisecond
	faultHarness(t, ttl, 4, func(p *sim.Proc, b *Broker, store *metastore.Store) {
		p.Kernel().Go("sweep", func(sp *sim.Proc) { b.ExpireLoop(sp, sweep) })
		leases, err := b.Request(p, RequestSpec{Holder: "db1", N: 1, Place: PlacePack})
		if err != nil {
			t.Fatal(err)
		}
		l := leases[0]
		granted := p.Now()
		// Just before expiry: the sweep must not have touched it.
		p.SleepUntil(granted + ttl - time.Millisecond)
		if !l.Valid(p.Now()) || b.Expirations != 0 {
			t.Fatalf("lease dead before TTL (expirations=%d)", b.Expirations)
		}
		// One sweep interval past expiry: it must be gone.
		p.SleepUntil(granted + ttl + sweep + time.Millisecond)
		if l.Valid(p.Now()) {
			t.Error("lease still valid one sweep past expiry")
		}
		if b.Expirations != 1 {
			t.Errorf("expirations = %d, want 1", b.Expirations)
		}
		b.StopExpireLoop() // k.Run(0) hangs forever if this doesn't work
	})
}

// A grant whose metastore persist fails must roll back completely: no
// lease recorded, no MR leaked, and the error is classified retryable.
func TestRequestRollsBackOnPersistFailure(t *testing.T) {
	faultHarness(t, time.Second, 4, func(p *sim.Proc, b *Broker, store *metastore.Store) {
		free := b.FreeMRs()
		store.SetPartitioned(true)
		_, err := b.Request(p, RequestSpec{Holder: "db1", N: 2, Place: PlacePack})
		if err == nil {
			t.Fatal("request should fail while partitioned")
		}
		if !fault.Retryable(err) {
			t.Errorf("partition error not retryable: %v", err)
		}
		if b.ActiveLeases() != 0 || b.FreeMRs() != free {
			t.Errorf("leak after failed grant: active=%d free=%d want 0/%d",
				b.ActiveLeases(), b.FreeMRs(), free)
		}
		store.SetPartitioned(false)
		if _, err := b.Request(p, RequestSpec{Holder: "db1", N: 2, Place: PlacePack}); err != nil {
			t.Errorf("request after heal: %v", err)
		}
	})
}

// RevokeOldest must pick victims deterministically: lowest lease IDs
// first.
func TestRevokeOldestIsDeterministic(t *testing.T) {
	faultHarness(t, time.Second, 8, func(p *sim.Proc, b *Broker, store *metastore.Store) {
		leases, err := b.Request(p, RequestSpec{Holder: "db1", N: 4, Place: PlacePack})
		if err != nil {
			t.Fatal(err)
		}
		if got := b.RevokeOldest(2); got != 2 {
			t.Fatalf("revoked %d, want 2", got)
		}
		now := p.Now()
		for i, l := range leases {
			want := i >= 2 // the two oldest die, the two newest survive
			if l.Valid(now) != want {
				t.Errorf("lease %d (id %d): valid=%v want %v", i, l.ID, l.Valid(now), want)
			}
		}
	})
}
