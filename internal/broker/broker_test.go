package broker

import (
	"testing"
	"time"

	"remotedb/internal/broker/metastore"
	"remotedb/internal/cluster"
	"remotedb/internal/sim"
)

func testServer(k *sim.Kernel, name string) *cluster.Server {
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 64 << 20
	return cluster.NewServer(k, name, cfg)
}

// harness runs fn in a simulation with a broker over n memory servers,
// each contributing mrs MRs of 1 MiB.
func harness(t *testing.T, n, mrs int, fn func(p *sim.Proc, b *Broker, servers []*cluster.Server, proxies []*Proxy)) {
	t.Helper()
	k := sim.New(1)
	var servers []*cluster.Server
	for i := 0; i < n; i++ {
		servers = append(servers, testServer(k, "m"+string(rune('1'+i))))
	}
	k.Go("test", func(p *sim.Proc) {
		store := metastore.New(k, 10*time.Microsecond)
		b := New(p, store, DefaultConfig())
		var proxies []*Proxy
		for _, s := range servers {
			px, err := b.AddProxy(p, s, 1<<20, mrs)
			if err != nil {
				t.Error(err)
				return
			}
			proxies = append(proxies, px)
		}
		fn(p, b, servers, proxies)
	})
	k.Run(0)
}

func TestGrantAndRelease(t *testing.T) {
	harness(t, 1, 4, func(p *sim.Proc, b *Broker, servers []*cluster.Server, proxies []*Proxy) {
		leases, err := b.Request(p, RequestSpec{Holder: "db1", N: 2, Place: PlacePack})
		if err != nil {
			t.Fatal(err)
		}
		if len(leases) != 2 || b.ActiveLeases() != 2 || b.FreeMRs() != 2 {
			t.Fatalf("leases=%d active=%d free=%d", len(leases), b.ActiveLeases(), b.FreeMRs())
		}
		for _, l := range leases {
			if !l.Valid(p.Now()) {
				t.Fatal("fresh lease invalid")
			}
			b.Release(p, l)
		}
		if b.ActiveLeases() != 0 || b.FreeMRs() != 4 {
			t.Fatalf("after release: active=%d free=%d", b.ActiveLeases(), b.FreeMRs())
		}
	})
}

func TestInsufficientMemory(t *testing.T) {
	harness(t, 1, 2, func(p *sim.Proc, b *Broker, _ []*cluster.Server, _ []*Proxy) {
		if _, err := b.Request(p, RequestSpec{Holder: "db1", N: 3, Place: PlacePack}); err != ErrNoMemory {
			t.Fatalf("err = %v, want ErrNoMemory", err)
		}
	})
}

func TestSpreadPlacement(t *testing.T) {
	harness(t, 4, 4, func(p *sim.Proc, b *Broker, servers []*cluster.Server, _ []*Proxy) {
		leases, err := b.Request(p, RequestSpec{Holder: "db1", N: 8, Place: PlaceSpread})
		if err != nil {
			t.Fatal(err)
		}
		perServer := make(map[string]int)
		for _, l := range leases {
			perServer[l.MR.Owner.Name]++
		}
		if len(perServer) != 4 {
			t.Fatalf("spread used %d servers, want 4", len(perServer))
		}
		for name, c := range perServer {
			if c != 2 {
				t.Fatalf("server %s got %d MRs, want 2", name, c)
			}
		}
	})
}

func TestPackPlacement(t *testing.T) {
	harness(t, 2, 4, func(p *sim.Proc, b *Broker, servers []*cluster.Server, _ []*Proxy) {
		leases, _ := b.Request(p, RequestSpec{Holder: "db1", N: 4, Place: PlacePack})
		for _, l := range leases {
			if l.MR.Owner != servers[0] {
				t.Fatal("pack placement should fill the first server first")
			}
		}
	})
}

func TestRenewExtendsExpiry(t *testing.T) {
	harness(t, 1, 1, func(p *sim.Proc, b *Broker, _ []*cluster.Server, _ []*Proxy) {
		leases, _ := b.Request(p, RequestSpec{Holder: "db1", N: 1, Place: PlacePack})
		l := leases[0]
		old := l.ExpiresAt
		p.Sleep(time.Second)
		if err := b.Renew(p, l); err != nil {
			t.Fatal(err)
		}
		if l.ExpiresAt <= old {
			t.Fatal("renew did not extend expiry")
		}
	})
}

func TestExpiryRevokesLease(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	k.Go("test", func(p *sim.Proc) {
		store := metastore.New(k, 10*time.Microsecond)
		b := New(p, store, Config{LeaseTTL: 100 * time.Millisecond})
		b.AddProxy(p, m, 1<<20, 1)
		leases, _ := b.Request(p, RequestSpec{Holder: "db1", N: 1, Place: PlacePack})
		l := leases[0]
		k.Go("expirer", func(ep *sim.Proc) { b.ExpireLoop(ep, 50*time.Millisecond) })
		p.Sleep(300 * time.Millisecond)
		if l.Valid(p.Now()) {
			t.Error("lease should have expired")
		}
		if b.Expirations == 0 {
			t.Error("expiration not counted")
		}
		if err := b.Renew(p, l); err == nil {
			t.Error("renewing an expired lease should fail")
		}
	})
	k.Run(500 * time.Millisecond)
}

func TestRenewalKeepsLeaseAlive(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	k.Go("test", func(p *sim.Proc) {
		store := metastore.New(k, 10*time.Microsecond)
		b := New(p, store, Config{LeaseTTL: 100 * time.Millisecond})
		b.AddProxy(p, m, 1<<20, 1)
		leases, _ := b.Request(p, RequestSpec{Holder: "db1", N: 1, Place: PlacePack})
		l := leases[0]
		k.Go("expirer", func(ep *sim.Proc) { b.ExpireLoop(ep, 20*time.Millisecond) })
		for i := 0; i < 10; i++ {
			p.Sleep(50 * time.Millisecond)
			if err := b.Renew(p, l); err != nil {
				t.Errorf("renew %d failed: %v", i, err)
				return
			}
		}
		if !l.Valid(p.Now()) {
			t.Error("renewed lease should be valid")
		}
	})
	k.Run(time.Second)
}

func TestMemoryPressureRevokesLeases(t *testing.T) {
	harness(t, 1, 4, func(p *sim.Proc, b *Broker, servers []*cluster.Server, _ []*Proxy) {
		m := servers[0]
		// Lease 3 of 4 MRs; 1 stays free in the pool.
		leases, _ := b.Request(p, RequestSpec{Holder: "db1", N: 3, Place: PlacePack})
		free := m.MemoryFree()
		// Local demand needs free memory + 2 MiB: the free MR plus one lease
		// must be reclaimed.
		if err := m.CommitLocal(free + 2<<20); err != nil {
			t.Fatalf("local commit should be satisfied after reclamation: %v", err)
		}
		revoked := 0
		for _, l := range leases {
			if !l.Valid(p.Now()) {
				revoked++
			}
		}
		if revoked != 1 {
			t.Fatalf("revoked = %d leases, want 1", revoked)
		}
		if b.Revocations != 1 {
			t.Fatalf("revocations = %d", b.Revocations)
		}
	})
}

func TestProxyFailureRevokesAll(t *testing.T) {
	harness(t, 2, 3, func(p *sim.Proc, b *Broker, servers []*cluster.Server, proxies []*Proxy) {
		leases, _ := b.Request(p, RequestSpec{Holder: "db1", N: 4, Place: PlaceSpread})
		b.FailProxy(proxies[0])
		valid := 0
		for _, l := range leases {
			if l.Valid(p.Now()) {
				valid++
			}
		}
		if valid != 2 {
			t.Fatalf("valid leases after failure = %d, want 2", valid)
		}
		// New requests must avoid the failed server.
		more, err := b.Request(p, RequestSpec{Holder: "db2", N: 1, Place: PlaceSpread})
		if err != nil {
			t.Fatal(err)
		}
		if more[0].MR.Owner != servers[1] {
			t.Fatal("grant placed on failed server")
		}
	})
}

func TestBrokerFailover(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	k.Go("test", func(p *sim.Proc) {
		store := metastore.New(k, 10*time.Microsecond)
		b1 := New(p, store, DefaultConfig())
		px, _ := b1.AddProxy(p, m, 1<<20, 4)
		leases, _ := b1.Request(p, RequestSpec{Holder: "db1", N: 2, Place: PlacePack})

		// Broker b1 "crashes"; a new broker recovers from the metastore.
		live := map[LeaseID]*Lease{leases[0].ID: leases[0], leases[1].ID: leases[1]}
		b2, err := Recover(p, store, DefaultConfig(), []*Proxy{px}, live)
		if err != nil {
			t.Fatal(err)
		}
		if b2.ActiveLeases() != 2 {
			t.Fatalf("recovered leases = %d, want 2", b2.ActiveLeases())
		}
		// The recovered broker can renew and grant without ID collisions.
		if err := b2.Renew(p, leases[0]); err != nil {
			t.Fatal(err)
		}
		more, err := b2.Request(p, RequestSpec{Holder: "db1", N: 1, Place: PlacePack})
		if err != nil {
			t.Fatal(err)
		}
		if more[0].ID == leases[0].ID || more[0].ID == leases[1].ID {
			t.Fatal("lease ID collision after recovery")
		}
	})
	k.Run(0)
}

func TestFairShareCap(t *testing.T) {
	k := sim.New(1)
	m := testServer(k, "m1")
	k.Go("test", func(p *sim.Proc) {
		store := metastore.New(k, 10*time.Microsecond)
		cfg := DefaultConfig()
		cfg.MaxFractionPerHolder = 0.5
		b := New(p, store, cfg)
		b.AddProxy(p, m, 1<<20, 8)
		// db1 may take at most 4 of the 8 MRs.
		if _, err := b.Request(p, RequestSpec{Holder: "db1", N: 4, Place: PlacePack}); err != nil {
			t.Errorf("within quota: %v", err)
		}
		if _, err := b.Request(p, RequestSpec{Holder: "db1", N: 1, Place: PlacePack}); err != ErrQuota {
			t.Errorf("over quota: %v, want ErrQuota", err)
		}
		// Another holder still gets its share.
		if _, err := b.Request(p, RequestSpec{Holder: "db2", N: 4, Place: PlacePack}); err != nil {
			t.Errorf("second holder within quota: %v", err)
		}
	})
	k.Run(0)
}

// Anti-affinity: RequestAvoiding must never place a lease on an avoided
// donor, and under donor scarcity it must refuse rather than violate
// the constraint — free MRs on an avoided server do not count.
func TestRequestAvoidingSkipsDonors(t *testing.T) {
	harness(t, 3, 2, func(p *sim.Proc, b *Broker, servers []*cluster.Server, _ []*Proxy) {
		avoid := map[string]bool{servers[0].Name: true}
		leases, err := b.RequestAvoiding(p, "db1", 4, PlaceSpread, avoid)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range leases {
			if avoid[l.MR.Owner.Name] {
				t.Fatalf("lease placed on avoided donor %s", l.MR.Owner.Name)
			}
		}
		if b.FreeMRs() != 2 {
			t.Fatalf("free=%d, want 2 (the avoided donor untouched)", b.FreeMRs())
		}
	})
}

func TestRequestAvoidingScarcityRefuses(t *testing.T) {
	harness(t, 2, 2, func(p *sim.Proc, b *Broker, servers []*cluster.Server, _ []*Proxy) {
		// Exhaust the allowed donor.
		if _, err := b.RequestAvoiding(p, "db1", 2, PlacePack,
			map[string]bool{servers[0].Name: true}); err != nil {
			t.Fatal(err)
		}
		// Only the avoided donor has free MRs left: the request must
		// refuse, not fall back onto it.
		_, err := b.RequestAvoiding(p, "db1", 1, PlacePack,
			map[string]bool{servers[0].Name: true})
		if err != ErrNoMemory {
			t.Fatalf("err = %v, want ErrNoMemory", err)
		}
		if b.FreeMRs() != 2 {
			t.Fatalf("free=%d, want 2 (no lease leaked)", b.FreeMRs())
		}
		// Dropping the constraint makes the same request succeed.
		leases, err := b.RequestAvoiding(p, "db1", 1, PlacePack, nil)
		if err != nil {
			t.Fatal(err)
		}
		if leases[0].MR.Owner != servers[0] {
			t.Fatal("unconstrained request should use the remaining donor")
		}
	})
}

func TestRequestAvoidingAllDonorsRefuses(t *testing.T) {
	harness(t, 2, 4, func(p *sim.Proc, b *Broker, servers []*cluster.Server, _ []*Proxy) {
		avoid := map[string]bool{servers[0].Name: true, servers[1].Name: true}
		if _, err := b.RequestAvoiding(p, "db1", 1, PlaceSpread, avoid); err != ErrNoMemory {
			t.Fatalf("err = %v, want ErrNoMemory with every donor avoided", err)
		}
	})
}
