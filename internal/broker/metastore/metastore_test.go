package metastore

import (
	"testing"
	"time"

	"remotedb/internal/sim"
)

// run executes fn inside a simulation process and drives it to completion.
func run(t *testing.T, fn func(p *sim.Proc, s *Store)) {
	t.Helper()
	k := sim.New(1)
	s := New(k, 10*time.Microsecond)
	k.Go("test", func(p *sim.Proc) { fn(p, s) })
	k.Run(0)
}

func TestCreateGetSetDelete(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		if err := s.Create(p, "/a", []byte("1"), 0); err != nil {
			t.Fatal(err)
		}
		data, ver, err := s.Get(p, "/a")
		if err != nil || string(data) != "1" || ver != 0 {
			t.Fatalf("get = %q v%d err=%v", data, ver, err)
		}
		ver, err = s.Set(p, "/a", []byte("2"), 0)
		if err != nil || ver != 1 {
			t.Fatalf("set v=%d err=%v", ver, err)
		}
		if err := s.Delete(p, "/a", 1); err != nil {
			t.Fatal(err)
		}
		if s.Exists(p, "/a") {
			t.Fatal("node should be gone")
		}
	})
}

func TestVersionedCAS(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		s.Create(p, "/a", []byte("1"), 0)
		if _, err := s.Set(p, "/a", []byte("x"), 5); err != ErrBadVersion {
			t.Fatalf("stale set: %v", err)
		}
		if err := s.Delete(p, "/a", 7); err != ErrBadVersion {
			t.Fatalf("stale delete: %v", err)
		}
		if _, err := s.Set(p, "/a", []byte("y"), -1); err != nil {
			t.Fatalf("unconditional set: %v", err)
		}
	})
}

func TestCreateErrors(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		if err := s.Create(p, "no-slash", nil, 0); err != ErrBadPath {
			t.Fatalf("bad path: %v", err)
		}
		if err := s.Create(p, "/a/b", nil, 0); err != ErrNoNode {
			t.Fatalf("orphan create: %v", err)
		}
		s.Create(p, "/a", nil, 0)
		if err := s.Create(p, "/a", nil, 0); err != ErrNodeExists {
			t.Fatalf("duplicate create: %v", err)
		}
	})
}

func TestDeleteNonEmpty(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		s.Create(p, "/a", nil, 0)
		s.Create(p, "/a/b", nil, 0)
		if err := s.Delete(p, "/a", -1); err != ErrNotEmpty {
			t.Fatalf("delete with children: %v", err)
		}
	})
}

func TestChildren(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		s.Create(p, "/a", nil, 0)
		s.Create(p, "/a/z", nil, 0)
		s.Create(p, "/a/b", nil, 0)
		s.Create(p, "/a/b/deep", nil, 0)
		kids, err := s.Children(p, "/a")
		if err != nil {
			t.Fatal(err)
		}
		if len(kids) != 2 || kids[0] != "b" || kids[1] != "z" {
			t.Fatalf("children = %v", kids)
		}
		if _, err := s.Children(p, "/nope"); err != ErrNoNode {
			t.Fatalf("children of missing node: %v", err)
		}
	})
}

func TestEphemeralNodesDieWithSession(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		sess := s.NewSession(p)
		s.Create(p, "/e", []byte("x"), sess)
		s.Create(p, "/persistent", nil, 0)
		if err := s.CloseSession(p, sess); err != nil {
			t.Fatal(err)
		}
		if s.Exists(p, "/e") {
			t.Fatal("ephemeral node survived session close")
		}
		if !s.Exists(p, "/persistent") {
			t.Fatal("persistent node deleted")
		}
		if err := s.CloseSession(p, sess); err != ErrSessionGone {
			t.Fatalf("double close: %v", err)
		}
	})
}

func TestEphemeralWithDeadSession(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		sess := s.NewSession(p)
		s.CloseSession(p, sess)
		if err := s.Create(p, "/e", nil, sess); err != ErrNoSession {
			t.Fatalf("create with dead session: %v", err)
		}
	})
}

func TestWatchFires(t *testing.T) {
	run(t, func(p *sim.Proc, s *Store) {
		var events []Event
		s.Watch("/w", func(ev Event) { events = append(events, ev) })
		s.Create(p, "/w", nil, 0)
		s.Set(p, "/w", []byte("v"), -1)
		s.Delete(p, "/w", -1)
		if len(events) != 3 {
			t.Fatalf("events = %v", events)
		}
		if events[2].Deleted != true || events[0].Deleted || events[1].Deleted {
			t.Fatalf("deletion flags wrong: %v", events)
		}
	})
}

func TestRPCCostCharged(t *testing.T) {
	k := sim.New(1)
	s := New(k, 10*time.Microsecond)
	var end time.Duration
	k.Go("t", func(p *sim.Proc) {
		s.Create(p, "/a", nil, 0)
		s.Get(p, "/a")
		end = p.Now()
	})
	k.Run(0)
	if end != 20*time.Microsecond {
		t.Fatalf("two ops took %v, want 20µs", end)
	}
}
