// Package metastore is the fault-tolerant coordination service the
// memory broker stores its state in — the role ZooKeeper plays in the
// paper (Section 4.2). It provides a linearizable, versioned key-value
// tree with ephemeral nodes tied to sessions and watch notifications,
// which is the subset of the ZooKeeper API the broker relies on:
// lease metadata survives a broker crash, and a new broker can be
// elected and pick the state up.
//
// The ensemble's internal consensus replication is abstracted away
// (DESIGN.md §2): within the simulation the store is a single
// linearizable object whose operations charge a small RPC cost, which
// preserves the semantics the paper depends on. Replication of the
// *data* plane — K-way replicated striping of remote-memory files — is
// modelled in internal/core (see DESIGN.md's fault-tolerance section).
package metastore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"remotedb/internal/fault"
	"remotedb/internal/sim"
)

// Errors returned by store operations. ErrNoNode and ErrPartitioned wrap
// the repository-wide fault taxonomy so callers can classify them with
// errors.Is without importing this package.
var (
	ErrNoNode      = fmt.Errorf("metastore: node does not exist (%w)", fault.ErrNotFound)
	ErrNodeExists  = errors.New("metastore: node already exists")
	ErrBadVersion  = errors.New("metastore: version conflict")
	ErrNoSession   = errors.New("metastore: session expired or closed")
	ErrNotEmpty    = errors.New("metastore: node has children")
	ErrBadPath     = errors.New("metastore: malformed path")
	ErrSessionGone = errors.New("metastore: session does not exist")

	// ErrPartitioned is returned while the client is partitioned from
	// the coordination ensemble (fault injection). The condition is
	// transient — it wraps fault.ErrRetryable.
	ErrPartitioned = fmt.Errorf("metastore: partitioned from ensemble (%w)", fault.ErrRetryable)
)

// Node is a versioned entry.
type node struct {
	data      []byte
	version   int64
	ephemeral SessionID // zero when persistent
}

// SessionID identifies a client session; ephemeral nodes die with it.
type SessionID int64

// Event describes a change to a watched path.
type Event struct {
	Path    string
	Deleted bool
}

// Store is the coordination service.
type Store struct {
	k           *sim.Kernel
	rpcCost     time.Duration
	nodes       map[string]*node
	watches     map[string][]func(Event)
	sessions    map[SessionID]map[string]bool // session -> ephemeral paths
	nextSess    SessionID
	partitioned bool

	// Timeouts counts operations rejected while partitioned.
	Timeouts int64
}

// New creates a store on kernel k. rpcCost is charged per operation to
// model the round trip to the coordination ensemble.
func New(k *sim.Kernel, rpcCost time.Duration) *Store {
	return &Store{
		k:        k,
		rpcCost:  rpcCost,
		nodes:    map[string]*node{"/": {}},
		watches:  make(map[string][]func(Event)),
		sessions: make(map[SessionID]map[string]bool),
	}
}

func (s *Store) charge(p *sim.Proc) {
	if p != nil && s.rpcCost > 0 {
		p.Sleep(s.rpcCost)
	}
}

// SetPartitioned simulates a network partition between clients and the
// coordination ensemble: while set, mutating and reading operations fail
// with ErrPartitioned (after charging a timed-out RPC). The state in the
// store is preserved — healing the partition restores service.
func (s *Store) SetPartitioned(on bool) { s.partitioned = on }

// Partitioned reports whether the store is currently unreachable.
func (s *Store) Partitioned() bool { return s.partitioned }

// reject implements the partition check shared by every operation.
func (s *Store) reject() error {
	if s.partitioned {
		s.Timeouts++
		return ErrPartitioned
	}
	return nil
}

func validPath(path string) bool {
	if path == "/" {
		return true
	}
	return strings.HasPrefix(path, "/") && !strings.HasSuffix(path, "/") && !strings.Contains(path, "//")
}

func parent(path string) string {
	i := strings.LastIndex(path, "/")
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// NewSession opens a session.
func (s *Store) NewSession(p *sim.Proc) SessionID {
	s.charge(p)
	s.nextSess++
	id := s.nextSess
	s.sessions[id] = make(map[string]bool)
	return id
}

// CloseSession ends a session, deleting its ephemeral nodes.
func (s *Store) CloseSession(p *sim.Proc, id SessionID) error {
	s.charge(p)
	paths, ok := s.sessions[id]
	if !ok {
		return ErrSessionGone
	}
	delete(s.sessions, id)
	var sorted []string
	for path := range paths {
		sorted = append(sorted, path)
	}
	// Delete deepest-first so children go before parents.
	sort.Slice(sorted, func(i, j int) bool { return len(sorted[i]) > len(sorted[j]) })
	for _, path := range sorted {
		if _, ok := s.nodes[path]; ok {
			delete(s.nodes, path)
			s.notify(Event{Path: path, Deleted: true})
		}
	}
	return nil
}

// Create adds a node. If sess is non-zero the node is ephemeral and is
// removed when the session closes.
func (s *Store) Create(p *sim.Proc, path string, data []byte, sess SessionID) error {
	s.charge(p)
	if err := s.reject(); err != nil {
		return err
	}
	if !validPath(path) || path == "/" {
		return ErrBadPath
	}
	if _, ok := s.nodes[path]; ok {
		return ErrNodeExists
	}
	if _, ok := s.nodes[parent(path)]; !ok {
		return ErrNoNode
	}
	if sess != 0 {
		owned, ok := s.sessions[sess]
		if !ok {
			return ErrNoSession
		}
		owned[path] = true
	}
	s.nodes[path] = &node{data: append([]byte(nil), data...), ephemeral: sess}
	s.notify(Event{Path: path})
	return nil
}

// Get returns a node's data and version.
func (s *Store) Get(p *sim.Proc, path string) (data []byte, version int64, err error) {
	s.charge(p)
	if err := s.reject(); err != nil {
		return nil, 0, err
	}
	n, ok := s.nodes[path]
	if !ok {
		return nil, 0, ErrNoNode
	}
	return append([]byte(nil), n.data...), n.version, nil
}

// Set replaces a node's data if version matches (-1 skips the check).
func (s *Store) Set(p *sim.Proc, path string, data []byte, version int64) (int64, error) {
	s.charge(p)
	if err := s.reject(); err != nil {
		return 0, err
	}
	n, ok := s.nodes[path]
	if !ok {
		return 0, ErrNoNode
	}
	if version >= 0 && version != n.version {
		return 0, ErrBadVersion
	}
	n.data = append([]byte(nil), data...)
	n.version++
	s.notify(Event{Path: path})
	return n.version, nil
}

// BatchSet is one write of a SetBatch.
type BatchSet struct {
	Path string
	Data []byte
}

// SetBatch replaces the data of many nodes in ONE round trip to the
// ensemble — the batched-heartbeat primitive: a broker renews every
// lease of one holder for the cost of a single RPC. The batch is not a
// transaction: nodes that exist are updated (version bumped, watches
// fired), nodes that do not are reported by index in missing, and a
// partition rejects the whole batch. Version checks are deliberately
// absent — last-writer-wins matches how lease expiries are maintained.
func (s *Store) SetBatch(p *sim.Proc, items []BatchSet) (missing []int, err error) {
	s.charge(p)
	if err := s.reject(); err != nil {
		return nil, err
	}
	for i, it := range items {
		n, ok := s.nodes[it.Path]
		if !ok {
			missing = append(missing, i)
			continue
		}
		n.data = append([]byte(nil), it.Data...)
		n.version++
		s.notify(Event{Path: it.Path})
	}
	return missing, nil
}

// Delete removes a childless node if version matches (-1 skips).
func (s *Store) Delete(p *sim.Proc, path string, version int64) error {
	s.charge(p)
	if err := s.reject(); err != nil {
		return err
	}
	n, ok := s.nodes[path]
	if !ok {
		return ErrNoNode
	}
	if version >= 0 && version != n.version {
		return ErrBadVersion
	}
	prefix := path + "/"
	for other := range s.nodes {
		if strings.HasPrefix(other, prefix) {
			return ErrNotEmpty
		}
	}
	if n.ephemeral != 0 {
		if owned, ok := s.sessions[n.ephemeral]; ok {
			delete(owned, path)
		}
	}
	delete(s.nodes, path)
	s.notify(Event{Path: path, Deleted: true})
	return nil
}

// Children lists the names (not full paths) of a node's children, sorted.
func (s *Store) Children(p *sim.Proc, path string) ([]string, error) {
	s.charge(p)
	if err := s.reject(); err != nil {
		return nil, err
	}
	if _, ok := s.nodes[path]; !ok {
		return nil, ErrNoNode
	}
	prefix := path + "/"
	if path == "/" {
		prefix = "/"
	}
	var names []string
	for other := range s.nodes {
		if other == "/" || !strings.HasPrefix(other, prefix) {
			continue
		}
		rest := other[len(prefix):]
		if !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Exists reports whether a node is present.
func (s *Store) Exists(p *sim.Proc, path string) bool {
	s.charge(p)
	_, ok := s.nodes[path]
	return ok
}

// Watch registers fn for changes at exactly path (create, set, delete).
// Watches are persistent (unlike ZooKeeper's one-shot watches) to keep
// broker code simple.
func (s *Store) Watch(path string, fn func(Event)) {
	s.watches[path] = append(s.watches[path], fn)
}

func (s *Store) notify(ev Event) {
	for _, fn := range s.watches[ev.Path] {
		fn(ev)
	}
}
