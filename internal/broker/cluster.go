package broker

import (
	"fmt"
	"sort"
	"time"

	"remotedb/internal/broker/metastore"
	"remotedb/internal/cluster"
	"remotedb/internal/fault"
	"remotedb/internal/metrics"
	"remotedb/internal/sim"
)

// ErrShardDown is returned while a lease's shard replica is failed and
// not yet recovered. It is transient: handoff via RecoverShard restores
// service, so it wraps fault.ErrRetryable.
var ErrShardDown = fmt.Errorf("broker: shard replica down (%w)", fault.ErrRetryable)

// Cluster shards the lease space across N broker replicas and implements
// LeaseService over them, removing the single-coordinator ceiling:
//
//   - Holders and donors map to shards by rendezvous hashing, so adding
//     or failing one replica only moves that replica's keys.
//   - Each shard persists under its own metastore namespace
//     (<ns>/shard<i>), and shards mint disjoint lease IDs by striding,
//     so a lease's shard is recoverable as id mod stride.
//   - Admission (tenant quotas, weighted max-min under scarcity) runs
//     once at the router — per-shard enforcement would multiply every
//     tenant's allowance by the shard count.
//   - A failed replica is handed off with RecoverShard, which rebuilds
//     the shard's broker from its namespace and the holder-side lease
//     handles the router kept.
type Cluster struct {
	k      *sim.Kernel
	store  *metastore.Store
	base   Config
	shards []*shard
	admit  *admitter
	// watches is the router-level registry; each shard broker gets one
	// forwarding watch that survives handoff (a recovered broker starts
	// with an empty watch table, so the router re-installs forwarding).
	watches map[string][]RevokeWatch
	maxFrac float64

	stopExpire bool
}

// shard is one broker replica plus the router-side state needed to hand
// it off: which proxies it owns and the live lease handles (Recover's
// inputs).
type shard struct {
	id      int
	b       *Broker
	cfg     Config
	down    bool
	proxies []*Proxy
	handles map[LeaseID]*Lease
}

// NewCluster creates n broker replicas over store. cfg is the base
// config: its Namespace (default "/broker") roots the per-shard subtrees;
// Quotas/Weights/MaxFractionPerHolder are enforced at the router and
// stripped from the shard configs.
func NewCluster(p *sim.Proc, store *metastore.Store, n int, cfg Config) *Cluster {
	if n < 1 {
		n = 1
	}
	ns := cfg.Namespace
	if ns == "" {
		ns = "/broker"
	}
	c := &Cluster{
		k:       p.Kernel(),
		store:   store,
		base:    cfg,
		maxFrac: cfg.MaxFractionPerHolder,
		watches: make(map[string][]RevokeWatch),
	}
	if cfg.Quotas != nil || cfg.Weights != nil {
		c.admit = newAdmitter(cfg.Quotas, cfg.Weights, cfg.ScarceFrac)
	}
	for i := 0; i < n; i++ {
		scfg := Config{
			LeaseTTL:   cfg.LeaseTTL,
			Namespace:  fmt.Sprintf("%s/shard%d", ns, i),
			ShardID:    i,
			ShardCount: n,
		}
		sh := &shard{id: i, cfg: scfg, handles: make(map[LeaseID]*Lease)}
		sh.b = New(p, store, scfg)
		c.shards = append(c.shards, sh)
		c.installForwarder(sh)
	}
	return c
}

// installForwarder hooks the shard broker's revoke stream into the
// router: drop the holder-side handle, settle tenant accounting, then
// fan out to the user's watches.
func (c *Cluster) installForwarder(sh *shard) {
	sh.b.OnRevoke("", func(l *Lease) {
		_, had := sh.handles[l.ID]
		delete(sh.handles, l.ID)
		if had && c.admit != nil {
			st := c.admit.tenant(l.Tenant)
			st.HeldMRs--
			st.HeldBytes -= int64(l.MR.Size())
		}
		for _, fn := range c.watches[l.Holder] {
			fn(l)
		}
		for _, fn := range c.watches[""] {
			fn(l)
		}
	})
}

// ShardCount returns the number of replicas.
func (c *Cluster) ShardCount() int { return len(c.shards) }

// Shard returns replica i's broker (tests and metrics drilling).
func (c *Cluster) Shard(i int) *Broker { return c.shards[i].b }

// ShardDown reports whether replica i is currently failed.
func (c *Cluster) ShardDown(i int) bool { return c.shards[i].down }

func (c *Cluster) shardOf(id LeaseID) *shard {
	return c.shards[int(id)%len(c.shards)]
}

// LeaseTTL returns the configured time-to-live (LeaseService).
func (c *Cluster) LeaseTTL() time.Duration { return c.base.LeaseTTL }

// AddProxy registers a donor, assigning it to a shard by rendezvous
// hashing on the server name (first live shard in preference order).
func (c *Cluster) AddProxy(p *sim.Proc, server *cluster.Server, mrSize, mrCount int) (*Proxy, error) {
	for _, i := range rendezvousOrder(server.Name, len(c.shards)) {
		sh := c.shards[i]
		if sh.down {
			continue
		}
		px, err := sh.b.AddProxy(p, server, mrSize, mrCount)
		if err != nil {
			return nil, err
		}
		sh.proxies = append(sh.proxies, px)
		return px, nil
	}
	return nil, ErrShardDown
}

// FailProxy simulates a donor crash (routes to the owning shard).
func (c *Cluster) FailProxy(px *Proxy) {
	for _, sh := range c.shards {
		for _, own := range sh.proxies {
			if own == px {
				sh.b.FailProxy(px)
				return
			}
		}
	}
}

// Request implements LeaseService. Admission runs once at the router;
// placement starts at the holder's home shard (rendezvous) and spills to
// the next shards in preference order when the home shard's donors are
// exhausted. If the cluster as a whole cannot cover spec.N, everything
// granted so far is rolled back and ErrNoMemory is returned.
func (c *Cluster) Request(p *sim.Proc, spec RequestSpec) ([]*Lease, error) {
	spec = spec.normalized()
	if spec.N <= 0 {
		return nil, nil
	}
	total := 0
	avail := 0
	for _, sh := range c.shards {
		if sh.down {
			continue
		}
		total += sh.b.TotalMRs()
		avail += sh.b.FreeFor(spec.Avoid)
	}
	if avail < spec.N {
		return nil, ErrNoMemory
	}
	if c.maxFrac > 0 {
		held := 0
		for _, sh := range c.shards {
			for _, l := range sh.handles {
				if l.Holder == spec.Holder {
					held++
				}
			}
		}
		if float64(held+spec.N) > c.maxFrac*float64(total) {
			return nil, ErrQuota
		}
	}
	if c.admit != nil {
		held := make(map[string]int64)
		for name, st := range c.admit.tenants {
			held[name] = st.HeldMRs
		}
		if err := c.admit.admit(spec.Tenant, spec.N, spec.Priority, int64(c.mrSize()), total, held); err != nil {
			return nil, err
		}
	}
	var out []*Lease
	for _, i := range rendezvousOrder(spec.Holder, len(c.shards)) {
		if len(out) == spec.N {
			break
		}
		sh := c.shards[i]
		if sh.down {
			continue
		}
		n := spec.N - len(out)
		if free := sh.b.FreeFor(spec.Avoid); free < n {
			n = free
		}
		if n <= 0 {
			continue
		}
		sub := spec
		sub.N = n
		ls, err := sh.b.Request(p, sub)
		if err != nil {
			continue
		}
		for _, l := range ls {
			sh.handles[l.ID] = l
			if c.admit != nil {
				st := c.admit.tenant(l.Tenant)
				st.HeldMRs++
				st.HeldBytes += int64(l.MR.Size())
			}
		}
		out = append(out, ls...)
	}
	if len(out) < spec.N {
		for _, l := range out {
			c.Release(p, l)
		}
		return nil, ErrNoMemory
	}
	if c.admit != nil {
		c.admit.tenant(spec.Tenant).Grants += int64(len(out))
	}
	return out, nil
}

func (c *Cluster) mrSize() int {
	for _, sh := range c.shards {
		if sz := sh.b.MRSize(); sz > 0 {
			return sz
		}
	}
	return 0
}

// Renew implements LeaseService, routing by the lease's shard.
func (c *Cluster) Renew(p *sim.Proc, l *Lease) error {
	sh := c.shardOf(l.ID)
	if sh.down {
		return ErrShardDown
	}
	return sh.b.Renew(p, l)
}

// RenewAll implements LeaseService: the holder's cohort is grouped by
// shard and each group renews with one batched metastore round trip.
// Individually dead leases land in failed; a shard-level transport
// failure (replica down, metastore partition) leaves that whole group
// un-renewed and surfaces as a retryable error after every other group
// has been processed — re-renewing an already-renewed lease on the
// holder's retry is harmless.
func (c *Cluster) RenewAll(p *sim.Proc, holder string, ls []*Lease) (failed []*Lease, err error) {
	groups := make(map[int][]*Lease)
	for _, l := range ls {
		sid := int(l.ID) % len(c.shards)
		groups[sid] = append(groups[sid], l)
	}
	sids := make([]int, 0, len(groups))
	for sid := range groups {
		sids = append(sids, sid)
	}
	sort.Ints(sids)
	var firstErr error
	for _, sid := range sids {
		sh := c.shards[sid]
		if sh.down {
			if firstErr == nil {
				firstErr = ErrShardDown
			}
			continue
		}
		f, gerr := sh.b.RenewAll(p, holder, groups[sid])
		failed = append(failed, f...)
		if gerr != nil && firstErr == nil {
			firstErr = gerr
		}
	}
	if firstErr != nil {
		return failed, fmt.Errorf("broker: cluster heartbeat: %w", firstErr)
	}
	return failed, nil
}

// Release implements LeaseService.
func (c *Cluster) Release(p *sim.Proc, l *Lease) {
	sh := c.shardOf(l.ID)
	_, had := sh.handles[l.ID]
	delete(sh.handles, l.ID)
	if had && c.admit != nil {
		st := c.admit.tenant(l.Tenant)
		st.HeldMRs--
		st.HeldBytes -= int64(l.MR.Size())
	}
	if sh.down {
		// The replica can't process the release; the lease will expire
		// once the shard recovers and sweeps. Dropping the handle is
		// enough for the holder's side.
		return
	}
	sh.b.Release(p, l)
}

// OnRevoke implements LeaseService. Watches are kept at the router and
// forwarded per shard, so they survive shard handoff.
func (c *Cluster) OnRevoke(holder string, fn RevokeWatch) {
	c.watches[holder] = append(c.watches[holder], fn)
}

// FailShard simulates the crash of replica i's broker process: its
// in-memory state is gone, renewals and releases routed to it fail
// retryable, and its donors stop serving new grants. The durable state
// in the shard's metastore namespace and the holder-side lease handles
// survive — RecoverShard rebuilds from them.
func (c *Cluster) FailShard(i int) { c.shards[i].down = true }

// RecoverShard hands replica i's lease space to a fresh broker rebuilt
// from the shard's metastore namespace (the Recover election path), re-
// adopting the shard's proxies and the still-live lease handles. Holder
// lease pointers stay valid across the handoff; renewals resume on the
// new replica.
func (c *Cluster) RecoverShard(p *sim.Proc, i int) error {
	sh := c.shards[i]
	live := make(map[LeaseID]*Lease, len(sh.handles))
	now := p.Now()
	for id, l := range sh.handles {
		if l.Valid(now) {
			live[id] = l
		}
	}
	nb, err := Recover(p, c.store, sh.cfg, sh.proxies, live)
	if err != nil {
		return err
	}
	// Carry the counters and metrics over so cluster aggregates stay
	// monotonic across handoffs.
	old := sh.b
	nb.Grants, nb.Renewals = old.Grants, old.Renewals
	nb.Expirations, nb.Revocations = old.Expirations, old.Revocations
	nb.GaugeActive.Peak = old.GaugeActive.Peak
	nb.GaugeFree.Peak = old.GaugeFree.Peak
	nb.HeartbeatBatch = old.HeartbeatBatch
	nb.refreshGauges()
	sh.b = nb
	sh.handles = make(map[LeaseID]*Lease, len(live))
	for id, l := range live {
		sh.handles[id] = l
	}
	c.installForwarder(sh)
	sh.down = false
	return nil
}

// ShedFair revokes up to n live leases tenant-fairly across all live
// shards (round-robin over tenants, oldest lease first within each) and
// returns how many it revoked — the cluster-wide reclamation-storm
// primitive.
func (c *Cluster) ShedFair(n int) int {
	var cands []*Lease
	for _, sh := range c.shards {
		if sh.down {
			continue
		}
		for _, l := range sh.handles {
			cands = append(cands, l)
		}
	}
	victims := victimOrder(cands)
	if n > len(victims) {
		n = len(victims)
	}
	for _, l := range victims[:n] {
		if c.admit != nil {
			c.admit.tenant(l.Tenant).Sheds++
		}
		c.shardOf(l.ID).b.Revoke(l.ID)
	}
	return n
}

// Revoke forcibly revokes one lease by ID on its shard.
func (c *Cluster) Revoke(id LeaseID) bool {
	sh := c.shardOf(id)
	if sh.down {
		return false
	}
	return sh.b.Revoke(id)
}

// RevokeOldest revokes the n oldest live leases cluster-wide (lowest IDs
// first) and returns how many were revoked.
func (c *Cluster) RevokeOldest(n int) int {
	var ids []LeaseID
	for _, sh := range c.shards {
		if sh.down {
			continue
		}
		for id := range sh.handles {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	revoked := 0
	for _, id := range ids {
		if revoked >= n {
			break
		}
		if c.shardOf(id).b.Revoke(id) {
			revoked++
		}
	}
	return revoked
}

// ExpireLoop sweeps every live shard at interval until StopExpireLoop.
func (c *Cluster) ExpireLoop(p *sim.Proc, interval time.Duration) {
	for !c.stopExpire {
		p.Sleep(interval)
		if c.stopExpire {
			return
		}
		now := p.Now()
		for _, sh := range c.shards {
			if !sh.down {
				sh.b.SweepExpired(now)
			}
		}
	}
}

// StopExpireLoop asks a running ExpireLoop to exit at its next tick.
func (c *Cluster) StopExpireLoop() { c.stopExpire = true }

// ReportDonorHealth fans a holder's slow-donor report out to every live
// shard: proxies are distributed across shards, and each shard places
// grants independently, so each needs the full picture. Shards without
// a named proxy store the entry harmlessly.
func (c *Cluster) ReportDonorHealth(holder string, slow []string) {
	for _, sh := range c.shards {
		if !sh.down {
			sh.b.ReportDonorHealth(holder, slow)
		}
	}
}

// ActiveLeases sums live leases over live shards.
func (c *Cluster) ActiveLeases() int {
	n := 0
	for _, sh := range c.shards {
		if !sh.down {
			n += sh.b.ActiveLeases()
		}
	}
	return n
}

// FreeMRs sums unleased MRs over live shards.
func (c *Cluster) FreeMRs() int {
	n := 0
	for _, sh := range c.shards {
		if !sh.down {
			n += sh.b.FreeMRs()
		}
	}
	return n
}

// Grants, Renewals, Expirations, Revocations aggregate shard counters.
func (c *Cluster) Grants() int64      { return c.sum(func(b *Broker) int64 { return b.Grants }) }
func (c *Cluster) Renewals() int64    { return c.sum(func(b *Broker) int64 { return b.Renewals }) }
func (c *Cluster) Expirations() int64 { return c.sum(func(b *Broker) int64 { return b.Expirations }) }
func (c *Cluster) Revocations() int64 { return c.sum(func(b *Broker) int64 { return b.Revocations }) }

// HealthReports counts slow-donor reports received across all shards
// (each holder heartbeat fans its report out to every live shard).
func (c *Cluster) HealthReports() int64 {
	return c.sum(func(b *Broker) int64 { return b.HealthReports })
}

func (c *Cluster) sum(f func(*Broker) int64) int64 {
	var n int64
	for _, sh := range c.shards {
		n += f(sh.b)
	}
	return n
}

// HeartbeatBatch merges the per-shard heartbeat batch-width stats.
func (c *Cluster) HeartbeatBatch() metrics.Distribution {
	var d metrics.Distribution
	for _, sh := range c.shards {
		d.Merge(sh.b.HeartbeatBatch)
	}
	return d
}

// ActiveGauge and FreeGauge aggregate the shard gauges (peaks are summed
// per shard, a conservative upper bound on the cluster-wide peak).
func (c *Cluster) ActiveGauge() metrics.Gauge {
	return c.gauge(func(b *Broker) metrics.Gauge { return b.GaugeActive })
}
func (c *Cluster) FreeGauge() metrics.Gauge {
	return c.gauge(func(b *Broker) metrics.Gauge { return b.GaugeFree })
}

func (c *Cluster) gauge(f func(*Broker) metrics.Gauge) metrics.Gauge {
	var g metrics.Gauge
	for _, sh := range c.shards {
		sg := f(sh.b)
		g.Value += sg.Value
		g.Peak += sg.Peak
	}
	return g
}

// TenantStats merges router-level admission accounting with any shard-
// level stats (standalone shards keep none in a cluster).
func (c *Cluster) TenantStats() map[string]TenantStats {
	out := make(map[string]TenantStats)
	if c.admit != nil {
		for name, st := range c.admit.tenants {
			cur := out[name]
			cur.merge(*st)
			out[name] = cur
		}
	}
	for _, sh := range c.shards {
		for name, st := range sh.b.TenantStats() {
			cur := out[name]
			cur.merge(st)
			out[name] = cur
		}
	}
	return out
}
