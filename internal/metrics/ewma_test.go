package metrics

import (
	"math/rand"
	"testing"
	"time"
)

func TestEWMASeedsFromFirstObservation(t *testing.T) {
	var e EWMA
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatal("fresh EWMA not zero")
	}
	e.Observe(100)
	if e.Value() != 100 {
		t.Errorf("first observation should seed directly, got %v", e.Value())
	}
}

func TestEWMAAlphaWeighting(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	e.Observe(100)
	e.Observe(0)
	if e.Value() != 50 {
		t.Errorf("alpha 0.5 after 100,0: got %v, want 50", e.Value())
	}
	e.Observe(50)
	if e.Value() != 50 {
		t.Errorf("observing the mean must not move it, got %v", e.Value())
	}
}

func TestEWMADefaultAlpha(t *testing.T) {
	var e EWMA // zero Alpha falls back to 0.1
	e.Observe(0)
	e.Observe(100)
	if got := e.Value(); got != 10 {
		t.Errorf("default alpha: got %v, want 10", got)
	}
}

func TestEWMAConvergesToShiftedLevel(t *testing.T) {
	e := EWMA{Alpha: 0.2}
	for i := 0; i < 50; i++ {
		e.Observe(10)
	}
	for i := 0; i < 50; i++ {
		e.Observe(90)
	}
	if got := e.Value(); got < 85 || got > 90 {
		t.Errorf("after level shift: got %v, want near 90", got)
	}
}

func TestQuantileEWMASeedsAndCounts(t *testing.T) {
	q := QuantileEWMA{P: 0.95, Step: 0.05}
	q.ObserveDuration(3 * time.Millisecond)
	if q.Duration() != 3*time.Millisecond || q.Count() != 1 {
		t.Errorf("seed: %v / %d", q.Duration(), q.Count())
	}
}

// TestQuantileEWMAConverges feeds a uniform stream and checks the
// estimate settles near the true quantile. The asymmetric update's
// equilibrium is the P-quantile; with a 5% relative step the steady
// state oscillates, so the tolerance is loose.
func TestQuantileEWMAConverges(t *testing.T) {
	for _, p := range []float64{0.5, 0.95} {
		q := QuantileEWMA{P: p, Step: 0.05}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 20000; i++ {
			q.Observe(100 + 100*rng.Float64()) // uniform on [100, 200)
		}
		want := 100 + 100*p
		if got := q.Value(); got < want*0.85 || got > want*1.15 {
			t.Errorf("P=%v: estimate %v not within 15%% of %v", p, got, want)
		}
	}
}

// TestQuantileEWMAAsymmetry documents the breaker-relevant dynamic: a
// p95 tracker climbs toward a sustained slow mode much faster than it
// decays back, which is why donor recovery is probe-driven rather than
// drift-driven (see core/health.go).
func TestQuantileEWMAAsymmetry(t *testing.T) {
	q := QuantileEWMA{P: 0.95, Step: 0.05}
	q.Observe(100)
	for i := 0; i < 50; i++ {
		q.Observe(1000)
	}
	up := q.Value()
	if up < 500 {
		t.Fatalf("50 slow samples only reached %v", up)
	}
	for i := 0; i < 50; i++ {
		q.Observe(100)
	}
	down := q.Value()
	if down < up*0.8 {
		t.Errorf("p95 decayed too fast (%v -> %v): the asymmetric step should hold it up", up, down)
	}
}

func TestQuantileEWMANeverNegative(t *testing.T) {
	q := QuantileEWMA{P: 0.5, Step: 1}
	q.Observe(1)
	for i := 0; i < 100; i++ {
		q.Observe(-1000)
	}
	if q.Value() < 0 {
		t.Errorf("estimate went negative: %v", q.Value())
	}
}
