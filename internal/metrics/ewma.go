package metrics

import "time"

// EWMA is an exponentially weighted moving average over irregularly
// sampled values. Alpha is the weight of each new observation; the
// first observation seeds the average directly so a fresh tracker does
// not ramp up from zero.
type EWMA struct {
	Alpha float64
	v     float64
	n     int64
}

// Observe folds x into the average.
func (e *EWMA) Observe(x float64) {
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.1
	}
	if e.n == 0 {
		e.v = x
	} else {
		e.v += a * (x - e.v)
	}
	e.n++
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.v }

// Count returns the number of observations folded in.
func (e *EWMA) Count() int64 { return e.n }

// QuantileEWMA tracks a running quantile of a latency stream with O(1)
// state via the asymmetric stochastic update (Frugal-style): on a
// sample above the estimate the estimate steps up by step·P, on one
// below it steps down by step·(1−P), so the equilibrium point is the
// P-quantile. The step is relative to the current estimate, which makes
// the tracker scale-free across donors whose latencies differ by orders
// of magnitude. The first observation seeds the estimate.
type QuantileEWMA struct {
	P    float64 // target quantile in (0,1), e.g. 0.95
	Step float64 // relative step size, e.g. 0.05 (5% of the estimate)
	q    float64
	n    int64
}

// Observe folds sample x into the quantile estimate.
func (t *QuantileEWMA) Observe(x float64) {
	p := t.P
	if p <= 0 || p >= 1 {
		p = 0.95
	}
	step := t.Step
	if step <= 0 || step > 1 {
		step = 0.05
	}
	if t.n == 0 {
		t.q = x
		t.n++
		return
	}
	d := step * t.q
	if d <= 0 {
		d = step * x
	}
	if x > t.q {
		t.q += d * p
	} else if x < t.q {
		t.q -= d * (1 - p)
	}
	if t.q < 0 {
		t.q = 0
	}
	t.n++
}

// ObserveDuration folds a latency sample in.
func (t *QuantileEWMA) ObserveDuration(d time.Duration) { t.Observe(float64(d)) }

// Value returns the current quantile estimate (0 before any sample).
func (t *QuantileEWMA) Value() float64 { return t.q }

// Duration returns the estimate as a time.Duration.
func (t *QuantileEWMA) Duration() time.Duration { return time.Duration(t.q) }

// Count returns the number of samples folded in.
func (t *QuantileEWMA) Count() int64 { return t.n }
