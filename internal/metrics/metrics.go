// Package metrics provides the measurement primitives used by every
// experiment: latency histograms with percentile queries, throughput
// counters, and time-series samplers for the drill-down figures
// (Figures 11 and 14 of the paper).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram records durations in exponentially sized buckets and exact
// min/max/sum, supporting approximate percentile queries. Buckets span
// 1 ns to ~18 h with 8 sub-buckets per power of two, giving < 10% error,
// plenty for reproducing latency shapes.
type Histogram struct {
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets map[int]int64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64, buckets: make(map[int]int64)}
}

const subBuckets = 8

func bucketOf(v int64) int {
	if v < 1 {
		v = 1
	}
	exp := 63 - leadingZeros(uint64(v))
	base := int64(1) << uint(exp)
	sub := int((v - base) * subBuckets / base)
	if sub >= subBuckets {
		sub = subBuckets - 1
	}
	return exp*subBuckets + sub
}

func bucketMid(b int) int64 {
	exp := b / subBuckets
	sub := b % subBuckets
	base := int64(1) << uint(exp)
	lo := base + base*int64(sub)/subBuckets
	hi := base + base*int64(sub+1)/subBuckets
	return (lo + hi) / 2
}

func leadingZeros(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the mean observation.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Min returns the smallest observation.
func (h *Histogram) Min() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum) }

// Quantile returns the approximate q-quantile (0 <= q <= 1).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	keys := make([]int, 0, len(h.buckets))
	for b := range h.buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	target := int64(q * float64(h.count))
	var cum int64
	for _, b := range keys {
		cum += h.buckets[b]
		if cum > target {
			mid := bucketMid(b)
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return time.Duration(mid)
		}
	}
	return h.Max()
}

// P50, P95, P99 are convenience percentile accessors.
func (h *Histogram) P50() time.Duration { return h.Quantile(0.50) }
func (h *Histogram) P95() time.Duration { return h.Quantile(0.95) }
func (h *Histogram) P99() time.Duration { return h.Quantile(0.99) }

// Merge adds all observations of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for b, c := range other.buckets {
		h.buckets[b] += c
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	h.count, h.sum, h.max = 0, 0, 0
	h.min = math.MaxInt64
	h.buckets = make(map[int]int64)
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.count, h.Mean(), h.P50(), h.P95(), h.P99(), h.Max())
}

// Contention records how often acquirers of a bounded resource had to
// block, how long they waited in total, and the high-water mark of units
// in use. The rmem client uses it to expose staging-slot contention —
// the quantity that tells whether a batching win came from fewer round
// trips or just from less queueing.
type Contention struct {
	Waits     int64         // acquisitions that had to block
	WaitTime  time.Duration // total time spent blocked
	HighWater int           // maximum units observed in use
}

// RecordWait counts one blocking acquisition that waited d.
func (c *Contention) RecordWait(d time.Duration) {
	c.Waits++
	c.WaitTime += d
}

// Observe updates the high-water mark with the current in-use count.
func (c *Contention) Observe(inUse int) {
	if inUse > c.HighWater {
		c.HighWater = inUse
	}
}

// MeanWait returns the average blocked time per waiting acquisition.
func (c *Contention) MeanWait() time.Duration {
	if c.Waits == 0 {
		return 0
	}
	return c.WaitTime / time.Duration(c.Waits)
}

// Counter is a monotonically increasing count with a byte tally, used for
// I/O and query throughput.
type Counter struct {
	N     int64
	Bytes int64
}

// Add records n events moving bytes in total.
func (c *Counter) Add(n, bytes int64) {
	c.N += n
	c.Bytes += bytes
}

// Rate returns events/second over elapsed.
func (c *Counter) Rate(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.N) / elapsed.Seconds()
}

// ByteRate returns bytes/second over elapsed.
func (c *Counter) ByteRate(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.Bytes) / elapsed.Seconds()
}

// Gauge is an instantaneous level (active leases, free MRs). Unlike
// Counter it goes both ways; it remembers the high-water mark so a
// one-shot snapshot at the end of an experiment still reflects the peak.
type Gauge struct {
	Value int64
	Peak  int64
}

// Set replaces the current level.
func (g *Gauge) Set(v int64) {
	g.Value = v
	if v > g.Peak {
		g.Peak = v
	}
}

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) { g.Set(g.Value + delta) }

// Distribution summarizes a stream of sizes (heartbeat batch widths,
// grant counts): count, sum, min, max. Cheaper than a Histogram and
// sufficient for gauging how well batching amortizes round trips.
type Distribution struct {
	N   int64
	Sum int64
	Min int64
	Max int64
}

// Observe records one size.
func (d *Distribution) Observe(v int64) {
	if d.N == 0 || v < d.Min {
		d.Min = v
	}
	if v > d.Max {
		d.Max = v
	}
	d.N++
	d.Sum += v
}

// Mean returns the average observed size.
func (d *Distribution) Mean() float64 {
	if d.N == 0 {
		return 0
	}
	return float64(d.Sum) / float64(d.N)
}

// Merge folds other into d.
func (d *Distribution) Merge(other Distribution) {
	if other.N == 0 {
		return
	}
	if d.N == 0 || other.Min < d.Min {
		d.Min = other.Min
	}
	if other.Max > d.Max {
		d.Max = other.Max
	}
	d.N += other.N
	d.Sum += other.Sum
}

// Point is one sample in a time series.
type Point struct {
	At    time.Duration
	Value float64
}

// Series accumulates (time, value) samples for drill-down plots.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(at time.Duration, v float64) {
	s.Points = append(s.Points, Point{At: at, Value: v})
}

// Last returns the most recent value, or 0.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Value
}

// Mean returns the average of all sample values.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.Value
	}
	return sum / float64(len(s.Points))
}
