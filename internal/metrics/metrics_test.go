package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != time.Microsecond {
		t.Fatalf("min = %v", h.Min())
	}
	if h.Max() != 100*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 49*time.Microsecond || mean > 52*time.Microsecond {
		t.Fatalf("mean = %v, want ~50.5µs", mean)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		h.Observe(time.Duration(rng.Intn(1000000)) * time.Nanosecond)
	}
	// Uniform [0,1ms): p50 ~ 500µs, p99 ~ 990µs; allow 15% bucket error.
	p50 := h.P50().Seconds()
	if p50 < 425e-6 || p50 > 575e-6 {
		t.Fatalf("p50 = %v", h.P50())
	}
	p99 := h.P99().Seconds()
	if p99 < 850e-6 || p99 > 1100e-6 {
		t.Fatalf("p99 = %v", h.P99())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(time.Millisecond)
	b.Observe(3 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 2 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Max() != 3*time.Millisecond || a.Min() != time.Millisecond {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
	if a.Mean() != 2*time.Millisecond {
		t.Fatalf("mean = %v", a.Mean())
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-time.Second)
	if h.Min() != 0 {
		t.Fatalf("negative observation not clamped: %v", h.Min())
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Observe(time.Duration(v))
		}
		prev := time.Duration(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			if cur < h.Min() || cur > h.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merge preserves count and sum.
func TestMergePreservesSumProperty(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := NewHistogram(), NewHistogram()
		var want int64
		for _, x := range xs {
			a.Observe(time.Duration(x))
			want += int64(x)
		}
		for _, y := range ys {
			b.Observe(time.Duration(y))
			want += int64(y)
		}
		a.Merge(b)
		return a.Count() == int64(len(xs)+len(ys)) && int64(a.Sum()) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterRates(t *testing.T) {
	var c Counter
	c.Add(10, 8192*10)
	if got := c.Rate(time.Second); got != 10 {
		t.Fatalf("rate = %v", got)
	}
	if got := c.ByteRate(2 * time.Second); got != 8192*5 {
		t.Fatalf("byte rate = %v", got)
	}
	if c.Rate(0) != 0 {
		t.Fatal("zero elapsed should give zero rate")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.Mean() != 0 {
		t.Fatal("empty series should report zeros")
	}
	s.Add(time.Second, 1)
	s.Add(2*time.Second, 3)
	if s.Last() != 3 {
		t.Fatalf("last = %v", s.Last())
	}
	if s.Mean() != 2 {
		t.Fatalf("mean = %v", s.Mean())
	}
}
