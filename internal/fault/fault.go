// Package fault defines the repository-wide failure taxonomy and retry
// machinery for the best-effort remote-memory tier (Table 1 of the
// paper: leases expire, donors reclaim memory, remote nodes crash).
//
// Every layer — metastore, broker, rmem, core, vfs — wraps its private
// sentinels over the five canonical errors here, so a consumer can
// classify any failure with errors.Is regardless of which layer produced
// it:
//
//	ErrRetryable   transient; the operation may succeed if retried
//	ErrRevoked     the lease or memory region is permanently gone
//	ErrUnavailable the backing store cannot serve this access right now
//	ErrNotFound    the named object does not exist
//	ErrClosed      the object was closed and must not be used
//	ErrCorrupt     stored bytes failed integrity verification
//
// RetryPolicy implements the exponential-backoff-with-jitter loop the
// file layer uses for lease renewal and re-leasing after revocation:
// retries burn only virtual time, so policies are tuned for the
// simulated cluster's RPC costs, not wall clocks.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"remotedb/internal/sim"
)

// The canonical error classes. Layer-specific sentinels wrap exactly one
// of these (plus whatever context they add), keeping errors.Is chains
// intact end to end.
var (
	// ErrRetryable marks transient failures: a partitioned metastore, a
	// momentarily exhausted memory pool. Retrying with backoff is the
	// correct response.
	ErrRetryable = errors.New("transient failure (retryable)")
	// ErrRevoked marks a lease or memory region that is permanently
	// gone: renewal is pointless, the holder must lease a replacement.
	ErrRevoked = errors.New("lease or memory region revoked")
	// ErrUnavailable marks a backing store that cannot serve an access:
	// consumers fall back (disk, base file, recomputation), never treat
	// it as corruption.
	ErrUnavailable = errors.New("backing store unavailable")
	// ErrNotFound marks a missing named object (file, node, lease).
	ErrNotFound = errors.New("not found")
	// ErrClosed marks use-after-close.
	ErrClosed = errors.New("closed")
	// ErrCorrupt marks bytes that failed end-to-end integrity
	// verification (checksum or generation mismatch): a bit flip, a torn
	// write, or a stale replica. The bytes must never be used; consumers
	// fall back exactly as for ErrUnavailable while the integrity layer
	// repairs from a replica or re-populates via salvage.
	ErrCorrupt = errors.New("data failed integrity verification (corrupt)")
	// ErrSlow marks an operation abandoned because it blew its deadline
	// budget: the donor is alive but too slow to be useful (reclaiming
	// under pressure, NIC-saturated, about to revoke). It wraps
	// ErrRetryable — a slow donor is survivable exactly like a transient
	// failure: retry elsewhere, fall back a tier, or hedge — so every
	// existing Retryable() classification and fallback ladder handles it
	// with no new cases.
	ErrSlow = fmt.Errorf("deadline budget exceeded (slow): %w", ErrRetryable)
)

// Retryable reports whether err should be retried (wraps ErrRetryable).
func Retryable(err error) bool { return errors.Is(err, ErrRetryable) }

// Slow reports whether err is a blown deadline budget (wraps ErrSlow).
func Slow(err error) bool { return errors.Is(err, ErrSlow) }

// RetryPolicy parameterizes the exponential-backoff retry loop.
type RetryPolicy struct {
	// MaxAttempts bounds the total number of tries (including the
	// first). Zero or negative means a single attempt (no retry).
	MaxAttempts int
	// BaseDelay is the sleep after the first failure.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
	// Multiplier scales the delay each round (values <= 1 mean constant
	// backoff at BaseDelay).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in
	// [0, 1]: the actual sleep is delay * (1 - Jitter + Jitter*U[0,2)),
	// de-synchronizing renewal herds after a metastore partition heals.
	Jitter float64
}

// DefaultRetryPolicy mirrors a production storage client: five attempts,
// 1 ms base doubling to a 100 ms cap, 20% jitter. All durations are
// virtual time.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
	}
}

// Enabled reports whether the policy allows at least one retry.
func (rp RetryPolicy) Enabled() bool { return rp.MaxAttempts > 1 }

// Backoff returns the sleep before retry number attempt (attempt 1 is
// the first retry). rng may be nil for a deterministic, jitter-free
// schedule.
func (rp RetryPolicy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := float64(rp.BaseDelay)
	mult := rp.Multiplier
	if mult < 1 {
		mult = 1
	}
	for i := 1; i < attempt; i++ {
		d *= mult
		if rp.MaxDelay > 0 && d >= float64(rp.MaxDelay) {
			d = float64(rp.MaxDelay)
			break
		}
	}
	if rp.MaxDelay > 0 && d > float64(rp.MaxDelay) {
		d = float64(rp.MaxDelay)
	}
	if rp.Jitter > 0 && rng != nil {
		d *= 1 - rp.Jitter + rp.Jitter*2*rng.Float64()
	}
	return time.Duration(d)
}

// Retry runs fn until it succeeds, fails with a non-retryable error, or
// exhausts the policy. Between attempts it sleeps the backoff schedule
// in virtual time on p. The returned error is the last error observed,
// wrapped with the attempt count when retries were exhausted.
func Retry(p *sim.Proc, rp RetryPolicy, fn func() error) error {
	return RetryWithin(p, rp, 0, fn)
}

// RetryWithin is Retry bounded by an absolute virtual-time deadline
// (zero means none). The loop short-circuits — returning the last error
// wrapped over ErrSlow — when the deadline has already passed or when
// the next backoff sleep would cross it: burning the remaining budget
// on a sleep that cannot be followed by an attempt helps nobody. The
// attempt itself is never interrupted; per-op cancellation is the
// transport's job (rmem deadline-bounded reads), this guards the loop.
func RetryWithin(p *sim.Proc, rp RetryPolicy, deadline time.Duration, fn func() error) error {
	attempts := rp.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		if deadline > 0 && p.Now() >= deadline {
			if err == nil {
				return fmt.Errorf("retry: no budget left before first attempt: %w", ErrSlow)
			}
			return fmt.Errorf("retry: deadline passed after %d attempts (%w): %v", attempt-1, ErrSlow, err)
		}
		err = fn()
		if err == nil || !Retryable(err) {
			return err
		}
		if attempt >= attempts {
			return fmt.Errorf("gave up after %d attempts: %w", attempt, err)
		}
		d := rp.Backoff(attempt, p.Rand())
		if deadline > 0 && p.Now()+d >= deadline {
			return fmt.Errorf("retry: backoff would cross deadline after %d attempts (%w): %v", attempt, ErrSlow, err)
		}
		p.Sleep(d)
	}
}
