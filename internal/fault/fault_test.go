package fault

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"remotedb/internal/sim"
)

func TestBackoffSchedule(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		1 * time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		8 * time.Millisecond,
		8 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := rp.Backoff(i+1, nil); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Multiplier: 1, Jitter: 0.5}
	k := sim.New(42)
	rng := k.Rand()
	for i := 0; i < 100; i++ {
		d := rp.Backoff(1, rng)
		if d < 5*time.Millisecond || d > 15*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [5ms, 15ms]", d)
		}
	}
}

func TestRetryStopsOnNonRetryable(t *testing.T) {
	permanent := errors.New("permanent")
	k := sim.New(1)
	k.Go("test", func(p *sim.Proc) {
		calls := 0
		err := Retry(p, DefaultRetryPolicy(), func() error {
			calls++
			return permanent
		})
		if !errors.Is(err, permanent) {
			t.Errorf("err = %v, want permanent", err)
		}
		if calls != 1 {
			t.Errorf("non-retryable error retried %d times", calls)
		}
	})
	k.Run(0)
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	k := sim.New(1)
	k.Go("test", func(p *sim.Proc) {
		calls := 0
		start := p.Now()
		err := Retry(p, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Multiplier: 2}, func() error {
			calls++
			if calls < 3 {
				return fmt.Errorf("flaky: %w", ErrRetryable)
			}
			return nil
		})
		if err != nil {
			t.Errorf("retry should have succeeded: %v", err)
		}
		if calls != 3 {
			t.Errorf("calls = %d, want 3", calls)
		}
		// Two backoffs: 1 ms + 2 ms of virtual time.
		if elapsed := p.Now() - start; elapsed != 3*time.Millisecond {
			t.Errorf("elapsed = %v, want 3ms of virtual backoff", elapsed)
		}
	})
	k.Run(0)
}

func TestRetryExhaustsAttempts(t *testing.T) {
	k := sim.New(1)
	k.Go("test", func(p *sim.Proc) {
		calls := 0
		err := Retry(p, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}, func() error {
			calls++
			return fmt.Errorf("still down: %w", ErrRetryable)
		})
		if calls != 3 {
			t.Errorf("calls = %d, want 3", calls)
		}
		if !errors.Is(err, ErrRetryable) {
			t.Errorf("exhausted error should stay classified retryable: %v", err)
		}
	})
	k.Run(0)
}

func TestTaxonomyDistinct(t *testing.T) {
	all := []error{ErrRetryable, ErrRevoked, ErrUnavailable, ErrNotFound, ErrClosed}
	for i, a := range all {
		for j, b := range all {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("errors.Is(%v, %v) = %v", a, b, i == j)
			}
		}
	}
}
