package fault

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"remotedb/internal/sim"
)

func TestBackoffSchedule(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		1 * time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		8 * time.Millisecond,
		8 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := rp.Backoff(i+1, nil); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, Multiplier: 1, Jitter: 0.5}
	k := sim.New(42)
	rng := k.Rand()
	for i := 0; i < 100; i++ {
		d := rp.Backoff(1, rng)
		if d < 5*time.Millisecond || d > 15*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [5ms, 15ms]", d)
		}
	}
}

func TestRetryStopsOnNonRetryable(t *testing.T) {
	permanent := errors.New("permanent")
	k := sim.New(1)
	k.Go("test", func(p *sim.Proc) {
		calls := 0
		err := Retry(p, DefaultRetryPolicy(), func() error {
			calls++
			return permanent
		})
		if !errors.Is(err, permanent) {
			t.Errorf("err = %v, want permanent", err)
		}
		if calls != 1 {
			t.Errorf("non-retryable error retried %d times", calls)
		}
	})
	k.Run(0)
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	k := sim.New(1)
	k.Go("test", func(p *sim.Proc) {
		calls := 0
		start := p.Now()
		err := Retry(p, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Multiplier: 2}, func() error {
			calls++
			if calls < 3 {
				return fmt.Errorf("flaky: %w", ErrRetryable)
			}
			return nil
		})
		if err != nil {
			t.Errorf("retry should have succeeded: %v", err)
		}
		if calls != 3 {
			t.Errorf("calls = %d, want 3", calls)
		}
		// Two backoffs: 1 ms + 2 ms of virtual time.
		if elapsed := p.Now() - start; elapsed != 3*time.Millisecond {
			t.Errorf("elapsed = %v, want 3ms of virtual backoff", elapsed)
		}
	})
	k.Run(0)
}

func TestRetryExhaustsAttempts(t *testing.T) {
	k := sim.New(1)
	k.Go("test", func(p *sim.Proc) {
		calls := 0
		err := Retry(p, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}, func() error {
			calls++
			return fmt.Errorf("still down: %w", ErrRetryable)
		})
		if calls != 3 {
			t.Errorf("calls = %d, want 3", calls)
		}
		if !errors.Is(err, ErrRetryable) {
			t.Errorf("exhausted error should stay classified retryable: %v", err)
		}
	})
	k.Run(0)
}

func TestTaxonomyDistinct(t *testing.T) {
	all := []error{ErrRetryable, ErrRevoked, ErrUnavailable, ErrNotFound, ErrClosed}
	for i, a := range all {
		for j, b := range all {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("errors.Is(%v, %v) = %v", a, b, i == j)
			}
		}
	}
}

func TestRetryWithinNoBudgetBeforeFirstAttempt(t *testing.T) {
	k := sim.New(1)
	k.Go("test", func(p *sim.Proc) {
		p.Sleep(10 * time.Millisecond)
		calls := 0
		err := RetryWithin(p, DefaultRetryPolicy(), 5*time.Millisecond, func() error {
			calls++
			return nil
		})
		if calls != 0 {
			t.Errorf("fn ran %d times past a spent deadline", calls)
		}
		if !Slow(err) || !Retryable(err) {
			t.Errorf("want ErrSlow (retryable), got %v", err)
		}
	})
	k.Run(0)
}

func TestRetryWithinBackoffWouldCrossDeadline(t *testing.T) {
	k := sim.New(1)
	k.Go("test", func(p *sim.Proc) {
		calls := 0
		// 10 ms base backoff against a 5 ms deadline: the first failure
		// must short-circuit instead of sleeping through the budget.
		rp := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond}
		start := p.Now()
		err := RetryWithin(p, rp, p.Now()+5*time.Millisecond, func() error {
			calls++
			return fmt.Errorf("down: %w", ErrRetryable)
		})
		if calls != 1 {
			t.Errorf("calls = %d, want 1", calls)
		}
		if !Slow(err) {
			t.Errorf("want ErrSlow, got %v", err)
		}
		if waited := p.Now() - start; waited != 0 {
			t.Errorf("slept %v instead of short-circuiting", waited)
		}
	})
	k.Run(0)
}

func TestRetryWithinDeadlineGenerousEnough(t *testing.T) {
	k := sim.New(1)
	k.Go("test", func(p *sim.Proc) {
		calls := 0
		rp := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
		err := RetryWithin(p, rp, p.Now()+time.Minute, func() error {
			calls++
			if calls < 3 {
				return fmt.Errorf("down: %w", ErrRetryable)
			}
			return nil
		})
		if err != nil || calls != 3 {
			t.Errorf("err=%v calls=%d, want success on attempt 3", err, calls)
		}
	})
	k.Run(0)
}

func TestRetryWithinNonRetryablePassesThrough(t *testing.T) {
	k := sim.New(1)
	k.Go("test", func(p *sim.Proc) {
		want := fmt.Errorf("gone: %w", ErrRevoked)
		err := RetryWithin(p, DefaultRetryPolicy(), p.Now()+time.Minute, func() error { return want })
		if !errors.Is(err, ErrRevoked) || Slow(err) {
			t.Errorf("non-retryable should pass through untouched: %v", err)
		}
	})
	k.Run(0)
}


func TestBackoffCap(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Multiplier: 2}
	for attempt := 1; attempt <= 10; attempt++ {
		if d := rp.Backoff(attempt, nil); d > 4*time.Millisecond {
			t.Errorf("attempt %d: backoff %v exceeds cap", attempt, d)
		}
	}
	if d := rp.Backoff(10, nil); d != 4*time.Millisecond {
		t.Errorf("deep attempt should sit at the cap, got %v", d)
	}
}

func TestSlowClassification(t *testing.T) {
	// ErrSlow is deliberately a subclass of ErrRetryable, and stays
	// classified through arbitrary %w chains like the ones rmem and core
	// build.
	if !Retryable(ErrSlow) {
		t.Error("ErrSlow must be retryable")
	}
	wrapped := fmt.Errorf("rmem: transfer deadline exceeded (%w)", ErrSlow)
	doubly := fmt.Errorf("core: read of block 7 blew its budget: %w", wrapped)
	for _, err := range []error{ErrSlow, wrapped, doubly} {
		if !Slow(err) || !Retryable(err) {
			t.Errorf("%v lost its classification", err)
		}
	}
	for _, err := range []error{ErrRetryable, ErrRevoked, ErrUnavailable, ErrCorrupt} {
		if Slow(err) {
			t.Errorf("%v must not classify as slow", err)
		}
	}
}
