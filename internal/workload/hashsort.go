package workload

import (
	"time"

	"remotedb/internal/engine"
	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/row"
	"remotedb/internal/sim"
)

// HashSortConfig is the paper's Hash+Sort micro-benchmark (Section
// 5.2.2): lineitem ⋈ orders on orderkey, top 100,000 by extendedprice.
// The join's hash table and the top-N sort both exceed the memory grant
// and spill to TempDB; TempDB placement is the experiment.
type HashSortConfig struct {
	Orders   int // orders rows (paper SF200: 300M; scaled: 150K)
	Lineitem int // lineitem rows (~4 per order)
	TopN     int // paper: 100,000
}

// DefaultHashSort mirrors Table 4's Hash+Sort row.
func DefaultHashSort() HashSortConfig {
	return HashSortConfig{Orders: 300000, Lineitem: 1200000, TopN: 100000}
}

func ordersSchema() *row.Schema {
	return row.NewSchema(
		row.Column{Name: "orderkey", Type: row.Int64},
		row.Column{Name: "custkey", Type: row.Int64},
		row.Column{Name: "orderstatus", Type: row.String},
		row.Column{Name: "totalprice", Type: row.Float64},
		row.Column{Name: "orderdate", Type: row.Int64},
	)
}

func lineitemSchema() *row.Schema {
	return row.NewSchema(
		row.Column{Name: "orderkey", Type: row.Int64},
		row.Column{Name: "linenumber", Type: row.Int64},
		row.Column{Name: "partkey", Type: row.Int64},
		row.Column{Name: "quantity", Type: row.Float64},
		row.Column{Name: "extendedprice", Type: row.Float64},
		row.Column{Name: "discount", Type: row.Float64},
		row.Column{Name: "shipdate", Type: row.Int64},
	)
}

// HashSort holds the loaded tables.
type HashSort struct {
	Cfg      HashSortConfig
	Eng      *engine.Engine
	Orders   *catalog.Table
	Lineitem *catalog.Table
}

// NewHashSort loads the two tables, clustered on their order keys.
func NewHashSort(p *sim.Proc, eng *engine.Engine, cfg HashSortConfig) (*HashSort, error) {
	orders, err := eng.Catalog.CreateTable(p, "orders", ordersSchema(), "orderkey")
	if err != nil {
		return nil, err
	}
	lineitem, err := eng.Catalog.CreateTable(p, "lineitem", lineitemSchema(), "orderkey", "linenumber")
	if err != nil {
		return nil, err
	}
	otuples := make([]row.Tuple, cfg.Orders)
	for i := range otuples {
		otuples[i] = row.Tuple{
			int64(i), int64(i % 15000), "O",
			float64((i*7919)%100000) / 10, int64(19920101 + i%2400),
		}
	}
	if err := orders.BulkLoad(p, otuples); err != nil {
		return nil, err
	}
	perOrder := cfg.Lineitem / cfg.Orders
	if perOrder < 1 {
		perOrder = 1
	}
	ltuples := make([]row.Tuple, 0, cfg.Lineitem)
	for i := 0; len(ltuples) < cfg.Lineitem; i++ {
		for l := 0; l < perOrder && len(ltuples) < cfg.Lineitem; l++ {
			n := len(ltuples)
			ltuples = append(ltuples, row.Tuple{
				int64(i % cfg.Orders), int64(l), int64(n % 20000),
				float64(n%50 + 1), float64((n*104729)%1000000) / 100,
				float64(n%10) / 100, int64(19920101 + n%2400),
			})
		}
	}
	if err := lineitem.BulkLoad(p, ltuples); err != nil {
		return nil, err
	}
	if err := eng.BP.FlushAll(p); err != nil {
		return nil, err
	}
	return &HashSort{Cfg: cfg, Eng: eng, Orders: orders, Lineitem: lineitem}, nil
}

// Plan builds the paper's execution plan (Figure 2): hash join with the
// orders side as build input, then Top N Sort on extendedprice.
func (w *HashSort) Plan() exec.Op {
	join := &exec.HashJoin{
		Build:     &exec.TableScan{Table: w.Orders},
		Probe:     &exec.TableScan{Table: w.Lineitem},
		BuildCols: []string{"orderkey"},
		ProbeCols: []string{"orderkey"},
	}
	return &exec.TopN{
		In:    join,
		Specs: []exec.SortSpec{{Col: "extendedprice"}},
		N:     w.Cfg.TopN,
	}
}

// Run executes the query once and returns its latency plus whether the
// join and sort spilled.
func (w *HashSort) Run(p *sim.Proc) (time.Duration, *exec.Ctx, error) {
	ctx := w.Eng.NewCtx(p)
	start := p.Now()
	_, err := exec.Run(ctx, w.Plan())
	return p.Now() - start, ctx, err
}
