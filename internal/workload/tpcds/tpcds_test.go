package tpcds

import (
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/hw/disk"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

func rig(t *testing.T, sf float64, fn func(p *sim.Proc, eng *engine.Engine, db *DB)) {
	t.Helper()
	k := sim.New(1)
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	s := cluster.NewServer(k, "db", cfg)
	k.Go("t", func(p *sim.Proc) {
		ecfg := engine.DefaultConfig(16384)
		ecfg.Buffer = buffer.DefaultConfig(16384)
		ecfg.Buffer.WriterPeriod = 0
		ecfg.Buffer.PageAccessCPU = 0
		eng, err := engine.New(p, s, engine.Files{
			Data: vfs.NewDeviceFile("data", disk.NullDevice{DeviceName: "null"}),
			Log:  vfs.NewMemFile("log"),
			Temp: vfs.NewMemFile("temp"),
		}, ecfg)
		if err != nil {
			t.Error(err)
			return
		}
		db, err := Load(p, eng, sf)
		if err != nil {
			t.Error(err)
			return
		}
		fn(p, eng, db)
	})
	k.Run(100 * time.Hour)
}

func TestQueryFamilyDeterministic(t *testing.T) {
	a := Queries()
	b := Queries()
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("family size %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("template %d differs: %q vs %q", i, a[i].Name, b[i].Name)
		}
	}
}

func TestAllTemplatesExecute(t *testing.T) {
	rig(t, 0.003, func(p *sim.Proc, eng *engine.Engine, db *DB) {
		for _, q := range Queries() {
			ctx := eng.NewCtx(p)
			if err := q.Run(ctx, db); err != nil {
				t.Errorf("%s failed: %v", q.Name, err)
			}
		}
	})
}

func TestSelectivityAffectsRows(t *testing.T) {
	rig(t, 0.01, func(p *sim.Proc, eng *engine.Engine, db *DB) {
		// Templates are parameterized by selectivity; higher selectivity
		// must take longer (more rows flow through the joins).
		qs := Queries()
		var loSel, hiSel *Query
		for i := range qs {
			if loSel == nil && qs[i].Name[13:22] == "sel=0.001" {
				loSel = &qs[i]
			}
			if hiSel == nil && qs[i].Name[13:22] == "sel=0.300" {
				hiSel = &qs[i]
			}
		}
		if loSel == nil || hiSel == nil {
			t.Skip("templates not found by name")
		}
		t0 := p.Now()
		if err := loSel.Run(eng.NewCtx(p), db); err != nil {
			t.Fatal(err)
		}
		loTime := p.Now() - t0
		t0 = p.Now()
		if err := hiSel.Run(eng.NewCtx(p), db); err != nil {
			t.Fatal(err)
		}
		hiTime := p.Now() - t0
		if hiTime <= loTime {
			t.Errorf("sel=0.3 (%v) should cost more than sel=0.001 (%v)", hiTime, loTime)
		}
	})
}
