// Package tpcds implements the TPC-DS stand-in for Figures 20 and 21.
// Writing faithful plans for all 99 TPC-DS queries is out of scope for a
// reproduction; per DESIGN.md §2 the package instead implements the
// benchmark's star schema in miniature (store_sales fact plus item,
// store, date_dim and customer dimensions) and generates a deterministic
// family of 50 star-join query templates whose parameters sweep the
// dimensions TPC-DS queries vary: dimension fan-in (1-3 joins), filter
// selectivity (0.1%-30%), aggregation width, and sort/top-N tails. The
// family preserves what the paper's Figure 20/21 measure: a diverse
// decision-support mix whose latency is dominated by base-table I/O when
// memory is short.
package tpcds

import (
	"fmt"

	"remotedb/internal/engine"
	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/row"
	"remotedb/internal/sim"
)

// DB holds the star schema.
type DB struct {
	SF float64

	StoreSales *catalog.Table
	Item       *catalog.Table
	Store      *catalog.Table
	DateDim    *catalog.Table
	Customer   *catalog.Table
}

// Counts returns row counts at a scale factor (sf=1 is ~2.9M fact rows,
// mirroring TPC-DS SF1's store_sales).
func Counts(sf float64) (sales, item, store, dates, customer int) {
	sales = int(2880000 * sf)
	item = int(18000 * sf)
	store = int(12*sf) + 6
	dates = 2557 // seven years of days
	customer = int(100000 * sf)
	if item < 100 {
		item = 100
	}
	if customer < 100 {
		customer = 100
	}
	return
}

func mix(i, salt int) int {
	x := uint64(i)*2654435761 + uint64(salt)*97561
	x ^= x >> 13
	x *= 1099511628211
	x ^= x >> 31
	return int(x & 0x7FFFFFFF)
}

// Load generates and loads the database.
func Load(p *sim.Proc, eng *engine.Engine, sf float64) (*DB, error) {
	db := &DB{SF: sf}
	cat := eng.Catalog
	nSales, nItem, nStore, nDates, nCust := Counts(sf)

	var err error
	if db.DateDim, err = cat.CreateTable(p, "date_dim", row.NewSchema(
		row.Column{Name: "d_date_sk", Type: row.Int64},
		row.Column{Name: "d_year", Type: row.Int64},
		row.Column{Name: "d_moy", Type: row.Int64},
		row.Column{Name: "d_dom", Type: row.Int64},
	), "d_date_sk"); err != nil {
		return nil, err
	}
	rows := make([]row.Tuple, nDates)
	for i := 0; i < nDates; i++ {
		rows[i] = row.Tuple{int64(i), int64(1998 + i/365), int64((i/30)%12 + 1), int64(i%28 + 1)}
	}
	if err := db.DateDim.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.Item, err = cat.CreateTable(p, "item", row.NewSchema(
		row.Column{Name: "i_item_sk", Type: row.Int64},
		row.Column{Name: "i_category", Type: row.Int64}, // 0..9
		row.Column{Name: "i_brand", Type: row.Int64},    // 0..99
		row.Column{Name: "i_price", Type: row.Float64},
	), "i_item_sk"); err != nil {
		return nil, err
	}
	rows = make([]row.Tuple, nItem)
	for i := 0; i < nItem; i++ {
		rows[i] = row.Tuple{int64(i), int64(mix(i, 1) % 10), int64(mix(i, 2) % 100), float64(mix(i, 3)%10000) / 100}
	}
	if err := db.Item.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.Store, err = cat.CreateTable(p, "store", row.NewSchema(
		row.Column{Name: "s_store_sk", Type: row.Int64},
		row.Column{Name: "s_state", Type: row.Int64}, // 0..49
	), "s_store_sk"); err != nil {
		return nil, err
	}
	rows = make([]row.Tuple, nStore)
	for i := 0; i < nStore; i++ {
		rows[i] = row.Tuple{int64(i), int64(mix(i, 4) % 50)}
	}
	if err := db.Store.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.Customer, err = cat.CreateTable(p, "customer", row.NewSchema(
		row.Column{Name: "c_customer_sk", Type: row.Int64},
		row.Column{Name: "c_birth_year", Type: row.Int64},
	), "c_customer_sk"); err != nil {
		return nil, err
	}
	rows = make([]row.Tuple, nCust)
	for i := 0; i < nCust; i++ {
		rows[i] = row.Tuple{int64(i), int64(1930 + mix(i, 5)%70)}
	}
	if err := db.Customer.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.StoreSales, err = cat.CreateTable(p, "store_sales", row.NewSchema(
		row.Column{Name: "ss_ticket", Type: row.Int64},
		row.Column{Name: "ss_item_sk", Type: row.Int64},
		row.Column{Name: "ss_store_sk", Type: row.Int64},
		row.Column{Name: "ss_sold_date_sk", Type: row.Int64},
		row.Column{Name: "ss_customer_sk", Type: row.Int64},
		row.Column{Name: "ss_quantity", Type: row.Int64},
		row.Column{Name: "ss_sales_price", Type: row.Float64},
		row.Column{Name: "ss_net_profit", Type: row.Float64},
	), "ss_ticket"); err != nil {
		return nil, err
	}
	rows = make([]row.Tuple, nSales)
	for i := 0; i < nSales; i++ {
		rows[i] = row.Tuple{
			int64(i), int64(mix(i, 6) % nItem), int64(mix(i, 7) % nStore),
			int64(mix(i, 8) % nDates), int64(mix(i, 9) % nCust),
			int64(mix(i, 10)%100 + 1), float64(mix(i, 11)%20000) / 100,
			float64(mix(i, 12)%10000)/100 - 30,
		}
	}
	if err := db.StoreSales.BulkLoad(p, rows); err != nil {
		return nil, err
	}
	return db, nil
}

// Query is one generated decision-support query.
type Query struct {
	ID   int
	Name string
	Run  func(c *exec.Ctx, db *DB) error
}

// Queries generates the 50-template family deterministically.
func Queries() []Query {
	var out []Query
	for i := 1; i <= 50; i++ {
		i := i
		dims := mix(i, 20)%3 + 1 // 1-3 dimension joins
		sel := []float64{0.001, 0.01, 0.05, 0.1, 0.3}[mix(i, 21)%5]
		topN := []int{0, 10, 100}[mix(i, 22)%3]
		groupCols := [][]string{
			{"i_category"},
			{"i_category", "s_state"},
			{"d_year"},
			{"i_brand"},
		}[mix(i, 23)%4]
		out = append(out, Query{
			ID:   i,
			Name: fmt.Sprintf("DS%02d dims=%d sel=%.3f top=%d", i, dims, sel, topN),
			Run: func(c *exec.Ctx, db *DB) error {
				return runTemplate(c, db, i, dims, sel, topN, groupCols)
			},
		})
	}
	return out
}

// runTemplate builds and executes one star-join plan.
func runTemplate(c *exec.Ctx, db *DB, id, dims int, sel float64, topN int, groupCols []string) error {
	ss := db.StoreSales.Schema
	tickOrd := ss.MustOrdinal("ss_ticket")
	cut := int64(sel * float64(1<<31))
	var plan exec.Op = &exec.Filter{
		In: &exec.TableScan{Table: db.StoreSales},
		Pred: func(t row.Tuple) bool {
			// Deterministic pseudo-random predicate with the template's
			// selectivity, salted by the query id.
			return int64(mix(int(t[tickOrd].(int64)), 30+id)) < cut
		},
	}
	// Always join item (group columns need it); optionally store, date.
	plan = &exec.HashJoin{
		Build:     &exec.TableScan{Table: db.Item},
		Probe:     plan,
		BuildCols: []string{"i_item_sk"},
		ProbeCols: []string{"ss_item_sk"},
	}
	if dims >= 2 {
		plan = &exec.HashJoin{
			Build:     &exec.TableScan{Table: db.Store},
			Probe:     plan,
			BuildCols: []string{"s_store_sk"},
			ProbeCols: []string{"ss_store_sk"},
		}
	}
	if dims >= 3 {
		plan = &exec.HashJoin{
			Build:     &exec.TableScan{Table: db.DateDim},
			Probe:     plan,
			BuildCols: []string{"d_date_sk"},
			ProbeCols: []string{"ss_sold_date_sk"},
		}
	}
	// Only group by columns actually present after the chosen joins;
	// columns from unjoined dimensions degrade to the item category.
	seen := make(map[string]bool)
	var groups []string
	addGroup := func(g string) {
		if !seen[g] {
			seen[g] = true
			groups = append(groups, g)
		}
	}
	for _, g := range groupCols {
		switch {
		case g == "s_state" && dims < 2:
			addGroup("i_category")
		case g == "d_year" && dims < 3:
			addGroup("i_category")
		default:
			addGroup(g)
		}
	}
	agg := &exec.HashAgg{
		In:      plan,
		GroupBy: groups,
		Aggs: []exec.Agg{
			{Fn: exec.AggSum, Col: "ss_sales_price", As: "revenue"},
			{Fn: exec.AggSum, Col: "ss_net_profit", As: "profit"},
			{Fn: exec.AggCount, As: "cnt"},
		},
	}
	if topN > 0 {
		return drainOp(c, &exec.TopN{In: agg, Specs: []exec.SortSpec{{Col: "revenue", Desc: true}}, N: topN})
	}
	return drainOp(c, &exec.Sort{In: agg, Specs: []exec.SortSpec{{Col: "revenue", Desc: true}}})
}

func drainOp(c *exec.Ctx, op exec.Op) error {
	_, err := exec.Run(c, op)
	return err
}
