// Package tpch implements the TPC-H stand-in used by Figures 15, 18 and
// 19: the eight-table schema in miniature, a deterministic data
// generator with the benchmark's cardinality ratios, and builder-based
// logical plans for the 22 queries, optimized and cached by the plan
// layer (internal/engine/plan). Plans are simplified (no correlated
// subquery machinery; EXISTS/IN rewritten as joins or aggregate filters)
// but keep each query's shape: which tables are scanned, which joins can
// spill, what is aggregated and sorted. Per DESIGN.md §2 the scale
// factor is ~1000x below the paper's SF200, preserving the paper's
// memory:data pressure ratios via the experiment configs.
package tpch

import (
	"fmt"

	"remotedb/internal/engine"
	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/plan"
	"remotedb/internal/engine/row"
	"remotedb/internal/sim"
)

// DB holds the loaded tables.
type DB struct {
	SF float64

	Region, Nation, Supplier, Customer, Part, PartSupp, Orders, Lineitem *catalog.Table

	// Planner runs the queries: plan cache + cost-based lowering. Load
	// wires it to the owning engine's planner.
	Planner *plan.Planner
}

// planner returns the wired planner, or a standalone default for DBs
// assembled without Load (tests).
func (db *DB) planner() *plan.Planner {
	if db.Planner == nil {
		db.Planner = plan.NewPlanner(nil, 0)
	}
	return db.Planner
}

// Counts returns the row counts for a scale factor.
func Counts(sf float64) (supplier, customer, part, partsupp, orders, lineitem int) {
	supplier = int(10000 * sf)
	customer = int(150000 * sf)
	part = int(200000 * sf)
	partsupp = 4 * part
	orders = int(1500000 * sf)
	lineitem = 4 * orders
	if supplier < 10 {
		supplier = 10
	}
	if customer < 100 {
		customer = 100
	}
	if part < 100 {
		part = 100
	}
	return
}

var (
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipmodes  = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	returnflag = []string{"A", "N", "R"}
	linestatus = []string{"F", "O"}
	brands     = []string{"Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"}
	types      = []string{"ECONOMY ANODIZED STEEL", "STANDARD POLISHED BRASS", "PROMO BURNISHED COPPER", "SMALL PLATED TIN", "MEDIUM BRUSHED NICKEL", "PROMO PLATED STEEL"}
	containers = []string{"SM CASE", "MED BOX", "LG JAR", "JUMBO PKG", "WRAP BAG"}
	nations    = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "RUSSIA", "SAUDI ARABIA", "VIETNAM", "UNITED KINGDOM", "UNITED STATES"}
	regions    = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
)

// date packs y/m/d as yyyymmdd.
func date(y, m, d int) int64 { return int64(y*10000 + m*100 + d) }

// mix is a cheap deterministic hash for column synthesis.
func mix(i, salt int) int {
	x := uint64(i)*2654435761 + uint64(salt)*40503
	x ^= x >> 13
	x *= 1099511628211
	x ^= x >> 31
	return int(x & 0x7FFFFFFF)
}

// Load generates and bulk-loads the database at scale factor sf, with
// the DTA-style secondary indexes the paper tunes (Section 5.2).
func Load(p *sim.Proc, eng *engine.Engine, sf float64) (*DB, error) {
	db := &DB{SF: sf, Planner: eng.Planner}
	cat := eng.Catalog
	nSupp, nCust, nPart, nPS, nOrd, nLine := Counts(sf)

	var err error
	if db.Region, err = cat.CreateTable(p, "region", row.NewSchema(
		row.Column{Name: "regionkey", Type: row.Int64},
		row.Column{Name: "name", Type: row.String},
	), "regionkey"); err != nil {
		return nil, err
	}
	var rows []row.Tuple
	for i, name := range regions {
		rows = append(rows, row.Tuple{int64(i), name})
	}
	if err := db.Region.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.Nation, err = cat.CreateTable(p, "nation", row.NewSchema(
		row.Column{Name: "nationkey", Type: row.Int64},
		row.Column{Name: "name", Type: row.String},
		row.Column{Name: "regionkey", Type: row.Int64},
	), "nationkey"); err != nil {
		return nil, err
	}
	rows = rows[:0]
	for i, name := range nations {
		rows = append(rows, row.Tuple{int64(i), name, int64(i % 5)})
	}
	if err := db.Nation.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.Supplier, err = cat.CreateTable(p, "supplier", row.NewSchema(
		row.Column{Name: "suppkey", Type: row.Int64},
		row.Column{Name: "name", Type: row.String},
		row.Column{Name: "nationkey", Type: row.Int64},
		row.Column{Name: "acctbal", Type: row.Float64},
	), "suppkey"); err != nil {
		return nil, err
	}
	rows = rows[:0]
	for i := 0; i < nSupp; i++ {
		rows = append(rows, row.Tuple{
			int64(i), fmt.Sprintf("Supplier#%09d", i), int64(mix(i, 1) % 25),
			float64(mix(i, 2)%100000) / 10,
		})
	}
	if err := db.Supplier.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.Customer, err = cat.CreateTable(p, "customer", row.NewSchema(
		row.Column{Name: "custkey", Type: row.Int64},
		row.Column{Name: "name", Type: row.String},
		row.Column{Name: "nationkey", Type: row.Int64},
		row.Column{Name: "acctbal", Type: row.Float64},
		row.Column{Name: "mktsegment", Type: row.String},
	), "custkey"); err != nil {
		return nil, err
	}
	rows = rows[:0]
	for i := 0; i < nCust; i++ {
		rows = append(rows, row.Tuple{
			int64(i), fmt.Sprintf("Customer#%09d", i), int64(mix(i, 3) % 25),
			float64(mix(i, 4)%100000)/10 - 999,
			segments[mix(i, 5)%len(segments)],
		})
	}
	if err := db.Customer.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.Part, err = cat.CreateTable(p, "part", row.NewSchema(
		row.Column{Name: "partkey", Type: row.Int64},
		row.Column{Name: "name", Type: row.String},
		row.Column{Name: "brand", Type: row.String},
		row.Column{Name: "type", Type: row.String},
		row.Column{Name: "size", Type: row.Int64},
		row.Column{Name: "container", Type: row.String},
		row.Column{Name: "retailprice", Type: row.Float64},
	), "partkey"); err != nil {
		return nil, err
	}
	rows = rows[:0]
	for i := 0; i < nPart; i++ {
		rows = append(rows, row.Tuple{
			int64(i), fmt.Sprintf("part-%d", i),
			brands[mix(i, 6)%len(brands)], types[mix(i, 7)%len(types)],
			int64(mix(i, 8)%50 + 1), containers[mix(i, 9)%len(containers)],
			900 + float64(i%200),
		})
	}
	if err := db.Part.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.PartSupp, err = cat.CreateTable(p, "partsupp", row.NewSchema(
		row.Column{Name: "partkey", Type: row.Int64},
		row.Column{Name: "suppkey", Type: row.Int64},
		row.Column{Name: "availqty", Type: row.Int64},
		row.Column{Name: "supplycost", Type: row.Float64},
	), "partkey", "suppkey"); err != nil {
		return nil, err
	}
	rows = rows[:0]
	for i := 0; i < nPS; i++ {
		// Four distinct suppliers per part: a hashed base plus strided
		// offsets, all reduced mod nSupp without collision.
		base := mix(i/4, 10) % nSupp
		supp := (base + (i%4)*(nSupp/4)) % nSupp
		rows = append(rows, row.Tuple{
			int64(i / 4), int64(supp),
			int64(mix(i, 11)%9999 + 1), float64(mix(i, 12)%100000) / 100,
		})
	}
	if err := db.PartSupp.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.Orders, err = cat.CreateTable(p, "orders", row.NewSchema(
		row.Column{Name: "orderkey", Type: row.Int64},
		row.Column{Name: "custkey", Type: row.Int64},
		row.Column{Name: "orderstatus", Type: row.String},
		row.Column{Name: "totalprice", Type: row.Float64},
		row.Column{Name: "orderdate", Type: row.Int64},
		row.Column{Name: "orderpriority", Type: row.String},
	), "orderkey"); err != nil {
		return nil, err
	}
	rows = rows[:0]
	for i := 0; i < nOrd; i++ {
		y := 1992 + mix(i, 13)%7
		m := mix(i, 14)%12 + 1
		d := mix(i, 15)%28 + 1
		rows = append(rows, row.Tuple{
			int64(i), int64(mix(i, 16) % nCust), []string{"F", "O", "P"}[mix(i, 17)%3],
			float64(mix(i, 18)%500000) / 10, date(y, m, d),
			priorities[mix(i, 19)%len(priorities)],
		})
	}
	if err := db.Orders.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.Lineitem, err = cat.CreateTable(p, "lineitem", row.NewSchema(
		row.Column{Name: "orderkey", Type: row.Int64},
		row.Column{Name: "linenumber", Type: row.Int64},
		row.Column{Name: "partkey", Type: row.Int64},
		row.Column{Name: "suppkey", Type: row.Int64},
		row.Column{Name: "quantity", Type: row.Float64},
		row.Column{Name: "extendedprice", Type: row.Float64},
		row.Column{Name: "discount", Type: row.Float64},
		row.Column{Name: "tax", Type: row.Float64},
		row.Column{Name: "returnflag", Type: row.String},
		row.Column{Name: "linestatus", Type: row.String},
		row.Column{Name: "shipdate", Type: row.Int64},
		row.Column{Name: "receiptdate", Type: row.Int64},
		row.Column{Name: "shipmode", Type: row.String},
	), "orderkey", "linenumber"); err != nil {
		return nil, err
	}
	rows = rows[:0]
	perOrder := nLine / nOrd
	if perOrder < 1 {
		perOrder = 1
	}
	for o := 0; o < nOrd; o++ {
		for l := 0; l < perOrder; l++ {
			i := o*perOrder + l
			y := 1992 + mix(i, 20)%7
			m := mix(i, 21)%12 + 1
			d := mix(i, 22)%28 + 1
			ship := date(y, m, d)
			rows = append(rows, row.Tuple{
				int64(o), int64(l), int64(mix(i, 23) % nPart), int64(mix(i, 24) % nSupp),
				float64(mix(i, 25)%50 + 1), float64(mix(i, 26)%100000)/10 + 900,
				float64(mix(i, 27)%11) / 100, float64(mix(i, 28)%9) / 100,
				returnflag[mix(i, 29)%3], linestatus[mix(i, 30)%2],
				ship, ship + 3, shipmodes[mix(i, 31)%len(shipmodes)],
			})
		}
	}
	if err := db.Lineitem.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	// DTA-style tuned indexes (Section 5.2).
	if _, err := cat.CreateIndex(p, "ix_orders_custkey", "orders", "custkey"); err != nil {
		return nil, err
	}
	if _, err := cat.CreateIndex(p, "ix_lineitem_partkey", "lineitem", "partkey"); err != nil {
		return nil, err
	}
	return db, nil
}
