package tpch

import (
	"strings"

	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/row"
)

// Query is one of the 22 TPC-H queries, executable against a DB. Run
// may execute several plan stages (the subquery pipelines).
type Query struct {
	ID   int
	Name string
	Run  func(c *exec.Ctx, db *DB) error
}

// drain runs an operator tree to completion.
func drain(c *exec.Ctx, op exec.Op) error {
	_, err := exec.Run(c, op)
	return err
}

// colI / colF / colS fetch typed columns with schema lookup done once at
// plan build.
func pred(s *row.Schema, col string, f func(v interface{}) bool) func(row.Tuple) bool {
	o := s.MustOrdinal(col)
	return func(t row.Tuple) bool { return f(t[o]) }
}

func and(ps ...func(row.Tuple) bool) func(row.Tuple) bool {
	return func(t row.Tuple) bool {
		for _, p := range ps {
			if !p(t) {
				return false
			}
		}
		return true
	}
}

// Queries returns the 22-query set.
func Queries() []Query {
	return []Query{
		{1, "Q1 pricing summary", q1},
		{2, "Q2 minimum cost supplier", q2},
		{3, "Q3 shipping priority", q3},
		{4, "Q4 order priority checking", q4},
		{5, "Q5 local supplier volume", q5},
		{6, "Q6 forecasting revenue", q6},
		{7, "Q7 volume shipping", q7},
		{8, "Q8 national market share", q8},
		{9, "Q9 product type profit", q9},
		{10, "Q10 returned item reporting", q10},
		{11, "Q11 important stock", q11},
		{12, "Q12 shipping modes", q12},
		{13, "Q13 customer distribution", q13},
		{14, "Q14 promotion effect", q14},
		{15, "Q15 top supplier", q15},
		{16, "Q16 parts/supplier relationship", q16},
		{17, "Q17 small-quantity-order revenue", q17},
		{18, "Q18 large volume customer", q18},
		{19, "Q19 discounted revenue", q19},
		{20, "Q20 potential part promotion", q20},
		{21, "Q21 suppliers who kept orders waiting", q21},
		{22, "Q22 global sales opportunity", q22},
	}
}

// QueryByID returns one query.
func QueryByID(id int) Query {
	for _, q := range Queries() {
		if q.ID == id {
			return q
		}
	}
	panic("tpch: no such query")
}

func q1(c *exec.Ctx, db *DB) error {
	li := db.Lineitem.Schema
	return drain(c, &exec.Sort{
		In: &exec.HashAgg{
			In: &exec.Filter{
				In:   &exec.TableScan{Table: db.Lineitem},
				Pred: pred(li, "shipdate", func(v interface{}) bool { return v.(int64) <= 19980902 }),
			},
			GroupBy: []string{"returnflag", "linestatus"},
			Aggs: []exec.Agg{
				{Fn: exec.AggSum, Col: "quantity", As: "sum_qty"},
				{Fn: exec.AggSum, Col: "extendedprice", As: "sum_base"},
				{Fn: exec.AggAvg, Col: "quantity", As: "avg_qty"},
				{Fn: exec.AggAvg, Col: "extendedprice", As: "avg_price"},
				{Fn: exec.AggAvg, Col: "discount", As: "avg_disc"},
				{Fn: exec.AggCount, As: "count_order"},
			},
		},
		Specs: []exec.SortSpec{{Col: "returnflag"}, {Col: "linestatus"}},
	})
}

func q2(c *exec.Ctx, db *DB) error {
	pt := db.Part.Schema
	j1 := &exec.HashJoin{
		Build: &exec.Filter{
			In:   &exec.TableScan{Table: db.Part},
			Pred: pred(pt, "size", func(v interface{}) bool { return v.(int64) == 15 }),
		},
		Probe:     &exec.TableScan{Table: db.PartSupp},
		BuildCols: []string{"partkey"},
		ProbeCols: []string{"partkey"},
	}
	j2 := &exec.HashJoin{
		Build:     &exec.TableScan{Table: db.Supplier},
		Probe:     j1,
		BuildCols: []string{"suppkey"},
		ProbeCols: []string{"suppkey"},
	}
	return drain(c, &exec.TopN{
		In: &exec.HashAgg{
			In:      j2,
			GroupBy: []string{"partkey"},
			Aggs:    []exec.Agg{{Fn: exec.AggMin, Col: "supplycost", As: "min_cost"}},
		},
		Specs: []exec.SortSpec{{Col: "min_cost"}},
		N:     100,
	})
}

func q3(c *exec.Ctx, db *DB) error {
	cu, or, li := db.Customer.Schema, db.Orders.Schema, db.Lineitem.Schema
	j1 := &exec.HashJoin{
		Build: &exec.Filter{
			In:   &exec.TableScan{Table: db.Customer},
			Pred: pred(cu, "mktsegment", func(v interface{}) bool { return v.(string) == "BUILDING" }),
		},
		Probe: &exec.Filter{
			In:   &exec.TableScan{Table: db.Orders},
			Pred: pred(or, "orderdate", func(v interface{}) bool { return v.(int64) < 19950315 }),
		},
		BuildCols: []string{"custkey"},
		ProbeCols: []string{"custkey"},
	}
	j2 := &exec.HashJoin{
		Build: j1,
		Probe: &exec.Filter{
			In:   &exec.TableScan{Table: db.Lineitem},
			Pred: pred(li, "shipdate", func(v interface{}) bool { return v.(int64) > 19950315 }),
		},
		BuildCols: []string{"orderkey"},
		ProbeCols: []string{"orderkey"},
	}
	return drain(c, &exec.TopN{
		In: &exec.HashAgg{
			In:      j2,
			GroupBy: []string{"orderkey"},
			Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "revenue"}},
		},
		Specs: []exec.SortSpec{{Col: "revenue", Desc: true}},
		N:     10,
	})
}

func q4(c *exec.Ctx, db *DB) error {
	or, li := db.Orders.Schema, db.Lineitem.Schema
	j := &exec.HashJoin{
		Build: &exec.Filter{
			In: &exec.TableScan{Table: db.Orders},
			Pred: pred(or, "orderdate", func(v interface{}) bool {
				d := v.(int64)
				return d >= 19930701 && d < 19931001
			}),
		},
		Probe: &exec.Filter{
			In:   &exec.TableScan{Table: db.Lineitem},
			Pred: pred(li, "receiptdate", func(v interface{}) bool { return v.(int64)%7 != 0 }),
		},
		BuildCols: []string{"orderkey"},
		ProbeCols: []string{"orderkey"},
	}
	return drain(c, &exec.Sort{
		In: &exec.HashAgg{
			In:      j,
			GroupBy: []string{"orderpriority"},
			Aggs:    []exec.Agg{{Fn: exec.AggCount, As: "order_count"}},
		},
		Specs: []exec.SortSpec{{Col: "orderpriority"}},
	})
}

func q5(c *exec.Ctx, db *DB) error {
	or := db.Orders.Schema
	j1 := &exec.HashJoin{
		Build: &exec.TableScan{Table: db.Customer},
		Probe: &exec.Filter{
			In: &exec.TableScan{Table: db.Orders},
			Pred: pred(or, "orderdate", func(v interface{}) bool {
				d := v.(int64)
				return d >= 19940101 && d < 19950101
			}),
		},
		BuildCols: []string{"custkey"},
		ProbeCols: []string{"custkey"},
	}
	j2 := &exec.HashJoin{
		Build:     j1,
		Probe:     &exec.TableScan{Table: db.Lineitem},
		BuildCols: []string{"orderkey"},
		ProbeCols: []string{"orderkey"},
	}
	j3 := &exec.HashJoin{
		Build:     &exec.TableScan{Table: db.Nation},
		Probe:     j2,
		BuildCols: []string{"nationkey"},
		ProbeCols: []string{"nationkey"},
	}
	return drain(c, &exec.Sort{
		In: &exec.HashAgg{
			In:      j3,
			GroupBy: []string{"name"},
			Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "revenue"}},
		},
		Specs: []exec.SortSpec{{Col: "revenue", Desc: true}},
	})
}

func q6(c *exec.Ctx, db *DB) error {
	li := db.Lineitem.Schema
	return drain(c, &exec.HashAgg{
		In: &exec.Filter{
			In: &exec.TableScan{Table: db.Lineitem},
			Pred: and(
				pred(li, "shipdate", func(v interface{}) bool {
					d := v.(int64)
					return d >= 19940101 && d < 19950101
				}),
				pred(li, "discount", func(v interface{}) bool {
					d := v.(float64)
					return d >= 0.05 && d <= 0.07
				}),
				pred(li, "quantity", func(v interface{}) bool { return v.(float64) < 24 }),
			),
		},
		GroupBy: nil,
		Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "revenue"}},
	})
}

func q7(c *exec.Ctx, db *DB) error {
	su, cu := db.Supplier.Schema, db.Customer.Schema
	j1 := &exec.HashJoin{
		Build: &exec.Filter{
			In:   &exec.TableScan{Table: db.Supplier},
			Pred: pred(su, "nationkey", func(v interface{}) bool { k := v.(int64); return k == 6 || k == 7 }),
		},
		Probe:     &exec.TableScan{Table: db.Lineitem},
		BuildCols: []string{"suppkey"},
		ProbeCols: []string{"suppkey"},
	}
	j2 := &exec.HashJoin{
		Build:     j1,
		Probe:     &exec.TableScan{Table: db.Orders},
		BuildCols: []string{"orderkey"},
		ProbeCols: []string{"orderkey"},
	}
	j3 := &exec.HashJoin{
		Build: &exec.Filter{
			In:   &exec.TableScan{Table: db.Customer},
			Pred: pred(cu, "nationkey", func(v interface{}) bool { k := v.(int64); return k == 6 || k == 7 }),
		},
		Probe:     j2,
		BuildCols: []string{"custkey"},
		ProbeCols: []string{"custkey"},
	}
	return drain(c, &exec.Sort{
		In: &exec.HashAgg{
			In:      j3,
			GroupBy: []string{"nationkey"},
			Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "revenue"}},
		},
		Specs: []exec.SortSpec{{Col: "nationkey"}},
	})
}

func q8(c *exec.Ctx, db *DB) error {
	pt := db.Part.Schema
	j1 := &exec.HashJoin{
		Build: &exec.Filter{
			In:   &exec.TableScan{Table: db.Part},
			Pred: pred(pt, "type", func(v interface{}) bool { return v.(string) == "ECONOMY ANODIZED STEEL" }),
		},
		Probe:     &exec.TableScan{Table: db.Lineitem},
		BuildCols: []string{"partkey"},
		ProbeCols: []string{"partkey"},
	}
	j2 := &exec.HashJoin{
		Build:     j1,
		Probe:     &exec.TableScan{Table: db.Orders},
		BuildCols: []string{"orderkey"},
		ProbeCols: []string{"orderkey"},
	}
	agg := &exec.HashAgg{
		In:      j2,
		GroupBy: []string{"orderdate"},
		Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "volume"}},
	}
	return drain(c, &exec.TopN{In: agg, Specs: []exec.SortSpec{{Col: "volume", Desc: true}}, N: 50})
}

func q9(c *exec.Ctx, db *DB) error {
	pt := db.Part.Schema
	j1 := &exec.HashJoin{
		Build: &exec.Filter{
			In:   &exec.TableScan{Table: db.Part},
			Pred: pred(pt, "name", func(v interface{}) bool { return strings.Contains(v.(string), "7") }),
		},
		Probe:     &exec.TableScan{Table: db.Lineitem},
		BuildCols: []string{"partkey"},
		ProbeCols: []string{"partkey"},
	}
	j2 := &exec.HashJoin{
		Build:     &exec.TableScan{Table: db.Supplier},
		Probe:     j1,
		BuildCols: []string{"suppkey"},
		ProbeCols: []string{"suppkey"},
	}
	return drain(c, &exec.Sort{
		In: &exec.HashAgg{
			In:      j2,
			GroupBy: []string{"nationkey"},
			Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "profit"}},
		},
		Specs: []exec.SortSpec{{Col: "profit", Desc: true}},
	})
}

func q10(c *exec.Ctx, db *DB) error {
	or, li := db.Orders.Schema, db.Lineitem.Schema
	j1 := &exec.HashJoin{
		Build: &exec.Filter{
			In: &exec.TableScan{Table: db.Orders},
			Pred: pred(or, "orderdate", func(v interface{}) bool {
				d := v.(int64)
				return d >= 19931001 && d < 19940101
			}),
		},
		Probe: &exec.Filter{
			In:   &exec.TableScan{Table: db.Lineitem},
			Pred: pred(li, "returnflag", func(v interface{}) bool { return v.(string) == "R" }),
		},
		BuildCols: []string{"orderkey"},
		ProbeCols: []string{"orderkey"},
	}
	// Join up to customers, then a large group-by that the grant cannot
	// hold: Q10 is one of the paper's two spilling queries.
	j2 := &exec.HashJoin{
		Build:     &exec.TableScan{Table: db.Customer},
		Probe:     j1,
		BuildCols: []string{"custkey"},
		ProbeCols: []string{"custkey"},
	}
	return drain(c, &exec.TopN{
		In: &exec.HashAgg{
			In:      j2,
			GroupBy: []string{"custkey"},
			Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "revenue"}},
		},
		Specs: []exec.SortSpec{{Col: "revenue", Desc: true}},
		N:     20,
	})
}

func q11(c *exec.Ctx, db *DB) error {
	// Stage 1: total value.
	j := func() exec.Op {
		return &exec.HashJoin{
			Build:     &exec.TableScan{Table: db.Supplier},
			Probe:     &exec.TableScan{Table: db.PartSupp},
			BuildCols: []string{"suppkey"},
			ProbeCols: []string{"suppkey"},
		}
	}
	totalRows, err := exec.Collect(c, &exec.HashAgg{
		In:   j(),
		Aggs: []exec.Agg{{Fn: exec.AggSum, Col: "supplycost", As: "total"}},
	})
	if err != nil {
		return err
	}
	threshold := 0.0
	if len(totalRows) > 0 {
		threshold = totalRows[0][0].(float64) * 0.0001
	}
	// Stage 2: groups above the threshold.
	agg := &exec.HashAgg{
		In:      j(),
		GroupBy: []string{"partkey"},
		Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "supplycost", As: "value"}},
	}
	return drain(c, &exec.Sort{
		In: &exec.Filter{
			In:   agg,
			Pred: pred(agg.Schema(), "value", func(v interface{}) bool { return v.(float64) > threshold }),
		},
		Specs: []exec.SortSpec{{Col: "value", Desc: true}},
	})
}

func q12(c *exec.Ctx, db *DB) error {
	li := db.Lineitem.Schema
	j := &exec.HashJoin{
		Build: &exec.Filter{
			In: &exec.TableScan{Table: db.Lineitem},
			Pred: and(
				pred(li, "shipmode", func(v interface{}) bool { m := v.(string); return m == "MAIL" || m == "SHIP" }),
				pred(li, "receiptdate", func(v interface{}) bool {
					d := v.(int64)
					return d >= 19940101 && d < 19950101
				}),
			),
		},
		Probe:     &exec.TableScan{Table: db.Orders},
		BuildCols: []string{"orderkey"},
		ProbeCols: []string{"orderkey"},
	}
	return drain(c, &exec.Sort{
		In: &exec.HashAgg{
			In:      j,
			GroupBy: []string{"shipmode"},
			Aggs:    []exec.Agg{{Fn: exec.AggCount, As: "line_count"}},
		},
		Specs: []exec.SortSpec{{Col: "shipmode"}},
	})
}

func q13(c *exec.Ctx, db *DB) error {
	perCust := &exec.HashAgg{
		In:      &exec.TableScan{Table: db.Orders},
		GroupBy: []string{"custkey"},
		Aggs:    []exec.Agg{{Fn: exec.AggCount, As: "c_count"}},
	}
	return drain(c, &exec.Sort{
		In: &exec.HashAgg{
			In:      perCust,
			GroupBy: []string{"c_count"},
			Aggs:    []exec.Agg{{Fn: exec.AggCount, As: "custdist"}},
		},
		Specs: []exec.SortSpec{{Col: "custdist", Desc: true}},
	})
}

func q14(c *exec.Ctx, db *DB) error {
	li := db.Lineitem.Schema
	j := &exec.HashJoin{
		Build: &exec.TableScan{Table: db.Part},
		Probe: &exec.Filter{
			In: &exec.TableScan{Table: db.Lineitem},
			Pred: pred(li, "shipdate", func(v interface{}) bool {
				d := v.(int64)
				return d >= 19950901 && d < 19951001
			}),
		},
		BuildCols: []string{"partkey"},
		ProbeCols: []string{"partkey"},
	}
	return drain(c, &exec.HashAgg{
		In:   j,
		Aggs: []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "revenue"}},
	})
}

func q15(c *exec.Ctx, db *DB) error {
	li := db.Lineitem.Schema
	perSupp := &exec.HashAgg{
		In: &exec.Filter{
			In: &exec.TableScan{Table: db.Lineitem},
			Pred: pred(li, "shipdate", func(v interface{}) bool {
				d := v.(int64)
				return d >= 19960101 && d < 19960401
			}),
		},
		GroupBy: []string{"suppkey"},
		Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "total_revenue"}},
	}
	rows, err := exec.Collect(c, perSupp)
	if err != nil {
		return err
	}
	best := 0.0
	for _, t := range rows {
		if v := t[1].(float64); v > best {
			best = v
		}
	}
	rerun := &exec.HashAgg{
		In: &exec.Filter{
			In: &exec.TableScan{Table: db.Lineitem},
			Pred: pred(li, "shipdate", func(v interface{}) bool {
				d := v.(int64)
				return d >= 19960101 && d < 19960401
			}),
		},
		GroupBy: []string{"suppkey"},
		Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "total_revenue"}},
	}
	return drain(c, &exec.Filter{
		In:   rerun,
		Pred: pred(rerun.Schema(), "total_revenue", func(v interface{}) bool { return v.(float64) >= best }),
	})
}

func q16(c *exec.Ctx, db *DB) error {
	pt := db.Part.Schema
	j := &exec.HashJoin{
		Build: &exec.Filter{
			In:   &exec.TableScan{Table: db.Part},
			Pred: pred(pt, "brand", func(v interface{}) bool { return v.(string) != "Brand#45" }),
		},
		Probe:     &exec.TableScan{Table: db.PartSupp},
		BuildCols: []string{"partkey"},
		ProbeCols: []string{"partkey"},
	}
	return drain(c, &exec.Sort{
		In: &exec.HashAgg{
			In:      j,
			GroupBy: []string{"brand", "type", "size"},
			Aggs:    []exec.Agg{{Fn: exec.AggCount, As: "supplier_cnt"}},
		},
		Specs: []exec.SortSpec{{Col: "supplier_cnt", Desc: true}},
	})
}

func q17(c *exec.Ctx, db *DB) error {
	// Stage 1: average quantity per part (for the filtered brand).
	avgRows, err := exec.Collect(c, &exec.HashAgg{
		In:      &exec.TableScan{Table: db.Lineitem},
		GroupBy: []string{"partkey"},
		Aggs:    []exec.Agg{{Fn: exec.AggAvg, Col: "quantity", As: "avg_qty"}},
	})
	if err != nil {
		return err
	}
	avg := make(map[int64]float64, len(avgRows))
	for _, t := range avgRows {
		avg[t[0].(int64)] = t[1].(float64)
	}
	pt := db.Part.Schema
	li := db.Lineitem.Schema
	qo := li.MustOrdinal("quantity")
	po := li.MustOrdinal("partkey")
	j := &exec.HashJoin{
		Build: &exec.Filter{
			In: &exec.TableScan{Table: db.Part},
			Pred: and(
				pred(pt, "brand", func(v interface{}) bool { return v.(string) == "Brand#23" }),
				pred(pt, "container", func(v interface{}) bool { return v.(string) == "MED BOX" }),
			),
		},
		Probe: &exec.Filter{
			In: &exec.TableScan{Table: db.Lineitem},
			Pred: func(t row.Tuple) bool {
				return t[qo].(float64) < 0.2*avg[t[po].(int64)]
			},
		},
		BuildCols: []string{"partkey"},
		ProbeCols: []string{"partkey"},
	}
	return drain(c, &exec.HashAgg{
		In:   j,
		Aggs: []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "avg_yearly"}},
	})
}

func q18(c *exec.Ctx, db *DB) error {
	// Large-volume customers: a full group-by over lineitem (spills —
	// the paper's other spilling query), filtered, joined up.
	perOrder := &exec.HashAgg{
		In:      &exec.TableScan{Table: db.Lineitem},
		GroupBy: []string{"orderkey"},
		Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "quantity", As: "sum_qty"}},
	}
	big := &exec.Filter{
		In:   perOrder,
		Pred: pred(perOrder.Schema(), "sum_qty", func(v interface{}) bool { return v.(float64) > 70 }),
	}
	j1 := &exec.HashJoin{
		Build:     big,
		Probe:     &exec.TableScan{Table: db.Orders},
		BuildCols: []string{"orderkey"},
		ProbeCols: []string{"orderkey"},
	}
	// Re-join with lineitem to produce the detail rows, then sort: the
	// memory-hungry tail of the plan.
	j2 := &exec.HashJoin{
		Build:     j1,
		Probe:     &exec.TableScan{Table: db.Lineitem},
		BuildCols: []string{"orderkey"},
		ProbeCols: []string{"orderkey"},
	}
	return drain(c, &exec.TopN{
		In:    j2,
		Specs: []exec.SortSpec{{Col: "totalprice", Desc: true}},
		N:     100,
	})
}

func q19(c *exec.Ctx, db *DB) error {
	pt := db.Part.Schema
	li := db.Lineitem.Schema
	j := &exec.HashJoin{
		Build: &exec.Filter{
			In: &exec.TableScan{Table: db.Part},
			Pred: pred(pt, "container", func(v interface{}) bool {
				s := v.(string)
				return s == "SM CASE" || s == "MED BOX" || s == "LG JAR"
			}),
		},
		Probe: &exec.Filter{
			In:   &exec.TableScan{Table: db.Lineitem},
			Pred: pred(li, "quantity", func(v interface{}) bool { q := v.(float64); return q >= 1 && q <= 30 }),
		},
		BuildCols: []string{"partkey"},
		ProbeCols: []string{"partkey"},
	}
	return drain(c, &exec.HashAgg{
		In:   j,
		Aggs: []exec.Agg{{Fn: exec.AggSum, Col: "extendedprice", As: "revenue"}},
	})
}

func q20(c *exec.Ctx, db *DB) error {
	li := db.Lineitem.Schema
	halfQty := &exec.HashAgg{
		In: &exec.Filter{
			In: &exec.TableScan{Table: db.Lineitem},
			Pred: pred(li, "shipdate", func(v interface{}) bool {
				d := v.(int64)
				return d >= 19940101 && d < 19950101
			}),
		},
		GroupBy: []string{"partkey", "suppkey"},
		Aggs:    []exec.Agg{{Fn: exec.AggSum, Col: "quantity", As: "half_qty"}},
	}
	j := &exec.HashJoin{
		Build:     halfQty,
		Probe:     &exec.TableScan{Table: db.PartSupp},
		BuildCols: []string{"partkey", "suppkey"},
		ProbeCols: []string{"partkey", "suppkey"},
	}
	jo := j.Schema()
	availOrd := jo.MustOrdinal("availqty")
	halfOrd := jo.MustOrdinal("half_qty")
	return drain(c, &exec.HashAgg{
		In: &exec.Filter{
			In: j,
			Pred: func(t row.Tuple) bool {
				return float64(t[availOrd].(int64)) > 0.5*t[halfOrd].(float64)
			},
		},
		GroupBy: []string{"suppkey_1"},
		Aggs:    []exec.Agg{{Fn: exec.AggCount, As: "parts"}},
	})
}

func q21(c *exec.Ctx, db *DB) error {
	li := db.Lineitem.Schema
	or := db.Orders.Schema
	late := &exec.Filter{
		In:   &exec.TableScan{Table: db.Lineitem},
		Pred: pred(li, "receiptdate", func(v interface{}) bool { return v.(int64)%5 == 0 }),
	}
	j1 := &exec.HashJoin{
		Build: &exec.Filter{
			In:   &exec.TableScan{Table: db.Orders},
			Pred: pred(or, "orderstatus", func(v interface{}) bool { return v.(string) == "F" }),
		},
		Probe:     late,
		BuildCols: []string{"orderkey"},
		ProbeCols: []string{"orderkey"},
	}
	j2 := &exec.HashJoin{
		Build:     &exec.TableScan{Table: db.Supplier},
		Probe:     j1,
		BuildCols: []string{"suppkey"},
		ProbeCols: []string{"suppkey"},
	}
	return drain(c, &exec.TopN{
		In: &exec.HashAgg{
			In:      j2,
			GroupBy: []string{"name"},
			Aggs:    []exec.Agg{{Fn: exec.AggCount, As: "numwait"}},
		},
		Specs: []exec.SortSpec{{Col: "numwait", Desc: true}},
		N:     100,
	})
}

func q22(c *exec.Ctx, db *DB) error {
	cu := db.Customer.Schema
	// Stage 1: average positive account balance.
	avgRows, err := exec.Collect(c, &exec.HashAgg{
		In: &exec.Filter{
			In:   &exec.TableScan{Table: db.Customer},
			Pred: pred(cu, "acctbal", func(v interface{}) bool { return v.(float64) > 0 }),
		},
		Aggs: []exec.Agg{{Fn: exec.AggAvg, Col: "acctbal", As: "avg_bal"}},
	})
	if err != nil {
		return err
	}
	avgBal := 0.0
	if len(avgRows) > 0 {
		avgBal = avgRows[0][0].(float64)
	}
	// Stage 2: customers above average with no orders (anti join via
	// order counts).
	counts, err := exec.Collect(c, &exec.HashAgg{
		In:      &exec.TableScan{Table: db.Orders},
		GroupBy: []string{"custkey"},
		Aggs:    []exec.Agg{{Fn: exec.AggCount, As: "n"}},
	})
	if err != nil {
		return err
	}
	has := make(map[int64]bool, len(counts))
	for _, t := range counts {
		has[t[0].(int64)] = true
	}
	ck := cu.MustOrdinal("custkey")
	ab := cu.MustOrdinal("acctbal")
	return drain(c, &exec.Sort{
		In: &exec.HashAgg{
			In: &exec.Filter{
				In: &exec.TableScan{Table: db.Customer},
				Pred: func(t row.Tuple) bool {
					return t[ab].(float64) > avgBal && !has[t[ck].(int64)]
				},
			},
			GroupBy: []string{"nationkey"},
			Aggs: []exec.Agg{
				{Fn: exec.AggCount, As: "numcust"},
				{Fn: exec.AggSum, Col: "acctbal", As: "totacctbal"},
			},
		},
		Specs: []exec.SortSpec{{Col: "nationkey"}},
	})
}
