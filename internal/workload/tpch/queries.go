package tpch

import (
	"strings"

	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/plan"
	"remotedb/internal/engine/row"
)

// Query is one of the 22 TPC-H queries, executable against a DB. Run
// may execute several plan stages (the subquery pipelines). Every query
// is expressed through the plan.Builder API and runs via the DB's
// planner, so repeated executions hit the plan cache and results stream
// row by row.
type Query struct {
	ID   int
	Name string
	Run  func(c *exec.Ctx, db *DB) error
}

// run plans and drains a query, discarding the rows (the benchmark
// measures execution, not consumption).
func run(c *exec.Ctx, db *DB, b *plan.Builder) error {
	_, err := db.planner().Run(c, b)
	return err
}

// pred builds a single-column predicate with the schema lookup done
// once at plan build.
func pred(s *row.Schema, col string, f func(v interface{}) bool) func(row.Tuple) bool {
	o := s.MustOrdinal(col)
	return func(t row.Tuple) bool { return f(t[o]) }
}

// Queries returns the 22-query set.
func Queries() []Query {
	return []Query{
		{1, "Q1 pricing summary", q1},
		{2, "Q2 minimum cost supplier", q2},
		{3, "Q3 shipping priority", q3},
		{4, "Q4 order priority checking", q4},
		{5, "Q5 local supplier volume", q5},
		{6, "Q6 forecasting revenue", q6},
		{7, "Q7 volume shipping", q7},
		{8, "Q8 national market share", q8},
		{9, "Q9 product type profit", q9},
		{10, "Q10 returned item reporting", q10},
		{11, "Q11 important stock", q11},
		{12, "Q12 shipping modes", q12},
		{13, "Q13 customer distribution", q13},
		{14, "Q14 promotion effect", q14},
		{15, "Q15 top supplier", q15},
		{16, "Q16 parts/supplier relationship", q16},
		{17, "Q17 small-quantity-order revenue", q17},
		{18, "Q18 large volume customer", q18},
		{19, "Q19 discounted revenue", q19},
		{20, "Q20 potential part promotion", q20},
		{21, "Q21 suppliers who kept orders waiting", q21},
		{22, "Q22 global sales opportunity", q22},
	}
}

// QueryByID returns one query.
func QueryByID(id int) Query {
	for _, q := range Queries() {
		if q.ID == id {
			return q
		}
	}
	panic("tpch: no such query")
}

func q1(c *exec.Ctx, db *DB) error {
	li := db.Lineitem.Schema
	return run(c, db, plan.Scan(db.Lineitem).
		Where("shipdate<=19980902", pred(li, "shipdate", func(v interface{}) bool { return v.(int64) <= 19980902 })).
		GroupBy([]string{"returnflag", "linestatus"},
			exec.Agg{Fn: exec.AggSum, Col: "quantity", As: "sum_qty"},
			exec.Agg{Fn: exec.AggSum, Col: "extendedprice", As: "sum_base"},
			exec.Agg{Fn: exec.AggAvg, Col: "quantity", As: "avg_qty"},
			exec.Agg{Fn: exec.AggAvg, Col: "extendedprice", As: "avg_price"},
			exec.Agg{Fn: exec.AggAvg, Col: "discount", As: "avg_disc"},
			exec.Agg{Fn: exec.AggCount, As: "count_order"},
		).
		OrderBy(exec.SortSpec{Col: "returnflag"}, exec.SortSpec{Col: "linestatus"}))
}

func q2(c *exec.Ctx, db *DB) error {
	pt := db.Part.Schema
	j1 := plan.Scan(db.Part).
		Where("size=15", pred(pt, "size", func(v interface{}) bool { return v.(int64) == 15 })).
		Join(plan.Scan(db.PartSupp), "partkey")
	return run(c, db, plan.Scan(db.Supplier).
		Join(j1, "suppkey").
		GroupBy([]string{"partkey"}, exec.Agg{Fn: exec.AggMin, Col: "supplycost", As: "min_cost"}).
		Top(100, exec.SortSpec{Col: "min_cost"}))
}

func q3(c *exec.Ctx, db *DB) error {
	cu, or, li := db.Customer.Schema, db.Orders.Schema, db.Lineitem.Schema
	return run(c, db, plan.Scan(db.Customer).
		Where("mktsegment=BUILDING", pred(cu, "mktsegment", func(v interface{}) bool { return v.(string) == "BUILDING" })).
		Join(plan.Scan(db.Orders).
			Where("orderdate<19950315", pred(or, "orderdate", func(v interface{}) bool { return v.(int64) < 19950315 })),
			"custkey").
		Join(plan.Scan(db.Lineitem).
			Where("shipdate>19950315", pred(li, "shipdate", func(v interface{}) bool { return v.(int64) > 19950315 })),
			"orderkey").
		GroupBy([]string{"orderkey"}, exec.Agg{Fn: exec.AggSum, Col: "extendedprice", As: "revenue"}).
		Top(10, exec.SortSpec{Col: "revenue", Desc: true}))
}

func q4(c *exec.Ctx, db *DB) error {
	or, li := db.Orders.Schema, db.Lineitem.Schema
	return run(c, db, plan.Scan(db.Orders).
		Where("orderdate in 1993Q3", pred(or, "orderdate", func(v interface{}) bool {
			d := v.(int64)
			return d >= 19930701 && d < 19931001
		})).
		Join(plan.Scan(db.Lineitem).
			Where("receiptdate%7!=0", pred(li, "receiptdate", func(v interface{}) bool { return v.(int64)%7 != 0 })),
			"orderkey").
		GroupBy([]string{"orderpriority"}, exec.Agg{Fn: exec.AggCount, As: "order_count"}).
		OrderBy(exec.SortSpec{Col: "orderpriority"}))
}

func q5(c *exec.Ctx, db *DB) error {
	or := db.Orders.Schema
	j2 := plan.Scan(db.Customer).
		Join(plan.Scan(db.Orders).
			Where("orderdate in 1994", pred(or, "orderdate", func(v interface{}) bool {
				d := v.(int64)
				return d >= 19940101 && d < 19950101
			})),
			"custkey").
		Join(plan.Scan(db.Lineitem), "orderkey")
	return run(c, db, plan.Scan(db.Nation).
		Join(j2, "nationkey").
		GroupBy([]string{"name"}, exec.Agg{Fn: exec.AggSum, Col: "extendedprice", As: "revenue"}).
		OrderBy(exec.SortSpec{Col: "revenue", Desc: true}))
}

func q6(c *exec.Ctx, db *DB) error {
	li := db.Lineitem.Schema
	return run(c, db, plan.Scan(db.Lineitem).
		Where("shipdate in 1994", pred(li, "shipdate", func(v interface{}) bool {
			d := v.(int64)
			return d >= 19940101 && d < 19950101
		})).
		Where("discount in [.05,.07]", pred(li, "discount", func(v interface{}) bool {
			d := v.(float64)
			return d >= 0.05 && d <= 0.07
		})).
		Where("quantity<24", pred(li, "quantity", func(v interface{}) bool { return v.(float64) < 24 })).
		GroupBy(nil, exec.Agg{Fn: exec.AggSum, Col: "extendedprice", As: "revenue"}))
}

func q7(c *exec.Ctx, db *DB) error {
	su, cu := db.Supplier.Schema, db.Customer.Schema
	j2 := plan.Scan(db.Supplier).
		Where("nation in {6,7}", pred(su, "nationkey", func(v interface{}) bool { k := v.(int64); return k == 6 || k == 7 })).
		Join(plan.Scan(db.Lineitem), "suppkey").
		Join(plan.Scan(db.Orders), "orderkey")
	return run(c, db, plan.Scan(db.Customer).
		Where("nation in {6,7}", pred(cu, "nationkey", func(v interface{}) bool { k := v.(int64); return k == 6 || k == 7 })).
		Join(j2, "custkey").
		GroupBy([]string{"nationkey"}, exec.Agg{Fn: exec.AggSum, Col: "extendedprice", As: "revenue"}).
		OrderBy(exec.SortSpec{Col: "nationkey"}))
}

func q8(c *exec.Ctx, db *DB) error {
	pt := db.Part.Schema
	return run(c, db, plan.Scan(db.Part).
		Where("type=ECONOMY ANODIZED STEEL", pred(pt, "type", func(v interface{}) bool { return v.(string) == "ECONOMY ANODIZED STEEL" })).
		Join(plan.Scan(db.Lineitem), "partkey").
		Join(plan.Scan(db.Orders), "orderkey").
		GroupBy([]string{"orderdate"}, exec.Agg{Fn: exec.AggSum, Col: "extendedprice", As: "volume"}).
		Top(50, exec.SortSpec{Col: "volume", Desc: true}))
}

func q9(c *exec.Ctx, db *DB) error {
	pt := db.Part.Schema
	j1 := plan.Scan(db.Part).
		Where("name has 7", pred(pt, "name", func(v interface{}) bool { return strings.Contains(v.(string), "7") })).
		Join(plan.Scan(db.Lineitem), "partkey")
	return run(c, db, plan.Scan(db.Supplier).
		Join(j1, "suppkey").
		GroupBy([]string{"nationkey"}, exec.Agg{Fn: exec.AggSum, Col: "extendedprice", As: "profit"}).
		OrderBy(exec.SortSpec{Col: "profit", Desc: true}))
}

func q10(c *exec.Ctx, db *DB) error {
	or, li := db.Orders.Schema, db.Lineitem.Schema
	// Join up to customers, then a large group-by that the grant cannot
	// hold: Q10 is one of the paper's two spilling queries.
	j1 := plan.Scan(db.Orders).
		Where("orderdate in 1993Q4", pred(or, "orderdate", func(v interface{}) bool {
			d := v.(int64)
			return d >= 19931001 && d < 19940101
		})).
		Join(plan.Scan(db.Lineitem).
			Where("returnflag=R", pred(li, "returnflag", func(v interface{}) bool { return v.(string) == "R" })),
			"orderkey")
	return run(c, db, plan.Scan(db.Customer).
		Join(j1, "custkey").
		GroupBy([]string{"custkey"}, exec.Agg{Fn: exec.AggSum, Col: "extendedprice", As: "revenue"}).
		Top(20, exec.SortSpec{Col: "revenue", Desc: true}))
}

func q11(c *exec.Ctx, db *DB) error {
	// Stage 1: total value, streamed (a single scalar row).
	join := func() *plan.Builder {
		return plan.Scan(db.Supplier).Join(plan.Scan(db.PartSupp), "suppkey")
	}
	rows, err := db.planner().Stream(c, join().
		GroupBy(nil, exec.Agg{Fn: exec.AggSum, Col: "supplycost", As: "total"}))
	if err != nil {
		return err
	}
	threshold := 0.0
	if t, ok, err := rows.Next(); err != nil {
		return err
	} else if ok {
		threshold = t[0].(float64) * 0.0001
	}
	if err := rows.Close(); err != nil {
		return err
	}
	// Stage 2: groups above the threshold.
	return run(c, db, join().
		GroupBy([]string{"partkey"}, exec.Agg{Fn: exec.AggSum, Col: "supplycost", As: "value"}).
		Where("value>threshold", func(t row.Tuple) bool { return t[1].(float64) > threshold }).
		OrderBy(exec.SortSpec{Col: "value", Desc: true}))
}

func q12(c *exec.Ctx, db *DB) error {
	li := db.Lineitem.Schema
	return run(c, db, plan.Scan(db.Lineitem).
		Where("shipmode in {MAIL,SHIP}", pred(li, "shipmode", func(v interface{}) bool {
			m := v.(string)
			return m == "MAIL" || m == "SHIP"
		})).
		Where("receiptdate in 1994", pred(li, "receiptdate", func(v interface{}) bool {
			d := v.(int64)
			return d >= 19940101 && d < 19950101
		})).
		Join(plan.Scan(db.Orders), "orderkey").
		GroupBy([]string{"shipmode"}, exec.Agg{Fn: exec.AggCount, As: "line_count"}).
		OrderBy(exec.SortSpec{Col: "shipmode"}))
}

func q13(c *exec.Ctx, db *DB) error {
	return run(c, db, plan.Scan(db.Orders).
		GroupBy([]string{"custkey"}, exec.Agg{Fn: exec.AggCount, As: "c_count"}).
		GroupBy([]string{"c_count"}, exec.Agg{Fn: exec.AggCount, As: "custdist"}).
		OrderBy(exec.SortSpec{Col: "custdist", Desc: true}))
}

func q14(c *exec.Ctx, db *DB) error {
	li := db.Lineitem.Schema
	return run(c, db, plan.Scan(db.Part).
		Join(plan.Scan(db.Lineitem).
			Where("shipdate in 1995-09", pred(li, "shipdate", func(v interface{}) bool {
				d := v.(int64)
				return d >= 19950901 && d < 19951001
			})),
			"partkey").
		GroupBy(nil, exec.Agg{Fn: exec.AggSum, Col: "extendedprice", As: "revenue"}))
}

func q15(c *exec.Ctx, db *DB) error {
	li := db.Lineitem.Schema
	perSupp := func() *plan.Builder {
		return plan.Scan(db.Lineitem).
			Where("shipdate in 1996Q1", pred(li, "shipdate", func(v interface{}) bool {
				d := v.(int64)
				return d >= 19960101 && d < 19960401
			})).
			GroupBy([]string{"suppkey"}, exec.Agg{Fn: exec.AggSum, Col: "extendedprice", As: "total_revenue"})
	}
	// Stage 1: find the best revenue, streaming over the groups.
	rows, err := db.planner().Stream(c, perSupp())
	if err != nil {
		return err
	}
	best := 0.0
	for {
		t, ok, err := rows.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if v := t[1].(float64); v > best {
			best = v
		}
	}
	if err := rows.Close(); err != nil {
		return err
	}
	// Stage 2: re-run, keeping the top supplier(s). Same shape as stage
	// 1 up to the final filter, so it replans from the cache.
	return run(c, db, perSupp().
		Where("revenue=best", func(t row.Tuple) bool { return t[1].(float64) >= best }))
}

func q16(c *exec.Ctx, db *DB) error {
	pt := db.Part.Schema
	return run(c, db, plan.Scan(db.Part).
		Where("brand!=45", pred(pt, "brand", func(v interface{}) bool { return v.(string) != "Brand#45" })).
		Join(plan.Scan(db.PartSupp), "partkey").
		GroupBy([]string{"brand", "type", "size"}, exec.Agg{Fn: exec.AggCount, As: "supplier_cnt"}).
		OrderBy(exec.SortSpec{Col: "supplier_cnt", Desc: true}))
}

func q17(c *exec.Ctx, db *DB) error {
	// Stage 1: average quantity per part, streamed into a lookup map
	// (the correlated subquery's memo).
	rows, err := db.planner().Stream(c, plan.Scan(db.Lineitem).
		GroupBy([]string{"partkey"}, exec.Agg{Fn: exec.AggAvg, Col: "quantity", As: "avg_qty"}))
	if err != nil {
		return err
	}
	avg := make(map[int64]float64)
	for {
		t, ok, err := rows.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		avg[t[0].(int64)] = t[1].(float64)
	}
	if err := rows.Close(); err != nil {
		return err
	}
	pt := db.Part.Schema
	li := db.Lineitem.Schema
	qo := li.MustOrdinal("quantity")
	po := li.MustOrdinal("partkey")
	return run(c, db, plan.Scan(db.Part).
		Where("brand=23", pred(pt, "brand", func(v interface{}) bool { return v.(string) == "Brand#23" })).
		Where("container=MED BOX", pred(pt, "container", func(v interface{}) bool { return v.(string) == "MED BOX" })).
		Join(plan.Scan(db.Lineitem).
			Where("qty<0.2*avg", func(t row.Tuple) bool {
				return t[qo].(float64) < 0.2*avg[t[po].(int64)]
			}),
			"partkey").
		GroupBy(nil, exec.Agg{Fn: exec.AggSum, Col: "extendedprice", As: "avg_yearly"}))
}

func q18(c *exec.Ctx, db *DB) error {
	// Large-volume customers: a full group-by over lineitem (spills —
	// the paper's other spilling query), filtered, joined up, and
	// re-joined with lineitem for the detail rows: the memory-hungry
	// tail of the plan.
	return run(c, db, plan.Scan(db.Lineitem).
		GroupBy([]string{"orderkey"}, exec.Agg{Fn: exec.AggSum, Col: "quantity", As: "sum_qty"}).
		Where("sum_qty>70", func(t row.Tuple) bool { return t[1].(float64) > 70 }).
		Join(plan.Scan(db.Orders), "orderkey").
		Join(plan.Scan(db.Lineitem), "orderkey").
		Top(100, exec.SortSpec{Col: "totalprice", Desc: true}))
}

func q19(c *exec.Ctx, db *DB) error {
	pt := db.Part.Schema
	li := db.Lineitem.Schema
	return run(c, db, plan.Scan(db.Part).
		Where("container in set", pred(pt, "container", func(v interface{}) bool {
			s := v.(string)
			return s == "SM CASE" || s == "MED BOX" || s == "LG JAR"
		})).
		Join(plan.Scan(db.Lineitem).
			Where("quantity in [1,30]", pred(li, "quantity", func(v interface{}) bool {
				q := v.(float64)
				return q >= 1 && q <= 30
			})),
			"partkey").
		GroupBy(nil, exec.Agg{Fn: exec.AggSum, Col: "extendedprice", As: "revenue"}))
}

func q20(c *exec.Ctx, db *DB) error {
	li := db.Lineitem.Schema
	halfQty := plan.Scan(db.Lineitem).
		Where("shipdate in 1994", pred(li, "shipdate", func(v interface{}) bool {
			d := v.(int64)
			return d >= 19940101 && d < 19950101
		})).
		GroupBy([]string{"partkey", "suppkey"}, exec.Agg{Fn: exec.AggSum, Col: "quantity", As: "half_qty"})
	// The join output carries both sides' suppkey; the probe side's copy
	// is disambiguated as suppkey_1 (HashJoin naming).
	joined := halfQty.Join(plan.Scan(db.PartSupp), "partkey", "suppkey")
	// availqty and half_qty positions in the join output: build side is
	// [partkey suppkey half_qty], probe side follows.
	psAvail := 3 + db.PartSupp.Schema.MustOrdinal("availqty")
	return run(c, db, joined.
		Where("avail>half/2", func(t row.Tuple) bool {
			return float64(t[psAvail].(int64)) > 0.5*t[2].(float64)
		}).
		GroupBy([]string{"suppkey_1"}, exec.Agg{Fn: exec.AggCount, As: "parts"}))
}

func q21(c *exec.Ctx, db *DB) error {
	li := db.Lineitem.Schema
	or := db.Orders.Schema
	j1 := plan.Scan(db.Orders).
		Where("orderstatus=F", pred(or, "orderstatus", func(v interface{}) bool { return v.(string) == "F" })).
		Join(plan.Scan(db.Lineitem).
			Where("receiptdate%5=0", pred(li, "receiptdate", func(v interface{}) bool { return v.(int64)%5 == 0 })),
			"orderkey")
	return run(c, db, plan.Scan(db.Supplier).
		Join(j1, "suppkey").
		GroupBy([]string{"name"}, exec.Agg{Fn: exec.AggCount, As: "numwait"}).
		Top(100, exec.SortSpec{Col: "numwait", Desc: true}))
}

func q22(c *exec.Ctx, db *DB) error {
	cu := db.Customer.Schema
	// Stage 1: average positive account balance (scalar, streamed).
	rows, err := db.planner().Stream(c, plan.Scan(db.Customer).
		Where("acctbal>0", pred(cu, "acctbal", func(v interface{}) bool { return v.(float64) > 0 })).
		GroupBy(nil, exec.Agg{Fn: exec.AggAvg, Col: "acctbal", As: "avg_bal"}))
	if err != nil {
		return err
	}
	avgBal := 0.0
	if t, ok, err := rows.Next(); err != nil {
		return err
	} else if ok {
		avgBal = t[0].(float64)
	}
	if err := rows.Close(); err != nil {
		return err
	}
	// Stage 2: which customers have orders (anti join via order counts),
	// streamed into the membership set.
	counts, err := db.planner().Stream(c, plan.Scan(db.Orders).
		GroupBy([]string{"custkey"}, exec.Agg{Fn: exec.AggCount, As: "n"}))
	if err != nil {
		return err
	}
	has := make(map[int64]bool)
	for {
		t, ok, err := counts.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		has[t[0].(int64)] = true
	}
	if err := counts.Close(); err != nil {
		return err
	}
	ck := cu.MustOrdinal("custkey")
	ab := cu.MustOrdinal("acctbal")
	return run(c, db, plan.Scan(db.Customer).
		Where("bal>avg and no orders", func(t row.Tuple) bool {
			return t[ab].(float64) > avgBal && !has[t[ck].(int64)]
		}).
		GroupBy([]string{"nationkey"},
			exec.Agg{Fn: exec.AggCount, As: "numcust"},
			exec.Agg{Fn: exec.AggSum, Col: "acctbal", As: "totacctbal"},
		).
		OrderBy(exec.SortSpec{Col: "nationkey"}))
}
