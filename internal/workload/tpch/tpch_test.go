package tpch

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/engine/exec"
	"remotedb/internal/engine/plan"
	"remotedb/internal/hw/disk"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// rig loads a tiny TPC-H database on a null device.
func rig(t *testing.T, sf float64, fn func(p *sim.Proc, eng *engine.Engine, db *DB)) {
	t.Helper()
	k := sim.New(1)
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	s := cluster.NewServer(k, "db", cfg)
	k.Go("t", func(p *sim.Proc) {
		ecfg := engine.DefaultConfig(16384)
		ecfg.Buffer = buffer.DefaultConfig(16384)
		ecfg.Buffer.WriterPeriod = 0
		ecfg.Buffer.PageAccessCPU = 0
		eng, err := engine.New(p, s, engine.Files{
			Data: vfs.NewDeviceFile("data", disk.NullDevice{DeviceName: "null"}),
			Log:  vfs.NewMemFile("log"),
			Temp: vfs.NewMemFile("temp"),
		}, ecfg)
		if err != nil {
			t.Error(err)
			return
		}
		db, err := Load(p, eng, sf)
		if err != nil {
			t.Error(err)
			return
		}
		fn(p, eng, db)
	})
	k.Run(100 * time.Hour)
}

func TestLoadCardinalities(t *testing.T) {
	rig(t, 0.01, func(p *sim.Proc, eng *engine.Engine, db *DB) {
		su, cu, pa, ps, or, li := Counts(0.01)
		checks := []struct {
			name string
			got  int64
			want int
		}{
			{"supplier", db.Supplier.Clustered.Entries, su},
			{"customer", db.Customer.Clustered.Entries, cu},
			{"part", db.Part.Clustered.Entries, pa},
			{"partsupp", db.PartSupp.Clustered.Entries, ps},
			{"orders", db.Orders.Clustered.Entries, or},
			{"lineitem", db.Lineitem.Clustered.Entries, li / or * or},
		}
		for _, c := range checks {
			if int(c.got) != c.want {
				t.Errorf("%s rows = %d, want %d", c.name, c.got, c.want)
			}
		}
	})
}

func TestAll22QueriesExecute(t *testing.T) {
	rig(t, 0.01, func(p *sim.Proc, eng *engine.Engine, db *DB) {
		for _, q := range Queries() {
			ctx := eng.NewCtx(p)
			if err := q.Run(ctx, db); err != nil {
				t.Errorf("%s failed: %v", q.Name, err)
			}
		}
	})
}

func TestSpillingQueriesSpillUnderSmallGrant(t *testing.T) {
	rig(t, 0.05, func(p *sim.Proc, eng *engine.Engine, db *DB) {
		eng.Grant = 128 << 10 // 128 KiB grant
		for _, id := range []int{10, 18} {
			ctx := eng.NewCtx(p)
			if err := QueryByID(id).Run(ctx, db); err != nil {
				t.Errorf("Q%d: %v", id, err)
				continue
			}
			if ctx.SpilledParts == 0 && ctx.SpilledRuns == 0 {
				t.Errorf("Q%d did not spill with a 128 KiB grant", id)
			}
		}
	})
}

// TestQueriesEquivalentAcrossDOP checks that every query returns the
// same number of rows serially and with parallel scans/aggregation.
func TestQueriesEquivalentAcrossDOP(t *testing.T) {
	rig(t, 0.01, func(p *sim.Proc, eng *engine.Engine, db *DB) {
		for _, q := range Queries() {
			counts := make(map[int]int64)
			for _, dop := range []int{1, 4} {
				ctx := eng.NewCtx(p)
				ctx.DOP = dop
				if err := q.Run(ctx, db); err != nil {
					t.Errorf("%s at DOP %d: %v", q.Name, dop, err)
					continue
				}
				counts[dop] = ctx.RowsOut
			}
			if counts[1] != counts[4] {
				t.Errorf("%s: DOP 1 returned %d rows, DOP 4 returned %d", q.Name, counts[1], counts[4])
			}
		}
	})
}

// TestSpillingEquivalentAcrossDOP re-runs the two spilling queries with
// a tiny grant at both DOPs: spilled and parallel plans must agree.
func TestSpillingEquivalentAcrossDOP(t *testing.T) {
	rig(t, 0.05, func(p *sim.Proc, eng *engine.Engine, db *DB) {
		eng.Grant = 128 << 10
		for _, id := range []int{10, 18} {
			var counts [2]int64
			for i, dop := range []int{1, 4} {
				ctx := eng.NewCtx(p)
				ctx.DOP = dop
				if err := QueryByID(id).Run(ctx, db); err != nil {
					t.Errorf("Q%d at DOP %d: %v", id, dop, err)
					continue
				}
				counts[i] = ctx.RowsOut
			}
			if counts[0] != counts[1] {
				t.Errorf("Q%d under spill: DOP 1 returned %d rows, DOP 4 returned %d", id, counts[0], counts[1])
			}
		}
	})
}

// TestRowLevelEquivalenceAcrossDOP streams a Q1-shaped plan at DOP 1
// and DOP 4 and compares the actual rows (floats rounded to 6
// significant digits: parallel aggregation merges partial sums in a
// different order, so the last ulp may differ).
func TestRowLevelEquivalenceAcrossDOP(t *testing.T) {
	rig(t, 0.01, func(p *sim.Proc, eng *engine.Engine, db *DB) {
		li := db.Lineitem.Schema
		build := func() *plan.Builder {
			return plan.Scan(db.Lineitem).
				Where("shipdate<=19980902", pred(li, "shipdate", func(v interface{}) bool { return v.(int64) <= 19980902 })).
				GroupBy([]string{"returnflag", "linestatus"},
					exec.Agg{Fn: exec.AggSum, Col: "quantity", As: "sum_qty"},
					exec.Agg{Fn: exec.AggAvg, Col: "extendedprice", As: "avg_price"},
					exec.Agg{Fn: exec.AggCount, As: "n"},
				).
				OrderBy(exec.SortSpec{Col: "returnflag"}, exec.SortSpec{Col: "linestatus"})
		}
		render := func(dop int) []string {
			ctx := eng.NewCtx(p)
			ctx.DOP = dop
			rows, err := db.Planner.Stream(ctx, build())
			if err != nil {
				t.Fatalf("DOP %d: %v", dop, err)
			}
			var out []string
			for {
				tup, ok, err := rows.Next()
				if err != nil {
					t.Fatalf("DOP %d: %v", dop, err)
				}
				if !ok {
					break
				}
				s := ""
				for _, v := range tup {
					if f, isF := v.(float64); isF {
						s += fmt.Sprintf("|%.6g", f)
					} else {
						s += fmt.Sprintf("|%v", v)
					}
				}
				out = append(out, s)
			}
			if err := rows.Close(); err != nil {
				t.Fatalf("DOP %d close: %v", dop, err)
			}
			sort.Strings(out)
			return out
		}
		serial, par := render(1), render(4)
		if len(serial) != len(par) {
			t.Fatalf("row counts differ: %d vs %d", len(serial), len(par))
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Errorf("row %d differs:\n  serial  %s\n  parallel %s", i, serial[i], par[i])
			}
		}
		if len(serial) == 0 {
			t.Error("plan returned no rows")
		}
	})
}

// TestPlanCacheReusedAcrossQueryRuns checks that re-running a query
// hits the plan cache rather than re-optimizing.
func TestPlanCacheReusedAcrossQueryRuns(t *testing.T) {
	rig(t, 0.01, func(p *sim.Proc, eng *engine.Engine, db *DB) {
		pl := db.Planner
		hits0, misses0 := pl.Hits, pl.Misses
		for i := 0; i < 3; i++ {
			ctx := eng.NewCtx(p)
			if err := q1(ctx, db); err != nil {
				t.Fatal(err)
			}
		}
		if pl.Misses-misses0 != 1 {
			t.Errorf("misses = %d, want 1 (first run only)", pl.Misses-misses0)
		}
		if pl.Hits-hits0 != 2 {
			t.Errorf("hits = %d, want 2 (two re-runs)", pl.Hits-hits0)
		}
	})
}

func TestQueryDeterminism(t *testing.T) {
	// Same seed, same data: Q3 must produce identical row counts across
	// two executions.
	rig(t, 0.01, func(p *sim.Proc, eng *engine.Engine, db *DB) {
		c1 := eng.NewCtx(p)
		if err := q3(c1, db); err != nil {
			t.Fatal(err)
		}
		c2 := eng.NewCtx(p)
		if err := q3(c2, db); err != nil {
			t.Fatal(err)
		}
		if c1.RowsOut != c2.RowsOut {
			t.Errorf("Q3 row counts differ: %d vs %d", c1.RowsOut, c2.RowsOut)
		}
		if c1.RowsOut == 0 {
			t.Error("Q3 returned no rows; predicates likely select nothing")
		}
	})
}
