package tpch

import (
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/hw/disk"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// rig loads a tiny TPC-H database on a null device.
func rig(t *testing.T, sf float64, fn func(p *sim.Proc, eng *engine.Engine, db *DB)) {
	t.Helper()
	k := sim.New(1)
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	s := cluster.NewServer(k, "db", cfg)
	k.Go("t", func(p *sim.Proc) {
		ecfg := engine.DefaultConfig(16384)
		ecfg.Buffer = buffer.DefaultConfig(16384)
		ecfg.Buffer.WriterPeriod = 0
		ecfg.Buffer.PageAccessCPU = 0
		eng, err := engine.New(p, s, engine.Files{
			Data: vfs.NewDeviceFile("data", disk.NullDevice{DeviceName: "null"}),
			Log:  vfs.NewMemFile("log"),
			Temp: vfs.NewMemFile("temp"),
		}, ecfg)
		if err != nil {
			t.Error(err)
			return
		}
		db, err := Load(p, eng, sf)
		if err != nil {
			t.Error(err)
			return
		}
		fn(p, eng, db)
	})
	k.Run(100 * time.Hour)
}

func TestLoadCardinalities(t *testing.T) {
	rig(t, 0.01, func(p *sim.Proc, eng *engine.Engine, db *DB) {
		su, cu, pa, ps, or, li := Counts(0.01)
		checks := []struct {
			name string
			got  int64
			want int
		}{
			{"supplier", db.Supplier.Clustered.Entries, su},
			{"customer", db.Customer.Clustered.Entries, cu},
			{"part", db.Part.Clustered.Entries, pa},
			{"partsupp", db.PartSupp.Clustered.Entries, ps},
			{"orders", db.Orders.Clustered.Entries, or},
			{"lineitem", db.Lineitem.Clustered.Entries, li / or * or},
		}
		for _, c := range checks {
			if int(c.got) != c.want {
				t.Errorf("%s rows = %d, want %d", c.name, c.got, c.want)
			}
		}
	})
}

func TestAll22QueriesExecute(t *testing.T) {
	rig(t, 0.01, func(p *sim.Proc, eng *engine.Engine, db *DB) {
		for _, q := range Queries() {
			ctx := eng.NewCtx(p)
			if err := q.Run(ctx, db); err != nil {
				t.Errorf("%s failed: %v", q.Name, err)
			}
		}
	})
}

func TestSpillingQueriesSpillUnderSmallGrant(t *testing.T) {
	rig(t, 0.05, func(p *sim.Proc, eng *engine.Engine, db *DB) {
		eng.Grant = 128 << 10 // 128 KiB grant
		for _, id := range []int{10, 18} {
			ctx := eng.NewCtx(p)
			if err := QueryByID(id).Run(ctx, db); err != nil {
				t.Errorf("Q%d: %v", id, err)
				continue
			}
			if ctx.SpilledParts == 0 && ctx.SpilledRuns == 0 {
				t.Errorf("Q%d did not spill with a 128 KiB grant", id)
			}
		}
	})
}

func TestQueryDeterminism(t *testing.T) {
	// Same seed, same data: Q3 must produce identical row counts across
	// two executions.
	rig(t, 0.01, func(p *sim.Proc, eng *engine.Engine, db *DB) {
		c1 := eng.NewCtx(p)
		if err := q3(c1, db); err != nil {
			t.Fatal(err)
		}
		c2 := eng.NewCtx(p)
		if err := q3(c2, db); err != nil {
			t.Fatal(err)
		}
		if c1.RowsOut != c2.RowsOut {
			t.Errorf("Q3 row counts differ: %d vs %d", c1.RowsOut, c2.RowsOut)
		}
		if c1.RowsOut == 0 {
			t.Error("Q3 returned no rows; predicates likely select nothing")
		}
	})
}
