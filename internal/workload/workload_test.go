package workload

import (
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/hw/disk"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// fastEngine builds an engine on a null device for workload unit tests.
func fastEngine(p *sim.Proc, k *sim.Kernel) *engine.Engine {
	cfg := cluster.DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	s := cluster.NewServer(k, "db", cfg)
	ecfg := engine.DefaultConfig(32768)
	ecfg.Buffer = buffer.DefaultConfig(32768)
	ecfg.Buffer.WriterPeriod = 0
	eng, err := engine.New(p, s, engine.Files{
		Data: vfs.NewDeviceFile("data", disk.NullDevice{DeviceName: "null"}),
		Log:  vfs.NewMemFile("log"),
		Temp: vfs.NewMemFile("temp"),
	}, ecfg)
	if err != nil {
		panic(err)
	}
	return eng
}

func TestDriveCountsAndWindows(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		calls := 0
		res := Drive(p, 4, 100*time.Millisecond, 200*time.Millisecond, func(wp *sim.Proc, _ int) error {
			calls++
			wp.Sleep(10 * time.Millisecond)
			return nil
		})
		// 4 clients x 300ms / 10ms = ~120 calls; ~80 in the window.
		if calls < 100 || calls > 130 {
			t.Errorf("calls = %d", calls)
		}
		if res.Queries < 70 || res.Queries > 90 {
			t.Errorf("measured queries = %d, want ~80", res.Queries)
		}
		if res.Latency.Mean() < 9*time.Millisecond || res.Latency.Mean() > 11*time.Millisecond {
			t.Errorf("mean latency = %v", res.Latency.Mean())
		}
	})
	k.Run(time.Minute)
}

func TestDriveCountsErrors(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		i := 0
		res := Drive(p, 1, 0, 100*time.Millisecond, func(wp *sim.Proc, _ int) error {
			wp.Sleep(10 * time.Millisecond)
			i++
			if i%2 == 0 {
				return vfs.ErrUnavailable
			}
			return nil
		})
		if res.Errors == 0 || res.Queries == 0 {
			t.Errorf("queries=%d errors=%d; both should be nonzero", res.Queries, res.Errors)
		}
	})
	k.Run(time.Minute)
}

func TestHotspotDistribution(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		h := Hotspot{HotFrac: 0.20, HotAccess: 0.99}
		const n = 100000
		hot := 0
		for i := 0; i < 20000; i++ {
			if h.Pick(p, n) < int64(0.2*n) {
				hot++
			}
		}
		frac := float64(hot) / 20000
		if frac < 0.97 || frac > 1.0 {
			t.Errorf("hot fraction = %.3f, want ~0.99", frac)
		}
	})
	k.Run(time.Minute)
}

func TestRangeScanQueryTouchesExpectedRows(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		eng := fastEngine(p, k)
		cfg := DefaultRangeScan()
		cfg.Rows = 20000
		cfg.Clients = 4
		w, err := NewRangeScan(p, eng, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		// Row count sanity.
		if w.Tbl.Clustered.Entries != 20000 {
			t.Errorf("rows = %d", w.Tbl.Clustered.Entries)
		}
		// A single query reads exactly Range rows; check via a known key.
		if err := w.QueryOnce(p, 500, false); err != nil {
			t.Error(err)
		}
		// Update variant persists its changes.
		if err := w.QueryOnce(p, 500, true); err != nil {
			t.Error(err)
		}
		got, err := w.Tbl.Get(p, int64(500))
		if err != nil {
			t.Error(err)
			return
		}
		want := float64(500%10000)/100 + 1
		if got[w.acctbalOrd].(float64) != want {
			t.Errorf("acctbal after update = %v, want %v", got[w.acctbalOrd], want)
		}
		eng.Shutdown()
	})
	k.Run(10 * time.Minute)
}

func TestRangeScanRowWidth(t *testing.T) {
	// Table 4 says ~245 bytes/row; the generator should be close.
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		eng := fastEngine(p, k)
		w, err := NewRangeScan(p, eng, RangeScanConfig{Rows: 1000, Range: 10, Clients: 1, QueryCPU: time.Microsecond})
		if err != nil {
			t.Error(err)
			return
		}
		pairs, _ := w.Tbl.Clustered.ScanRange(p, nil, nil, 1)
		width := len(pairs[0].Val)
		if width < 200 || width > 290 {
			t.Errorf("row width = %dB, want ~245B", width)
		}
		eng.Shutdown()
	})
	k.Run(time.Minute)
}

func TestHashSortLoadCardinality(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		eng := fastEngine(p, k)
		cfg := HashSortConfig{Orders: 5000, Lineitem: 20000, TopN: 100}
		w, err := NewHashSort(p, eng, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		if w.Orders.Clustered.Entries != 5000 || w.Lineitem.Clustered.Entries != 20000 {
			t.Errorf("cardinalities = %d/%d", w.Orders.Clustered.Entries, w.Lineitem.Clustered.Entries)
		}
		lat, ctx, err := w.Run(p)
		if err != nil {
			t.Error(err)
			return
		}
		if lat <= 0 {
			t.Error("no latency recorded")
		}
		if ctx.RowsOut != 100 {
			t.Errorf("topN produced %d rows, want 100", ctx.RowsOut)
		}
		eng.Shutdown()
	})
	k.Run(10 * time.Minute)
}

func TestSQLIOPatterns(t *testing.T) {
	k := sim.New(1)
	cfg := cluster.DefaultConfig()
	s := cluster.NewServer(k, "io", cfg)
	k.Go("t", func(p *sim.Proc) {
		f := vfs.NewDeviceFile("d", s.SSD)
		rnd := RandomRead8K(64 << 20)
		rnd.Duration = 200 * time.Millisecond
		r := RunSQLIO(p, f, rnd)
		if r.IOs == 0 || r.BytesPerSec <= 0 {
			t.Error("random pattern produced no I/O")
		}
		seq := SequentialRead512K(64 << 20)
		seq.Duration = 200 * time.Millisecond
		sres := RunSQLIO(p, f, seq)
		if sres.BytesPerSec <= r.BytesPerSec {
			t.Errorf("SSD sequential (%.0f) should beat random (%.0f) in bytes/sec", sres.BytesPerSec, r.BytesPerSec)
		}
	})
	k.Run(time.Minute)
}

func TestSamplerCollectsSeries(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		n := 0.0
		s := NewSampler(k, "test", 10*time.Millisecond, func(at time.Duration) float64 {
			n++
			return n
		})
		p.Sleep(105 * time.Millisecond)
		s.Stop()
		p.Sleep(20 * time.Millisecond)
		if got := len(s.Series.Points); got < 9 || got > 12 {
			t.Errorf("samples = %d, want ~10", got)
		}
	})
	k.Run(time.Second)
}
