package workload

import (
	"strings"
	"time"

	"remotedb/internal/engine"
	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/row"
	"remotedb/internal/engine/txn"
	"remotedb/internal/sim"
)

// RangeScanConfig is the paper's RangeScan micro-benchmark (Section
// 5.2.1) scaled 1000x down: a 500K-row Customer table (~122 MB at ~245
// bytes/row), clustered on custkey, scanned in ranges of 100 keys by 80
// concurrent clients.
type RangeScanConfig struct {
	Rows           int     // table rows (paper: 500M; scaled: 500K)
	Range          int     // keys per query (paper: 100)
	UpdateFraction float64 // fraction of queries that update the range
	Clients        int     // concurrent query threads (paper: 80)

	// Hotspot switches the start-key distribution from uniform to the
	// priming experiment's 99%/20% hotspot with the given range size.
	Hotspot *Hotspot

	// QueryCPU is the per-query fixed CPU overhead (parse, plan cache
	// lookup, result marshalling); calibrated so the remote-memory
	// designs are CPU-bound at the paper's throughput (Figure 11b).
	QueryCPU time.Duration
}

// DefaultRangeScan mirrors Table 4's RangeScan row.
func DefaultRangeScan() RangeScanConfig {
	return RangeScanConfig{
		Rows:           500000,
		Range:          100,
		UpdateFraction: 0,
		Clients:        80,
		QueryCPU:       700 * time.Microsecond,
	}
}

// customerSchema matches TPC-H Customer (padded to ~245 bytes/row).
func customerSchema() *row.Schema {
	return row.NewSchema(
		row.Column{Name: "custkey", Type: row.Int64},
		row.Column{Name: "name", Type: row.String},
		row.Column{Name: "address", Type: row.String},
		row.Column{Name: "nationkey", Type: row.Int64},
		row.Column{Name: "phone", Type: row.String},
		row.Column{Name: "acctbal", Type: row.Float64},
		row.Column{Name: "mktsegment", Type: row.String},
		row.Column{Name: "comment", Type: row.String},
	)
}

// LoadCustomer builds the Customer table with cfg.Rows rows.
func LoadCustomer(p *sim.Proc, eng *engine.Engine, rows int) (*catalog.Table, error) {
	tbl, err := eng.Catalog.CreateTable(p, "customer", customerSchema(), "custkey")
	if err != nil {
		return nil, err
	}
	pad := strings.Repeat("x", 120)
	tuples := make([]row.Tuple, rows)
	for i := 0; i < rows; i++ {
		key := int64(i)
		tuples[i] = row.Tuple{
			key,
			"Customer#000000001",
			"addr-line-one-and-some",
			key % 25,
			"25-989-741-2988",
			float64(key%10000) / 100,
			"BUILDING",
			pad,
		}
	}
	if err := tbl.BulkLoad(p, tuples); err != nil {
		return nil, err
	}
	return tbl, nil
}

// RangeScan is a bound instance of the workload.
type RangeScan struct {
	Cfg RangeScanConfig
	Eng *engine.Engine
	Tbl *catalog.Table

	acctbalOrd int
}

// NewRangeScan loads the table and prepares the workload.
func NewRangeScan(p *sim.Proc, eng *engine.Engine, cfg RangeScanConfig) (*RangeScan, error) {
	tbl, err := LoadCustomer(p, eng, cfg.Rows)
	if err != nil {
		return nil, err
	}
	if err := eng.BP.FlushAll(p); err != nil {
		return nil, err
	}
	return &RangeScan{Cfg: cfg, Eng: eng, Tbl: tbl, acctbalOrd: tbl.Schema.MustOrdinal("acctbal")}, nil
}

// QueryOnce runs one range query (optionally with updates) at start.
func (w *RangeScan) QueryOnce(p *sim.Proc, start int64, update bool) error {
	w.Eng.Server.Work(p, w.Cfg.QueryCPU)
	from := row.EncodeKey(nil, start)
	to := row.EncodeKey(nil, start+int64(w.Cfg.Range))
	pairs, err := w.Tbl.Clustered.ScanRange(p, from, to, 0)
	if err != nil {
		return err
	}
	var sum float64
	var lastLSN uint64
	var rowCPU time.Duration
	for _, pair := range pairs {
		// Aggregate through the single-column fast path; updates take
		// the full decode/encode route.
		v, err := row.DecodeColumn(w.Tbl.Schema, pair.Val, w.acctbalOrd)
		if err != nil {
			return err
		}
		rowCPU += 300 * time.Nanosecond
		sum += v.(float64)
		if update {
			t, err := row.Decode(w.Tbl.Schema, pair.Val)
			if err != nil {
				return err
			}
			t[w.acctbalOrd] = t[w.acctbalOrd].(float64) + 1
			img, err := row.Encode(nil, w.Tbl.Schema, t)
			if err != nil {
				return err
			}
			lastLSN = w.Eng.Log.Append(txn.RecUpdate, img[:32])
			if err := w.Tbl.Clustered.Update(p, pair.Key, img); err != nil {
				return err
			}
		}
	}
	if rowCPU > 0 {
		w.Eng.Server.Work(p, rowCPU)
	}
	if update && lastLSN > 0 {
		lastLSN = w.Eng.Log.Append(txn.RecCommit, nil)
		if err := w.Eng.Log.Commit(p, lastLSN); err != nil {
			return err
		}
	}
	_ = sum
	return nil
}

// Run drives the workload and returns the result.
func (w *RangeScan) Run(p *sim.Proc, warmup, measure time.Duration) *Result {
	n := int64(w.Cfg.Rows - w.Cfg.Range)
	return Drive(p, w.Cfg.Clients, warmup, measure, func(wp *sim.Proc, _ int) error {
		var start int64
		if w.Cfg.Hotspot != nil {
			start = w.Cfg.Hotspot.Pick(wp, n)
		} else {
			start = wp.Rand().Int63n(n)
		}
		update := w.Cfg.UpdateFraction > 0 && wp.Rand().Float64() < w.Cfg.UpdateFraction
		return w.QueryOnce(wp, start, update)
	})
}
