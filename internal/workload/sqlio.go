package workload

import (
	"time"

	"remotedb/internal/metrics"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// SQLIOConfig mirrors the paper's use of the SQLIO disk benchmark
// (Section 6.1): 20 threads of 8 KiB random reads, or 5 threads of
// 512 KiB sequential reads.
type SQLIOConfig struct {
	Threads  int
	IOSize   int
	Span     int64 // addressable bytes
	Random   bool
	Duration time.Duration
}

// RandomRead8K is the paper's random-read configuration.
func RandomRead8K(span int64) SQLIOConfig {
	return SQLIOConfig{Threads: 20, IOSize: 8192, Span: span, Random: true, Duration: 2 * time.Second}
}

// SequentialRead512K is the paper's sequential-read configuration.
func SequentialRead512K(span int64) SQLIOConfig {
	return SQLIOConfig{Threads: 5, IOSize: 512 << 10, Span: span, Random: false, Duration: 2 * time.Second}
}

// SQLIOResult reports achieved bandwidth and latency.
type SQLIOResult struct {
	BytesPerSec float64
	Latency     *metrics.Histogram
	IOs         int64
}

// RunSQLIO drives the pattern against any vfs.File and blocks until the
// duration elapses.
func RunSQLIO(p *sim.Proc, file vfs.File, cfg SQLIOConfig) *SQLIOResult {
	k := p.Kernel()
	res := &SQLIOResult{Latency: metrics.NewHistogram()}
	var bytes int64
	end := p.Now() + cfg.Duration
	wg := sim.NewWaitGroup(k)
	wg.Add(cfg.Threads)
	region := cfg.Span / int64(cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		base := int64(i) * region
		k.Go("sqlio", func(wp *sim.Proc) {
			defer wg.Done()
			buf := make([]byte, cfg.IOSize)
			off := base
			for wp.Now() < end {
				if cfg.Random {
					off = wp.Rand().Int63n(cfg.Span/int64(cfg.IOSize)) * int64(cfg.IOSize)
				}
				t0 := wp.Now()
				if err := file.ReadAt(wp, buf, off); err != nil {
					return
				}
				res.Latency.Observe(wp.Now() - t0)
				res.IOs++
				bytes += int64(cfg.IOSize)
				if !cfg.Random {
					off += int64(cfg.IOSize)
					if off+int64(cfg.IOSize) > base+region {
						off = base
					}
				}
			}
		})
	}
	wg.Wait(p)
	res.BytesPerSec = float64(bytes) / cfg.Duration.Seconds()
	return res
}
