// Package tpcc implements the TPC-C stand-in for Figures 22 and 23: the
// nine-table schema in miniature and the five transaction types, driven
// under the default mix (write-heavy, small ever-moving working set) and
// the paper's read-mostly variant (90% StockLevel) whose larger working
// set actually benefits from remote memory. Scaled per DESIGN.md §2:
// the paper's 800 warehouses become 8.
package tpcc

import (
	"fmt"
	"time"

	"remotedb/internal/engine"
	"remotedb/internal/engine/catalog"
	"remotedb/internal/engine/row"
	"remotedb/internal/engine/txn"
	"remotedb/internal/sim"
)

// Config sizes the database and drive.
type Config struct {
	Warehouses   int
	DistrictsPer int
	CustomersPer int // per district
	Items        int
	Clients      int
	ReadMostly   bool // 90% StockLevel mix
	// HistoryWindow bounds how far back StockLevel reads (orders per
	// district), sizing the read-mostly working set.
	HistoryWindow int

	// TxnCPU is the fixed per-transaction CPU overhead.
	TxnCPU time.Duration
}

// DefaultConfig scales the paper's 800-warehouse setup to 8.
func DefaultConfig() Config {
	return Config{
		Warehouses:    8,
		DistrictsPer:  10,
		CustomersPer:  300,
		Items:         10000,
		Clients:       200,
		HistoryWindow: 800,
		TxnCPU:        300 * time.Microsecond,
	}
}

// DB holds the loaded tables and the workload state.
type DB struct {
	Cfg Config
	Eng *engine.Engine

	Warehouse, District, Customer, Item, Stock *catalog.Table
	Orders, OrderLine, NewOrder                *catalog.Table

	nextOrder []int64 // per (w,d) order id allocator
	nextDeliv []int64 // per (w,d) next order to deliver
}

func mix(i, salt int) int {
	x := uint64(i)*2654435761 + uint64(salt)*65213
	x ^= x >> 13
	x *= 1099511628211
	x ^= x >> 31
	return int(x & 0x7FFFFFFF)
}

// Load builds the database.
func Load(p *sim.Proc, eng *engine.Engine, cfg Config) (*DB, error) {
	db := &DB{Cfg: cfg, Eng: eng}
	cat := eng.Catalog
	var err error

	if db.Warehouse, err = cat.CreateTable(p, "warehouse", row.NewSchema(
		row.Column{Name: "w_id", Type: row.Int64},
		row.Column{Name: "w_ytd", Type: row.Float64},
	), "w_id"); err != nil {
		return nil, err
	}
	var rows []row.Tuple
	for w := 0; w < cfg.Warehouses; w++ {
		rows = append(rows, row.Tuple{int64(w), 0.0})
	}
	if err := db.Warehouse.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.District, err = cat.CreateTable(p, "district", row.NewSchema(
		row.Column{Name: "d_w_id", Type: row.Int64},
		row.Column{Name: "d_id", Type: row.Int64},
		row.Column{Name: "d_ytd", Type: row.Float64},
		row.Column{Name: "d_next_o_id", Type: row.Int64},
	), "d_w_id", "d_id"); err != nil {
		return nil, err
	}
	rows = rows[:0]
	for w := 0; w < cfg.Warehouses; w++ {
		for d := 0; d < cfg.DistrictsPer; d++ {
			rows = append(rows, row.Tuple{int64(w), int64(d), 0.0, int64(3000)})
		}
	}
	if err := db.District.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.Customer, err = cat.CreateTable(p, "customer", row.NewSchema(
		row.Column{Name: "c_w_id", Type: row.Int64},
		row.Column{Name: "c_d_id", Type: row.Int64},
		row.Column{Name: "c_id", Type: row.Int64},
		row.Column{Name: "c_balance", Type: row.Float64},
		row.Column{Name: "c_ytd", Type: row.Float64},
		row.Column{Name: "c_data", Type: row.String},
	), "c_w_id", "c_d_id", "c_id"); err != nil {
		return nil, err
	}
	pad := make([]byte, 180)
	for i := range pad {
		pad[i] = 'c'
	}
	rows = rows[:0]
	for w := 0; w < cfg.Warehouses; w++ {
		for d := 0; d < cfg.DistrictsPer; d++ {
			for c := 0; c < cfg.CustomersPer; c++ {
				rows = append(rows, row.Tuple{int64(w), int64(d), int64(c), -10.0, 10.0, string(pad)})
			}
		}
	}
	if err := db.Customer.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.Item, err = cat.CreateTable(p, "item", row.NewSchema(
		row.Column{Name: "i_id", Type: row.Int64},
		row.Column{Name: "i_price", Type: row.Float64},
		row.Column{Name: "i_name", Type: row.String},
	), "i_id"); err != nil {
		return nil, err
	}
	rows = rows[:0]
	for i := 0; i < cfg.Items; i++ {
		rows = append(rows, row.Tuple{int64(i), float64(mix(i, 1)%9900+100) / 100, fmt.Sprintf("item-%d", i)})
	}
	if err := db.Item.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.Stock, err = cat.CreateTable(p, "stock", row.NewSchema(
		row.Column{Name: "s_w_id", Type: row.Int64},
		row.Column{Name: "s_i_id", Type: row.Int64},
		row.Column{Name: "s_quantity", Type: row.Int64},
		row.Column{Name: "s_ytd", Type: row.Float64},
		row.Column{Name: "s_data", Type: row.String},
	), "s_w_id", "s_i_id"); err != nil {
		return nil, err
	}
	spad := make([]byte, 60)
	for i := range spad {
		spad[i] = 's'
	}
	rows = rows[:0]
	for w := 0; w < cfg.Warehouses; w++ {
		for i := 0; i < cfg.Items; i++ {
			rows = append(rows, row.Tuple{int64(w), int64(i), int64(mix(w*cfg.Items+i, 2)%91 + 10), 0.0, string(spad)})
		}
	}
	if err := db.Stock.BulkLoad(p, rows); err != nil {
		return nil, err
	}

	if db.Orders, err = cat.CreateTable(p, "orders", row.NewSchema(
		row.Column{Name: "o_w_id", Type: row.Int64},
		row.Column{Name: "o_d_id", Type: row.Int64},
		row.Column{Name: "o_id", Type: row.Int64},
		row.Column{Name: "o_c_id", Type: row.Int64},
		row.Column{Name: "o_carrier", Type: row.Int64},
	), "o_w_id", "o_d_id", "o_id"); err != nil {
		return nil, err
	}
	if db.OrderLine, err = cat.CreateTable(p, "order_line", row.NewSchema(
		row.Column{Name: "ol_w_id", Type: row.Int64},
		row.Column{Name: "ol_d_id", Type: row.Int64},
		row.Column{Name: "ol_o_id", Type: row.Int64},
		row.Column{Name: "ol_number", Type: row.Int64},
		row.Column{Name: "ol_i_id", Type: row.Int64},
		row.Column{Name: "ol_amount", Type: row.Float64},
	), "ol_w_id", "ol_d_id", "ol_o_id", "ol_number"); err != nil {
		return nil, err
	}
	if db.NewOrder, err = cat.CreateTable(p, "new_order", row.NewSchema(
		row.Column{Name: "no_w_id", Type: row.Int64},
		row.Column{Name: "no_d_id", Type: row.Int64},
		row.Column{Name: "no_o_id", Type: row.Int64},
	), "no_w_id", "no_d_id", "no_o_id"); err != nil {
		return nil, err
	}
	// Seed history: 3000 orders per district with 10 lines each.
	var orows, olrows, norows []row.Tuple
	for w := 0; w < cfg.Warehouses; w++ {
		for d := 0; d < cfg.DistrictsPer; d++ {
			for o := 0; o < 3000; o++ {
				i := (w*cfg.DistrictsPer+d)*3000 + o
				orows = append(orows, row.Tuple{int64(w), int64(d), int64(o), int64(mix(i, 3) % cfg.CustomersPer), int64(mix(i, 4) % 10)})
				for l := 0; l < 10; l++ {
					olrows = append(olrows, row.Tuple{
						int64(w), int64(d), int64(o), int64(l),
						int64(mix(i*10+l, 5) % cfg.Items), float64(mix(i*10+l, 6)%10000) / 100,
					})
				}
				if o >= 2900 {
					norows = append(norows, row.Tuple{int64(w), int64(d), int64(o)})
				}
			}
		}
	}
	if err := db.Orders.BulkLoad(p, orows); err != nil {
		return nil, err
	}
	if err := db.OrderLine.BulkLoad(p, olrows); err != nil {
		return nil, err
	}
	if err := db.NewOrder.BulkLoad(p, norows); err != nil {
		return nil, err
	}
	n := cfg.Warehouses * cfg.DistrictsPer
	db.nextOrder = make([]int64, n)
	db.nextDeliv = make([]int64, n)
	for i := range db.nextOrder {
		db.nextOrder[i] = 3000
		db.nextDeliv[i] = 2900
	}
	return db, nil
}

func (db *DB) wd(w, d int64) int { return int(w)*db.Cfg.DistrictsPer + int(d) }

// --- Transactions ---------------------------------------------------------

// NewOrderTxn inserts an order with 10 lines, updating stock.
func (db *DB) NewOrderTxn(p *sim.Proc, w, d, c int64) error {
	db.Eng.Server.Work(p, db.Cfg.TxnCPU)
	slot := db.wd(w, d)
	o := db.nextOrder[slot]
	db.nextOrder[slot]++
	if err := db.Orders.Insert(p, row.Tuple{w, d, o, c, int64(-1)}); err != nil {
		return err
	}
	if err := db.NewOrder.Insert(p, row.Tuple{w, d, o}); err != nil {
		return err
	}
	var lsn uint64
	for l := 0; l < 10; l++ {
		item := int64(p.Rand().Intn(db.Cfg.Items))
		st, err := db.Stock.Get(p, w, item)
		if err != nil {
			return err
		}
		st[2] = st[2].(int64) - 1
		if st[2].(int64) < 10 {
			st[2] = st[2].(int64) + 91
		}
		if err := db.Stock.Update(p, st); err != nil {
			return err
		}
		amount := float64(p.Rand().Intn(10000)) / 100
		if err := db.OrderLine.Insert(p, row.Tuple{w, d, o, int64(l), item, amount}); err != nil {
			return err
		}
		lsn = db.Eng.Log.Append(txn.RecUpdate, []byte("neworder-line"))
	}
	lsn = db.Eng.Log.Append(txn.RecCommit, nil)
	_ = lsn
	return db.Eng.Log.Commit(p, lsn)
}

// PaymentTxn updates warehouse, district and customer balances.
func (db *DB) PaymentTxn(p *sim.Proc, w, d, c int64) error {
	db.Eng.Server.Work(p, db.Cfg.TxnCPU)
	amount := float64(p.Rand().Intn(500000)) / 100
	wh, err := db.Warehouse.Get(p, w)
	if err != nil {
		return err
	}
	wh[1] = wh[1].(float64) + amount
	if err := db.Warehouse.Update(p, wh); err != nil {
		return err
	}
	di, err := db.District.Get(p, w, d)
	if err != nil {
		return err
	}
	di[2] = di[2].(float64) + amount
	if err := db.District.Update(p, di); err != nil {
		return err
	}
	cu, err := db.Customer.Get(p, w, d, c)
	if err != nil {
		return err
	}
	cu[3] = cu[3].(float64) - amount
	cu[4] = cu[4].(float64) + amount
	if err := db.Customer.Update(p, cu); err != nil {
		return err
	}
	lsn := db.Eng.Log.Append(txn.RecCommit, []byte("payment"))
	return db.Eng.Log.Commit(p, lsn)
}

// OrderStatusTxn reads a customer's most recent order and its lines.
func (db *DB) OrderStatusTxn(p *sim.Proc, w, d, c int64) error {
	db.Eng.Server.Work(p, db.Cfg.TxnCPU)
	slot := db.wd(w, d)
	o := db.nextOrder[slot] - 1 - int64(p.Rand().Intn(100))
	if o < 0 {
		o = 0
	}
	if _, err := db.Orders.Get(p, w, d, o); err != nil && err != catalog.ErrNotFound {
		return err
	}
	from := row.EncodeKey(nil, w, d, o)
	to := row.EncodeKey(nil, w, d, o+1)
	_, err := db.OrderLine.ScanRange(p, from, to, 0)
	return err
}

// DeliveryTxn delivers the oldest undelivered order in each district of
// a warehouse.
func (db *DB) DeliveryTxn(p *sim.Proc, w int64) error {
	db.Eng.Server.Work(p, db.Cfg.TxnCPU)
	for d := int64(0); d < int64(db.Cfg.DistrictsPer); d++ {
		slot := db.wd(w, d)
		o := db.nextDeliv[slot]
		if o >= db.nextOrder[slot] {
			continue
		}
		db.nextDeliv[slot]++
		if err := db.NewOrder.Delete(p, w, d, o); err != nil && err != catalog.ErrNotFound {
			return err
		}
		ord, err := db.Orders.Get(p, w, d, o)
		if err == catalog.ErrNotFound {
			continue
		}
		if err != nil {
			return err
		}
		ord[4] = int64(p.Rand().Intn(10))
		if err := db.Orders.Update(p, ord); err != nil {
			return err
		}
	}
	lsn := db.Eng.Log.Append(txn.RecCommit, []byte("delivery"))
	return db.Eng.Log.Commit(p, lsn)
}

// StockLevelTxn counts low-stock items among the last 20 orders of a
// district — the read-heavy transaction whose working set spans old data.
func (db *DB) StockLevelTxn(p *sim.Proc, w, d int64) error {
	db.Eng.Server.Work(p, db.Cfg.TxnCPU)
	slot := db.wd(w, d)
	hi := db.nextOrder[slot]
	lo := hi - 20
	if lo < 0 {
		lo = 0
	}
	// Bias toward older orders too: StockLevel in the read-mostly mix
	// reads back into history, giving the workload the larger working
	// set the paper describes — bounded by HistoryWindow so it exceeds
	// local memory but remains cacheable in the BPExt.
	if p.Rand().Intn(2) == 0 {
		span := int64(db.Cfg.HistoryWindow)
		if span > hi-20 {
			span = hi - 20
		}
		if span > 0 {
			lo = hi - 20 - p.Rand().Int63n(span)
			hi = lo + 20
		}
	}
	from := row.EncodeKey(nil, w, d, lo)
	to := row.EncodeKey(nil, w, d, hi)
	lines, err := db.OrderLine.ScanRange(p, from, to, 0)
	if err != nil {
		return err
	}
	low := 0
	for _, ln := range lines {
		st, err := db.Stock.Get(p, w, ln[4].(int64))
		if err != nil {
			return err
		}
		if st[2].(int64) < 15 {
			low++
		}
	}
	return nil
}

// RunOne executes one transaction drawn from the configured mix.
func (db *DB) RunOne(p *sim.Proc) error {
	w := int64(p.Rand().Intn(db.Cfg.Warehouses))
	d := int64(p.Rand().Intn(db.Cfg.DistrictsPer))
	c := int64(p.Rand().Intn(db.Cfg.CustomersPer))
	roll := p.Rand().Intn(100)
	if db.Cfg.ReadMostly {
		// 90% StockLevel; the rest split across the write mix.
		switch {
		case roll < 90:
			return db.StockLevelTxn(p, w, d)
		case roll < 95:
			return db.NewOrderTxn(p, w, d, c)
		case roll < 98:
			return db.PaymentTxn(p, w, d, c)
		default:
			return db.OrderStatusTxn(p, w, d, c)
		}
	}
	// Default mix: 45/43/4/4/4.
	switch {
	case roll < 45:
		return db.NewOrderTxn(p, w, d, c)
	case roll < 88:
		return db.PaymentTxn(p, w, d, c)
	case roll < 92:
		return db.OrderStatusTxn(p, w, d, c)
	case roll < 96:
		return db.DeliveryTxn(p, w)
	default:
		return db.StockLevelTxn(p, w, d)
	}
}
