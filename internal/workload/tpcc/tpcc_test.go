package tpcc

import (
	"testing"
	"time"

	"remotedb/internal/cluster"
	"remotedb/internal/engine"
	"remotedb/internal/engine/buffer"
	"remotedb/internal/hw/disk"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

func tiny() Config {
	cfg := DefaultConfig()
	cfg.Warehouses = 2
	cfg.DistrictsPer = 2
	cfg.CustomersPer = 30
	cfg.Items = 200
	cfg.Clients = 10
	return cfg
}

func rig(t *testing.T, cfg Config, fn func(p *sim.Proc, db *DB)) {
	t.Helper()
	k := sim.New(1)
	scfg := cluster.DefaultConfig()
	scfg.MemoryBytes = 1 << 30
	s := cluster.NewServer(k, "db", scfg)
	k.Go("t", func(p *sim.Proc) {
		ecfg := engine.DefaultConfig(8192)
		ecfg.Buffer = buffer.DefaultConfig(8192)
		ecfg.Buffer.WriterPeriod = 0
		ecfg.Buffer.PageAccessCPU = 0
		eng, err := engine.New(p, s, engine.Files{
			Data: vfs.NewDeviceFile("data", disk.NullDevice{DeviceName: "null"}),
			Log:  vfs.NewMemFile("log"),
			Temp: vfs.NewMemFile("temp"),
		}, ecfg)
		if err != nil {
			t.Error(err)
			return
		}
		db, err := Load(p, eng, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		fn(p, db)
	})
	k.Run(100 * time.Hour)
}

func TestLoadSeedsHistory(t *testing.T) {
	rig(t, tiny(), func(p *sim.Proc, db *DB) {
		wd := db.Cfg.Warehouses * db.Cfg.DistrictsPer
		if got := db.Orders.Clustered.Entries; got != int64(wd*3000) {
			t.Errorf("orders = %d", got)
		}
		if got := db.NewOrder.Clustered.Entries; got != int64(wd*100) {
			t.Errorf("new_order = %d", got)
		}
		if got := db.Stock.Clustered.Entries; got != int64(db.Cfg.Warehouses*db.Cfg.Items) {
			t.Errorf("stock = %d", got)
		}
	})
}

func TestEachTransactionType(t *testing.T) {
	rig(t, tiny(), func(p *sim.Proc, db *DB) {
		if err := db.NewOrderTxn(p, 0, 0, 5); err != nil {
			t.Errorf("NewOrder: %v", err)
		}
		if err := db.PaymentTxn(p, 0, 1, 3); err != nil {
			t.Errorf("Payment: %v", err)
		}
		if err := db.OrderStatusTxn(p, 1, 0, 2); err != nil {
			t.Errorf("OrderStatus: %v", err)
		}
		if err := db.DeliveryTxn(p, 1); err != nil {
			t.Errorf("Delivery: %v", err)
		}
		if err := db.StockLevelTxn(p, 0, 0); err != nil {
			t.Errorf("StockLevel: %v", err)
		}
	})
}

func TestNewOrderAdvancesState(t *testing.T) {
	rig(t, tiny(), func(p *sim.Proc, db *DB) {
		before := db.Orders.Clustered.Entries
		for i := 0; i < 20; i++ {
			if err := db.NewOrderTxn(p, 0, 0, int64(i%30)); err != nil {
				t.Fatal(err)
			}
		}
		if db.Orders.Clustered.Entries != before+20 {
			t.Errorf("orders grew by %d, want 20", db.Orders.Clustered.Entries-before)
		}
		if db.OrderLine.Clustered.Entries < before*10 {
			t.Error("order lines missing")
		}
	})
}

func TestDeliveryConsumesNewOrders(t *testing.T) {
	rig(t, tiny(), func(p *sim.Proc, db *DB) {
		before := db.NewOrder.Clustered.Entries
		if err := db.DeliveryTxn(p, 0); err != nil {
			t.Fatal(err)
		}
		after := db.NewOrder.Clustered.Entries
		if after != before-int64(db.Cfg.DistrictsPer) {
			t.Errorf("new_order went %d -> %d, want -%d", before, after, db.Cfg.DistrictsPer)
		}
	})
}

func TestMixesRun(t *testing.T) {
	for _, readMostly := range []bool{false, true} {
		cfg := tiny()
		cfg.ReadMostly = readMostly
		rig(t, cfg, func(p *sim.Proc, db *DB) {
			for i := 0; i < 200; i++ {
				if err := db.RunOne(p); err != nil {
					t.Fatalf("mix readMostly=%v txn %d: %v", readMostly, i, err)
				}
			}
		})
	}
}
