// Package workload implements the paper's benchmark workloads (Table 4):
// the SQLIO-style I/O micro-benchmark, RangeScan (buffer-pool stress),
// Hash+Sort (TempDB stress), and — in subpackages — the scaled TPC-H,
// TPC-DS and TPC-C stand-ins. Sizes are the paper's scaled ~1000x down
// so the memory-to-data ratios (what drives all the caching behaviour)
// are preserved; see DESIGN.md §2.
package workload

import (
	"time"

	"remotedb/internal/metrics"
	"remotedb/internal/sim"
)

// Result summarizes one driven workload run.
type Result struct {
	Queries  int64
	Errors   int64
	Elapsed  time.Duration
	Latency  *metrics.Histogram
	ByClient []int64
}

// Throughput returns queries per second of virtual time.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Queries) / r.Elapsed.Seconds()
}

// Drive runs clients concurrent loops of fn for warmup+measure virtual
// time, collecting latencies only during the measurement window. fn
// errors are counted, not fatal (best-effort storage makes transient
// errors legitimate).
func Drive(p *sim.Proc, clients int, warmup, measure time.Duration, fn func(wp *sim.Proc, client int) error) *Result {
	k := p.Kernel()
	res := &Result{Latency: metrics.NewHistogram(), ByClient: make([]int64, clients)}
	start := p.Now()
	measureFrom := start + warmup
	end := measureFrom + measure
	wg := sim.NewWaitGroup(k)
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		i := i
		k.Go("client", func(wp *sim.Proc) {
			defer wg.Done()
			for wp.Now() < end {
				t0 := wp.Now()
				err := fn(wp, i)
				if wp.Now() >= measureFrom && wp.Now() < end {
					if err != nil {
						res.Errors++
					} else {
						res.Queries++
						res.ByClient[i]++
						res.Latency.Observe(wp.Now() - t0)
					}
				}
			}
		})
	}
	wg.Wait(p)
	res.Elapsed = measure
	return res
}

// Sampler periodically samples a value into a metrics series, for the
// drill-down figures (11 and 14). Call Stop to end it.
type Sampler struct {
	Series metrics.Series
	stop   bool
}

// NewSampler starts sampling fn every period; fn returns the value to
// record (typically a windowed rate computed from cumulative counters).
func NewSampler(k *sim.Kernel, name string, period time.Duration, fn func(at time.Duration) float64) *Sampler {
	s := &Sampler{Series: metrics.Series{Name: name}}
	k.Go("sampler:"+name, func(p *sim.Proc) {
		for !s.stop {
			p.Sleep(period)
			s.Series.Add(p.Now(), fn(p.Now()))
		}
	})
	return s
}

// Stop ends the sampler at its next tick.
func (s *Sampler) Stop() { s.stop = true }

// Zipf-less hotspot distribution used by the priming experiment: a
// fraction hotAccess of accesses hit the first hotFrac of the keyspace.
type Hotspot struct {
	HotFrac   float64 // fraction of keyspace that is hot (paper: 0.20)
	HotAccess float64 // fraction of accesses that go hot (paper: 0.99)
}

// Pick draws a key in [0, n) under the distribution.
func (h Hotspot) Pick(p *sim.Proc, n int64) int64 {
	hot := int64(h.HotFrac * float64(n))
	if hot <= 0 {
		hot = 1
	}
	if p.Rand().Float64() < h.HotAccess {
		return p.Rand().Int63n(hot)
	}
	if n <= hot {
		return p.Rand().Int63n(n)
	}
	return hot + p.Rand().Int63n(n-hot)
}
