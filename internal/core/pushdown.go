// Pushed range reads: PushRead ships a predicate + projection to the
// donors backing a striped, replicated, integrity-framed file and gets
// back only the qualifying row bytes. Integrity precedes evaluation —
// each element's frame is checksum-verified donor-side *before* the
// predicate runs, against the client-held generation — and failures
// degrade, never break: a corrupt or revoked element falls back to the
// ordinary verified fetch path (replica failover, in-place repair,
// poison-on-total-loss) with the *same* evaluator applied client-side,
// so a degraded stripe costs bandwidth, not correctness.
//
// The fallback ladder, from cheapest to most general:
//
//  1. donor verify fails (bit flip, torn write, stale frame) — the
//     element is refetched through fetchBlock, which fails over across
//     replicas and repairs the bad copy, and evaluated client-side;
//  2. the element's MR is revoked mid-flight — same refetch, which
//     marks the replica lost and rebuilds it in the background;
//  3. pushdown is unavailable wholesale (encrypted payloads, SMB
//     transport, unframed file) — the caller sees ErrNoPush (wrapping
//     fault.ErrUnavailable) and fetches whole blocks itself.
package core

import (
	"errors"
	"fmt"

	"remotedb/internal/fault"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// ErrNoPush reports that this file cannot serve pushed reads (no
// integrity frames, or the client/transport has no donor compute path).
// It wraps fault.ErrUnavailable: fetch the range whole instead.
var ErrNoPush = fmt.Errorf("core: pushed read unavailable (%w)", fault.ErrUnavailable)

// PushChunk returns the chunk size pushed record logs stored in this
// file must be aligned to — one integrity block, so every framed block
// is a self-contained record run — or 0 when the file cannot serve
// pushed reads.
func (f *File) PushChunk() int {
	if !f.fs.Integrity {
		return 0
	}
	return f.fs.BlockSize
}

// PushRead evaluates q against the pushable record log stored in
// [off, off+n) — off must be block-aligned — and returns the
// qualifying projected rows as one record log (parse with
// rmem.PushRecords). Donor-side evaluation is attempted for every
// written block in one ScanPush; elements that fail integrity or lose
// their region mid-flight are transparently refetched and evaluated
// client-side, so the only errors callers see are the ones ordinary
// reads would also see (whole stripe lost, block poisoned).
func (f *File) PushRead(p *sim.Proc, off, n int64, q *rmem.PushQuery) ([]byte, rmem.PushStats, error) {
	var stats rmem.PushStats
	if err := f.check(off, int(n)); err != nil {
		return nil, stats, err
	}
	if !f.fs.Integrity {
		return nil, stats, ErrNoPush
	}
	bs := int64(f.fs.BlockSize)
	if off%bs != 0 {
		return nil, stats, fmt.Errorf("core: pushed read at %d not aligned to %d-byte blocks", off, bs)
	}
	lo := off / bs
	hi := (off + n + bs - 1) / bs
	type ref struct {
		g    int64
		s, r int
	}
	var elems []rmem.PushElem
	var refs []ref
	for g := lo; g < hi; g++ {
		if f.poisoned[g] {
			return nil, stats, f.corruptErr(g)
		}
		if f.gens[g] == 0 {
			continue // never written: zero records, no wire traffic
		}
		s, frameOff := f.blockHome(g)
		r := -1
		for cand := range f.leases[s] {
			if f.down[s][cand] {
				continue
			}
			if !f.leases[s][cand].Valid(p.Now()) {
				f.replicaLost(s, cand)
				if f.unavailable {
					return nil, stats, vfs.ErrUnavailable
				}
				continue
			}
			r = cand
			break
		}
		if r < 0 {
			if f.unavailable {
				return nil, stats, vfs.ErrUnavailable
			}
			return nil, stats, f.stripeErr(s)
		}
		gen := f.gens[g]
		blockSize := f.fs.BlockSize
		elems = append(elems, rmem.PushElem{
			MR:  f.leases[s][r].MR,
			Off: frameOff,
			N:   f.frameSize(),
			Verify: func(raw []byte) ([]byte, error) {
				if err := verifyFrame(raw, blockSize, gen); err != nil {
					return nil, err
				}
				return raw[:blockSize], nil
			},
		})
		refs = append(refs, ref{g: g, s: s, r: r})
	}
	f.fs.PushReads++
	if len(elems) == 0 {
		return nil, stats, nil
	}
	outs, stats, errs := f.fs.Client.ScanPush(p, f.fs.Transport, elems, q)
	var out []byte
	for i := range elems {
		if errs == nil || errs[i] == nil {
			out = append(out, outs[i]...)
			continue
		}
		err := errs[i]
		if errors.Is(err, rmem.ErrPushUnavailable) {
			return nil, stats, ErrNoPush
		}
		if errors.Is(err, rmem.ErrRevoked) {
			// The region vanished mid-flight: mark the replica lost so a
			// background rebuild starts, then refetch through failover.
			f.replicaLost(refs[i].s, refs[i].r)
		} else {
			// Donor-side verify failed: the checksum pass *is* the
			// detection; the refetch below fails over and repairs.
			f.fs.Corruptions.Add(1, bs)
		}
		fb, ferr := f.pushFallbackBlock(p, refs[i].g, q)
		if ferr != nil {
			return nil, stats, ferr
		}
		out = append(out, fb...)
		f.fs.PushFallbacks++
	}
	f.Reads++
	f.BytesRead += stats.BytesReturned
	return out, stats, nil
}

// pushFallbackBlock fetches block g through the ordinary verified read
// path (replica failover, in-place repair, poisoning) and runs the same
// evaluator client-side, charging the database server the CPU the donor
// would have spent.
func (f *File) pushFallbackBlock(p *sim.Proc, g int64, q *rmem.PushQuery) ([]byte, error) {
	frame := make([]byte, f.frameSize())
	if err := f.fetchBlock(p, g, frame); err != nil {
		return nil, err
	}
	data := frame[:f.fs.BlockSize]
	out, rows, _, err := rmem.EvalPush(data, q, nil)
	if err != nil {
		// The frame verified but its records do not parse: announce it
		// the same way an unverifiable block is announced.
		f.poisonBlock(p, g)
		return nil, f.corruptErr(g)
	}
	f.fs.Client.Server.Work(p, rmem.PushEvalCost(int64(len(data)), int64(rows), len(q.Preds), 1))
	f.BytesRead += int64(len(data))
	return out, nil
}
