package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"remotedb/internal/broker"
	"remotedb/internal/broker/metastore"
	"remotedb/internal/cluster"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// faultEnv is env plus the knobs the recovery tests need: a custom
// broker config (short TTLs) and the metastore handle (partitions).
type faultEnv struct {
	env
	store *metastore.Store
}

func newFaultEnv(p *sim.Proc, n, mrs int, bcfg broker.Config, cfg Config) *faultEnv {
	k := p.Kernel()
	e := &faultEnv{env: env{k: k}}
	scfg := cluster.DefaultConfig()
	scfg.MemoryBytes = 64 << 20
	e.db = cluster.NewServer(k, "db1", scfg)
	e.store = metastore.New(k, 10*time.Microsecond)
	e.b = broker.New(p, e.store, bcfg)
	for i := 0; i < n; i++ {
		m := cluster.NewServer(k, fmt.Sprintf("m%d", i+1), scfg)
		e.mems = append(e.mems, m)
		px, err := e.b.AddProxy(p, m, 1<<20, mrs)
		if err != nil {
			panic(err)
		}
		e.proxies = append(e.proxies, px)
	}
	client := rmem.NewClient(p, e.db, cfg.Client)
	e.fs = NewFS(p, e.b, client, cfg)
	return e
}

// Revoking one stripe's lease degrades only that stripe: the survivors
// keep serving, the repair re-leases a replacement, and the salvage
// callback repopulates the range.
func TestStripeRepairAfterRevocation(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newFaultEnv(p, 2, 4, broker.DefaultConfig(), DefaultConfig())
		f, err := e.fs.Create(p, "f", 2<<20) // 2 stripes of 1 MiB
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.OpenConn(p); err != nil {
			t.Error(err)
			return
		}
		f.SetSalvage(func(sp *sim.Proc, sf *File, off, n int64) error {
			return sf.WriteAt(sp, bytes.Repeat([]byte{0xAB}, int(n)), off)
		})
		if err := f.WriteAt(p, bytes.Repeat([]byte{0x11}, 8192), 1<<20); err != nil {
			t.Error(err)
			return
		}

		ids := f.LeaseIDs()
		if len(ids) != 2 {
			t.Errorf("stripes: got %d leases", len(ids))
			return
		}
		e.b.Revoke(ids[0])

		// First touch of the lost stripe notices the revocation: a
		// degraded, classified error — not silence, not a terminal state.
		buf := make([]byte, 4096)
		err = f.ReadAt(p, buf, 0)
		if !errors.Is(err, vfs.ErrUnavailable) {
			t.Errorf("read of lost stripe: %v, want ErrUnavailable class", err)
		}
		if !f.Degraded() || f.Unavailable() {
			t.Errorf("degraded=%v unavailable=%v, want true/false", f.Degraded(), f.Unavailable())
		}
		// The surviving stripe still serves.
		if err := f.ReadAt(p, buf, 1<<20); err != nil {
			t.Errorf("surviving stripe read: %v", err)
		} else if buf[0] != 0x11 {
			t.Errorf("surviving stripe corrupted: %#x", buf[0])
		}

		p.Sleep(time.Second) // background re-lease + salvage
		if f.Degraded() || f.Unavailable() {
			t.Errorf("after repair: degraded=%v unavailable=%v", f.Degraded(), f.Unavailable())
		}
		if e.fs.Restripes != 1 || e.fs.Salvages != 1 || e.fs.LostStripes != 1 {
			t.Errorf("restripes=%d salvages=%d lost=%d, want 1/1/1",
				e.fs.Restripes, e.fs.Salvages, e.fs.LostStripes)
		}
		if err := f.ReadAt(p, buf, 0); err != nil {
			t.Errorf("read after repair: %v", err)
		} else if buf[0] != 0xAB {
			t.Errorf("salvage did not repopulate: got %#x want 0xAB", buf[0])
		}
	})
	k.Run(time.Minute)
}

// With recovery disabled the old contract holds: the first revocation
// turns the whole file terminally unavailable.
func TestRecoveryDisabledIsTerminal(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		cfg := DefaultConfig()
		cfg.Recover = false
		e := newFaultEnv(p, 2, 4, broker.DefaultConfig(), cfg)
		f, err := e.fs.Create(p, "f", 2<<20)
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.OpenConn(p); err != nil {
			t.Error(err)
			return
		}
		e.b.Revoke(f.LeaseIDs()[0])
		if err := f.ReadAt(p, make([]byte, 4096), 0); !errors.Is(err, vfs.ErrUnavailable) {
			t.Errorf("read after revocation: %v", err)
		}
		if !f.Unavailable() {
			t.Error("file should be terminally unavailable with recovery off")
		}
		if e.fs.Restripes != 0 {
			t.Errorf("restripes=%d, want 0", e.fs.Restripes)
		}
	})
	k.Run(time.Minute)
}

// A metastore partition shorter than the retry budget must be invisible:
// the renew loop retries through it and the file never degrades.
func TestRenewRetriesThroughPartition(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		bcfg := broker.Config{LeaseTTL: 200 * time.Millisecond}
		e := newFaultEnv(p, 2, 4, bcfg, DefaultConfig())
		f, err := e.fs.Create(p, "f", 2<<20)
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.OpenConn(p); err != nil {
			t.Error(err)
			return
		}
		// The renew loop ticks at TTL/2 = 100ms. Partition the metastore
		// across one tick, narrower than the ~15ms default retry budget.
		p.Kernel().GoAt(p.Now()+95*time.Millisecond, "cut", func(fp *sim.Proc) {
			e.store.SetPartitioned(true)
		})
		p.Kernel().GoAt(p.Now()+104*time.Millisecond, "heal", func(fp *sim.Proc) {
			e.store.SetPartitioned(false)
		})
		p.Sleep(500 * time.Millisecond) // several renew cycles, incl. the cut one
		if f.Degraded() || f.Unavailable() {
			t.Errorf("file degraded by transient partition: degraded=%v unavailable=%v",
				f.Degraded(), f.Unavailable())
		}
		if e.fs.RenewRetries == 0 {
			t.Error("expected renew retries through the partition")
		}
		if e.fs.LostStripes != 0 {
			t.Errorf("lost stripes: %d, want 0", e.fs.LostStripes)
		}
		// Leases are still live afterwards.
		for _, reps := range f.leases {
			for _, l := range reps {
				if !l.Valid(p.Now()) {
					t.Error("lease expired despite retrying renew loop")
				}
			}
		}
	})
	k.Run(time.Minute)
}
