// Package core implements the paper's primary contribution: the
// lightweight file API over remote memory (Table 2). A remote file is a
// set of leased, fixed-size memory regions scattered across the cluster's
// memory servers; Create obtains leases, Open connects RDMA flows,
// Read/Write translate file offsets to (server, MR, offset) and issue
// RDMA transfers, Close disconnects, and Delete relinquishes the leases.
//
// The abstraction is deliberately best-effort (Section 4.1.5): remote
// memory is elastic and unreliable, so leases expire under donor memory
// pressure and whole memory servers vanish. The FS survives this in
// three layers:
//
//  1. lease renewal retries transient metastore/broker failures with
//     exponential backoff + jitter (fault.RetryPolicy);
//  2. a revoked or expired stripe puts the file in degraded mode — the
//     surviving stripes stay readable — while a background process
//     leases a replacement MR and restripes the file;
//  3. a per-file Salvage callback repopulates the lost stripe (the
//     buffer-pool extension drops the clean pages it cached there; the
//     semantic cache REDOes the structure from the WAL, §6.3).
//
// Only when recovery is disabled, or re-leasing fails past the retry
// budget, does the file turn permanently Unavailable and the consumer
// falls back to disk for good. No correctness ever depends on remote
// memory.
package core

import (
	"errors"
	"fmt"
	"time"

	"remotedb/internal/broker"
	"remotedb/internal/fault"
	"remotedb/internal/hw/nic"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// ConnectCost is the one-time cost of setting up an RDMA flow (queue
// pair) to one memory server on Open.
const ConnectCost = 100 * time.Microsecond

// Salvage repopulates the byte range [off, off+n) of f after the stripe
// holding it was lost and re-leased: the replacement MR starts zeroed,
// and the callback restores whatever the consumer needs there (or simply
// drops cached state that pointed into the range). It runs in a
// background simulation process after the replacement lease is in place,
// so f is readable and writable again when it is invoked.
type Salvage func(p *sim.Proc, f *File, off, n int64) error

// FS creates and opens remote-memory files for one database server.
type FS struct {
	Broker    *broker.Broker
	Client    *rmem.Client
	Transport rmem.Transport
	Placement broker.Placement

	// AutoRenew spawns a background renewal process per file keeping its
	// leases alive at half-TTL cadence.
	AutoRenew bool

	// Recover enables re-lease/restripe recovery: when a stripe's lease
	// is revoked or expires, the FS leases a replacement MR and invokes
	// the file's Salvage callback instead of declaring the whole file
	// unavailable. Surviving stripes stay readable meanwhile.
	Recover bool

	// Retry is the backoff policy for transient broker/metastore
	// failures during renewal and re-leasing.
	Retry fault.RetryPolicy

	// DefaultSalvage, when non-nil, is installed on every created file
	// (a per-file SetSalvage overrides it).
	DefaultSalvage Salvage

	files map[string]*File

	// Fault-tolerance counters (virtual-time observability).
	Restripes    int64 // stripes successfully re-leased
	Salvages     int64 // salvage callbacks run to completion
	RenewRetries int64 // renewal attempts beyond the first, per RPC
	LostStripes  int64 // stripe-loss events detected
}

// Config parameterizes an FS.
type Config struct {
	Protocol  nic.Protocol
	Placement broker.Placement
	Client    rmem.ClientConfig
	AutoRenew bool

	// Recover enables re-lease/restripe recovery (see FS.Recover).
	Recover bool
	// Retry is the transient-failure backoff policy (see FS.Retry).
	Retry fault.RetryPolicy
	// Salvage is the FS-wide default salvage callback (see
	// FS.DefaultSalvage).
	Salvage Salvage
}

// DefaultConfig is the paper's Custom design with recovery on.
func DefaultConfig() Config {
	return Config{
		Protocol:  nic.ProtoRDMA,
		Placement: broker.PlaceSpread,
		Client:    rmem.DefaultClientConfig(),
		AutoRenew: true,
		Recover:   true,
		Retry:     fault.DefaultRetryPolicy(),
	}
}

// NewFS creates a remote file system client on the database server that
// owns client. The client's staging buffers are registered here.
func NewFS(p *sim.Proc, b *broker.Broker, client *rmem.Client, cfg Config) *FS {
	return &FS{
		Broker:         b,
		Client:         client,
		Transport:      rmem.NewTransport(cfg.Protocol),
		Placement:      cfg.Placement,
		AutoRenew:      cfg.AutoRenew,
		Recover:        cfg.Recover,
		Retry:          cfg.Retry,
		DefaultSalvage: cfg.Salvage,
		files:          make(map[string]*File),
	}
}

// File is a remote-memory file (vfs.File) striped over leased MRs.
type File struct {
	fs     *FS
	name   string
	size   int64
	mrSize int64
	leases []*broker.Lease

	open        bool
	closed      bool
	deleted     bool
	unavailable bool // terminal: recovery disabled or re-lease failed
	renewStop   bool

	down      []bool // per-stripe: lease lost, replacement not yet in place
	repairing []bool // per-stripe: a repair process is running
	salvage   Salvage

	connected map[string]bool

	Reads, Writes      int64
	BytesRead, Written int64
}

// Errors returned by the remote file layer, wrapped over the
// repository-wide fault taxonomy where a class applies.
var (
	ErrExists    = errors.New("core: file already exists")
	ErrNotFound  = fmt.Errorf("core: file does not exist (%w)", fault.ErrNotFound)
	ErrNotOpen   = errors.New("core: file not open")
	ErrTooLarge  = errors.New("core: access beyond file size")
	ErrNoLeases  = fmt.Errorf("core: could not lease remote memory (%w)", fault.ErrUnavailable)
	ErrAlignment = errors.New("core: file size must be positive")
)

// request leases n MRs, retrying transient broker failures per the FS
// retry policy.
func (fs *FS) request(p *sim.Proc, n int) ([]*broker.Lease, error) {
	var out []*broker.Lease
	err := fault.Retry(p, fs.Retry, func() error {
		leases, err := fs.Broker.Request(p, fs.Client.Server.Name, n, fs.Placement)
		if err != nil {
			return err
		}
		out = leases
		return nil
	})
	return out, err
}

// Create leases remote MRs backing a file of the given size. The file
// still needs Open before I/O.
func (fs *FS) Create(p *sim.Proc, name string, size int64) (*File, error) {
	if _, dup := fs.files[name]; dup {
		return nil, ErrExists
	}
	if size <= 0 {
		return nil, ErrAlignment
	}
	probe, err := fs.request(p, 1)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrNoLeases, err)
	}
	mrSize := int64(probe[0].MR.Size())
	need := int((size + mrSize - 1) / mrSize)
	leases := probe
	if need > 1 {
		more, err := fs.request(p, need-1)
		if err != nil {
			fs.Broker.Release(p, probe[0])
			return nil, fmt.Errorf("%w: %w", ErrNoLeases, err)
		}
		leases = append(leases, more...)
	}
	f := &File{
		fs:        fs,
		name:      name,
		size:      size,
		mrSize:    mrSize,
		leases:    leases,
		down:      make([]bool, len(leases)),
		repairing: make([]bool, len(leases)),
		salvage:   fs.DefaultSalvage,
		connected: make(map[string]bool),
	}
	fs.files[name] = f
	if fs.AutoRenew {
		p.Kernel().Go("lease-renew:"+name, f.renewLoop)
	}
	return f, nil
}

// Lookup returns a created file without opening connections (used by
// observability and the fault-injection harness).
func (fs *FS) Lookup(name string) (*File, bool) {
	f, ok := fs.files[name]
	return f, ok
}

// Open connects RDMA flows to every memory server backing the file.
func (fs *FS) Open(p *sim.Proc, name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, ErrNotFound
	}
	return f, f.OpenConn(p)
}

// OpenConn establishes connections for an already-created file.
func (f *File) OpenConn(p *sim.Proc) error {
	if f.closed || f.deleted {
		return vfs.ErrClosed
	}
	for _, l := range f.leases {
		server := l.MR.Owner.Name
		if !f.connected[server] {
			p.Sleep(ConnectCost)
			f.connected[server] = true
		}
	}
	f.open = true
	return nil
}

// CloseAll closes every file of this FS (stopping lease-renewal
// processes); leases stay valid until they expire or the files are
// Deleted. Call at the end of an experiment so the simulation's event
// queue can drain.
func (fs *FS) CloseAll(p *sim.Proc) {
	for _, f := range fs.files {
		f.Close(p)
	}
}

// Delete closes the file and relinquishes all its leases.
func (fs *FS) Delete(p *sim.Proc, name string) error {
	f, ok := fs.files[name]
	if !ok {
		return ErrNotFound
	}
	f.deleted = true
	f.open = false
	f.renewStop = true
	for _, l := range f.leases {
		fs.Broker.Release(p, l)
	}
	delete(fs.files, name)
	return nil
}

// SetSalvage installs the per-file stripe-repopulation callback,
// overriding the FS-wide default. Passing nil restores "no salvage":
// re-leased stripes come back zeroed.
func (f *File) SetSalvage(fn Salvage) { f.salvage = fn }

// renewLoop keeps the file's leases alive until stopped, retrying
// transient failures with backoff and handing truly lost leases to the
// restripe path.
func (f *File) renewLoop(p *sim.Proc) {
	interval := f.fs.Broker.LeaseTTL() / 2
	for {
		p.Sleep(interval)
		if f.renewStop || f.deleted {
			return
		}
		for i := range f.leases {
			if f.down[i] || f.repairing[i] {
				continue
			}
			l := f.leases[i]
			attempts := 0
			err := fault.Retry(p, f.fs.Retry, func() error {
				attempts++
				return f.fs.Broker.Renew(p, l)
			})
			if attempts > 1 {
				f.fs.RenewRetries += int64(attempts - 1)
			}
			if f.renewStop || f.deleted {
				return
			}
			if err != nil {
				// Retries exhausted or the lease is revoked/expired:
				// either way this stripe's region must be replaced.
				f.stripeLost(p, i)
				if f.unavailable {
					return
				}
			}
		}
	}
}

// stripeLost transitions stripe idx into degraded mode and starts the
// background repair, or — when recovery is disabled — turns the whole
// file unavailable (the pre-recovery best-effort contract).
func (f *File) stripeLost(p *sim.Proc, idx int) {
	if f.closed || f.deleted || f.unavailable {
		return
	}
	if !f.fs.Recover {
		f.unavailable = true
		return
	}
	if f.down[idx] || f.repairing[idx] {
		return // already being handled
	}
	f.fs.LostStripes++
	f.down[idx] = true
	f.repairing[idx] = true
	name := fmt.Sprintf("restripe:%s:%d", f.name, idx)
	p.Kernel().Go(name, func(rp *sim.Proc) { f.repairStripe(rp, idx) })
}

// repairStripe leases a replacement MR for stripe idx (retrying with
// backoff), swaps it into the stripe table, and runs the salvage
// callback to repopulate the range. If re-leasing fails past the retry
// budget the file turns permanently unavailable.
func (f *File) repairStripe(p *sim.Proc, idx int) {
	defer func() { f.repairing[idx] = false }()
	leases, err := f.fs.request(p, 1)
	if f.closed || f.deleted {
		if err == nil {
			f.fs.Broker.Release(p, leases[0])
		}
		return
	}
	if err != nil {
		f.unavailable = true
		return
	}
	l := leases[0]
	if int64(l.MR.Size()) != f.mrSize {
		// Replacement pools must match the stripe geometry; a mismatch
		// means the cluster was reconfigured under us.
		f.fs.Broker.Release(p, l)
		f.unavailable = true
		return
	}
	server := l.MR.Owner.Name
	if !f.connected[server] {
		p.Sleep(ConnectCost)
		f.connected[server] = true
	}
	f.leases[idx] = l
	f.down[idx] = false
	f.fs.Restripes++
	if f.salvage != nil {
		off := int64(idx) * f.mrSize
		n := f.mrSize
		if off+n > f.size {
			n = f.size - off
		}
		if err := f.salvage(p, f, off, n); err == nil {
			f.fs.Salvages++
		}
	}
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the created size.
func (f *File) Size() int64 { return f.size }

// Unavailable reports whether the file lost its backing memory for good
// (recovery disabled, or a replacement lease could not be obtained).
func (f *File) Unavailable() bool { return f.unavailable }

// Degraded reports whether any stripe is currently lost and awaiting
// repair; reads of the surviving stripes still succeed.
func (f *File) Degraded() bool {
	for i := range f.down {
		if f.down[i] || f.repairing[i] {
			return true
		}
	}
	return false
}

// Stripes returns the stripe count.
func (f *File) Stripes() int { return len(f.leases) }

// LeaseIDs returns the IDs of the leases currently backing the file, in
// stripe order. Fault-injection uses them to revoke specific stripes.
func (f *File) LeaseIDs() []broker.LeaseID {
	out := make([]broker.LeaseID, len(f.leases))
	for i, l := range f.leases {
		out[i] = l.ID
	}
	return out
}

// Servers returns the distinct memory servers backing the file.
func (f *File) Servers() []string {
	seen := make(map[string]bool)
	var out []string
	for _, l := range f.leases {
		name := l.MR.Owner.Name
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

func (f *File) check(off int64, n int) error {
	if f.closed || f.deleted {
		return vfs.ErrClosed
	}
	if !f.open {
		return ErrNotOpen
	}
	if f.unavailable {
		return vfs.ErrUnavailable
	}
	if off < 0 || off+int64(n) > f.size {
		return ErrTooLarge
	}
	return nil
}

// stripeErr is the degraded-mode error for one lost stripe; surviving
// stripes keep serving.
func (f *File) stripeErr(idx int) error {
	return fmt.Errorf("core: stripe %d of %q lost, repair in progress: %w", idx, f.name, vfs.ErrUnavailable)
}

// access splits the range [off, off+len(b)) across MRs and issues one
// transfer per fragment. A fragment on a lost stripe fails with a
// degraded-mode error (wrapping vfs.ErrUnavailable) and triggers repair;
// fragments on healthy stripes are unaffected.
func (f *File) access(p *sim.Proc, b []byte, off int64, write bool) error {
	if err := f.check(off, len(b)); err != nil {
		return err
	}
	for len(b) > 0 {
		idx := off / f.mrSize
		within := off % f.mrSize
		n := f.mrSize - within
		if n > int64(len(b)) {
			n = int64(len(b))
		}
		if f.down[idx] {
			return f.stripeErr(int(idx))
		}
		l := f.leases[idx]
		if !l.Valid(p.Now()) {
			f.stripeLost(p, int(idx))
			if f.unavailable {
				return vfs.ErrUnavailable
			}
			return f.stripeErr(int(idx))
		}
		var err error
		if write {
			err = f.fs.Transport.Write(p, f.fs.Client, l.MR, int(within), b[:n])
		} else {
			err = f.fs.Transport.Read(p, f.fs.Client, l.MR, int(within), b[:n])
		}
		if err != nil {
			if errors.Is(err, rmem.ErrRevoked) {
				f.stripeLost(p, int(idx))
				if f.unavailable {
					return vfs.ErrUnavailable
				}
				return f.stripeErr(int(idx))
			}
			return err
		}
		b = b[n:]
		off += n
	}
	if write {
		f.Writes++
	} else {
		f.Reads++
	}
	return nil
}

// ReadAt reads len(b) bytes at off via RDMA.
func (f *File) ReadAt(p *sim.Proc, b []byte, off int64) error {
	err := f.access(p, b, off, false)
	if err == nil {
		f.BytesRead += int64(len(b))
	}
	return err
}

// WriteAt writes b at off via RDMA.
func (f *File) WriteAt(p *sim.Proc, b []byte, off int64) error {
	err := f.access(p, b, off, true)
	if err == nil {
		f.Written += int64(len(b))
	}
	return err
}

// Close tears down connections; leases are kept (reopen is possible)
// until Delete.
func (f *File) Close(p *sim.Proc) error {
	f.open = false
	f.closed = true
	f.renewStop = true
	return nil
}

var _ vfs.File = (*File)(nil)
