// Package core implements the paper's primary contribution: the
// lightweight file API over remote memory (Table 2). A remote file is a
// set of leased, fixed-size memory regions scattered across the cluster's
// memory servers; Create obtains leases, Open connects RDMA flows,
// Read/Write translate file offsets to (server, MR, offset) and issue
// RDMA transfers, Close disconnects, and Delete relinquishes the leases.
//
// The abstraction is deliberately best-effort (Section 4.1.5): remote
// memory is elastic and unreliable, so leases expire under donor memory
// pressure and whole memory servers vanish. The FS survives this in
// four layers:
//
//  1. lease renewal retries transient metastore/broker failures with
//     exponential backoff + jitter (fault.RetryPolicy);
//  2. a revoked or expired stripe puts the file in degraded mode — the
//     surviving stripes stay readable — while a background process
//     leases a replacement MR and restripes the file;
//  3. a per-file Salvage callback repopulates the lost stripe (the
//     buffer-pool extension drops the clean pages it cached there; the
//     semantic cache REDOes the structure from the WAL, §6.3);
//  4. optionally (see Config.Integrity / Config.Replication and
//     integrity.go) every remote block carries a CRC-32C + generation
//     frame verified on read, stripes are replicated K ways across
//     distinct donors, reads fail over to a healthy replica on
//     corruption or revocation with no salvage and no degraded window,
//     and a background scrubber sweeps for latent corruption.
//
// Only when recovery is disabled, or re-leasing fails past the retry
// budget, does the file turn permanently Unavailable and the consumer
// falls back to disk for good. No correctness ever depends on remote
// memory: without integrity frames a failure is always announced
// (revocation), and with them even silent bit flips, torn writes, and
// stale buffers are detected before any byte reaches the engine.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"remotedb/internal/broker"
	"remotedb/internal/fault"
	"remotedb/internal/hw/nic"
	"remotedb/internal/metrics"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// ConnectCost is the one-time cost of setting up an RDMA flow (queue
// pair) to one memory server on Open.
const ConnectCost = 100 * time.Microsecond

// Salvage repopulates the byte range [off, off+n) of f after the stripe
// holding it was lost and re-leased: the replacement MR starts zeroed,
// and the callback restores whatever the consumer needs there (or simply
// drops cached state that pointed into the range). It runs in a
// background simulation process after the replacement lease is in place,
// so f is readable and writable again when it is invoked.
type Salvage func(p *sim.Proc, f *File, off, n int64) error

// FS creates and opens remote-memory files for one database server.
type FS struct {
	Broker    broker.LeaseService
	Client    *rmem.Client
	Transport rmem.Transport
	Placement broker.Placement

	// Tenant is the workload leases are charged to for broker admission
	// (quotas, max-min fairness); empty defaults to the holder name.
	Tenant string

	// AutoRenew keeps leases alive with one batched heartbeat process
	// per FS: every still-healthy lease of every open file renews in a
	// single broker round trip (LeaseService.RenewAll), so renewal load
	// scales with holders, not leases.
	AutoRenew bool

	// HeartbeatEvery is the batched-renewal cadence (0 = half the lease
	// TTL).
	HeartbeatEvery time.Duration

	// Recover enables re-lease/restripe recovery: when a stripe's lease
	// is revoked or expires, the FS leases a replacement MR and invokes
	// the file's Salvage callback instead of declaring the whole file
	// unavailable. Surviving stripes stay readable meanwhile.
	Recover bool

	// Integrity frames every logical block with a CRC-32C checksum and a
	// generation stamp, verified on every read (see integrity.go).
	Integrity bool

	// BlockSize is the integrity/scrub granularity in bytes (default
	// 4096). Only meaningful with Integrity on.
	BlockSize int

	// Replication stripes each file over K replicas on distinct donors;
	// values above 1 force Integrity (reads must verify to fail over).
	Replication int

	// ScrubEvery starts a per-file background scrubber sweeping one
	// stripe per tick at this cadence (0 disables). Requires Integrity.
	ScrubEvery time.Duration

	// Retry is the backoff policy for transient broker/metastore
	// failures during renewal and re-leasing.
	Retry fault.RetryPolicy

	// DeadlineBudget bounds each read's time in the remote tier (0 =
	// unbounded): a read still in flight past the budget is abandoned
	// with an error wrapping fault.ErrSlow and the caller falls back
	// exactly as for a transient failure. A per-process deadline
	// (sim.Proc.SetDeadline, set from the query executor's per-query
	// budget) takes precedence over this per-op default.
	DeadlineBudget time.Duration

	// Hedging races a replica read against the primary when the primary
	// exceeds an adaptive threshold (the donor's learned p95 latency),
	// taking the first verified frame. Requires Replication > 1 to have
	// any effect. Hedge volume is capped at HedgeRateCap of reads.
	Hedging bool

	// HedgeRateCap is the maximum fraction of reads allowed to hedge
	// (0 = default 0.1), so hedges cannot melt the NIC when the whole
	// fleet slows down at once.
	HedgeRateCap float64

	// HedgeAfter fixes the hedge threshold (0 = adaptive per-donor p95).
	HedgeAfter time.Duration

	// HealthChecks scores every donor's latency/error history, drives
	// the three-state breaker (healthy -> browned-out -> quarantined),
	// deprioritizes browned-out donors for new leases (soft-avoid hints
	// piggybacked on heartbeats), proactively migrates replicas off
	// quarantined donors, and probes unhealthy donors with trickle
	// reads for recovery. See health.go.
	HealthChecks bool

	// DefaultSalvage, when non-nil, is installed on every created file
	// (a per-file SetSalvage overrides it).
	DefaultSalvage Salvage

	k        *sim.Kernel
	holder   string
	files    map[string]*File
	hbActive bool
	health   *healthTracker // nil unless Hedging or HealthChecks

	// Fault-tolerance counters (virtual-time observability).
	Restripes    int64 // stripes (all replicas) successfully re-leased
	Salvages     int64 // salvage callbacks run to completion
	RenewRetries int64 // renewal attempts beyond the first, per RPC
	LostStripes  int64 // whole-stripe-loss events (every replica gone)
	Heartbeats   int64 // batched renewals sent (after retries)

	// Integrity / replication counters (see integrity.go). Counter.N is
	// the event count, Counter.Bytes the logical bytes involved.
	Failovers      metrics.Counter // reads served past a bad/lost replica
	Corruptions    metrics.Counter // blocks that failed verification
	Repairs        metrics.Counter // corrupt replica blocks rewritten from a good copy
	ScrubChecked   metrics.Counter // blocks verified clean by scrubbers
	ReplicaRepairs int64           // replicas re-leased and rebuilt from a peer (no salvage)
	ScrubSweeps    int64           // stripe sweeps completed by scrubbers

	// Pushdown counters (see pushdown.go): pushed range reads issued and
	// the elements that fell back to fetch-and-evaluate-client-side after
	// a donor-side integrity failure or mid-flight revocation.
	PushReads     int64
	PushFallbacks int64

	// Tail-tolerance counters (see health.go).
	TolerantReads       int64 // block reads through the tail-tolerant path
	HedgedReads         int64 // hedge reads actually fired
	HedgeWins           int64 // hedges that beat the primary with a verified frame
	SlowReads           int64 // reads abandoned over a blown deadline budget (ErrSlow)
	Brownouts           int64 // donor transitions into the browned-out state
	Quarantines         int64 // donor transitions into quarantine
	HealthRecoveries    int64 // donors probed back to healthy
	ProactiveMigrations int64 // replicas migrated off quarantined donors before revocation
	HealthProbes        int64 // trickle reads routed through unhealthy donors
}

// Config parameterizes an FS.
type Config struct {
	Protocol  nic.Protocol
	Placement broker.Placement
	Client    rmem.ClientConfig
	AutoRenew bool

	// Tenant tags lease requests for broker admission (see FS.Tenant).
	Tenant string
	// HeartbeatEvery is the batched-renewal cadence (see
	// FS.HeartbeatEvery).
	HeartbeatEvery time.Duration

	// Recover enables re-lease/restripe recovery (see FS.Recover).
	Recover bool
	// Integrity enables checksummed block frames (see FS.Integrity).
	Integrity bool
	// BlockSize is the integrity granularity (see FS.BlockSize).
	BlockSize int
	// Replication is the per-stripe replica count (see FS.Replication).
	Replication int
	// ScrubEvery is the background scrubber cadence (see FS.ScrubEvery).
	ScrubEvery time.Duration
	// Retry is the transient-failure backoff policy (see FS.Retry).
	Retry fault.RetryPolicy
	// Salvage is the FS-wide default salvage callback (see
	// FS.DefaultSalvage).
	Salvage Salvage

	// DeadlineBudget bounds each read's remote-tier time (see
	// FS.DeadlineBudget).
	DeadlineBudget time.Duration
	// Hedging enables hedged replica reads (see FS.Hedging).
	Hedging bool
	// HedgeRateCap caps the hedged fraction of reads (see
	// FS.HedgeRateCap).
	HedgeRateCap float64
	// HedgeAfter fixes the hedge threshold (see FS.HedgeAfter).
	HedgeAfter time.Duration
	// HealthChecks enables donor health scoring and the brownout /
	// quarantine breaker (see FS.HealthChecks).
	HealthChecks bool
}

// DefaultConfig is the paper's Custom design with recovery on and the
// integrity layer off (the paper's bare best-effort contract).
func DefaultConfig() Config {
	return Config{
		Protocol:  nic.ProtoRDMA,
		Placement: broker.PlaceSpread,
		Client:    rmem.DefaultClientConfig(),
		AutoRenew: true,
		Recover:   true,
		Retry:     fault.DefaultRetryPolicy(),
	}
}

// NewFS creates a remote file system client on the database server that
// owns client. The client's staging buffers are registered here. b is
// any LeaseService — a standalone broker.Broker or a sharded
// broker.Cluster. The FS subscribes to the service's revoke stream, so
// repair of a revoked stripe starts the moment the broker tears the
// lease down instead of waiting for the next access or renewal to
// stumble over it.
func NewFS(p *sim.Proc, b broker.LeaseService, client *rmem.Client, cfg Config) *FS {
	if cfg.Replication > 1 {
		// Failover needs verification to tell a good replica from a bad
		// one, so replication implies integrity frames.
		cfg.Integrity = true
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.Integrity && cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	fs := &FS{
		Broker:         b,
		Client:         client,
		Transport:      rmem.NewTransport(cfg.Protocol),
		Placement:      cfg.Placement,
		Tenant:         cfg.Tenant,
		AutoRenew:      cfg.AutoRenew,
		HeartbeatEvery: cfg.HeartbeatEvery,
		Recover:        cfg.Recover,
		Integrity:      cfg.Integrity,
		BlockSize:      cfg.BlockSize,
		Replication:    cfg.Replication,
		ScrubEvery:     cfg.ScrubEvery,
		Retry:          cfg.Retry,
		DeadlineBudget: cfg.DeadlineBudget,
		Hedging:        cfg.Hedging,
		HedgeRateCap:   cfg.HedgeRateCap,
		HedgeAfter:     cfg.HedgeAfter,
		HealthChecks:   cfg.HealthChecks,
		DefaultSalvage: cfg.Salvage,
		k:              p.Kernel(),
		holder:         client.Server.Name,
		files:          make(map[string]*File),
	}
	if fs.Hedging || fs.HealthChecks {
		fs.health = newHealthTracker(fs)
	}
	b.OnRevoke(fs.holder, fs.onRevoked)
	return fs
}

// onRevoked is the FS's revoke-watch: map the torn-down lease back to
// its (file, stripe, replica) slot and start repair. It runs inside the
// revoking process, so it only flips flags and spawns repair procs.
func (fs *FS) onRevoked(l *broker.Lease) {
	for _, f := range fs.files {
		if f.closed || f.deleted || f.unavailable {
			continue
		}
		for s, reps := range f.leases {
			for r, cur := range reps {
				if cur == l {
					f.replicaLost(s, r)
					return
				}
			}
		}
	}
}

// File is a remote-memory file (vfs.File) striped over leased MRs, K
// replica leases per stripe (K is 1 unless FS.Replication raises it).
type File struct {
	fs        *FS
	name      string
	size      int64
	mrSize    int64             // physical bytes of each leased MR
	stripeCap int64             // logical bytes per stripe (== mrSize unless framed)
	leases    [][]*broker.Lease // [stripe][replica]

	open        bool
	closed      bool
	deleted     bool
	unavailable bool // terminal: recovery disabled or re-lease failed
	renewStop   bool

	down      [][]bool // [stripe][replica]: lease lost, replacement not in place
	repairing [][]bool // [stripe][replica]: a repair process is running
	salvage   Salvage

	// Integrity state (nil/empty unless FS.Integrity): the expected
	// generation of every logical block (0 = never written; reads serve
	// zeros without touching remote memory) and the blocks for which no
	// verifiable copy survives (reads fail with vfs.ErrCorrupt until
	// overwritten).
	gens        []uint64
	poisoned    map[int64]bool
	scrubCursor int

	connected map[string]bool

	Reads, Writes      int64
	BytesRead, Written int64
}

// Errors returned by the remote file layer, wrapped over the
// repository-wide fault taxonomy where a class applies.
var (
	ErrExists    = errors.New("core: file already exists")
	ErrNotFound  = fmt.Errorf("core: file does not exist (%w)", fault.ErrNotFound)
	ErrNotOpen   = errors.New("core: file not open")
	ErrTooLarge  = errors.New("core: access beyond file size")
	ErrNoLeases  = fmt.Errorf("core: could not lease remote memory (%w)", fault.ErrUnavailable)
	ErrAlignment = errors.New("core: file size must be positive")
)

// request leases n MRs, retrying transient broker failures per the FS
// retry policy.
func (fs *FS) request(p *sim.Proc, n int) ([]*broker.Lease, error) {
	return fs.requestAvoiding(p, n, nil)
}

// requestAvoiding leases n MRs placed on no donor named in avoid (the
// replica anti-affinity constraint), retrying transient failures.
func (fs *FS) requestAvoiding(p *sim.Proc, n int, avoid map[string]bool) ([]*broker.Lease, error) {
	spec := broker.RequestSpec{
		Holder: fs.holder,
		N:      n,
		Place:  fs.Placement,
		Avoid:  avoid,
		Tenant: fs.Tenant,
	}
	if fs.HealthChecks && fs.health != nil {
		// Deprioritize donors our own health scoring has browned out or
		// quarantined; the broker may know about more via other holders'
		// piggybacked reports.
		spec.SoftAvoid = fs.health.avoidSet()
	}
	var out []*broker.Lease
	err := fault.Retry(p, fs.Retry, func() error {
		leases, err := fs.Broker.Request(p, spec)
		if err != nil {
			return err
		}
		out = leases
		return nil
	})
	return out, err
}

// donorSet collects the donor servers of the given leases, for use as an
// anti-affinity avoid set.
func donorSet(leases []*broker.Lease) map[string]bool {
	avoid := make(map[string]bool, len(leases))
	for _, l := range leases {
		if l != nil {
			avoid[l.MR.Owner.Name] = true
		}
	}
	return avoid
}

// Create leases remote MRs backing a file of the given size — K MRs per
// stripe on distinct donors when replication is on. The file still needs
// Open before I/O.
func (fs *FS) Create(p *sim.Proc, name string, size int64) (*File, error) {
	if _, dup := fs.files[name]; dup {
		return nil, ErrExists
	}
	if size <= 0 {
		return nil, ErrAlignment
	}
	probe, err := fs.request(p, 1)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrNoLeases, err)
	}
	mrSize := int64(probe[0].MR.Size())
	stripeCap := mrSize
	if fs.Integrity {
		stripeCap = StripeCapacity(int(mrSize), fs.BlockSize)
		if stripeCap <= 0 {
			fs.Broker.Release(p, probe[0])
			return nil, fmt.Errorf("core: MR size %d cannot hold one %d-byte framed block", mrSize, fs.BlockSize)
		}
	}
	k := fs.Replication
	if k < 1 {
		k = 1
	}
	need := int((size + stripeCap - 1) / stripeCap)
	releaseAll := func(stripes [][]*broker.Lease) {
		for _, reps := range stripes {
			for _, l := range reps {
				if l != nil {
					fs.Broker.Release(p, l)
				}
			}
		}
	}
	leases := make([][]*broker.Lease, need)
	for s := range leases {
		leases[s] = make([]*broker.Lease, k)
	}
	leases[0][0] = probe[0]
	for s := 0; s < need; s++ {
		for r := 0; r < k; r++ {
			if leases[s][r] != nil {
				continue
			}
			var avoid map[string]bool
			if r > 0 {
				avoid = donorSet(leases[s][:r])
			}
			got, err := fs.requestAvoiding(p, 1, avoid)
			if err != nil {
				releaseAll(leases)
				return nil, fmt.Errorf("%w: %w", ErrNoLeases, err)
			}
			leases[s][r] = got[0]
		}
	}
	f := &File{
		fs:        fs,
		name:      name,
		size:      size,
		mrSize:    mrSize,
		stripeCap: stripeCap,
		leases:    leases,
		down:      makeGrid(need, k),
		repairing: makeGrid(need, k),
		salvage:   fs.DefaultSalvage,
		connected: make(map[string]bool),
	}
	if fs.Integrity {
		f.gens = make([]uint64, (size+int64(fs.BlockSize)-1)/int64(fs.BlockSize))
	}
	fs.files[name] = f
	if fs.AutoRenew && !fs.hbActive {
		fs.hbActive = true
		fs.k.Go("lease-heartbeat:"+fs.holder, fs.heartbeatLoop)
	}
	if fs.ScrubEvery > 0 && fs.Integrity {
		p.Kernel().Go("scrub:"+name, f.scrubLoop)
	}
	return f, nil
}

func makeGrid(stripes, k int) [][]bool {
	g := make([][]bool, stripes)
	for i := range g {
		g[i] = make([]bool, k)
	}
	return g
}

// Lookup returns a created file without opening connections (used by
// observability and the fault-injection harness).
func (fs *FS) Lookup(name string) (*File, bool) {
	f, ok := fs.files[name]
	return f, ok
}

// Open connects RDMA flows to every memory server backing the file.
func (fs *FS) Open(p *sim.Proc, name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, ErrNotFound
	}
	return f, f.OpenConn(p)
}

// OpenConn establishes connections for an already-created file.
func (f *File) OpenConn(p *sim.Proc) error {
	if f.closed || f.deleted {
		return vfs.ErrClosed
	}
	for _, reps := range f.leases {
		for _, l := range reps {
			f.connect(p, l.MR.Owner.Name)
		}
	}
	f.open = true
	return nil
}

func (f *File) connect(p *sim.Proc, server string) {
	if !f.connected[server] {
		p.Sleep(ConnectCost)
		f.connected[server] = true
	}
}

// CloseAll closes every file of this FS (stopping lease-renewal
// processes); leases stay valid until they expire or the files are
// Deleted. Call at the end of an experiment so the simulation's event
// queue can drain.
func (fs *FS) CloseAll(p *sim.Proc) {
	for _, f := range fs.files {
		f.Close(p)
	}
}

// Delete closes the file and relinquishes all its leases.
func (fs *FS) Delete(p *sim.Proc, name string) error {
	f, ok := fs.files[name]
	if !ok {
		return ErrNotFound
	}
	f.deleted = true
	f.open = false
	f.renewStop = true
	for _, reps := range f.leases {
		for _, l := range reps {
			fs.Broker.Release(p, l)
		}
	}
	delete(fs.files, name)
	return nil
}

// SetSalvage installs the per-file stripe-repopulation callback,
// overriding the FS-wide default. Passing nil restores "no salvage":
// re-leased stripes come back zeroed.
func (f *File) SetSalvage(fn Salvage) { f.salvage = fn }

// leaseRef locates one lease's slot for the heartbeat cohort.
type leaseRef struct {
	f    *File
	s, r int
}

// active reports whether f still wants its leases kept alive.
func (f *File) active() bool {
	return !f.closed && !f.deleted && !f.unavailable && !f.renewStop
}

// heartbeatLoop is the FS-wide batched renewal process: each tick it
// gathers every healthy lease of every active file into one cohort and
// renews it with a single LeaseService.RenewAll call — one broker round
// trip per holder per tick, regardless of how many leases the holder
// has. Leases the service reports individually dead go to the repair
// path; a transport failure that outlives the retry budget means the
// whole cohort missed its heartbeat and every member is treated as
// lost. The loop exits when no file is active (so experiment event
// queues drain) and restarts on the next Create.
func (fs *FS) heartbeatLoop(p *sim.Proc) {
	interval := fs.HeartbeatEvery
	if interval <= 0 {
		interval = fs.Broker.LeaseTTL() / 2
	}
	for {
		p.Sleep(interval)
		names := make([]string, 0, len(fs.files))
		for name := range fs.files {
			names = append(names, name)
		}
		sort.Strings(names)
		var cohort []*broker.Lease
		var refs []leaseRef
		anyActive := false
		for _, name := range names {
			f := fs.files[name]
			if !f.active() {
				continue
			}
			anyActive = true
			for s := range f.leases {
				for r := range f.leases[s] {
					if f.down[s][r] || f.repairing[s][r] {
						continue
					}
					cohort = append(cohort, f.leases[s][r])
					refs = append(refs, leaseRef{f, s, r})
				}
			}
		}
		if !anyActive {
			fs.hbActive = false
			return
		}
		if len(cohort) == 0 {
			continue // everything is under repair; check again next tick
		}
		attempts := 0
		var failed []*broker.Lease
		err := fault.Retry(p, fs.Retry, func() error {
			attempts++
			var rerr error
			failed, rerr = fs.Broker.RenewAll(p, fs.holder, cohort)
			return rerr
		})
		if attempts > 1 {
			fs.RenewRetries += int64(attempts - 1)
		}
		fs.Heartbeats++
		if err == nil && fs.HealthChecks && fs.health != nil {
			// Piggyback the current slow-donor set on the heartbeat that
			// just went through (same RPC in a real system); the broker
			// deprioritizes these donors for every holder's new leases.
			if sink, ok := fs.Broker.(broker.HealthSink); ok {
				sink.ReportDonorHealth(fs.holder, fs.health.slowDonors())
			}
		}
		if err != nil {
			// The broker/metastore stayed unreachable past the retry
			// budget: nothing in the cohort was renewed, so the whole
			// cohort is headed for expiry together.
			for _, ref := range refs {
				ref.f.replicaLost(ref.s, ref.r)
			}
			continue
		}
		if len(failed) > 0 {
			byLease := make(map[*broker.Lease]leaseRef, len(cohort))
			for i, l := range cohort {
				byLease[l] = refs[i]
			}
			for _, l := range failed {
				if ref, ok := byLease[l]; ok {
					ref.f.replicaLost(ref.s, ref.r)
				}
			}
		}
	}
}

// replicaLost handles the loss of one replica of stripe s. With a
// surviving replica the file keeps serving with no degraded window and a
// background process rebuilds the lost replica from a peer (no salvage).
// When every replica is gone the stripe takes the legacy degraded-mode
// path: re-lease, salvage, or — with recovery disabled — permanent
// unavailability. It takes no process: it only flips flags and spawns
// repair procs on the FS kernel, so revoke-watches can call it from any
// context.
func (f *File) replicaLost(s, r int) {
	if f.closed || f.deleted || f.unavailable {
		return
	}
	if f.down[s][r] || f.repairing[s][r] {
		return // already being handled
	}
	f.down[s][r] = true
	if f.healthyReplicas(s) > 0 {
		if !f.fs.Recover {
			return // keep serving from survivors; factor stays reduced
		}
		f.repairing[s][r] = true
		name := fmt.Sprintf("replica-repair:%s:%d.%d", f.name, s, r)
		f.fs.k.Go(name, func(rp *sim.Proc) { f.repairReplica(rp, s, r) })
		return
	}
	// Whole stripe gone.
	if !f.fs.Recover {
		f.unavailable = true
		return
	}
	f.fs.LostStripes++
	for i := range f.down[s] {
		f.down[s][i] = true
		f.repairing[s][i] = true
	}
	name := fmt.Sprintf("restripe:%s:%d", f.name, s)
	f.fs.k.Go(name, func(rp *sim.Proc) { f.repairStripe(rp, s) })
}

// underRepair reports whether any replica of stripe s has an active
// repair (replica rebuild or full restripe+salvage) in flight.
func (f *File) underRepair(s int) bool {
	for r := range f.repairing[s] {
		if f.repairing[s][r] {
			return true
		}
	}
	return false
}

// healthyReplicas counts stripe s replicas not currently down.
func (f *File) healthyReplicas(s int) int {
	n := 0
	for r := range f.down[s] {
		if !f.down[s][r] {
			n++
		}
	}
	return n
}

// repairStripe re-leases every replica of stripe s (retrying with
// backoff), swaps them into the stripe table, and runs the salvage
// callback to repopulate the range. If re-leasing fails past the retry
// budget the file turns permanently unavailable.
func (f *File) repairStripe(p *sim.Proc, s int) {
	defer func() {
		for r := range f.repairing[s] {
			f.repairing[s][r] = false
		}
	}()
	k := len(f.leases[s])
	fresh := make([]*broker.Lease, 0, k)
	releaseFresh := func() {
		for _, l := range fresh {
			f.fs.Broker.Release(p, l)
		}
	}
	for r := 0; r < k; r++ {
		got, err := f.fs.requestAvoiding(p, 1, donorSet(fresh))
		if f.closed || f.deleted {
			if err == nil {
				fresh = append(fresh, got[0])
			}
			releaseFresh()
			return
		}
		if err != nil {
			releaseFresh()
			f.unavailable = true
			return
		}
		l := got[0]
		if int64(l.MR.Size()) != f.mrSize {
			// Replacement pools must match the stripe geometry; a mismatch
			// means the cluster was reconfigured under us.
			f.fs.Broker.Release(p, l)
			releaseFresh()
			f.unavailable = true
			return
		}
		fresh = append(fresh, l)
	}
	for r := 0; r < k; r++ {
		f.connect(p, fresh[r].MR.Owner.Name)
		f.leases[s][r] = fresh[r]
		f.down[s][r] = false
	}
	if f.fs.Integrity {
		// The replacement MRs are zeroed: reset the range's generations
		// (reads serve zeros again) and clear any poison — the loss is
		// announced below via salvage, not silent.
		lo, hi := f.stripeBlockRange(s)
		for g := lo; g < hi; g++ {
			f.gens[g] = 0
			delete(f.poisoned, g)
		}
	}
	f.fs.Restripes++
	if f.salvage != nil {
		off := int64(s) * f.stripeCap
		n := f.stripeCap
		if off+n > f.size {
			n = f.size - off
		}
		if err := f.salvage(p, f, off, n); err == nil {
			f.fs.Salvages++
		}
	}
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the created size.
func (f *File) Size() int64 { return f.size }

// Unavailable reports whether the file lost its backing memory for good
// (recovery disabled, or a replacement lease could not be obtained).
func (f *File) Unavailable() bool { return f.unavailable }

// Degraded reports whether any replica is currently lost or under
// repair. With replication this no longer implies failing reads — a
// stripe with one healthy replica serves normally.
func (f *File) Degraded() bool {
	for s := range f.down {
		for r := range f.down[s] {
			if f.down[s][r] || f.repairing[s][r] {
				return true
			}
		}
	}
	return false
}

// Stripes returns the stripe count.
func (f *File) Stripes() int { return len(f.leases) }

// Replicas returns the per-stripe replica count.
func (f *File) Replicas() int {
	if len(f.leases) == 0 {
		return 0
	}
	return len(f.leases[0])
}

// LeaseIDs returns the IDs of the primary-replica leases backing the
// file, in stripe order. Fault-injection uses them to revoke specific
// stripes.
func (f *File) LeaseIDs() []broker.LeaseID {
	out := make([]broker.LeaseID, len(f.leases))
	for s, reps := range f.leases {
		out[s] = reps[0].ID
	}
	return out
}

// StripeServers returns the donor servers of stripe s's replicas, in
// replica order (the anti-affinity invariant says they are distinct).
func (f *File) StripeServers(s int) []string {
	out := make([]string, len(f.leases[s]))
	for r, l := range f.leases[s] {
		out[r] = l.MR.Owner.Name
	}
	return out
}

// Servers returns the distinct memory servers backing the file.
func (f *File) Servers() []string {
	seen := make(map[string]bool)
	var out []string
	for _, reps := range f.leases {
		for _, l := range reps {
			name := l.MR.Owner.Name
			if !seen[name] {
				seen[name] = true
				out = append(out, name)
			}
		}
	}
	return out
}

func (f *File) check(off int64, n int) error {
	if f.closed || f.deleted {
		return vfs.ErrClosed
	}
	if !f.open {
		return ErrNotOpen
	}
	if f.unavailable {
		return vfs.ErrUnavailable
	}
	if off < 0 || off+int64(n) > f.size {
		return ErrTooLarge
	}
	return nil
}

// stripeErr is the degraded-mode error for one lost stripe; surviving
// stripes keep serving.
func (f *File) stripeErr(idx int) error {
	return fmt.Errorf("core: stripe %d of %q lost, repair in progress: %w", idx, f.name, vfs.ErrUnavailable)
}

// access splits the range [off, off+len(b)) across MRs and issues one
// transfer per fragment — the legacy unframed path (FS.Integrity off,
// single replica). A fragment on a lost stripe fails with a
// degraded-mode error (wrapping vfs.ErrUnavailable) and triggers repair;
// fragments on healthy stripes are unaffected.
func (f *File) access(p *sim.Proc, b []byte, off int64, write bool) error {
	if err := f.check(off, len(b)); err != nil {
		return err
	}
	for len(b) > 0 {
		idx := off / f.mrSize
		within := off % f.mrSize
		n := f.mrSize - within
		if n > int64(len(b)) {
			n = int64(len(b))
		}
		if f.down[idx][0] {
			return f.stripeErr(int(idx))
		}
		l := f.leases[idx][0]
		if !l.Valid(p.Now()) {
			f.replicaLost(int(idx), 0)
			if f.unavailable {
				return vfs.ErrUnavailable
			}
			return f.stripeErr(int(idx))
		}
		var err error
		if write {
			err = f.fs.Transport.Write(p, f.fs.Client, l.MR, int(within), b[:n])
		} else if dl := f.fs.opDeadline(p); dl > 0 {
			err = rmem.ReadWithin(p, f.fs.Transport, f.fs.Client, l.MR, int(within), b[:n], dl)
			if errors.Is(err, fault.ErrSlow) {
				f.fs.SlowReads++
			}
		} else {
			err = f.fs.Transport.Read(p, f.fs.Client, l.MR, int(within), b[:n])
		}
		if err != nil {
			if errors.Is(err, rmem.ErrRevoked) {
				f.replicaLost(int(idx), 0)
				if f.unavailable {
					return vfs.ErrUnavailable
				}
				return f.stripeErr(int(idx))
			}
			return err
		}
		b = b[n:]
		off += n
	}
	if write {
		f.Writes++
	} else {
		f.Reads++
	}
	return nil
}

// ReadAt reads len(b) bytes at off via RDMA, verifying integrity frames
// when the FS has them enabled.
func (f *File) ReadAt(p *sim.Proc, b []byte, off int64) error {
	var err error
	if f.fs.Integrity {
		err = f.framedAccess(p, b, off, false)
	} else {
		err = f.access(p, b, off, false)
	}
	if err == nil {
		f.BytesRead += int64(len(b))
	}
	return err
}

// WriteAt writes b at off via RDMA, sealing integrity frames and
// fanning out to every replica when the FS has them enabled.
func (f *File) WriteAt(p *sim.Proc, b []byte, off int64) error {
	var err error
	if f.fs.Integrity {
		err = f.framedAccess(p, b, off, true)
	} else {
		err = f.access(p, b, off, true)
	}
	if err == nil {
		f.Written += int64(len(b))
	}
	return err
}

// Close tears down connections; leases are kept (reopen is possible)
// until Delete.
func (f *File) Close(p *sim.Proc) error {
	f.open = false
	f.closed = true
	f.renewStop = true
	return nil
}

var _ vfs.File = (*File)(nil)
