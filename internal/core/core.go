// Package core implements the paper's primary contribution: the
// lightweight file API over remote memory (Table 2). A remote file is a
// set of leased, fixed-size memory regions scattered across the cluster's
// memory servers; Create obtains leases, Open connects RDMA flows,
// Read/Write translate file offsets to (server, MR, offset) and issue
// RDMA transfers, Close disconnects, and Delete relinquishes the leases.
//
// The abstraction is deliberately best-effort (Section 4.1.5): if a
// memory server fails or a lease is revoked under memory pressure, the
// file turns ErrUnavailable and the consumer falls back to disk. No
// correctness ever depends on remote memory.
package core

import (
	"errors"
	"fmt"
	"time"

	"remotedb/internal/broker"
	"remotedb/internal/hw/nic"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// ConnectCost is the one-time cost of setting up an RDMA flow (queue
// pair) to one memory server on Open.
const ConnectCost = 100 * time.Microsecond

// FS creates and opens remote-memory files for one database server.
type FS struct {
	Broker    *broker.Broker
	Client    *rmem.Client
	Transport rmem.Transport
	Placement broker.Placement

	// AutoRenew spawns a background renewal process per file keeping its
	// leases alive at half-TTL cadence.
	AutoRenew bool

	files map[string]*File
}

// Config parameterizes an FS.
type Config struct {
	Protocol  nic.Protocol
	Placement broker.Placement
	Client    rmem.ClientConfig
	AutoRenew bool
}

// DefaultConfig is the paper's Custom design.
func DefaultConfig() Config {
	return Config{
		Protocol:  nic.ProtoRDMA,
		Placement: broker.PlaceSpread,
		Client:    rmem.DefaultClientConfig(),
		AutoRenew: true,
	}
}

// NewFS creates a remote file system client on the database server that
// owns client. The client's staging buffers are registered here.
func NewFS(p *sim.Proc, b *broker.Broker, client *rmem.Client, cfg Config) *FS {
	return &FS{
		Broker:    b,
		Client:    client,
		Transport: rmem.NewTransport(cfg.Protocol),
		Placement: cfg.Placement,
		AutoRenew: cfg.AutoRenew,
		files:     make(map[string]*File),
	}
}

// File is a remote-memory file (vfs.File).
type File struct {
	fs     *FS
	name   string
	size   int64
	mrSize int64
	leases []*broker.Lease

	open        bool
	closed      bool
	deleted     bool
	unavailable bool
	renewStop   bool

	connected map[string]bool

	Reads, Writes      int64
	BytesRead, Written int64
}

// Errors returned by the remote file layer.
var (
	ErrExists    = errors.New("core: file already exists")
	ErrNotFound  = errors.New("core: file does not exist")
	ErrNotOpen   = errors.New("core: file not open")
	ErrTooLarge  = errors.New("core: access beyond file size")
	ErrNoLeases  = errors.New("core: could not lease remote memory")
	ErrAlignment = errors.New("core: file size must be positive")
)

// Create leases remote MRs backing a file of the given size. The file
// still needs Open before I/O.
func (fs *FS) Create(p *sim.Proc, name string, size int64) (*File, error) {
	if _, dup := fs.files[name]; dup {
		return nil, ErrExists
	}
	if size <= 0 {
		return nil, ErrAlignment
	}
	probe, err := fs.Broker.Request(p, fs.Client.Server.Name, 1, fs.Placement)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoLeases, err)
	}
	mrSize := int64(probe[0].MR.Size())
	need := int((size + mrSize - 1) / mrSize)
	leases := probe
	if need > 1 {
		more, err := fs.Broker.Request(p, fs.Client.Server.Name, need-1, fs.Placement)
		if err != nil {
			fs.Broker.Release(p, probe[0])
			return nil, fmt.Errorf("%w: %v", ErrNoLeases, err)
		}
		leases = append(leases, more...)
	}
	f := &File{
		fs:        fs,
		name:      name,
		size:      size,
		mrSize:    mrSize,
		leases:    leases,
		connected: make(map[string]bool),
	}
	fs.files[name] = f
	if fs.AutoRenew {
		p.Kernel().Go("lease-renew:"+name, f.renewLoop)
	}
	return f, nil
}

// Open connects RDMA flows to every memory server backing the file.
func (fs *FS) Open(p *sim.Proc, name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, ErrNotFound
	}
	return f, f.OpenConn(p)
}

// OpenConn establishes connections for an already-created file.
func (f *File) OpenConn(p *sim.Proc) error {
	if f.closed || f.deleted {
		return vfs.ErrClosed
	}
	for _, l := range f.leases {
		server := l.MR.Owner.Name
		if !f.connected[server] {
			p.Sleep(ConnectCost)
			f.connected[server] = true
		}
	}
	f.open = true
	return nil
}

// CloseAll closes every file of this FS (stopping lease-renewal
// processes); leases stay valid until they expire or the files are
// Deleted. Call at the end of an experiment so the simulation's event
// queue can drain.
func (fs *FS) CloseAll(p *sim.Proc) {
	for _, f := range fs.files {
		f.Close(p)
	}
}

// Delete closes the file and relinquishes all its leases.
func (fs *FS) Delete(p *sim.Proc, name string) error {
	f, ok := fs.files[name]
	if !ok {
		return ErrNotFound
	}
	f.deleted = true
	f.open = false
	f.renewStop = true
	for _, l := range f.leases {
		fs.Broker.Release(p, l)
	}
	delete(fs.files, name)
	return nil
}

// renewLoop keeps the file's leases alive until stopped.
func (f *File) renewLoop(p *sim.Proc) {
	interval := f.fs.Broker.LeaseTTL() / 2
	for {
		p.Sleep(interval)
		if f.renewStop || f.deleted {
			return
		}
		for _, l := range f.leases {
			if err := f.fs.Broker.Renew(p, l); err != nil {
				// A lease we cannot renew means the region is gone:
				// degrade to unavailable, best-effort semantics.
				f.unavailable = true
				return
			}
		}
	}
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the created size.
func (f *File) Size() int64 { return f.size }

// Unavailable reports whether the file lost its backing memory.
func (f *File) Unavailable() bool { return f.unavailable }

// Servers returns the distinct memory servers backing the file.
func (f *File) Servers() []string {
	seen := make(map[string]bool)
	var out []string
	for _, l := range f.leases {
		name := l.MR.Owner.Name
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

func (f *File) check(off int64, n int) error {
	if f.closed || f.deleted {
		return vfs.ErrClosed
	}
	if !f.open {
		return ErrNotOpen
	}
	if f.unavailable {
		return vfs.ErrUnavailable
	}
	if off < 0 || off+int64(n) > f.size {
		return ErrTooLarge
	}
	return nil
}

// access splits the range [off, off+len(b)) across MRs and issues one
// transfer per fragment.
func (f *File) access(p *sim.Proc, b []byte, off int64, write bool) error {
	if err := f.check(off, len(b)); err != nil {
		return err
	}
	for len(b) > 0 {
		idx := off / f.mrSize
		within := off % f.mrSize
		n := f.mrSize - within
		if n > int64(len(b)) {
			n = int64(len(b))
		}
		l := f.leases[idx]
		if !l.Valid(p.Now()) {
			f.unavailable = true
			return vfs.ErrUnavailable
		}
		var err error
		if write {
			err = f.fs.Transport.Write(p, f.fs.Client, l.MR, int(within), b[:n])
		} else {
			err = f.fs.Transport.Read(p, f.fs.Client, l.MR, int(within), b[:n])
		}
		if err != nil {
			if errors.Is(err, rmem.ErrRevoked) {
				f.unavailable = true
				return vfs.ErrUnavailable
			}
			return err
		}
		b = b[n:]
		off += n
	}
	if write {
		f.Writes++
	} else {
		f.Reads++
	}
	return nil
}

// ReadAt reads len(b) bytes at off via RDMA.
func (f *File) ReadAt(p *sim.Proc, b []byte, off int64) error {
	err := f.access(p, b, off, false)
	if err == nil {
		f.BytesRead += int64(len(b))
	}
	return err
}

// WriteAt writes b at off via RDMA.
func (f *File) WriteAt(p *sim.Proc, b []byte, off int64) error {
	err := f.access(p, b, off, true)
	if err == nil {
		f.Written += int64(len(b))
	}
	return err
}

// Close tears down connections; leases are kept (reopen is possible)
// until Delete.
func (f *File) Close(p *sim.Proc) error {
	f.open = false
	f.closed = true
	f.renewStop = true
	return nil
}

var _ vfs.File = (*File)(nil)
