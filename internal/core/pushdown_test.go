package core

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"remotedb/internal/rmem"
	"remotedb/internal/sim"
)

// pushTestRec encodes one (int64, bytes) record in the engine's row
// layout: 8-byte big-endian int, 2-byte big-endian length prefix.
func pushTestRec(v int64, payload []byte) []byte {
	rec := make([]byte, 8, 10+len(payload))
	binary.BigEndian.PutUint64(rec, uint64(v))
	var lenb [2]byte
	binary.BigEndian.PutUint16(lenb[:], uint16(len(payload)))
	rec = append(rec, lenb[:]...)
	return append(rec, payload...)
}

// loadPushLog writes count records into f as a chunk-aligned pushable
// log and returns the log's byte length.
func loadPushLog(t *testing.T, p *sim.Proc, f *File, count int) int64 {
	t.Helper()
	var seg []byte
	chunk := f.PushChunk()
	for i := 0; i < count; i++ {
		seg = rmem.AppendPushRecord(seg, pushTestRec(int64(i), make([]byte, 64)), chunk)
	}
	seg = rmem.PadPushChunk(seg, chunk)
	if err := f.WriteAt(p, seg, 0); err != nil {
		t.Fatalf("load push log: %v", err)
	}
	return int64(len(seg))
}

func pushTestQuery(lt int64) *rmem.PushQuery {
	return &rmem.PushQuery{
		Cols:  []rmem.FieldKind{rmem.FieldInt64, rmem.FieldBytes},
		Preds: []rmem.PushLeaf{{Col: 0, Op: rmem.PushLT, Int: lt}},
		Proj:  []int{0},
	}
}

func collectInts(t *testing.T, log []byte) []int64 {
	t.Helper()
	var got []int64
	if err := rmem.PushRecords(log, func(rec []byte) error {
		got = append(got, int64(binary.BigEndian.Uint64(rec)))
		return nil
	}); err != nil {
		t.Fatalf("parse returned log: %v", err)
	}
	return got
}

func TestPushReadFiltersAtDonor(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 2, 8, integrityCfg(1))
		f, err := e.fs.Create(p, "t", 2<<20)
		if err != nil {
			t.Error(err)
			return
		}
		f.OpenConn(p)
		n := loadPushLog(t, p, f, 2000)
		rd0, rt0 := e.fs.Client.BytesRead, e.fs.Client.RoundTrips
		out, stats, err := f.PushRead(p, 0, n, pushTestQuery(10))
		if err != nil {
			t.Errorf("PushRead: %v", err)
			return
		}
		got := collectInts(t, out)
		if len(got) != 10 {
			t.Errorf("matched rows = %d, want 10", len(got))
		}
		if stats.RowsScanned != 2000 {
			t.Errorf("rows scanned = %d, want 2000", stats.RowsScanned)
		}
		if stats.DonorCPU <= 0 {
			t.Error("donor CPU not charged")
		}
		// Only qualifying bytes crossed the wire — far less than the log.
		if wired := e.fs.Client.BytesRead - rd0; wired >= n/10 {
			t.Errorf("pushed read moved %d of %d log bytes", wired, n)
		}
		if rts := e.fs.Client.RoundTrips - rt0; rts >= int64(n)/int64(f.PushChunk()) {
			t.Errorf("pushed read charged %d round trips for %d blocks", rts, n/int64(f.PushChunk()))
		}
		if e.fs.PushReads != 1 || e.fs.PushFallbacks != 0 {
			t.Errorf("push counters = %d/%d, want 1/0", e.fs.PushReads, e.fs.PushFallbacks)
		}
	})
	k.Run(time.Minute)
}

func TestPushReadCorruptBlockFallsBackNoError(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 3, 8, integrityCfg(2))
		f, err := e.fs.Create(p, "t", 1<<20)
		if err != nil {
			t.Error(err)
			return
		}
		f.OpenConn(p)
		n := loadPushLog(t, p, f, 500)
		// Corrupt one block on the primary: the donor's verify-before-eval
		// must catch it, and the fallback serves it from the replica.
		if !f.InjectBlockFlip(2, 0) {
			t.Error("injection failed")
			return
		}
		out, _, err := f.PushRead(p, 0, n, pushTestQuery(1<<40))
		if err != nil {
			t.Errorf("PushRead over corrupt block: %v", err)
			return
		}
		got := collectInts(t, out)
		if len(got) != 500 {
			t.Errorf("rows = %d, want all 500 despite corruption", len(got))
		}
		for i, v := range got {
			if v != int64(i) {
				t.Errorf("row %d = %d; fallback changed results", i, v)
				break
			}
		}
		if e.fs.PushFallbacks == 0 {
			t.Error("no fallback recorded")
		}
		if e.fs.Corruptions.N == 0 {
			t.Error("donor-side verification failure not counted")
		}
		if e.fs.Repairs.N == 0 {
			t.Error("fallback fetch did not repair the corrupt copy")
		}
	})
	k.Run(time.Minute)
}

func TestPushReadRevokedReplicaFailsOverNoError(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 3, 8, integrityCfg(2))
		f, err := e.fs.Create(p, "t", 1<<20)
		if err != nil {
			t.Error(err)
			return
		}
		f.OpenConn(p)
		n := loadPushLog(t, p, f, 500)
		// Revoke the primary lease of stripe 0: elements on it must fall
		// over to the surviving replica with no engine-visible error.
		e.b.Revoke(f.LeaseIDs()[0])
		out, _, err := f.PushRead(p, 0, n, pushTestQuery(1<<40))
		if err != nil {
			t.Errorf("PushRead during replica loss: %v", err)
			return
		}
		if got := collectInts(t, out); len(got) != 500 {
			t.Errorf("rows = %d, want all 500 despite revocation", len(got))
		}
	})
	k.Run(time.Minute)
}

func TestPushReadUnframedOrEncryptedUnavailable(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		// Unframed file: no per-element integrity, so no pushdown.
		e := newEnv(p, 2, 8, DefaultConfig())
		f, _ := e.fs.Create(p, "t", 1<<20)
		f.OpenConn(p)
		if f.PushChunk() != 0 {
			t.Error("unframed file advertises a push chunk")
		}
		_, _, err := f.PushRead(p, 0, 4096, pushTestQuery(1))
		if !errors.Is(err, ErrNoPush) {
			t.Errorf("unframed PushRead err = %v, want ErrNoPush", err)
		}
		// Encrypted client: donors hold ciphertext, pushdown unavailable.
		cfg := integrityCfg(1)
		cfg.Client.Encrypt = true
		e2 := newEnv(p, 2, 8, cfg)
		f2, _ := e2.fs.Create(p, "t", 1<<20)
		f2.OpenConn(p)
		loadPushLog(t, p, f2, 10)
		_, _, err = f2.PushRead(p, 0, 4096, pushTestQuery(1))
		if !errors.Is(err, ErrNoPush) {
			t.Errorf("encrypted PushRead err = %v, want ErrNoPush", err)
		}
	})
	k.Run(time.Minute)
}

func TestPushReadSkipsNeverWrittenBlocks(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 2, 8, integrityCfg(1))
		f, _ := e.fs.Create(p, "t", 1<<20)
		f.OpenConn(p)
		rt0 := e.fs.Client.RoundTrips
		out, stats, err := f.PushRead(p, 0, 64<<10, pushTestQuery(1))
		if err != nil {
			t.Errorf("PushRead over hole: %v", err)
			return
		}
		if len(out) != 0 || stats.BytesScanned != 0 {
			t.Error("hole read scanned bytes")
		}
		if e.fs.Client.RoundTrips != rt0 {
			t.Error("hole read touched the wire")
		}
	})
	k.Run(time.Minute)
}
