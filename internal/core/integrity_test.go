package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// integrityCfg returns a Config with framed blocks on and k replicas.
func integrityCfg(k int) Config {
	cfg := DefaultConfig()
	cfg.Integrity = true
	cfg.Replication = k
	return cfg
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*31 + seed
	}
	return b
}

func TestFramedRoundTripAndZeroFill(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 2, 8, integrityCfg(1))
		f, err := e.fs.Create(p, "f", 3<<20)
		if err != nil {
			t.Error(err)
			return
		}
		f.OpenConn(p)
		// Unaligned write straddling a stripe boundary exercises the
		// read-merge-write partial-block path.
		data := pattern(300_000, 7)
		off := f.stripeCap - 12_345
		if err := f.WriteAt(p, data, off); err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, len(data))
		if err := f.ReadAt(p, got, off); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(data, got) {
			t.Error("framed round trip corrupted")
		}
		// Untouched ranges read back as zeros without touching the wire.
		hole := make([]byte, 8192)
		reads := e.fs.Client.Reads
		if err := f.ReadAt(p, hole, 2<<20); err != nil {
			t.Error(err)
			return
		}
		for _, b := range hole {
			if b != 0 {
				t.Error("hole read returned non-zero bytes")
				break
			}
		}
		if e.fs.Client.Reads != reads {
			t.Error("hole read issued remote transfers")
		}
	})
	k.Run(time.Minute)
}

func TestReplicasPlacedOnDistinctDonors(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 3, 8, integrityCfg(2))
		f, err := e.fs.Create(p, "f", 2<<20)
		if err != nil {
			t.Error(err)
			return
		}
		for s := 0; s < f.Stripes(); s++ {
			srv := f.StripeServers(s)
			if len(srv) != 2 || srv[0] == srv[1] {
				t.Errorf("stripe %d replicas share a donor: %v", s, srv)
			}
		}
	})
	k.Run(time.Minute)
}

func TestReplicationNeedsDistinctDonors(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		// One donor, two replicas wanted: anti-affinity must refuse
		// rather than co-locate.
		e := newEnv(p, 1, 16, integrityCfg(2))
		if _, err := e.fs.Create(p, "f", 1<<20); !errors.Is(err, ErrNoLeases) {
			t.Errorf("create with one donor and K=2: %v", err)
		}
		if e.b.ActiveLeases() != 0 {
			t.Errorf("failed create leaked %d leases", e.b.ActiveLeases())
		}
	})
	k.Run(time.Minute)
}

func TestBitFlipDetectedAndRepairedFromReplica(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 2, 8, integrityCfg(2))
		f, _ := e.fs.Create(p, "f", 1<<20)
		f.OpenConn(p)
		data := pattern(64<<10, 3)
		f.WriteAt(p, data, 0)
		// Flip a bit in a written block of replica 0.
		if !f.InjectBlockFlip(2, 0) {
			t.Error("injection failed")
			return
		}
		got := make([]byte, len(data))
		if err := f.ReadAt(p, got, 0); err != nil {
			t.Errorf("read over corrupt primary: %v", err)
			return
		}
		if !bytes.Equal(data, got) {
			t.Error("silently wrong bytes served past a bit flip")
		}
		if e.fs.Corruptions.N == 0 {
			t.Error("corruption not detected")
		}
		if e.fs.Failovers.N == 0 {
			t.Error("read did not fail over to the healthy replica")
		}
		if e.fs.Repairs.N == 0 {
			t.Error("corrupt copy not repaired in place")
		}
		// The repaired primary now verifies again: another read must not
		// re-detect.
		n := e.fs.Corruptions.N
		if err := f.ReadAt(p, got, 0); err != nil {
			t.Error(err)
		}
		if e.fs.Corruptions.N != n {
			t.Error("repair did not stick")
		}
	})
	k.Run(time.Minute)
}

func TestTornWriteWithoutReplicaFailsLoud(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 2, 8, integrityCfg(1))
		f, _ := e.fs.Create(p, "f", 1<<20)
		f.OpenConn(p)
		data := pattern(32<<10, 9)
		f.WriteAt(p, data, 0)
		if !f.InjectBlockTear(1, 0) {
			t.Error("injection failed")
			return
		}
		got := make([]byte, len(data))
		err := f.ReadAt(p, got, 0)
		if !errors.Is(err, vfs.ErrCorrupt) {
			t.Errorf("read of torn block: %v, want ErrCorrupt", err)
		}
		if !f.BlockPoisoned(1) {
			t.Error("unrepairable block not poisoned")
		}
		// Blocks outside the torn one still serve, and a fresh write
		// heals the poisoned block.
		if err := f.ReadAt(p, got[:4096], 0); err != nil {
			t.Errorf("read of clean block next to torn one: %v", err)
		}
		if err := f.WriteAt(p, data[4096:8192], 4096); err != nil {
			t.Errorf("overwrite of poisoned block: %v", err)
		}
		if err := f.ReadAt(p, got[:4096], 4096); err != nil {
			t.Errorf("read after healing overwrite: %v", err)
		}
		if !bytes.Equal(got[:4096], data[4096:8192]) {
			t.Error("healed block content wrong")
		}
	})
	k.Run(time.Minute)
}

func TestStaleReplicaResurrectionCaughtByGeneration(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 2, 8, integrityCfg(2))
		f, _ := e.fs.Create(p, "f", 1<<20)
		f.OpenConn(p)
		old := pattern(4096, 1)
		f.WriteAt(p, old, 0)
		snap := f.SnapshotBlockFrame(0, 0)
		if snap == nil {
			t.Error("snapshot failed")
			return
		}
		fresh := pattern(4096, 2)
		f.WriteAt(p, fresh, 0)
		// Resurrect the stale frame on replica 0: its checksum is
		// internally consistent, only the generation betrays it.
		if !f.RestoreBlockFrame(0, 0, snap) {
			t.Error("restore failed")
			return
		}
		got := make([]byte, 4096)
		if err := f.ReadAt(p, got, 0); err != nil {
			t.Errorf("read over stale primary: %v", err)
			return
		}
		if !bytes.Equal(fresh, got) {
			t.Error("stale bytes served: generation stamp missed the resurrection")
		}
		if e.fs.Corruptions.N == 0 || e.fs.Repairs.N == 0 {
			t.Errorf("stale frame not detected/repaired: corruptions=%d repairs=%d",
				e.fs.Corruptions.N, e.fs.Repairs.N)
		}
	})
	k.Run(time.Minute)
}

func TestRevocationWithReplicaHasNoDegradedWindow(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 3, 8, integrityCfg(2))
		salvages := 0
		e.fs.DefaultSalvage = func(sp *sim.Proc, sf *File, off, n int64) error {
			salvages++
			return nil
		}
		f, _ := e.fs.Create(p, "f", 1<<20)
		f.SetSalvage(e.fs.DefaultSalvage)
		f.OpenConn(p)
		data := pattern(256<<10, 5)
		f.WriteAt(p, data, 0)
		// Revoke the primary lease of stripe 0.
		e.b.Revoke(f.LeaseIDs()[0])
		// The very next read succeeds from the surviving replica — no
		// degraded window, no error, no salvage.
		got := make([]byte, len(data))
		if err := f.ReadAt(p, got, 0); err != nil {
			t.Errorf("read during replica loss: %v", err)
			return
		}
		if !bytes.Equal(data, got) {
			t.Error("wrong bytes during failover")
		}
		// Writes also keep working (fan out to survivors).
		if err := f.WriteAt(p, data[:8192], 0); err != nil {
			t.Errorf("write during replica loss: %v", err)
		}
		// Background rebuild restores the replication factor.
		p.Sleep(2 * time.Second)
		if f.Degraded() {
			t.Error("replica not rebuilt")
		}
		if e.fs.ReplicaRepairs == 0 {
			t.Error("no replica repair recorded")
		}
		if salvages != 0 {
			t.Errorf("salvage ran %d times, want 0 (replica repair needs no salvage)", salvages)
		}
		if e.fs.LostStripes != 0 {
			t.Errorf("lost-stripe events: %d, want 0", e.fs.LostStripes)
		}
		// Anti-affinity holds for the rebuilt replica too.
		srv := f.StripeServers(0)
		if srv[0] == srv[1] {
			t.Errorf("rebuilt replica shares a donor: %v", srv)
		}
		// And the rebuilt copy is correct.
		if err := f.ReadAt(p, got, 0); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(data, got) {
			t.Error("rebuilt replica serves wrong bytes")
		}
	})
	k.Run(time.Minute)
}

func TestScrubberFindsAndRepairsLatentCorruption(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		cfg := integrityCfg(2)
		cfg.ScrubEvery = 50 * time.Millisecond
		e := newEnv(p, 2, 8, cfg)
		f, _ := e.fs.Create(p, "f", 1<<20)
		f.OpenConn(p)
		data := pattern(128<<10, 11)
		f.WriteAt(p, data, 0)
		// Corrupt a *secondary* copy: ordinary reads are served by the
		// primary and would never notice — only the scrubber looks here.
		if !f.InjectBlockFlip(4, 1) {
			t.Error("injection failed")
			return
		}
		// Let the scrubber sweep every stripe at least once.
		p.Sleep(time.Duration(f.Stripes()+2) * cfg.ScrubEvery * 2)
		if e.fs.Corruptions.N == 0 {
			t.Error("scrubber missed latent corruption on the secondary")
		}
		if e.fs.Repairs.N == 0 {
			t.Error("scrubber did not repair the secondary")
		}
		if e.fs.ScrubChecked.N == 0 || e.fs.ScrubSweeps == 0 {
			t.Error("scrub counters not exported")
		}
		// After repair, the next full sweep is clean.
		n := e.fs.Corruptions.N
		p.Sleep(time.Duration(f.Stripes()+2) * cfg.ScrubEvery * 2)
		if e.fs.Corruptions.N != n {
			t.Error("corruption re-detected after scrub repair")
		}
		f.Close(p)
	})
	k.Run(time.Minute)
}

func TestVectoredSpansStripeBoundaries(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 2, 8, integrityCfg(1))
		f, _ := e.fs.Create(p, "f", 3<<20)
		f.OpenConn(p)
		// Elements straddling the stripe boundary must split cleanly
		// across the two MRs inside one batch.
		var wv []vfs.Vec
		off := f.stripeCap - 8192
		for i := 0; i < 4; i++ {
			wv = append(wv, vfs.Vec{Off: off, Buf: pattern(8192, byte(i+1))})
			off += 8192
		}
		if err := f.WriteAtV(p, wv); err != nil {
			t.Error(err)
			return
		}
		var rv []vfs.Vec
		for _, v := range wv {
			rv = append(rv, vfs.Vec{Off: v.Off, Buf: make([]byte, len(v.Buf))})
		}
		if err := f.ReadAtV(p, rv); err != nil {
			t.Error(err)
			return
		}
		for i := range rv {
			if !bytes.Equal(rv[i].Buf, wv[i].Buf) {
				t.Errorf("element %d corrupted across stripe boundary", i)
			}
		}
		// The batch must charge fewer round trips than one per block.
		blocks := int64(4 * 8192 / e.fs.BlockSize)
		before := e.fs.Client.RoundTrips
		if err := f.ReadAtV(p, rv); err != nil {
			t.Error(err)
			return
		}
		if got := e.fs.Client.RoundTrips - before; got >= blocks {
			t.Errorf("vectored read charged %d round trips for %d blocks", got, blocks)
		}
	})
	k.Run(time.Minute)
}

func TestVectoredUnframedSpansStripes(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 2, 8, DefaultConfig())
		f, _ := e.fs.Create(p, "f", 4<<20)
		f.OpenConn(p)
		wv := []vfs.Vec{
			{Off: f.stripeCap - 4096, Buf: pattern(8192, 3)}, // straddles stripes 0/1
			{Off: 0, Buf: pattern(8192, 5)},
			{Off: 2 * f.stripeCap, Buf: pattern(8192, 7)},
		}
		if err := f.WriteAtV(p, wv); err != nil {
			t.Error(err)
			return
		}
		rv := []vfs.Vec{
			{Off: wv[0].Off, Buf: make([]byte, 8192)},
			{Off: wv[1].Off, Buf: make([]byte, 8192)},
			{Off: wv[2].Off, Buf: make([]byte, 8192)},
		}
		before := e.fs.Client.RoundTrips
		if err := f.ReadAtV(p, rv); err != nil {
			t.Error(err)
			return
		}
		rts := e.fs.Client.RoundTrips - before
		for i := range rv {
			if !bytes.Equal(rv[i].Buf, wv[i].Buf) {
				t.Errorf("element %d corrupted", i)
			}
		}
		// 4 fragments over at most 3 distinct donors: batching must beat
		// one round trip per fragment.
		if rts >= 4 {
			t.Errorf("unframed vectored read charged %d round trips for 4 fragments", rts)
		}
	})
	k.Run(time.Minute)
}

func TestVectoredDegradedStripeMidVector(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 2, 8, DefaultConfig())
		f, _ := e.fs.Create(p, "f", 2<<20)
		f.OpenConn(p)
		f.WriteAt(p, pattern(8192, 1), 0)
		f.WriteAt(p, pattern(8192, 2), f.stripeCap)
		// Lose stripe 1 (single replica): while its repair is in flight a
		// vector touching it must fail degraded, while one confined to
		// stripe 0 still serves.
		e.b.Revoke(f.LeaseIDs()[1])
		err := f.ReadAtV(p, []vfs.Vec{
			{Off: 0, Buf: make([]byte, 8192)},
			{Off: f.stripeCap, Buf: make([]byte, 8192)},
		})
		if !errors.Is(err, vfs.ErrUnavailable) {
			t.Errorf("vector over lost stripe: %v, want ErrUnavailable", err)
		}
		got := make([]byte, 8192)
		if err := f.ReadAtV(p, []vfs.Vec{{Off: 0, Buf: got}}); err != nil {
			t.Errorf("vector on surviving stripe: %v", err)
		}
		if !bytes.Equal(got, pattern(8192, 1)) {
			t.Error("surviving stripe served wrong bytes")
		}
	})
	k.Run(time.Minute)
}

func TestVectoredReplicaFailoverInsideBatch(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 3, 8, integrityCfg(2))
		f, _ := e.fs.Create(p, "f", 1<<20)
		f.OpenConn(p)
		data := pattern(64<<10, 5)
		f.WriteAt(p, data, 0)
		// Revoke the primary: every element of the batch must fail over
		// to the surviving replica with no error surfacing.
		e.b.Revoke(f.LeaseIDs()[0])
		var rv []vfs.Vec
		for off := int64(0); off < int64(len(data)); off += 8192 {
			rv = append(rv, vfs.Vec{Off: off, Buf: make([]byte, 8192)})
		}
		if err := f.ReadAtV(p, rv); err != nil {
			t.Errorf("vectored read during replica loss: %v", err)
			return
		}
		for i, v := range rv {
			if !bytes.Equal(v.Buf, data[v.Off:v.Off+8192]) {
				t.Errorf("element %d wrong during failover", i)
			}
		}
		if e.fs.Failovers.N == 0 {
			t.Error("failover not accounted")
		}
		// Writes fan out to the survivor, and read back correctly.
		wv := []vfs.Vec{{Off: 0, Buf: pattern(8192, 9)}}
		if err := f.WriteAtV(p, wv); err != nil {
			t.Errorf("vectored write during replica loss: %v", err)
		}
		got := make([]byte, 8192)
		if err := f.ReadAt(p, got, 0); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, wv[0].Buf) {
			t.Error("write during failover lost")
		}
	})
	k.Run(time.Minute)
}

func TestVectoredVerifiesEveryElement(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 2, 8, integrityCfg(2))
		f, _ := e.fs.Create(p, "f", 1<<20)
		f.OpenConn(p)
		data := pattern(64<<10, 4)
		f.WriteAt(p, data, 0)
		// Corrupt two scattered blocks on the primary. The batch read
		// must catch both elements, serve them from the replica, and
		// repair the bad copies — identical semantics to scalar reads.
		if !f.InjectBlockFlip(1, 0) || !f.InjectBlockTear(5, 0) {
			t.Error("injection failed")
			return
		}
		var rv []vfs.Vec
		for off := int64(0); off < int64(len(data)); off += 8192 {
			rv = append(rv, vfs.Vec{Off: off, Buf: make([]byte, 8192)})
		}
		if err := f.ReadAtV(p, rv); err != nil {
			t.Errorf("vectored read over corrupt blocks: %v", err)
			return
		}
		for i, v := range rv {
			if !bytes.Equal(v.Buf, data[v.Off:v.Off+8192]) {
				t.Errorf("element %d served silently wrong bytes", i)
			}
		}
		if e.fs.Corruptions.N < 2 {
			t.Errorf("corruptions detected = %d, want >= 2", e.fs.Corruptions.N)
		}
		if e.fs.Repairs.N < 2 {
			t.Errorf("repairs = %d, want >= 2", e.fs.Repairs.N)
		}
		// Both copies repaired: a second batch is clean.
		n := e.fs.Corruptions.N
		if err := f.ReadAtV(p, rv); err != nil {
			t.Error(err)
		}
		if e.fs.Corruptions.N != n {
			t.Error("repair did not stick under vectored re-read")
		}
	})
	k.Run(time.Minute)
}

func TestVectoredPartialBlocksTakeMergePath(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 2, 8, integrityCfg(1))
		f, _ := e.fs.Create(p, "f", 1<<20)
		f.OpenConn(p)
		base := pattern(16<<10, 6)
		f.WriteAt(p, base, 0)
		// An unaligned element must read-merge-write, preserving the
		// bytes around it; the aligned element goes batched.
		patch := pattern(1000, 13)
		wv := []vfs.Vec{
			{Off: 100, Buf: patch},
			{Off: 8192, Buf: pattern(8192, 14)},
		}
		if err := f.WriteAtV(p, wv); err != nil {
			t.Error(err)
			return
		}
		want := append([]byte(nil), base...)
		copy(want[100:], patch)
		copy(want[8192:], wv[1].Buf)
		got := make([]byte, len(base))
		if err := f.ReadAt(p, got, 0); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(want, got) {
			t.Error("partial vectored write merged wrong")
		}
	})
	k.Run(time.Minute)
}

func TestAllReplicasLostFallsBackToSalvage(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 2, 16, integrityCfg(2))
		salvaged := false
		e.fs.DefaultSalvage = func(sp *sim.Proc, sf *File, off, n int64) error {
			salvaged = true
			return nil
		}
		f, _ := e.fs.Create(p, "f", 1<<20)
		f.SetSalvage(e.fs.DefaultSalvage)
		f.OpenConn(p)
		f.WriteAt(p, pattern(64<<10, 2), 0)
		// Kill both replicas of stripe 0 back to back: only then does
		// the legacy restripe+salvage path engage.
		e.b.Revoke(f.leases[0][0].ID)
		e.b.Revoke(f.leases[0][1].ID)
		err := f.ReadAt(p, make([]byte, 4096), 0)
		if !errors.Is(err, vfs.ErrUnavailable) {
			t.Errorf("read with all replicas gone: %v", err)
		}
		p.Sleep(2 * time.Second)
		if e.fs.LostStripes != 1 {
			t.Errorf("lost stripes: %d, want 1", e.fs.LostStripes)
		}
		if e.fs.Restripes != 1 {
			t.Errorf("restripes: %d, want 1", e.fs.Restripes)
		}
		if !salvaged {
			t.Error("salvage did not run for the fully lost stripe")
		}
		// The re-leased stripe reads as zeros (announced loss), and the
		// replicas are again on distinct donors.
		got := make([]byte, 4096)
		if err := f.ReadAt(p, got, 0); err != nil {
			t.Errorf("read after restripe: %v", err)
		}
		srv := f.StripeServers(0)
		if srv[0] == srv[1] {
			t.Errorf("restriped replicas share a donor: %v", srv)
		}
	})
	k.Run(time.Minute)
}
