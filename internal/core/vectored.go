// Vectored scatter-gather I/O over remote files. ReadAtV/WriteAtV split
// a vector of (offset, buffer) elements across stripes and replicas and
// push everything through the rmem layer's doorbell-batched ReadV/WriteV,
// so a multi-page transfer pays one charged round trip per destination
// server instead of one per page. The framed (integrity) path batches
// the happy case — each block's frame fetched from its first healthy
// replica, writes fanned out to all of them — and falls back to the
// scalar verify-and-fail-over machinery for any element that does not
// come back verified, so the integrity guarantees are byte-for-byte the
// same as ReadAt/WriteAt.
package core

import (
	"errors"
	"sort"

	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// ReadAtV reads every element of vecs, batching the underlying
// transfers. Partial completion is possible on error, as with a scalar
// loop; callers needing to localize a failure retry per element.
func (f *File) ReadAtV(p *sim.Proc, vecs []vfs.Vec) error {
	for _, v := range vecs {
		if err := f.check(v.Off, len(v.Buf)); err != nil {
			return err
		}
	}
	var err error
	if f.fs.Integrity {
		err = f.framedReadV(p, vecs)
	} else {
		err = f.accessV(p, vecs, false)
	}
	if err == nil {
		for _, v := range vecs {
			f.BytesRead += int64(len(v.Buf))
		}
	}
	return err
}

// WriteAtV writes every element of vecs, batching the underlying
// transfers. Elements must not overlap (overlapping segments of a block
// degrade to sequential scalar writes).
func (f *File) WriteAtV(p *sim.Proc, vecs []vfs.Vec) error {
	for _, v := range vecs {
		if err := f.check(v.Off, len(v.Buf)); err != nil {
			return err
		}
	}
	var err error
	if f.fs.Integrity {
		err = f.framedWriteV(p, vecs)
	} else {
		err = f.accessV(p, vecs, true)
	}
	if err == nil {
		for _, v := range vecs {
			f.Written += int64(len(v.Buf))
		}
	}
	return err
}

// accessV is the unframed vectored path: every fragment of every element
// becomes one scatter-gather element of a single batched transfer. A
// revoked fragment triggers the same degraded-mode transition as the
// scalar path.
func (f *File) accessV(p *sim.Proc, vecs []vfs.Vec, write bool) error {
	var iov []rmem.IOVec
	var stripes []int // stripe of each iov element, for failover accounting
	for vi := range vecs {
		b := vecs[vi].Buf
		off := vecs[vi].Off
		for len(b) > 0 {
			idx := off / f.mrSize
			within := off % f.mrSize
			n := f.mrSize - within
			if n > int64(len(b)) {
				n = int64(len(b))
			}
			if f.down[idx][0] {
				return f.stripeErr(int(idx))
			}
			l := f.leases[idx][0]
			if !l.Valid(p.Now()) {
				f.replicaLost(int(idx), 0)
				if f.unavailable {
					return vfs.ErrUnavailable
				}
				return f.stripeErr(int(idx))
			}
			iov = append(iov, rmem.IOVec{MR: l.MR, Off: int(within), Buf: b[:n]})
			stripes = append(stripes, int(idx))
			b = b[n:]
			off += n
		}
	}
	var errs []error
	if write {
		errs = f.fs.Client.WriteV(p, f.fs.Transport, iov)
	} else {
		errs = f.fs.Client.ReadV(p, f.fs.Transport, iov)
	}
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, rmem.ErrRevoked) {
			f.replicaLost(stripes[i], 0)
			if f.unavailable {
				return vfs.ErrUnavailable
			}
			return f.stripeErr(stripes[i])
		}
		return err
	}
	if write {
		f.Writes += int64(len(vecs))
	} else {
		f.Reads += int64(len(vecs))
	}
	return nil
}

// blockSeg is the portion of one block touched by a vector: the byte
// range [within, within+len(data)) of the block maps onto data, which
// aliases the caller's buffer.
type blockSeg struct {
	within int64
	data   []byte
}

// splitBlocks decomposes vecs into per-block segments, returning the
// blocks in deterministic first-touch order.
func (f *File) splitBlocks(vecs []vfs.Vec) ([]int64, map[int64][]blockSeg) {
	bs := int64(f.fs.BlockSize)
	segs := make(map[int64][]blockSeg)
	var blocks []int64
	for _, v := range vecs {
		b := v.Buf
		off := v.Off
		for len(b) > 0 {
			g := off / bs
			within := off % bs
			n := bs - within
			if n > int64(len(b)) {
				n = int64(len(b))
			}
			if _, seen := segs[g]; !seen {
				blocks = append(blocks, g)
			}
			segs[g] = append(segs[g], blockSeg{within: within, data: b[:n]})
			b = b[n:]
			off += n
		}
	}
	return blocks, segs
}

// pickReplica returns the first replica of stripe s that is up with a
// valid lease, reporting whether an earlier replica had to be skipped
// over an invalid lease (a failover the read must account). It returns
// -1 when no replica qualifies.
func (f *File) pickReplica(p *sim.Proc, s int) (int, bool, error) {
	failedOver := false
	for r := range f.leases[s] {
		if f.down[s][r] {
			// Marked lost already (revoke-watch or an earlier access):
			// serving past it is a failover all the same.
			failedOver = true
			continue
		}
		if !f.leases[s][r].Valid(p.Now()) {
			f.replicaLost(s, r)
			if f.unavailable {
				return -1, false, vfs.ErrUnavailable
			}
			failedOver = true
			continue
		}
		return r, failedOver, nil
	}
	return -1, failedOver, nil
}

// framedReadV is the integrity-mode vectored read: poisoned blocks fail,
// never-written blocks serve zeros locally, and every remaining block
// joins one batched fetch from its first healthy replica. Elements that
// come back unverified (corruption, a revocation mid-batch) are retried
// through the scalar fetchBlock, which owns failover, in-place repair,
// and poisoning — so detection and repair semantics are identical to the
// scalar path.
func (f *File) framedReadV(p *sim.Proc, vecs []vfs.Vec) error {
	blocks, segs := f.splitBlocks(vecs)
	type fetch struct {
		g          int64
		replica    int
		failedOver bool
		frame      []byte
	}
	var fetches []fetch
	var iov []rmem.IOVec
	fsz := f.frameSize()
	for _, g := range blocks {
		if f.poisoned[g] {
			return f.corruptErr(g)
		}
		if f.gens[g] == 0 {
			for _, sg := range segs[g] {
				for i := range sg.data {
					sg.data[i] = 0
				}
			}
			continue
		}
		s, frameOff := f.blockHome(g)
		r, failedOver, err := f.pickReplica(p, s)
		if err != nil {
			return err
		}
		if r < 0 {
			if f.unavailable {
				return vfs.ErrUnavailable
			}
			return f.stripeErr(s)
		}
		frame := make([]byte, fsz)
		fetches = append(fetches, fetch{g: g, replica: r, failedOver: failedOver, frame: frame})
		iov = append(iov, rmem.IOVec{MR: f.leases[s][r].MR, Off: frameOff, Buf: frame})
	}
	var errs []error
	if len(iov) > 0 {
		errs = f.fs.Client.ReadV(p, f.fs.Transport, iov)
	}
	for i := range fetches {
		ft := &fetches[i]
		var elemErr error
		if errs != nil {
			elemErr = errs[i]
		}
		verified := false
		switch {
		case elemErr == nil:
			if verifyFrame(ft.frame, f.fs.BlockSize, f.gens[ft.g]) == nil {
				verified = true
				if ft.failedOver {
					f.fs.Failovers.Add(1, int64(f.fs.BlockSize))
				}
			}
		case errors.Is(elemErr, rmem.ErrRevoked):
			s, _ := f.blockHome(ft.g)
			f.replicaLost(s, ft.replica)
			if f.unavailable {
				return vfs.ErrUnavailable
			}
		default:
			return elemErr
		}
		if !verified {
			// The batched copy did not verify: the scalar fetch re-reads
			// every replica, counting the corruption, repairing the bad
			// copy or poisoning the block exactly as a scalar read would.
			if err := f.fetchBlock(p, ft.g, ft.frame); err != nil {
				return err
			}
		}
		for _, sg := range segs[ft.g] {
			copy(sg.data, ft.frame[sg.within:sg.within+int64(len(sg.data))])
		}
	}
	f.Reads += int64(len(vecs))
	return nil
}

// fullCover reports whether the segments tile the whole block [0, bs)
// exactly once, with no gap and no overlap.
func fullCover(segs []blockSeg, bs int64) bool {
	if len(segs) == 1 {
		return segs[0].within == 0 && int64(len(segs[0].data)) == bs
	}
	sorted := append([]blockSeg(nil), segs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].within < sorted[j].within })
	at := int64(0)
	for _, sg := range sorted {
		if sg.within != at {
			return false
		}
		at += int64(len(sg.data))
	}
	return at == bs
}

// framedWriteV is the integrity-mode vectored write: blocks fully
// covered by the vector are sealed and fanned out to every healthy
// replica in one batched transfer; partial or overlapping blocks take
// the scalar read-merge-write path. A replica revoked mid-batch fails
// over like the scalar path; a block with zero surviving writes is an
// error and its generation is not bumped.
func (f *File) framedWriteV(p *sim.Proc, vecs []vfs.Vec) error {
	bs := int64(f.fs.BlockSize)
	blocks, segs := f.splitBlocks(vecs)
	type blockWrite struct {
		g      int64
		newGen uint64
		wrote  int
	}
	var bws []*blockWrite
	var iov []rmem.IOVec
	var iovBW []*blockWrite
	var iovRep []int
	for _, g := range blocks {
		sg := segs[g]
		if !fullCover(sg, bs) {
			for _, seg := range sg {
				if err := f.writeBlock(p, g, seg.within, seg.data); err != nil {
					return err
				}
			}
			continue
		}
		frame := make([]byte, f.frameSize())
		for _, seg := range sg {
			copy(frame[seg.within:seg.within+int64(len(seg.data))], seg.data)
		}
		bw := &blockWrite{g: g, newGen: f.gens[g] + 1}
		sealFrame(frame, int(bs), bw.newGen)
		s, frameOff := f.blockHome(g)
		issued := 0
		for r := range f.leases[s] {
			if f.down[s][r] {
				continue
			}
			l := f.leases[s][r]
			if !l.Valid(p.Now()) {
				f.replicaLost(s, r)
				if f.unavailable {
					return vfs.ErrUnavailable
				}
				continue
			}
			iov = append(iov, rmem.IOVec{MR: l.MR, Off: frameOff, Buf: frame})
			iovBW = append(iovBW, bw)
			iovRep = append(iovRep, r)
			issued++
		}
		if issued == 0 {
			if f.unavailable {
				return vfs.ErrUnavailable
			}
			return f.stripeErr(s)
		}
		bws = append(bws, bw)
	}
	if len(iov) > 0 {
		errs := f.fs.Client.WriteV(p, f.fs.Transport, iov)
		for i := range iov {
			var err error
			if errs != nil {
				err = errs[i]
			}
			if err == nil {
				iovBW[i].wrote++
				continue
			}
			if errors.Is(err, rmem.ErrRevoked) {
				s, _ := f.blockHome(iovBW[i].g)
				f.replicaLost(s, iovRep[i])
				if f.unavailable {
					return vfs.ErrUnavailable
				}
				continue
			}
			return err
		}
	}
	for _, bw := range bws {
		if bw.wrote == 0 {
			s, _ := f.blockHome(bw.g)
			if f.unavailable {
				return vfs.ErrUnavailable
			}
			return f.stripeErr(s)
		}
		f.gens[bw.g] = bw.newGen
		delete(f.poisoned, bw.g)
	}
	f.Writes += int64(len(vecs))
	return nil
}

var _ vfs.VectorFile = (*File)(nil)
