package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"remotedb/internal/broker"
	"remotedb/internal/broker/metastore"
	"remotedb/internal/cluster"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// env is the standard test rig: a DB server, n memory servers each with
// mrs MRs of 1 MiB, a broker, and an FS.
type env struct {
	k       *sim.Kernel
	db      *cluster.Server
	mems    []*cluster.Server
	b       *broker.Broker
	proxies []*broker.Proxy
	fs      *FS
}

func newEnv(p *sim.Proc, n, mrs int, cfg Config) *env {
	k := p.Kernel()
	e := &env{k: k}
	scfg := cluster.DefaultConfig()
	scfg.MemoryBytes = 64 << 20
	e.db = cluster.NewServer(k, "db1", scfg)
	store := metastore.New(k, 10*time.Microsecond)
	e.b = broker.New(p, store, broker.DefaultConfig())
	for i := 0; i < n; i++ {
		m := cluster.NewServer(k, fmt.Sprintf("m%d", i+1), scfg)
		e.mems = append(e.mems, m)
		px, err := e.b.AddProxy(p, m, 1<<20, mrs)
		if err != nil {
			panic(err)
		}
		e.proxies = append(e.proxies, px)
	}
	client := rmem.NewClient(p, e.db, cfg.Client)
	e.fs = NewFS(p, e.b, client, cfg)
	return e
}

func TestCreateOpenReadWriteDelete(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 2, 8, DefaultConfig())
		f, err := e.fs.Create(p, "bpext", 4<<20)
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.OpenConn(p); err != nil {
			t.Error(err)
			return
		}
		data := bytes.Repeat([]byte{0x5A}, 8192)
		if err := f.WriteAt(p, data, 3<<20); err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, 8192)
		if err := f.ReadAt(p, got, 3<<20); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(data, got) {
			t.Error("round trip corrupted")
		}
		if err := e.fs.Delete(p, "bpext"); err != nil {
			t.Error(err)
		}
		if e.b.ActiveLeases() != 0 {
			t.Errorf("leases leaked: %d", e.b.ActiveLeases())
		}
	})
	k.Run(time.Minute)
}

func TestCrossMRAccess(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 2, 8, DefaultConfig())
		f, _ := e.fs.Create(p, "f", 4<<20)
		f.OpenConn(p)
		// Write spanning three 1 MiB MRs.
		data := make([]byte, 2<<20)
		for i := range data {
			data[i] = byte(i * 31)
		}
		off := int64(1<<20 - 4096)
		if err := f.WriteAt(p, data, off); err != nil {
			t.Error(err)
			return
		}
		got := make([]byte, len(data))
		if err := f.ReadAt(p, got, off); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(data, got) {
			t.Error("cross-MR round trip corrupted")
		}
	})
	k.Run(time.Minute)
}

func TestSpreadAcrossServers(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 4, 8, DefaultConfig())
		f, _ := e.fs.Create(p, "f", 8<<20)
		if got := len(f.Servers()); got != 4 {
			t.Errorf("file spread over %d servers, want 4", got)
		}
	})
	k.Run(time.Minute)
}

func TestBoundsChecks(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 1, 8, DefaultConfig())
		f, _ := e.fs.Create(p, "f", 1<<20)
		f.OpenConn(p)
		buf := make([]byte, 4096)
		if err := f.ReadAt(p, buf, 1<<20-100); !errors.Is(err, ErrTooLarge) {
			t.Errorf("read past EOF: %v", err)
		}
		if err := f.WriteAt(p, buf, -1); !errors.Is(err, ErrTooLarge) {
			t.Errorf("negative offset: %v", err)
		}
	})
	k.Run(time.Minute)
}

func TestIOWithoutOpenRejected(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 1, 8, DefaultConfig())
		f, _ := e.fs.Create(p, "f", 1<<20)
		if err := f.ReadAt(p, make([]byte, 8), 0); !errors.Is(err, ErrNotOpen) {
			t.Errorf("unopened read: %v", err)
		}
	})
	k.Run(time.Minute)
}

func TestDuplicateCreateAndMissingOpen(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 1, 8, DefaultConfig())
		e.fs.Create(p, "f", 1<<20)
		if _, err := e.fs.Create(p, "f", 1<<20); !errors.Is(err, ErrExists) {
			t.Errorf("duplicate create: %v", err)
		}
		if _, err := e.fs.Open(p, "ghost"); !errors.Is(err, ErrNotFound) {
			t.Errorf("open missing: %v", err)
		}
		if err := e.fs.Delete(p, "ghost"); !errors.Is(err, ErrNotFound) {
			t.Errorf("delete missing: %v", err)
		}
	})
	k.Run(time.Minute)
}

func TestCreateFailsWithoutMemory(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 1, 2, DefaultConfig())
		if _, err := e.fs.Create(p, "big", 10<<20); !errors.Is(err, ErrNoLeases) {
			t.Errorf("oversized create: %v", err)
		}
		if e.b.ActiveLeases() != 0 {
			t.Errorf("failed create leaked %d leases", e.b.ActiveLeases())
		}
	})
	k.Run(time.Minute)
}

func TestRemoteServerFailureTurnsFileUnavailable(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 1, 8, DefaultConfig())
		f, _ := e.fs.Create(p, "f", 2<<20)
		f.OpenConn(p)
		e.b.FailProxy(e.proxies[0])
		err := f.ReadAt(p, make([]byte, 4096), 0)
		if !errors.Is(err, vfs.ErrUnavailable) {
			t.Errorf("read after server failure: %v", err)
		}
		// The only memory server is gone, so the background re-lease
		// exhausts its retry budget and the file turns terminal.
		p.Sleep(time.Second)
		if !f.Unavailable() {
			t.Error("file should be flagged unavailable")
		}
	})
	k.Run(time.Minute)
}

func TestAutoRenewKeepsFileAlive(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		scfg := cluster.DefaultConfig()
		scfg.MemoryBytes = 64 << 20
		db := cluster.NewServer(k, "db1", scfg)
		m := cluster.NewServer(k, "m1", scfg)
		store := metastore.New(k, 10*time.Microsecond)
		b := broker.New(p, store, broker.Config{LeaseTTL: 200 * time.Millisecond})
		b.AddProxy(p, m, 1<<20, 4)
		k.Go("expire", func(ep *sim.Proc) { b.ExpireLoop(ep, 50*time.Millisecond) })
		client := rmem.NewClient(p, db, rmem.DefaultClientConfig())
		fs := NewFS(p, b, client, DefaultConfig())
		f, err := fs.Create(p, "f", 1<<20)
		if err != nil {
			t.Error(err)
			return
		}
		f.OpenConn(p)
		p.Sleep(2 * time.Second) // many TTLs
		if err := f.ReadAt(p, make([]byte, 4096), 0); err != nil {
			t.Errorf("read after renewals failed: %v", err)
		}
		fs.Delete(p, "f")
	})
	k.Run(3 * time.Second)
}

// TestHeartbeatBatchesWholeCohort: the FS renews every lease it holds —
// across all of its files — with one batched heartbeat per tick, so the
// broker sees holder-sized batches, not per-lease round trips, and the
// loop winds down once the last file is gone.
func TestHeartbeatBatchesWholeCohort(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		scfg := cluster.DefaultConfig()
		scfg.MemoryBytes = 64 << 20
		db := cluster.NewServer(k, "db1", scfg)
		m := cluster.NewServer(k, "m1", scfg)
		store := metastore.New(k, 10*time.Microsecond)
		b := broker.New(p, store, broker.Config{LeaseTTL: 200 * time.Millisecond})
		b.AddProxy(p, m, 1<<20, 8)
		k.Go("expire", func(ep *sim.Proc) { b.ExpireLoop(ep, 50*time.Millisecond) })
		defer b.StopExpireLoop()
		client := rmem.NewClient(p, db, rmem.DefaultClientConfig())
		cfg := DefaultConfig()
		cfg.HeartbeatEvery = 60 * time.Millisecond
		fs := NewFS(p, b, client, cfg)
		f1, err := fs.Create(p, "f1", 2<<20)
		if err != nil {
			t.Error(err)
			return
		}
		f2, err := fs.Create(p, "f2", 3<<20)
		if err != nil {
			t.Error(err)
			return
		}
		f1.OpenConn(p)
		f2.OpenConn(p)
		p.Sleep(time.Second) // many TTLs, many heartbeats
		if err := f1.ReadAt(p, make([]byte, 4096), 0); err != nil {
			t.Errorf("f1 read after heartbeats: %v", err)
		}
		if err := f2.ReadAt(p, make([]byte, 4096), 0); err != nil {
			t.Errorf("f2 read after heartbeats: %v", err)
		}
		if fs.Heartbeats == 0 {
			t.Error("no heartbeat rounds recorded")
		}
		hb := b.HeartbeatBatch
		if hb.N != fs.Heartbeats {
			t.Errorf("broker saw %d batches for %d heartbeat rounds", hb.N, fs.Heartbeats)
		}
		// Both files' leases (2 + 3 MRs) renew in one batch per round.
		if hb.Mean() != 5 {
			t.Errorf("mean batch = %.1f leases, want the whole 5-lease cohort", hb.Mean())
		}
		fs.Delete(p, "f1")
		fs.Delete(p, "f2")
		// The heartbeat loop must exit now that no file is active, or
		// k.Run would never drain the event queue.
	})
	k.Run(10 * time.Second)
}

func TestLeaseExpiryWithoutRenewal(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		scfg := cluster.DefaultConfig()
		scfg.MemoryBytes = 64 << 20
		db := cluster.NewServer(k, "db1", scfg)
		m := cluster.NewServer(k, "m1", scfg)
		store := metastore.New(k, 10*time.Microsecond)
		b := broker.New(p, store, broker.Config{LeaseTTL: 100 * time.Millisecond})
		b.AddProxy(p, m, 1<<20, 4)
		k.Go("expire", func(ep *sim.Proc) { b.ExpireLoop(ep, 20*time.Millisecond) })
		client := rmem.NewClient(p, db, rmem.DefaultClientConfig())
		cfg := DefaultConfig()
		cfg.AutoRenew = false
		fs := NewFS(p, b, client, cfg)
		f, _ := fs.Create(p, "f", 1<<20)
		f.OpenConn(p)
		p.Sleep(500 * time.Millisecond)
		err := f.ReadAt(p, make([]byte, 4096), 0)
		if !errors.Is(err, vfs.ErrUnavailable) {
			t.Errorf("read on expired lease: %v", err)
		}
	})
	k.Run(time.Second)
}

func TestConnectCostChargedPerServer(t *testing.T) {
	k := sim.New(1)
	var elapsed time.Duration
	k.Go("t", func(p *sim.Proc) {
		e := newEnv(p, 3, 8, DefaultConfig())
		f, _ := e.fs.Create(p, "f", 3<<20)
		start := p.Now()
		f.OpenConn(p)
		elapsed = p.Now() - start
	})
	k.Run(time.Minute)
	if elapsed != 3*ConnectCost {
		t.Fatalf("open cost = %v, want %v", elapsed, 3*ConnectCost)
	}
}
