// Remote-block integrity, K-way replica failover, and the background
// scrubber — the silent-failure defense layer of the file API.
//
// The paper's best-effort contract (§4.1.5) only covers *announced*
// failures: a revoked lease returns an error, so no correctness can
// depend on remote memory. A bit flip on the donor, a torn RDMA write,
// or a resurrected stale buffer, however, is served back silently. With
// FS.Integrity on, every logical block of BlockSize bytes is stored as a
// frame
//
//	[ BlockSize data | 4-byte CRC-32C | 8-byte generation ]
//
// sealed on write and verified on read. The CRC covers data plus
// generation; the expected generation per block lives client-side (a
// block's generation counts its writes, 0 = never written, served as
// zeros without touching the wire), so a stale-but-internally-consistent
// frame is caught by the generation stamp even though its checksum
// matches.
//
// With FS.Replication = K > 1, Create leases K MRs per stripe on
// distinct donors (broker anti-affinity), writes fan out to every
// healthy replica, and reads verify-then-fail-over: a corrupt or revoked
// replica is skipped, the block is served from a healthy one, and the
// bad copy is rewritten in place (corruption) or the whole replica
// rebuilt from a peer by a background process (revocation) — no salvage
// callback, no degraded window. Only when every replica of a stripe is
// gone does the legacy restripe+salvage path of core.go run.
//
// A block with no verifiable copy anywhere is poisoned: reads fail with
// vfs.ErrCorrupt (never silent wrong bytes), the salvage callback is
// invoked for the block range, and any full overwrite heals it.
//
// FS.ScrubEvery starts a per-file scrubber that sweeps one stripe per
// tick, reading every written frame of every replica through the normal
// transport (the bandwidth cost is real), repairing latent corruption
// from a good copy, and re-kicking replica rebuilds that failed earlier.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"remotedb/internal/broker"
	"remotedb/internal/hw/nic"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// DefaultBlockSize is the integrity block granularity: half an 8 KiB
// database page, so page I/O stays frame-aligned.
const DefaultBlockSize = 4096

// trailerSize is the per-block overhead: CRC-32C + generation.
const trailerSize = 4 + 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// StripeCapacity returns the logical bytes one MR of mrBytes holds once
// each blockSize block is framed with its trailer (blockSize <= 0 means
// DefaultBlockSize). Sizing helpers use it to translate file sizes into
// MR counts.
func StripeCapacity(mrBytes, blockSize int) int64 {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return int64(mrBytes/(blockSize+trailerSize)) * int64(blockSize)
}

// sealFrame stamps gen and the CRC-32C over data+generation into the
// frame's trailer.
func sealFrame(frame []byte, bs int, gen uint64) {
	binary.LittleEndian.PutUint64(frame[bs+4:bs+trailerSize], gen)
	crc := crc32.Checksum(frame[:bs], castagnoli)
	crc = crc32.Update(crc, castagnoli, frame[bs+4:bs+trailerSize])
	binary.LittleEndian.PutUint32(frame[bs:bs+4], crc)
}

// Integrity-verification failure flavors (both are "corrupt" to
// callers; the distinction matters only for diagnostics).
var (
	errChecksum = errors.New("checksum mismatch")
	errStale    = errors.New("generation mismatch (stale or torn frame)")
)

// verifyFrame checks the trailer against the data and the expected
// generation.
func verifyFrame(frame []byte, bs int, wantGen uint64) error {
	crc := crc32.Checksum(frame[:bs], castagnoli)
	crc = crc32.Update(crc, castagnoli, frame[bs+4:bs+trailerSize])
	if crc != binary.LittleEndian.Uint32(frame[bs:bs+4]) {
		return errChecksum
	}
	if got := binary.LittleEndian.Uint64(frame[bs+4 : bs+trailerSize]); got != wantGen {
		return errStale
	}
	return nil
}

func (f *File) frameSize() int { return f.fs.BlockSize + trailerSize }

// framesPerStripe returns how many framed blocks one stripe holds.
func (f *File) framesPerStripe() int64 { return f.stripeCap / int64(f.fs.BlockSize) }

// blockHome locates logical block g: its stripe and the frame's byte
// offset within each replica MR.
func (f *File) blockHome(g int64) (s int, frameOff int) {
	fps := f.framesPerStripe()
	return int(g / fps), int(g%fps) * f.frameSize()
}

// stripeBlockRange returns the half-open logical block range [lo, hi)
// stored in stripe s.
func (f *File) stripeBlockRange(s int) (lo, hi int64) {
	fps := f.framesPerStripe()
	lo = int64(s) * fps
	hi = lo + fps
	if n := int64(len(f.gens)); hi > n {
		hi = n
	}
	return lo, hi
}

func (f *File) corruptErr(g int64) error {
	return fmt.Errorf("core: block %d of %q failed integrity verification: %w", g, f.name, vfs.ErrCorrupt)
}

// framedAccess is the integrity-mode I/O path: block-at-a-time, sealed
// on write, verified with replica failover on read.
func (f *File) framedAccess(p *sim.Proc, b []byte, off int64, write bool) error {
	if err := f.check(off, len(b)); err != nil {
		return err
	}
	bs := int64(f.fs.BlockSize)
	for len(b) > 0 {
		g := off / bs
		within := off % bs
		n := bs - within
		if n > int64(len(b)) {
			n = int64(len(b))
		}
		var err error
		if write {
			err = f.writeBlock(p, g, within, b[:n])
		} else {
			err = f.readBlockInto(p, g, within, b[:n])
		}
		if err != nil {
			return err
		}
		b = b[n:]
		off += n
	}
	if write {
		f.Writes++
	} else {
		f.Reads++
	}
	return nil
}

// readBlockInto serves dst from block g's logical bytes
// [within, within+len(dst)).
func (f *File) readBlockInto(p *sim.Proc, g, within int64, dst []byte) error {
	if f.poisoned[g] {
		return f.corruptErr(g)
	}
	if f.gens[g] == 0 {
		// Never written (or zeroed by a restripe): serve zeros locally.
		// The memset is charged as client CPU — a zero-cost success here
		// would let a read loop over a zeroed range spin without ever
		// yielding to the simulation clock.
		f.fs.Client.Server.Work(p, nic.MemcpyCost(len(dst)))
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	frame := make([]byte, f.frameSize())
	if err := f.fetchBlock(p, g, frame); err != nil {
		return err
	}
	copy(dst, frame[within:within+int64(len(dst))])
	return nil
}

// fetchBlock reads and verifies block g's frame from the first replica
// that yields a verified copy, failing over on corruption or revocation
// and repairing corrupt copies it passed on the way. On return with nil
// error, frame holds a verified frame.
func (f *File) fetchBlock(p *sim.Proc, g int64, frame []byte) error {
	if f.fs.tailTolerant(p) {
		return f.fetchBlockTolerant(p, g, frame, -1)
	}
	return f.fetchBlockSkip(p, g, frame, -1)
}

// fetchBlockSkip is fetchBlock excluding replica skip (the scrubber uses
// it to find a good copy for a replica it already knows is bad).
func (f *File) fetchBlockSkip(p *sim.Proc, g int64, frame []byte, skip int) error {
	s, frameOff := f.blockHome(g)
	bs := f.fs.BlockSize
	var bad []int
	failedOver := false
	for r := range f.leases[s] {
		if r == skip {
			continue
		}
		if f.down[s][r] {
			// Marked lost already (revoke-watch or an earlier access):
			// serving past it is a failover all the same.
			failedOver = true
			continue
		}
		l := f.leases[s][r]
		if !l.Valid(p.Now()) {
			f.replicaLost(s, r)
			if f.unavailable {
				return vfs.ErrUnavailable
			}
			failedOver = true
			continue
		}
		err := f.fs.Transport.Read(p, f.fs.Client, l.MR, frameOff, frame)
		if err != nil {
			if errors.Is(err, rmem.ErrRevoked) {
				f.replicaLost(s, r)
				if f.unavailable {
					return vfs.ErrUnavailable
				}
				failedOver = true
				continue
			}
			return err
		}
		if verr := verifyFrame(frame, bs, f.gens[g]); verr != nil {
			f.fs.Corruptions.Add(1, int64(bs))
			bad = append(bad, r)
			failedOver = true
			continue
		}
		if failedOver {
			f.fs.Failovers.Add(1, int64(bs))
		}
		for _, rb := range bad {
			f.repairBlockOn(p, g, rb, frame)
		}
		return nil
	}
	if len(bad) > 0 {
		if f.underRepair(s) {
			// An unverifiable frame while the stripe is actively being
			// rebuilt is the rebuild's churn (half-swapped replicas,
			// salvage writes racing this read), not data loss. Degrade to
			// the retryable repair-in-progress error instead of poisoning
			// a block the repair is about to make whole.
			return f.stripeErr(s)
		}
		// Every live replica's copy failed verification: the block's
		// data is gone. Fail loudly and let salvage repopulate.
		f.poisonBlock(p, g)
		return f.corruptErr(g)
	}
	if f.unavailable {
		return vfs.ErrUnavailable
	}
	return f.stripeErr(s)
}

// repairBlockOn rewrites block g's frame on replica r from a verified
// good copy (in-place corruption repair).
func (f *File) repairBlockOn(p *sim.Proc, g int64, r int, goodFrame []byte) {
	s, frameOff := f.blockHome(g)
	if f.down[s][r] {
		return // replica is being rebuilt wholesale
	}
	l := f.leases[s][r]
	if !l.Valid(p.Now()) {
		f.replicaLost(s, r)
		return
	}
	err := f.fs.Transport.Write(p, f.fs.Client, l.MR, frameOff, goodFrame)
	if errors.Is(err, rmem.ErrRevoked) {
		f.replicaLost(s, r)
		return
	}
	if err == nil {
		f.fs.Repairs.Add(1, int64(f.fs.BlockSize))
	}
}

// poisonBlock marks block g as having no verifiable copy: reads fail
// with vfs.ErrCorrupt until a write replaces the data. The salvage
// callback is invoked for the block range (same contract as a lost
// stripe, at block granularity).
func (f *File) poisonBlock(p *sim.Proc, g int64) {
	if f.poisoned == nil {
		f.poisoned = make(map[int64]bool)
	}
	if f.poisoned[g] {
		return
	}
	f.poisoned[g] = true
	if f.salvage == nil || !f.fs.Recover {
		return
	}
	off := g * int64(f.fs.BlockSize)
	n := int64(f.fs.BlockSize)
	if off+n > f.size {
		n = f.size - off
	}
	name := fmt.Sprintf("block-salvage:%s:%d", f.name, g)
	p.Kernel().Go(name, func(sp *sim.Proc) {
		if f.closed || f.deleted || f.unavailable {
			return
		}
		if err := f.salvage(sp, f, off, n); err == nil {
			f.fs.Salvages++
		}
	})
}

// writeBlock seals block g's frame (read-merge-write for partial
// blocks) and fans it out to every healthy replica.
func (f *File) writeBlock(p *sim.Proc, g, within int64, src []byte) error {
	bs := f.fs.BlockSize
	frame := make([]byte, f.frameSize())
	partial := within != 0 || len(src) != bs
	if partial && f.gens[g] != 0 && !f.poisoned[g] {
		if err := f.fetchBlock(p, g, frame); err != nil {
			return err
		}
	}
	copy(frame[within:within+int64(len(src))], src)
	newGen := f.gens[g] + 1
	sealFrame(frame, bs, newGen)
	s, frameOff := f.blockHome(g)
	wrote := 0
	for r := range f.leases[s] {
		if f.down[s][r] {
			continue
		}
		l := f.leases[s][r]
		if !l.Valid(p.Now()) {
			f.replicaLost(s, r)
			if f.unavailable {
				return vfs.ErrUnavailable
			}
			continue
		}
		err := f.fs.Transport.Write(p, f.fs.Client, l.MR, frameOff, frame)
		if err != nil {
			if errors.Is(err, rmem.ErrRevoked) {
				f.replicaLost(s, r)
				if f.unavailable {
					return vfs.ErrUnavailable
				}
				continue
			}
			return err
		}
		wrote++
	}
	if wrote == 0 {
		if f.unavailable {
			return vfs.ErrUnavailable
		}
		return f.stripeErr(s)
	}
	f.gens[g] = newGen
	// A write heals poison: the block holds fresh data now (for a
	// partial write the unwritten remainder is zeros — the loss was
	// already announced via error and salvage).
	delete(f.poisoned, g)
	return nil
}

// repairReplica rebuilds one lost replica of stripe s: lease a
// replacement MR on a donor not already backing the stripe
// (anti-affinity), copy every written block from the surviving replicas
// through the verified read path, and swap it in. No salvage callback
// runs and the file never stops serving — this is the replicated
// counterpart of repairStripe. On failure the stripe simply stays at a
// reduced replication factor; the scrubber re-kicks the rebuild later.
func (f *File) repairReplica(p *sim.Proc, s, r int) {
	defer func() { f.repairing[s][r] = false }()
	avoid := make(map[string]bool)
	for r2, l := range f.leases[s] {
		if r2 != r && !f.down[s][r2] {
			avoid[l.MR.Owner.Name] = true
		}
	}
	got, err := f.fs.requestAvoiding(p, 1, avoid)
	if f.closed || f.deleted || f.unavailable {
		if err == nil {
			f.fs.Broker.Release(p, got[0])
		}
		return
	}
	if err != nil {
		return
	}
	l := got[0]
	if int64(l.MR.Size()) != f.mrSize {
		f.fs.Broker.Release(p, l)
		return
	}
	f.connect(p, l.MR.Owner.Name)
	if err := f.copyStripeTo(p, s, l); err != nil {
		f.fs.Broker.Release(p, l)
		return
	}
	if f.closed || f.deleted {
		f.fs.Broker.Release(p, l)
		return
	}
	f.leases[s][r] = l
	f.down[s][r] = false
	f.fs.ReplicaRepairs++
}

// copyStripeTo copies every written, unpoisoned frame of stripe s onto
// the replacement lease, reading through the verified path (so a
// corrupt surviving copy is caught, not propagated) and writing in runs
// to amortize transport overhead.
func (f *File) copyStripeTo(p *sim.Proc, s int, dst *broker.Lease) error {
	lo, hi := f.stripeBlockRange(s)
	fsz := int64(f.frameSize())
	const maxRun = 32
	scratch := make([]byte, maxRun*fsz)
	g := lo
	for g < hi {
		if f.closed || f.deleted || f.unavailable {
			return nil
		}
		if f.gens[g] == 0 || f.poisoned[g] {
			g++
			continue
		}
		run := int64(1)
		for g+run < hi && run < maxRun && f.gens[g+run] != 0 && !f.poisoned[g+run] {
			run++
		}
		buf := scratch[:run*fsz]
		for i := int64(0); i < run; i++ {
			fr := buf[i*fsz : (i+1)*fsz]
			if err := f.fetchBlock(p, g+i, fr); err != nil {
				if errors.Is(err, vfs.ErrCorrupt) {
					// Just poisoned: leave the slot zeroed — reads are
					// gated by the poison flag, never by this copy.
					continue
				}
				return err
			}
		}
		_, frameOff := f.blockHome(g)
		if err := f.fs.Transport.Write(p, f.fs.Client, dst.MR, frameOff, buf); err != nil {
			return err
		}
		g += run
	}
	return nil
}

// scrubLoop is the per-file background scrubber: every ScrubEvery it
// sweeps the next stripe, verifying every written frame on every
// replica and repairing what it finds (latent corruption, staleness,
// missing replicas).
func (f *File) scrubLoop(p *sim.Proc) {
	for {
		p.Sleep(f.fs.ScrubEvery)
		if f.closed || f.deleted || f.unavailable {
			return
		}
		s := f.scrubCursor % len(f.leases)
		f.scrubCursor++
		f.scrubStripe(p, s)
	}
}

// scrubStripe verifies stripe s end to end on every live replica.
func (f *File) scrubStripe(p *sim.Proc, s int) {
	// Restore the replication factor first: a replica whose earlier
	// rebuild failed (donor scarcity at the time) gets another chance.
	for r := range f.down[s] {
		if f.down[s][r] && !f.repairing[s][r] && f.fs.Recover && f.healthyReplicas(s) > 0 {
			f.repairing[s][r] = true
			rr := r
			name := fmt.Sprintf("replica-repair:%s:%d.%d", f.name, s, rr)
			p.Kernel().Go(name, func(rp *sim.Proc) { f.repairReplica(rp, s, rr) })
		}
	}
	lo, hi := f.stripeBlockRange(s)
	bs := f.fs.BlockSize
	fsz := int64(f.frameSize())
	const maxRun = 32
	scratch := make([]byte, maxRun*fsz)
	for r := range f.leases[s] {
		g := lo
		for g < hi {
			if f.closed || f.deleted || f.unavailable {
				return
			}
			if f.down[s][r] || f.repairing[s][r] {
				break
			}
			if f.gens[g] == 0 || f.poisoned[g] {
				g++
				continue
			}
			run := int64(1)
			for g+run < hi && run < maxRun && f.gens[g+run] != 0 && !f.poisoned[g+run] {
				run++
			}
			l := f.leases[s][r]
			if !l.Valid(p.Now()) {
				f.replicaLost(s, r)
				break
			}
			_, frameOff := f.blockHome(g)
			err := f.fs.Transport.Read(p, f.fs.Client, l.MR, frameOff, scratch[:run*fsz])
			if err != nil {
				if errors.Is(err, rmem.ErrRevoked) {
					f.replicaLost(s, r)
				}
				break
			}
			for i := int64(0); i < run; i++ {
				fr := scratch[i*fsz : (i+1)*fsz]
				if verifyFrame(fr, bs, f.gens[g+i]) == nil {
					f.fs.ScrubChecked.Add(1, int64(bs))
					continue
				}
				// Latent corruption or staleness on replica r: find a
				// good copy elsewhere and rewrite this one, or poison.
				f.fs.Corruptions.Add(1, int64(bs))
				good := make([]byte, fsz)
				if ferr := f.fetchBlockSkip(p, g+i, good, r); ferr == nil {
					f.repairBlockOn(p, g+i, r, good)
				} else if !errors.Is(ferr, vfs.ErrCorrupt) {
					// No other replica could serve the block: this was
					// the only copy and it is bad.
					f.poisonBlock(p, g+i)
				}
			}
			g += run
		}
	}
	f.fs.ScrubSweeps++
}

// Fault-injection accessors (used by the corruption harness in
// internal/exp; see the Inject* primitives on rmem.MR). They are no-ops
// returning false/nil unless integrity frames are on.

// Blocks returns the number of logical integrity blocks.
func (f *File) Blocks() int { return len(f.gens) }

// BlockWritten reports whether block g has ever been written (an
// injection target must hold real data to model silent corruption).
func (f *File) BlockWritten(g int) bool {
	return g >= 0 && g < len(f.gens) && f.gens[g] > 0
}

// BlockPoisoned reports whether block g currently has no verifiable
// copy.
func (f *File) BlockPoisoned(g int) bool { return f.poisoned[int64(g)] }

// blockMR resolves block g on replica r to its MR and frame offset.
func (f *File) blockMR(g, r int) (*rmem.MR, int, bool) {
	if !f.fs.Integrity || g < 0 || g >= len(f.gens) {
		return nil, 0, false
	}
	s, frameOff := f.blockHome(int64(g))
	if r < 0 || r >= len(f.leases[s]) || f.down[s][r] {
		return nil, 0, false
	}
	return f.leases[s][r].MR, frameOff, true
}

// InjectBlockFlip flips one stored bit of block g's frame on replica r
// (a silent medium bit flip).
func (f *File) InjectBlockFlip(g, r int) bool {
	mr, off, ok := f.blockMR(g, r)
	return ok && mr.InjectXOR(off+f.fs.BlockSize/2, 0x01)
}

// InjectBlockTear clobbers the second half of block g's stored data on
// replica r without touching the trailer (a torn write).
func (f *File) InjectBlockTear(g, r int) bool {
	mr, off, ok := f.blockMR(g, r)
	return ok && mr.InjectClobber(off+f.fs.BlockSize/2, f.fs.BlockSize/2)
}

// SnapshotBlockFrame captures block g's stored frame on replica r for a
// later RestoreBlockFrame (stale-replica resurrection).
func (f *File) SnapshotBlockFrame(g, r int) []byte {
	mr, off, ok := f.blockMR(g, r)
	if !ok {
		return nil
	}
	return mr.InjectCopyOut(off, f.frameSize())
}

// RestoreBlockFrame writes a snapshot back over block g's frame on
// replica r: the stored image silently reverts to an older, internally
// consistent state, detectable only by the generation stamp.
func (f *File) RestoreBlockFrame(g, r int, snap []byte) bool {
	mr, off, ok := f.blockMR(g, r)
	return ok && len(snap) == f.frameSize() && mr.InjectCopyIn(off, snap)
}
