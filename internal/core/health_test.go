package core

import (
	"bytes"
	"testing"
	"time"

	"remotedb/internal/broker"
	"remotedb/internal/fault"
	"remotedb/internal/sim"
)

// slowServer returns the donor server owning replica r of stripe 0 of f.
func donorOf(t *testing.T, e *env, f *File, r int) int {
	t.Helper()
	name := f.leases[0][r].MR.Owner.Name
	for i, m := range e.mems {
		if m.Name == name {
			return i
		}
	}
	t.Fatalf("donor %q not found", name)
	return -1
}

func TestDeadlineBudgetSlowReadFallsBack(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		cfg := DefaultConfig()
		cfg.DeadlineBudget = 500 * time.Microsecond
		e := newEnv(p, 2, 8, cfg)
		f, _ := e.fs.Create(p, "f", 1<<20)
		f.OpenConn(p)
		data := bytes.Repeat([]byte{7}, 8192)
		if err := f.WriteAt(p, data, 0); err != nil {
			t.Error(err)
			return
		}
		// Every donor of this file crawls: reads must give up at the
		// budget, not ride out the 50 ms stall.
		for _, m := range e.mems {
			m.SetServiceDelay(50 * time.Millisecond)
		}
		got := make([]byte, 8192)
		start := p.Now()
		err := f.ReadAt(p, got, 0)
		if !fault.Slow(err) {
			t.Errorf("want ErrSlow, got %v", err)
		}
		if !fault.Retryable(err) {
			t.Error("ErrSlow must classify as retryable")
		}
		if el := p.Now() - start; el > 5*time.Millisecond {
			t.Errorf("slow read held the caller %v, budget was 500us", el)
		}
		if e.fs.Client.DeadlineMisses == 0 {
			t.Error("DeadlineMisses not counted")
		}
		// Donor recovers: the same read succeeds again.
		for _, m := range e.mems {
			m.SetServiceDelay(0)
		}
		if err := f.ReadAt(p, got, 0); err != nil {
			t.Errorf("read after recovery: %v", err)
		}
		if !bytes.Equal(data, got) {
			t.Error("round trip corrupted")
		}
	})
	k.Run(time.Minute)
}

func TestDeadlineBudgetFramedRead(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		cfg := DefaultConfig()
		cfg.Integrity = true
		cfg.DeadlineBudget = 500 * time.Microsecond
		e := newEnv(p, 2, 8, cfg)
		f, _ := e.fs.Create(p, "f", 1<<20)
		f.OpenConn(p)
		data := bytes.Repeat([]byte{9}, 8192)
		if err := f.WriteAt(p, data, 0); err != nil {
			t.Error(err)
			return
		}
		for _, m := range e.mems {
			m.SetServiceDelay(50 * time.Millisecond)
		}
		got := make([]byte, 8192)
		err := f.ReadAt(p, got, 0)
		if !fault.Slow(err) {
			t.Errorf("want ErrSlow, got %v", err)
		}
		if e.fs.SlowReads == 0 {
			t.Error("SlowReads not counted")
		}
		for _, m := range e.mems {
			m.SetServiceDelay(0)
		}
		if err := f.ReadAt(p, got, 0); err != nil {
			t.Errorf("read after recovery: %v", err)
		}
		if !bytes.Equal(data, got) {
			t.Error("round trip corrupted")
		}
	})
	k.Run(time.Minute)
}

func TestHedgedReadCutsTail(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		cfg := DefaultConfig()
		cfg.Replication = 2
		cfg.Hedging = true
		cfg.HedgeAfter = 200 * time.Microsecond
		cfg.HedgeRateCap = 1 // mechanics under test, not the cap
		e := newEnv(p, 4, 8, cfg)
		f, _ := e.fs.Create(p, "f", 1<<20)
		f.OpenConn(p)
		data := bytes.Repeat([]byte{3}, 8192)
		if err := f.WriteAt(p, data, 0); err != nil {
			t.Error(err)
			return
		}
		// Only the primary replica's donor is slow; the hedge should
		// finish the read at roughly the hedge threshold, not the stall.
		stall := 20 * time.Millisecond
		e.mems[donorOf(t, e, f, 0)].SetServiceDelay(stall)
		got := make([]byte, 8192)
		start := p.Now()
		if err := f.ReadAt(p, got, 0); err != nil {
			t.Errorf("hedged read: %v", err)
			return
		}
		el := p.Now() - start
		if el >= stall {
			t.Errorf("read took %v, hedge should have cut the %v stall", el, stall)
		}
		if !bytes.Equal(data, got) {
			t.Error("round trip corrupted")
		}
		if e.fs.HedgedReads == 0 || e.fs.HedgeWins == 0 {
			t.Errorf("hedge counters: fired=%d won=%d", e.fs.HedgedReads, e.fs.HedgeWins)
		}
	})
	k.Run(time.Minute)
}

func TestHedgeRateCap(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		cfg := DefaultConfig()
		cfg.Replication = 2
		cfg.Hedging = true
		cfg.HedgeAfter = 100 * time.Microsecond
		cfg.HedgeRateCap = 0.05
		e := newEnv(p, 4, 8, cfg)
		f, _ := e.fs.Create(p, "f", 1<<20)
		f.OpenConn(p)
		data := bytes.Repeat([]byte{1}, 8192)
		f.WriteAt(p, data, 0)
		// Every donor is mildly slow, so every read would like to
		// hedge; the cap must keep hedge volume at ~5%.
		for _, m := range e.mems {
			m.SetServiceDelay(300 * time.Microsecond)
		}
		got := make([]byte, 8192)
		for i := 0; i < 200; i++ {
			if err := f.ReadAt(p, got, 0); err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
		}
		maxHedges := int64(0.05*float64(e.fs.TolerantReads)) + 1
		if e.fs.HedgedReads > maxHedges {
			t.Errorf("hedges %d exceed cap (%d of %d tolerant reads)",
				e.fs.HedgedReads, maxHedges, e.fs.TolerantReads)
		}
		if e.fs.HedgedReads == 0 {
			t.Error("cap strangled hedging entirely")
		}
	})
	k.Run(time.Minute)
}

// healthEnv builds the standard health rig: a multi-stripe file spread
// over 4 donors, the fleet baseline warmed with fast reads of a stripe
// that avoids the stripe-0 primary donor, and that donor's index
// returned for slowing.
func healthEnv(t *testing.T, p *sim.Proc, cfg Config) (*env, *File, int, []byte) {
	t.Helper()
	cfg.Replication = 2
	cfg.HealthChecks = true
	cfg.Placement = broker.PlaceSpread
	cfg.HeartbeatEvery = 2 * time.Millisecond
	e := newEnv(p, 4, 8, cfg)
	f, err := e.fs.Create(p, "f", 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	f.OpenConn(p)
	slow := donorOf(t, e, f, 0)
	slowName := e.mems[slow].Name
	// Find a stripe that does not touch the to-be-slowed donor: reads
	// of it keep feeding the fleet baseline honest, fast samples.
	warm := -1
	for s := 1; s < len(f.leases) && warm < 0; s++ {
		onSlow := false
		for _, l := range f.leases[s] {
			if l.MR.Owner.Name == slowName {
				onSlow = true
			}
		}
		if !onSlow {
			warm = s
		}
	}
	if warm < 0 {
		t.Fatalf("no stripe avoids donor %q; placement changed", slowName)
	}
	lo, _ := f.stripeBlockRange(warm)
	warmOff := lo * int64(e.fs.BlockSize)
	data := bytes.Repeat([]byte{5}, 8192)
	f.WriteAt(p, data, 0) // stripe 0, primary on the slow donor
	f.WriteAt(p, data, warmOff)
	// Warm the fleet median (and the fast donors' scores) well past
	// healthMinSamples before anything slows down.
	got := make([]byte, 8192)
	for i := 0; i < 10; i++ {
		if err := f.ReadAt(p, got, warmOff); err != nil {
			t.Fatalf("warm read %d: %v", i, err)
		}
	}
	return e, f, slow, data
}

func TestBrownoutAndRecovery(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e, f, slow, _ := healthEnv(t, p, DefaultConfig())
		slowName := e.mems[slow].Name
		// A RDMA read of one block is ~5us here; +30us lands the donor
		// in the brownout band (>=3x the fleet median) without crossing
		// the 8x quarantine threshold.
		stall := 30 * time.Microsecond
		e.mems[slow].SetServiceDelay(stall)
		got := make([]byte, 8192)
		for i := 0; i < 40 && e.fs.Brownouts == 0; i++ {
			if err := f.ReadAt(p, got, 0); err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
		}
		if e.fs.Brownouts == 0 {
			t.Error("slow donor never browned out")
			return
		}
		if !e.fs.health.avoidSet()[slowName] {
			t.Errorf("browned donor %q missing from avoid set %v", slowName, e.fs.health.slowDonors())
		}
		// Browned-out: stripe-0 reads prefer the healthy replica now.
		before := p.Now()
		n := 0
		for i := 0; i < 20; i++ {
			f.ReadAt(p, got, 0)
			n++
		}
		if per := (p.Now() - before) / time.Duration(n); per >= stall {
			t.Errorf("reads still riding the slow donor: %v each", per)
		}
		if e.fs.Quarantines != 0 {
			t.Errorf("brownout-band stall escalated to quarantine (%d)", e.fs.Quarantines)
		}
		// Donor recovers; probes must close the breaker.
		e.mems[slow].SetServiceDelay(0)
		for i := 0; i < 300 && e.fs.HealthRecoveries == 0; i++ {
			f.ReadAt(p, got, 0)
			p.Sleep(time.Millisecond)
		}
		if e.fs.HealthRecoveries == 0 {
			t.Errorf("donor never recovered (probes=%d)", e.fs.HealthProbes)
		}
		if e.fs.HealthProbes == 0 {
			t.Error("no probe reads routed to the unhealthy donor")
		}
		if len(e.fs.health.slowDonors()) != 0 {
			t.Errorf("avoid set not cleared: %v", e.fs.health.slowDonors())
		}
	})
	k.Run(time.Minute)
}

func TestQuarantineMigratesReplicas(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		e, f, slow, data := healthEnv(t, p, DefaultConfig())
		slowName := e.mems[slow].Name
		// Far past the quarantine threshold.
		e.mems[slow].SetServiceDelay(20 * time.Millisecond)
		got := make([]byte, 8192)
		for i := 0; i < 60 && e.fs.Quarantines == 0; i++ {
			if err := f.ReadAt(p, got, 0); err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
		}
		if e.fs.Quarantines == 0 {
			t.Error("slow donor never quarantined")
			return
		}
		if e.fs.ProactiveMigrations == 0 {
			t.Error("quarantine did not trigger migration")
			return
		}
		// Let the background rebuilds land, then confirm the donor no
		// longer backs the file and data survived the move.
		p.Sleep(100 * time.Millisecond)
		for _, srv := range f.Servers() {
			if srv == slowName {
				t.Errorf("replica still on quarantined donor %q: %v", slowName, f.Servers())
			}
		}
		if err := f.ReadAt(p, got, 0); err != nil {
			t.Errorf("read after migration: %v", err)
		}
		if !bytes.Equal(data, got) {
			t.Error("data lost in migration")
		}
	})
	k.Run(time.Minute)
}

func TestBreakerEscalatesBrownedToQuarantined(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		cfg := DefaultConfig()
		cfg.HealthChecks = true
		e := newEnv(p, 2, 8, cfg)
		h := e.fs.health
		// Synthetic samples: warm the fleet with a fast donor, then
		// degrade "bad" in two steps.
		for i := 0; i < 20; i++ {
			h.observe("good", 100*time.Microsecond, false, p.Now())
		}
		for i := 0; i < 20; i++ {
			h.observe("bad", 500*time.Microsecond, false, p.Now())
		}
		if got := h.stateOf("bad"); got != donorBrowned {
			t.Errorf("after 5x samples: state %v, want browned-out", got)
		}
		// A browned-out donor that starts failing outright escalates.
		for i := 0; i < 10; i++ {
			h.observe("bad", 0, true, p.Now())
		}
		if got := h.stateOf("bad"); got != donorQuarantined {
			t.Errorf("after failures: state %v, want quarantined", got)
		}
		if e.fs.Brownouts != 1 || e.fs.Quarantines != 1 {
			t.Errorf("counters: brownouts=%d quarantines=%d", e.fs.Brownouts, e.fs.Quarantines)
		}
		// Recovery: consecutive good probes close the breaker once the
		// error EWMA has decayed back under the recovery threshold.
		for i := 0; i < 15 && h.stateOf("bad") != donorHealthy; i++ {
			h.observe("bad", 100*time.Microsecond, false, p.Now())
		}
		if got := h.stateOf("bad"); got != donorHealthy {
			t.Errorf("after good probes: state %v, want healthy", got)
		}
		if e.fs.HealthRecoveries != 1 {
			t.Errorf("recoveries: %d", e.fs.HealthRecoveries)
		}
	})
	k.Run(time.Minute)
}

func TestTailTolerantPathOffByDefault(t *testing.T) {
	k := sim.New(1)
	k.Go("t", func(p *sim.Proc) {
		cfg := DefaultConfig()
		cfg.Replication = 2
		e := newEnv(p, 4, 8, cfg)
		f, _ := e.fs.Create(p, "f", 1<<20)
		f.OpenConn(p)
		data := bytes.Repeat([]byte{4}, 8192)
		f.WriteAt(p, data, 0)
		got := make([]byte, 8192)
		if err := f.ReadAt(p, got, 0); err != nil {
			t.Error(err)
		}
		if e.fs.TolerantReads != 0 {
			t.Errorf("tolerant path ran with all knobs off (%d reads)", e.fs.TolerantReads)
		}
		// A proc-level deadline alone opts the read in.
		p.SetDeadline(p.Now() + time.Second)
		if err := f.ReadAt(p, got, 0); err != nil {
			t.Error(err)
		}
		p.SetDeadline(0)
		if e.fs.TolerantReads == 0 {
			t.Error("proc deadline did not engage the tolerant path")
		}
	})
	k.Run(time.Minute)
}
