// Tail tolerance for the remote tier: deadline budgets, hedged replica
// reads, and per-donor health scoring with a three-state breaker.
//
// The fault ladder in core.go and integrity.go only reacts to *hard*
// failures — a revoked lease errors, a corrupt frame fails
// verification. A donor that is merely slow (reclaiming under memory
// pressure, NIC-saturated, about to revoke) passes every one of those
// checks while stalling each read routed to it. This file makes slow
// donors as survivable as dead ones:
//
//   - Deadline budgets: a read still in flight past its budget (the
//     process deadline set by the query executor, or FS.DeadlineBudget
//     as the per-op default) is abandoned with an error wrapping
//     fault.ErrSlow. ErrSlow is retryable, so every existing fallback
//     ladder (buffer-pool SSD fallback, exp's reclaimable test) handles
//     it with no new cases.
//
//   - Hedged reads: when a replicated stripe's primary read exceeds an
//     adaptive threshold (the donor's learned p95 latency), the same
//     one-sided read fires at the next replica and the first *verified*
//     frame wins; the loser is abandoned (its wire cost is sunk, its
//     bytes land in a private buffer and are discarded). A hedge-rate
//     cap bounds hedge volume so hedges cannot melt the NIC when the
//     whole fleet slows at once.
//
//   - Donor health: per-donor p95-latency and error-rate EWMAs feed a
//     breaker (healthy -> browned-out -> quarantined). Browned-out
//     donors are read last and deprioritized for new leases — the
//     holder soft-avoids them locally and piggybacks the set on its
//     batched heartbeat so the broker can deprioritize them for every
//     holder. Quarantined donors additionally get their replicas
//     proactively migrated to healthy donors before revocation ever
//     arrives. Recovery is probe-based: every probe interval one
//     trickle read routes through the unhealthy donor, and sustained
//     good samples close the breaker again.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"remotedb/internal/fault"
	"remotedb/internal/metrics"
	"remotedb/internal/rmem"
	"remotedb/internal/sim"
	"remotedb/internal/vfs"
)

// Breaker thresholds. A donor's *median* latency is compared against
// the fleet-wide *median* — like against like. Medians on both sides
// matter: a fleet p95 is dragged up when a sizable slice of the fleet
// is slow (the p95 of a bimodal mix IS the slow mode), and a donor p95
// sits far above the donor median even on a perfectly healthy fabric
// (natural queueing spread), so p95-vs-median would flag everyone. A
// genuinely sick donor is slow on *every* request, which is exactly
// what a median catches. The ratio form is scale-free: the same code
// governs µs RDMA fabrics and ms TCP paths. Error-rate thresholds are
// absolute. Hysteresis: a donor degrades at the brownout/quarantine
// factors but only recovers via probes back inside the recover factor,
// so it cannot flap on the boundary.
const (
	healthMinSamples    = 8    // samples before latency comparisons mean anything
	brownoutLatFactor   = 3.0  // donor median >= 3x fleet median -> browned-out
	quarantineLatFactor = 8.0  // donor median >= 8x fleet median -> quarantined
	recoverLatFactor    = 1.5  // probe sample <= 1.5x the recovery baseline counts toward recovery
	brownoutErrRate     = 0.3  // error EWMA thresholds, absolute
	quarantineErrRate   = 0.7
	recoverErrRate      = 0.1
)

// DefaultHedgeRateCap bounds hedges to 10% of tolerant reads unless
// FS.HedgeRateCap overrides it.
const DefaultHedgeRateCap = 0.1

// minHedgeThreshold floors the adaptive hedge trigger so a cold tracker
// (or a sub-microsecond p95 estimate) cannot hedge every read from the
// first access.
const minHedgeThreshold = 20 * time.Microsecond

type donorState int

const (
	donorHealthy donorState = iota
	donorBrowned
	donorQuarantined
)

func (s donorState) String() string {
	switch s {
	case donorBrowned:
		return "browned-out"
	case donorQuarantined:
		return "quarantined"
	}
	return "healthy"
}

// donorHealth is one donor's score card.
type donorHealth struct {
	lat        metrics.QuantileEWMA // p95 of successful transfer latencies (hedge trigger)
	med        metrics.QuantileEWMA // median of the same (breaker state input)
	errRate    metrics.EWMA         // 1 = failed/unverified sample, 0 = good
	state      donorState
	nextProbe  time.Duration // half-open: earliest next trickle read
	goodProbes int           // consecutive recovery-grade samples while unhealthy
}

// healthTracker scores every donor this FS talks to. It exists whenever
// Hedging or HealthChecks is on; breaker side effects (brownout,
// quarantine migration, soft-avoid, piggybacked reports) only run with
// HealthChecks — a hedging-only FS uses it purely for p95 thresholds.
type healthTracker struct {
	fs     *FS
	donors map[string]*donorHealth
	fleet  metrics.QuantileEWMA // fleet-wide median, the "normal" baseline
}

func newHealthTracker(fs *FS) *healthTracker {
	return &healthTracker{
		fs:     fs,
		donors: make(map[string]*donorHealth),
		fleet:  metrics.QuantileEWMA{P: 0.5, Step: 0.05},
	}
}

func (h *healthTracker) donor(name string) *donorHealth {
	d := h.donors[name]
	if d == nil {
		d = &donorHealth{
			lat:     metrics.QuantileEWMA{P: 0.95, Step: 0.05},
			med:     metrics.QuantileEWMA{P: 0.5, Step: 0.05},
			errRate: metrics.EWMA{Alpha: 0.2},
		}
		h.donors[name] = d
	}
	return d
}

// probeEvery is the half-open trickle cadence: the heartbeat interval
// (health decisions ride the same clock as lease renewal), or half the
// lease TTL when no explicit heartbeat cadence is set.
func (h *healthTracker) probeEvery() time.Duration {
	if h.fs.HeartbeatEvery > 0 {
		return h.fs.HeartbeatEvery
	}
	if ttl := h.fs.Broker.LeaseTTL(); ttl > 0 {
		return ttl / 2
	}
	return 10 * time.Millisecond
}

// observe folds one transfer outcome into the donor's score card and
// re-evaluates its breaker state. It is called from transfer processes
// (including hedge losers completing after their caller moved on), so
// it must never block.
func (h *healthTracker) observe(name string, lat time.Duration, failed bool, now time.Duration) {
	d := h.donor(name)
	if failed {
		d.errRate.Observe(1)
	} else {
		d.errRate.Observe(0)
		d.lat.ObserveDuration(lat)
		d.med.ObserveDuration(lat)
		h.fleet.ObserveDuration(lat)
	}
	if !h.fs.HealthChecks {
		return
	}
	h.reassess(name, d, now)
	if d.state != donorHealthy {
		h.tryRecover(d, lat, failed)
	}
}

// reassess escalates the donor's breaker (healthy -> browned-out ->
// quarantined). Escalation is immediate; recovery is only ever earned
// through probes (tryRecover), never by the estimate drifting back on
// its own — a p95 EWMA decays far too slowly for that, by design.
func (h *healthTracker) reassess(name string, d *donorHealth, now time.Duration) {
	fleet := h.fleet.Value()
	lat := d.med.Value()
	er := d.errRate.Value()
	latKnown := d.med.Count() >= healthMinSamples && h.fleet.Count() >= healthMinSamples && fleet > 0
	want := d.state
	switch {
	case er >= quarantineErrRate || (latKnown && lat >= quarantineLatFactor*fleet):
		want = donorQuarantined
	case er >= brownoutErrRate || (latKnown && lat >= brownoutLatFactor*fleet):
		want = donorBrowned
	}
	if want <= d.state {
		return
	}
	d.state = want
	d.goodProbes = 0
	switch want {
	case donorBrowned:
		h.fs.Brownouts++
		d.nextProbe = now + h.probeEvery()
	case donorQuarantined:
		h.fs.Quarantines++
		d.nextProbe = now + h.probeEvery()
		h.fs.quarantineDonor(name)
	}
}

// recoverProbes consecutive recovery-grade probe samples close the
// breaker (the classic half-open contract).
const recoverProbes = 3

// tryRecover scores one sample from an unhealthy donor. A sample is
// recovery-grade when it succeeded with latency back inside the recover
// band of the recovery baseline; any failure or slow sample re-opens
// the count. The baseline is the fleet median floored at the hedge
// floor — a single probe sample sits anywhere in the latency
// distribution, so holding it to 1.5x a microsecond-scale median would
// reject healthy probes for their ordinary queueing noise. On recovery
// the stale latency estimates are re-seeded from the probe (the old
// quantiles remember the brownout and would take thousands of samples
// to decay below the threshold on their own).
func (h *healthTracker) tryRecover(d *donorHealth, lat time.Duration, failed bool) {
	base := time.Duration(h.fleet.Value())
	if base < minHedgeThreshold {
		base = minHedgeThreshold
	}
	good := !failed && float64(lat) <= recoverLatFactor*float64(base)
	if !good {
		d.goodProbes = 0
		return
	}
	d.goodProbes++
	if d.goodProbes < recoverProbes || d.errRate.Value() > recoverErrRate {
		return
	}
	d.state = donorHealthy
	d.goodProbes = 0
	d.lat = metrics.QuantileEWMA{P: 0.95, Step: 0.05}
	d.lat.ObserveDuration(lat)
	d.med = metrics.QuantileEWMA{P: 0.5, Step: 0.05}
	d.med.ObserveDuration(lat)
	h.fs.HealthRecoveries++
}

// stateOf returns the donor's breaker state (healthy when unknown).
func (h *healthTracker) stateOf(name string) donorState {
	if d := h.donors[name]; d != nil {
		return d.state
	}
	return donorHealthy
}

// avoidSet returns the donors to deprioritize for new leases.
func (h *healthTracker) avoidSet() map[string]bool {
	var out map[string]bool
	for name, d := range h.donors {
		if d.state != donorHealthy {
			if out == nil {
				out = make(map[string]bool)
			}
			out[name] = true
		}
	}
	return out
}

// slowDonors returns the sorted deprioritization set for the heartbeat
// piggyback.
func (h *healthTracker) slowDonors() []string {
	var out []string
	for name, d := range h.donors {
		if d.state != donorHealthy {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// hedgeThreshold returns how long to wait on donor before hedging: the
// donor's learned p95 (fleet p95 for a cold donor), floored so a cold
// tracker cannot hedge instantly. FS.HedgeAfter overrides adaptivity.
func (h *healthTracker) hedgeThreshold(donor string) time.Duration {
	if h.fs.HedgeAfter > 0 {
		return h.fs.HedgeAfter
	}
	thr := minHedgeThreshold
	if d := h.donors[donor]; d != nil && d.lat.Count() >= healthMinSamples {
		if t := d.lat.Duration(); t > thr {
			thr = t
		}
	} else if h.fleet.Count() >= healthMinSamples {
		if t := h.fleet.Duration(); t > thr {
			thr = t
		}
	}
	// Clamp the wait for donors whose *median* has crossed the brownout
	// boundary: a sick donor's own p95 tracks its sickness, and an
	// unclamped threshold would adapt upward until hedging never fires
	// for exactly the donors that need it. The sickness test is
	// median-vs-median (like the breaker) so a healthy donor's natural
	// p50->p95 queueing spread never triggers the clamp — healthy donors
	// keep hedging only past their true p95, which is what bounds the
	// background hedge rate.
	if d := h.donors[donor]; d != nil && d.med.Count() >= healthMinSamples && h.fleet.Count() >= healthMinSamples {
		if fleet := h.fleet.Value(); fleet > 0 && d.med.Value() >= brownoutLatFactor*fleet {
			lid := time.Duration(brownoutLatFactor * fleet)
			if lid < minHedgeThreshold {
				lid = minHedgeThreshold
			}
			if thr > lid {
				thr = lid
			}
		}
	}
	return thr
}

// opDeadline resolves the absolute deadline governing one op: the
// process deadline (per-query budget set by the executor) wins, then
// the FS-wide per-op budget, then none.
func (fs *FS) opDeadline(p *sim.Proc) time.Duration {
	if dl := p.Deadline(); dl > 0 {
		return dl
	}
	if fs.DeadlineBudget > 0 {
		return p.Now() + fs.DeadlineBudget
	}
	return 0
}

// tailTolerant reports whether the tail-tolerant read path should
// handle this process's framed reads.
func (fs *FS) tailTolerant(p *sim.Proc) bool {
	return fs.Hedging || fs.HealthChecks || fs.DeadlineBudget > 0 || p.Deadline() > 0
}

// hedgeAllowed enforces the hedge-rate cap.
func (fs *FS) hedgeAllowed() bool {
	c := fs.HedgeRateCap
	if c <= 0 {
		c = DefaultHedgeRateCap
	}
	return float64(fs.HedgedReads) < c*float64(fs.TolerantReads)
}

// quarantineDonor proactively migrates every replica this FS holds on a
// quarantined donor to a healthier one, before the donor's revocation
// (or silent death) arrives. Only stripes with at least two live
// replicas migrate — the copy source must stay online; a last-replica
// stripe keeps serving from the slow donor (deadline budgets bound the
// damage) until the donor either recovers or actually revokes.
func (fs *FS) quarantineDonor(name string) {
	if !fs.Recover {
		return
	}
	for _, f := range fs.files {
		if f.closed || f.deleted || f.unavailable {
			continue
		}
		for s := range f.leases {
			for r := range f.leases[s] {
				l := f.leases[s][r]
				if l == nil || f.down[s][r] || f.repairing[s][r] || l.MR.Owner.Name != name {
					continue
				}
				if f.healthyReplicas(s) < 2 {
					continue
				}
				f.migrateReplica(s, r)
			}
		}
	}
}

// migrateReplica rebuilds replica (s, r) on a new donor while the old
// lease is still live, then releases the old lease. Marking the slot
// down first routes reads and heartbeats away from it immediately; if
// the rebuild fails (donor scarcity) the old lease simply expires
// unrenewed and the scrubber re-kicks the repair later — exactly the
// reactive path, minus the surprise.
func (f *File) migrateReplica(s, r int) {
	old := f.leases[s][r]
	f.down[s][r] = true
	f.repairing[s][r] = true
	f.fs.ProactiveMigrations++
	name := fmt.Sprintf("quarantine-migrate:%s:%d.%d", f.name, s, r)
	f.fs.k.Go(name, func(rp *sim.Proc) {
		f.repairReplica(rp, s, r)
		if !f.closed && !f.deleted && !f.down[s][r] && f.leases[s][r] != old {
			f.fs.Broker.Release(rp, old)
		}
	})
}

// errSlowRead is the deadline-miss error for one block read.
func (f *File) errSlowRead(g int64) error {
	return fmt.Errorf("core: read of block %d of %q blew its deadline budget: %w", g, f.name, fault.ErrSlow)
}

// raceChild is one in-flight replica read inside a race.
type raceChild struct {
	r        int // replica index
	buf      []byte
	done     bool
	err      error
	verified bool
}

// raceResult summarizes one raceFrame call.
type raceResult struct {
	winner   int // replica index of the verified winner, -1 if none
	hedgeWon bool
	slow     bool // deadline fired before any verified frame
	children []*raceChild
}

// raceFrame reads block g's frame from replica primary, optionally
// hedging to replica hedge when the primary exceeds its adaptive
// threshold, bounded by an absolute deadline (0 = none). The first
// verified frame wins and is copied into frame; the loser is abandoned
// mid-flight (bytes discarded, wire cost sunk). Every child reports its
// true latency and outcome to the health tracker when it completes,
// even if the race already returned.
func (f *File) raceFrame(p *sim.Proc, g int64, s, frameOff int, frame []byte, primary, hedge int, deadline time.Duration) raceResult {
	k := p.Kernel()
	cond := sim.NewCond(k)
	bs := f.fs.BlockSize
	res := raceResult{winner: -1}
	launch := func(r int) {
		c := &raceChild{r: r, buf: make([]byte, len(frame))}
		res.children = append(res.children, c)
		mr := f.leases[s][r].MR
		donor := mr.Owner.Name
		k.Go(fmt.Sprintf("read-race:%s:%d.%d", f.name, g, r), func(cp *sim.Proc) {
			start := cp.Now()
			err := f.fs.Transport.Read(cp, f.fs.Client, mr, frameOff, c.buf)
			lat := cp.Now() - start
			verified := err == nil && verifyFrame(c.buf, bs, f.gens[g]) == nil
			if h := f.fs.health; h != nil {
				h.observe(donor, lat, err != nil || !verified, cp.Now())
			}
			c.err = err
			c.verified = verified
			c.done = true
			cond.Broadcast()
		})
	}
	launch(primary)
	hedgeArmed := hedge >= 0 && f.fs.hedgeAllowed()
	hedgeFired := false
	if hedgeArmed {
		thr := minHedgeThreshold
		if h := f.fs.health; h != nil {
			thr = h.hedgeThreshold(f.leases[s][primary].MR.Owner.Name)
		} else if f.fs.HedgeAfter > 0 {
			thr = f.fs.HedgeAfter
		}
		k.After(thr, func() {
			hedgeFired = true
			cond.Broadcast()
		})
	}
	deadlineFired := false
	if deadline > 0 {
		if p.Now() >= deadline {
			deadlineFired = true
		} else {
			k.After(deadline-p.Now(), func() {
				deadlineFired = true
				cond.Broadcast()
			})
		}
	}
	for {
		for i, c := range res.children {
			if c.done && c.verified {
				copy(frame, c.buf)
				res.winner = c.r
				res.hedgeWon = i > 0
				if res.hedgeWon {
					f.fs.HedgeWins++
				}
				return res
			}
		}
		allDone := true
		for _, c := range res.children {
			if !c.done {
				allDone = false
				break
			}
		}
		if allDone {
			return res // every launched read failed; caller moves on
		}
		if deadlineFired {
			res.slow = true
			return res
		}
		if hedgeFired && hedgeArmed && len(res.children) == 1 {
			f.fs.HedgedReads++
			launch(hedge)
		}
		cond.Wait(p)
	}
}

// fetchBlockTolerant is fetchBlockSkip with deadline budgets, hedging,
// and health-aware replica ordering. It preserves the serial path's
// contract: on nil return, frame holds a verified copy; corrupt copies
// it passed are repaired from the winner; a block with no verifiable
// copy anywhere is poisoned.
func (f *File) fetchBlockTolerant(p *sim.Proc, g int64, frame []byte, skip int) error {
	f.fs.TolerantReads++
	s, frameOff := f.blockHome(g)
	bs := f.fs.BlockSize
	now := p.Now()
	failedOver := false
	var cands []int
	for r := range f.leases[s] {
		if r == skip {
			continue
		}
		if f.down[s][r] {
			failedOver = true
			continue
		}
		if !f.leases[s][r].Valid(now) {
			f.replicaLost(s, r)
			if f.unavailable {
				return vfs.ErrUnavailable
			}
			failedOver = true
			continue
		}
		cands = append(cands, r)
	}
	f.orderByHealth(s, cands, now)
	deadline := f.fs.opDeadline(p)
	var bad []int
	i := 0
	for i < len(cands) {
		primary := cands[i]
		hedge := -1
		if f.fs.Hedging && i+1 < len(cands) {
			hedge = cands[i+1]
		}
		res := f.raceFrame(p, g, s, frameOff, frame, primary, hedge, deadline)
		anyFailed := failedOver
		for _, c := range res.children {
			if !c.done || c.r == res.winner {
				continue
			}
			anyFailed = true
			if errors.Is(c.err, rmem.ErrRevoked) {
				f.replicaLost(s, c.r)
				if f.unavailable {
					return vfs.ErrUnavailable
				}
			} else if c.err == nil && !c.verified {
				f.fs.Corruptions.Add(1, int64(bs))
				bad = append(bad, c.r)
			}
		}
		if res.winner >= 0 {
			if anyFailed {
				f.fs.Failovers.Add(1, int64(bs))
			}
			for _, rb := range bad {
				f.repairBlockOn(p, g, rb, frame)
			}
			return nil
		}
		if res.slow {
			f.fs.SlowReads++
			return f.errSlowRead(g)
		}
		failedOver = true
		i += len(res.children)
	}
	if len(bad) > 0 {
		if f.underRepair(s) {
			// See fetchBlockSkip: repair churn, not data loss.
			return f.stripeErr(s)
		}
		f.poisonBlock(p, g)
		return f.corruptErr(g)
	}
	if f.unavailable {
		return vfs.ErrUnavailable
	}
	return f.stripeErr(s)
}

// orderByHealth sorts candidate replicas healthiest-first (stable, so
// replica order breaks ties deterministically). An unhealthy donor due
// a half-open probe is promoted to the front instead: the trickle read
// routed through it is the only way its score can recover, and with
// hedging armed the tail stays capped even if it is still slow.
func (f *File) orderByHealth(s int, cands []int, now time.Duration) {
	h := f.fs.health
	if h == nil || !f.fs.HealthChecks || len(cands) < 2 {
		return
	}
	rank := make(map[int]int, len(cands))
	for _, r := range cands {
		name := f.leases[s][r].MR.Owner.Name
		d := h.donors[name]
		switch {
		case d == nil || d.state == donorHealthy:
			rank[r] = 1
		case now >= d.nextProbe:
			// Promote for one probe and push the next one out now, so a
			// candidate that ends up not being read still waits a full
			// interval before being promoted again.
			rank[r] = 0
			d.nextProbe = now + h.probeEvery()
			f.fs.HealthProbes++
		case d.state == donorBrowned:
			rank[r] = 2
		default:
			rank[r] = 3
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return rank[cands[a]] < rank[cands[b]] })
}
