// Package cluster models the paper's testbed (Table 3): a rack of
// identical servers — 40 logical processors, a large memory, an HDD
// RAID-0 array, an SSD, and an FDR Infiniband NIC — joined by a
// non-blocking top-of-rack switch. Servers host the database engine,
// the memory-broker proxy, and the SMB file-server stage, all sharing
// the same simulated cores so that CPU interference (Figures 11 and 13)
// emerges from the model rather than being scripted.
package cluster

import (
	"fmt"
	"time"

	"remotedb/internal/hw/disk"
	"remotedb/internal/hw/nic"
	"remotedb/internal/sim"
)

// Config parameterizes one server.
type Config struct {
	Cores       int           // logical processors (paper: 40)
	MemoryBytes int64         // RAM available to be split between local use and brokered MRs
	Quantum     time.Duration // CPU scheduling quantum for Work slicing
	CtxSwitch   time.Duration // cost to switch a thread back in after async I/O
	Spindles    int           // HDD RAID-0 width (paper: 4, 8 or 20)
	NIC         nic.Config
	SSD         disk.SSDConfig
	HDD         disk.SpindleConfig
}

// DefaultConfig returns the paper's server configuration with memory
// scaled down ~1000x (384 GB -> 384 MB) per DESIGN.md.
func DefaultConfig() Config {
	return Config{
		Cores:       40,
		MemoryBytes: 384 << 20,
		Quantum:     200 * time.Microsecond,
		CtxSwitch:   5 * time.Microsecond,
		Spindles:    20,
		NIC:         nic.DefaultConfig(),
		SSD:         disk.DefaultSSDConfig(),
		HDD:         disk.DefaultSpindleConfig(),
	}
}

// Server is one machine in the cluster.
type Server struct {
	Name string
	K    *sim.Kernel
	Cfg  Config

	cores      *sim.Resource
	NIC        *nic.NIC
	HDD        *disk.HDDArray
	SSD        *disk.SSD
	fileServer *sim.Resource // SMB / SMB Direct worker stage

	memCommitted int64 // memory committed to local processes (e.g. the buffer pool)
	memBrokered  int64 // memory pinned as MRs and leased out via the broker

	pressureSubs []func(need int64)

	serviceDelay time.Duration // injected per-transfer slowness (chaos: reclaiming/NIC-saturated donor)
}

// NewServer creates a server on kernel k.
func NewServer(k *sim.Kernel, name string, cfg Config) *Server {
	if cfg.Cores <= 0 {
		panic("cluster: server needs cores")
	}
	hddCfg := disk.HDDArrayConfig{Spindles: cfg.Spindles, StripeUnit: 64 << 10, Spindle: cfg.HDD}
	s := &Server{
		Name:       name,
		K:          k,
		Cfg:        cfg,
		cores:      sim.NewResource(k, name+"/cpu", cfg.Cores),
		NIC:        nic.New(k, name+"/nic", cfg.NIC),
		HDD:        disk.NewHDDArray(k, name+"/hdd", hddCfg),
		SSD:        disk.NewSSD(k, name+"/ssd", cfg.SSD),
		fileServer: sim.NewResource(k, name+"/smb", 4),
	}
	return s
}

// Work charges d of CPU time, acquiring cores in scheduler quanta so that
// short kernel work (SMB processing, broker RPCs) is not starved behind
// long query bursts — the FIFO-with-quanta discipline approximates the
// OS round-robin scheduler.
func (s *Server) Work(p *sim.Proc, d time.Duration) {
	q := s.Cfg.Quantum
	if q <= 0 {
		q = 200 * time.Microsecond
	}
	for d > 0 {
		slice := d
		if slice > q {
			slice = q
		}
		s.cores.Acquire(p, 1)
		p.Sleep(slice)
		s.cores.Release(1)
		d -= slice
	}
}

// WorkParallel charges d of total CPU time spread over dop cores
// concurrently (intra-query parallelism): the caller waits d/dop while
// dop cores are occupied, so server utilization accounting stays exact.
func (s *Server) WorkParallel(p *sim.Proc, d time.Duration, dop int) {
	if dop <= 1 {
		s.Work(p, d)
		return
	}
	if dop > s.Cfg.Cores {
		dop = s.Cfg.Cores
	}
	q := s.Cfg.Quantum
	if q <= 0 {
		q = 200 * time.Microsecond
	}
	each := d / time.Duration(dop)
	for each > 0 {
		slice := each
		if slice > q {
			slice = q
		}
		s.cores.Acquire(p, dop)
		p.Sleep(slice)
		s.cores.Release(dop)
		each -= slice
	}
}

// Exec holds one core while fn runs; fn may sleep on simulation
// primitives (this is how synchronous RDMA spins burn CPU during the
// transfer — Section 4.1.3 of the paper).
func (s *Server) Exec(p *sim.Proc, fn func()) {
	s.cores.Acquire(p, 1)
	fn()
	s.cores.Release(1)
}

// Reschedule charges the context-switch cost paid when an asynchronous
// I/O completion switches the issuing thread back in.
func (s *Server) Reschedule(p *sim.Proc) {
	s.Work(p, s.Cfg.CtxSwitch)
}

// FileServer returns the SMB worker stage used by the RamDrive designs.
func (s *Server) FileServer() *sim.Resource { return s.fileServer }

// SetServiceDelay injects d of extra latency into every remote-memory
// transfer served by this machine, modeling a donor that is alive but
// slow — reclaiming under memory pressure, NIC-saturated, or about to
// revoke. Zero restores normal service. The delay is consulted by the
// rmem transports on each transfer, so it applies to all clients of all
// MRs hosted here and can be flipped mid-run by chaos scenarios.
func (s *Server) SetServiceDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.serviceDelay = d
}

// ServiceDelay returns the injected per-transfer slowness (0 = none).
func (s *Server) ServiceDelay() time.Duration { return s.serviceDelay }

// CPUBusyNanos returns cumulative core-nanoseconds consumed, for windowed
// utilization sampling (Figure 11b, Figure 14c).
func (s *Server) CPUBusyNanos() int64 { return s.cores.BusyNanos() }

// CPUUtilization returns the time-averaged core utilization.
func (s *Server) CPUUtilization() float64 { return s.cores.Utilization() }

// Cores returns the core count.
func (s *Server) Cores() int { return s.Cfg.Cores }

// --- Memory accounting -------------------------------------------------
//
// The server's RAM is split three ways: committed to local processes,
// pinned+brokered as MRs, and free. The broker's proxy may only pin free
// memory, and must give MRs back when local demand grows (the paper's
// "memory pressure notification" path).

// MemoryTotal returns the server's RAM size.
func (s *Server) MemoryTotal() int64 { return s.Cfg.MemoryBytes }

// MemoryCommitted returns bytes committed to local processes.
func (s *Server) MemoryCommitted() int64 { return s.memCommitted }

// MemoryBrokered returns bytes pinned as brokered MRs.
func (s *Server) MemoryBrokered() int64 { return s.memBrokered }

// MemoryFree returns unpinned, uncommitted bytes.
func (s *Server) MemoryFree() int64 {
	return s.Cfg.MemoryBytes - s.memCommitted - s.memBrokered
}

// CommitLocal records n bytes newly committed to a local process. If the
// commitment cannot be satisfied from free memory, pressure subscribers
// (the broker proxy) are notified of the shortfall so they can unpin MRs.
// It returns an error if, even after notifications, memory is exhausted.
func (s *Server) CommitLocal(n int64) error {
	if n < 0 {
		panic("cluster: negative commit")
	}
	if shortfall := n - s.MemoryFree(); shortfall > 0 {
		for _, fn := range s.pressureSubs {
			fn(shortfall)
		}
	}
	if n > s.MemoryFree() {
		return fmt.Errorf("cluster: %s out of memory (want %d, free %d)", s.Name, n, s.MemoryFree())
	}
	s.memCommitted += n
	return nil
}

// ReleaseLocal returns n bytes from local commitment.
func (s *Server) ReleaseLocal(n int64) {
	if n > s.memCommitted {
		panic("cluster: releasing more than committed")
	}
	s.memCommitted -= n
}

// PinBrokered marks n bytes as pinned for brokering; fails if not free.
func (s *Server) PinBrokered(n int64) error {
	if n > s.MemoryFree() {
		return fmt.Errorf("cluster: %s cannot pin %d bytes (free %d)", s.Name, n, s.MemoryFree())
	}
	s.memBrokered += n
	return nil
}

// UnpinBrokered releases n brokered bytes back to free.
func (s *Server) UnpinBrokered(n int64) {
	if n > s.memBrokered {
		panic("cluster: unpinning more than brokered")
	}
	s.memBrokered -= n
}

// OnMemoryPressure registers a callback invoked with the shortfall when
// local commitment cannot be met from free memory.
func (s *Server) OnMemoryPressure(fn func(need int64)) {
	s.pressureSubs = append(s.pressureSubs, fn)
}

// Cluster is a set of servers on one switch, sharing a kernel.
type Cluster struct {
	K       *sim.Kernel
	Servers []*Server
	byName  map[string]*Server
}

// New creates an empty cluster.
func New(k *sim.Kernel) *Cluster {
	return &Cluster{K: k, byName: make(map[string]*Server)}
}

// AddServer creates a server and joins it to the cluster.
func (c *Cluster) AddServer(name string, cfg Config) *Server {
	if _, dup := c.byName[name]; dup {
		panic("cluster: duplicate server name " + name)
	}
	s := NewServer(c.K, name, cfg)
	c.Servers = append(c.Servers, s)
	c.byName[name] = s
	return s
}

// Server returns the named server, or nil.
func (c *Cluster) Server(name string) *Server { return c.byName[name] }
