package cluster

import (
	"testing"
	"time"

	"remotedb/internal/sim"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.MemoryBytes = 1 << 20
	return cfg
}

func TestWorkChargesExactTime(t *testing.T) {
	k := sim.New(1)
	s := NewServer(k, "s1", smallConfig())
	var end time.Duration
	k.Go("w", func(p *sim.Proc) {
		s.Work(p, time.Millisecond)
		end = p.Now()
	})
	k.Run(0)
	if end != time.Millisecond {
		t.Fatalf("end = %v, want 1ms (idle CPU)", end)
	}
}

func TestWorkQuantumSharing(t *testing.T) {
	// 8 workers on 4 cores: total work 8ms => finish at ~2ms, and the
	// quantum discipline means no worker finishes before ~1.8ms.
	k := sim.New(1)
	s := NewServer(k, "s1", smallConfig())
	var first, last time.Duration
	done := 0
	for i := 0; i < 8; i++ {
		k.Go("w", func(p *sim.Proc) {
			s.Work(p, time.Millisecond)
			if done == 0 {
				first = p.Now()
			}
			done++
			last = p.Now()
		})
	}
	k.Run(0)
	if last != 2*time.Millisecond {
		t.Fatalf("last = %v, want 2ms", last)
	}
	if first < 1700*time.Microsecond {
		t.Fatalf("first = %v; quantum slicing should interleave workers", first)
	}
}

func TestShortWorkNotStarvedBehindLongBursts(t *testing.T) {
	// With all cores busy running long bursts, a short 50µs task should
	// still get in within roughly a quantum, not after a full burst.
	cfg := smallConfig()
	cfg.Cores = 1
	k := sim.New(1)
	s := NewServer(k, "s1", cfg)
	k.Go("long", func(p *sim.Proc) { s.Work(p, 10*time.Millisecond) })
	var shortDone time.Duration
	k.Go("short", func(p *sim.Proc) {
		p.Sleep(10 * time.Microsecond)
		s.Work(p, 50*time.Microsecond)
		shortDone = p.Now()
	})
	k.Run(0)
	if shortDone > 500*time.Microsecond {
		t.Fatalf("short task done at %v; quantum slicing should bound the wait", shortDone)
	}
}

func TestExecHoldsCore(t *testing.T) {
	cfg := smallConfig()
	cfg.Cores = 1
	k := sim.New(1)
	s := NewServer(k, "s1", cfg)
	var otherStart time.Duration
	k.Go("spinner", func(p *sim.Proc) {
		s.Exec(p, func() { p.Sleep(time.Millisecond) }) // spin 1ms holding the core
	})
	k.Go("other", func(p *sim.Proc) {
		p.Sleep(10 * time.Microsecond)
		s.Work(p, 10*time.Microsecond)
		otherStart = p.Now()
	})
	k.Run(0)
	if otherStart < time.Millisecond {
		t.Fatalf("other ran at %v; Exec must hold the core without preemption", otherStart)
	}
}

func TestMemoryAccounting(t *testing.T) {
	k := sim.New(1)
	s := NewServer(k, "s1", smallConfig()) // 1 MiB
	if err := s.CommitLocal(512 << 10); err != nil {
		t.Fatal(err)
	}
	if err := s.PinBrokered(256 << 10); err != nil {
		t.Fatal(err)
	}
	if free := s.MemoryFree(); free != 256<<10 {
		t.Fatalf("free = %d, want 256K", free)
	}
	if err := s.PinBrokered(512 << 10); err == nil {
		t.Fatal("pin beyond free should fail")
	}
	s.UnpinBrokered(256 << 10)
	s.ReleaseLocal(512 << 10)
	if s.MemoryFree() != 1<<20 {
		t.Fatalf("free = %d after releases", s.MemoryFree())
	}
}

func TestMemoryPressureNotification(t *testing.T) {
	k := sim.New(1)
	s := NewServer(k, "s1", smallConfig())
	if err := s.PinBrokered(768 << 10); err != nil {
		t.Fatal(err)
	}
	var asked int64
	s.OnMemoryPressure(func(need int64) {
		asked = need
		s.UnpinBrokered(need) // proxy gives memory back
	})
	if err := s.CommitLocal(512 << 10); err != nil {
		t.Fatalf("commit should succeed after pressure release: %v", err)
	}
	if asked != 256<<10 {
		t.Fatalf("shortfall = %d, want 256K", asked)
	}
}

func TestCommitFailsWhenPressureUnanswered(t *testing.T) {
	k := sim.New(1)
	s := NewServer(k, "s1", smallConfig())
	if err := s.PinBrokered(1 << 20); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitLocal(1); err == nil {
		t.Fatal("commit should fail with all memory pinned and no subscriber")
	}
}

func TestClusterLookup(t *testing.T) {
	k := sim.New(1)
	c := New(k)
	s1 := c.AddServer("db1", smallConfig())
	if c.Server("db1") != s1 {
		t.Fatal("lookup failed")
	}
	if c.Server("nope") != nil {
		t.Fatal("missing server should be nil")
	}
}

func TestRescheduleCost(t *testing.T) {
	k := sim.New(1)
	s := NewServer(k, "s1", smallConfig())
	var end time.Duration
	k.Go("p", func(p *sim.Proc) {
		s.Reschedule(p)
		end = p.Now()
	})
	k.Run(0)
	if end != s.Cfg.CtxSwitch {
		t.Fatalf("reschedule took %v, want %v", end, s.Cfg.CtxSwitch)
	}
}
